#include "serving/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gt::serving {

namespace {

constexpr double kTicksPerSecond = 1.0e6;

/// Exponential gap with the given mean, in ticks, rounded up so two
/// arrivals never share a tick fractionally (>= 1 keeps time advancing).
Tick exp_gap_ticks(Xoshiro256& rng, double mean_ticks) {
  // uniform_real is in [0, 1); flip to (0, 1] so log never sees zero.
  const double u = 1.0 - rng.uniform_real();
  const double gap = -mean_ticks * std::log(u);
  const double clamped = std::max(1.0, std::min(gap, 9.0e15));
  return static_cast<Tick>(clamped);
}

}  // namespace

const char* to_string(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

ArrivalKind parse_arrival_kind(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  throw std::invalid_argument("unknown arrival process '" + name +
                              "' (expected poisson|bursty|diurnal)");
}

TrafficGenerator::TrafficGenerator(ArrivalConfig config)
    : config_(config) {
  if (!(config_.rate_rps > 0.0))
    throw std::invalid_argument("arrival rate must be > 0 requests/s");
  if (config_.kind == ArrivalKind::kBursty && config_.burst_factor < 1.0)
    throw std::invalid_argument("burst factor must be >= 1");
  if (config_.kind == ArrivalKind::kDiurnal &&
      (config_.diurnal_depth < 0.0 || config_.diurnal_depth >= 1.0))
    throw std::invalid_argument("diurnal depth must be in [0, 1)");
}

std::vector<Tick> TrafficGenerator::generate(std::size_t n) const {
  std::vector<Tick> out;
  out.reserve(n);
  // One dedicated RNG stream per generator purpose, derived from the user
  // seed, so arrival draws never collide with sampling/init streams.
  Xoshiro256 rng(derive_seed(config_.seed, 0x5e21ull));
  const double mean_gap = kTicksPerSecond / config_.rate_rps;
  Tick t = 0;

  switch (config_.kind) {
    case ArrivalKind::kPoisson: {
      while (out.size() < n) {
        t += exp_gap_ticks(rng, mean_gap);
        out.push_back(t);
      }
      break;
    }
    case ArrivalKind::kBursty: {
      // Two-phase MMPP: phase boundaries are drawn from the same stream
      // as the gaps, in a fixed order, so the schedule stays replayable.
      bool in_burst = true;
      Tick phase_end = exp_gap_ticks(
          rng, static_cast<double>(config_.burst_ticks));
      const double burst_gap = mean_gap / config_.burst_factor;
      const double lull_gap = mean_gap * config_.burst_factor;
      while (out.size() < n) {
        const Tick gap =
            exp_gap_ticks(rng, in_burst ? burst_gap : lull_gap);
        t += gap;
        while (t >= phase_end) {
          in_burst = !in_burst;
          phase_end += exp_gap_ticks(
              rng, static_cast<double>(in_burst ? config_.burst_ticks
                                                : config_.lull_ticks));
        }
        out.push_back(t);
      }
      break;
    }
    case ArrivalKind::kDiurnal: {
      // Thinning (Lewis-Shedler): draw at the peak rate, accept with
      // probability lambda(t) / lambda_peak. Exactly two rng draws per
      // candidate keeps the stream position deterministic.
      const double depth = config_.diurnal_depth;
      const double peak_gap = mean_gap / (1.0 + depth);
      const double period = static_cast<double>(config_.period_ticks);
      while (out.size() < n) {
        t += exp_gap_ticks(rng, peak_gap);
        const double phase =
            2.0 * 3.14159265358979323846 *
            (static_cast<double>(t % config_.period_ticks) / period);
        const double lambda_frac =
            (1.0 + depth * std::sin(phase)) / (1.0 + depth);
        if (rng.uniform_real() < lambda_frac) out.push_back(t);
      }
      break;
    }
  }
  return out;
}

}  // namespace gt::serving
