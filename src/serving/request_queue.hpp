// Bounded request queue with an explicit component lifecycle.
//
// The lifecycle follows the bscheduler pipeline_base exemplar
// (SNIPPETS.md Snippet 1): a serving component is always in exactly one
// of initial -> starting -> started -> stopping -> stopped, transitions
// are validated (a queue cannot re-start after stopping, cannot accept
// work unless started), and teardown is observable — the serve loop's
// unwind guard calls drain() so an aborting run leaves the queue stopped
// and empty instead of holding requests nobody will ever serve.
//
// The queue itself is deliberately simple: a FIFO with a hard capacity.
// Overflow is the *caller's* signal to shed (push returns false rather
// than throwing or blocking — load shedding is a normal serving outcome,
// not an error), and ordering is arrival order, which admission control
// and the batcher both rely on for determinism.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "serving/types.hpp"

namespace gt::serving {

/// pipeline_base-style component states (SNIPPETS.md Snippet 1).
enum class Lifecycle : std::uint8_t {
  kInitial,
  kStarting,
  kStarted,
  kStopping,
  kStopped,
};

const char* to_string(Lifecycle s) noexcept;

class RequestQueue {
 public:
  /// capacity == 0 means "shed everything" (admission-only serving); the
  /// queue is still constructible so flag validation can happen upstream.
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  Lifecycle state() const noexcept { return state_; }
  bool running() const noexcept {
    return state_ == Lifecycle::kStarting || state_ == Lifecycle::kStarted;
  }
  bool started() const noexcept { return state_ == Lifecycle::kStarted; }
  bool stopped() const noexcept { return state_ == Lifecycle::kStopped; }

  /// initial -> starting -> started. Throws std::logic_error from any
  /// other state: a queue that already served cannot be restarted.
  void start();

  /// started -> stopping -> stopped. Remaining requests are returned to
  /// the caller (they get their kShedShutdown outcome there); the queue
  /// ends empty. Idempotent once stopped; throws from initial/starting.
  std::vector<Request> drain();

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return q_.size(); }
  bool empty() const noexcept { return q_.empty(); }
  bool full() const noexcept { return q_.size() >= capacity_; }
  /// Highest size() ever observed — the saturation gauge.
  std::size_t peak_size() const noexcept { return peak_; }

  /// Enqueue in arrival order. Returns false (caller sheds) when the
  /// queue is full. Throws std::logic_error unless started.
  bool push(const Request& r);

  /// Oldest queued request. Precondition: !empty().
  const Request& front() const { return q_.front(); }

  /// Dequeue the oldest request. Precondition: !empty().
  Request pop();

 private:
  std::size_t capacity_;
  std::deque<Request> q_;
  std::size_t peak_ = 0;
  Lifecycle state_ = Lifecycle::kInitial;
};

}  // namespace gt::serving
