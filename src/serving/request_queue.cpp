#include "serving/request_queue.hpp"

#include <stdexcept>

namespace gt::serving {

const char* to_string(Lifecycle s) noexcept {
  switch (s) {
    case Lifecycle::kInitial: return "initial";
    case Lifecycle::kStarting: return "starting";
    case Lifecycle::kStarted: return "started";
    case Lifecycle::kStopping: return "stopping";
    case Lifecycle::kStopped: return "stopped";
  }
  return "?";
}

void RequestQueue::start() {
  if (state_ != Lifecycle::kInitial)
    throw std::logic_error(std::string("RequestQueue::start from state ") +
                           to_string(state_));
  state_ = Lifecycle::kStarting;
  // No asynchronous machinery to spin up (the queue is driven by the
  // serve loop), so starting completes synchronously — but the distinct
  // state keeps the transition observable and the exemplar's shape.
  state_ = Lifecycle::kStarted;
}

std::vector<Request> RequestQueue::drain() {
  if (state_ == Lifecycle::kStopped) return {};
  if (state_ != Lifecycle::kStarted)
    throw std::logic_error(std::string("RequestQueue::drain from state ") +
                           to_string(state_));
  state_ = Lifecycle::kStopping;
  std::vector<Request> remaining(q_.begin(), q_.end());
  q_.clear();
  state_ = Lifecycle::kStopped;
  return remaining;
}

bool RequestQueue::push(const Request& r) {
  if (state_ != Lifecycle::kStarted)
    throw std::logic_error(std::string("RequestQueue::push from state ") +
                           to_string(state_));
  if (q_.size() >= capacity_) return false;
  q_.push_back(r);
  if (q_.size() > peak_) peak_ = q_.size();
  return true;
}

Request RequestQueue::pop() {
  Request r = q_.front();
  q_.pop_front();
  return r;
}

}  // namespace gt::serving
