#include "serving/planner.hpp"

#include <stdexcept>
#include <string>

namespace gt::serving {

const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kShedSlo: return "shed_slo";
    case Outcome::kShedQueueFull: return "shed_queue_full";
    case Outcome::kShedShutdown: return "shed_shutdown";
    case Outcome::kDegraded: return "degraded";
  }
  return "?";
}

void ServePlanner::validate(const ServeConfig& config) {
  if (config.batch.max_batch_requests == 0)
    throw std::invalid_argument("ServePlanner: max_batch_requests must be > 0");
  if (config.vertices_per_request == 0)
    throw std::invalid_argument(
        "ServePlanner: vertices_per_request must be > 0");
  if (static_cast<std::uint64_t>(config.batch.max_batch_requests) *
          config.vertices_per_request >
      0xffffffffull)
    throw std::invalid_argument(
        "ServePlanner: max_batch_requests * vertices_per_request overflows "
        "a batch size");
  TrafficGenerator probe(config.arrival);  // arrival-config validation
  (void)probe;
}

ServePlanner::ServePlanner(const ServeConfig& config, Tick est_batch_ticks)
    : config_(config),
      queue_(config.queue_depth),
      batcher_(config.batch),
      admission_(config.slo_ticks, config.batch.max_batch_requests) {
  validate(config_);
  admission_.set_estimate(est_batch_ticks);
  arrivals_ = TrafficGenerator(config_.arrival).generate(config_.requests);
  records_.reserve(config_.requests);
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    RequestRecord rec;
    rec.id = i;
    rec.arrival_tick = arrivals_[i];
    // Placeholder until the planner (shed) or the serve loop's pricing
    // (completed/degraded) decides it; an unwound run leaves it as-is.
    rec.outcome = Outcome::kShedShutdown;
    records_.push_back(rec);
  }
  queue_.start();
}

void ServePlanner::process_arrival() {
  const std::size_t id = next_arrival_;
  const Tick now = arrivals_[next_arrival_];
  ++next_arrival_;
  ++arrived_;
  Request r;
  r.id = id;
  r.arrival_tick = now;
  r.vertices = config_.vertices_per_request;
  if (!admission_.admit(now, server_free_, queue_.size())) {
    records_[id].outcome = Outcome::kShedSlo;
    records_[id].latency_ticks = 0;
    ++shed_slo_;
    return;
  }
  if (!queue_.push(r)) {
    records_[id].outcome = Outcome::kShedQueueFull;
    records_[id].latency_ticks = 0;
    ++shed_queue_full_;
    return;
  }
  ++admitted_;
}

std::optional<PlannedBatch> ServePlanner::next() {
  const std::size_t total = arrivals_.size();
  for (;;) {
    if (queue_.empty()) {
      if (next_arrival_ >= total) return std::nullopt;
      process_arrival();
      continue;
    }
    const bool more = next_arrival_ < total;
    const Tick close = batcher_.close_tick(queue_, server_free_, more);
    // Strict virtual-tick event order; on a tie the close wins (the
    // departing batch cannot see a same-tick arrival).
    if (more && arrivals_[next_arrival_] < close) {
      process_arrival();
      continue;
    }
    PlannedBatch b;
    b.ordinal = next_ordinal_++;
    std::vector<Request> taken;
    batcher_.take(queue_, taken);
    b.request_ids.reserve(taken.size());
    // A batch cannot form before its newest member arrived: size-triggered
    // and flush closes return `server_free`, which predates the queue
    // contents whenever the lane went idle (e.g. the very first batch).
    // Clamping keeps every priced latency non-negative. The clamp cannot
    // reorder events: every taken request arrived strictly before the next
    // pending arrival, so the raised tick still precedes it.
    Tick form = close;
    for (const Request& r : taken) {
      records_[r.id].batch = b.ordinal;
      b.request_ids.push_back(r.id);
      b.total_vertices += r.vertices;
      if (r.arrival_tick > form) form = r.arrival_tick;
    }
    b.form_tick = form;
    server_free_ = form + admission_.est_batch_ticks();
    return b;
  }
}

void ServePlanner::finish() {
  if (queue_.stopped()) return;
  for (const Request& r : queue_.drain()) {
    records_[r.id].outcome = Outcome::kShedShutdown;
    ++shed_shutdown_;
  }
}

void ServePlanner::shutdown() noexcept {
  if (!queue_.started()) return;  // initial/starting never held requests
  try {
    for (const Request& r : queue_.drain()) {
      records_[r.id].outcome = Outcome::kShedShutdown;
      ++shed_shutdown_;
    }
  } catch (...) {
    // drain() only throws on lifecycle misuse, excluded by the guard.
  }
}

}  // namespace gt::serving
