// DynamicBatcher: coalesce queued inference requests into one sampled
// subgraph execution (NGra-style chunk scheduling, PAPERS.md).
//
// Policy: a batch closes at the earliest virtual tick at which the server
// lane is free AND either
//   * the queue holds max_batch_requests (size-triggered close), or
//   * the oldest queued request has waited max_wait_ticks
//     (deadline-triggered close — tail latency beats fill), or
//   * the arrival stream is exhausted (flush).
//
// The batcher is pure policy: it owns no queue and no clock, it just
// answers "given this queue and these times, when does the next batch
// close?" — which keeps it unit-testable and keeps every close decision
// a deterministic function of serve state.
#pragma once

#include <cstddef>

#include "serving/request_queue.hpp"
#include "serving/types.hpp"

namespace gt::serving {

struct BatchPolicy {
  std::size_t max_batch_requests = 8;  ///< size-triggered close threshold
  Tick max_wait_ticks = 2'000;         ///< deadline-triggered close
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchPolicy policy) : policy_(policy) {}

  const BatchPolicy& policy() const noexcept { return policy_; }

  /// Tick at which the queue's current head batch closes, given the
  /// server lane frees at `server_free` and no further arrival joins.
  /// Precondition: !q.empty().
  Tick close_tick(const RequestQueue& q, Tick server_free,
                  bool more_arrivals) const noexcept {
    if (q.size() >= policy_.max_batch_requests || !more_arrivals)
      return server_free;  // full (or flushing): go as soon as the lane frees
    const Tick deadline = q.front().arrival_tick + policy_.max_wait_ticks;
    return deadline > server_free ? deadline : server_free;
  }

  /// Pop up to max_batch_requests requests into `out` (arrival order).
  template <typename OutVec>
  void take(RequestQueue& q, OutVec& out) {
    while (!q.empty() && out.size() < policy_.max_batch_requests)
      out.push_back(q.pop());
  }

 private:
  BatchPolicy policy_;
};

}  // namespace gt::serving
