// Deterministic open-loop traffic generation on the virtual-tick clock.
//
// Three arrival processes stand in for the paper's "millions of users":
//
//   * poisson  — homogeneous Poisson at `rate_rps`: exponential
//                inter-arrival gaps drawn from a seeded Xoshiro256 stream;
//   * bursty   — Markov-modulated Poisson: alternating burst / lull
//                phases of expected `burst_ticks` / `lull_ticks` duration,
//                with the instantaneous rate at `burst_factor` x the base
//                rate inside a burst and base / `burst_factor` outside, so
//                the long-run mean stays near `rate_rps`;
//   * diurnal  — sinusoidal rate modulation with period `period_ticks`
//                (one virtual "day"), realized by thinning a homogeneous
//                peak-rate stream so the draw count per arrival is fixed
//                and the schedule replays bit-identically.
//
// Open-loop means the generator never looks at the server: the arrival
// schedule for a (kind, rate, seed, shape) tuple is a pure function of
// those inputs — the same ticks come out on every worker count, thread
// count, and rerun, which is the bedrock of the serving determinism
// contract (DESIGN.md §16).
#pragma once

#include <string>
#include <vector>

#include "serving/types.hpp"
#include "util/rng.hpp"

namespace gt::serving {

enum class ArrivalKind : std::uint8_t { kPoisson, kBursty, kDiurnal };

const char* to_string(ArrivalKind k) noexcept;

/// Parse "poisson" | "bursty" | "diurnal"; throws std::invalid_argument.
ArrivalKind parse_arrival_kind(const std::string& name);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Long-run mean arrival rate in requests per virtual second
  /// (1 second == 1e6 ticks). Must be > 0.
  double rate_rps = 1000.0;
  std::uint64_t seed = 42;
  // -- bursty shape ---------------------------------------------------------
  double burst_factor = 4.0;          ///< rate multiplier inside a burst
  Tick burst_ticks = 50'000;          ///< expected burst phase length
  Tick lull_ticks = 50'000;           ///< expected lull phase length
  // -- diurnal shape --------------------------------------------------------
  Tick period_ticks = 1'000'000;      ///< one virtual "day"
  double diurnal_depth = 0.8;         ///< modulation depth in [0, 1)
};

/// Generates the first `n` arrival ticks of the process, ascending.
/// Stateless between calls: the same (config, n) always returns the same
/// schedule, and generate(n) is a prefix of generate(m) for n <= m.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(ArrivalConfig config);

  const ArrivalConfig& config() const noexcept { return config_; }

  std::vector<Tick> generate(std::size_t n) const;

 private:
  ArrivalConfig config_;
};

}  // namespace gt::serving
