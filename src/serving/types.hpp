// Shared vocabulary of the online request-serving front end (DESIGN.md §16).
//
// The serving surface runs entirely on the repo's *virtual-tick* clock:
// one tick = one simulated microsecond, the same unit every priced
// RunReport::end_to_end_us uses. Requests arrive at generator-chosen
// ticks, wait in a bounded RequestQueue, get coalesced into sampled
// subgraph batches by the DynamicBatcher, and either complete, shed
// (admission control / queue overflow), or degrade (their batch exhausted
// its fault-retry budget). Because every decision is a pure function of
// the seeded arrival schedule and the committed batch reports — never of
// wall clock, worker count, or thread interleaving — replaying a serve
// configuration is bit-identical across worker counts and reruns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gt::serving {

/// Virtual time: 1 tick == 1 simulated microsecond.
using Tick = std::uint64_t;

/// One inference request: `vertices` destination vertices to classify.
struct Request {
  std::uint64_t id = 0;       ///< arrival order, 0-based
  Tick arrival_tick = 0;      ///< generator-assigned arrival time
  std::uint32_t vertices = 1; ///< dst vertices this request asks for
};

/// Terminal fate of a request. Every arrival gets exactly one outcome.
enum class Outcome : std::uint8_t {
  kCompleted,     ///< served inside a batch that reported ok
  kShedSlo,       ///< admission control predicted an SLO miss
  kShedQueueFull, ///< bounded queue had no room at arrival
  kShedShutdown,  ///< drained from the queue by an unwinding serve loop
  kDegraded,      ///< batch exhausted its retry budget (or OOMed)
};

const char* to_string(Outcome o) noexcept;

/// Per-request ledger entry, in arrival (= request id) order. The
/// "outcome stream" the chaos tests compare across worker counts.
struct RequestRecord {
  std::uint64_t id = 0;
  Tick arrival_tick = 0;
  Outcome outcome = Outcome::kShedShutdown;
  /// Completion - arrival on the virtual clock; 0 unless kCompleted.
  Tick latency_ticks = 0;
  /// Serving batch that carried the request; ~0 when it never boarded one.
  std::uint64_t batch = kNoBatch;

  static constexpr std::uint64_t kNoBatch = ~0ull;

  bool operator==(const RequestRecord&) const = default;
};

/// Aggregate serve() results: the outcome stream plus the latency /
/// goodput / shed-rate summary the bench rows and gt_top panel publish.
struct ServeReport {
  std::vector<RequestRecord> records;  // arrival order
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_slo = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t degraded = 0;
  std::uint64_t batches = 0;        ///< serving batches executed
  double mean_batch_fill = 0.0;     ///< requests per batch / max_batch
  Tick span_ticks = 0;              ///< first arrival -> last completion
  double p50_latency_ticks = 0.0;
  double p95_latency_ticks = 0.0;
  double p99_latency_ticks = 0.0;
  /// Completed-within-SLO requests per virtual second.
  double goodput_rps = 0.0;
  /// Completed requests that also met the SLO deadline.
  std::uint64_t goodput_requests = 0;

  std::uint64_t shed() const noexcept {
    return shed_slo + shed_queue_full;
  }
  double shed_rate() const noexcept {
    return arrived == 0 ? 0.0
                        : static_cast<double>(shed()) /
                              static_cast<double>(arrived);
  }
};

}  // namespace gt::serving
