// SLO-aware admission control: shed at the door, not at the deadline.
//
// On every arrival the controller predicts the request's completion time
// from (a) when the server lane is predicted to free and (b) how many
// whole batches stand between the request and execution, each priced at
// the cost model's end-to-end batch estimate (the serve loop seeds that
// estimate from a warm-up batch, whose e2e *is* the DKP-priced pipeline
// cost — see DESIGN.md §16). If the predicted latency exceeds the SLO
// deadline, the request is shed immediately: a saturated queue converts
// overload into fast negative answers instead of a growing tail.
//
// The estimate is frozen for the duration of one serve() run. That is a
// deliberate determinism choice: decisions depend only on the arrival
// schedule and the frozen estimate, so the admitted/shed stream is a
// pure function of the serve configuration — bit-identical across worker
// counts — and the planner may run arbitrarily far ahead of execution.
#pragma once

#include <cstddef>
#include <cstdint>

#include "serving/types.hpp"

namespace gt::serving {

class AdmissionController {
 public:
  AdmissionController(Tick slo_ticks, std::size_t max_batch_requests)
      : slo_ticks_(slo_ticks), max_batch_(max_batch_requests) {}

  Tick slo_ticks() const noexcept { return slo_ticks_; }
  Tick est_batch_ticks() const noexcept { return est_batch_ticks_; }

  /// Install the per-batch e2e estimate (cost-model priced, from the
  /// warm-up batch). Called once before the first admission decision.
  void set_estimate(Tick est_batch_ticks) noexcept {
    est_batch_ticks_ = est_batch_ticks;
  }

  /// Predicted queueing + service delay for a request arriving at `now`
  /// with `queued` requests already waiting and the server lane predicted
  /// free at `server_free`: the request rides batch
  /// ceil((queued + 1) / max_batch), and every batch ahead of it costs
  /// one batch estimate.
  Tick predicted_latency(Tick now, Tick server_free,
                         std::size_t queued) const noexcept {
    const std::uint64_t batches_ahead =
        (static_cast<std::uint64_t>(queued) + max_batch_) / max_batch_;
    const Tick start = server_free > now ? server_free - now : 0;
    return start + batches_ahead * est_batch_ticks_;
  }

  /// The admission predicate. slo_ticks == 0 disables shedding (admit
  /// everything; latency is still measured against span stats).
  bool admit(Tick now, Tick server_free, std::size_t queued) const noexcept {
    if (slo_ticks_ == 0) return true;
    return predicted_latency(now, server_free, queued) <= slo_ticks_;
  }

 private:
  Tick slo_ticks_;
  std::size_t max_batch_;
  Tick est_batch_ticks_ = 0;
};

}  // namespace gt::serving
