// ServePlanner: the deterministic heart of the serving front end.
//
// Pulls the seeded arrival schedule through admission control and the
// dynamic batcher, yielding one PlannedBatch at a time. All timing runs
// on the *predicted* clock: the server lane is assumed to free one
// cost-model batch-estimate after each close. Because the estimate is
// frozen (admission.hpp) and arrivals are open-loop, the planner never
// needs an execution result — the serve loop can therefore keep
// `workers` planned batches in flight through the prepare ring exactly
// like train_batches does, and the plan replays bit-identically for
// every worker count.
//
// Execution later re-prices completions on the *measured* clock (real
// batch e2e instead of the estimate); the planner's job is only the
// admit/shed/compose stream.
//
// Lifecycle: the planner starts its RequestQueue on construction and the
// owner must end it through finish() (normal exit) or shutdown() (unwind
// path) — both leave the queue `stopped`, the latter recording every
// still-queued request as kShedShutdown.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "serving/admission.hpp"
#include "serving/arrival.hpp"
#include "serving/batcher.hpp"
#include "serving/request_queue.hpp"
#include "serving/types.hpp"

namespace gt::serving {

/// Everything a serve() run needs, with CLI-friendly defaults.
struct ServeConfig {
  ArrivalConfig arrival;               ///< open-loop traffic process
  std::size_t requests = 64;           ///< total arrivals to generate
  std::uint32_t vertices_per_request = 32;  ///< dst vertices per request
  Tick slo_ticks = 0;                  ///< deadline; 0 = no shedding
  std::size_t queue_depth = 64;        ///< RequestQueue capacity
  BatchPolicy batch;                   ///< coalescing policy
  /// Warm-up batches executed before the queue opens: they fit the DKP
  /// cost model and seed the admission estimate with a priced e2e.
  std::size_t warmup_batches = 1;
};

struct PlannedBatch {
  std::uint64_t ordinal = 0;       ///< 0-based serving batch number
  Tick form_tick = 0;              ///< close time on the predicted clock
  std::vector<std::uint64_t> request_ids;  ///< boarding order = arrival order
  std::uint32_t total_vertices = 0;
};

class ServePlanner {
 public:
  ServePlanner(const ServeConfig& config, Tick est_batch_ticks);

  /// Throws std::invalid_argument for configs no planner could honor
  /// (zero batch size, zero vertices, batch-size overflow, unusable
  /// arrival process). The constructor calls this; serve() calls it
  /// up front so a bad config fails before warm-up burns batches.
  static void validate(const ServeConfig& config);

  /// Next planned batch, or nullopt once every arrival is decided and the
  /// queue is empty. Decisions are made strictly in virtual-tick order;
  /// at a tie between an arrival and a batch close, the close happens
  /// first (the departing batch cannot see a same-tick arrival).
  std::optional<PlannedBatch> next();

  /// Normal end of planning: stops the queue (it is empty by then).
  void finish();

  /// Unwind path: drain whatever is still queued as kShedShutdown and
  /// stop. Safe to call in any state, including after finish().
  void shutdown() noexcept;

  // Running tallies, valid after every next() call (the serve loop
  // publishes the deltas as serving.* counters between batches).
  std::uint64_t arrived() const noexcept { return arrived_; }
  std::uint64_t admitted() const noexcept { return admitted_; }
  std::uint64_t shed_slo() const noexcept { return shed_slo_; }
  std::uint64_t shed_queue_full() const noexcept { return shed_queue_full_; }
  std::uint64_t shed_shutdown() const noexcept { return shed_shutdown_; }
  std::size_t queue_size() const noexcept { return queue_.size(); }
  std::size_t queue_peak() const noexcept { return queue_.peak_size(); }
  Lifecycle queue_state() const noexcept { return queue_.state(); }

  /// Per-request ledger, indexed by request id. Shed outcomes are final
  /// as soon as the planner decides them; admitted requests keep their
  /// batch assignment here and receive completion outcomes from the
  /// serve loop's measured-clock pricing.
  std::vector<RequestRecord>& records() noexcept { return records_; }
  const std::vector<RequestRecord>& records() const noexcept {
    return records_;
  }

 private:
  void process_arrival();

  ServeConfig config_;
  std::vector<Tick> arrivals_;
  std::size_t next_arrival_ = 0;
  RequestQueue queue_;
  DynamicBatcher batcher_;
  AdmissionController admission_;
  Tick server_free_ = 0;
  std::uint64_t next_ordinal_ = 0;
  std::vector<RequestRecord> records_;
  std::uint64_t arrived_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_slo_ = 0;
  std::uint64_t shed_queue_full_ = 0;
  std::uint64_t shed_shutdown_ = 0;
};

}  // namespace gt::serving
