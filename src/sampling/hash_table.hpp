// The VID hash table shared by neighbor sampling (S) and graph reindexing
// (R): original VID -> subgraph-local new VID, new VIDs handed out densely
// in insertion order (paper Fig 4, step 2).
//
// Both tasks hammer this table from multiple threads, which is the lock
// contention the service-wide tensor scheduler relaxes (paper Fig 14).
// The implementation uses striped locking and counts both acquisitions and
// *contended* acquisitions (a failed try_lock before blocking), so the
// contention experiments can report real measurements.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"

namespace gt::sampling {

class VidHashTable {
 public:
  /// `stripes` must be a power of two.
  explicit VidHashTable(std::size_t stripes = 64);

  /// Get the new VID for `orig`, inserting the next dense id if absent.
  /// `*is_new` (optional) reports whether an insertion happened.
  /// Thread-safe.
  Vid insert_or_get(Vid orig, bool* is_new = nullptr);

  /// Lookup only; returns kInvalidVid if absent. Thread-safe.
  Vid lookup(Vid orig) const;

  /// Number of distinct vertices inserted so far.
  Vid size() const noexcept {
    return next_id_.load(std::memory_order_acquire);
  }

  /// Insertion-ordered original VIDs (new VID -> original VID). Only valid
  /// while no concurrent insertions run.
  std::vector<Vid> insertion_order() const;

  /// Allocation-free insertion_order(): assigns into `out`, reusing its
  /// capacity. Only valid while no concurrent insertions run.
  void insertion_order_into(std::vector<Vid>& out) const;

  /// Drop every entry but keep bucket arrays and the order vector's
  /// capacity, so a reused table reaches steady state with no rehashing.
  /// Contention counters restart too: a cleared table reports per-run
  /// counts exactly like a freshly constructed one. Not thread-safe.
  void clear();

  // -- Contention accounting -------------------------------------------------
  std::uint64_t lock_acquisitions() const noexcept {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  std::uint64_t contended_acquisitions() const noexcept {
    return contended_.load(std::memory_order_relaxed);
  }
  void reset_contention_counters() noexcept;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Vid, Vid> map;
  };

  std::size_t stripe_of(Vid orig) const noexcept {
    // Multiplicative hash so consecutive VIDs spread over stripes.
    return (orig * 0x9e3779b1u) & (stripes_.size() - 1);
  }

  std::vector<Stripe> stripes_;
  std::atomic<Vid> next_id_{0};
  // Dense id -> original vid; guarded by order_mu_.
  mutable std::mutex order_mu_;
  std::vector<Vid> order_;
  mutable std::atomic<std::uint64_t> acquisitions_{0};
  mutable std::atomic<std::uint64_t> contended_{0};
};

}  // namespace gt::sampling
