// Embedding lookup (the K task, paper §II-B): scan the global embedding
// table by original VID and build the compact per-batch table the first GNN
// layer consumes. Chunked gathering supports the pipelined K->T overlap of
// the service-wide tensor scheduler (each ready chunk is transferred while
// the next is gathered).
#pragma once

#include <cstddef>
#include <span>

#include "datasets/embedding.hpp"
#include "tensor/matrix.hpp"
#include "util/thread_pool.hpp"

namespace gt::sampling {

class EmbeddingLookup {
 public:
  explicit EmbeddingLookup(const EmbeddingTable& table) : table_(table) {}

  /// Gather all rows for `vids` (in order) into a fresh matrix.
  Matrix gather_all(std::span<const Vid> vids) const;

  /// Gather rows [begin, end) of `vids` into `out` at the same offsets.
  /// `out` must have vids.size() rows and table dim columns.
  void gather_chunk(std::span<const Vid> vids, std::size_t begin,
                    std::size_t end, Matrix& out) const;

  /// Fan the gather out over the pool in `chunks` disjoint row ranges
  /// (K-task parallelism). Row content is position-independent, so the
  /// result is bit-identical to gather_chunk over the full range.
  void gather_parallel(std::span<const Vid> vids, ThreadPool& pool,
                       std::size_t chunks, Matrix& out) const;

  /// Bytes a gather of n rows produces (the T task's payload size).
  std::size_t gathered_bytes(std::size_t rows) const noexcept {
    return rows * table_.dim() * sizeof(float);
  }

  const EmbeddingTable& table() const noexcept { return table_; }

 private:
  const EmbeddingTable& table_;
};

}  // namespace gt::sampling
