// Multi-tier embedding cache hierarchy for the K/T stages (DESIGN.md §15).
//
// The PaGraph-style static cache (embedding_cache.hpp, paper §VII) models a
// degree-pinned tier but is rebuilt — selection *and* row upload — on every
// batch. This type owns the tiers for the lifetime of a dataset:
//
//   * a **static tier**: the highest-out-degree vertices, selected once
//     (same ordering as EmbeddingCache so hit rates are comparable) and
//     mirrored host-side; per-batch devices re-bind the resident rows
//     without re-paying selection or upload;
//   * a **dynamic tier**: LRU or LFU over recently-used rows, with
//     replacement driven by *batch-index virtual time* and total-order
//     tie-breaks, so eviction decisions — and therefore the priced K/T
//     stats — are bit-identical across worker counts, thread counts, and
//     reruns;
//   * a **sampler-lookahead prefetcher**: the serving loop prepares batch
//     i+1 while executing batch i, so the prepared vid_order can warm the
//     dynamic tier during batch i's compute window. Rows that fit in that
//     window (inverted through the PCIe model) are priced as overlapped
//     transfer instead of critical-path K/T work.
//
// Numerics never change: every row the model consumes is byte-identical to
// an uncached flat gather. The hierarchy only re-prices which rows count
// against the scheduled lookup/transfer stages.
//
// Concurrency & faults: lookup() is const and pure — it classifies a batch
// against the current tier state without mutating it. commit() applies the
// staged admissions/touches and runs only from the serial execute path in
// batch order (mirroring SgdStage), so a faulted attempt that unwinds
// before commit leaves the tiers untouched and the retry is bit-identical.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datasets/embedding.hpp"
#include "gpusim/device.hpp"
#include "gpusim/pcie.hpp"
#include "graph/csr.hpp"
#include "sampling/ring_buffer.hpp"
#include "tensor/matrix.hpp"

namespace gt::sampling {

enum class CachePolicy {
  kStatic,  ///< whole budget degree-pinned (legacy EmbeddingCache behavior)
  kLru,     ///< whole budget dynamic, least-recently-used eviction
  kLfu,     ///< whole budget dynamic, least-frequently-used eviction
  kTiered,  ///< budget split static / dynamic-LRU (static_fraction)
};

const char* to_string(CachePolicy policy) noexcept;

/// Parse "static" | "lru" | "lfu" | "tiered"; throws std::invalid_argument.
CachePolicy parse_cache_policy(const std::string& name);

struct CacheConfig {
  std::size_t budget_bytes = 0;  ///< 0 disables the hierarchy entirely
  CachePolicy policy = CachePolicy::kStatic;
  bool prefetch = false;  ///< sampler-lookahead warm-up of the dynamic tier
  /// Fraction of the budget pinned statically under kTiered.
  double static_fraction = 0.5;
  /// Pinned ring buffer geometry for chunked miss-gathers (K->T overlap).
  RingConfig ring;
  /// PCIe model used to invert the prefetch window into a row budget and
  /// to price ring-buffer chunk transfers. Prefetch and miss staging go
  /// through pinned memory (Prepro-GT semantics).
  gpusim::PcieParams pcie{};
};

/// Cumulative, committed counters (never include faulted attempts).
struct CacheStats {
  std::uint64_t static_hits = 0;
  std::uint64_t dynamic_hits = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t prefetched_rows = 0;  ///< rows admitted by the prefetcher
  std::uint64_t batches = 0;
  std::uint64_t hits() const noexcept {
    return static_hits + dynamic_hits + prefetch_hits;
  }
  double hit_rate() const noexcept {
    const std::uint64_t total = hits() + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits()) / total;
  }
};

class CacheHierarchy {
 public:
  CacheHierarchy(const Csr& graph, const EmbeddingTable& table,
                 CacheConfig config);

  /// Classification of one batch against the current tier state. Static
  /// hits are assembled from the resident tier; every other row
  /// (dynamic/prefetch hits and misses alike) is gathered host-side this
  /// batch so numerics stay bit-identical to an uncached run — the classes
  /// differ only in how the gather/transfer is *priced*.
  struct Lookup {
    std::vector<std::uint32_t> static_slots;  // static-tier row per hit
    std::vector<std::uint32_t> static_rows;   // destination row per hit
    std::vector<Vid> gather_vids;             // rows gathered this batch
    std::vector<std::uint32_t> gather_rows;   // destination row per gather
    std::uint64_t dynamic_hits = 0;
    std::uint64_t prefetch_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t batch_index = 0;
    /// Evictions commit() will perform when applying this lookup —
    /// computable up front because admission order is deterministic.
    std::uint64_t expected_evictions = 0;
    // Staged dynamic-tier transaction, applied by commit().
    std::vector<Vid> touched;   // dynamic hits to re-stamp
    std::vector<Vid> admitted;  // unique rows to admit (prefetch + fills)
    std::uint64_t prefetched = 0;  // of `admitted`, rows the prefetcher won
    /// The prefetch-classed subset of `admitted`: commit() records these
    /// as in flight so the next batch cannot prefetch-credit the same row
    /// twice (see inflight_prefetch_).
    std::vector<Vid> prefetched_vids;

    std::uint64_t cached_rows() const noexcept {
      return static_rows.size() + dynamic_hits + prefetch_hits;
    }
    std::uint64_t total_rows() const noexcept {
      return static_rows.size() + gather_rows.size();
    }
    double hit_rate() const noexcept {
      return total_rows() == 0
                 ? 0.0
                 : static_cast<double>(cached_rows()) / total_rows();
    }
  };

  /// Pure classification at batch-index virtual time. `prefetch_armed`
  /// says the sampler prepared this batch ahead of execution; prefetch
  /// additionally requires config().prefetch and a committed prior batch
  /// whose compute window the warm-up transfers can hide under.
  Lookup lookup(std::span<const Vid> vid_order, std::uint64_t batch_index,
                bool prefetch_armed) const;

  /// Apply the staged transaction and record `compute_us` (the batch's
  /// simulated kernel time) as the next batch's prefetch overlap window.
  /// Serial execute path only; exactly once per reported batch.
  void commit(const Lookup& look, double compute_us);

  /// Re-bind the statically pinned rows to a fresh per-batch device: one
  /// resident buffer, no selection and no alloc-overhead charge — the
  /// upload happened once at hierarchy construction (modeled by the
  /// host-side mirror). Returns kInvalidBuffer when the tier is empty.
  gpusim::BufferId bind_static(gpusim::Device& dev) const;

  /// Assemble the layer-0 input table (total_rows x dim) from the resident
  /// static rows plus the freshly gathered rows in `gather_buffer`
  /// (lookup order). Mirrors EmbeddingCache::assemble.
  gpusim::BufferId assemble(gpusim::Device& dev, gpusim::BufferId static_buf,
                            const Lookup& look,
                            gpusim::BufferId gather_buffer,
                            std::size_t total_rows) const;

  /// Rows the prefetcher may warm for batch `batch_index`: the transfer
  /// budget that fits inside the previous committed batch's compute
  /// window, inverted through the pinned PCIe model. 0 until a batch has
  /// committed (no window to hide under yet).
  std::uint64_t prefetch_budget_rows(std::uint64_t batch_index) const;

  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }
  PinnedRingBuffer& ring() noexcept { return ring_; }
  std::size_t dim() const noexcept { return dim_; }
  std::size_t row_bytes() const noexcept { return row_bytes_; }
  std::size_t static_capacity_rows() const noexcept {
    return static_order_.size();
  }
  std::size_t dynamic_capacity_rows() const noexcept {
    return dynamic_capacity_;
  }
  std::size_t dynamic_size_rows() const noexcept { return dynamic_.size(); }
  bool static_contains(Vid v) const noexcept {
    return static_slot_.find(v) != static_slot_.end();
  }
  bool dynamic_contains(Vid v) const noexcept {
    return dynamic_.find(v) != dynamic_.end();
  }

 private:
  struct DynEntry {
    std::uint64_t last_used = 0;  // batch-index virtual time
    std::uint64_t freq = 0;       // accesses since admission
  };
  /// Total-order eviction key: (primary, secondary, vid). LRU uses
  /// (last_used, 0, vid); LFU uses (freq, last_used, vid). The vid
  /// component makes replacement deterministic under every tie.
  using EvictKey = std::array<std::uint64_t, 3>;
  EvictKey evict_key(Vid v, const DynEntry& e) const noexcept;
  void admit(Vid v, std::uint64_t now);

  CacheConfig config_;
  const EmbeddingTable& table_;
  std::size_t dim_ = 0;
  std::size_t row_bytes_ = 0;

  // Static tier: selection order (slot -> vid), host mirror of the
  // resident rows, and the reverse map used by lookup().
  std::vector<Vid> static_order_;
  Matrix static_mirror_;
  std::unordered_map<Vid, std::uint32_t> static_slot_;

  // Dynamic tier.
  std::size_t dynamic_capacity_ = 0;
  std::unordered_map<Vid, DynEntry> dynamic_;
  std::map<EvictKey, Vid> evict_order_;

  PinnedRingBuffer ring_;
  CacheStats stats_;
  double last_compute_us_ = 0.0;
  bool has_committed_ = false;
  /// Rows the previous commit admitted via the prefetcher — their modeled
  /// upload rides that batch's compute window, so they are "in flight"
  /// during the next lookup. A row evicted again before that lookup (tiny
  /// dynamic tier, same-commit fills) used to be re-classified kPrefetch
  /// and re-charged against the overlap budget; now it degrades to an
  /// honest miss instead of double-counting the hidden transfer.
  std::unordered_set<Vid> inflight_prefetch_;
};

}  // namespace gt::sampling
