// Degree-ordered GPU-resident embedding cache — the PaGraph-style
// extension the paper discusses in §VII: "PaGraph caches frequently
// referred embeddings in GPU's internal DRAM, thereby reducing data
// transfer latency. The work unfortunately requires high locality on
// sampled data, and its effectiveness significantly varies on the input
// datasets."
//
// Sampled sources are drawn in proportion to out-degree, so a static cache
// of the highest-out-degree vertices captures most lookups on skewed
// graphs and almost none on uniform ones (exactly the sensitivity the
// paper calls out — the ablation bench quantifies it). Cached rows live in
// device memory once per dataset; a batch's lookup/transfer then covers
// only cache misses, and a cheap device-side assemble kernel builds the
// layer-0 input table from the two sources.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "datasets/embedding.hpp"
#include "gpusim/device.hpp"
#include "graph/csr.hpp"

namespace gt::sampling {

class EmbeddingCache {
 public:
  /// Select the highest-out-degree vertices of `graph` until `budget_bytes`
  /// of embeddings are cached, and upload their rows to `dev` (one buffer,
  /// resident for the dataset's lifetime).
  EmbeddingCache(gpusim::Device& dev, const Csr& graph,
                 const EmbeddingTable& table, std::size_t budget_bytes);

  std::size_t cached_vertices() const noexcept { return slot_of_.size(); }
  std::size_t cached_bytes() const noexcept {
    return cached_vertices() * row_bytes_;
  }
  gpusim::BufferId buffer() const noexcept { return buffer_; }

  bool contains(Vid orig) const noexcept {
    return slot_of_.find(orig) != slot_of_.end();
  }

  /// Partition of a batch's vertex list into cache hits and misses.
  struct Partition {
    std::vector<std::uint32_t> hit_slots;   // cache row per hit
    std::vector<std::uint32_t> hit_rows;    // destination row in the table
    std::vector<Vid> miss_vids;             // original VIDs to gather
    std::vector<std::uint32_t> miss_rows;   // destination row per miss
    double hit_rate() const noexcept {
      const std::size_t total = hit_rows.size() + miss_rows.size();
      return total == 0 ? 0.0
                        : static_cast<double>(hit_rows.size()) / total;
    }
  };
  Partition partition(std::span<const Vid> vid_order) const;

  /// Device kernel: assemble the layer-0 input table (rows = vid_order
  /// size) from cached rows plus the uploaded miss rows. `miss_buffer`
  /// holds the gathered misses in partition order.
  gpusim::BufferId assemble(gpusim::Device& dev, const Partition& part,
                            gpusim::BufferId miss_buffer,
                            std::size_t total_rows) const;

 private:
  gpusim::Device& dev_;
  gpusim::BufferId buffer_ = gpusim::kInvalidBuffer;
  std::unordered_map<Vid, std::uint32_t> slot_of_;
  std::size_t dim_ = 0;
  std::size_t row_bytes_ = 0;
};

}  // namespace gt::sampling
