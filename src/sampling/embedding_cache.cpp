#include "sampling/embedding_cache.hpp"

#include <algorithm>
#include <numeric>

namespace gt::sampling {

EmbeddingCache::EmbeddingCache(gpusim::Device& dev, const Csr& graph,
                               const EmbeddingTable& table,
                               std::size_t budget_bytes)
    : dev_(dev), dim_(table.dim()), row_bytes_(table.dim() * sizeof(float)) {
  const std::size_t max_rows = budget_bytes / std::max<std::size_t>(
                                                  row_bytes_, 1);
  if (max_rows == 0) return;

  // Out-degree of each vertex = how often it can appear as a sampled
  // source. graph is dst-indexed CSR, so out-degree = occurrences in
  // col_idx.
  std::vector<std::uint32_t> out_degree(graph.num_vertices, 0);
  for (Vid s : graph.col_idx) ++out_degree[s];
  std::vector<Vid> order(graph.num_vertices);
  std::iota(order.begin(), order.end(), 0);
  const std::size_t rows = std::min<std::size_t>(max_rows, order.size());
  std::partial_sort(order.begin(), order.begin() + rows, order.end(),
                    [&](Vid a, Vid b) {
                      if (out_degree[a] != out_degree[b])
                        return out_degree[a] > out_degree[b];
                      return a < b;
                    });
  order.resize(rows);

  buffer_ = dev_.alloc_f32(rows, dim_, "embedding-cache");
  dev_.charge_alloc_overhead("embedding-cache");
  auto data = dev_.f32(buffer_);
  for (std::size_t slot = 0; slot < rows; ++slot) {
    table.gather_row(order[slot],
                     data.subspan(slot * dim_, dim_));
    slot_of_.emplace(order[slot], static_cast<std::uint32_t>(slot));
  }
}

EmbeddingCache::Partition EmbeddingCache::partition(
    std::span<const Vid> vid_order) const {
  Partition part;
  for (std::size_t row = 0; row < vid_order.size(); ++row) {
    auto it = slot_of_.find(vid_order[row]);
    if (it != slot_of_.end()) {
      part.hit_slots.push_back(it->second);
      part.hit_rows.push_back(static_cast<std::uint32_t>(row));
    } else {
      part.miss_vids.push_back(vid_order[row]);
      part.miss_rows.push_back(static_cast<std::uint32_t>(row));
    }
  }
  return part;
}

gpusim::BufferId EmbeddingCache::assemble(gpusim::Device& dev,
                                          const Partition& part,
                                          gpusim::BufferId miss_buffer,
                                          std::size_t total_rows) const {
  const gpusim::BufferId out =
      dev.alloc_f32(total_rows, dim_, "cache.assembled");
  dev.charge_alloc_overhead("cache.assembled");
  auto ov = dev.f32(out);
  auto cv = dev.f32(buffer_);
  std::span<const float> mv;
  if (miss_buffer != gpusim::kInvalidBuffer) mv = dev.f32(miss_buffer);

  const std::size_t hits = part.hit_rows.size();
  const std::size_t total = hits + part.miss_rows.size();
  dev.run_kernel("cache.Assemble", gpusim::KernelCategory::kOther, total,
                 [&](gpusim::BlockCtx& ctx) {
    const std::size_t i = ctx.block_id();
    if (i < hits) {
      const std::uint32_t slot = part.hit_slots[i];
      const std::uint32_t row = part.hit_rows[i];
      ctx.load(buffer_, slot, row_bytes_);
      std::copy_n(&cv[static_cast<std::size_t>(slot) * dim_], dim_,
                  &ov[static_cast<std::size_t>(row) * dim_]);
      ctx.store(out, row, row_bytes_);
    } else {
      const std::size_t m = i - hits;
      const std::uint32_t row = part.miss_rows[m];
      ctx.load(miss_buffer, static_cast<std::uint32_t>(m), row_bytes_);
      std::copy_n(&mv[m * dim_], dim_, &ov[static_cast<std::size_t>(row) * dim_]);
      ctx.store(out, row, row_bytes_);
    }
  }, gpusim::BlockSafety::kParallel);
  return out;
}

}  // namespace gt::sampling
