#include "sampling/sampler.hpp"

#include <stdexcept>

#include <algorithm>
#include <cmath>

#include "fault/fault.hpp"
#include "util/rng.hpp"

namespace gt::sampling {

const char* to_string(SamplingPriority p) {
  switch (p) {
    case SamplingPriority::kUniformRandom:  return "uniform-random";
    case SamplingPriority::kDegreeWeighted: return "degree-weighted";
  }
  return "?";
}

Eid SampledBatch::layer_edges(std::uint32_t exec_layer) const {
  Eid total = 0;
  for (std::uint32_t h = 0; h < num_layers - exec_layer; ++h)
    total += hops[h].num_edges();
  return total;
}

NeighborSampler::NeighborSampler(const Csr& graph, std::uint32_t fanout,
                                 std::uint64_t seed,
                                 SamplingPriority priority)
    : graph_(graph), fanout_(fanout), seed_(seed), priority_(priority) {
  if (fanout == 0) throw std::invalid_argument("fanout must be > 0");
  if (priority_ == SamplingPriority::kDegreeWeighted) {
    // Importance weight of a candidate neighbor = its own in-degree + 1
    // (well-connected neighbors carry more aggregate signal).
    degree_weight_.resize(graph.num_vertices);
    for (Vid v = 0; v < graph.num_vertices; ++v)
      degree_weight_[v] = static_cast<double>(graph.degree(v)) + 1.0;
  }
}

HopEdges NeighborSampler::choose_neighbors(std::span<const Vid> frontier,
                                           std::uint32_t hop) const {
  HopEdges edges;
  choose_neighbors_into(frontier, hop, edges);
  return edges;
}

void NeighborSampler::choose_neighbors_into(std::span<const Vid> frontier,
                                            std::uint32_t hop,
                                            HopEdges& edges) const {
  edges.src.clear();
  edges.dst.clear();
  edges.src.reserve(frontier.size() * fanout_);
  edges.dst.reserve(frontier.size() * fanout_);
  for (Vid v : frontier) {
    const auto neighbors = graph_.neighbors(v);
    if (neighbors.empty()) continue;
    // Unique-random sampling priority (paper cites GraphSAGE): a fresh
    // per-(vertex, hop) stream keeps results independent of threading.
    Xoshiro256 rng(derive_seed(
        seed_, (static_cast<std::uint64_t>(hop) << 32) | v));
    if (neighbors.size() <= fanout_) {
      for (Vid s : neighbors) {
        edges.src.push_back(s);
        edges.dst.push_back(v);
      }
    } else if (priority_ == SamplingPriority::kUniformRandom) {
      for (std::uint64_t idx :
           sample_without_replacement(rng, neighbors.size(), fanout_)) {
        edges.src.push_back(neighbors[idx]);
        edges.dst.push_back(v);
      }
    } else {
      // Weighted sampling without replacement (Efraimidis-Spirakis keys):
      // pick the fanout largest u^(1/w); deterministic per (vertex, hop).
      std::vector<std::pair<double, Vid>> keyed;
      keyed.reserve(neighbors.size());
      for (Vid s : neighbors) {
        const double u = std::max(rng.uniform_real(), 1e-12);
        keyed.emplace_back(std::pow(u, 1.0 / degree_weight_[s]), s);
      }
      std::partial_sort(keyed.begin(), keyed.begin() + fanout_, keyed.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      for (std::uint32_t k = 0; k < fanout_; ++k) {
        edges.src.push_back(keyed[k].second);
        edges.dst.push_back(v);
      }
    }
  }
}

void NeighborSampler::insert_vertices(VidHashTable& table,
                                      const HopEdges& edges) {
  for (Vid s : edges.src) table.insert_or_get(s);
}

SampledBatch NeighborSampler::sample(std::span<const Vid> batch,
                                     std::uint32_t layers,
                                     VidHashTable& table) const {
  SampledBatch out;
  sample_into(batch, layers, table, out);
  return out;
}

void NeighborSampler::sample_into(std::span<const Vid> batch,
                                  std::uint32_t layers, VidHashTable& table,
                                  SampledBatch& out) const {
  fault::check(fault::Site::kPreprocSample);
  if (layers == 0) throw std::invalid_argument("need at least one layer");
  if (table.size() != 0)
    throw std::invalid_argument("sample: hash table must start empty");

  out.num_layers = layers;
  out.batch.assign(batch.begin(), batch.end());
  out.set_sizes.clear();
  out.hops.resize(layers);  // per-hop edge vectors keep their capacity
  for (Vid v : batch) {
    bool is_new = false;
    table.insert_or_get(v, &is_new);
    if (!is_new)
      throw std::invalid_argument("sample: duplicate vertex in batch");
  }
  out.set_sizes.push_back(table.size());

  // Frontier for hop h: vertices first inserted during hop h-1.
  std::vector<Vid> frontier(batch.begin(), batch.end());
  for (std::uint32_t h = 1; h <= layers; ++h) {
    HopEdges& edges = out.hops[h - 1];
    choose_neighbors_into(frontier, h, edges);
    insert_vertices(table, edges);
    const Vid prev_size = out.set_sizes.back();
    const Vid new_size = table.size();
    out.set_sizes.push_back(new_size);
    // Next frontier: the newly discovered vertices, in insertion order.
    if (h < layers) {
      const auto order = table.insertion_order();
      frontier.assign(order.begin() + prev_size, order.begin() + new_size);
    }
  }
  table.insertion_order_into(out.vid_order);
}

std::vector<Vid> NeighborSampler::pick_batch(std::size_t batch_size,
                                             std::uint64_t batch_index) const {
  Xoshiro256 rng(derive_seed(seed_ ^ 0xb47cab1e, batch_index));
  const std::uint64_t n = graph_.num_vertices;
  auto picks = sample_without_replacement(
      rng, n, std::min<std::uint64_t>(batch_size, n));
  return {picks.begin(), picks.end()};
}

}  // namespace gt::sampling
