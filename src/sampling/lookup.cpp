#include "sampling/lookup.hpp"

#include <stdexcept>

namespace gt::sampling {

Matrix EmbeddingLookup::gather_all(std::span<const Vid> vids) const {
  Matrix out(vids.size(), table_.dim());
  gather_chunk(vids, 0, vids.size(), out);
  return out;
}

void EmbeddingLookup::gather_chunk(std::span<const Vid> vids,
                                   std::size_t begin, std::size_t end,
                                   Matrix& out) const {
  if (end > vids.size() || begin > end)
    throw std::out_of_range("gather_chunk: bad range");
  if (out.rows() != vids.size() || out.cols() != table_.dim())
    throw std::invalid_argument("gather_chunk: output shape mismatch");
  for (std::size_t r = begin; r < end; ++r)
    table_.gather_row(vids[r], out.row(r));
}

void EmbeddingLookup::gather_parallel(std::span<const Vid> vids,
                                      ThreadPool& pool, std::size_t chunks,
                                      Matrix& out) const {
  pool.parallel_for(0, vids.size(), chunks,
                    [this, vids, &out](std::size_t, std::size_t lo,
                                       std::size_t hi) {
                      gather_chunk(vids, lo, hi, out);
                    });
}

}  // namespace gt::sampling
