// Neighbor sampling (paper §II-B, Fig 4a).
//
// Starting from a batch of destination vertices (hop 0), each hop samples
// up to `fanout` in-neighbors of every vertex in the previous vertex set,
// allocating dense new VIDs through the shared hash table in insertion
// order. Hop h produces the edges feeding execution-layer L-h (the paper
// numbers layers in the opposite direction: its "layer 2" processes hop 1
// and runs last; our exec-layer 0 runs first on the outermost hop).
//
// The per-hop work is split the way the contention-relaxed scheduler needs
// (Fig 14c): choose_neighbors is the pure algorithm part (A) — per-vertex
// RNG, no shared state, safe to fan out across threads — and
// insert_vertices is the hash-update part (H) that the scheduler
// serializes. Per-vertex RNG streams make the sampled edge set independent
// of thread scheduling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "sampling/hash_table.hpp"

namespace gt::sampling {

/// Neighbor-selection priority (paper §II-B: "picking n vertices following
/// a certain sampling priority (e.g., unique random)").
enum class SamplingPriority {
  kUniformRandom,   // GraphSAGE-style unique random (the paper's default)
  kDegreeWeighted,  // importance sampling: prefer high in-degree neighbors
                    // (FastGCN-flavoured, paper ref [32])
};

const char* to_string(SamplingPriority p);

/// Edges discovered while sampling one hop, in ORIGINAL VIDs. Reindexing
/// (R) later maps them through the hash table.
struct HopEdges {
  std::vector<Vid> src;
  std::vector<Vid> dst;
  std::size_t num_edges() const noexcept { return src.size(); }
};

/// Everything sampling produces for one batch.
struct SampledBatch {
  std::uint32_t num_layers = 0;
  std::vector<Vid> batch;      // original batch vids (hop 0, dense ids 0..B)
  std::vector<HopEdges> hops;  // hops[h] = edges discovered at hop h+1
  std::vector<Vid> set_sizes;  // |S_0| .. |S_L| (dense-id prefix sizes)
  std::vector<Vid> vid_order;  // new vid -> original vid

  /// Edge count of execution-layer `i` (= hops 1 .. L-i combined).
  Eid layer_edges(std::uint32_t exec_layer) const;
  /// Destination count of execution-layer `i` (= |S_{L-1-i}|).
  Vid layer_dst(std::uint32_t exec_layer) const {
    return set_sizes[num_layers - 1 - exec_layer];
  }
  /// Input-table rows of execution-layer `i` (= |S_{L-i}|).
  Vid layer_vertices(std::uint32_t exec_layer) const {
    return set_sizes[num_layers - exec_layer];
  }
  /// Total distinct vertices sampled.
  Vid total_vertices() const { return set_sizes.back(); }
};

class NeighborSampler {
 public:
  /// `graph` is the full dataset in dst-indexed CSR (in-neighbor lists).
  NeighborSampler(const Csr& graph, std::uint32_t fanout, std::uint64_t seed,
                  SamplingPriority priority = SamplingPriority::kUniformRandom);

  std::uint32_t fanout() const noexcept { return fanout_; }
  SamplingPriority priority() const noexcept { return priority_; }

  /// A-part: sample up to `fanout` in-neighbors of each frontier vertex
  /// (original VIDs). Pure w.r.t. the hash table; deterministic per vertex
  /// regardless of call partitioning. `hop` salts the RNG so a vertex
  /// re-expanded at another hop draws a fresh sample.
  HopEdges choose_neighbors(std::span<const Vid> frontier,
                            std::uint32_t hop) const;

  /// Allocation-free A-part: appends into `out`'s (cleared) edge vectors,
  /// reusing their capacity. Identical output to choose_neighbors.
  void choose_neighbors_into(std::span<const Vid> frontier, std::uint32_t hop,
                             HopEdges& out) const;

  /// H-part: allocate new VIDs for every endpoint of `edges` (dsts are
  /// already present; srcs may be new).
  static void insert_vertices(VidHashTable& table, const HopEdges& edges);

  /// Serial end-to-end sampling of `layers` hops, for frameworks without a
  /// pipelined preprocessor. `table` must be empty; it is filled as a side
  /// effect (reindexing reads it afterwards).
  SampledBatch sample(std::span<const Vid> batch, std::uint32_t layers,
                      VidHashTable& table) const;

  /// Context-backed sample(): writes into `out`, reusing the capacity of
  /// its vectors (hops, set_sizes, vid_order) across batches. `table` must
  /// still start empty — callers clear() a reused table first.
  void sample_into(std::span<const Vid> batch, std::uint32_t layers,
                   VidHashTable& table, SampledBatch& out) const;

  /// Deterministically pick a batch of distinct destination vertices.
  std::vector<Vid> pick_batch(std::size_t batch_size,
                              std::uint64_t batch_index) const;

 private:
  const Csr& graph_;
  std::uint32_t fanout_;
  std::uint64_t seed_;
  SamplingPriority priority_;
  std::vector<double> degree_weight_;  // kDegreeWeighted only
};

}  // namespace gt::sampling
