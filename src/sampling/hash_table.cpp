#include "sampling/hash_table.hpp"

#include <stdexcept>

namespace gt::sampling {

namespace {
bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

VidHashTable::VidHashTable(std::size_t stripes) : stripes_(stripes) {
  if (!is_power_of_two(stripes))
    throw std::invalid_argument("stripe count must be a power of two");
}

Vid VidHashTable::insert_or_get(Vid orig, bool* is_new) {
  Stripe& stripe = stripes_[stripe_of(orig)];
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(stripe.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  auto [it, inserted] = stripe.map.try_emplace(orig, 0);
  if (inserted) {
    const Vid id = next_id_.fetch_add(1, std::memory_order_acq_rel);
    it->second = id;
    std::lock_guard order_lock(order_mu_);
    if (id >= order_.size()) order_.resize(id + 1, kInvalidVid);
    order_[id] = orig;
  }
  if (is_new != nullptr) *is_new = inserted;
  return it->second;
}

Vid VidHashTable::lookup(Vid orig) const {
  const Stripe& stripe = stripes_[stripe_of(orig)];
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(stripe.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  auto it = stripe.map.find(orig);
  return it == stripe.map.end() ? kInvalidVid : it->second;
}

std::vector<Vid> VidHashTable::insertion_order() const {
  std::lock_guard lock(order_mu_);
  return order_;
}

void VidHashTable::insertion_order_into(std::vector<Vid>& out) const {
  std::lock_guard lock(order_mu_);
  out.assign(order_.begin(), order_.end());
}

void VidHashTable::clear() {
  for (Stripe& s : stripes_) s.map.clear();
  next_id_.store(0, std::memory_order_release);
  {
    std::lock_guard lock(order_mu_);
    order_.clear();
  }
  reset_contention_counters();
}

void VidHashTable::reset_contention_counters() noexcept {
  acquisitions_.store(0, std::memory_order_relaxed);
  contended_.store(0, std::memory_order_relaxed);
}

}  // namespace gt::sampling
