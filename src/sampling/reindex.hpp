// Graph reindexing (the R task, paper §II-B / Fig 4b): translate a sampled
// layer's edges from original VIDs to the dense new VIDs by querying the
// shared hash table, and materialize the storage format(s) each framework
// wants on device: CSR (+CSC for backward) for GraphTensor and PyG-style
// frameworks, COO for DGL-style frameworks.
#pragma once

#include "graph/coo.hpp"
#include "graph/csc.hpp"
#include "graph/csr.hpp"
#include "sampling/hash_table.hpp"
#include "sampling/sampler.hpp"

namespace gt::sampling {

/// Which structures a framework needs per layer.
struct ReindexFormats {
  bool coo = false;
  bool csr = false;
  bool csc = false;
};

struct LayerGraphHost {
  Vid n_dst = 0;
  Vid n_vertices = 0;  // input-table rows of this layer
  Coo coo;             // empty unless requested
  Csr csr;
  Csc csc;
  std::uint64_t hash_lookups = 0;  // work done against the shared table
};

/// Build execution-layer `exec_layer`'s structure. Every edge endpoint is
/// resolved through `table` (contention with S is real and counted).
/// Vertex-count fields are sized to the layer: CSR has n_dst rows, CSC and
/// COO span n_vertices.
LayerGraphHost reindex_layer(const SampledBatch& batch,
                             const VidHashTable& table,
                             std::uint32_t exec_layer,
                             const ReindexFormats& formats);

/// Context-backed reindex_layer(): overwrites `out`, reusing the capacity
/// of its CSR/CSC/COO vectors, with the endpoint resolution staged through
/// `coo_scratch` (also reused). Identical output to reindex_layer.
void reindex_layer_into(const SampledBatch& batch, const VidHashTable& table,
                        std::uint32_t exec_layer,
                        const ReindexFormats& formats, LayerGraphHost& out,
                        Coo& coo_scratch);

/// Map a span of original VIDs through the table (used by tests and the
/// chunked pipeline executor).
std::vector<Vid> map_vids(const VidHashTable& table,
                          std::span<const Vid> orig);

}  // namespace gt::sampling
