// Pinned-memory ring buffer for chunked K->T overlap (DESIGN.md §15).
//
// A flat miss-gather serializes the K stage (scan the host embedding
// table) against the T stage (one big PCIe upload). lookup.hpp already
// anticipates the pipelined alternative — "each ready chunk is transferred
// while the next is gathered" — and this type realizes it: a small set of
// pinned staging slots is filled chunk by chunk, each chunk's upload
// priced through the same Transfer/PcieModel path the schedule uses, while
// the *next* chunk's gather proceeds concurrently. The slot count bounds
// the pipeline depth: the gather for chunk c+slots must wait until chunk
// c's transfer has drained its slot.
//
// Numerics: rows pass through the staging slots byte-for-byte, so the
// output is bit-identical to a flat gather; only the pricing (the Overlap
// result) reflects the pipelining.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "datasets/embedding.hpp"
#include "sampling/transfer.hpp"
#include "tensor/matrix.hpp"
#include "tensor/view.hpp"

namespace gt::sampling {

struct RingConfig {
  std::size_t slots = 4;       ///< concurrent in-flight chunks (>= 1)
  std::size_t chunk_rows = 512;  ///< rows staged per chunk (>= 1)
};

class PinnedRingBuffer {
 public:
  PinnedRingBuffer(std::size_t dim, RingConfig config);

  /// Closed-form pricing of the chunked gather/transfer pipeline.
  struct Overlap {
    std::size_t chunks = 0;
    std::size_t bytes = 0;
    double gather_us = 0.0;    ///< sum of per-chunk K gather costs
    double transfer_us = 0.0;  ///< sum of per-chunk T upload costs
    double critical_us = 0.0;  ///< pipelined makespan with slot reuse
    /// Work hidden by the pipeline: serial cost minus makespan.
    double overlapped_us() const noexcept {
      return gather_us + transfer_us - critical_us;
    }
  };

  /// Gather every row of `vids` through the staging slots into `out`
  /// (row i <- vids[i]; `out` must be vids.size() x dim) and price the
  /// chunk pipeline: chunk c's upload overlaps chunk c+1's gather; one
  /// PCIe link serializes uploads; slot reuse stalls the gather of chunk
  /// c+slots behind chunk c's upload. `us_per_gather_byte` is the host
  /// gather cost (the schedule's K rate); uploads are priced by
  /// `transfer.transfer_us`.
  Overlap gather_through(const EmbeddingTable& table,
                         std::span<const Vid> vids, MatrixView out,
                         const Transfer& transfer,
                         double us_per_gather_byte);

  const RingConfig& config() const noexcept { return config_; }
  std::size_t dim() const noexcept { return dim_; }
  std::size_t staging_bytes() const noexcept { return staging_.bytes(); }

 private:
  RingConfig config_;
  std::size_t dim_ = 0;
  Matrix staging_;  // slots * chunk_rows x dim, reused across batches
};

}  // namespace gt::sampling
