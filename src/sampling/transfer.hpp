// Host -> device transfers (the T task): upload the gathered embedding
// table and the re-indexed subgraph structures, pricing each move through
// the PCIe model. SALIENT-style frameworks and Prepro-GT stage embeddings
// in pinned memory; baseline frameworks pay the pageable staging copy.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/pcie.hpp"
#include "kernels/common.hpp"
#include "sampling/reindex.hpp"
#include "tensor/matrix.hpp"
#include "tensor/view.hpp"

namespace gt::sampling {

struct TransferResult {
  gpusim::BufferId buffer = gpusim::kInvalidBuffer;
  std::size_t bytes = 0;
  double pcie_us = 0.0;
};

class Transfer {
 public:
  Transfer(gpusim::Device& dev, gpusim::PcieModel pcie, bool pinned)
      : dev_(dev), pcie_(pcie), pinned_(pinned) {}

  bool pinned() const noexcept { return pinned_; }

  /// Upload a host matrix or view (embedding table chunk or whole).
  TransferResult upload(ConstMatrixView m, std::string name);

  /// Upload graph structures for one layer; returns total structure bytes
  /// and time. Only the requested formats are moved.
  struct LayerUpload {
    kernels::DeviceCsr csr;
    kernels::DeviceCsc csc;
    kernels::DeviceCoo coo;
    std::size_t bytes = 0;
    double pcie_us = 0.0;
  };
  LayerUpload upload_layer(const LayerGraphHost& layer,
                           const ReindexFormats& formats);

  /// Time to move `bytes` under this transfer's pinning mode.
  double transfer_us(std::size_t bytes) const {
    return pcie_.transfer_us(bytes, pinned_);
  }

 private:
  gpusim::Device& dev_;
  gpusim::PcieModel pcie_;
  bool pinned_;
};

}  // namespace gt::sampling
