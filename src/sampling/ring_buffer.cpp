#include "sampling/ring_buffer.hpp"

#include <algorithm>
#include <cassert>

namespace gt::sampling {

PinnedRingBuffer::PinnedRingBuffer(std::size_t dim, RingConfig config)
    : config_(config), dim_(dim) {
  config_.slots = std::max<std::size_t>(config_.slots, 1);
  config_.chunk_rows = std::max<std::size_t>(config_.chunk_rows, 1);
  staging_ = Matrix(config_.slots * config_.chunk_rows, dim_);
}

PinnedRingBuffer::Overlap PinnedRingBuffer::gather_through(
    const EmbeddingTable& table, std::span<const Vid> vids, MatrixView out,
    const Transfer& transfer, double us_per_gather_byte) {
  assert(out.rows() == vids.size() && out.cols() == dim_);
  Overlap ov;
  if (vids.empty()) return ov;

  const std::size_t row_bytes = dim_ * sizeof(float);
  // Per-slot drain time: the upload that must finish before the slot can
  // be refilled. One host gather lane, one PCIe lane.
  std::vector<double> slot_free(config_.slots, 0.0);
  double gather_done = 0.0;
  double pcie_free = 0.0;

  for (std::size_t begin = 0; begin < vids.size();
       begin += config_.chunk_rows) {
    const std::size_t end =
        std::min(begin + config_.chunk_rows, vids.size());
    const std::size_t rows = end - begin;
    const std::size_t slot = ov.chunks % config_.slots;

    // Real data path: stage the chunk's rows in the pinned slot, then
    // copy them out at their destination offsets — byte-identical to a
    // flat gather.
    for (std::size_t r = 0; r < rows; ++r) {
      auto staged = staging_.row(slot * config_.chunk_rows + r);
      table.gather_row(vids[begin + r], staged);
      std::copy(staged.begin(), staged.end(), out.row(begin + r).begin());
    }

    // Pricing: gather waits for the slot to drain, upload waits for the
    // gather and for the PCIe lane.
    const std::size_t chunk_bytes = rows * row_bytes;
    const double g_us = static_cast<double>(chunk_bytes) * us_per_gather_byte;
    const double t_us = transfer.transfer_us(chunk_bytes);
    const double g_start = std::max(gather_done, slot_free[slot]);
    gather_done = g_start + g_us;
    const double t_start = std::max(gather_done, pcie_free);
    pcie_free = t_start + t_us;
    slot_free[slot] = pcie_free;

    ov.bytes += chunk_bytes;
    ov.gather_us += g_us;
    ov.transfer_us += t_us;
    ++ov.chunks;
  }
  ov.critical_us = pcie_free;
  return ov;
}

}  // namespace gt::sampling
