#include "sampling/reindex.hpp"

#include <stdexcept>

#include "graph/convert.hpp"

namespace gt::sampling {

LayerGraphHost reindex_layer(const SampledBatch& batch,
                             const VidHashTable& table,
                             std::uint32_t exec_layer,
                             const ReindexFormats& formats) {
  if (exec_layer >= batch.num_layers)
    throw std::out_of_range("reindex_layer: bad layer index");
  LayerGraphHost out;
  out.n_dst = batch.layer_dst(exec_layer);
  out.n_vertices = batch.layer_vertices(exec_layer);

  // Resolve every endpoint of hops 1 .. L-exec_layer through the table.
  Coo coo;
  coo.num_vertices = out.n_vertices;
  const std::uint32_t num_hops = batch.num_layers - exec_layer;
  for (std::uint32_t h = 0; h < num_hops; ++h) {
    const HopEdges& edges = batch.hops[h];
    for (std::size_t e = 0; e < edges.num_edges(); ++e) {
      const Vid s = table.lookup(edges.src[e]);
      const Vid d = table.lookup(edges.dst[e]);
      out.hash_lookups += 2;
      if (s == kInvalidVid || d == kInvalidVid)
        throw std::logic_error("reindex_layer: endpoint missing from table");
      coo.src.push_back(s);
      coo.dst.push_back(d);
    }
  }

  if (formats.csr) {
    // Every dst id is < n_dst by the dense-prefix invariant; rows beyond
    // it come out empty, keeping the structure a valid full-height CSR.
    for (Vid d : coo.dst)
      if (d >= out.n_dst)
        throw std::logic_error("reindex_layer: dst outside dense prefix");
    out.csr = coo_to_csr(coo);
  }
  if (formats.csc) out.csc = coo_to_csc(coo);
  if (formats.coo) out.coo = std::move(coo);
  return out;
}

std::vector<Vid> map_vids(const VidHashTable& table,
                          std::span<const Vid> orig) {
  std::vector<Vid> out;
  out.reserve(orig.size());
  for (Vid v : orig) out.push_back(table.lookup(v));
  return out;
}

}  // namespace gt::sampling
