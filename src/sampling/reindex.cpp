#include "sampling/reindex.hpp"

#include <stdexcept>

#include "graph/convert.hpp"

namespace gt::sampling {

LayerGraphHost reindex_layer(const SampledBatch& batch,
                             const VidHashTable& table,
                             std::uint32_t exec_layer,
                             const ReindexFormats& formats) {
  LayerGraphHost out;
  Coo scratch;
  reindex_layer_into(batch, table, exec_layer, formats, out, scratch);
  return out;
}

void reindex_layer_into(const SampledBatch& batch, const VidHashTable& table,
                        std::uint32_t exec_layer,
                        const ReindexFormats& formats, LayerGraphHost& out,
                        Coo& coo_scratch) {
  if (exec_layer >= batch.num_layers)
    throw std::out_of_range("reindex_layer: bad layer index");
  out.n_dst = batch.layer_dst(exec_layer);
  out.n_vertices = batch.layer_vertices(exec_layer);
  out.hash_lookups = 0;

  // Resolve every endpoint of hops 1 .. L-exec_layer through the table.
  Coo& coo = coo_scratch;
  coo.num_vertices = out.n_vertices;
  coo.src.clear();
  coo.dst.clear();
  const std::uint32_t num_hops = batch.num_layers - exec_layer;
  for (std::uint32_t h = 0; h < num_hops; ++h) {
    const HopEdges& edges = batch.hops[h];
    for (std::size_t e = 0; e < edges.num_edges(); ++e) {
      const Vid s = table.lookup(edges.src[e]);
      const Vid d = table.lookup(edges.dst[e]);
      out.hash_lookups += 2;
      if (s == kInvalidVid || d == kInvalidVid)
        throw std::logic_error("reindex_layer: endpoint missing from table");
      coo.src.push_back(s);
      coo.dst.push_back(d);
    }
  }

  if (formats.csr) {
    // Every dst id is < n_dst by the dense-prefix invariant; rows beyond
    // it come out empty, keeping the structure a valid full-height CSR.
    for (Vid d : coo.dst)
      if (d >= out.n_dst)
        throw std::logic_error("reindex_layer: dst outside dense prefix");
    coo_to_csr_into(coo, out.csr);
  } else {
    out.csr.num_vertices = 0;
    out.csr.row_ptr.clear();
    out.csr.col_idx.clear();
  }
  if (formats.csc) {
    coo_to_csc_into(coo, out.csc);
  } else {
    out.csc.num_vertices = 0;
    out.csc.col_ptr.clear();
    out.csc.row_idx.clear();
  }
  if (formats.coo) {
    // Copy (not move): both the scratch and the reused output keep their
    // capacity for the next batch.
    out.coo.num_vertices = coo.num_vertices;
    out.coo.src.assign(coo.src.begin(), coo.src.end());
    out.coo.dst.assign(coo.dst.begin(), coo.dst.end());
  } else {
    out.coo.num_vertices = 0;
    out.coo.src.clear();
    out.coo.dst.clear();
  }
}

std::vector<Vid> map_vids(const VidHashTable& table,
                          std::span<const Vid> orig) {
  std::vector<Vid> out;
  out.reserve(orig.size());
  for (Vid v : orig) out.push_back(table.lookup(v));
  return out;
}

}  // namespace gt::sampling
