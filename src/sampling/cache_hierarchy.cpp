#include "sampling/cache_hierarchy.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace gt::sampling {

const char* to_string(CachePolicy policy) noexcept {
  switch (policy) {
    case CachePolicy::kStatic: return "static";
    case CachePolicy::kLru: return "lru";
    case CachePolicy::kLfu: return "lfu";
    case CachePolicy::kTiered: return "tiered";
  }
  return "?";
}

CachePolicy parse_cache_policy(const std::string& name) {
  if (name == "static") return CachePolicy::kStatic;
  if (name == "lru") return CachePolicy::kLru;
  if (name == "lfu") return CachePolicy::kLfu;
  if (name == "tiered") return CachePolicy::kTiered;
  throw std::invalid_argument("unknown cache policy '" + name +
                              "' (expected static|lru|lfu|tiered)");
}

CacheHierarchy::CacheHierarchy(const Csr& graph, const EmbeddingTable& table,
                               CacheConfig config)
    : config_(config),
      table_(table),
      dim_(table.dim()),
      row_bytes_(table.dim() * sizeof(float)),
      ring_(table.dim(), config.ring) {
  const std::size_t budget_rows =
      config_.budget_bytes / std::max<std::size_t>(row_bytes_, 1);
  std::size_t static_rows = 0;
  switch (config_.policy) {
    case CachePolicy::kStatic: static_rows = budget_rows; break;
    case CachePolicy::kLru:
    case CachePolicy::kLfu: static_rows = 0; break;
    case CachePolicy::kTiered:
      static_rows = static_cast<std::size_t>(
          static_cast<double>(budget_rows) *
          std::clamp(config_.static_fraction, 0.0, 1.0));
      break;
  }
  static_rows = std::min<std::size_t>(static_rows, graph.num_vertices);

  if (static_rows > 0) {
    // Identical selection to EmbeddingCache: out-degree = occurrences as a
    // sampled source in the dst-indexed CSR's col_idx, ties by vid.
    std::vector<std::uint32_t> out_degree(graph.num_vertices, 0);
    for (Vid s : graph.col_idx) ++out_degree[s];
    std::vector<Vid> order(graph.num_vertices);
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + static_rows,
                      order.end(), [&](Vid a, Vid b) {
                        if (out_degree[a] != out_degree[b])
                          return out_degree[a] > out_degree[b];
                        return a < b;
                      });
    order.resize(static_rows);
    static_order_ = std::move(order);
    static_mirror_ = Matrix(static_rows, dim_);
    for (std::size_t slot = 0; slot < static_rows; ++slot) {
      table_.gather_row(static_order_[slot], static_mirror_.row(slot));
      static_slot_.emplace(static_order_[slot],
                           static_cast<std::uint32_t>(slot));
    }
  }
  if (config_.policy != CachePolicy::kStatic)
    dynamic_capacity_ = budget_rows - static_rows;
}

CacheHierarchy::EvictKey CacheHierarchy::evict_key(
    Vid v, const DynEntry& e) const noexcept {
  if (config_.policy == CachePolicy::kLfu)
    return {e.freq, e.last_used, static_cast<std::uint64_t>(v)};
  return {e.last_used, 0, static_cast<std::uint64_t>(v)};
}

std::uint64_t CacheHierarchy::prefetch_budget_rows(
    [[maybe_unused]] std::uint64_t batch_index) const {
  if (!has_committed_ || dynamic_capacity_ == 0) return 0;
  // Invert the pinned PCIe model: how many rows can upload inside the
  // previous batch's compute window without spilling past it?
  if (last_compute_us_ <= config_.pcie.latency_us) return 0;
  const double budget_bytes = (last_compute_us_ - config_.pcie.latency_us) *
                              config_.pcie.bw_bytes_per_us;
  const auto rows = static_cast<std::uint64_t>(
      budget_bytes / static_cast<double>(std::max<std::size_t>(row_bytes_, 1)));
  return std::min<std::uint64_t>(rows, dynamic_capacity_);
}

CacheHierarchy::Lookup CacheHierarchy::lookup(std::span<const Vid> vid_order,
                                              std::uint64_t batch_index,
                                              bool prefetch_armed) const {
  Lookup look;
  look.batch_index = batch_index;
  std::uint64_t prefetch_left =
      (config_.prefetch && prefetch_armed) ? prefetch_budget_rows(batch_index)
                                           : 0;

  // Classification is against the *pre-batch* tier state; duplicates of a
  // VID within one batch reuse the first occurrence's class so admission
  // and touch lists stay unique (total-order determinism).
  enum class RowClass : unsigned char { kDynamic, kPrefetch, kMiss };
  std::unordered_map<Vid, RowClass> batch_class;
  batch_class.reserve(vid_order.size());

  for (std::size_t row = 0; row < vid_order.size(); ++row) {
    const Vid v = vid_order[row];
    const auto st = static_slot_.find(v);
    if (st != static_slot_.end()) {
      look.static_slots.push_back(st->second);
      look.static_rows.push_back(static_cast<std::uint32_t>(row));
      continue;
    }
    // Dynamic/prefetch hits and misses are all gathered this batch so the
    // assembled table is bit-identical to an uncached gather.
    look.gather_vids.push_back(v);
    look.gather_rows.push_back(static_cast<std::uint32_t>(row));

    auto seen = batch_class.find(v);
    if (seen == batch_class.end()) {
      RowClass cls;
      if (dynamic_.find(v) != dynamic_.end()) {
        cls = RowClass::kDynamic;
        look.touched.push_back(v);
      } else if (prefetch_left > 0 && dynamic_capacity_ > 0 &&
                 inflight_prefetch_.find(v) == inflight_prefetch_.end()) {
        // A row the previous commit already prefetch-admitted may have
        // been evicted again by that commit's own fills; its upload is
        // still in flight, so re-crediting it here would double-charge
        // the overlap window. It falls through to the miss class instead.
        cls = RowClass::kPrefetch;
        --prefetch_left;
        look.admitted.push_back(v);
        look.prefetched_vids.push_back(v);
        ++look.prefetched;
      } else {
        cls = RowClass::kMiss;
        if (dynamic_capacity_ > 0) look.admitted.push_back(v);  // cache fill
      }
      seen = batch_class.emplace(v, cls).first;
    }
    switch (seen->second) {
      case RowClass::kDynamic: ++look.dynamic_hits; break;
      case RowClass::kPrefetch: ++look.prefetch_hits; break;
      case RowClass::kMiss: ++look.misses; break;
    }
  }
  const std::uint64_t after = dynamic_.size() + look.admitted.size();
  look.expected_evictions =
      after > dynamic_capacity_ ? after - dynamic_capacity_ : 0;
  return look;
}

void CacheHierarchy::admit(Vid v, std::uint64_t now) {
  if (dynamic_capacity_ == 0) return;
  if (dynamic_.size() >= dynamic_capacity_) {
    const auto victim = evict_order_.begin();
    dynamic_.erase(victim->second);
    evict_order_.erase(victim);
    ++stats_.evictions;
  }
  DynEntry e;
  e.last_used = now;
  e.freq = 1;
  dynamic_.emplace(v, e);
  evict_order_.emplace(evict_key(v, e), v);
}

void CacheHierarchy::commit(const Lookup& look, double compute_us) {
  const std::uint64_t now = look.batch_index;
  // Touches first: rows the batch actually hit are re-stamped before this
  // batch's admissions start evicting.
  for (Vid v : look.touched) {
    auto it = dynamic_.find(v);
    assert(it != dynamic_.end());
    evict_order_.erase(evict_key(v, it->second));
    it->second.last_used = now;
    ++it->second.freq;
    evict_order_.emplace(evict_key(v, it->second), v);
  }
  const std::uint64_t evictions_before = stats_.evictions;
  for (Vid v : look.admitted) admit(v, now);
  assert(stats_.evictions - evictions_before == look.expected_evictions);
  (void)evictions_before;

  stats_.static_hits += look.static_rows.size();
  stats_.dynamic_hits += look.dynamic_hits;
  stats_.prefetch_hits += look.prefetch_hits;
  stats_.misses += look.misses;
  stats_.prefetched_rows += look.prefetched;
  ++stats_.batches;
  last_compute_us_ = compute_us;
  has_committed_ = true;
  inflight_prefetch_.clear();
  inflight_prefetch_.insert(look.prefetched_vids.begin(),
                            look.prefetched_vids.end());
}

gpusim::BufferId CacheHierarchy::bind_static(gpusim::Device& dev) const {
  if (static_order_.empty()) return gpusim::kInvalidBuffer;
  // Residency is dataset-lifetime: the selection and upload were paid once
  // at construction (host mirror), so re-binding to this batch's device
  // charges no alloc overhead and no transfer — only the memory footprint.
  const gpusim::BufferId buf =
      dev.alloc_f32(static_order_.size(), dim_, "cache.static");
  auto data = dev.f32(buf);
  std::copy(static_mirror_.data().begin(), static_mirror_.data().end(),
            data.begin());
  return buf;
}

gpusim::BufferId CacheHierarchy::assemble(gpusim::Device& dev,
                                          gpusim::BufferId static_buf,
                                          const Lookup& look,
                                          gpusim::BufferId gather_buffer,
                                          std::size_t total_rows) const {
  const gpusim::BufferId out =
      dev.alloc_f32(total_rows, dim_, "cache.assembled");
  dev.charge_alloc_overhead("cache.assembled");
  auto ov = dev.f32(out);
  std::span<const float> sv;
  if (static_buf != gpusim::kInvalidBuffer) sv = dev.f32(static_buf);
  std::span<const float> gv;
  if (gather_buffer != gpusim::kInvalidBuffer) gv = dev.f32(gather_buffer);

  const std::size_t hits = look.static_rows.size();
  const std::size_t total = hits + look.gather_rows.size();
  dev.run_kernel("cache.Assemble", gpusim::KernelCategory::kOther, total,
                 [&](gpusim::BlockCtx& ctx) {
    const std::size_t i = ctx.block_id();
    if (i < hits) {
      const std::uint32_t slot = look.static_slots[i];
      const std::uint32_t row = look.static_rows[i];
      ctx.load(static_buf, slot, row_bytes_);
      std::copy_n(&sv[static_cast<std::size_t>(slot) * dim_], dim_,
                  &ov[static_cast<std::size_t>(row) * dim_]);
      ctx.store(out, row, row_bytes_);
    } else {
      const std::size_t g = i - hits;
      const std::uint32_t row = look.gather_rows[g];
      ctx.load(gather_buffer, static_cast<std::uint32_t>(g), row_bytes_);
      std::copy_n(&gv[g * dim_], dim_,
                  &ov[static_cast<std::size_t>(row) * dim_]);
      ctx.store(out, row, row_bytes_);
    }
  }, gpusim::BlockSafety::kParallel);
  return out;
}

}  // namespace gt::sampling
