#include "sampling/transfer.hpp"

namespace gt::sampling {

TransferResult Transfer::upload(ConstMatrixView m, std::string name) {
  TransferResult result;
  result.buffer = kernels::upload_matrix(dev_, m, std::move(name));
  result.bytes = m.bytes();
  result.pcie_us = pcie_.transfer_us(result.bytes, pinned_);
  return result;
}

Transfer::LayerUpload Transfer::upload_layer(const LayerGraphHost& layer,
                                             const ReindexFormats& formats) {
  if (formats.csc && !formats.csr)
    throw std::invalid_argument(
        "upload_layer: CSC upload derives from the host CSR; request both");
  LayerUpload up;
  if (formats.csr) {
    up.csr = kernels::upload_csr(dev_, layer.csr, layer.n_dst);
    up.bytes += (static_cast<std::size_t>(layer.n_dst) + 1 +
                 layer.csr.num_edges()) *
                sizeof(std::uint32_t);
  }
  if (formats.csc) {
    // Built on device from the CSR upload path in kernels::upload_csc,
    // which also needs the host CSR.
    up.csc = kernels::upload_csc(dev_, layer.csr, layer.n_dst);
    up.bytes += (static_cast<std::size_t>(layer.n_vertices) + 1 +
                 2 * layer.csr.num_edges()) *
                sizeof(std::uint32_t);
  }
  if (formats.coo) {
    up.coo = kernels::upload_coo(dev_, layer.coo, layer.n_dst);
    up.bytes += 2 * layer.coo.num_edges() * sizeof(std::uint32_t);
  }
  up.pcie_us = pcie_.transfer_us(up.bytes, pinned_);
  return up;
}

}  // namespace gt::sampling
