#include "graph/coo.hpp"

#include <algorithm>
#include <numeric>

namespace gt {

bool Coo::valid() const noexcept {
  if (src.size() != dst.size()) return false;
  for (Vid v : src)
    if (v >= num_vertices) return false;
  for (Vid v : dst)
    if (v >= num_vertices) return false;
  return true;
}

namespace {
void sort_edges(std::vector<Vid>& key, std::vector<Vid>& other) {
  const std::size_t n = key.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (key[a] != key[b]) return key[a] < key[b];
                     return other[a] < other[b];
                   });
  std::vector<Vid> k(n), o(n);
  for (std::size_t i = 0; i < n; ++i) {
    k[i] = key[order[i]];
    o[i] = other[order[i]];
  }
  key = std::move(k);
  other = std::move(o);
}
}  // namespace

void Coo::sort_by_dst() { sort_edges(dst, src); }
void Coo::sort_by_src() { sort_edges(src, dst); }

}  // namespace gt
