// Fundamental graph identifier types shared by every module.
//
// Conventions (following the paper, §II-A and Figure 1):
//  * An edge (src -> dst) contributes src's embedding to dst's aggregation.
//  * CSR in this codebase is *destination-indexed*: for each dst VID the
//    pointer array locates the list of its src (in-)neighbors. This is the
//    layout GNN forward aggregation wants ("CSR fits well with FWP").
//  * CSC is *source-indexed*: for each src VID the list of its dst
//    (out-)neighbors — the layout backward propagation wants.
#pragma once

#include <cstdint>
#include <limits>

namespace gt {

/// Vertex identifier. 32 bits: the largest scaled dataset here has ~10^5
/// vertices, and subgraph re-indexing always produces dense small ids.
using Vid = std::uint32_t;

/// Edge identifier / edge count.
using Eid = std::uint64_t;

inline constexpr Vid kInvalidVid = std::numeric_limits<Vid>::max();

}  // namespace gt
