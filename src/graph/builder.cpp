#include "graph/builder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gt {

void GraphBuilder::add_edge(Vid src, Vid dst) {
  if (src >= num_vertices_ || dst >= num_vertices_)
    throw std::out_of_range("GraphBuilder::add_edge: VID out of range");
  src_.push_back(src);
  dst_.push_back(dst);
}

void GraphBuilder::dedup() {
  const std::size_t n = src_.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (dst_[a] != dst_[b]) return dst_[a] < dst_[b];
    return src_[a] < src_[b];
  });
  std::vector<Vid> s, d;
  s.reserve(n);
  d.reserve(n);
  for (std::size_t i : order) {
    if (!s.empty() && s.back() == src_[i] && d.back() == dst_[i]) continue;
    s.push_back(src_[i]);
    d.push_back(dst_[i]);
  }
  src_ = std::move(s);
  dst_ = std::move(d);
}

void GraphBuilder::drop_self_loops() {
  std::size_t w = 0;
  for (std::size_t i = 0; i < src_.size(); ++i) {
    if (src_[i] == dst_[i]) continue;
    src_[w] = src_[i];
    dst_[w] = dst_[i];
    ++w;
  }
  src_.resize(w);
  dst_.resize(w);
}

Coo GraphBuilder::build_coo() {
  Coo coo;
  coo.num_vertices = num_vertices_;
  coo.src = std::move(src_);
  coo.dst = std::move(dst_);
  src_.clear();
  dst_.clear();
  return coo;
}

}  // namespace gt
