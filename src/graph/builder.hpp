// Incremental edge-list builder with optional de-duplication; the synthetic
// dataset generators and tests construct graphs through this.
#pragma once

#include <vector>

#include "graph/coo.hpp"

namespace gt {

class GraphBuilder {
 public:
  explicit GraphBuilder(Vid num_vertices) : num_vertices_(num_vertices) {}

  Vid num_vertices() const noexcept { return num_vertices_; }
  Eid num_edges() const noexcept { return src_.size(); }

  /// Append edge src -> dst. VIDs must be < num_vertices.
  void add_edge(Vid src, Vid dst);

  /// Append both directions.
  void add_undirected(Vid a, Vid b) {
    add_edge(a, b);
    add_edge(b, a);
  }

  /// Remove exact duplicate (src, dst) pairs; keeps first occurrence order
  /// after a sort (result is dst-major sorted).
  void dedup();

  /// Remove self loops (src == dst).
  void drop_self_loops();

  /// Finalize into COO; the builder is left empty.
  Coo build_coo();

 private:
  Vid num_vertices_;
  std::vector<Vid> src_;
  std::vector<Vid> dst_;
};

}  // namespace gt
