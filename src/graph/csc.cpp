#include "graph/csc.hpp"

namespace gt {

bool Csc::valid() const noexcept {
  if (col_ptr.size() != static_cast<std::size_t>(num_vertices) + 1)
    return false;
  if (col_ptr.front() != 0) return false;
  for (std::size_t i = 1; i < col_ptr.size(); ++i)
    if (col_ptr[i] < col_ptr[i - 1]) return false;
  if (col_ptr.back() != row_idx.size()) return false;
  for (Vid v : row_idx)
    if (v >= num_vertices) return false;
  return true;
}

}  // namespace gt
