// Source-indexed compressed sparse columns (the paper's CSC): col_ptr is
// indexed by src VID and row_idx holds the dst VIDs it points to. Backward
// propagation traverses this direction (loss flows dst -> src, §II-A).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace gt {

struct Csc {
  Vid num_vertices = 0;
  std::vector<Eid> col_ptr;  // size num_vertices + 1; indexed by src VID
  std::vector<Vid> row_idx;  // dst VIDs, grouped by src

  Eid num_edges() const noexcept { return row_idx.size(); }

  /// Out-neighbors (destinations) of `src`.
  std::span<const Vid> neighbors(Vid src) const noexcept {
    return {row_idx.data() + col_ptr[src],
            row_idx.data() + col_ptr[src + 1]};
  }

  /// Out-degree of `src`.
  Eid degree(Vid src) const noexcept {
    return col_ptr[src + 1] - col_ptr[src];
  }

  std::size_t storage_bytes() const noexcept {
    return col_ptr.size() * sizeof(Eid) + row_idx.size() * sizeof(Vid);
  }

  bool valid() const noexcept;

  bool operator==(const Csc&) const = default;
};

}  // namespace gt
