#include "graph/csr.hpp"

namespace gt {

bool Csr::valid() const noexcept {
  if (row_ptr.size() != static_cast<std::size_t>(num_vertices) + 1)
    return false;
  if (row_ptr.front() != 0) return false;
  for (std::size_t i = 1; i < row_ptr.size(); ++i)
    if (row_ptr[i] < row_ptr[i - 1]) return false;
  if (row_ptr.back() != col_idx.size()) return false;
  for (Vid v : col_idx)
    if (v >= num_vertices) return false;
  return true;
}

}  // namespace gt
