// Format translations between COO / CSR / CSC.
//
// The Graph-approach baseline pays for these on the GPU critical path
// (paper Figure 5c / Figure 16 "format translation"); GraphTensor's NAPA
// avoids them entirely by consuming CSR directly. Every conversion returns a
// TranslationCost describing the work done so the GPU simulator can charge a
// faithful latency for it.
#pragma once

#include <cstddef>

#include "graph/coo.hpp"
#include "graph/csc.hpp"
#include "graph/csr.hpp"

namespace gt {

/// Work accounting for one format translation.
struct TranslationCost {
  std::size_t elements_sorted = 0;  // edge entries passed through a sort
  std::size_t bytes_read = 0;
  std::size_t bytes_written = 0;
  std::size_t temp_bytes = 0;  // peak scratch allocation (extra GPU buffers)

  TranslationCost& operator+=(const TranslationCost& o) noexcept {
    elements_sorted += o.elements_sorted;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    temp_bytes = temp_bytes > o.temp_bytes ? temp_bytes : o.temp_bytes;
    return *this;
  }
};

/// COO -> CSR (dst-indexed): counting sort over dst VIDs.
Csr coo_to_csr(const Coo& coo, TranslationCost* cost = nullptr);

/// COO -> CSC (src-indexed): counting sort over src VIDs.
Csc coo_to_csc(const Coo& coo, TranslationCost* cost = nullptr);

/// In-place forms of the two hot conversions: overwrite `out`, reusing its
/// vectors' capacity (the batch-context steady state). Identical output and
/// cost accounting to the owning forms.
void coo_to_csr_into(const Coo& coo, Csr& out, TranslationCost* cost = nullptr);
void coo_to_csc_into(const Coo& coo, Csc& out, TranslationCost* cost = nullptr);

/// CSR -> COO: expand the pointer array back to per-edge dst VIDs.
Coo csr_to_coo(const Csr& csr, TranslationCost* cost = nullptr);

/// CSC -> COO.
Coo csc_to_coo(const Csc& csc, TranslationCost* cost = nullptr);

/// CSR -> CSC without materializing COO (single counting pass).
Csc csr_to_csc(const Csr& csr, TranslationCost* cost = nullptr);

/// CSC -> CSR.
Csr csc_to_csr(const Csc& csc, TranslationCost* cost = nullptr);

}  // namespace gt
