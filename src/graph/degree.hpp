// Degree statistics (paper Figure 8): average degree, stdev, and CDF of
// original vs sampled graphs motivate feature-wise scheduling.
#pragma once

#include <vector>

#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "util/stats.hpp"

namespace gt {

/// In-degree of every vertex (number of incoming edges).
std::vector<double> in_degrees(const Coo& coo);
std::vector<double> in_degrees(const Csr& csr);

/// Degree summary over vertices that have at least one incoming edge
/// (isolated vertices are excluded, matching how sampled-subgraph degree is
/// reported: only materialized vertices count).
struct DegreeSummary {
  double mean = 0.0;
  double stdev = 0.0;
  double max = 0.0;
  std::size_t vertices = 0;  // vertices with degree > 0
};

DegreeSummary summarize_degrees(const std::vector<double>& degrees,
                                bool exclude_isolated = true);

}  // namespace gt
