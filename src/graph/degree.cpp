#include "graph/degree.hpp"

namespace gt {

std::vector<double> in_degrees(const Coo& coo) {
  std::vector<double> deg(coo.num_vertices, 0.0);
  for (Vid d : coo.dst) deg[d] += 1.0;
  return deg;
}

std::vector<double> in_degrees(const Csr& csr) {
  std::vector<double> deg(csr.num_vertices, 0.0);
  for (Vid v = 0; v < csr.num_vertices; ++v)
    deg[v] = static_cast<double>(csr.degree(v));
  return deg;
}

DegreeSummary summarize_degrees(const std::vector<double>& degrees,
                                bool exclude_isolated) {
  OnlineStats stats;
  for (double d : degrees) {
    if (exclude_isolated && d == 0.0) continue;
    stats.add(d);
  }
  DegreeSummary s;
  s.mean = stats.mean();
  s.stdev = stats.stdev();
  s.max = stats.count() > 0 ? stats.max() : 0.0;
  s.vertices = stats.count();
  return s;
}

}  // namespace gt
