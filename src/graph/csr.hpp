// Destination-indexed compressed sparse rows (the paper's CSR, Figure 1b):
// row_ptr is indexed by dst VID and col_idx holds the src VIDs of its
// incoming edges. This is the only format NAPA kernels consume.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace gt {

struct Csr {
  Vid num_vertices = 0;
  std::vector<Eid> row_ptr;  // size num_vertices + 1; indexed by dst VID
  std::vector<Vid> col_idx;  // src VIDs, grouped by dst

  Eid num_edges() const noexcept { return col_idx.size(); }

  /// In-neighbors (sources) of `dst`.
  std::span<const Vid> neighbors(Vid dst) const noexcept {
    return {col_idx.data() + row_ptr[dst],
            col_idx.data() + row_ptr[dst + 1]};
  }

  /// In-degree of `dst`.
  Eid degree(Vid dst) const noexcept {
    return row_ptr[dst + 1] - row_ptr[dst];
  }

  std::size_t storage_bytes() const noexcept {
    return row_ptr.size() * sizeof(Eid) + col_idx.size() * sizeof(Vid);
  }

  /// Structural invariants: monotone pointers, bounds, sizes.
  bool valid() const noexcept;

  bool operator==(const Csr&) const = default;
};

}  // namespace gt
