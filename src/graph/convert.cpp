#include "graph/convert.hpp"

#include <algorithm>

namespace gt {

namespace {
void charge(TranslationCost* cost, std::size_t sorted, std::size_t read,
            std::size_t written, std::size_t temp) {
  if (cost == nullptr) return;
  cost->elements_sorted += sorted;
  cost->bytes_read += read;
  cost->bytes_written += written;
  cost->temp_bytes = std::max(cost->temp_bytes, temp);
}
}  // namespace

Csr coo_to_csr(const Coo& coo, TranslationCost* cost) {
  Csr csr;
  coo_to_csr_into(coo, csr, cost);
  return csr;
}

void coo_to_csr_into(const Coo& coo, Csr& csr, TranslationCost* cost) {
  csr.num_vertices = coo.num_vertices;
  csr.row_ptr.assign(static_cast<std::size_t>(coo.num_vertices) + 1, 0);
  for (Vid d : coo.dst) ++csr.row_ptr[d + 1];
  for (std::size_t i = 1; i < csr.row_ptr.size(); ++i)
    csr.row_ptr[i] += csr.row_ptr[i - 1];
  csr.col_idx.resize(coo.num_edges());
  std::vector<Eid> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  for (Eid e = 0; e < coo.num_edges(); ++e)
    csr.col_idx[cursor[coo.dst[e]]++] = coo.src[e];
  charge(cost, coo.num_edges(), coo.storage_bytes(), csr.storage_bytes(),
         cursor.size() * sizeof(Eid));
}

Csc coo_to_csc(const Coo& coo, TranslationCost* cost) {
  Csc csc;
  coo_to_csc_into(coo, csc, cost);
  return csc;
}

void coo_to_csc_into(const Coo& coo, Csc& csc, TranslationCost* cost) {
  csc.num_vertices = coo.num_vertices;
  csc.col_ptr.assign(static_cast<std::size_t>(coo.num_vertices) + 1, 0);
  for (Vid s : coo.src) ++csc.col_ptr[s + 1];
  for (std::size_t i = 1; i < csc.col_ptr.size(); ++i)
    csc.col_ptr[i] += csc.col_ptr[i - 1];
  csc.row_idx.resize(coo.num_edges());
  std::vector<Eid> cursor(csc.col_ptr.begin(), csc.col_ptr.end() - 1);
  for (Eid e = 0; e < coo.num_edges(); ++e)
    csc.row_idx[cursor[coo.src[e]]++] = coo.dst[e];
  charge(cost, coo.num_edges(), coo.storage_bytes(), csc.storage_bytes(),
         cursor.size() * sizeof(Eid));
}

Coo csr_to_coo(const Csr& csr, TranslationCost* cost) {
  Coo coo;
  coo.num_vertices = csr.num_vertices;
  coo.src.reserve(csr.num_edges());
  coo.dst.reserve(csr.num_edges());
  for (Vid d = 0; d < csr.num_vertices; ++d) {
    for (Vid s : csr.neighbors(d)) {
      coo.src.push_back(s);
      coo.dst.push_back(d);
    }
  }
  charge(cost, 0, csr.storage_bytes(), coo.storage_bytes(), 0);
  return coo;
}

Coo csc_to_coo(const Csc& csc, TranslationCost* cost) {
  Coo coo;
  coo.num_vertices = csc.num_vertices;
  coo.src.reserve(csc.num_edges());
  coo.dst.reserve(csc.num_edges());
  for (Vid s = 0; s < csc.num_vertices; ++s) {
    for (Vid d : csc.neighbors(s)) {
      coo.src.push_back(s);
      coo.dst.push_back(d);
    }
  }
  charge(cost, 0, csc.storage_bytes(), coo.storage_bytes(), 0);
  return coo;
}

Csc csr_to_csc(const Csr& csr, TranslationCost* cost) {
  Csc csc;
  csc.num_vertices = csr.num_vertices;
  csc.col_ptr.assign(static_cast<std::size_t>(csr.num_vertices) + 1, 0);
  for (Vid s : csr.col_idx) ++csc.col_ptr[s + 1];
  for (std::size_t i = 1; i < csc.col_ptr.size(); ++i)
    csc.col_ptr[i] += csc.col_ptr[i - 1];
  csc.row_idx.resize(csr.num_edges());
  std::vector<Eid> cursor(csc.col_ptr.begin(), csc.col_ptr.end() - 1);
  for (Vid d = 0; d < csr.num_vertices; ++d)
    for (Vid s : csr.neighbors(d)) csc.row_idx[cursor[s]++] = d;
  charge(cost, csr.num_edges(), csr.storage_bytes(), csc.storage_bytes(),
         cursor.size() * sizeof(Eid));
  return csc;
}

Csr csc_to_csr(const Csc& csc, TranslationCost* cost) {
  Csr csr;
  csr.num_vertices = csc.num_vertices;
  csr.row_ptr.assign(static_cast<std::size_t>(csc.num_vertices) + 1, 0);
  for (Vid d : csc.row_idx) ++csr.row_ptr[d + 1];
  for (std::size_t i = 1; i < csr.row_ptr.size(); ++i)
    csr.row_ptr[i] += csr.row_ptr[i - 1];
  csr.col_idx.resize(csc.num_edges());
  std::vector<Eid> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  for (Vid s = 0; s < csc.num_vertices; ++s)
    for (Vid d : csc.neighbors(s)) csr.col_idx[cursor[d]++] = s;
  charge(cost, csc.num_edges(), csc.storage_bytes(), csr.storage_bytes(),
         cursor.size() * sizeof(Eid));
  return csr;
}

}  // namespace gt
