// Coordinate-list (COO) storage format: two parallel arrays of src and dst
// VIDs indexed by edge id (paper Figure 1b). Edge-centric: the natural input
// of SDDMM-style edge weighting in the Graph-approach baseline.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace gt {

struct Coo {
  Vid num_vertices = 0;
  std::vector<Vid> src;  // src[e] = source VID of edge e
  std::vector<Vid> dst;  // dst[e] = destination VID of edge e

  Eid num_edges() const noexcept { return src.size(); }

  /// Bytes this structure occupies when materialized on a device.
  std::size_t storage_bytes() const noexcept {
    return (src.size() + dst.size()) * sizeof(Vid);
  }

  /// True iff arrays are consistent and every VID < num_vertices.
  bool valid() const noexcept;

  /// Stable sort of the edge list by dst VID (then src). This is the first
  /// half of the COO->CSR format translation the Graph-approach pays for.
  void sort_by_dst();

  /// Stable sort by src VID (then dst): first half of COO->CSC.
  void sort_by_src();

  bool operator==(const Coo&) const = default;
};

}  // namespace gt
