#include "fault/harness.hpp"

#include <cstring>

#include "datasets/catalog.hpp"
#include "models/config.hpp"
#include "util/log.hpp"

namespace gt::fault {

namespace {

/// A schedule recovers bit-identically iff every fault it throws is
/// transient and finite: `always`/`times=inf` degrade a batch, kind=oom
/// takes the OOM report path (batch excluded from SGD), kind=abort
/// unwinds.
bool spec_is_recoverable(const std::string& spec) {
  const FaultPlan plan = FaultPlan::parse(spec);
  for (const FaultEntry& e : plan.entries()) {
    if (e.kind != Kind::kTransient) return false;
    if (e.times == kForever) return false;
  }
  return true;
}

/// Batch-intrinsic report equality: everything a fault-free serial run
/// pins down. Host wall-clock fields, retry accounting, and the
/// context-local arena capacity/growth fields legitimately differ.
bool reports_equal(const frameworks::RunReport& a,
                   const frameworks::RunReport& b) {
  return a.oom == b.oom && a.failed == b.failed && a.loss == b.loss &&
         a.kernel_launches == b.kernel_launches &&
         a.kernel_total_us == b.kernel_total_us &&
         a.end_to_end_us == b.end_to_end_us && a.flops == b.flops &&
         a.global_bytes == b.global_bytes &&
         a.peak_memory_bytes == b.peak_memory_bytes &&
         a.preproc_makespan_us == b.preproc_makespan_us &&
         a.arena_peak_bytes == b.arena_peak_bytes &&
         a.arena_allocations == b.arena_allocations &&
         a.layer_comb_first_fwd == b.layer_comb_first_fwd &&
         a.layer_comb_first_bwd == b.layer_comb_first_bwd;
}

bool all_reports_equal(const std::vector<frameworks::RunReport>& a,
                       const std::vector<frameworks::RunReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!reports_equal(a[i], b[i])) return false;
  return true;
}

struct RunOutput {
  std::vector<frameworks::RunReport> reports;
  std::uint64_t digest = 0;
  std::uint64_t injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t backoff_ticks = 0;
  std::size_t degraded = 0;
  std::size_t oom = 0;
};

RunOutput run_one(const Dataset& data, const HarnessOptions& opts,
                  const std::string& backend, std::size_t workers,
                  const std::string& spec) {
  ServiceOptions sopt;
  sopt.framework = backend;
  sopt.batch_size = opts.batch_size;
  sopt.workers = workers;
  sopt.fault_spec = spec;
  sopt.max_retries = opts.max_retries;
  GnnService service(data, models::gcn(8, 47), sopt);
  RunOutput out;
  out.reports = service.train_batches(opts.batches);
  out.digest = params_digest(service.params());
  if (service.fault_plan() != nullptr)
    out.injected = service.fault_plan()->injected();
  out.backoff_ticks = service.virtual_backoff_ticks();
  for (const frameworks::RunReport& r : out.reports) {
    out.retries += r.retries;
    out.degraded += r.failed;
    out.oom += r.oom;
  }
  return out;
}

}  // namespace

std::vector<std::string> default_fault_specs() {
  return {
      "preproc.sample@batch=1",
      "preproc.reindex@batch=2:layer=1",
      "transfer@batch=0",
      "gpusim.kernel@batch=3:times=2",
      "gpusim.alloc@batch=2",
      "gpusim.alloc@batch=2:kind=oom",
      "preproc.sample@batch=4:always",
  };
}

std::uint64_t params_digest(const models::ModelParams& params) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  auto mix = [&h](const Matrix& m) {
    for (float f : m.data()) {
      std::uint32_t bits = 0;
      std::memcpy(&bits, &f, sizeof(bits));
      for (int shift = 0; shift < 32; shift += 8) {
        h ^= (bits >> shift) & 0xffu;
        h *= 0x100000001b3ull;  // FNV prime
      }
    }
  };
  for (std::uint32_t l = 0; l < params.num_layers(); ++l) {
    mix(params.w(l));
    mix(params.b(l));
  }
  return h;
}

HarnessResult run_sweep(const HarnessOptions& opts) {
  HarnessResult result;
  const Dataset data = generate(opts.dataset, opts.dataset_seed);
  for (const std::string& backend : opts.backends) {
    // Fault-free serial baseline: the ground truth every recoverable
    // schedule must reproduce bit for bit.
    const RunOutput base = run_one(data, opts, backend, 1, "");
    {
      HarnessRun r;
      r.backend = backend;
      r.workers = 1;
      r.recoverable = true;
      r.params_digest = base.digest;
      r.params_match = r.reports_match = r.ok = true;
      result.runs.push_back(std::move(r));
    }
    // The stock specs all hit first-occurrence coordinates. Aim one extra
    // transient fault at the LAST kernel launch of a batch — deep in the
    // backward pass, after gradients for later layers are already staged —
    // the coordinate that used to leak partially applied SGD updates into
    // the retry. The occurrence count is backend-specific, so it is read
    // off the fault-free baseline's report.
    std::vector<std::string> specs = opts.fault_specs;
    if (opts.batches > 1 && base.reports.size() > 1 &&
        base.reports[1].kernel_launches > 0)
      specs.push_back(
          "gpusim.kernel@batch=1:layer=" +
          std::to_string(base.reports[1].kernel_launches - 1));
    for (const std::string& spec : specs) {
      const bool recoverable = spec_is_recoverable(spec);
      // Reference for worker-count parity: the first worker count's run
      // of this same schedule.
      RunOutput ref;
      bool have_ref = false;
      for (std::size_t workers : opts.worker_counts) {
        const RunOutput out = run_one(data, opts, backend, workers, spec);
        HarnessRun r;
        r.backend = backend;
        r.workers = workers;
        r.fault_spec = spec;
        r.recoverable = recoverable;
        r.injected = out.injected;
        r.retries = out.retries;
        r.backoff_ticks = out.backoff_ticks;
        r.degraded = out.degraded;
        r.oom = out.oom;
        r.params_digest = out.digest;
        const RunOutput& want = recoverable ? base : (have_ref ? ref : out);
        r.params_match = out.digest == want.digest;
        r.reports_match = all_reports_equal(out.reports, want.reports);
        r.ok = r.params_match && r.reports_match;
        if (!r.params_match) r.why = "params digest mismatch";
        else if (!r.reports_match) r.why = "report fields mismatch";
        if (out.injected == 0) {
          r.ok = false;
          r.why = "schedule never fired";
        }
        if (recoverable && r.ok && (out.degraded != 0 || out.oom != 0)) {
          r.ok = false;
          r.why = "recoverable schedule degraded/OOMed";
        }
        if (!recoverable && r.ok && out.degraded == 0 && out.oom == 0) {
          r.ok = false;
          r.why = "degrading schedule left no mark";
        }
        result.all_ok = result.all_ok && r.ok;
        if (!r.ok)
          log_warn("fault harness: ", backend, " workers=", workers, " '",
                   spec, "': ", r.why);
        result.runs.push_back(std::move(r));
        if (!have_ref) {
          ref = out;
          have_ref = true;
        }
      }
    }
  }
  return result;
}

}  // namespace gt::fault
