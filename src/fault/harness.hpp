// FaultHarness: sweeps fault-injection schedules over the serving stack
// and asserts the recovery invariants that make gt::fault trustworthy:
//
//   * recoverable schedules (transient faults with a finite budget) leave
//     the trained parameters bit-identical to a fault-free run, and every
//     batch-intrinsic report field unchanged;
//   * every schedule yields identical parameters at every worker count
//     (the ring's recovery path and the serial path converge);
//   * degrading / OOM schedules mark the expected batches and the service
//     keeps serving the rest.
//
// Used by tools/fault_harness (CI chaos job) and tests/fault/test_harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/service.hpp"

namespace gt::fault {

/// The stock schedule set: one transient fault per site, a repeated
/// kernel fault, an injected allocator OOM, and an `always` entry that
/// drives a batch into graceful degradation.
std::vector<std::string> default_fault_specs();

struct HarnessOptions {
  std::string dataset = "products";
  std::uint64_t dataset_seed = 3;
  std::vector<std::string> backends = {"PyG", "DGL", "GNNAdvisor",
                                       "Prepro-GT"};
  std::vector<std::size_t> worker_counts = {1, 4};
  std::vector<std::string> fault_specs = default_fault_specs();
  std::size_t batches = 6;
  std::size_t batch_size = 48;
  std::uint32_t max_retries = 3;
};

/// One (backend, workers, spec) run of the sweep.
struct HarnessRun {
  std::string backend;
  std::size_t workers = 0;
  std::string fault_spec;       // empty = the fault-free baseline
  bool recoverable = false;     // schedule should recover bit-identically
  std::uint64_t injected = 0;   // faults the plan actually threw
  std::uint64_t retries = 0;    // recovery attempts across the run
  std::uint64_t backoff_ticks = 0;
  std::size_t degraded = 0;
  std::size_t oom = 0;
  std::uint64_t params_digest = 0;
  bool params_match = false;    // digest parity (see run_sweep docs)
  bool reports_match = false;   // batch-intrinsic report fields parity
  bool ok = false;
  std::string why;              // first failed invariant, for diagnostics
};

struct HarnessResult {
  std::vector<HarnessRun> runs;
  bool all_ok = true;
};

/// FNV-1a over every parameter matrix's float bytes, in layer order —
/// "bit-identical parameters" reduced to one comparable word.
std::uint64_t params_digest(const models::ModelParams& params);

/// Run the sweep. Per backend: a fault-free workers=1 baseline, then one
/// service per (fault spec x worker count). On top of opts.fault_specs the
/// sweep aims one transient fault at batch 1's last kernel launch (a
/// mid-backward coordinate, derived from the baseline's kernel_launches),
/// guarding the staged-SGD commit rule. Invariants checked per run:
/// params_match — recoverable schedules match the fault-free digest, all
/// others match the same-spec workers=worker_counts[0] digest;
/// reports_match — the analogous per-batch intrinsic-field comparison;
/// plus schedule-specific expectations (injected > 0, degraded/oom counts).
HarnessResult run_sweep(const HarnessOptions& opts = {});

}  // namespace gt::fault
