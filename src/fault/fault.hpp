// gt::fault — deterministic fault injection for the serving stack.
//
// A FaultPlan is a parsed schedule of injection sites ("throw at
// gpusim.alloc the first time batch 3 allocates"). The service installs
// the plan on the current thread with a PlanScope before running a batch
// attempt; instrumented sites (sampling, reindexing, device allocation,
// kernel launch, host-to-device transfer) call check(), which throws a
// typed InjectedFault when an armed entry matches the thread's batch
// coordinates. With no scope installed — every bench and test that never
// asked for faults — check() is a single thread-local load.
//
// Spec grammar (ServiceOptions::fault_spec / --fault-spec / GT_FAULT_SPEC):
//
//   spec  := entry (';' entry)*
//   entry := site '@' part (':' part)*
//   part  := 'batch=' N | 'layer=' N | 'times=' N | 'always' | 'kind=' k
//   site  := 'preproc.sample' | 'preproc.reindex' | 'gpusim.alloc'
//          | 'gpusim.kernel'  | 'transfer'
//   k     := 'transient' (default) | 'oom' | 'abort'
//
//   e.g. "gpusim.alloc@batch=3:layer=1;preproc.sample@batch=7"
//
// `batch` is required. `layer` is the site's coordinate: the reindex layer
// where the site has a real layer, otherwise the 0-based occurrence of the
// site within the batch attempt (so gpusim.alloc@layer=1 is the second
// allocation); omitted = any. `times` is how many checks fire before the
// entry disarms (default 1 — the retry succeeds); `always` never disarms,
// driving the batch into graceful degradation. Kinds: `transient` faults
// are retryable, `oom` (gpusim.alloc only) is converted by the device into
// GpuOomError and takes the frameworks' existing OOM-report path, and
// `abort` is non-retryable — the service drains its in-flight work and
// rethrows, exercising the exception-safe unwind.
//
// Determinism contract: entries match on exact batch indices and
// deterministic per-attempt coordinates, and the service's backoff is a
// virtual tick counter — so a faulted run that recovers is bit-identical
// to a fault-free run, regardless of worker/thread counts.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gt::fault {

enum class Site : std::uint8_t {
  kPreprocSample = 0,  // neighbor sampling (S)
  kPreprocReindex,     // per-layer reindexing (R)
  kGpusimAlloc,        // device buffer allocation
  kGpusimKernel,       // kernel launch
  kTransfer,           // host-to-device upload of a prepared batch
};
inline constexpr std::size_t kNumSites = 5;

const char* to_string(Site site);
/// False if `text` names no site.
bool parse_site(std::string_view text, Site* out);

enum class Kind : std::uint8_t {
  kTransient,  // retryable: the service backs off and re-runs the batch
  kOom,        // gpusim.alloc only: surfaces as GpuOomError (report path)
  kAbort,      // non-retryable: unwinds run_batches after a full drain
};

inline constexpr std::uint32_t kAnyCoord = 0xffffffffu;
inline constexpr std::uint32_t kForever = 0xffffffffu;

/// Thrown by check() when an armed FaultEntry matches.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(Site site, Kind kind, std::uint64_t batch,
                std::uint32_t coord);
  Site site() const noexcept { return site_; }
  Kind kind() const noexcept { return kind_; }
  std::uint64_t batch() const noexcept { return batch_; }
  std::uint32_t coord() const noexcept { return coord_; }

 private:
  Site site_;
  Kind kind_;
  std::uint64_t batch_;
  std::uint32_t coord_;
};

/// One scheduled injection. `coord` is matched against the layer/occurrence
/// coordinate of the check (kAnyCoord matches every check of the site).
struct FaultEntry {
  Site site = Site::kPreprocSample;
  std::uint64_t batch = 0;
  std::uint32_t coord = kAnyCoord;
  Kind kind = Kind::kTransient;
  std::uint32_t times = 1;  // firings before the entry disarms; kForever = never
  std::uint32_t fired = 0;  // runtime state
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEntry> entries);

  /// Parse the spec grammar above. Throws std::invalid_argument with the
  /// offending entry quoted.
  static FaultPlan parse(const std::string& spec);

  bool empty() const;
  std::size_t entry_count() const;
  std::vector<FaultEntry> entries() const;

  /// Total faults injected so far.
  std::uint64_t injected() const;

  /// Re-arm every entry (fired = 0), e.g. between sweep runs.
  void rearm();

  /// Throws InjectedFault if an armed entry matches. Thread-safe.
  void on_check(Site site, std::uint64_t batch, std::uint32_t coord);

 private:
  mutable std::mutex mu_;
  std::vector<FaultEntry> entries_;
  std::uint64_t injected_ = 0;
};

namespace detail {
/// Thread-local injection state: the armed plan, the batch coordinate of
/// the attempt running on this thread, and per-site occurrence counters
/// (reset at scope entry so retries see identical coordinates).
struct ThreadState {
  FaultPlan* plan = nullptr;
  std::uint64_t batch = 0;
  std::array<std::uint32_t, kNumSites> occurrence{};
};
}  // namespace detail

/// RAII: installs `plan` + the batch coordinate on the current thread for
/// one batch attempt; restores the previous state on destruction (nesting
/// safe). A null plan leaves injection disabled — zero-cost checks.
class PlanScope {
 public:
  PlanScope(FaultPlan* plan, std::uint64_t batch) noexcept;
  ~PlanScope();
  PlanScope(const PlanScope&) = delete;
  PlanScope& operator=(const PlanScope&) = delete;

 private:
  detail::ThreadState saved_;
};

/// True while a PlanScope with a non-null plan is installed on this thread.
bool active() noexcept;

/// Injection site hook. With `coord == kAnyCoord` the site's per-attempt
/// occurrence ordinal is used (and consumed); sites with a natural layer
/// coordinate pass it explicitly. No-op unless a PlanScope is active.
void check(Site site, std::uint32_t coord = kAnyCoord);

}  // namespace gt::fault
