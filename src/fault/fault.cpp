#include "fault/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "obs/live/event_log.hpp"

namespace gt::fault {

namespace {

thread_local detail::ThreadState t_state;

std::string describe(Site site, Kind kind, std::uint64_t batch,
                     std::uint32_t coord) {
  std::string s = "injected fault: ";
  s += to_string(site);
  s += "@batch=" + std::to_string(batch);
  if (coord != kAnyCoord) s += ":layer=" + std::to_string(coord);
  switch (kind) {
    case Kind::kTransient: break;
    case Kind::kOom:   s += " (kind=oom)"; break;
    case Kind::kAbort: s += " (kind=abort)"; break;
  }
  return s;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

[[noreturn]] void bad_spec(std::string_view entry, const std::string& why) {
  throw std::invalid_argument("fault spec: bad entry '" + std::string(entry) +
                              "': " + why);
}

/// Fully-consumed non-negative decimal; false on a non-digit or a value
/// past 2^64-1 (silent wrap-around would arm the fault at the wrong batch).
bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

FaultEntry parse_entry(std::string_view entry) {
  const std::size_t at = entry.find('@');
  if (at == std::string_view::npos)
    bad_spec(entry, "expected site@batch=N[:layer=N][:times=N][:kind=K]");
  FaultEntry e;
  if (!parse_site(trim(entry.substr(0, at)), &e.site))
    bad_spec(entry, "unknown site '" + std::string(trim(entry.substr(0, at))) +
                        "'");
  bool have_batch = false;
  std::string_view rest = entry.substr(at + 1);
  while (!rest.empty()) {
    const std::size_t colon = rest.find(':');
    std::string_view part = trim(rest.substr(0, colon));
    rest = colon == std::string_view::npos ? std::string_view{}
                                           : rest.substr(colon + 1);
    if (part.empty()) bad_spec(entry, "empty part");
    if (part == "always") {
      e.times = kForever;
      continue;
    }
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos)
      bad_spec(entry, "expected key=value, got '" + std::string(part) + "'");
    const std::string_view key = part.substr(0, eq);
    const std::string_view value = part.substr(eq + 1);
    std::uint64_t n = 0;
    if (key == "batch") {
      if (!parse_u64(value, &n)) bad_spec(entry, "batch wants an integer");
      e.batch = n;
      have_batch = true;
    } else if (key == "layer") {
      if (!parse_u64(value, &n) || n >= kAnyCoord)
        bad_spec(entry, "layer wants a small integer");
      e.coord = static_cast<std::uint32_t>(n);
    } else if (key == "times") {
      if (value == "inf") {
        e.times = kForever;
      } else if (!parse_u64(value, &n) || n == 0 || n >= kForever) {
        bad_spec(entry, "times wants a positive integer or 'inf'");
      } else {
        e.times = static_cast<std::uint32_t>(n);
      }
    } else if (key == "kind") {
      if (value == "transient")  e.kind = Kind::kTransient;
      else if (value == "oom")   e.kind = Kind::kOom;
      else if (value == "abort") e.kind = Kind::kAbort;
      else bad_spec(entry, "kind wants transient|oom|abort");
    } else {
      bad_spec(entry, "unknown key '" + std::string(key) + "'");
    }
  }
  if (!have_batch) bad_spec(entry, "batch= is required");
  if (e.kind == Kind::kOom && e.site != Site::kGpusimAlloc)
    bad_spec(entry, "kind=oom is only meaningful at gpusim.alloc");
  return e;
}

}  // namespace

const char* to_string(Site site) {
  switch (site) {
    case Site::kPreprocSample:  return "preproc.sample";
    case Site::kPreprocReindex: return "preproc.reindex";
    case Site::kGpusimAlloc:    return "gpusim.alloc";
    case Site::kGpusimKernel:   return "gpusim.kernel";
    case Site::kTransfer:       return "transfer";
  }
  return "?";
}

bool parse_site(std::string_view text, Site* out) {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    const Site s = static_cast<Site>(i);
    if (text == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

InjectedFault::InjectedFault(Site site, Kind kind, std::uint64_t batch,
                             std::uint32_t coord)
    : std::runtime_error(describe(site, kind, batch, coord)),
      site_(site),
      kind_(kind),
      batch_(batch),
      coord_(coord) {}

FaultPlan::FaultPlan(std::vector<FaultEntry> entries)
    : entries_(std::move(entries)) {}

FaultPlan FaultPlan::parse(const std::string& spec) {
  std::vector<FaultEntry> entries;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view entry = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (entry.empty()) continue;
    entries.push_back(parse_entry(entry));
  }
  return FaultPlan(std::move(entries));
}

bool FaultPlan::empty() const {
  std::lock_guard lock(mu_);
  return entries_.empty();
}

std::size_t FaultPlan::entry_count() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

std::vector<FaultEntry> FaultPlan::entries() const {
  std::lock_guard lock(mu_);
  return entries_;
}

std::uint64_t FaultPlan::injected() const {
  std::lock_guard lock(mu_);
  return injected_;
}

void FaultPlan::rearm() {
  std::lock_guard lock(mu_);
  for (FaultEntry& e : entries_) e.fired = 0;
  injected_ = 0;
}

void FaultPlan::on_check(Site site, std::uint64_t batch, std::uint32_t coord) {
  std::lock_guard lock(mu_);
  for (FaultEntry& e : entries_) {
    if (e.site != site || e.batch != batch) continue;
    if (e.coord != kAnyCoord && e.coord != coord) continue;
    if (e.times != kForever && e.fired >= e.times) continue;
    ++e.fired;
    ++injected_;
    // The injection event is the root of the batch's causal chain in the
    // structured event log: it carries the ambient correlation id the
    // service installed for this attempt, so retry/degraded events for
    // the same batch resolve back to it by cid.
    if (obs::live::EventLog::global().armed()) {
      obs::live::Event ev(obs::live::Severity::kWarn, "fault.inject");
      ev.msg(to_string(site))
          .field("site", to_string(site))
          .field("kind", e.kind == Kind::kTransient ? "transient"
                         : e.kind == Kind::kOom     ? "oom"
                                                    : "abort")
          .field("batch", batch)
          .field("coord", static_cast<std::uint64_t>(coord));
      obs::live::EventLog::global().emit(ev);
    }
    throw InjectedFault(site, e.kind, batch, coord);
  }
}

PlanScope::PlanScope(FaultPlan* plan, std::uint64_t batch) noexcept
    : saved_(t_state) {
  t_state = detail::ThreadState{};
  t_state.plan = plan;
  t_state.batch = batch;
}

PlanScope::~PlanScope() { t_state = saved_; }

bool active() noexcept { return t_state.plan != nullptr; }

void check(Site site, std::uint32_t coord) {
  detail::ThreadState& t = t_state;
  if (t.plan == nullptr) return;
  const std::size_t idx = static_cast<std::size_t>(site);
  const std::uint32_t c =
      coord == kAnyCoord ? t.occurrence[idx]++ : coord;
  t.plan->on_check(site, t.batch, c);
}

}  // namespace gt::fault
