#include "models/config.hpp"

namespace gt::models {

using kernels::AggMode;
using kernels::EdgeWeightMode;

GnnModelConfig gcn(std::uint32_t hidden, std::uint32_t out,
                   std::uint32_t layers) {
  return GnnModelConfig{"GCN", AggMode::kMean, EdgeWeightMode::kNone, layers,
                        hidden, out};
}

GnnModelConfig ngcf(std::uint32_t hidden, std::uint32_t out,
                    std::uint32_t layers) {
  return GnnModelConfig{"NGCF", AggMode::kMean, EdgeWeightMode::kDot, layers,
                        hidden, out};
}

GnnModelConfig graphsage_sum(std::uint32_t hidden, std::uint32_t out,
                             std::uint32_t layers) {
  return GnnModelConfig{"GraphSAGE-sum", AggMode::kSum, EdgeWeightMode::kNone,
                        layers, hidden, out};
}

GnnModelConfig gat_like(std::uint32_t hidden, std::uint32_t out,
                        std::uint32_t layers) {
  return GnnModelConfig{"GAT-like", AggMode::kMean,
                        EdgeWeightMode::kElemProduct, layers, hidden, out};
}

}  // namespace gt::models
