// GNN model definitions (paper §VI "GNN models").
//
// A model is a NAPA mode configuration (Algorithm 10: "users can simply
// apply different GNN models by reconfiguring the modes"): the aggregation
// function f, the edge weight function g (with h implied), layer count and
// widths. GCN and NGCF are the paper's evaluated models; GraphSAGE-mean
// and a GAT-flavoured variant demonstrate the programming model's reach.
#pragma once

#include <cstdint>
#include <string>

#include "kernels/common.hpp"

namespace gt::models {

struct GnnModelConfig {
  std::string name;
  kernels::AggMode f = kernels::AggMode::kMean;
  kernels::EdgeWeightMode g = kernels::EdgeWeightMode::kNone;
  std::uint32_t num_layers = 2;
  std::uint32_t hidden_dim = 8;   // paper: 64, scaled with features
  std::uint32_t output_dim = 2;

  bool edge_weighted() const noexcept {
    return g != kernels::EdgeWeightMode::kNone;
  }
  /// ReLU on every layer but the last (logits).
  bool relu_at(std::uint32_t layer) const noexcept {
    return layer + 1 < num_layers;
  }
  /// Layer l MLP output width.
  std::uint32_t out_dim_at(std::uint32_t layer) const noexcept {
    return layer + 1 == num_layers ? output_dim : hidden_dim;
  }
};

/// Graph convolutional network (Kipf & Welling): mean aggregation, no edge
/// weighting.
GnnModelConfig gcn(std::uint32_t hidden, std::uint32_t out,
                   std::uint32_t layers = 2);

/// Neural graph collaborative filtering (Wang et al.): similarity-weighted
/// mean aggregation; the similarity is the src*dst embedding product
/// (scalar, SDDMM-computable) applied multiplicatively to the source.
GnnModelConfig ngcf(std::uint32_t hidden, std::uint32_t out,
                    std::uint32_t layers = 2);

/// GraphSAGE with sum aggregation (Hamilton et al. variant).
GnnModelConfig graphsage_sum(std::uint32_t hidden, std::uint32_t out,
                             std::uint32_t layers = 2);

/// GAT-flavoured model with *vector* edge weights (elementwise product):
/// exercises the DKP-incompatible path — the orchestrator must refuse to
/// hoist the combination for it.
GnnModelConfig gat_like(std::uint32_t hidden, std::uint32_t out,
                        std::uint32_t layers = 2);

}  // namespace gt::models
