// Model parameters (one MLP per layer) kept host-side between batches;
// frameworks upload them per batch and apply SGD updates from downloaded
// gradients.
#pragma once

#include <cstdint>
#include <vector>

#include "models/config.hpp"
#include "tensor/matrix.hpp"
#include "tensor/view.hpp"

namespace gt::models {

class ModelParams {
 public:
  /// Glorot-initialize all layers for an input feature width.
  ModelParams(const GnnModelConfig& config, std::size_t feature_dim,
              std::uint64_t seed);

  std::uint32_t num_layers() const noexcept {
    return static_cast<std::uint32_t>(w_.size());
  }
  const Matrix& w(std::uint32_t layer) const { return w_.at(layer); }
  const Matrix& b(std::uint32_t layer) const { return b_.at(layer); }
  Matrix& w(std::uint32_t layer) { return w_.at(layer); }
  Matrix& b(std::uint32_t layer) { return b_.at(layer); }

  /// Input width of layer l (feature_dim for l == 0, hidden otherwise).
  std::size_t in_dim(std::uint32_t layer) const {
    return w_.at(layer).rows();
  }
  std::size_t out_dim(std::uint32_t layer) const {
    return w_.at(layer).cols();
  }

  /// w -= lr * dw, b -= lr * db for one layer. The view form lets the
  /// batch hot path apply gradients straight from arena downloads.
  void sgd_update(std::uint32_t layer, ConstMatrixView dw, ConstMatrixView db,
                  float lr);
  void sgd_update(std::uint32_t layer, const Matrix& dw, const Matrix& db,
                  float lr);

  /// w rows [row_begin, row_begin + dw_rows.rows()) -= lr * dw_rows; the
  /// bias is untouched. Tensor-parallel SGD commits apply each device's
  /// disjoint row slice of the weight gradient; element updates are
  /// independent, so slice-wise application is bit-identical to one full
  /// sgd_update over the assembled gradient.
  void sgd_update_rows(std::uint32_t layer, std::size_t row_begin,
                       ConstMatrixView dw_rows, float lr);
  /// b -= lr * db only (the bias gradient is replicated on every device).
  void sgd_update_bias(std::uint32_t layer, ConstMatrixView db, float lr);

  /// Total parameter count.
  std::size_t parameter_count() const noexcept;

 private:
  std::vector<Matrix> w_;
  std::vector<Matrix> b_;
};

}  // namespace gt::models
