#include "models/params.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace gt::models {

ModelParams::ModelParams(const GnnModelConfig& config, std::size_t feature_dim,
                         std::uint64_t seed) {
  if (config.num_layers == 0)
    throw std::invalid_argument("model needs at least one layer");
  Xoshiro256 rng(seed);
  std::size_t in = feature_dim;
  for (std::uint32_t l = 0; l < config.num_layers; ++l) {
    const std::size_t out = config.out_dim_at(l);
    w_.push_back(Matrix::glorot(in, out, rng));
    b_.push_back(Matrix::zeros(1, out));
    in = out;
  }
}

void ModelParams::sgd_update(std::uint32_t layer, ConstMatrixView dw,
                             ConstMatrixView db, float lr) {
  Matrix& w = w_.at(layer);
  Matrix& b = b_.at(layer);
  if (w.rows() != dw.rows() || w.cols() != dw.cols() ||
      b.rows() != db.rows() || b.cols() != db.cols())
    throw std::invalid_argument("sgd_update: gradient shape mismatch");
  auto wd = w.data();
  auto dwd = dw.data();
  for (std::size_t i = 0; i < wd.size(); ++i) wd[i] -= lr * dwd[i];
  auto bd = b.data();
  auto dbd = db.data();
  for (std::size_t i = 0; i < bd.size(); ++i) bd[i] -= lr * dbd[i];
}

void ModelParams::sgd_update(std::uint32_t layer, const Matrix& dw,
                             const Matrix& db, float lr) {
  sgd_update(layer, ConstMatrixView(dw), ConstMatrixView(db), lr);
}

void ModelParams::sgd_update_rows(std::uint32_t layer, std::size_t row_begin,
                                  ConstMatrixView dw_rows, float lr) {
  Matrix& w = w_.at(layer);
  if (w.cols() != dw_rows.cols() || row_begin > w.rows() ||
      dw_rows.rows() > w.rows() - row_begin)
    throw std::invalid_argument("sgd_update_rows: slice out of range");
  auto wd = w.data().subspan(row_begin * w.cols());
  auto dwd = dw_rows.data();
  for (std::size_t i = 0; i < dwd.size(); ++i) wd[i] -= lr * dwd[i];
}

void ModelParams::sgd_update_bias(std::uint32_t layer, ConstMatrixView db,
                                  float lr) {
  Matrix& b = b_.at(layer);
  if (b.rows() != db.rows() || b.cols() != db.cols())
    throw std::invalid_argument("sgd_update_bias: gradient shape mismatch");
  auto bd = b.data();
  auto dbd = db.data();
  for (std::size_t i = 0; i < bd.size(); ++i) bd[i] -= lr * dbd[i];
}

std::size_t ModelParams::parameter_count() const noexcept {
  std::size_t n = 0;
  for (const auto& m : w_) n += m.size();
  for (const auto& m : b_) n += m.size();
  return n;
}

}  // namespace gt::models
