// Dense linear-algebra kernels with FLOP accounting.
//
// These are the "combination" (MLP) building blocks: the paper's Apply
// primitive delegates dense math to the underlying DL framework
// (tf.matmul / bias_add / relu); here they are implemented directly.
// Every op adds its floating-point work to the thread-local FlopCounter so
// benchmarks (Fig 18) can report FLOPs without instrumenting call sites.
//
// Each op comes in two flavours: an owning form returning a fresh Matrix,
// and an `_into` form writing to a caller-supplied MatrixView (typically
// carved from a gt::Arena) so the steady-state batch loop performs zero
// heap allocation. The `_into` forms overwrite `out` entirely; `out` may
// not alias any input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/view.hpp"

namespace gt {

/// Thread-local floating-point-operation counter.
class FlopCounter {
 public:
  static FlopCounter& instance();
  void add(std::uint64_t flops) noexcept { count_ += flops; }
  std::uint64_t count() const noexcept { return count_; }
  void reset() noexcept { count_ = 0; }

 private:
  std::uint64_t count_ = 0;
};

/// C = A * B.           A: [m,k], B: [k,n] -> C: [m,n].   2*m*k*n FLOPs.
Matrix matmul(const Matrix& a, const Matrix& b);
void matmul_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

/// C = A^T * B.         A: [k,m], B: [k,n] -> C: [m,n].
Matrix matmul_at_b(const Matrix& a, const Matrix& b);
void matmul_at_b_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

/// C = A * B^T.         A: [m,k], B: [n,k] -> C: [m,n].
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);
void matmul_a_bt_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

Matrix transpose(const Matrix& a);
void transpose_into(ConstMatrixView a, MatrixView out);

/// Row-broadcast bias add: out[r,c] = a[r,c] + bias[0,c].
Matrix add_bias(const Matrix& a, const Matrix& bias);
void add_bias_into(ConstMatrixView a, ConstMatrixView bias, MatrixView out);

Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);  // elementwise product
Matrix scale(const Matrix& a, float s);
void add_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void sub_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void hadamard_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void scale_into(ConstMatrixView a, float s, MatrixView out);

Matrix relu(const Matrix& a);
void relu_into(ConstMatrixView a, MatrixView out);
/// dL/dx for y = relu(x): grad masked where x <= 0.
Matrix relu_backward(const Matrix& grad_out, const Matrix& x);
void relu_backward_into(ConstMatrixView grad_out, ConstMatrixView x,
                        MatrixView out);

/// Row-wise softmax.
Matrix softmax_rows(const Matrix& a);
void softmax_rows_into(ConstMatrixView a, MatrixView out);

/// Mean softmax cross-entropy over rows; labels[r] in [0, cols).
/// Also writes dL/dlogits into *grad if non-null (mean-reduced).
float softmax_cross_entropy(const Matrix& logits,
                            const std::vector<std::uint32_t>& labels,
                            Matrix* grad = nullptr);
/// Allocation-free form: if `grad` is non-empty it must match the logits
/// shape and receives dL/dlogits; an empty view computes loss only.
float softmax_cross_entropy_into(ConstMatrixView logits,
                                 const std::vector<std::uint32_t>& labels,
                                 MatrixView grad);

/// Column sums as a 1 x cols matrix (bias gradient).
Matrix col_sum(const Matrix& a);
void col_sum_into(ConstMatrixView a, MatrixView out);

/// Frobenius norm.
float fro_norm(const Matrix& a);

}  // namespace gt
