// Dense linear-algebra kernels with FLOP accounting.
//
// These are the "combination" (MLP) building blocks: the paper's Apply
// primitive delegates dense math to the underlying DL framework
// (tf.matmul / bias_add / relu); here they are implemented directly.
// Every op adds its floating-point work to the thread-local FlopCounter so
// benchmarks (Fig 18) can report FLOPs without instrumenting call sites.
//
// Each op comes in two flavours: an owning form returning a fresh Matrix,
// and an `_into` form writing to a caller-supplied MatrixView (typically
// carved from a gt::Arena) so the steady-state batch loop performs zero
// heap allocation. The `_into` forms overwrite `out` entirely; `out` may
// not alias any input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/view.hpp"
#include "util/flops.hpp"

namespace gt {

/// Blocking parameters for the dense matmul family. `row_tile` rows of the
/// output are produced together (the A column values live in registers
/// while a B panel streams through); `k_block` x `n_block` bounds the B
/// panel so it stays cache-resident across those rows. Large matmuls are
/// parallelized over row tiles on the process-wide compute engine
/// (util/parallel.hpp); results are bit-identical for any thread count
/// because each output element's accumulation order over the inner
/// dimension is ascending regardless of which chunk its row lands in.
/// Defaults come from the bench_micro_kernels tile sweep (EXPERIMENTS.md).
struct MatmulTiling {
  std::size_t row_tile = 8;   // MR: output rows per register tile
  std::size_t k_block = 128;  // KC: inner-dimension block
  std::size_t n_block = 256;  // NC: output-column block
};

/// C = A * B.           A: [m,k], B: [k,n] -> C: [m,n].   2*m*k*n FLOPs.
Matrix matmul(const Matrix& a, const Matrix& b);
void matmul_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
/// As matmul_into but with explicit blocking (bench tile sweep entry point).
void matmul_into_tiled(ConstMatrixView a, ConstMatrixView b, MatrixView out,
                       const MatmulTiling& tiling);

/// C = A^T * B.         A: [k,m], B: [k,n] -> C: [m,n].
Matrix matmul_at_b(const Matrix& a, const Matrix& b);
void matmul_at_b_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

/// C = A * B^T.         A: [m,k], B: [n,k] -> C: [m,n].
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);
void matmul_a_bt_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

Matrix transpose(const Matrix& a);
void transpose_into(ConstMatrixView a, MatrixView out);

/// Row-broadcast bias add: out[r,c] = a[r,c] + bias[0,c].
Matrix add_bias(const Matrix& a, const Matrix& bias);
void add_bias_into(ConstMatrixView a, ConstMatrixView bias, MatrixView out);

Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);  // elementwise product
Matrix scale(const Matrix& a, float s);
void add_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void sub_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void hadamard_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);
void scale_into(ConstMatrixView a, float s, MatrixView out);

Matrix relu(const Matrix& a);
void relu_into(ConstMatrixView a, MatrixView out);
/// dL/dx for y = relu(x): grad masked where x <= 0.
Matrix relu_backward(const Matrix& grad_out, const Matrix& x);
void relu_backward_into(ConstMatrixView grad_out, ConstMatrixView x,
                        MatrixView out);

/// Row-wise softmax.
Matrix softmax_rows(const Matrix& a);
void softmax_rows_into(ConstMatrixView a, MatrixView out);

/// Mean softmax cross-entropy over rows; labels[r] in [0, cols).
/// Also writes dL/dlogits into *grad if non-null (mean-reduced).
float softmax_cross_entropy(const Matrix& logits,
                            const std::vector<std::uint32_t>& labels,
                            Matrix* grad = nullptr);
/// Allocation-free form: if `grad` is non-empty it must match the logits
/// shape and receives dL/dlogits; an empty view computes loss only.
float softmax_cross_entropy_into(ConstMatrixView logits,
                                 const std::vector<std::uint32_t>& labels,
                                 MatrixView grad);

/// Column sums as a 1 x cols matrix (bias gradient).
Matrix col_sum(const Matrix& a);
void col_sum_into(ConstMatrixView a, MatrixView out);

/// Frobenius norm.
float fro_norm(const Matrix& a);

}  // namespace gt
