#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gt {

Matrix Matrix::glorot(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  Matrix m(rows, cols);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : m.data_) v = rng.uniform_float(-limit, limit);
  return m;
}

Matrix Matrix::uniform(std::size_t rows, std::size_t cols, Xoshiro256& rng,
                       float lo, float hi) {
  Matrix m(rows, cols);
  for (float& v : m.data_) v = rng.uniform_float(lo, hi);
  return m;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) return std::numeric_limits<float>::infinity();
  float worst = 0.0f;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i)
    worst = std::max(worst, std::abs(da[i] - db[i]));
  return worst;
}

bool allclose(const Matrix& a, const Matrix& b, float tol) {
  return max_abs_diff(a, b) <= tol;
}

}  // namespace gt
