#include "tensor/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "tensor/view.hpp"

namespace gt {

namespace {
std::atomic<std::uint64_t> g_matrix_heap_allocations{0};
}  // namespace

std::uint64_t Matrix::heap_allocations() noexcept {
  return g_matrix_heap_allocations.load(std::memory_order_relaxed);
}

void Matrix::count_heap_allocation() noexcept {
  g_matrix_heap_allocations.fetch_add(1, std::memory_order_relaxed);
}

Matrix Matrix::glorot(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  Matrix m(rows, cols);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : m.data_) v = rng.uniform_float(-limit, limit);
  return m;
}

Matrix Matrix::uniform(std::size_t rows, std::size_t cols, Xoshiro256& rng,
                       float lo, float hi) {
  Matrix m(rows, cols);
  for (float& v : m.data_) v = rng.uniform_float(lo, hi);
  return m;
}

float max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    return std::numeric_limits<float>::infinity();
  float worst = 0.0f;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i)
    worst = std::max(worst, std::abs(da[i] - db[i]));
  return worst;
}

bool allclose(ConstMatrixView a, ConstMatrixView b, float tol) {
  return max_abs_diff(a, b) <= tol;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  return max_abs_diff(ConstMatrixView(a), ConstMatrixView(b));
}

bool allclose(const Matrix& a, const Matrix& b, float tol) {
  return max_abs_diff(a, b) <= tol;
}

}  // namespace gt
