// Non-owning views over dense row-major float32 storage. A MatrixView is
// the currency of the arena-backed batch hot path: kernels and frameworks
// write activations/gradients into views handed out by gt::Arena instead of
// constructing fresh Matrix objects per batch. Views never own or free the
// bytes they point at — the owner (Matrix or Arena) must outlive them.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>

#include "tensor/matrix.hpp"

namespace gt {

/// Mutable non-owning view of a rows x cols row-major float block.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(float* data, std::size_t rows, std::size_t cols) noexcept
      : data_(data), rows_(rows), cols_(cols) {}
  /// Implicit: any mutable Matrix can be passed where a view is expected.
  MatrixView(Matrix& m) noexcept  // NOLINT(google-explicit-constructor)
      : data_(m.data().data()), rows_(m.rows()), cols_(m.cols()) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  std::size_t bytes() const noexcept { return size() * sizeof(float); }
  bool empty() const noexcept { return size() == 0; }

  float& at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_ && "MatrixView::at out of bounds");
    return data_[r * cols_ + c];
  }

  std::span<float> row(std::size_t r) const noexcept {
    assert(r < rows_ && "MatrixView::row out of bounds");
    return {data_ + r * cols_, cols_};
  }

  std::span<float> data() const noexcept { return {data_, size()}; }

  void fill(float v) const noexcept {
    std::fill(data_, data_ + size(), v);
  }

  /// Owning copy (host-side snapshot of an arena-backed result).
  Matrix to_matrix() const {
    Matrix m(rows_, cols_);
    std::copy(data_, data_ + size(), m.data().data());
    return m;
  }

 private:
  float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Read-only non-owning view; implicitly constructible from Matrix and
/// MatrixView so weights, arena activations, and owned tensors all flow
/// through the same kernel signatures.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const float* data, std::size_t rows,
                  std::size_t cols) noexcept
      : data_(data), rows_(rows), cols_(cols) {}
  ConstMatrixView(const Matrix& m) noexcept  // NOLINT
      : data_(m.data().data()), rows_(m.rows()), cols_(m.cols()) {}
  ConstMatrixView(const MatrixView& v) noexcept  // NOLINT
      : data_(v.data().data()), rows_(v.rows()), cols_(v.cols()) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  std::size_t bytes() const noexcept { return size() * sizeof(float); }
  bool empty() const noexcept { return size() == 0; }

  float at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_ && "ConstMatrixView::at out of bounds");
    return data_[r * cols_ + c];
  }

  std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_ && "ConstMatrixView::row out of bounds");
    return {data_ + r * cols_, cols_};
  }

  std::span<const float> data() const noexcept { return {data_, size()}; }

  Matrix to_matrix() const {
    Matrix m(rows_, cols_);
    std::copy(data_, data_ + size(), m.data().data());
    return m;
  }

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Copy `src` into `dst`; shapes must match exactly.
inline void copy_into(ConstMatrixView src, MatrixView dst) noexcept {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  std::copy(src.data().begin(), src.data().end(), dst.data().begin());
}

/// Max absolute elementwise difference; infinity if shapes differ.
float max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// True iff all elements differ by at most `tol`.
bool allclose(ConstMatrixView a, ConstMatrixView b, float tol = 1e-4f);

}  // namespace gt
