#include "tensor/arena.hpp"

#include <algorithm>

namespace gt {

Arena::Arena(std::size_t initial_floats) {
  if (initial_floats > 0) {
    Block b;
    b.storage.assign(initial_floats, 0.0f);
    stats_.capacity_bytes += b.capacity() * sizeof(float);
    ++stats_.growths;
    blocks_.push_back(std::move(b));
  }
}

std::span<float> Arena::take(std::size_t n) {
  for (std::size_t i = current_; i < blocks_.size(); ++i) {
    Block& b = blocks_[i];
    if (b.capacity() - b.used >= n) {
      float* p = b.storage.data() + b.used;
      b.used += n;
      // Later allocations keep probing from the first non-full block so a
      // large request that skipped ahead doesn't strand earlier space.
      while (current_ < blocks_.size() &&
             blocks_[current_].used == blocks_[current_].capacity())
        ++current_;
      return {p, n};
    }
  }
  // No block fits: grow with 2x slack so the next batch of similar shape
  // reuses this block instead of growing again.
  Block b;
  b.storage.assign(std::max(kMinBlockFloats, 2 * n), 0.0f);
  stats_.capacity_bytes += b.capacity() * sizeof(float);
  ++stats_.growths;
  b.used = n;
  blocks_.push_back(std::move(b));
  return {blocks_.back().storage.data(), n};
}

MatrixView Arena::alloc(std::size_t rows, std::size_t cols) {
  std::span<float> s = alloc_floats(rows * cols);
  return MatrixView(s.data(), rows, cols);
}

std::span<float> Arena::alloc_floats(std::size_t n) {
  ++stats_.allocations;
  if (n == 0) return {};
  std::span<float> s = take(n);
  std::fill(s.begin(), s.end(), 0.0f);
  stats_.used_bytes += n * sizeof(float);
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.used_bytes);
  return s;
}

void Arena::reset() {
  for (Block& b : blocks_) b.used = 0;
  current_ = 0;
  stats_.used_bytes = 0;
  ++stats_.resets;
}

}  // namespace gt
