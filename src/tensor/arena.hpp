// Bump-pointer tensor workspace: the allocator behind gt::BatchContext.
//
// The paper's DL-approach critique is per-batch buffer churn; the host-side
// mirror of the fix is a reusable arena. All per-batch activations,
// gradients, and scratch tensors are carved out of chunked float blocks
// with a bump pointer, then released wholesale via reset() at the start of
// the next batch. Growth allocates a fresh block (never moves existing
// ones), so handed-out MatrixViews stay valid for the whole batch, and a
// block is sized with 2x slack so the steady state performs zero heap
// allocation after warm-up — asserted by a regression test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/view.hpp"

namespace gt {

class Arena {
 public:
  struct Stats {
    std::size_t capacity_bytes = 0;  ///< Sum of all block capacities.
    std::size_t used_bytes = 0;      ///< Live bytes since the last reset().
    std::size_t peak_bytes = 0;      ///< High-water mark of used_bytes.
    std::uint64_t allocations = 0;   ///< alloc()/alloc_floats() calls served.
    std::uint64_t growths = 0;       ///< New blocks taken from the heap.
    std::uint64_t resets = 0;        ///< reset() calls.
  };

  /// Optionally pre-size the first block (in floats) to front-load growth.
  explicit Arena(std::size_t initial_floats = 0);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Zero-filled rows x cols view, valid until the next reset().
  MatrixView alloc(std::size_t rows, std::size_t cols);

  /// Zero-filled raw float span, valid until the next reset().
  std::span<float> alloc_floats(std::size_t n);

  /// Release every allocation at once; capacity is retained for reuse.
  void reset();

  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Block {
    std::vector<float> storage;
    std::size_t used = 0;
    std::size_t capacity() const noexcept { return storage.size(); }
  };

  // Blocks never exceed ~256 KiB of waste on tiny first requests, and a
  // request larger than every block triggers one 2x-slack growth.
  static constexpr std::size_t kMinBlockFloats = std::size_t{1} << 16;

  std::span<float> take(std::size_t n);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< First block with possible free space.
  Stats stats_;
};

}  // namespace gt
