#include "tensor/ops.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gt {

FlopCounter& FlopCounter::instance() {
  thread_local FlopCounter counter;
  return counter;
}

namespace {
void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}
}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matmul: inner dimensions differ");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a.at(i, p);
      if (av == 0.0f) continue;
      const auto brow = b.row(p);
      auto crow = c.row(i);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  FlopCounter::instance().add(2ull * m * k * n);
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_at_b: leading dimensions differ");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t p = 0; p < k; ++p) {
    const auto arow = a.row(p);
    const auto brow = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      auto crow = c.row(i);
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  FlopCounter::instance().add(2ull * m * k * n);
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "matmul_a_bt: inner dimensions differ");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto arow = a.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const auto brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c.at(i, j) = acc;
    }
  }
  FlopCounter::instance().add(2ull * m * k * n);
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) t.at(c, r) = a.at(r, c);
  return t;
}

Matrix add_bias(const Matrix& a, const Matrix& bias) {
  require(bias.rows() == 1 && bias.cols() == a.cols(),
          "add_bias: bias must be 1 x cols");
  Matrix out(a.rows(), a.cols());
  const auto brow = bias.row(0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto arow = a.row(r);
    auto orow = out.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) orow[c] = arow[c] + brow[c];
  }
  FlopCounter::instance().add(a.size());
  return out;
}

namespace {
template <typename F>
Matrix zip(const Matrix& a, const Matrix& b, F&& f, const char* what) {
  if (!a.same_shape(b)) throw std::invalid_argument(what);
  Matrix out(a.rows(), a.cols());
  const auto da = a.data();
  const auto db = b.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i) dout[i] = f(da[i], db[i]);
  FlopCounter::instance().add(da.size());
  return out;
}
}  // namespace

Matrix add(const Matrix& a, const Matrix& b) {
  return zip(a, b, [](float x, float y) { return x + y; },
             "add: shape mismatch");
}

Matrix sub(const Matrix& a, const Matrix& b) {
  return zip(a, b, [](float x, float y) { return x - y; },
             "sub: shape mismatch");
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  return zip(a, b, [](float x, float y) { return x * y; },
             "hadamard: shape mismatch");
}

Matrix scale(const Matrix& a, float s) {
  Matrix out(a.rows(), a.cols());
  const auto da = a.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i) dout[i] = da[i] * s;
  FlopCounter::instance().add(da.size());
  return out;
}

Matrix relu(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  const auto da = a.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i)
    dout[i] = da[i] > 0.0f ? da[i] : 0.0f;
  FlopCounter::instance().add(da.size());
  return out;
}

Matrix relu_backward(const Matrix& grad_out, const Matrix& x) {
  return zip(grad_out, x, [](float g, float xv) { return xv > 0.0f ? g : 0.0f; },
             "relu_backward: shape mismatch");
}

Matrix softmax_rows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto arow = a.row(r);
    auto orow = out.row(r);
    float mx = arow[0];
    for (float v : arow) mx = std::max(mx, v);
    float sum = 0.0f;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      orow[c] = std::exp(arow[c] - mx);
      sum += orow[c];
    }
    for (std::size_t c = 0; c < a.cols(); ++c) orow[c] /= sum;
  }
  FlopCounter::instance().add(4ull * a.size());
  return out;
}

float softmax_cross_entropy(const Matrix& logits,
                            const std::vector<std::uint32_t>& labels,
                            Matrix* grad) {
  require(labels.size() == logits.rows(),
          "softmax_cross_entropy: one label per row required");
  Matrix probs = softmax_rows(logits);
  const float inv_n = 1.0f / static_cast<float>(logits.rows());
  float loss = 0.0f;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    require(labels[r] < logits.cols(), "softmax_cross_entropy: bad label");
    loss -= std::log(std::max(probs.at(r, labels[r]), 1e-12f));
  }
  loss *= inv_n;
  if (grad != nullptr) {
    *grad = probs;
    for (std::size_t r = 0; r < logits.rows(); ++r)
      grad->at(r, labels[r]) -= 1.0f;
    *grad = scale(*grad, inv_n);
  }
  return loss;
}

Matrix col_sum(const Matrix& a) {
  Matrix out(1, a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto arow = a.row(r);
    auto orow = out.row(0);
    for (std::size_t c = 0; c < a.cols(); ++c) orow[c] += arow[c];
  }
  FlopCounter::instance().add(a.size());
  return out;
}

float fro_norm(const Matrix& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace gt
