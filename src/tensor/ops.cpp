#include "tensor/ops.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace gt {

namespace {
void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

// Below this many FLOPs the pool dispatch overhead outweighs the work and
// the tiled kernel runs inline on the calling thread. The kernel itself is
// the same either way, so the cutoff never affects results.
constexpr std::uint64_t kParallelFlopThreshold = 1ull << 18;

// Split the `tiles` row tiles of an output matrix into compute-engine
// chunks and run `fn(tile_lo, tile_hi)` over each. Chunk boundaries fall
// between row tiles, and no tile's math depends on its chunk, so results
// are bit-identical for any thread count. Each chunk counts its own FLOPs
// (workers' counters are merged at join by ThreadPool::parallel_for).
template <typename F>
void for_each_tile_chunk(std::size_t tiles, std::uint64_t total_flops,
                         F&& fn) {
  if (tiles == 0) return;
  if (total_flops < kParallelFlopThreshold) {
    fn(std::size_t{0}, tiles);
    return;
  }
  compute_parallel_for(0, tiles, fn);
}
}  // namespace

void matmul_into_tiled(ConstMatrixView a, ConstMatrixView b, MatrixView out,
                       const MatmulTiling& tiling) {
  require(a.cols() == b.rows(), "matmul: inner dimensions differ");
  require(out.rows() == a.rows() && out.cols() == b.cols(),
          "matmul: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return;
  const std::size_t mr = std::max<std::size_t>(1, tiling.row_tile);
  const std::size_t kc = std::max<std::size_t>(1, tiling.k_block);
  const std::size_t nc = std::max<std::size_t>(1, tiling.n_block);
  const std::size_t tiles = (m + mr - 1) / mr;
  for_each_tile_chunk(tiles, 2ull * m * k * n, [&](std::size_t t_lo,
                                                   std::size_t t_hi) {
    for (std::size_t t = t_lo; t < t_hi; ++t) {
      const std::size_t i_lo = t * mr;
      const std::size_t i_hi = std::min(m, i_lo + mr);
      for (std::size_t i = i_lo; i < i_hi; ++i) {
        auto crow = out.row(i);
        for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
      }
      // B panel [p0, p0+kc) x [j0, j0+nc) stays cache-resident while the
      // tile's rows stream over it; per output element the inner index p
      // ascends across and within panels, so the accumulation order never
      // depends on the blocking of the other dimensions.
      for (std::size_t p0 = 0; p0 < k; p0 += kc) {
        const std::size_t p_hi = std::min(k, p0 + kc);
        for (std::size_t j0 = 0; j0 < n; j0 += nc) {
          const std::size_t j_hi = std::min(n, j0 + nc);
          for (std::size_t p = p0; p < p_hi; ++p) {
            const auto brow = b.row(p);
            for (std::size_t i = i_lo; i < i_hi; ++i) {
              const float av = a.at(i, p);
              auto crow = out.row(i);
              for (std::size_t j = j0; j < j_hi; ++j)
                crow[j] += av * brow[j];
            }
          }
        }
      }
    }
    const std::size_t rows =
        std::min(m, t_hi * mr) - std::min(m, t_lo * mr);
    FlopCounter::instance().add(2ull * rows * k * n);
  });
}

void matmul_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  matmul_into_tiled(a, b, out, MatmulTiling{});
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matmul: inner dimensions differ");
  Matrix c(a.rows(), b.cols());
  matmul_into(a, b, c);
  return c;
}

void matmul_at_b_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  require(a.rows() == b.rows(), "matmul_at_b: leading dimensions differ");
  require(out.rows() == a.cols() && out.cols() == b.cols(),
          "matmul_at_b: output shape mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return;
  const MatmulTiling tiling;
  const std::size_t mr = tiling.row_tile, kc = tiling.k_block,
                    nc = tiling.n_block;
  const std::size_t tiles = (m + mr - 1) / mr;
  for_each_tile_chunk(tiles, 2ull * m * k * n, [&](std::size_t t_lo,
                                                   std::size_t t_hi) {
    for (std::size_t t = t_lo; t < t_hi; ++t) {
      // Output rows are columns of A: tile t owns C rows [i_lo, i_hi) and
      // reads A column-strided; B panels are reused exactly as in matmul.
      const std::size_t i_lo = t * mr;
      const std::size_t i_hi = std::min(m, i_lo + mr);
      for (std::size_t i = i_lo; i < i_hi; ++i) {
        auto crow = out.row(i);
        for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
      }
      for (std::size_t p0 = 0; p0 < k; p0 += kc) {
        const std::size_t p_hi = std::min(k, p0 + kc);
        for (std::size_t j0 = 0; j0 < n; j0 += nc) {
          const std::size_t j_hi = std::min(n, j0 + nc);
          for (std::size_t p = p0; p < p_hi; ++p) {
            const auto arow = a.row(p);
            const auto brow = b.row(p);
            for (std::size_t i = i_lo; i < i_hi; ++i) {
              const float av = arow[i];
              auto crow = out.row(i);
              for (std::size_t j = j0; j < j_hi; ++j)
                crow[j] += av * brow[j];
            }
          }
        }
      }
    }
    const std::size_t rows =
        std::min(m, t_hi * mr) - std::min(m, t_lo * mr);
    FlopCounter::instance().add(2ull * rows * k * n);
  });
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  require(a.rows() == b.rows(), "matmul_at_b: leading dimensions differ");
  Matrix c(a.cols(), b.cols());
  matmul_at_b_into(a, b, c);
  return c;
}

void matmul_a_bt_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  require(a.cols() == b.cols(), "matmul_a_bt: inner dimensions differ");
  require(out.rows() == a.rows() && out.cols() == b.rows(),
          "matmul_a_bt: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (m == 0 || n == 0) return;
  const MatmulTiling tiling;
  const std::size_t mr = tiling.row_tile, nc = tiling.n_block;
  const std::size_t tiles = (m + mr - 1) / mr;
  for_each_tile_chunk(tiles, 2ull * m * k * n, [&](std::size_t t_lo,
                                                   std::size_t t_hi) {
    for (std::size_t t = t_lo; t < t_hi; ++t) {
      const std::size_t i_lo = t * mr;
      const std::size_t i_hi = std::min(m, i_lo + mr);
      // Each element is one full-k dot product (k is a feature dimension,
      // small enough that both operand rows sit in L1); blocking over B's
      // rows keeps the [j0, j_hi) panel resident across the tile's rows.
      for (std::size_t j0 = 0; j0 < n; j0 += nc) {
        const std::size_t j_hi = std::min(n, j0 + nc);
        for (std::size_t i = i_lo; i < i_hi; ++i) {
          const auto arow = a.row(i);
          auto crow = out.row(i);
          for (std::size_t j = j0; j < j_hi; ++j) {
            const auto brow = b.row(j);
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
            crow[j] = acc;
          }
        }
      }
    }
    const std::size_t rows =
        std::min(m, t_hi * mr) - std::min(m, t_lo * mr);
    FlopCounter::instance().add(2ull * rows * k * n);
  });
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.cols(), "matmul_a_bt: inner dimensions differ");
  Matrix c(a.rows(), b.rows());
  matmul_a_bt_into(a, b, c);
  return c;
}

void transpose_into(ConstMatrixView a, MatrixView out) {
  require(out.rows() == a.cols() && out.cols() == a.rows(),
          "transpose: output shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) out.at(c, r) = a.at(r, c);
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  transpose_into(a, t);
  return t;
}

void add_bias_into(ConstMatrixView a, ConstMatrixView bias, MatrixView out) {
  require(bias.rows() == 1 && bias.cols() == a.cols(),
          "add_bias: bias must be 1 x cols");
  require(out.rows() == a.rows() && out.cols() == a.cols(),
          "add_bias: output shape mismatch");
  const auto brow = bias.row(0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto arow = a.row(r);
    auto orow = out.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) orow[c] = arow[c] + brow[c];
  }
  FlopCounter::instance().add(a.size());
}

Matrix add_bias(const Matrix& a, const Matrix& bias) {
  Matrix out(a.rows(), a.cols());
  add_bias_into(a, bias, out);
  return out;
}

namespace {
template <typename F>
void zip_into(ConstMatrixView a, ConstMatrixView b, MatrixView out, F&& f,
              const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols() ||
      out.rows() != a.rows() || out.cols() != a.cols())
    throw std::invalid_argument(what);
  const auto da = a.data();
  const auto db = b.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i) dout[i] = f(da[i], db[i]);
  FlopCounter::instance().add(da.size());
}

template <typename F>
Matrix zip(const Matrix& a, const Matrix& b, F&& f, const char* what) {
  if (!a.same_shape(b)) throw std::invalid_argument(what);
  Matrix out(a.rows(), a.cols());
  zip_into(a, b, out, std::forward<F>(f), what);
  return out;
}
}  // namespace

void add_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  zip_into(a, b, out, [](float x, float y) { return x + y; },
           "add: shape mismatch");
}

void sub_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  zip_into(a, b, out, [](float x, float y) { return x - y; },
           "sub: shape mismatch");
}

void hadamard_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  zip_into(a, b, out, [](float x, float y) { return x * y; },
           "hadamard: shape mismatch");
}

Matrix add(const Matrix& a, const Matrix& b) {
  return zip(a, b, [](float x, float y) { return x + y; },
             "add: shape mismatch");
}

Matrix sub(const Matrix& a, const Matrix& b) {
  return zip(a, b, [](float x, float y) { return x - y; },
             "sub: shape mismatch");
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  return zip(a, b, [](float x, float y) { return x * y; },
             "hadamard: shape mismatch");
}

void scale_into(ConstMatrixView a, float s, MatrixView out) {
  require(out.rows() == a.rows() && out.cols() == a.cols(),
          "scale: output shape mismatch");
  const auto da = a.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i) dout[i] = da[i] * s;
  FlopCounter::instance().add(da.size());
}

Matrix scale(const Matrix& a, float s) {
  Matrix out(a.rows(), a.cols());
  scale_into(a, s, out);
  return out;
}

void relu_into(ConstMatrixView a, MatrixView out) {
  require(out.rows() == a.rows() && out.cols() == a.cols(),
          "relu: output shape mismatch");
  const auto da = a.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i)
    dout[i] = da[i] > 0.0f ? da[i] : 0.0f;
  FlopCounter::instance().add(da.size());
}

Matrix relu(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  relu_into(a, out);
  return out;
}

void relu_backward_into(ConstMatrixView grad_out, ConstMatrixView x,
                        MatrixView out) {
  zip_into(grad_out, x,
           out, [](float g, float xv) { return xv > 0.0f ? g : 0.0f; },
           "relu_backward: shape mismatch");
}

Matrix relu_backward(const Matrix& grad_out, const Matrix& x) {
  return zip(grad_out, x, [](float g, float xv) { return xv > 0.0f ? g : 0.0f; },
             "relu_backward: shape mismatch");
}

void softmax_rows_into(ConstMatrixView a, MatrixView out) {
  require(out.rows() == a.rows() && out.cols() == a.cols(),
          "softmax_rows: output shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto arow = a.row(r);
    auto orow = out.row(r);
    float mx = arow[0];
    for (float v : arow) mx = std::max(mx, v);
    float sum = 0.0f;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      orow[c] = std::exp(arow[c] - mx);
      sum += orow[c];
    }
    for (std::size_t c = 0; c < a.cols(); ++c) orow[c] /= sum;
  }
  FlopCounter::instance().add(4ull * a.size());
}

Matrix softmax_rows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  softmax_rows_into(a, out);
  return out;
}

float softmax_cross_entropy_into(ConstMatrixView logits,
                                 const std::vector<std::uint32_t>& labels,
                                 MatrixView grad) {
  require(labels.size() == logits.rows(),
          "softmax_cross_entropy: one label per row required");
  const float inv_n = 1.0f / static_cast<float>(logits.rows());
  float loss = 0.0f;
  if (!grad.empty()) {
    require(grad.rows() == logits.rows() && grad.cols() == logits.cols(),
            "softmax_cross_entropy: grad shape mismatch");
    // Probabilities land directly in grad, then become dL/dlogits in place
    // — bit-identical to the owning form, which also scales probs last.
    softmax_rows_into(logits, grad);
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      require(labels[r] < logits.cols(), "softmax_cross_entropy: bad label");
      loss -= std::log(std::max(grad.at(r, labels[r]), 1e-12f));
    }
    loss *= inv_n;
    for (std::size_t r = 0; r < logits.rows(); ++r)
      grad.at(r, labels[r]) -= 1.0f;
    scale_into(ConstMatrixView(grad), inv_n, grad);
  } else {
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      require(labels[r] < logits.cols(), "softmax_cross_entropy: bad label");
      const auto lrow = logits.row(r);
      float mx = lrow[0];
      for (float v : lrow) mx = std::max(mx, v);
      float sum = 0.0f;
      for (float v : lrow) sum += std::exp(v - mx);
      const float p = std::exp(lrow[labels[r]] - mx) / sum;
      loss -= std::log(std::max(p, 1e-12f));
    }
    loss *= inv_n;
    FlopCounter::instance().add(4ull * logits.size());
  }
  return loss;
}

float softmax_cross_entropy(const Matrix& logits,
                            const std::vector<std::uint32_t>& labels,
                            Matrix* grad) {
  if (grad != nullptr) {
    grad->resize(logits.rows(), logits.cols());
    return softmax_cross_entropy_into(logits, labels, *grad);
  }
  return softmax_cross_entropy_into(logits, labels, MatrixView());
}

void col_sum_into(ConstMatrixView a, MatrixView out) {
  require(out.rows() == 1 && out.cols() == a.cols(),
          "col_sum: output must be 1 x cols");
  out.fill(0.0f);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto arow = a.row(r);
    auto orow = out.row(0);
    for (std::size_t c = 0; c < a.cols(); ++c) orow[c] += arow[c];
  }
  FlopCounter::instance().add(a.size());
}

Matrix col_sum(const Matrix& a) {
  Matrix out(1, a.cols());
  col_sum_into(a, out);
  return out;
}

float fro_norm(const Matrix& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace gt
