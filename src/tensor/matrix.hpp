// Dense row-major float32 matrix: the embedding tables, MLP weights, and
// all intermediate activations of the DFG. Kept deliberately simple — the
// interesting execution modelling lives in gpusim; this type provides
// correct, testable numerics.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace gt {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (!data_.empty()) count_heap_allocation();
  }

  Matrix(const Matrix& o)
      : rows_(o.rows_), cols_(o.cols_), data_(o.data_) {
    if (!data_.empty()) count_heap_allocation();
  }
  Matrix& operator=(const Matrix& o) {
    if (this == &o) return *this;
    if (o.data_.size() > data_.capacity()) count_heap_allocation();
    rows_ = o.rows_;
    cols_ = o.cols_;
    data_ = o.data_;
    return *this;
  }
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0f);
  }

  /// Glorot/Xavier-uniform init used for MLP weights.
  static Matrix glorot(std::size_t rows, std::size_t cols, Xoshiro256& rng);

  /// Entries iid uniform in [lo, hi) — synthetic embedding tables.
  static Matrix uniform(std::size_t rows, std::size_t cols, Xoshiro256& rng,
                        float lo = -1.0f, float hi = 1.0f);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(float); }
  bool empty() const noexcept { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_ && "Matrix::at out of bounds");
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_ && "Matrix::at out of bounds");
    return data_[r * cols_ + c];
  }

  std::span<float> row(std::size_t r) noexcept {
    assert(r < rows_ && "Matrix::row out of bounds");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_ && "Matrix::row out of bounds");
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  void fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape to rows x cols, zero-filled. Reuses existing capacity; when
  /// growth is unavoidable it reserves 1.5x so a slightly larger batch on
  /// the next epoch stays allocation-free (steady-state contract).
  void resize(std::size_t rows, std::size_t cols) {
    const std::size_t n = rows * cols;
    if (n > data_.capacity()) {
      count_heap_allocation();
      data_.reserve(n + n / 2);
    }
    data_.assign(n, 0.0f);
    rows_ = rows;
    cols_ = cols;
  }

  bool same_shape(const Matrix& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  /// Process-wide count of float-buffer heap allocations performed by
  /// Matrix objects (construction, copies, and capacity growth). The
  /// steady-state regression test snapshots this across epochs to prove
  /// the hot path stopped allocating.
  static std::uint64_t heap_allocations() noexcept;

 private:
  static void count_heap_allocation() noexcept;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Max absolute elementwise difference; infinity if shapes differ.
float max_abs_diff(const Matrix& a, const Matrix& b);

/// True iff all elements differ by at most `tol`.
bool allclose(const Matrix& a, const Matrix& b, float tol = 1e-4f);

}  // namespace gt
