// NAPA program builder — the user-facing way to assemble a GNN model from
// the three primitives' modes, mirroring the paper's Algorithm 10:
//
//   auto model = gt::NapaProgram("NGCF")
//                    .edge_weight(gt::kernels::EdgeWeightMode::kDot)
//                    .aggregate(gt::kernels::AggMode::kMean)
//                    .layers(2)
//                    .hidden(8)
//                    .classes(2)
//                    .build();
//
// The paper counts >315K expressible designs; here the space is
// f x g x layers x widths, every combination of which executes through
// NeighborApply / Pull / Apply.
#pragma once

#include <string>

#include "models/config.hpp"

namespace gt {

class NapaProgram {
 public:
  explicit NapaProgram(std::string name);

  /// Aggregation function f for Pull.
  NapaProgram& aggregate(kernels::AggMode f);
  /// Edge weight function g for NeighborApply (h is applied inside Pull).
  NapaProgram& edge_weight(kernels::EdgeWeightMode g);
  NapaProgram& layers(std::uint32_t n);
  NapaProgram& hidden(std::uint32_t dim);
  NapaProgram& classes(std::uint32_t dim);

  /// Validates and returns the model configuration. Throws
  /// std::invalid_argument on zero layer/width values.
  models::GnnModelConfig build() const;

 private:
  models::GnnModelConfig config_;
};

}  // namespace gt
