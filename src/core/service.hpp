// GnnService: the end-user entry point. Owns a dataset, a model, its
// parameters, and a framework backend; trains batch by batch and evaluates
// classification accuracy against the synthetic labels.
//
// Steady-state loop: the service keeps `workers` BatchContexts alive.
// With workers == 1 every batch runs serially in context 0. With
// workers > 1, a bounded in-flight ring (capacity = workers) prepares
// upcoming batches concurrently on the thread pool — batch i preprocesses
// in context (i % workers) — while execute_prepared (device compute +
// SGD) always runs on the caller thread, in batch order. Preprocessing is
// parameter-independent, so the reports are bit-identical to a serial run.
//
// Fault tolerance (DESIGN.md §11): with a fault plan armed
// (ServiceOptions::fault_spec / GT_FAULT_SPEC), instrumented sites throw
// typed InjectedFaults. The loop is exception-safe — before any unwind it
// drains every in-flight preparation and quarantines (resets) the worker
// contexts, so no pool task outlives the loop's stack frames. Transient
// faults are retried with bounded virtual exponential backoff; a batch
// that exhausts its retry budget degrades to a RunReport::failed entry
// instead of aborting the epoch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datasets/catalog.hpp"
#include "fault/fault.hpp"
#include "frameworks/framework.hpp"
#include "models/config.hpp"
#include "models/params.hpp"
#include "obs/live/telemetry.hpp"
#include "serving/planner.hpp"
#include "util/thread_pool.hpp"

namespace gt {

namespace detail {

/// a + b with saturation at UINT64_MAX instead of wraparound. Used for
/// the virtual-backoff accumulators, which legitimately approach the top
/// of the range when backoff_max_ticks is huge and retries pile up.
constexpr std::uint64_t saturating_add(std::uint64_t a,
                                       std::uint64_t b) noexcept {
  return a > ~0ull - b ? ~0ull : a + b;
}

/// Virtual exponential backoff before retry `attempt` (1-based):
/// min(base << (attempt - 1), cap), computed without undefined behavior.
/// A shift that would overflow saturates to UINT64_MAX (then clamps to
/// cap) instead of wrapping; base == 0 means "no backoff" for every
/// attempt, including ones whose shift exceeds the word size.
constexpr std::uint64_t saturating_backoff(std::uint64_t base,
                                           std::uint32_t attempt,
                                           std::uint64_t cap) noexcept {
  if (base == 0) return 0;
  const std::uint32_t shift = attempt > 1 ? attempt - 1 : 0;
  const std::uint64_t ticks =
      (shift >= 64 || base > (~0ull >> shift)) ? ~0ull : base << shift;
  return ticks < cap ? ticks : cap;
}

}  // namespace detail

struct ServiceOptions {
  std::string framework = "Prepro-GT";
  std::uint64_t seed = 42;
  float learning_rate = 0.05f;
  std::size_t batch_size = 300;
  frameworks::OrderPolicy order = frameworks::OrderPolicy::kDynamic;
  /// Worker contexts draining the batch queue. 1 = fully serial. N > 1
  /// overlaps preprocessing of up to N batches; results stay bit-identical
  /// to workers == 1.
  std::size_t workers = 1;
  /// Simulated devices for modeled multi-device execution (DESIGN.md §14).
  /// 1 = the classic single-device run. N > 1 requires a shard-capable
  /// backend (the GraphTensor variants): the constructor throws
  /// std::invalid_argument when the backend refuses. Trained parameters
  /// stay bit-identical to devices == 1; only the modeled timeline,
  /// comm.* metrics, and per-device attribution change.
  std::size_t devices = 1;
  /// Decomposition strategy for devices > 1; kNone defaults to kRange.
  /// Ignored (and rejected by the CLI) for single-device runs.
  frameworks::ShardStrategy shard = frameworks::ShardStrategy::kNone;
  /// Embedding cache hierarchy budget (DESIGN.md §15). 0 = no cache. A
  /// positive budget requires a cache-capable backend (the GraphTensor
  /// variants): the constructor throws std::invalid_argument when the
  /// backend refuses. The cache re-prices the K/T stages only — trained
  /// parameters and losses stay bit-identical to a cache-off run.
  std::size_t cache_budget_bytes = 0;
  /// Replacement policy for the cache budget; only read when
  /// cache_budget_bytes > 0.
  sampling::CachePolicy cache_policy = sampling::CachePolicy::kStatic;
  /// Sampler-lookahead prefetch: warm the dynamic tier with the prepared
  /// next batch's vid_order, priced as overlapped transfer. Only read
  /// when cache_budget_bytes > 0 (and only effective for policies with a
  /// dynamic tier).
  bool cache_prefetch = false;
  /// Host threads for the process-wide compute engine (simulated-device
  /// kernel execution and dense tensor ops). 0 leaves the current global
  /// setting (GT_COMPUTE_THREADS / hardware default) untouched; any other
  /// value reconfigures the engine via set_compute_threads. Reports are
  /// bit-identical for every value — only host wall-clock changes.
  std::size_t compute_threads = 0;
  /// Fault-injection schedule (gt::fault grammar, e.g.
  /// "gpusim.alloc@batch=3:layer=1;preproc.sample@batch=7"). Empty = no
  /// plan; GT_FAULT_SPEC supplies one when this field is empty. The
  /// constructor throws std::invalid_argument on a malformed spec.
  std::string fault_spec;
  /// Recovery budget: a batch whose attempt throws a *transient*
  /// InjectedFault is re-run up to this many times before it degrades to
  /// a RunReport::failed entry. kind=abort faults and non-injected
  /// exceptions are never retried — they unwind after a full drain.
  std::uint32_t max_retries = 3;
  /// Virtual exponential backoff before retry k (1-based):
  /// min(backoff_base_ticks << (k - 1), backoff_max_ticks) ticks. Ticks
  /// are a deterministic counter (no wall-clock sleep), so recovered runs
  /// stay bit-identical and tests stay fast.
  std::uint64_t backoff_base_ticks = 1;
  std::uint64_t backoff_max_ticks = 64;
  /// Live telemetry (DESIGN.md §12). When telemetry.out_dir is non-empty
  /// the service arms the full live stack for its lifetime: snapshot
  /// files + structured event log under that directory, per-worker stage
  /// profiler, optional stall watchdog, crash-safe flush. When the field
  /// is left empty the GT_TELEMETRY_* environment variables may supply
  /// the configuration instead (TelemetryOptions::from_env). Telemetry
  /// never changes trained parameters or priced kernel stats.
  obs::live::TelemetryOptions telemetry;
  /// Kernel-level attribution ledger (DESIGN.md §13). Non-empty = arm the
  /// process-wide KernelLedger and write the schema-versioned kernels.json
  /// to this path when the service is destroyed. Empty = the
  /// GT_KERNEL_LEDGER_OUT environment variable may arm it instead. Like
  /// telemetry, the ledger is read-only on training state: armed and
  /// disarmed runs produce bit-identical parameters and reports.
  std::string kernel_ledger_out;
};

struct EpochStats {
  double mean_loss = 0.0;
  double first_loss = 0.0;
  double last_loss = 0.0;
  double mean_end_to_end_us = 0.0;
  double mean_kernel_us = 0.0;
  std::size_t batches = 0;
  std::size_t oom_batches = 0;
  /// Batches that exhausted the retry budget (RunReport::failed). Like
  /// OOM batches they are excluded from every mean.
  std::size_t degraded_batches = 0;
  /// Recovery attempts and virtual backoff consumed across the epoch.
  std::uint64_t retries = 0;
  std::uint64_t backoff_ticks = 0;
  // Arena telemetry across the epoch's batches.
  std::size_t arena_peak_bytes = 0;      // max per-batch arena usage
  std::uint64_t arena_allocations = 0;   // total arena allocs
  std::uint64_t arena_growths = 0;       // total block growths (0 when warm)
};

class GnnService {
 public:
  GnnService(Dataset dataset, models::GnnModelConfig model,
             ServiceOptions options = {});
  /// Writes the armed kernel ledger (if this service armed it) before the
  /// members unwind. Defaulted otherwise-observable behavior.
  ~GnnService();

  const Dataset& dataset() const noexcept { return dataset_; }
  const models::GnnModelConfig& model() const noexcept { return model_; }
  const models::ModelParams& params() const noexcept { return params_; }
  const std::string& framework_name() const noexcept {
    return options_.framework;
  }
  std::size_t workers() const noexcept { return options_.workers; }

  /// Armed fault plan, or null when no spec was given. Exposed so tests
  /// and the harness can assert injection counts / rearm between runs.
  fault::FaultPlan* fault_plan() noexcept { return fault_plan_.get(); }

  /// Total virtual backoff ticks the service has waited so far.
  std::uint64_t virtual_backoff_ticks() const noexcept {
    return backoff_ticks_total_;
  }

  /// Live telemetry stack, or null when telemetry is off.
  obs::live::LiveTelemetry* telemetry() noexcept { return telemetry_.get(); }

  /// Held-out evaluation stream: evaluation batch b draws from batch
  /// index (kEvalStreamTag | b). The tag occupies the top bit of the
  /// 64-bit index domain, so the stream is disjoint from every training
  /// batch index a service could reach by counting up from zero (the old
  /// 1 << 20 offset collided once training passed 2^20 batches).
  static constexpr std::uint64_t kEvalStreamTag = 1ull << 63;
  static constexpr std::uint64_t eval_batch_index(std::uint64_t b) noexcept {
    return kEvalStreamTag | b;
  }

  /// Train one batch; batches advance deterministically.
  frameworks::RunReport train_batch();

  /// Forward-only inference on the next batch (no parameter update).
  frameworks::RunReport infer_batch();

  /// Train `batches` consecutive batches through the steady-state loop
  /// (concurrent when options.workers > 1). Reports come back in batch
  /// order and match a workers == 1 run bit for bit.
  std::vector<frameworks::RunReport> train_batches(std::size_t batches);

  /// Same loop, forward-only.
  std::vector<frameworks::RunReport> infer_batches(std::size_t batches);

  /// Train `batches` consecutive batches and aggregate the reports.
  EpochStats train_epoch(std::size_t batches);

  /// Online request serving (DESIGN.md §16). Replays the seeded open-loop
  /// arrival schedule through SLO-aware admission and the dynamic batcher,
  /// executes every planned batch forward-only through the same
  /// worker-context ring as train_batches, and prices request completions
  /// on the measured virtual clock. The returned outcome stream is a pure
  /// function of `config` plus this service's deterministic reports, so it
  /// is bit-identical across workers counts — including under an injected
  /// fault plan. Throws std::invalid_argument on an unusable config.
  serving::ServeReport serve(const serving::ServeConfig& config);

  /// Classification accuracy on `batches` *held-out* batches (the
  /// kEvalStreamTag batch stream), computed with the CPU reference
  /// forward in a dedicated arena-backed context.
  double evaluate(std::size_t batches = 4);

 private:
  frameworks::BatchSpec next_spec(bool inference);
  std::vector<frameworks::RunReport> run_batches(std::size_t batches,
                                                 bool inference);
  /// Run one batch attempt-by-attempt: retry transient InjectedFaults
  /// with virtual backoff (`failed_attempts` counts attempts already
  /// burned by the caller, e.g. a ring preparation that threw), degrade
  /// to a failed report past max_retries. kind=abort rethrows.
  frameworks::RunReport run_with_recovery(const frameworks::BatchSpec& spec,
                                          pipeline::BatchContext& ctx,
                                          std::uint32_t failed_attempts,
                                          std::string last_reason);
  frameworks::RunReport degraded_report(const frameworks::BatchSpec& spec,
                                        const std::string& reason,
                                        std::uint32_t retries,
                                        std::uint64_t backoff);
  /// Post-batch observability: latency/loss histograms, p99 + queue-depth
  /// gauges, service.oom events, watchdog heartbeat, snapshot tick.
  void after_batch(const frameworks::BatchSpec& spec,
                   const frameworks::RunReport& report,
                   std::size_t queue_depth);
  std::uint64_t backoff_for(std::uint32_t attempt) const noexcept;
  void ensure_contexts(std::size_t n);

  Dataset dataset_;
  models::GnnModelConfig model_;
  ServiceOptions options_;
  models::ModelParams params_;
  std::unique_ptr<frameworks::Framework> backend_;
  std::unique_ptr<fault::FaultPlan> fault_plan_;  // null = faults off
  std::unique_ptr<obs::live::LiveTelemetry> telemetry_;  // null = off
  bool ledger_armed_ = false;  // this service armed the process ledger
  std::uint64_t next_batch_ = 0;
  std::uint64_t backoff_ticks_total_ = 0;
  std::vector<std::unique_ptr<pipeline::BatchContext>> contexts_;
  std::unique_ptr<pipeline::BatchContext> eval_context_;
  std::unique_ptr<ThreadPool> pool_;  // lazy; only when workers > 1
};

}  // namespace gt
