// GnnService: the end-user entry point. Owns a dataset, a model, its
// parameters, and a framework backend; trains batch by batch and evaluates
// classification accuracy against the synthetic labels.
//
// Steady-state loop: the service keeps `workers` BatchContexts alive.
// With workers == 1 every batch runs serially in context 0. With
// workers > 1, a bounded in-flight ring (capacity = workers) prepares
// upcoming batches concurrently on the thread pool — batch i preprocesses
// in context (i % workers) — while execute_prepared (device compute +
// SGD) always runs on the caller thread, in batch order. Preprocessing is
// parameter-independent, so the reports are bit-identical to a serial run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datasets/catalog.hpp"
#include "frameworks/framework.hpp"
#include "models/config.hpp"
#include "models/params.hpp"
#include "util/thread_pool.hpp"

namespace gt {

struct ServiceOptions {
  std::string framework = "Prepro-GT";
  std::uint64_t seed = 42;
  float learning_rate = 0.05f;
  std::size_t batch_size = 300;
  frameworks::OrderPolicy order = frameworks::OrderPolicy::kDynamic;
  /// Worker contexts draining the batch queue. 1 = fully serial. N > 1
  /// overlaps preprocessing of up to N batches; results stay bit-identical
  /// to workers == 1.
  std::size_t workers = 1;
  /// Host threads for the process-wide compute engine (simulated-device
  /// kernel execution and dense tensor ops). 0 leaves the current global
  /// setting (GT_COMPUTE_THREADS / hardware default) untouched; any other
  /// value reconfigures the engine via set_compute_threads. Reports are
  /// bit-identical for every value — only host wall-clock changes.
  std::size_t compute_threads = 0;
};

struct EpochStats {
  double mean_loss = 0.0;
  double first_loss = 0.0;
  double last_loss = 0.0;
  double mean_end_to_end_us = 0.0;
  double mean_kernel_us = 0.0;
  std::size_t batches = 0;
  std::size_t oom_batches = 0;
  // Arena telemetry across the epoch's batches.
  std::size_t arena_peak_bytes = 0;      // max per-batch arena usage
  std::uint64_t arena_allocations = 0;   // total arena allocs
  std::uint64_t arena_growths = 0;       // total block growths (0 when warm)
};

class GnnService {
 public:
  GnnService(Dataset dataset, models::GnnModelConfig model,
             ServiceOptions options = {});

  const Dataset& dataset() const noexcept { return dataset_; }
  const models::GnnModelConfig& model() const noexcept { return model_; }
  const models::ModelParams& params() const noexcept { return params_; }
  const std::string& framework_name() const noexcept {
    return options_.framework;
  }
  std::size_t workers() const noexcept { return options_.workers; }

  /// Train one batch; batches advance deterministically.
  frameworks::RunReport train_batch();

  /// Forward-only inference on the next batch (no parameter update).
  frameworks::RunReport infer_batch();

  /// Train `batches` consecutive batches through the steady-state loop
  /// (concurrent when options.workers > 1). Reports come back in batch
  /// order and match a workers == 1 run bit for bit.
  std::vector<frameworks::RunReport> train_batches(std::size_t batches);

  /// Same loop, forward-only.
  std::vector<frameworks::RunReport> infer_batches(std::size_t batches);

  /// Train `batches` consecutive batches and aggregate the reports.
  EpochStats train_epoch(std::size_t batches);

  /// Classification accuracy on `batches` *held-out* batches (a disjoint
  /// deterministic batch stream), computed with the CPU reference forward
  /// in a dedicated arena-backed context.
  double evaluate(std::size_t batches = 4);

 private:
  frameworks::BatchSpec next_spec(bool inference);
  std::vector<frameworks::RunReport> run_batches(std::size_t batches,
                                                 bool inference);
  void ensure_contexts(std::size_t n);

  Dataset dataset_;
  models::GnnModelConfig model_;
  ServiceOptions options_;
  models::ModelParams params_;
  std::unique_ptr<frameworks::Framework> backend_;
  std::uint64_t next_batch_ = 0;
  std::vector<std::unique_ptr<pipeline::BatchContext>> contexts_;
  std::unique_ptr<pipeline::BatchContext> eval_context_;
  std::unique_ptr<ThreadPool> pool_;  // lazy; only when workers > 1
};

}  // namespace gt
