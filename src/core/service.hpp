// GnnService: the end-user entry point. Owns a dataset, a model, its
// parameters, and a framework backend; trains batch by batch and evaluates
// classification accuracy against the synthetic labels.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "datasets/catalog.hpp"
#include "frameworks/framework.hpp"
#include "models/config.hpp"
#include "models/params.hpp"

namespace gt {

struct ServiceOptions {
  std::string framework = "Prepro-GT";
  std::uint64_t seed = 42;
  float learning_rate = 0.05f;
  std::size_t batch_size = 300;
  frameworks::OrderPolicy order = frameworks::OrderPolicy::kDynamic;
};

struct EpochStats {
  double mean_loss = 0.0;
  double first_loss = 0.0;
  double last_loss = 0.0;
  double mean_end_to_end_us = 0.0;
  double mean_kernel_us = 0.0;
  std::size_t batches = 0;
  std::size_t oom_batches = 0;
};

class GnnService {
 public:
  GnnService(Dataset dataset, models::GnnModelConfig model,
             ServiceOptions options = {});

  const Dataset& dataset() const noexcept { return dataset_; }
  const models::GnnModelConfig& model() const noexcept { return model_; }
  const models::ModelParams& params() const noexcept { return params_; }
  const std::string& framework_name() const noexcept {
    return options_.framework;
  }

  /// Train one batch; batches advance deterministically.
  frameworks::RunReport train_batch();

  /// Forward-only inference on the next batch (no parameter update).
  frameworks::RunReport infer_batch();

  /// Train `batches` consecutive batches.
  EpochStats train_epoch(std::size_t batches);

  /// Classification accuracy on `batches` *held-out* batches (a disjoint
  /// deterministic batch stream), computed with the CPU reference forward.
  double evaluate(std::size_t batches = 4);

 private:
  Dataset dataset_;
  models::GnnModelConfig model_;
  ServiceOptions options_;
  models::ModelParams params_;
  std::unique_ptr<frameworks::Framework> backend_;
  std::uint64_t next_batch_ = 0;
};

}  // namespace gt
