#include "core/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <future>

#include "kernels/reference.hpp"
#include "obs/attrib/kernel_ledger.hpp"
#include "obs/live/event_log.hpp"
#include "obs/live/worker_profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/executor.hpp"
#include "tensor/view.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace gt {

namespace {
double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Correlation id of a batch: batch_index + 1, so cid 0 stays "none" and a
// grep for one cid returns the batch's whole causal chain (fault.inject,
// every retry, the degradation) across prepare threads and the execute
// thread.
std::uint64_t batch_cid(const frameworks::BatchSpec& spec) noexcept {
  return spec.batch_index + 1;
}
}  // namespace

GnnService::GnnService(Dataset dataset, models::GnnModelConfig model,
                       ServiceOptions options)
    : dataset_(std::move(dataset)),
      model_(std::move(model)),
      options_(options),
      params_(model_, dataset_.spec.feature_dim, options.seed),
      backend_(frameworks::make_framework(options.framework)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.devices == 0) options_.devices = 1;
  if (options_.devices > 1) {
    frameworks::ShardOptions shard;
    shard.devices = options_.devices;
    shard.strategy = options_.shard == frameworks::ShardStrategy::kNone
                         ? frameworks::ShardStrategy::kRange
                         : options_.shard;
    if (!backend_->configure_sharding(shard))
      throw std::invalid_argument(
          "backend '" + options_.framework +
          "' does not support multi-device execution (--devices > 1 "
          "requires a GraphTensor variant)");
    options_.shard = shard.strategy;
    log_info("service: modeled multi-device execution (", options_.devices,
             " devices, ", frameworks::to_string(options_.shard),
             " sharding)");
  }
  if (options_.cache_budget_bytes > 0) {
    sampling::CacheConfig cache;
    cache.budget_bytes = options_.cache_budget_bytes;
    cache.policy = options_.cache_policy;
    cache.prefetch = options_.cache_prefetch;
    if (!backend_->configure_cache(cache))
      throw std::invalid_argument(
          "backend '" + options_.framework +
          "' does not support the embedding cache (--cache-budget "
          "requires a GraphTensor variant)");
    log_info("service: embedding cache armed (",
             options_.cache_budget_bytes, " bytes, ",
             sampling::to_string(options_.cache_policy), " policy",
             options_.cache_prefetch ? ", prefetch on" : "", ")");
  }
  if (options_.compute_threads != 0)
    set_compute_threads(options_.compute_threads);
  std::string spec_text = options_.fault_spec;
  if (spec_text.empty()) {
    if (const char* env = std::getenv("GT_FAULT_SPEC")) spec_text = env;
  }
  if (!spec_text.empty()) {
    fault_plan_ = std::make_unique<fault::FaultPlan>(
        fault::FaultPlan::parse(spec_text).entries());
    log_info("service: fault plan armed (", fault_plan_->entry_count(),
             " entr", fault_plan_->entry_count() == 1 ? "y" : "ies", ", ",
             options_.max_retries, " retries max): ", spec_text);
  }
  if (!options_.telemetry.enabled()) {
    const obs::live::TelemetryOptions env_opt =
        obs::live::TelemetryOptions::from_env();
    if (env_opt.enabled()) options_.telemetry = env_opt;
  }
  if (options_.telemetry.enabled()) {
    telemetry_ = std::make_unique<obs::live::LiveTelemetry>(
        options_.telemetry);
    telemetry_->start();
    obs::live::arm_crash_flush();
    log_info("service: live telemetry -> ", options_.telemetry.out_dir,
             " (interval ", options_.telemetry.interval, " batch",
             options_.telemetry.interval == 1 ? "" : "es",
             options_.telemetry.watchdog_stall_ms > 0 ? ", watchdog on"
                                                      : "",
             ")");
  }
#ifndef GT_OBS_DISABLE
  std::string ledger_path = options_.kernel_ledger_out;
  if (ledger_path.empty()) {
    if (const char* env = std::getenv("GT_KERNEL_LEDGER_OUT"))
      ledger_path = env;
  }
  if (!ledger_path.empty()) {
    obs::attrib::KernelLedger::global().arm(ledger_path);
    ledger_armed_ = true;
    log_info("service: kernel ledger armed -> ", ledger_path);
  }
#endif
  log_info("service: ", options_.framework, " on ", dataset_.spec.name,
           " (batch ", options_.batch_size, ", ", model_.num_layers,
           " layers, ", options_.workers, " worker context",
           options_.workers == 1 ? "" : "s", ", ", compute_threads(),
           " compute thread", compute_threads() == 1 ? "" : "s", ")");
}

GnnService::~GnnService() {
#ifndef GT_OBS_DISABLE
  // Mirror image of the ctor arming: the service that armed the
  // process-wide ledger writes the artifact at the end of its lifetime.
  // (Services that did not arm it leave a bench harness's ObsHook or
  // another service's accumulation alone.)
  if (ledger_armed_) {
    obs::attrib::KernelLedger& ledger = obs::attrib::KernelLedger::global();
    if (ledger.write_json_file()) {
      log_info("service: kernel ledger -> ", ledger.out_path(), " (",
               ledger.batch_count(), " batches, ",
               ledger.kernel_class_count(), " kernel classes)");
    } else if (!ledger.out_path().empty()) {
      log_warn("service: failed to write kernel ledger to ",
               ledger.out_path());
    }
    ledger.disarm();
  }
#endif
}

frameworks::BatchSpec GnnService::next_spec(bool inference) {
  frameworks::BatchSpec spec;
  spec.batch_size = options_.batch_size;
  spec.batch_index = next_batch_++;
  spec.seed = options_.seed;
  spec.order = options_.order;
  spec.learning_rate = options_.learning_rate;
  spec.inference = inference;
  return spec;
}

void GnnService::ensure_contexts(std::size_t n) {
  while (contexts_.size() < n)
    contexts_.push_back(std::make_unique<pipeline::BatchContext>());
}

std::uint64_t GnnService::backoff_for(std::uint32_t attempt) const noexcept {
  const std::uint32_t shift = attempt > 1 ? attempt - 1 : 0;
  if (shift >= 63) return options_.backoff_max_ticks;
  const std::uint64_t ticks = options_.backoff_base_ticks << shift;
  // Shifted past the representable range -> saturate at the cap.
  if (options_.backoff_base_ticks != 0 &&
      (ticks >> shift) != options_.backoff_base_ticks)
    return options_.backoff_max_ticks;
  return std::min(ticks, options_.backoff_max_ticks);
}

frameworks::RunReport GnnService::degraded_report(
    const frameworks::BatchSpec& spec, const std::string& reason,
    std::uint32_t retries, std::uint64_t backoff) {
  frameworks::RunReport r;
  r.framework = backend_->name();
  r.model = model_.name;
  r.dataset = dataset_.spec.name;
  r.failed = true;
  r.failed_reason = reason;
  r.retries = retries;
  r.backoff_ticks = backoff;
  obs::metrics().counter("service.degraded_batches").add(1);
  if (obs::live::EventLog::global().armed()) {
    obs::live::Event ev(obs::live::Severity::kError, "service.degraded");
    ev.msg(reason)
        .field("batch", spec.batch_index)
        .field("retries", static_cast<std::uint64_t>(retries))
        .field("backoff_ticks", backoff);
    obs::live::EventLog::global().emit(ev);
  }
  log_warn("service: batch ", spec.batch_index, " degraded after ", retries,
           " retr", retries == 1 ? "y" : "ies", ": ", reason);
  return r;
}

void GnnService::after_batch(const frameworks::BatchSpec& spec,
                             const frameworks::RunReport& report,
                             std::size_t queue_depth) {
  obs::live::CorrelationScope cscope(batch_cid(spec));
  obs::MetricsRegistry& m = obs::metrics();
  m.gauge("service.queue_depth").set(static_cast<double>(queue_depth));
  if (report.oom) {
    m.counter("service.oom_batches").add(1);
    if (obs::live::EventLog::global().armed()) {
      obs::live::Event ev(obs::live::Severity::kWarn, "service.oom");
      ev.msg(report.oom_what).field("batch", spec.batch_index);
      obs::live::EventLog::global().emit(ev);
    }
    log_warn("service: batch ", spec.batch_index,
             " aborted with OOM: ", report.oom_what);
  } else if (!report.failed) {
    obs::Histogram& e2e = m.histogram("service.batch_e2e_us");
    e2e.observe(report.end_to_end_us);
    m.gauge("service.p99_latency_us").set(e2e.p99());
    if (!spec.inference)
      m.histogram("service.batch_loss", {0.5, 1, 2, 3, 4, 5, 7, 10, 20})
          .observe(report.loss);
  }
  if (telemetry_) telemetry_->on_batch();
}

frameworks::RunReport GnnService::run_with_recovery(
    const frameworks::BatchSpec& spec, pipeline::BatchContext& ctx,
    std::uint32_t failed_attempts, std::string last_reason) {
  // Every attempt of this batch — and everything it causes (fault
  // injection, retries, the eventual degradation) — shares one cid.
  obs::live::CorrelationScope cscope(batch_cid(spec));
  std::uint64_t backoff = 0;
  while (true) {
    if (failed_attempts > options_.max_retries)
      return degraded_report(spec, last_reason, failed_attempts - 1, backoff);
    if (failed_attempts > 0) {
      // Virtual backoff: a deterministic tick counter stands in for the
      // wall-clock sleep a real service would take, keeping recovered
      // runs bit-identical and tests instant.
      const std::uint64_t ticks = backoff_for(failed_attempts);
      backoff += ticks;
      backoff_ticks_total_ += ticks;
      obs::metrics().counter("service.retries").add(1);
      obs::metrics().counter("service.backoff_ticks").add(ticks);
      GT_OBS_SCOPE_N(span, "service.retry", "service");
      span.arg("batch", static_cast<std::int64_t>(spec.batch_index));
      span.arg("attempt", static_cast<std::int64_t>(failed_attempts));
      span.arg("backoff_ticks", static_cast<std::int64_t>(ticks));
      if (obs::live::EventLog::global().armed()) {
        obs::live::Event ev(obs::live::Severity::kWarn, "service.retry");
        ev.msg(last_reason)
            .field("batch", spec.batch_index)
            .field("attempt", static_cast<std::uint64_t>(failed_attempts))
            .field("max_retries",
                   static_cast<std::uint64_t>(options_.max_retries))
            .field("backoff_ticks", ticks);
        obs::live::EventLog::global().emit(ev);
      }
      log_warn("service: batch ", spec.batch_index, " retry ",
               failed_attempts, "/", options_.max_retries, " after ", ticks,
               " backoff tick", ticks == 1 ? "" : "s", ": ", last_reason);
    }
    try {
      // run_batch begins with ctx.begin_batch(), which doubles as the
      // quarantine reset after a failed attempt left the context
      // mid-batch.
      fault::PlanScope scope(fault_plan_.get(), spec.batch_index);
      frameworks::RunReport r =
          backend_->run_batch(dataset_, model_, params_, spec, ctx);
      r.retries = failed_attempts;
      r.backoff_ticks = backoff;
      return r;
    } catch (const fault::InjectedFault& f) {
      if (f.kind() == fault::Kind::kAbort) {
        ctx.begin_batch();  // leave the context clean behind the unwind
        throw;
      }
      ++failed_attempts;
      last_reason = f.what();
    }
  }
}

frameworks::RunReport GnnService::train_batch() {
  ensure_contexts(1);
  const frameworks::BatchSpec spec = next_spec(false);
  frameworks::RunReport r = run_with_recovery(spec, *contexts_[0], 0, {});
  after_batch(spec, r, 0);
  return r;
}

frameworks::RunReport GnnService::infer_batch() {
  ensure_contexts(1);
  const frameworks::BatchSpec spec = next_spec(true);
  frameworks::RunReport r = run_with_recovery(spec, *contexts_[0], 0, {});
  after_batch(spec, r, 0);
  return r;
}

std::vector<frameworks::RunReport> GnnService::run_batches(
    std::size_t batches, bool inference) {
  std::vector<frameworks::RunReport> reports;
  reports.reserve(batches);
  if (batches == 0) return reports;

  std::vector<frameworks::BatchSpec> specs;
  specs.reserve(batches);
  for (std::size_t i = 0; i < batches; ++i)
    specs.push_back(next_spec(inference));

  const std::size_t workers = std::min(options_.workers, batches);
  ensure_contexts(std::max<std::size_t>(workers, 1));

  if (workers <= 1) {
    for (std::size_t i = 0; i < batches; ++i) {
      GT_OBS_SCOPE("service.train_batch", "service");
      reports.push_back(run_with_recovery(specs[i], *contexts_[0], 0, {}));
      after_batch(specs[i], reports.back(), 0);
    }
    return reports;
  }

  // Bounded in-flight ring, capacity = workers: batch i preprocesses in
  // context (i % workers) on the pool while earlier batches execute on
  // this thread, strictly in batch order. prepare_batch never touches
  // model parameters, so concurrency cannot change any report.
  if (!pool_ || pool_->size() < workers) pool_ = nullptr;
  if (!pool_) pool_ = std::make_unique<ThreadPool>(workers);
  obs::metrics().gauge("service.workers").set(static_cast<double>(workers));

  std::vector<std::future<void>> inflight(workers);
  std::vector<double> prepare_us(workers, 0.0);

  // Exception safety: the pool tasks write through captured pointers into
  // `prepare_us` and the worker contexts. Before ANY unwind of this frame
  // every launched task must have finished — wait() (unlike get()) does
  // not rethrow, so the drain itself cannot throw; a stored exception is
  // discarded with its future.
  auto drain_inflight = [&]() noexcept {
    for (std::future<void>& f : inflight)
      if (f.valid()) f.wait();
  };
  // A throwing attempt leaves its context mid-batch; reset all of them so
  // a caller that catches the propagated exception can keep serving.
  auto quarantine_contexts = [&]() noexcept {
    for (std::size_t w = 0; w < workers; ++w) contexts_[w]->begin_batch();
  };
  // Every unwind of this frame must run the drain first — not just the
  // exceptions the catch handlers below see directly. A retry issued from
  // inside a catch handler can itself throw (e.g. a kind=abort entry armed
  // for a later attempt of the same batch), and that path would otherwise
  // leave pool tasks writing through pointers into the destroyed stack
  // vectors. Declared after the vectors and lambdas so it is destroyed
  // before them on unwind.
  auto unwind_cleanup = [&]() noexcept {
    drain_inflight();
    quarantine_contexts();
    // The run is unwinding past the serving loop (kind=abort fault or a
    // non-injected failure). Flush what telemetry has before the stack
    // above decides whether the process survives — if it does, the next
    // run keeps appending; if not, the post-mortem files are on disk.
    if (telemetry_) telemetry_->crash_flush("service.run_batches unwind");
  };
  struct UnwindGuard {
    decltype(unwind_cleanup)& cleanup;
    int base = std::uncaught_exceptions();
    ~UnwindGuard() {
      if (std::uncaught_exceptions() > base) cleanup();
    }
  } guard{unwind_cleanup};

  auto launch_prepare = [&](std::size_t i) {
    pipeline::BatchContext* ctx = contexts_[i % workers].get();
    double* slot_us = &prepare_us[i % workers];
    const frameworks::BatchSpec spec = specs[i];
    fault::FaultPlan* plan = fault_plan_.get();
    inflight[i % workers] = pool_->submit([this, ctx, spec, slot_us, plan] {
      GT_OBS_SCOPE_N(span, "service.prepare_batch", "service");
      span.arg("batch", static_cast<std::int64_t>(spec.batch_index));
      obs::live::CorrelationScope cscope(batch_cid(spec));
      GT_LIVE_STAGE(kPrepare);
      const auto t0 = std::chrono::steady_clock::now();
      fault::PlanScope scope(plan, spec.batch_index);
      ctx->begin_batch();
      backend_->prepare_batch(dataset_, model_, spec, *ctx);
      *slot_us = elapsed_us(t0);
    });
  };
  for (std::size_t i = 0; i < workers; ++i) launch_prepare(i);
  for (std::size_t i = 0; i < batches; ++i) {
    pipeline::BatchContext& ctx = *contexts_[i % workers];
    bool prepared = true;
    try {
      inflight[i % workers].get();  // rethrows preprocessing failures
    } catch (const fault::InjectedFault& f) {
      if (f.kind() == fault::Kind::kAbort) throw;  // guard drains behind us
      // Transient: re-run the whole batch serially (prepare burned
      // attempt #0); the ring stays intact for the batches behind it. If
      // the re-run itself throws, the guard drains behind that unwind too.
      prepared = false;
      reports.push_back(run_with_recovery(specs[i], ctx, 1, f.what()));
    }
    if (prepared) {
      GT_OBS_SCOPE_N(span, "service.train_batch", "service");
      span.arg("batch", static_cast<std::int64_t>(specs[i].batch_index));
      obs::live::CorrelationScope cscope(batch_cid(specs[i]));
      const double batch_prepare_us = prepare_us[i % workers];
      const auto t0 = std::chrono::steady_clock::now();
      try {
        GT_LIVE_STAGE(kExecute);
        fault::PlanScope scope(fault_plan_.get(), specs[i].batch_index);
        reports.push_back(backend_->execute_prepared(dataset_, model_,
                                                     params_, specs[i], ctx));
        reports.back().host_execute_us = elapsed_us(t0);
        reports.back().host_prepare_us = batch_prepare_us;
      } catch (const fault::InjectedFault& f) {
        if (f.kind() == fault::Kind::kAbort) throw;  // guard drains behind us
        reports.push_back(run_with_recovery(specs[i], ctx, 1, f.what()));
      }
    }
    if (i + workers < batches) launch_prepare(i + workers);
    // In-flight preparations still queued behind this batch = the live
    // queue depth the paper's scheduling section cares about.
    after_batch(specs[i], reports.back(),
                std::min(workers, batches - i - 1));
  }
  return reports;
}

std::vector<frameworks::RunReport> GnnService::train_batches(
    std::size_t batches) {
  return run_batches(batches, /*inference=*/false);
}

std::vector<frameworks::RunReport> GnnService::infer_batches(
    std::size_t batches) {
  return run_batches(batches, /*inference=*/true);
}

EpochStats GnnService::train_epoch(std::size_t batches) {
  GT_OBS_SCOPE_N(epoch_span, "service.train_epoch", "service");
  epoch_span.arg("batches", static_cast<std::int64_t>(batches));
  obs::MetricsRegistry& m = obs::metrics();
  EpochStats stats;
  const std::vector<frameworks::RunReport> reports = train_batches(batches);
  bool first_ok = true;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const frameworks::RunReport& report = reports[i];
    ++stats.batches;
    stats.retries += report.retries;
    stats.backoff_ticks += report.backoff_ticks;
    if (report.failed) {
      ++stats.degraded_batches;
      continue;  // degraded_report already logged + counted
    }
    if (report.oom) {
      // after_batch already counted, logged and emitted the OOM event.
      ++stats.oom_batches;
      continue;
    }
    log_debug("service: batch ", i, " loss ", report.loss, " e2e ",
              report.end_to_end_us, "us");
    if (first_ok) {
      stats.first_loss = report.loss;
      first_ok = false;
    }
    stats.last_loss = report.loss;
    stats.mean_loss += report.loss;
    stats.mean_end_to_end_us += report.end_to_end_us;
    stats.mean_kernel_us += report.kernel_total_us;
    stats.arena_peak_bytes =
        std::max(stats.arena_peak_bytes, report.arena_peak_bytes);
    stats.arena_allocations += report.arena_allocations;
    stats.arena_growths += report.arena_growths;
  }
  const double n = static_cast<double>(stats.batches - stats.oom_batches -
                                       stats.degraded_batches);
  if (n > 0) {
    stats.mean_loss /= n;
    stats.mean_end_to_end_us /= n;
    stats.mean_kernel_us /= n;
  }
  m.counter("service.epochs").add(1);
  m.gauge("service.epoch_mean_loss").set(stats.mean_loss);
  m.gauge("service.epoch_mean_e2e_us").set(stats.mean_end_to_end_us);
  if (obs::live::EventLog::global().armed()) {
    obs::live::Event ev(obs::live::Severity::kInfo, "service.epoch");
    ev.field("batches", static_cast<std::uint64_t>(stats.batches))
        .field("degraded", static_cast<std::uint64_t>(stats.degraded_batches))
        .field("oom", static_cast<std::uint64_t>(stats.oom_batches))
        .field("retries", stats.retries)
        .field("mean_loss", stats.mean_loss);
    obs::live::EventLog::global().emit(ev);
  }
  return stats;
}

double GnnService::evaluate(std::size_t batches) {
  GT_OBS_SCOPE_N(span, "service.evaluate", "service");
  span.arg("batches", static_cast<std::int64_t>(batches));
  const sampling::ReindexFormats formats{.coo = false, .csr = true,
                                         .csc = false};
  if (!eval_context_)
    eval_context_ = std::make_unique<pipeline::BatchContext>();
  pipeline::BatchContext& ctx = *eval_context_;
  pipeline::PreprocExecutor& exec =
      ctx.executor_for(dataset_.csr, dataset_.embeddings, dataset_.spec.fanout,
                       model_.num_layers, options_.seed, formats);
  std::size_t correct = 0, total = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    ctx.begin_batch();
    ctx.batch_vids() =
        exec.sampler().pick_batch(options_.batch_size, eval_batch_index(b));
    exec.run_serial_into(ctx.batch_vids(), ctx.table(), ctx.preproc(),
                         ctx.scratch());
    const pipeline::PreprocResult& pre = ctx.preproc();
    ConstMatrixView x{pre.embeddings};
    for (std::uint32_t l = 0; l < model_.num_layers; ++l) {
      x = kernels::ref::forward_layer(
          ctx.arena(), pre.layers[l].csr, x, params_.w(l), params_.b(l),
          pre.layers[l].n_dst, model_.f, model_.g, model_.relu_at(l));
    }
    for (std::size_t i = 0; i < x.rows(); ++i) {
      std::uint32_t best = 0;
      for (std::uint32_t c = 1; c < x.cols(); ++c)
        if (x.at(i, c) > x.at(i, best)) best = c;
      const std::uint32_t label = synthetic_label(
          pre.batch.vid_order[i], model_.output_dim, options_.seed);
      correct += best == label;
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

}  // namespace gt
