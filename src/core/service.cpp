#include "core/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <future>

#include "kernels/reference.hpp"
#include "obs/attrib/kernel_ledger.hpp"
#include "obs/live/event_log.hpp"
#include "obs/live/worker_profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/executor.hpp"
#include "tensor/view.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace gt {

namespace {
double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Correlation id of a batch: batch_index + 1, so cid 0 stays "none" and a
// grep for one cid returns the batch's whole causal chain (fault.inject,
// every retry, the degradation) across prepare threads and the execute
// thread.
std::uint64_t batch_cid(const frameworks::BatchSpec& spec) noexcept {
  return spec.batch_index + 1;
}
}  // namespace

GnnService::GnnService(Dataset dataset, models::GnnModelConfig model,
                       ServiceOptions options)
    : dataset_(std::move(dataset)),
      model_(std::move(model)),
      options_(options),
      params_(model_, dataset_.spec.feature_dim, options.seed),
      backend_(frameworks::make_framework(options.framework)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.devices == 0) options_.devices = 1;
  if (options_.devices > 1) {
    frameworks::ShardOptions shard;
    shard.devices = options_.devices;
    shard.strategy = options_.shard == frameworks::ShardStrategy::kNone
                         ? frameworks::ShardStrategy::kRange
                         : options_.shard;
    if (!backend_->configure_sharding(shard))
      throw std::invalid_argument(
          "backend '" + options_.framework +
          "' does not support multi-device execution (--devices > 1 "
          "requires a GraphTensor variant)");
    options_.shard = shard.strategy;
    log_info("service: modeled multi-device execution (", options_.devices,
             " devices, ", frameworks::to_string(options_.shard),
             " sharding)");
  }
  if (options_.cache_budget_bytes > 0) {
    sampling::CacheConfig cache;
    cache.budget_bytes = options_.cache_budget_bytes;
    cache.policy = options_.cache_policy;
    cache.prefetch = options_.cache_prefetch;
    if (!backend_->configure_cache(cache))
      throw std::invalid_argument(
          "backend '" + options_.framework +
          "' does not support the embedding cache (--cache-budget "
          "requires a GraphTensor variant)");
    log_info("service: embedding cache armed (",
             options_.cache_budget_bytes, " bytes, ",
             sampling::to_string(options_.cache_policy), " policy",
             options_.cache_prefetch ? ", prefetch on" : "", ")");
  }
  if (options_.compute_threads != 0)
    set_compute_threads(options_.compute_threads);
  std::string spec_text = options_.fault_spec;
  if (spec_text.empty()) {
    if (const char* env = std::getenv("GT_FAULT_SPEC")) spec_text = env;
  }
  if (!spec_text.empty()) {
    fault_plan_ = std::make_unique<fault::FaultPlan>(
        fault::FaultPlan::parse(spec_text).entries());
    log_info("service: fault plan armed (", fault_plan_->entry_count(),
             " entr", fault_plan_->entry_count() == 1 ? "y" : "ies", ", ",
             options_.max_retries, " retries max): ", spec_text);
  }
  if (!options_.telemetry.enabled()) {
    const obs::live::TelemetryOptions env_opt =
        obs::live::TelemetryOptions::from_env();
    if (env_opt.enabled()) options_.telemetry = env_opt;
  }
  if (options_.telemetry.enabled()) {
    telemetry_ = std::make_unique<obs::live::LiveTelemetry>(
        options_.telemetry);
    telemetry_->start();
    obs::live::arm_crash_flush();
    log_info("service: live telemetry -> ", options_.telemetry.out_dir,
             " (interval ", options_.telemetry.interval, " batch",
             options_.telemetry.interval == 1 ? "" : "es",
             options_.telemetry.watchdog_stall_ms > 0 ? ", watchdog on"
                                                      : "",
             ")");
  }
#ifndef GT_OBS_DISABLE
  std::string ledger_path = options_.kernel_ledger_out;
  if (ledger_path.empty()) {
    if (const char* env = std::getenv("GT_KERNEL_LEDGER_OUT"))
      ledger_path = env;
  }
  if (!ledger_path.empty()) {
    obs::attrib::KernelLedger::global().arm(ledger_path);
    ledger_armed_ = true;
    log_info("service: kernel ledger armed -> ", ledger_path);
  }
#endif
  log_info("service: ", options_.framework, " on ", dataset_.spec.name,
           " (batch ", options_.batch_size, ", ", model_.num_layers,
           " layers, ", options_.workers, " worker context",
           options_.workers == 1 ? "" : "s", ", ", compute_threads(),
           " compute thread", compute_threads() == 1 ? "" : "s", ")");
}

GnnService::~GnnService() {
#ifndef GT_OBS_DISABLE
  // Mirror image of the ctor arming: the service that armed the
  // process-wide ledger writes the artifact at the end of its lifetime.
  // (Services that did not arm it leave a bench harness's ObsHook or
  // another service's accumulation alone.)
  if (ledger_armed_) {
    obs::attrib::KernelLedger& ledger = obs::attrib::KernelLedger::global();
    if (ledger.write_json_file()) {
      log_info("service: kernel ledger -> ", ledger.out_path(), " (",
               ledger.batch_count(), " batches, ",
               ledger.kernel_class_count(), " kernel classes)");
    } else if (!ledger.out_path().empty()) {
      log_warn("service: failed to write kernel ledger to ",
               ledger.out_path());
    }
    ledger.disarm();
  }
#endif
}

frameworks::BatchSpec GnnService::next_spec(bool inference) {
  frameworks::BatchSpec spec;
  spec.batch_size = options_.batch_size;
  spec.batch_index = next_batch_++;
  spec.seed = options_.seed;
  spec.order = options_.order;
  spec.learning_rate = options_.learning_rate;
  spec.inference = inference;
  return spec;
}

void GnnService::ensure_contexts(std::size_t n) {
  while (contexts_.size() < n)
    contexts_.push_back(std::make_unique<pipeline::BatchContext>());
}

std::uint64_t GnnService::backoff_for(std::uint32_t attempt) const noexcept {
  // detail::saturating_backoff fixes two wraparound bugs the old inline
  // computation had: `base << shift` is UB for shift >= 64 (and the old
  // shift >= 63 early-out returned the cap even when base == 0 or when
  // 2^shift * base was still representable below the cap), and a zero
  // base must stay zero for every attempt.
  return detail::saturating_backoff(options_.backoff_base_ticks, attempt,
                                    options_.backoff_max_ticks);
}

frameworks::RunReport GnnService::degraded_report(
    const frameworks::BatchSpec& spec, const std::string& reason,
    std::uint32_t retries, std::uint64_t backoff) {
  frameworks::RunReport r;
  r.framework = backend_->name();
  r.model = model_.name;
  r.dataset = dataset_.spec.name;
  r.failed = true;
  r.failed_reason = reason;
  r.retries = retries;
  r.backoff_ticks = backoff;
  obs::metrics().counter("service.degraded_batches").add(1);
  if (obs::live::EventLog::global().armed()) {
    obs::live::Event ev(obs::live::Severity::kError, "service.degraded");
    ev.msg(reason)
        .field("batch", spec.batch_index)
        .field("retries", static_cast<std::uint64_t>(retries))
        .field("backoff_ticks", backoff);
    obs::live::EventLog::global().emit(ev);
  }
  log_warn("service: batch ", spec.batch_index, " degraded after ", retries,
           " retr", retries == 1 ? "y" : "ies", ": ", reason);
  return r;
}

void GnnService::after_batch(const frameworks::BatchSpec& spec,
                             const frameworks::RunReport& report,
                             std::size_t queue_depth) {
  obs::live::CorrelationScope cscope(batch_cid(spec));
  obs::MetricsRegistry& m = obs::metrics();
  m.gauge("service.queue_depth").set(static_cast<double>(queue_depth));
  if (report.oom) {
    m.counter("service.oom_batches").add(1);
    if (obs::live::EventLog::global().armed()) {
      obs::live::Event ev(obs::live::Severity::kWarn, "service.oom");
      ev.msg(report.oom_what).field("batch", spec.batch_index);
      obs::live::EventLog::global().emit(ev);
    }
    log_warn("service: batch ", spec.batch_index,
             " aborted with OOM: ", report.oom_what);
  } else if (!report.failed) {
    obs::Histogram& e2e = m.histogram("service.batch_e2e_us");
    e2e.observe(report.end_to_end_us);
    m.gauge("service.p99_latency_us").set(e2e.p99());
    if (!spec.inference)
      m.histogram("service.batch_loss", {0.5, 1, 2, 3, 4, 5, 7, 10, 20})
          .observe(report.loss);
  }
  if (telemetry_) telemetry_->on_batch();
}

frameworks::RunReport GnnService::run_with_recovery(
    const frameworks::BatchSpec& spec, pipeline::BatchContext& ctx,
    std::uint32_t failed_attempts, std::string last_reason) {
  // Every attempt of this batch — and everything it causes (fault
  // injection, retries, the eventual degradation) — shares one cid.
  obs::live::CorrelationScope cscope(batch_cid(spec));
  std::uint64_t backoff = 0;
  while (true) {
    if (failed_attempts > options_.max_retries)
      return degraded_report(spec, last_reason, failed_attempts - 1, backoff);
    if (failed_attempts > 0) {
      // Virtual backoff: a deterministic tick counter stands in for the
      // wall-clock sleep a real service would take, keeping recovered
      // runs bit-identical and tests instant.
      const std::uint64_t ticks = backoff_for(failed_attempts);
      // Saturate, don't wrap: with backoff_max_ticks near UINT64_MAX a
      // couple of retries used to overflow these accumulators back to
      // small values, making reports claim almost no backoff was taken.
      backoff = detail::saturating_add(backoff, ticks);
      backoff_ticks_total_ = detail::saturating_add(backoff_ticks_total_, ticks);
      obs::metrics().counter("service.retries").add(1);
      obs::metrics().counter("service.backoff_ticks").add(ticks);
      GT_OBS_SCOPE_N(span, "service.retry", "service");
      span.arg("batch", static_cast<std::int64_t>(spec.batch_index));
      span.arg("attempt", static_cast<std::int64_t>(failed_attempts));
      span.arg("backoff_ticks", static_cast<std::int64_t>(ticks));
      if (obs::live::EventLog::global().armed()) {
        obs::live::Event ev(obs::live::Severity::kWarn, "service.retry");
        ev.msg(last_reason)
            .field("batch", spec.batch_index)
            .field("attempt", static_cast<std::uint64_t>(failed_attempts))
            .field("max_retries",
                   static_cast<std::uint64_t>(options_.max_retries))
            .field("backoff_ticks", ticks);
        obs::live::EventLog::global().emit(ev);
      }
      log_warn("service: batch ", spec.batch_index, " retry ",
               failed_attempts, "/", options_.max_retries, " after ", ticks,
               " backoff tick", ticks == 1 ? "" : "s", ": ", last_reason);
    }
    try {
      // run_batch begins with ctx.begin_batch(), which doubles as the
      // quarantine reset after a failed attempt left the context
      // mid-batch.
      fault::PlanScope scope(fault_plan_.get(), spec.batch_index);
      frameworks::RunReport r =
          backend_->run_batch(dataset_, model_, params_, spec, ctx);
      r.retries = failed_attempts;
      r.backoff_ticks = backoff;
      return r;
    } catch (const fault::InjectedFault& f) {
      if (f.kind() == fault::Kind::kAbort) {
        ctx.begin_batch();  // leave the context clean behind the unwind
        throw;
      }
      ++failed_attempts;
      last_reason = f.what();
    }
  }
}

frameworks::RunReport GnnService::train_batch() {
  ensure_contexts(1);
  const frameworks::BatchSpec spec = next_spec(false);
  frameworks::RunReport r = run_with_recovery(spec, *contexts_[0], 0, {});
  after_batch(spec, r, 0);
  return r;
}

frameworks::RunReport GnnService::infer_batch() {
  ensure_contexts(1);
  const frameworks::BatchSpec spec = next_spec(true);
  frameworks::RunReport r = run_with_recovery(spec, *contexts_[0], 0, {});
  after_batch(spec, r, 0);
  return r;
}

std::vector<frameworks::RunReport> GnnService::run_batches(
    std::size_t batches, bool inference) {
  std::vector<frameworks::RunReport> reports;
  reports.reserve(batches);
  if (batches == 0) return reports;

  std::vector<frameworks::BatchSpec> specs;
  specs.reserve(batches);
  for (std::size_t i = 0; i < batches; ++i)
    specs.push_back(next_spec(inference));

  const std::size_t workers = std::min(options_.workers, batches);
  ensure_contexts(std::max<std::size_t>(workers, 1));

  if (workers <= 1) {
    for (std::size_t i = 0; i < batches; ++i) {
      GT_OBS_SCOPE("service.train_batch", "service");
      reports.push_back(run_with_recovery(specs[i], *contexts_[0], 0, {}));
      after_batch(specs[i], reports.back(), 0);
    }
    return reports;
  }

  // Bounded in-flight ring, capacity = workers: batch i preprocesses in
  // context (i % workers) on the pool while earlier batches execute on
  // this thread, strictly in batch order. prepare_batch never touches
  // model parameters, so concurrency cannot change any report.
  if (!pool_ || pool_->size() < workers) pool_ = nullptr;
  if (!pool_) pool_ = std::make_unique<ThreadPool>(workers);
  obs::metrics().gauge("service.workers").set(static_cast<double>(workers));

  std::vector<std::future<void>> inflight(workers);
  std::vector<double> prepare_us(workers, 0.0);

  // Exception safety: the pool tasks write through captured pointers into
  // `prepare_us` and the worker contexts. Before ANY unwind of this frame
  // every launched task must have finished — wait() (unlike get()) does
  // not rethrow, so the drain itself cannot throw; a stored exception is
  // discarded with its future.
  auto drain_inflight = [&]() noexcept {
    for (std::future<void>& f : inflight)
      if (f.valid()) f.wait();
  };
  // A throwing attempt leaves its context mid-batch; reset all of them so
  // a caller that catches the propagated exception can keep serving.
  auto quarantine_contexts = [&]() noexcept {
    for (std::size_t w = 0; w < workers; ++w) contexts_[w]->begin_batch();
  };
  // Every unwind of this frame must run the drain first — not just the
  // exceptions the catch handlers below see directly. A retry issued from
  // inside a catch handler can itself throw (e.g. a kind=abort entry armed
  // for a later attempt of the same batch), and that path would otherwise
  // leave pool tasks writing through pointers into the destroyed stack
  // vectors. Declared after the vectors and lambdas so it is destroyed
  // before them on unwind.
  auto unwind_cleanup = [&]() noexcept {
    drain_inflight();
    quarantine_contexts();
    // The run is unwinding past the serving loop (kind=abort fault or a
    // non-injected failure). Flush what telemetry has before the stack
    // above decides whether the process survives — if it does, the next
    // run keeps appending; if not, the post-mortem files are on disk.
    if (telemetry_) telemetry_->crash_flush("service.run_batches unwind");
  };
  struct UnwindGuard {
    decltype(unwind_cleanup)& cleanup;
    int base = std::uncaught_exceptions();
    ~UnwindGuard() {
      if (std::uncaught_exceptions() > base) cleanup();
    }
  } guard{unwind_cleanup};

  auto launch_prepare = [&](std::size_t i) {
    pipeline::BatchContext* ctx = contexts_[i % workers].get();
    double* slot_us = &prepare_us[i % workers];
    const frameworks::BatchSpec spec = specs[i];
    fault::FaultPlan* plan = fault_plan_.get();
    inflight[i % workers] = pool_->submit([this, ctx, spec, slot_us, plan] {
      GT_OBS_SCOPE_N(span, "service.prepare_batch", "service");
      span.arg("batch", static_cast<std::int64_t>(spec.batch_index));
      obs::live::CorrelationScope cscope(batch_cid(spec));
      GT_LIVE_STAGE(kPrepare);
      const auto t0 = std::chrono::steady_clock::now();
      fault::PlanScope scope(plan, spec.batch_index);
      ctx->begin_batch();
      backend_->prepare_batch(dataset_, model_, spec, *ctx);
      *slot_us = elapsed_us(t0);
    });
  };
  for (std::size_t i = 0; i < workers; ++i) launch_prepare(i);
  for (std::size_t i = 0; i < batches; ++i) {
    pipeline::BatchContext& ctx = *contexts_[i % workers];
    bool prepared = true;
    try {
      inflight[i % workers].get();  // rethrows preprocessing failures
    } catch (const fault::InjectedFault& f) {
      if (f.kind() == fault::Kind::kAbort) throw;  // guard drains behind us
      // Transient: re-run the whole batch serially (prepare burned
      // attempt #0); the ring stays intact for the batches behind it. If
      // the re-run itself throws, the guard drains behind that unwind too.
      prepared = false;
      reports.push_back(run_with_recovery(specs[i], ctx, 1, f.what()));
    }
    if (prepared) {
      GT_OBS_SCOPE_N(span, "service.train_batch", "service");
      span.arg("batch", static_cast<std::int64_t>(specs[i].batch_index));
      obs::live::CorrelationScope cscope(batch_cid(specs[i]));
      const double batch_prepare_us = prepare_us[i % workers];
      const auto t0 = std::chrono::steady_clock::now();
      try {
        GT_LIVE_STAGE(kExecute);
        fault::PlanScope scope(fault_plan_.get(), specs[i].batch_index);
        reports.push_back(backend_->execute_prepared(dataset_, model_,
                                                     params_, specs[i], ctx));
        reports.back().host_execute_us = elapsed_us(t0);
        reports.back().host_prepare_us = batch_prepare_us;
      } catch (const fault::InjectedFault& f) {
        if (f.kind() == fault::Kind::kAbort) throw;  // guard drains behind us
        reports.push_back(run_with_recovery(specs[i], ctx, 1, f.what()));
      }
    }
    if (i + workers < batches) launch_prepare(i + workers);
    // In-flight preparations still queued behind this batch = the live
    // queue depth the paper's scheduling section cares about.
    after_batch(specs[i], reports.back(),
                std::min(workers, batches - i - 1));
  }
  return reports;
}

std::vector<frameworks::RunReport> GnnService::train_batches(
    std::size_t batches) {
  return run_batches(batches, /*inference=*/false);
}

std::vector<frameworks::RunReport> GnnService::infer_batches(
    std::size_t batches) {
  return run_batches(batches, /*inference=*/true);
}

EpochStats GnnService::train_epoch(std::size_t batches) {
  GT_OBS_SCOPE_N(epoch_span, "service.train_epoch", "service");
  epoch_span.arg("batches", static_cast<std::int64_t>(batches));
  obs::MetricsRegistry& m = obs::metrics();
  EpochStats stats;
  const std::vector<frameworks::RunReport> reports = train_batches(batches);
  bool first_ok = true;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const frameworks::RunReport& report = reports[i];
    ++stats.batches;
    stats.retries += report.retries;
    stats.backoff_ticks =
        detail::saturating_add(stats.backoff_ticks, report.backoff_ticks);
    if (report.failed) {
      ++stats.degraded_batches;
      continue;  // degraded_report already logged + counted
    }
    if (report.oom) {
      // after_batch already counted, logged and emitted the OOM event.
      ++stats.oom_batches;
      continue;
    }
    log_debug("service: batch ", i, " loss ", report.loss, " e2e ",
              report.end_to_end_us, "us");
    if (first_ok) {
      stats.first_loss = report.loss;
      first_ok = false;
    }
    stats.last_loss = report.loss;
    stats.mean_loss += report.loss;
    stats.mean_end_to_end_us += report.end_to_end_us;
    stats.mean_kernel_us += report.kernel_total_us;
    stats.arena_peak_bytes =
        std::max(stats.arena_peak_bytes, report.arena_peak_bytes);
    stats.arena_allocations += report.arena_allocations;
    stats.arena_growths += report.arena_growths;
  }
  const double n = static_cast<double>(stats.batches - stats.oom_batches -
                                       stats.degraded_batches);
  if (n > 0) {
    stats.mean_loss /= n;
    stats.mean_end_to_end_us /= n;
    stats.mean_kernel_us /= n;
  }
  m.counter("service.epochs").add(1);
  m.gauge("service.epoch_mean_loss").set(stats.mean_loss);
  m.gauge("service.epoch_mean_e2e_us").set(stats.mean_end_to_end_us);
  if (obs::live::EventLog::global().armed()) {
    obs::live::Event ev(obs::live::Severity::kInfo, "service.epoch");
    ev.field("batches", static_cast<std::uint64_t>(stats.batches))
        .field("degraded", static_cast<std::uint64_t>(stats.degraded_batches))
        .field("oom", static_cast<std::uint64_t>(stats.oom_batches))
        .field("retries", stats.retries)
        .field("mean_loss", stats.mean_loss);
    obs::live::EventLog::global().emit(ev);
  }
  return stats;
}

serving::ServeReport GnnService::serve(const serving::ServeConfig& config) {
  GT_OBS_SCOPE_N(serve_span, "service.serve", "service");
  serve_span.arg("requests", static_cast<std::int64_t>(config.requests));
  serving::ServePlanner::validate(config);  // fail fast, before warm-up work
  obs::MetricsRegistry& m = obs::metrics();

  // --- Warm-up: price at least one full-sized forward batch so the
  // admission estimate is the cost model's own e2e for this dataset /
  // model / device config (DESIGN.md §16). The estimate is frozen for the
  // whole run — that freeze is what lets the planner run ahead of
  // execution and keeps the admit/shed stream worker-invariant.
  const std::size_t warmup = std::max<std::size_t>(config.warmup_batches, 1);
  const std::size_t full_batch_vertices =
      config.batch.max_batch_requests *
      static_cast<std::size_t>(config.vertices_per_request);
  ensure_contexts(1);
  double warm_us_sum = 0.0;
  std::size_t warm_ok = 0;
  for (std::size_t w = 0; w < warmup; ++w) {
    frameworks::BatchSpec spec = next_spec(/*inference=*/true);
    spec.batch_size = full_batch_vertices;
    const frameworks::RunReport r =
        run_with_recovery(spec, *contexts_[0], 0, {});
    after_batch(spec, r, 0);
    if (r.ok()) {
      warm_us_sum += r.end_to_end_us;
      ++warm_ok;
    }
  }
  // A warm-up that degraded end to end (fault plan at batch 0) still needs
  // a usable estimate; 1ms is the deterministic fallback.
  const serving::Tick est =
      warm_ok > 0 ? std::max<serving::Tick>(
                        1, static_cast<serving::Tick>(
                               std::llround(warm_us_sum /
                                            static_cast<double>(warm_ok))))
                  : 1'000;
  m.gauge("serving.est_batch_ticks").set(static_cast<double>(est));

  serving::ServePlanner planner(config, est);
  log_info("service: serving ", config.requests, " requests (",
           serving::to_string(config.arrival.kind), " @ ",
           config.arrival.rate_rps, " rps, slo ", config.slo_ticks,
           " ticks, queue ", config.queue_depth, ", est ", est,
           " ticks/batch)");

  const std::size_t workers = std::max<std::size_t>(options_.workers, 1);
  ensure_contexts(workers);

  // The plan grows lazily: planned[i] / specs[i] exist before batch i is
  // prepared, and the planner keeps at most `workers` batches of lookahead
  // beyond the one executing — the same bounded ring as run_batches.
  std::vector<serving::PlannedBatch> planned;
  std::vector<frameworks::BatchSpec> specs;
  auto pull_plan = [&]() -> bool {
    std::optional<serving::PlannedBatch> b = planner.next();
    if (!b) return false;
    frameworks::BatchSpec spec = next_spec(/*inference=*/true);
    spec.batch_size = b->total_vertices;
    planned.push_back(std::move(*b));
    specs.push_back(spec);
    return true;
  };

  // Incremental counter publication: snapshots taken mid-serve see live
  // serving.* tallies that always satisfy the gt_top --check invariants.
  struct Published {
    std::uint64_t arrived = 0, admitted = 0, shed_slo = 0,
                  shed_queue_full = 0, shed_shutdown = 0;
  } pub;
  auto publish_planner_counters = [&]() noexcept {
    try {
      auto bump = [&m](const char* name, std::uint64_t now,
                       std::uint64_t& prev) {
        if (now > prev) {
          m.counter(name).add(now - prev);
          prev = now;
        }
      };
      bump("serving.requests.arrived", planner.arrived(), pub.arrived);
      bump("serving.requests.admitted", planner.admitted(), pub.admitted);
      bump("serving.requests.shed_slo", planner.shed_slo(), pub.shed_slo);
      bump("serving.requests.shed_queue_full", planner.shed_queue_full(),
           pub.shed_queue_full);
      bump("serving.requests.shed_shutdown", planner.shed_shutdown(),
           pub.shed_shutdown);
      m.gauge("serving.queue.depth")
          .set(static_cast<double>(planner.queue_size()));
      m.gauge("serving.queue.peak")
          .set(static_cast<double>(planner.queue_peak()));
    } catch (...) {
      // Metric registration allocates; never let that turn an orderly
      // unwind into std::terminate.
    }
  };

  // --- Measured-clock completion pricing. The planner predicted with the
  // frozen estimate; execution re-prices each batch with its real priced
  // e2e: finish = max(lane_free, form_tick) + e2e. A degraded batch
  // (retry budget exhausted / OOM) still occupies the lane for one
  // estimate so the requests behind it feel the outage.
  serving::Tick lane_free = 0;
  std::vector<serving::Tick> latencies;
  std::uint64_t completed = 0, degraded_requests = 0, goodput_requests = 0;
  std::uint64_t batches_executed = 0, boarded = 0;
  auto price_batch = [&](std::size_t i, const frameworks::RunReport& r) {
    const serving::PlannedBatch& b = planned[i];
    const serving::Tick start = std::max(lane_free, b.form_tick);
    const bool ok = r.ok();
    const serving::Tick dur =
        ok ? std::max<serving::Tick>(
                 1, static_cast<serving::Tick>(std::llround(r.end_to_end_us)))
           : est;
    lane_free = start + dur;
    ++batches_executed;
    boarded += b.request_ids.size();
    std::vector<serving::RequestRecord>& recs = planner.records();
    obs::Histogram& lat_hist = m.histogram("serving.request_latency_us");
    for (const std::uint64_t id : b.request_ids) {
      serving::RequestRecord& rec = recs[id];
      if (ok) {
        rec.outcome = serving::Outcome::kCompleted;
        rec.latency_ticks = lane_free - rec.arrival_tick;
        latencies.push_back(rec.latency_ticks);
        lat_hist.observe(static_cast<double>(rec.latency_ticks));
        ++completed;
        if (config.slo_ticks == 0 || rec.latency_ticks <= config.slo_ticks)
          ++goodput_requests;
      } else {
        rec.outcome = serving::Outcome::kDegraded;
        rec.latency_ticks = 0;
        ++degraded_requests;
      }
    }
    m.counter(ok ? "serving.requests.completed" : "serving.requests.degraded")
        .add(b.request_ids.size());
    m.counter("serving.batches").add(1);
  };

  std::vector<std::future<void>> inflight(workers > 1 ? workers : 0);
  std::vector<double> prepare_us(workers > 1 ? workers : 0, 0.0);
  auto drain_inflight = [&]() noexcept {
    for (std::future<void>& f : inflight)
      if (f.valid()) f.wait();
  };
  auto quarantine_contexts = [&]() noexcept {
    for (std::size_t w = 0; w < workers; ++w) contexts_[w]->begin_batch();
  };
  // Drain-on-unwind (same contract as run_batches, plus the serving queue):
  // every pool task finishes before this frame's vectors die, the worker
  // contexts reset, queued requests drain to kShedShutdown through the
  // lifecycle's stopping state, and telemetry flushes the post-mortem.
  auto unwind_cleanup = [&]() noexcept {
    drain_inflight();
    quarantine_contexts();
    planner.shutdown();
    publish_planner_counters();
    if (telemetry_) telemetry_->crash_flush("service.serve unwind");
  };
  struct UnwindGuard {
    decltype(unwind_cleanup)& cleanup;
    int base = std::uncaught_exceptions();
    ~UnwindGuard() {
      if (std::uncaught_exceptions() > base) cleanup();
    }
  } guard{unwind_cleanup};

  auto launch_prepare = [&](std::size_t i) {
    pipeline::BatchContext* ctx = contexts_[i % workers].get();
    double* slot_us = &prepare_us[i % workers];
    const frameworks::BatchSpec spec = specs[i];
    fault::FaultPlan* plan = fault_plan_.get();
    inflight[i % workers] = pool_->submit([this, ctx, spec, slot_us, plan] {
      GT_OBS_SCOPE_N(span, "service.prepare_batch", "service");
      span.arg("batch", static_cast<std::int64_t>(spec.batch_index));
      obs::live::CorrelationScope cscope(batch_cid(spec));
      GT_LIVE_STAGE(kPrepare);
      const auto t0 = std::chrono::steady_clock::now();
      fault::PlanScope scope(plan, spec.batch_index);
      ctx->begin_batch();
      backend_->prepare_batch(dataset_, model_, spec, *ctx);
      *slot_us = elapsed_us(t0);
    });
  };

  if (workers <= 1) {
    while (pull_plan()) {
      const std::size_t i = planned.size() - 1;
      GT_OBS_SCOPE_N(span, "service.serve_batch", "service");
      span.arg("batch", static_cast<std::int64_t>(specs[i].batch_index));
      const frameworks::RunReport r =
          run_with_recovery(specs[i], *contexts_[0], 0, {});
      price_batch(i, r);
      publish_planner_counters();
      after_batch(specs[i], r, planner.queue_size());
    }
  } else {
    if (!pool_ || pool_->size() < workers) pool_ = nullptr;
    if (!pool_) pool_ = std::make_unique<ThreadPool>(workers);
    m.gauge("service.workers").set(static_cast<double>(workers));
    std::size_t launched = 0;
    while (launched < workers && pull_plan()) launch_prepare(launched++);
    for (std::size_t i = 0; i < planned.size(); ++i) {
      pipeline::BatchContext& ctx = *contexts_[i % workers];
      frameworks::RunReport report;
      bool prepared = true;
      try {
        inflight[i % workers].get();  // rethrows preprocessing failures
      } catch (const fault::InjectedFault& f) {
        if (f.kind() == fault::Kind::kAbort) throw;  // guard drains behind us
        prepared = false;
        report = run_with_recovery(specs[i], ctx, 1, f.what());
      }
      if (prepared) {
        GT_OBS_SCOPE_N(span, "service.serve_batch", "service");
        span.arg("batch", static_cast<std::int64_t>(specs[i].batch_index));
        obs::live::CorrelationScope cscope(batch_cid(specs[i]));
        const double batch_prepare_us = prepare_us[i % workers];
        const auto t0 = std::chrono::steady_clock::now();
        try {
          GT_LIVE_STAGE(kExecute);
          fault::PlanScope scope(fault_plan_.get(), specs[i].batch_index);
          report = backend_->execute_prepared(dataset_, model_, params_,
                                              specs[i], ctx);
          report.host_execute_us = elapsed_us(t0);
          report.host_prepare_us = batch_prepare_us;
        } catch (const fault::InjectedFault& f) {
          if (f.kind() == fault::Kind::kAbort) throw;
          report = run_with_recovery(specs[i], ctx, 1, f.what());
        }
      }
      if (pull_plan()) launch_prepare(launched++);
      price_batch(i, report);
      publish_planner_counters();
      after_batch(specs[i], report, planner.queue_size());
    }
  }

  planner.finish();
  publish_planner_counters();

  serving::ServeReport rep;
  rep.arrived = planner.arrived();
  rep.admitted = planner.admitted();
  rep.shed_slo = planner.shed_slo();
  rep.shed_queue_full = planner.shed_queue_full();
  rep.completed = completed;
  rep.degraded = degraded_requests;
  rep.batches = batches_executed;
  rep.mean_batch_fill =
      batches_executed > 0
          ? static_cast<double>(boarded) /
                static_cast<double>(batches_executed *
                                    config.batch.max_batch_requests)
          : 0.0;
  rep.records = std::move(planner.records());
  const serving::Tick first_arrival =
      rep.records.empty() ? 0 : rep.records.front().arrival_tick;
  serving::Tick last_event = lane_free;
  if (!rep.records.empty())
    last_event = std::max(last_event, rep.records.back().arrival_tick);
  rep.span_ticks =
      last_event > first_arrival ? last_event - first_arrival : 0;
  std::sort(latencies.begin(), latencies.end());
  auto nearest_rank = [&](double q) -> double {
    if (latencies.empty()) return 0.0;
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(latencies.size())));
    rank = std::clamp<std::size_t>(rank, 1, latencies.size());
    return static_cast<double>(latencies[rank - 1]);
  };
  rep.p50_latency_ticks = nearest_rank(0.50);
  rep.p95_latency_ticks = nearest_rank(0.95);
  rep.p99_latency_ticks = nearest_rank(0.99);
  rep.goodput_requests = goodput_requests;
  rep.goodput_rps = rep.span_ticks > 0
                        ? static_cast<double>(goodput_requests) * 1e6 /
                              static_cast<double>(rep.span_ticks)
                        : 0.0;
  m.gauge("serving.goodput_rps").set(rep.goodput_rps);
  m.gauge("serving.shed_rate").set(rep.shed_rate());
  m.gauge("serving.p99_latency_us").set(rep.p99_latency_ticks);
  if (obs::live::EventLog::global().armed()) {
    obs::live::Event ev(obs::live::Severity::kInfo, "serving.report");
    ev.field("arrived", rep.arrived)
        .field("completed", rep.completed)
        .field("shed", rep.shed())
        .field("degraded", rep.degraded)
        .field("batches", rep.batches)
        .field("p99_latency_ticks", rep.p99_latency_ticks)
        .field("goodput_rps", rep.goodput_rps);
    obs::live::EventLog::global().emit(ev);
  }
  if (telemetry_) telemetry_->on_batch();
  log_info("service: served ", rep.arrived, " requests: ", rep.completed,
           " completed, ", rep.shed(), " shed, ", rep.degraded,
           " degraded in ", rep.batches, " batches (p99 ",
           rep.p99_latency_ticks, " ticks, goodput ", rep.goodput_rps,
           " rps)");
  return rep;
}

double GnnService::evaluate(std::size_t batches) {
  GT_OBS_SCOPE_N(span, "service.evaluate", "service");
  span.arg("batches", static_cast<std::int64_t>(batches));
  const sampling::ReindexFormats formats{.coo = false, .csr = true,
                                         .csc = false};
  if (!eval_context_)
    eval_context_ = std::make_unique<pipeline::BatchContext>();
  pipeline::BatchContext& ctx = *eval_context_;
  pipeline::PreprocExecutor& exec =
      ctx.executor_for(dataset_.csr, dataset_.embeddings, dataset_.spec.fanout,
                       model_.num_layers, options_.seed, formats);
  std::size_t correct = 0, total = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    ctx.begin_batch();
    ctx.batch_vids() =
        exec.sampler().pick_batch(options_.batch_size, eval_batch_index(b));
    exec.run_serial_into(ctx.batch_vids(), ctx.table(), ctx.preproc(),
                         ctx.scratch());
    const pipeline::PreprocResult& pre = ctx.preproc();
    ConstMatrixView x{pre.embeddings};
    for (std::uint32_t l = 0; l < model_.num_layers; ++l) {
      x = kernels::ref::forward_layer(
          ctx.arena(), pre.layers[l].csr, x, params_.w(l), params_.b(l),
          pre.layers[l].n_dst, model_.f, model_.g, model_.relu_at(l));
    }
    for (std::size_t i = 0; i < x.rows(); ++i) {
      std::uint32_t best = 0;
      for (std::uint32_t c = 1; c < x.cols(); ++c)
        if (x.at(i, c) > x.at(i, best)) best = c;
      const std::uint32_t label = synthetic_label(
          pre.batch.vid_order[i], model_.output_dim, options_.seed);
      correct += best == label;
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

}  // namespace gt
