#include "core/service.hpp"

#include "kernels/reference.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/executor.hpp"
#include "util/log.hpp"

namespace gt {

GnnService::GnnService(Dataset dataset, models::GnnModelConfig model,
                       ServiceOptions options)
    : dataset_(std::move(dataset)),
      model_(std::move(model)),
      options_(options),
      params_(model_, dataset_.spec.feature_dim, options.seed),
      backend_(frameworks::make_framework(options.framework)) {
  log_info("service: ", options_.framework, " on ", dataset_.spec.name,
           " (batch ", options_.batch_size, ", ", model_.num_layers,
           " layers)");
}

frameworks::RunReport GnnService::train_batch() {
  frameworks::BatchSpec spec;
  spec.batch_size = options_.batch_size;
  spec.batch_index = next_batch_++;
  spec.seed = options_.seed;
  spec.order = options_.order;
  spec.learning_rate = options_.learning_rate;
  return backend_->run_batch(dataset_, model_, params_, spec);
}

frameworks::RunReport GnnService::infer_batch() {
  frameworks::BatchSpec spec;
  spec.batch_size = options_.batch_size;
  spec.batch_index = next_batch_++;
  spec.seed = options_.seed;
  spec.order = options_.order;
  spec.inference = true;
  return backend_->run_batch(dataset_, model_, params_, spec);
}

EpochStats GnnService::train_epoch(std::size_t batches) {
  GT_OBS_SCOPE_N(epoch_span, "service.train_epoch", "service");
  epoch_span.arg("batches", static_cast<std::int64_t>(batches));
  obs::MetricsRegistry& m = obs::metrics();
  EpochStats stats;
  for (std::size_t i = 0; i < batches; ++i) {
    GT_OBS_SCOPE("service.train_batch", "service");
    frameworks::RunReport report = train_batch();
    ++stats.batches;
    if (report.oom) {
      ++stats.oom_batches;
      m.counter("service.oom_batches").add(1);
      log_warn("service: batch ", i, " aborted with OOM: ", report.oom_what);
      continue;
    }
    log_debug("service: batch ", i, " loss ", report.loss, " e2e ",
              report.end_to_end_us, "us");
    if (i == 0) stats.first_loss = report.loss;
    stats.last_loss = report.loss;
    stats.mean_loss += report.loss;
    stats.mean_end_to_end_us += report.end_to_end_us;
    stats.mean_kernel_us += report.kernel_total_us;
    m.histogram("service.batch_loss", {0.5, 1, 2, 3, 4, 5, 7, 10, 20})
        .observe(report.loss);
    m.histogram("service.batch_e2e_us").observe(report.end_to_end_us);
  }
  const double n =
      static_cast<double>(stats.batches - stats.oom_batches);
  if (n > 0) {
    stats.mean_loss /= n;
    stats.mean_end_to_end_us /= n;
    stats.mean_kernel_us /= n;
  }
  m.counter("service.epochs").add(1);
  m.gauge("service.epoch_mean_loss").set(stats.mean_loss);
  m.gauge("service.epoch_mean_e2e_us").set(stats.mean_end_to_end_us);
  return stats;
}

double GnnService::evaluate(std::size_t batches) {
  GT_OBS_SCOPE_N(span, "service.evaluate", "service");
  span.arg("batches", static_cast<std::int64_t>(batches));
  // Held-out stream: offset the batch index far away from training.
  const std::uint64_t eval_base = 1u << 20;
  sampling::ReindexFormats formats{.coo = false, .csr = true, .csc = false};
  pipeline::PreprocExecutor exec(dataset_.csr, dataset_.embeddings,
                                 dataset_.spec.fanout, model_.num_layers,
                                 options_.seed, formats);
  std::size_t correct = 0, total = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    const auto batch_vids =
        exec.sampler().pick_batch(options_.batch_size, eval_base + b);
    pipeline::PreprocResult pre = exec.run_serial(batch_vids);
    Matrix x = pre.embeddings;
    for (std::uint32_t l = 0; l < model_.num_layers; ++l) {
      x = kernels::ref::forward_layer(
          pre.layers[l].csr, x, params_.w(l), params_.b(l),
          pre.layers[l].n_dst, model_.f, model_.g, model_.relu_at(l));
    }
    for (std::size_t i = 0; i < x.rows(); ++i) {
      std::uint32_t best = 0;
      for (std::uint32_t c = 1; c < x.cols(); ++c)
        if (x.at(i, c) > x.at(i, best)) best = c;
      const std::uint32_t label = synthetic_label(
          pre.batch.vid_order[i], model_.output_dim, options_.seed);
      correct += best == label;
      ++total;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

}  // namespace gt
