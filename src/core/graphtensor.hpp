// GraphTensor public umbrella header.
//
// Layering (see DESIGN.md §3):
//   graphtensor.hpp
//     core/     GnnService, NapaProgram        — end-user API
//     frameworks/ Base/Dynamic/Prepro-GT + baselines
//     dfg/      Cost-DKP rewrite + cost model
//     pipeline/ service-wide tensor scheduler
//     kernels/  NAPA / Graph-approach / DL-approach GPU kernels
//     sampling/ neighbor sampling, reindexing, lookup, transfer
//     gpusim/   the simulated device
//     models/ datasets/ graph/ tensor/ util/
#pragma once

#include "core/napa_program.hpp"            // IWYU pragma: export
#include "core/service.hpp"                 // IWYU pragma: export
#include "datasets/catalog.hpp"             // IWYU pragma: export
#include "frameworks/framework.hpp"         // IWYU pragma: export
#include "models/config.hpp"                // IWYU pragma: export
#include "models/params.hpp"                // IWYU pragma: export
