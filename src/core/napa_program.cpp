#include "core/napa_program.hpp"

#include <stdexcept>

namespace gt {

NapaProgram::NapaProgram(std::string name) { config_.name = std::move(name); }

NapaProgram& NapaProgram::aggregate(kernels::AggMode f) {
  config_.f = f;
  return *this;
}

NapaProgram& NapaProgram::edge_weight(kernels::EdgeWeightMode g) {
  config_.g = g;
  return *this;
}

NapaProgram& NapaProgram::layers(std::uint32_t n) {
  config_.num_layers = n;
  return *this;
}

NapaProgram& NapaProgram::hidden(std::uint32_t dim) {
  config_.hidden_dim = dim;
  return *this;
}

NapaProgram& NapaProgram::classes(std::uint32_t dim) {
  config_.output_dim = dim;
  return *this;
}

models::GnnModelConfig NapaProgram::build() const {
  if (config_.num_layers == 0)
    throw std::invalid_argument("NapaProgram: needs at least one layer");
  if (config_.hidden_dim == 0 || config_.output_dim == 0)
    throw std::invalid_argument("NapaProgram: zero-width layer");
  if (config_.name.empty())
    throw std::invalid_argument("NapaProgram: empty model name");
  return config_;
}

}  // namespace gt
