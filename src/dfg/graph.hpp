// Dataflow-graph representation of a GNN model and the kernel
// orchestrator's Cost-DKP rewrite (paper Fig 11c).
//
// A model's DFG is a chain of per-layer op nodes
//   [NeighborApply?] -> Pull -> MatMul -> BiasAdd -> [ReLU]
// built at model-construction time. Since reordering delegated kernels on
// the GPU side is impossible, the orchestrator rewrites the graph on the
// host *before* execution: each Pull + MatMul pair is replaced by a single
// Cost-DKP node whose inputs/outputs take over the originals' links; at
// runtime the node consults the cost model and runs the two kernels in
// whichever order is cheaper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/common.hpp"

namespace gt::dfg {

enum class OpKind : std::uint8_t {
  kInput,
  kNeighborApply,
  kPull,
  kMatMul,
  kBiasAdd,
  kRelu,
  kCostDkp,  // fused Pull+MatMul with runtime placement decision
  kOutput,
};

const char* to_string(OpKind kind);

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = ~0u;

struct DfgNode {
  OpKind kind = OpKind::kInput;
  std::uint32_t layer = 0;            // which GNN layer this op belongs to
  std::vector<NodeId> inputs;
  bool erased = false;                // true after a rewrite removed it
};

class DfgGraph {
 public:
  NodeId add_node(OpKind kind, std::uint32_t layer,
                  std::vector<NodeId> inputs = {});

  const DfgNode& node(NodeId id) const { return nodes_.at(id); }
  std::size_t size() const noexcept { return nodes_.size(); }
  std::size_t live_size() const noexcept;

  /// Topological order of live nodes (insertion order is already
  /// topological for chains; this validates and filters).
  std::vector<NodeId> topo_order() const;

  /// The orchestrator rewrite: for every layer whose Pull feeds a MatMul,
  /// erase both and splice in a Cost-DKP node carrying their links.
  /// Returns the number of pairs replaced.
  std::size_t rewrite_dkp();

  /// True iff `layer` executes through a Cost-DKP node.
  bool has_dkp(std::uint32_t layer) const;

  /// Human-readable chain, e.g. "Input -> Pull(L0) -> MatMul(L0) -> ...".
  std::string to_string() const;

 private:
  std::vector<DfgNode> nodes_;
};

/// Build the standard GNN model DFG: `num_layers` layers, each
/// [NeighborApply?] -> Pull -> MatMul -> BiasAdd -> [ReLU], ReLU on all but
/// the last layer, NeighborApply present iff the model weights edges.
DfgGraph build_gnn_dfg(std::uint32_t num_layers, bool edge_weighted);

}  // namespace gt::dfg
