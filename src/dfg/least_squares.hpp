// Ordinary least squares via normal equations — the paper fits the DKP
// cost-model coefficients with least-squares estimation against measured
// kernel execution times (§V-A, ref [26]).
#pragma once

#include <cstddef>
#include <vector>

namespace gt::dfg {

/// Solve min ||A c - y||_2 for c, where A is row-major n x k (n samples of
/// k features). Returns the k coefficients. Uses normal equations with a
/// small ridge term for stability; throws std::invalid_argument on
/// mismatched sizes or n == 0.
std::vector<double> least_squares(const std::vector<std::vector<double>>& a,
                                  const std::vector<double>& y,
                                  double ridge = 1e-9);

}  // namespace gt::dfg
