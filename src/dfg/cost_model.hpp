// The DKP cost model (paper Table I).
//
// For each GNN layer the orchestrator chooses between aggregation-first and
// combination-first kernel placement, forward and backward. Either
// placement's latency is modelled as
//
//     T = c0 + c_mem * (embedding elements moved through DRAM)
//            + c_flop * (multiply-accumulate pairs)
//
// where the element/MAC counts follow from the dimensionality algebra of
// Fig 11a: aggregation reduces tensor *height* (n_Src -> n_Dst), the
// combination reduces *width* (n_Feature -> n_Hidden), so whichever runs
// first shrinks everything downstream. The backward direction swaps the
// traversal (dst -> src, W -> W^T), and the model's first layer skips the
// input-gradient traversal entirely under aggregation-first (§V-A) — its
// feature counts reflect exactly the kernels that execute.
//
// The three coefficients are fitted by least squares against kernel
// latencies measured during the first training batches (the paper fits at
// the start of the first epoch and reuses the coefficients for the rest of
// training, reporting 12.5% prediction error). Before any fit, the
// device's nominal bandwidth/throughput constants serve as defaults.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace gt::dfg {

enum class KernelOrder { kAggregationFirst, kCombinationFirst };

const char* to_string(KernelOrder order);

struct LayerDims {
  Vid n_src = 0;       // input table rows
  Vid n_dst = 0;       // destination rows
  Eid n_edges = 0;
  std::size_t n_feat = 0;    // input feature dim
  std::size_t n_hidden = 0;  // output dim of the layer's MLP
};

/// Which part of the training step a latency sample covers.
struct PlacementCase {
  KernelOrder order = KernelOrder::kAggregationFirst;
  bool backward = false;
  /// Backward of the model's first layer: aggregation-first skips the
  /// input-gradient traversal; combination-first skips only the dense
  /// dX kernel (the graph traversal still feeds dW).
  bool first_layer = false;
  /// Edge-weighted models (NGCF) additionally run NeighborApply in the
  /// original feature space under *either* placement (weights do not
  /// commute into the hidden space), plus the g' backward passes.
  bool edge_weighted = false;
};

/// One post-fit predicted-vs-measured probe (record() computes these once
/// the model is fitted — every later sample doubles as a residual).
struct ResidualSample {
  double predicted_us = 0.0;
  double measured_us = 0.0;
  /// 100 * |predicted - measured| / measured.
  double rel_error_pct() const noexcept;
};

/// Distribution summary of the residual stream — the "model health" view
/// the ledger joins against and the live costmodel.* gauges publish.
struct ResidualSummary {
  std::size_t samples = 0;
  double p50_pct = 0.0;
  double p95_pct = 0.0;
  double mean_pct = 0.0;
};

class DkpCostModel {
 public:
  static constexpr std::size_t kFeatures = 3;

  /// {1, memory elements, MAC pairs} for the kernels this case runs.
  /// Fitted by *relative* least squares (each sample scaled by its own
  /// latency), so microsecond-scale hidden-layer samples and
  /// millisecond-scale feature-layer samples contribute equally — the fit
  /// minimizes exactly the relative error the paper reports.
  static std::array<double, kFeatures> features(const LayerDims& dims,
                                                const PlacementCase& c);

  /// Record a measured latency (microseconds) for fitting.
  void record(const LayerDims& dims, const PlacementCase& c,
              double latency_us);

  std::size_t sample_count() const noexcept { return xs_.size(); }

  /// Relative least-squares fit of (c0, c_mem, c_mac) over everything
  /// recorded.
  void fit();

  bool fitted() const noexcept { return fitted_; }
  const std::array<double, kFeatures>& coefficients() const noexcept {
    return coeff_;
  }

  /// Predicted latency (us); analytic device-constant defaults before fit().
  double predict(const LayerDims& dims, const PlacementCase& c) const;

  /// Placement decision for one direction.
  KernelOrder decide(const LayerDims& dims, bool backward = false,
                     bool first_layer = false,
                     bool edge_weighted = false) const;

  /// One decision per layer covering FWP + BWP (the executor's backward
  /// reuses the forward's cached tensors, so the pair shares a placement).
  KernelOrder decide_training(const LayerDims& dims, bool first_layer,
                              bool edge_weighted = false) const;

  /// Mean absolute relative prediction error over the recorded samples.
  double mean_relative_error() const;

  /// Prediction-query API: every sample recorded *after* fit() is kept as
  /// a (predicted, measured) pair, in record order. Empty before the fit.
  const std::vector<ResidualSample>& residuals() const noexcept {
    return residuals_;
  }

  /// Nearest-rank p50/p95 + mean of the residual relative errors; all
  /// zeros while residuals() is empty (never NaN).
  ResidualSummary residual_summary() const;

  // -- Multi-device terms (PR 8) --------------------------------------------
  // Sharded runs feed every priced collective here, and the model fits a
  // two-coefficient line  t_coll = k_step * steps + k_byte * bytes  over
  // them. These terms are REPORTING/PREDICTION ONLY: placement decisions
  // (decide / decide_training) never consult them — a decision that
  // depended on the device count would change the kernel order and break
  // the N-device == single-device digest contract (DESIGN.md §14).

  /// Record one priced collective (ring steps, total wire bytes, cost).
  void record_collective(std::size_t steps, std::size_t bytes_on_wire,
                         double us);
  std::size_t collective_sample_count() const noexcept {
    return coll_xs_.size();
  }
  /// Least-squares fit of (k_step, k_byte) over the recorded collectives.
  void fit_collective();
  bool collective_fitted() const noexcept { return coll_fitted_; }
  const std::array<double, 2>& collective_coefficients() const noexcept {
    return coll_coeff_;
  }
  /// Predicted collective cost (us); interconnect-constant defaults
  /// (gpusim::LinkParams) before fit_collective().
  double predict_collective(std::size_t steps,
                            std::size_t bytes_on_wire) const;
  /// Reporting-only group estimate for one placement case: the case's
  /// predicted latency split across `devices` plus the collective term.
  double predict_group(const LayerDims& dims, const PlacementCase& c,
                       std::size_t devices, std::size_t steps,
                       std::size_t bytes_on_wire) const;

 private:
  std::vector<std::array<double, kFeatures>> xs_;
  std::vector<double> ys_;
  std::vector<ResidualSample> residuals_;  // post-fit probes only
  std::array<double, kFeatures> coeff_{};
  bool fitted_ = false;
  std::vector<std::array<double, 2>> coll_xs_;
  std::vector<double> coll_ys_;
  std::array<double, 2> coll_coeff_{};
  bool coll_fitted_ = false;
};

}  // namespace gt::dfg
