#include "dfg/graph.hpp"

#include <sstream>
#include <stdexcept>

namespace gt::dfg {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:         return "Input";
    case OpKind::kNeighborApply: return "NeighborApply";
    case OpKind::kPull:          return "Pull";
    case OpKind::kMatMul:        return "MatMul";
    case OpKind::kBiasAdd:       return "BiasAdd";
    case OpKind::kRelu:          return "ReLU";
    case OpKind::kCostDkp:       return "Cost-DKP";
    case OpKind::kOutput:        return "Output";
  }
  return "?";
}

NodeId DfgGraph::add_node(OpKind kind, std::uint32_t layer,
                          std::vector<NodeId> inputs) {
  for (NodeId in : inputs)
    if (in >= nodes_.size())
      throw std::out_of_range("DfgGraph::add_node: input from the future");
  nodes_.push_back(DfgNode{kind, layer, std::move(inputs), false});
  return static_cast<NodeId>(nodes_.size() - 1);
}

std::size_t DfgGraph::live_size() const noexcept {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (!node.erased) ++n;
  return n;
}

std::vector<NodeId> DfgGraph::topo_order() const {
  std::vector<NodeId> order;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].erased) continue;
    for (NodeId in : nodes_[id].inputs)
      if (!nodes_[in].erased && in >= id)
        throw std::logic_error("DfgGraph: not topologically ordered");
    order.push_back(id);
  }
  return order;
}

std::size_t DfgGraph::rewrite_dkp() {
  std::size_t replaced = 0;
  for (NodeId mm = 0; mm < nodes_.size(); ++mm) {
    DfgNode& matmul = nodes_[mm];
    if (matmul.erased || matmul.kind != OpKind::kMatMul) continue;
    // Find a live Pull feeding this MatMul.
    NodeId pull_id = kNoNode;
    for (NodeId in : matmul.inputs) {
      if (!nodes_[in].erased && nodes_[in].kind == OpKind::kPull) {
        pull_id = in;
        break;
      }
    }
    if (pull_id == kNoNode) continue;

    // Splice: Cost-DKP inherits Pull's inputs; everything that consumed
    // the MatMul now consumes the Cost-DKP node.
    const NodeId dkp = add_node(OpKind::kCostDkp, matmul.layer,
                                nodes_[pull_id].inputs);
    for (DfgNode& consumer : nodes_) {
      if (consumer.erased) continue;
      for (NodeId& in : consumer.inputs)
        if (in == mm) in = dkp;
    }
    nodes_[mm].erased = true;
    nodes_[pull_id].erased = true;
    ++replaced;
  }
  return replaced;
}

bool DfgGraph::has_dkp(std::uint32_t layer) const {
  for (const auto& node : nodes_)
    if (!node.erased && node.kind == OpKind::kCostDkp && node.layer == layer)
      return true;
  return false;
}

std::string DfgGraph::to_string() const {
  std::ostringstream os;
  bool first = true;
  // Nodes were appended in chain order; rewrites appended Cost-DKP nodes at
  // the end, so print in (layer, position) order.
  for (std::uint32_t layer = 0;; ++layer) {
    bool any = false;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      const DfgNode& node = nodes_[id];
      if (node.erased || node.layer != layer) continue;
      any = true;
      if (!first) os << " -> ";
      first = false;
      os << gt::dfg::to_string(node.kind);
      if (node.kind != OpKind::kInput && node.kind != OpKind::kOutput)
        os << "(L" << node.layer << ")";
    }
    if (!any && layer > 0) break;
  }
  return os.str();
}

DfgGraph build_gnn_dfg(std::uint32_t num_layers, bool edge_weighted) {
  DfgGraph g;
  NodeId prev = g.add_node(OpKind::kInput, 0);
  for (std::uint32_t l = 0; l < num_layers; ++l) {
    std::vector<NodeId> pull_inputs{prev};
    if (edge_weighted) {
      NodeId na = g.add_node(OpKind::kNeighborApply, l, {prev});
      pull_inputs.push_back(na);
    }
    NodeId pull = g.add_node(OpKind::kPull, l, std::move(pull_inputs));
    NodeId mm = g.add_node(OpKind::kMatMul, l, {pull});
    NodeId bias = g.add_node(OpKind::kBiasAdd, l, {mm});
    prev = bias;
    if (l + 1 < num_layers) prev = g.add_node(OpKind::kRelu, l, {bias});
  }
  g.add_node(OpKind::kOutput, num_layers - 1, {prev});
  return g;
}

}  // namespace gt::dfg
