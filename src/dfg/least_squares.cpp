#include "dfg/least_squares.hpp"

#include <cmath>
#include <stdexcept>

namespace gt::dfg {

std::vector<double> least_squares(const std::vector<std::vector<double>>& a,
                                  const std::vector<double>& y,
                                  double ridge) {
  const std::size_t n = a.size();
  if (n == 0 || y.size() != n)
    throw std::invalid_argument("least_squares: empty or mismatched input");
  const std::size_t k = a[0].size();
  for (const auto& row : a)
    if (row.size() != k)
      throw std::invalid_argument("least_squares: ragged feature matrix");

  // Normal equations: (A^T A + ridge I) c = A^T y.
  std::vector<std::vector<double>> m(k, std::vector<double>(k + 1, 0.0));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) m[i][j] += a[s][i] * a[s][j];
      m[i][k] += a[s][i] * y[s];
    }
  }
  for (std::size_t i = 0; i < k; ++i) m[i][i] += ridge;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r)
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    std::swap(m[col], m[pivot]);
    const double diag = m[col][col];
    if (std::abs(diag) < 1e-30) continue;  // singular direction: coeff -> 0
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double factor = m[r][col] / diag;
      for (std::size_t c = col; c <= k; ++c) m[r][c] -= factor * m[col][c];
    }
  }
  std::vector<double> coeff(k, 0.0);
  for (std::size_t i = 0; i < k; ++i)
    coeff[i] = std::abs(m[i][i]) < 1e-30 ? 0.0 : m[i][k] / m[i][i];
  return coeff;
}

}  // namespace gt::dfg
