#include "dfg/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "dfg/least_squares.hpp"
#include "gpusim/interconnect.hpp"
#include "obs/metrics.hpp"

namespace gt::dfg {

const char* to_string(KernelOrder order) {
  return order == KernelOrder::kAggregationFirst ? "aggregation-first"
                                                 : "combination-first";
}

std::array<double, DkpCostModel::kFeatures> DkpCostModel::features(
    const LayerDims& d, const PlacementCase& c) {
  const auto with_case = [](double mem,
                            double macs) -> std::array<double, kFeatures> {
    return {1.0, mem, macs};
  };
  const double src = static_cast<double>(d.n_src);
  const double dst = static_cast<double>(d.n_dst);
  const double e = static_cast<double>(d.n_edges);
  const double f = static_cast<double>(d.n_feat);
  const double h = static_cast<double>(d.n_hidden);

  // NeighborApply (edge weighting) always runs in the original F-wide
  // space and its gradient passes re-read src/dst rows per edge.
  const double weighting_mem =
      c.edge_weighted ? (c.backward ? 3.0 * e * f : 2.0 * e * f) : 0.0;
  double mem = 0.0, macs = 0.0;
  if (!c.backward) {
    if (c.order == KernelOrder::kAggregationFirst) {
      // Pull reads F-wide source rows per edge and writes dst rows; the
      // fused MatMul+bias reads those and writes H-wide outputs.
      mem = e * f + dst * (2.0 * f + h);
      macs = dst * f * h;
    } else {
      // MatMul over all src rows, Pull over H-wide rows, bias on dst.
      mem = src * (f + h) + e * h + dst * 2.0 * h;
      macs = src * f * h;
    }
    return with_case(mem + weighting_mem, macs);
  }
  if (c.order == KernelOrder::kAggregationFirst) {
    if (c.first_layer) {
      // Only dW = A^T dZ and db run: dst-sized tensors, no traversal.
      mem = dst * (f + h) + f * h;
      macs = dst * f * h;
      return with_case(mem, macs);
    }
    // relu/matmul backward on dst rows, then the F-wide edge scatter.
    mem = dst * (f + 2.0 * h) + e * f + src * f + f * h;
    macs = 2.0 * dst * f * h;
    return with_case(mem + weighting_mem, macs);
  }
  // Combination-first backward: bias/relu grad on dst, pull-backward over
  // edges at H width producing dT on src rows, then the matmul backward.
  // dW always needs the traversal; dX (src*f*h MACs more) only when the
  // layer is not first.
  mem = dst * 2.0 * h + e * h + src * (h + f) + f * h;
  macs = (c.first_layer ? 1.0 : 2.0) * src * f * h;
  return with_case(mem + weighting_mem, macs);
}

void DkpCostModel::record(const LayerDims& dims, const PlacementCase& c,
                          double latency_us) {
  // Once fitted, every new sample doubles as a predicted-vs-actual probe
  // (the paper's 12.5%-error claim, continuously monitored in production).
  if (fitted_ && latency_us > 0.0) {
    const double pred = predict(dims, c);
    residuals_.push_back({pred, latency_us});
    obs::metrics()
        .histogram("dkp.predict_rel_error_pct",
                   {1, 2, 5, 10, 20, 30, 50, 75, 100, 200})
        .observe(100.0 * std::abs(pred - latency_us) / latency_us);
  }
  obs::metrics().counter("dkp.samples_recorded").add(1);
  xs_.push_back(features(dims, c));
  ys_.push_back(latency_us);
}

void DkpCostModel::fit() {
  if (xs_.empty()) return;
  // Relative least squares: scale each sample's features and target by
  // 1/latency, so minimizing ||A c - y|| minimizes sum((pred/y - 1)^2).
  std::vector<std::vector<double>> a;
  std::vector<double> y;
  a.reserve(xs_.size());
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (ys_[i] <= 0.0) continue;
    std::vector<double> row(xs_[i].begin(), xs_[i].end());
    for (double& v : row) v /= ys_[i];
    a.push_back(std::move(row));
    y.push_back(1.0);
  }
  if (a.empty()) return;
  const std::vector<double> c = least_squares(a, y);
  for (std::size_t k = 0; k < kFeatures; ++k) coeff_[k] = c[k];
  // A fit that learned a non-positive unit cost is extrapolating from too
  // few placements; fall back to the analytic defaults for that term.
  if (coeff_[1] <= 0.0) coeff_[1] = 4.0 / 9.36e3;
  if (coeff_[2] <= 0.0) coeff_[2] = 2.0 / 3.56e6;
  fitted_ = true;
  obs::metrics().counter("dkp.fits").add(1);
  obs::metrics().gauge("dkp.fit_mean_rel_error").set(mean_relative_error());
}

double DkpCostModel::predict(const LayerDims& dims,
                             const PlacementCase& c) const {
  const auto x = features(dims, c);
  if (fitted_) {
    double t = 0.0;
    for (std::size_t k = 0; k < kFeatures; ++k) t += coeff_[k] * x[k];
    return std::max(t, 0.0);
  }
  // Analytic defaults mirroring gpusim::CostParams: 4 bytes per element at
  // the scaled DRAM bandwidth, 2 FLOPs per MAC at the scaled *dense*
  // throughput (the MACs counted here are all MLP work).
  constexpr double kMemUs = 4.0 / 9.36e3;
  constexpr double kMacUs = 2.0 / 3.56e6;
  return x[1] * kMemUs + x[2] * kMacUs;
}

KernelOrder DkpCostModel::decide(const LayerDims& dims, bool backward,
                                 bool first_layer, bool edge_weighted) const {
  const double t_agg = predict(
      dims, PlacementCase{KernelOrder::kAggregationFirst, backward,
                          first_layer, edge_weighted});
  const double t_comb = predict(
      dims, PlacementCase{KernelOrder::kCombinationFirst, backward,
                          first_layer, edge_weighted});
  return t_agg <= t_comb ? KernelOrder::kAggregationFirst
                         : KernelOrder::kCombinationFirst;
}

KernelOrder DkpCostModel::decide_training(const LayerDims& dims,
                                          bool first_layer,
                                          bool edge_weighted) const {
  const auto total = [&](KernelOrder order) {
    return predict(dims, PlacementCase{order, false, first_layer,
                                       edge_weighted}) +
           predict(dims,
                   PlacementCase{order, true, first_layer, edge_weighted});
  };
  // The rearrangement is conditional (paper SIV-A): deviate from the
  // default placement only when the predicted win clears the model's own
  // error margin, so borderline mispredictions cannot regress training.
  constexpr double kMargin = 0.9;
  return total(KernelOrder::kCombinationFirst) <
                 kMargin * total(KernelOrder::kAggregationFirst)
             ? KernelOrder::kCombinationFirst
             : KernelOrder::kAggregationFirst;
}

double ResidualSample::rel_error_pct() const noexcept {
  if (measured_us <= 0.0) return 0.0;
  return 100.0 * std::abs(predicted_us - measured_us) / measured_us;
}

ResidualSummary DkpCostModel::residual_summary() const {
  ResidualSummary s;
  if (residuals_.empty()) return s;
  std::vector<double> errs;
  errs.reserve(residuals_.size());
  double total = 0.0;
  for (const ResidualSample& r : residuals_) {
    errs.push_back(r.rel_error_pct());
    total += errs.back();
  }
  std::sort(errs.begin(), errs.end());
  // Nearest-rank quantiles: exact order statistics, defined for any n >= 1.
  auto rank = [&](double q) {
    const std::size_t n = errs.size();
    std::size_t k = static_cast<std::size_t>(std::ceil(q * n));
    if (k > 0) --k;
    return errs[std::min(k, n - 1)];
  };
  s.samples = errs.size();
  s.p50_pct = rank(0.50);
  s.p95_pct = rank(0.95);
  s.mean_pct = total / static_cast<double>(errs.size());
  return s;
}

void DkpCostModel::record_collective(std::size_t steps,
                                     std::size_t bytes_on_wire, double us) {
  coll_xs_.push_back({static_cast<double>(steps),
                      static_cast<double>(bytes_on_wire)});
  coll_ys_.push_back(us);
}

void DkpCostModel::fit_collective() {
  if (coll_xs_.empty()) return;
  // Relative least squares, matching fit(): every collective — latency-
  // bound 2-device syncs and bandwidth-bound 8-device halo gathers alike —
  // contributes equally to the fit.
  std::vector<std::vector<double>> a;
  std::vector<double> y;
  a.reserve(coll_xs_.size());
  for (std::size_t i = 0; i < coll_xs_.size(); ++i) {
    if (coll_ys_[i] <= 0.0) continue;
    a.push_back({coll_xs_[i][0] / coll_ys_[i], coll_xs_[i][1] / coll_ys_[i]});
    y.push_back(1.0);
  }
  if (a.empty()) return;
  const std::vector<double> c = least_squares(a, y);
  coll_coeff_ = {c[0], c[1]};
  // Same guard as fit(): a non-positive unit cost means the samples span
  // too little of the (steps, bytes) plane; keep the analytic default.
  const gpusim::LinkParams link;
  if (coll_coeff_[0] <= 0.0) coll_coeff_[0] = link.latency_us;
  if (coll_coeff_[1] <= 0.0) coll_coeff_[1] = 1.0 / link.bw_bytes_per_us;
  coll_fitted_ = true;
  obs::metrics().counter("dkp.collective_fits").add(1);
}

double DkpCostModel::predict_collective(std::size_t steps,
                                        std::size_t bytes_on_wire) const {
  if (coll_fitted_)
    return coll_coeff_[0] * static_cast<double>(steps) +
           coll_coeff_[1] * static_cast<double>(bytes_on_wire);
  const gpusim::LinkParams link;
  return link.latency_us * static_cast<double>(steps) +
         static_cast<double>(bytes_on_wire) / link.bw_bytes_per_us;
}

double DkpCostModel::predict_group(const LayerDims& dims,
                                   const PlacementCase& c,
                                   std::size_t devices, std::size_t steps,
                                   std::size_t bytes_on_wire) const {
  const double per_device =
      predict(dims, c) / static_cast<double>(devices == 0 ? 1 : devices);
  return per_device + predict_collective(steps, bytes_on_wire);
}

double DkpCostModel::mean_relative_error() const {
  if (!fitted_ || xs_.empty()) return 0.0;
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    double pred = 0.0;
    for (std::size_t k = 0; k < kFeatures; ++k)
      pred += coeff_[k] * xs_[i][k];
    if (ys_[i] <= 0.0) continue;
    total += std::abs(pred - ys_[i]) / ys_[i];
    ++n;
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

}  // namespace gt::dfg
