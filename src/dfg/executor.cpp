#include "dfg/executor.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace gt::dfg {

using kernels::EdgeWeightMode;
namespace napa = kernels::napa;

LayerForward LayerExecutor::forward(const LayerDeviceGraph& graph,
                                    gpusim::BufferId x,
                                    const LayerParams& params, bool relu,
                                    KernelOrder order) {
  GT_OBS_SCOPE_N(span, "dfg.layer_forward", "dfg");
  span.arg("order", to_string(order));
  LayerForward fwd;
  fwd.order = order;
  if (order == KernelOrder::kCombinationFirst && !kernels::dkp_compatible(g_))
    throw std::invalid_argument(
        "combination-first order is invalid for elementwise edge weights");

  if (g_ != EdgeWeightMode::kNone)
    fwd.weights = napa::neighbor_apply(dev_, graph.csr, x, g_);

  if (order == KernelOrder::kAggregationFirst) {
    fwd.aggr = napa::pull(dev_, graph.csr, x, fwd.weights, f_, g_);
    fwd.out =
        napa::apply_dense(dev_, fwd.aggr, params.w, params.b, relu,
                          &fwd.pre_act);
  } else {
    fwd.transformed = napa::apply_matmul(dev_, x, params.w);
    gpusim::BufferId aggr_h =
        napa::pull(dev_, graph.csr, fwd.transformed, fwd.weights, f_, g_);
    fwd.out = napa::apply_bias_act(dev_, aggr_h, params.b, relu,
                                   &fwd.pre_act);
    dev_.free(aggr_h);
  }
  return fwd;
}

LayerBackward LayerExecutor::backward(const LayerDeviceGraph& graph,
                                      gpusim::BufferId x,
                                      const LayerParams& params, bool relu,
                                      const LayerForward& fwd,
                                      gpusim::BufferId dy, bool want_dx) {
  GT_OBS_SCOPE_N(span, "dfg.layer_backward", "dfg");
  span.arg("order", to_string(fwd.order));
  LayerBackward grads;
  if (fwd.order == KernelOrder::kAggregationFirst) {
    // dY -> (relu, bias, matmul) -> dA -> (pull, neighbor-apply) -> dX.
    const bool need_da = want_dx;
    napa::DenseGrads dense = napa::apply_dense_backward(
        dev_, fwd.aggr, params.w, fwd.pre_act, dy, relu, need_da);
    grads.dw = dense.dw;
    grads.db = dense.db;
    if (want_dx) {
      grads.dx = napa::pull_backward(dev_, graph.csr, graph.csc, x,
                                     fwd.weights, dense.dx, f_, g_);
      if (g_ != EdgeWeightMode::kNone)
        napa::neighbor_apply_backward(dev_, graph.csr, x, dense.dx, grads.dx,
                                      f_, g_);
      dev_.free(dense.dx);
    }
    return grads;
  }

  // Combination-first: dY -> (relu, bias) -> dA (hidden space)
  //   -> pull-backward-h -> dT -> matmul backward -> dX/dW, plus the
  //   g' terms computed from (x, T = xW).
  napa::BiasActGrads bias =
      napa::apply_bias_act_backward(dev_, fwd.pre_act, dy, relu);
  grads.db = bias.db;
  gpusim::BufferId dt = napa::pull_backward_h(dev_, graph.csr, graph.csc,
                                              fwd.weights, bias.dx, f_);
  napa::MatmulGrads mm =
      napa::apply_matmul_backward(dev_, x, params.w, dt, want_dx);
  grads.dw = mm.dw;
  if (want_dx) {
    grads.dx = mm.dx;
    if (g_ == EdgeWeightMode::kDot)
      napa::edge_weight_backward_cf(dev_, graph.csr, graph.csc, x,
                                    fwd.transformed, bias.dx, grads.dx, f_);
  }
  dev_.free(dt);
  dev_.free(bias.dx);
  return grads;
}

void LayerExecutor::release_cache(const LayerForward& fwd) {
  if (fwd.weights != gpusim::kInvalidBuffer) dev_.free(fwd.weights);
  if (fwd.aggr != gpusim::kInvalidBuffer) dev_.free(fwd.aggr);
  if (fwd.transformed != gpusim::kInvalidBuffer) dev_.free(fwd.transformed);
  if (fwd.pre_act != gpusim::kInvalidBuffer) dev_.free(fwd.pre_act);
}

}  // namespace gt::dfg
