// Layer executor for GraphTensor models: runs one GNN layer's NAPA kernels
// in either kernel order (aggregation-first or the Cost-DKP rewritten
// combination-first), forward and backward, caching exactly what backward
// needs. The frameworks module composes this per layer; baselines use their
// own kernel pipelines.
#pragma once

#include "dfg/cost_model.hpp"
#include "kernels/napa.hpp"

namespace gt::dfg {

struct LayerDeviceGraph {
  kernels::DeviceCsr csr;
  kernels::DeviceCsc csc;
};

struct LayerParams {
  gpusim::BufferId w = gpusim::kInvalidBuffer;  // [feat, hidden]
  gpusim::BufferId b = gpusim::kInvalidBuffer;  // [1, hidden]
};

/// Forward artifacts retained for backward.
struct LayerForward {
  gpusim::BufferId out = gpusim::kInvalidBuffer;  // [n_dst, hidden]
  KernelOrder order = KernelOrder::kAggregationFirst;
  gpusim::BufferId weights = gpusim::kInvalidBuffer;      // edge weights
  gpusim::BufferId aggr = gpusim::kInvalidBuffer;         // agg-first
  gpusim::BufferId transformed = gpusim::kInvalidBuffer;  // comb-first: x W
  gpusim::BufferId pre_act = gpusim::kInvalidBuffer;
};

struct LayerBackward {
  gpusim::BufferId dx = gpusim::kInvalidBuffer;  // invalid when skipped
  gpusim::BufferId dw = gpusim::kInvalidBuffer;
  gpusim::BufferId db = gpusim::kInvalidBuffer;
};

class LayerExecutor {
 public:
  LayerExecutor(gpusim::Device& dev, kernels::AggMode f,
                kernels::EdgeWeightMode g)
      : dev_(dev), f_(f), g_(g) {}

  /// Run the layer in the given order. Combination-first requires
  /// dkp_compatible(g) (throws otherwise).
  LayerForward forward(const LayerDeviceGraph& graph, gpusim::BufferId x,
                       const LayerParams& params, bool relu,
                       KernelOrder order);

  /// Backward through a forward() result. `want_dx == false` (first GNN
  /// layer) lets aggregation-first skip the graph traversal entirely.
  LayerBackward backward(const LayerDeviceGraph& graph, gpusim::BufferId x,
                         const LayerParams& params, bool relu,
                         const LayerForward& fwd, gpusim::BufferId dy,
                         bool want_dx);

  /// Release the cached buffers of a forward result (not `out`).
  void release_cache(const LayerForward& fwd);

 private:
  gpusim::Device& dev_;
  kernels::AggMode f_;
  kernels::EdgeWeightMode g_;
};

}  // namespace gt::dfg
