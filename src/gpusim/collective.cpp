#include "gpusim/collective.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "util/discrete_event.hpp"

namespace gt::gpusim {
namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

}  // namespace

CollectiveCost CollectiveModel::all_reduce(std::size_t bytes) const {
  const std::size_t n = ic_.devices();
  if (n < 2 || bytes == 0) return {};
  const std::size_t chunk = ceil_div(bytes, n);
  const std::size_t steps = 2 * (n - 1);
  CollectiveCost cost;
  cost.steps = steps;
  cost.us = static_cast<double>(steps) * ic_.transfer_us(chunk);
  cost.bytes_on_wire = steps * n * chunk;  // every link busy every step
  return cost;
}

CollectiveCost CollectiveModel::all_gather(
    const std::vector<std::size_t>& shard_bytes) const {
  const std::size_t n = ic_.devices();
  assert(shard_bytes.size() == n && "all_gather: one shard per device");
  if (n < 2) return {};
  std::size_t max_shard = 0;
  std::size_t total = 0;
  for (std::size_t s : shard_bytes) {
    max_shard = std::max(max_shard, s);
    total += s;
  }
  if (max_shard == 0) return {};
  CollectiveCost cost;
  cost.steps = n - 1;
  // Every step the slowest link carries the largest shard still in
  // flight, and in a ring that is the global max at every step.
  cost.us = static_cast<double>(n - 1) * ic_.transfer_us(max_shard);
  cost.bytes_on_wire = (n - 1) * total;  // each shard crosses n-1 links
  return cost;
}

double CollectiveModel::simulate_all_reduce_us(std::size_t bytes) const {
  const std::size_t n = ic_.devices();
  if (n < 2 || bytes == 0) return 0.0;
  const std::size_t chunk = ceil_div(bytes, n);
  const std::size_t steps = 2 * (n - 1);
  EventSim sim;
  std::vector<SimResourceId> links(n);
  for (std::size_t l = 0; l < n; ++l)
    links[l] = sim.add_resource("link" + std::to_string(l), 1);
  std::vector<SimTaskId> prev(n), cur(n);
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t l = 0; l < n; ++l) {
      std::vector<SimTaskId> deps;
      if (s > 0) {
        // The chunk a link forwards at step s was received over the
        // upstream link at step s-1; the link itself is also serial.
        deps = {prev[(l + n - 1) % n], prev[l]};
      }
      cur[l] = sim.add_task(
          "ar.s" + std::to_string(s) + ".l" + std::to_string(l),
          ic_.transfer_us(chunk), links[l], std::move(deps));
    }
    prev = cur;
  }
  return sim.run().makespan;
}

double CollectiveModel::simulate_all_gather_us(
    const std::vector<std::size_t>& shard_bytes) const {
  const std::size_t n = ic_.devices();
  assert(shard_bytes.size() == n && "all_gather: one shard per device");
  if (n < 2) return 0.0;
  EventSim sim;
  std::vector<SimResourceId> links(n);
  for (std::size_t l = 0; l < n; ++l)
    links[l] = sim.add_resource("link" + std::to_string(l), 1);
  std::vector<SimTaskId> prev(n), cur(n);
  for (std::size_t s = 0; s + 1 < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      // Step s: device d forwards shard (d - s) mod n to its neighbor.
      const std::size_t shard = shard_bytes[(d + n - s) % n];  // s < n
      std::vector<SimTaskId> deps;
      if (s > 0) deps = {prev[(d + n - 1) % n], prev[d]};
      cur[d] = sim.add_task(
          "ag.s" + std::to_string(s) + ".d" + std::to_string(d),
          ic_.transfer_us(shard), links[d], std::move(deps));
    }
    prev = cur;
  }
  return sim.run().makespan;
}

}  // namespace gt::gpusim
