// Collective communication pricing over the modeled interconnect.
//
// Multi-device execution (DESIGN.md S14) exchanges data at layer
// boundaries: range sharding all-gathers halo embeddings, tensor
// parallelism all-reduces partial layer outputs. Both are priced as
// deterministic multi-step ring schedules over InterconnectModel links —
// the classic bandwidth-optimal algorithms:
//
//   all-reduce (M bytes resident on each of N devices):
//     2(N-1) steps; every step moves one ceil(M/N)-byte chunk on every
//     link in parallel (reduce-scatter then all-gather halves).
//     total = 2(N-1) * link(ceil(M/N))
//
//   all-gather (device d contributes shard_bytes[d]):
//     N-1 steps; step s forwards shard (d - s) mod N on device d's link,
//     so each step's duration is the slowest shard in flight.
//     total = sum_s link(max_d shard[(d - s) mod N]) = (N-1) * link(max shard)
//
// Every cost has a closed form AND a discrete-event simulation
// (simulate_* below, built on gt::EventSim with one resource per link and
// upstream-neighbor dependencies); tests assert they agree for
// N in {1, 2, 4, 8}, which pins the schedule shape the closed form claims.
#pragma once

#include <cstddef>
#include <vector>

#include "gpusim/interconnect.hpp"

namespace gt::gpusim {

/// One priced collective. `us` is the schedule makespan (all devices
/// blocked for it), `bytes_on_wire` the total bytes crossing all links,
/// `steps` the number of pipeline steps (0 for a single device: nothing
/// moves).
struct CollectiveCost {
  double us = 0.0;
  std::size_t bytes_on_wire = 0;
  std::size_t steps = 0;
};

class CollectiveModel {
 public:
  explicit CollectiveModel(InterconnectModel interconnect)
      : ic_(interconnect) {}

  const InterconnectModel& interconnect() const noexcept { return ic_; }

  /// Ring all-reduce of `bytes` per device (closed form).
  CollectiveCost all_reduce(std::size_t bytes) const;

  /// Ring all-gather of per-device shards (closed form). `shard_bytes`
  /// must have one entry per device.
  CollectiveCost all_gather(const std::vector<std::size_t>& shard_bytes) const;

  /// Discrete-event replicas of the closed forms: one EventSim resource
  /// per link, step s on link l waiting on step s-1 on links l and l-1
  /// (the forwarded chunk's producer). Used by tests to pin the closed
  /// forms to an actual schedule.
  double simulate_all_reduce_us(std::size_t bytes) const;
  double simulate_all_gather_us(
      const std::vector<std::size_t>& shard_bytes) const;

 private:
  InterconnectModel ic_;
};

}  // namespace gt::gpusim
