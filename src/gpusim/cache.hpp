// Per-SM cache model.
//
// Lines are keyed at (buffer, row, chunk) granularity — one vertex's feature
// vector (or one feature-chunk of it) is the unit GNN kernels move, and the
// paper's "cache bloat" metric is defined exactly as bytes of embedding data
// loaded into SM caches relative to the embedding table size (Fig 6b). LRU
// replacement, write-allocate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace gt::gpusim {

struct CacheKey {
  std::uint32_t buffer = 0;
  std::uint32_t row = 0;
  std::uint32_t chunk = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    std::uint64_t x = (static_cast<std::uint64_t>(k.buffer) << 40) ^
                      (static_cast<std::uint64_t>(k.row) << 8) ^ k.chunk;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

class SmCache {
 public:
  explicit SmCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Touch a line of `bytes`. Returns true on hit. On miss the line is
  /// loaded (LRU evictions as needed) and `loaded_bytes` grows.
  bool access(const CacheKey& key, std::size_t bytes);

  void clear();

  std::size_t loaded_bytes() const noexcept { return loaded_bytes_; }
  std::size_t hit_bytes() const noexcept { return hit_bytes_; }
  std::size_t resident_bytes() const noexcept { return resident_bytes_; }

 private:
  struct Line {
    CacheKey key;
    std::size_t bytes;
  };

  std::size_t capacity_bytes_;
  std::size_t resident_bytes_ = 0;
  std::size_t loaded_bytes_ = 0;  // cumulative fill traffic (misses)
  std::size_t hit_bytes_ = 0;
  std::list<Line> lru_;  // front = most recent
  std::unordered_map<CacheKey, std::list<Line>::iterator, CacheKeyHash> map_;
};

}  // namespace gt::gpusim
