#include "gpusim/device.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <string>

#include "fault/fault.hpp"
#include "obs/live/event_log.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace gt::gpusim {

namespace {

/// Registry handles for the simulator's hot pricing path, resolved once.
/// (Registered metrics are never deallocated, so the references are safe.)
struct KernelMetrics {
  obs::Counter& launches = obs::metrics().counter("gpusim.kernel_launches");
  obs::Counter& flops = obs::metrics().counter("gpusim.flops");
  obs::Counter& global_bytes = obs::metrics().counter("gpusim.global_bytes");
  obs::Counter& cache_hit_bytes =
      obs::metrics().counter("gpusim.cache_hit_bytes");
  obs::Counter& cache_loaded_bytes =
      obs::metrics().counter("gpusim.cache_loaded_bytes");
  obs::Counter& atomic_ops = obs::metrics().counter("gpusim.atomic_ops");
};

void record_kernel_metrics(const KernelStats& ks) {
  static KernelMetrics m;
  static std::array<obs::Histogram*, 7> per_category = [] {
    std::array<obs::Histogram*, 7> hs{};
    for (std::size_t c = 0; c < hs.size(); ++c)
      hs[c] = &obs::metrics().histogram(
          std::string("gpusim.kernel_us.") +
          to_string(static_cast<KernelCategory>(c)));
    return hs;
  }();
  m.launches.add(1);
  m.flops.add(ks.flops);
  m.global_bytes.add(ks.global_bytes);
  m.cache_hit_bytes.add(ks.cache_hit_bytes);
  m.cache_loaded_bytes.add(ks.cache_loaded_bytes);
  m.atomic_ops.add(ks.atomic_ops);
  per_category[static_cast<std::size_t>(ks.category)]->observe(ks.latency_us);
}

/// gpusim.alloc injection hook. A kind=oom entry surfaces as GpuOomError —
/// the frameworks' existing report-and-continue OOM path — instead of the
/// retryable InjectedFault every other kind raises.
void emit_oom_event(std::size_t requested, std::size_t available) {
  if (!obs::live::EventLog::global().armed()) return;
  obs::live::Event ev(obs::live::Severity::kWarn, "gpusim.oom");
  ev.msg("device allocation failed")
      .field("requested_bytes", static_cast<std::uint64_t>(requested))
      .field("available_bytes", static_cast<std::uint64_t>(available));
  obs::live::EventLog::global().emit(ev);
}

void maybe_inject_alloc_fault(std::size_t requested, std::size_t capacity,
                              std::size_t used) {
  try {
    fault::check(fault::Site::kGpusimAlloc);
  } catch (const fault::InjectedFault& f) {
    if (f.kind() == fault::Kind::kOom) {
      obs::metrics().counter("gpusim.oom_aborts").add(1);
      emit_oom_event(requested, capacity - used);
      throw GpuOomError(requested, capacity - used);
    }
    throw;
  }
}

}  // namespace

const char* to_string(KernelCategory c) {
  switch (c) {
    case KernelCategory::kAggregation:     return "aggregation";
    case KernelCategory::kEdgeWeight:      return "edge-weight";
    case KernelCategory::kCombination:     return "combination";
    case KernelCategory::kSparse2Dense:    return "sparse2dense";
    case KernelCategory::kFormatTranslate: return "format-translate";
    case KernelCategory::kSampling:        return "sampling";
    case KernelCategory::kOther:           return "other";
  }
  return "?";
}

const char* to_string(KernelPhase p) {
  switch (p) {
    case KernelPhase::kOther:    return "other";
    case KernelPhase::kForward:  return "fwd";
    case KernelPhase::kBackward: return "bwd";
  }
  return "?";
}

KernelStats accumulate(const std::vector<KernelStats>& profile) {
  KernelStats total;
  total.name = "total";
  for (const auto& k : profile) {
    total.latency_us += k.latency_us;
    total.flops += k.flops;
    total.global_bytes += k.global_bytes;
    total.cache_loaded_bytes += k.cache_loaded_bytes;
    total.cache_hit_bytes += k.cache_hit_bytes;
    total.atomic_ops += k.atomic_ops;
    total.blocks += k.blocks;
  }
  return total;
}

KernelStats accumulate(const std::vector<KernelStats>& profile,
                       KernelCategory category) {
  std::vector<KernelStats> filtered;
  for (const auto& k : profile)
    if (k.category == category) filtered.push_back(k);
  KernelStats total = accumulate(filtered);
  total.name = to_string(category);
  total.category = category;
  return total;
}

// ---- BlockCtx ---------------------------------------------------------------

void BlockCtx::load(BufferId buf, std::uint32_t row, std::size_t bytes,
                    std::uint32_t chunk) {
  auto& sm = dev_.sms_[sm_];
  sm.cache.access(CacheKey{buf, row, chunk}, bytes);
}

void BlockCtx::store(BufferId buf, std::uint32_t row, std::size_t bytes,
                     std::uint32_t chunk) {
  auto& sm = dev_.sms_[sm_];
  // Write-through: the store always reaches DRAM; write-allocate keeps the
  // line resident for subsequent reuse (NAPA accumulators rely on this).
  sm.raw_global_bytes += bytes;
  sm.cache.access(CacheKey{buf, row, chunk}, bytes);
}

void BlockCtx::global_read(std::size_t bytes) {
  dev_.sms_[sm_].raw_global_bytes += bytes;
}

void BlockCtx::global_write(std::size_t bytes) {
  dev_.sms_[sm_].raw_global_bytes += bytes;
}

void BlockCtx::flops(std::uint64_t n) { dev_.sms_[sm_].flops += n; }

void BlockCtx::atomic(std::uint64_t n) { dev_.sms_[sm_].atomics += n; }

void BlockCtx::atomic_add(float& slot, float v) {
  if (!dev_.atomic_exec_) {
    slot += v;
    return;
  }
  std::atomic_ref<float> ref(slot);
  float cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

// ---- Device -----------------------------------------------------------------

Device::Device(DeviceConfig config) : config_(config) {
  sms_.reserve(config_.num_sms);
  for (std::size_t i = 0; i < config_.num_sms; ++i)
    sms_.emplace_back(config_.cache_bytes_per_sm);
}

void Device::track_alloc(std::size_t bytes) {
  if (used_bytes_ + bytes > config_.memory_capacity_bytes) {
    obs::metrics().counter("gpusim.oom_aborts").add(1);
    emit_oom_event(bytes, config_.memory_capacity_bytes - used_bytes_);
    throw GpuOomError(bytes, config_.memory_capacity_bytes - used_bytes_);
  }
  used_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, used_bytes_);
  ++alloc_count_;
}

BufferId Device::alloc_f32(std::size_t rows, std::size_t cols,
                           std::string name) {
  if (in_kernel_)
    throw std::logic_error("device allocation inside a kernel is forbidden");
  maybe_inject_alloc_fault(rows * cols * sizeof(float),
                           config_.memory_capacity_bytes, used_bytes_);
  track_alloc(rows * cols * sizeof(float));
  Buffer b;
  b.name = std::move(name);
  b.rows = rows;
  b.cols = cols;
  b.f32.assign(rows * cols, 0.0f);
  b.live = true;
  buffers_.push_back(std::move(b));
  return static_cast<BufferId>(buffers_.size() - 1);
}

BufferId Device::alloc_u32(std::size_t count, std::string name) {
  if (in_kernel_)
    throw std::logic_error("device allocation inside a kernel is forbidden");
  maybe_inject_alloc_fault(count * sizeof(std::uint32_t),
                           config_.memory_capacity_bytes, used_bytes_);
  track_alloc(count * sizeof(std::uint32_t));
  Buffer b;
  b.name = std::move(name);
  b.rows = count;
  b.cols = 1;
  b.u32.assign(count, 0);
  b.live = true;
  buffers_.push_back(std::move(b));
  return static_cast<BufferId>(buffers_.size() - 1);
}

void Device::free(BufferId id) {
  Buffer& b = live_buffer(id);
  used_bytes_ -= b.bytes();
  b.f32.clear();
  b.f32.shrink_to_fit();
  b.u32.clear();
  b.u32.shrink_to_fit();
  b.live = false;
}

Device::Buffer& Device::live_buffer(BufferId id) {
  if (id >= buffers_.size() || !buffers_[id].live)
    throw std::out_of_range("invalid or freed device buffer");
  return buffers_[id];
}

const Device::Buffer& Device::live_buffer(BufferId id) const {
  if (id >= buffers_.size() || !buffers_[id].live)
    throw std::out_of_range("invalid or freed device buffer");
  return buffers_[id];
}

std::span<float> Device::f32(BufferId id) { return live_buffer(id).f32; }
std::span<const float> Device::f32(BufferId id) const {
  return live_buffer(id).f32;
}
std::span<std::uint32_t> Device::u32(BufferId id) {
  return live_buffer(id).u32;
}
std::span<const std::uint32_t> Device::u32(BufferId id) const {
  return live_buffer(id).u32;
}

std::size_t Device::rows(BufferId id) const { return live_buffer(id).rows; }
std::size_t Device::cols(BufferId id) const { return live_buffer(id).cols; }
std::size_t Device::buffer_bytes(BufferId id) const {
  return live_buffer(id).bytes();
}

MemoryStats Device::memory_stats() const noexcept {
  return MemoryStats{used_bytes_, peak_bytes_, config_.memory_capacity_bytes,
                     alloc_count_};
}

void Device::reset_peak() noexcept { peak_bytes_ = used_bytes_; }

KernelStats Device::run_kernel(const std::string& name,
                               KernelCategory category,
                               std::size_t num_blocks,
                               const std::function<void(BlockCtx&)>& body,
                               BlockSafety safety) {
  ++launches_;  // counter and fault check must stay 1:1 (occurrence domain)
  fault::check(fault::Site::kGpusimKernel);
  // Fresh per-kernel SM state: caches do not persist useful data across
  // kernel boundaries in this model.
  for (auto& sm : sms_) {
    sm.cache.clear();
    sm.flops = 0;
    sm.raw_global_bytes = 0;
    sm.atomics = 0;
  }

  // Parallel path: shard blocks by their assigned SM and run each SM's
  // block sequence (b = sm, sm + S, sm + 2S, ...) on a pool worker. Per-SM
  // simulator state is touched only by that SM's thread and blocks of one
  // SM keep their serial order, so every SmState — and therefore the priced
  // KernelStats — is bit-identical to the serial loop below.
  ThreadPool* pool =
      safety == BlockSafety::kSerial ? nullptr : compute_pool();
  const bool parallel = pool != nullptr && !on_compute_worker() &&
                        num_blocks > 1 && config_.num_sms > 1;
  in_kernel_ = true;
  atomic_exec_ = parallel && safety == BlockSafety::kAtomicAdd;
  if (parallel) {
    const std::size_t num_sms = config_.num_sms;
    pool->parallel_for(
        0, num_sms, compute_threads(),
        [this, &body, num_blocks, num_sms](std::size_t, std::size_t lo,
                                           std::size_t hi) {
          detail::ComputeWorkerScope scope;
          for (std::size_t sm = lo; sm < hi; ++sm) {
            for (std::size_t b = sm; b < num_blocks; b += num_sms) {
              BlockCtx ctx(*this, b, sm);
              body(ctx);
            }
          }
        });
  } else {
    for (std::size_t b = 0; b < num_blocks; ++b) {
      BlockCtx ctx(*this, b, b % config_.num_sms);
      body(ctx);
    }
  }
  atomic_exec_ = false;
  in_kernel_ = false;

  // Price the kernel. Compute throughput and DRAM bandwidth are
  // device-wide resources shared by all SMs; a single SM can draw at most
  // ~1/8 of the DRAM bandwidth and 1/num_sms of the FLOP rate. The kernel
  // finishes when both the device-wide totals are served and the hottest
  // SM (load imbalance) is done.
  const CostParams& cp = config_.cost;
  KernelStats ks;
  ks.name = name;
  ks.category = category;
  ks.phase = phase_;
  ks.blocks = num_blocks;
  const double flop_rate = category == KernelCategory::kCombination
                               ? cp.dense_flops_per_us
                               : cp.flops_per_us;
  const double sm_flop_rate = flop_rate / static_cast<double>(config_.num_sms);
  const double sm_bw = cp.global_bw_bytes_per_us / 8.0;
  double max_sm_us = 0.0;
  for (const auto& sm : sms_) {
    const std::size_t miss = sm.cache.loaded_bytes();
    const std::size_t hit = sm.cache.hit_bytes();
    const double t = static_cast<double>(sm.flops) / sm_flop_rate +
                     static_cast<double>(miss + sm.raw_global_bytes) / sm_bw +
                     static_cast<double>(hit) / cp.cache_bw_bytes_per_us +
                     static_cast<double>(sm.atomics) * cp.atomic_penalty_us;
    max_sm_us = std::max(max_sm_us, t);
    ks.flops += sm.flops;
    ks.global_bytes += miss + sm.raw_global_bytes;
    ks.cache_loaded_bytes += miss;
    ks.cache_hit_bytes += hit;
    ks.atomic_ops += sm.atomics;
  }
  const double device_us =
      static_cast<double>(ks.flops) / flop_rate +
      static_cast<double>(ks.global_bytes) / cp.global_bw_bytes_per_us;
  ks.latency_us = cp.launch_overhead_us + std::max(device_us, max_sm_us);
  record_kernel_metrics(ks);
  profile_.push_back(ks);
  return ks;
}

KernelStats Device::charge_kernel(const std::string& name,
                                  KernelCategory category,
                                  std::uint64_t flops,
                                  std::size_t global_bytes, double extra_us) {
  const CostParams& cp = config_.cost;
  KernelStats ks;
  ks.name = name;
  ks.category = category;
  ks.phase = phase_;
  ks.flops = flops;
  ks.global_bytes = global_bytes;
  // Synthetic kernels (sorts, memsets) are bandwidth-dominated and spread
  // across all SMs; we charge aggregate traffic at full device bandwidth.
  const double flop_rate = category == KernelCategory::kCombination
                               ? cp.dense_flops_per_us
                               : cp.flops_per_us;
  ks.latency_us = cp.launch_overhead_us + extra_us +
                  static_cast<double>(flops) /
                      (flop_rate * static_cast<double>(config_.num_sms)) +
                  static_cast<double>(global_bytes) / cp.global_bw_bytes_per_us;
  record_kernel_metrics(ks);
  profile_.push_back(ks);
  return ks;
}

void Device::charge_alloc_overhead(const std::string& name,
                                   std::size_t count) {
  KernelStats ks;
  ks.name = name;
  ks.category = KernelCategory::kOther;
  ks.phase = phase_;
  ks.latency_us = config_.cost.alloc_overhead_us * static_cast<double>(count);
  profile_.push_back(ks);
}

double Device::profile_latency_us() const noexcept {
  double total = 0.0;
  for (const auto& k : profile_) total += k.latency_us;
  return total;
}

}  // namespace gt::gpusim
