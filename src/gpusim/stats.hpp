// Execution statistics surfaced by the GPU simulator: the reproduction's
// stand-in for Nsight Systems kernel profiles (paper §VI evaluation method).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gt::gpusim {

/// Which evaluation bucket a kernel belongs to — the decomposition used in
/// Figure 16 (aggregation / edge weighting / combination / sparse2dense /
/// format translation).
enum class KernelCategory {
  kAggregation,
  kEdgeWeight,
  kCombination,
  kSparse2Dense,
  kFormatTranslate,
  kSampling,   // device-side helpers, unused by most frameworks
  kOther,
};

const char* to_string(KernelCategory c);

/// Which training phase a kernel ran in. Frameworks stamp the device with
/// set_phase() at their FWP/BWP boundaries, so the per-phase latency sums
/// of a profile equal the fwp_us/bwp_us the report derives from the same
/// boundaries — the exactness the kernel ledger's attribution relies on.
/// kOther covers work outside both phases (session uploads, cache
/// assembly), which frameworks clear from the profile before FWP anyway.
enum class KernelPhase {
  kOther,
  kForward,
  kBackward,
};

const char* to_string(KernelPhase p);

struct KernelStats {
  std::string name;
  KernelCategory category = KernelCategory::kOther;
  KernelPhase phase = KernelPhase::kOther;
  double latency_us = 0.0;
  std::uint64_t flops = 0;
  std::size_t global_bytes = 0;       // DRAM traffic (misses + writes + raw)
  std::size_t cache_loaded_bytes = 0; // fills across all SMs ("cache bloat")
  std::size_t cache_hit_bytes = 0;
  std::uint64_t atomic_ops = 0;
  std::size_t blocks = 0;
};

struct MemoryStats {
  std::size_t current_bytes = 0;
  std::size_t peak_bytes = 0;
  std::size_t capacity_bytes = 0;
  std::size_t alloc_count = 0;
};

/// Sum of a profile, optionally filtered by category.
KernelStats accumulate(const std::vector<KernelStats>& profile);
KernelStats accumulate(const std::vector<KernelStats>& profile,
                       KernelCategory category);

}  // namespace gt::gpusim
