// The simulated GPU device.
//
// Numerics are real: device buffers are host vectors and kernels compute
// actual float math, so every framework implementation is testable for
// correctness against a serial reference. Performance is modelled: each
// kernel is launched as a grid of thread blocks, blocks are assigned to SMs
// round-robin, per-SM LRU caches track embedding-row traffic, and the
// latency model prices per-SM compute + memory work. See DESIGN.md §2 for
// why this substitution preserves the paper's claims.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/config.hpp"
#include "gpusim/stats.hpp"

namespace gt::gpusim {

class Device;

using BufferId = std::uint32_t;
inline constexpr BufferId kInvalidBuffer = ~0u;

/// How a kernel's thread blocks may be executed on the host.
///
/// The simulator's per-SM state (cache, flop/byte/atomic tallies) is
/// independent by construction, and blocks assigned to one SM always run
/// in block order on one host thread — so KernelStats are bit-identical to
/// serial execution for every safety class. What the declaration governs
/// is the *numerics*: whether the kernel body's real float math is safe to
/// run from several host threads at once.
enum class BlockSafety {
  /// Blocks may share mutable host state (edge-wise scatter-adds writing
  /// the same destination row, seed flags, ...). Blocks run serially on
  /// the calling thread regardless of the compute-engine configuration.
  kSerial,
  /// Blocks write disjoint host memory (vertex-centric NAPA / Pull /
  /// Apply kernels: one destination row per block). Each SM's block
  /// sequence runs on a pool worker; results are bit-identical to serial.
  kParallel,
  /// Blocks scatter-add into shared rows through BlockCtx::atomic_add,
  /// which turns into a CAS-add under parallel execution. Results are
  /// correct but the float reduction order depends on interleaving — only
  /// for kernels whose consumers tolerate that (none of the evaluation
  /// backends do; they declare kSerial and keep bit-stable gradients).
  kAtomicAdd,
};

/// Thrown when an allocation exceeds device capacity — reproduces the
/// paper's livejournal out-of-memory failure for PyG/GNNAdvisor NGCF.
class GpuOomError : public std::runtime_error {
 public:
  GpuOomError(std::size_t requested, std::size_t available)
      : std::runtime_error("gpu out of memory: requested " +
                           std::to_string(requested) + "B, available " +
                           std::to_string(available) + "B"),
        requested_bytes(requested),
        available_bytes(available) {}
  std::size_t requested_bytes;
  std::size_t available_bytes;
};

/// Handle passed to a kernel body once per thread block. All modelling
/// calls are forwarded to the owning Device's per-SM state.
class BlockCtx {
 public:
  std::size_t block_id() const noexcept { return block_; }
  std::size_t sm_id() const noexcept { return sm_; }

  /// Model a read of row `row` (feature-chunk `chunk`) of `buf`,
  /// `bytes` wide. Charged as a cache access on this block's SM.
  void load(BufferId buf, std::uint32_t row, std::size_t bytes,
            std::uint32_t chunk = 0);

  /// Model a write: write-through (global traffic) + write-allocate.
  void store(BufferId buf, std::uint32_t row, std::size_t bytes,
             std::uint32_t chunk = 0);

  /// Uncached global traffic (graph-structure index reads, etc.).
  void global_read(std::size_t bytes);
  void global_write(std::size_t bytes);

  /// Arithmetic work.
  void flops(std::uint64_t n);

  /// Atomic read-modify-write on shared output (GNNAdvisor-style partial
  /// aggregation): charged a serialization penalty.
  void atomic(std::uint64_t n = 1);

  /// Host-side scatter-add on possibly-shared memory. Under serial
  /// execution this is a plain `slot += v`; when the kernel was declared
  /// BlockSafety::kAtomicAdd and runs parallel it becomes a CAS-add so the
  /// sum is correct whatever the interleaving. This models the data
  /// movement of nothing — call atomic() separately to price the
  /// serialization.
  void atomic_add(float& slot, float v);

 private:
  friend class Device;
  BlockCtx(Device& dev, std::size_t block, std::size_t sm)
      : dev_(dev), block_(block), sm_(sm) {}
  Device& dev_;
  std::size_t block_;
  std::size_t sm_;
};

class Device {
 public:
  explicit Device(DeviceConfig config = {});

  const DeviceConfig& config() const noexcept { return config_; }

  // -- Memory management ----------------------------------------------------
  /// Allocate a float32 buffer of rows x cols. Throws GpuOomError.
  BufferId alloc_f32(std::size_t rows, std::size_t cols, std::string name);
  /// Allocate an index buffer of `count` u32 entries.
  BufferId alloc_u32(std::size_t count, std::string name);
  void free(BufferId id);

  std::span<float> f32(BufferId id);
  std::span<const float> f32(BufferId id) const;
  std::span<std::uint32_t> u32(BufferId id);
  std::span<const std::uint32_t> u32(BufferId id) const;

  std::size_t rows(BufferId id) const;
  std::size_t cols(BufferId id) const;
  std::size_t buffer_bytes(BufferId id) const;

  MemoryStats memory_stats() const noexcept;
  void reset_peak() noexcept;

  // -- Kernel execution -----------------------------------------------------
  /// Launch `num_blocks` thread blocks; `body` is invoked once per block
  /// with a BlockCtx bound to the block's SM (round-robin assignment,
  /// matching how a grid fills SMs). Returns the priced KernelStats and
  /// appends it to the profile. Allocation inside a kernel is forbidden.
  ///
  /// With a parallel-safe `safety` declaration and a multi-threaded
  /// compute engine (gt::set_compute_threads), blocks are sharded by their
  /// SM and each SM's block sequence runs on a pool worker. Simulated
  /// KernelStats — flops, global/cache bytes, atomics, priced µs — are
  /// bit-identical to serial execution in every mode.
  KernelStats run_kernel(const std::string& name, KernelCategory category,
                         std::size_t num_blocks,
                         const std::function<void(BlockCtx&)>& body,
                         BlockSafety safety = BlockSafety::kSerial);

  /// Charge a synthetic kernel (e.g. device-side sort during format
  /// translation) without executing per-block bodies.
  KernelStats charge_kernel(const std::string& name, KernelCategory category,
                            std::uint64_t flops, std::size_t global_bytes,
                            double extra_us = 0.0);

  /// Charge allocation overhead latency (cudaMalloc-like) to the profile.
  void charge_alloc_overhead(const std::string& name, std::size_t count = 1);

  const std::vector<KernelStats>& profile() const noexcept { return profile_; }
  void clear_profile() { profile_.clear(); }

  /// Training phase stamped onto every profile entry appended from now on
  /// (run_kernel and the synthetic charges alike). Frameworks flip this at
  /// their FWP/BWP boundaries so per-phase profile sums match the
  /// fwp_us/bwp_us they derive from the same boundaries. Pure labeling:
  /// pricing, numerics, and launch counting are untouched.
  void set_phase(KernelPhase phase) noexcept { phase_ = phase; }
  KernelPhase phase() const noexcept { return phase_; }

  /// run_kernel calls over the device's lifetime — exactly the
  /// gt::fault `gpusim.kernel` occurrence domain for the batch attempt
  /// that owns this device (charge_kernel / charge_alloc_overhead price
  /// synthetic work and are not launch sites). Not reset by
  /// clear_profile(), so a fault `layer=` coordinate in
  /// [0, kernel_launch_count()) always lands on a real launch.
  std::uint64_t kernel_launch_count() const noexcept { return launches_; }

  /// Sum of latencies currently in the profile.
  double profile_latency_us() const noexcept;

 private:
  friend class BlockCtx;

  struct Buffer {
    std::string name;
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<float> f32;
    std::vector<std::uint32_t> u32;
    bool live = false;
    std::size_t bytes() const noexcept {
      return f32.size() * sizeof(float) + u32.size() * sizeof(std::uint32_t);
    }
  };

  struct SmState {
    SmCache cache;
    std::uint64_t flops = 0;
    std::size_t raw_global_bytes = 0;
    std::uint64_t atomics = 0;
    explicit SmState(std::size_t cache_bytes) : cache(cache_bytes) {}
  };

  Buffer& live_buffer(BufferId id);
  const Buffer& live_buffer(BufferId id) const;
  void track_alloc(std::size_t bytes);

  DeviceConfig config_;
  std::vector<Buffer> buffers_;
  std::size_t used_bytes_ = 0;
  std::size_t peak_bytes_ = 0;
  std::size_t alloc_count_ = 0;
  std::vector<SmState> sms_;
  bool in_kernel_ = false;
  // True while a kAtomicAdd kernel is actually executing on pool workers;
  // BlockCtx::atomic_add switches from plain add to CAS-add when set.
  bool atomic_exec_ = false;
  std::vector<KernelStats> profile_;
  std::uint64_t launches_ = 0;  // run_kernel calls (fault-check 1:1)
  KernelPhase phase_ = KernelPhase::kOther;  // stamped onto profile entries
};

}  // namespace gt::gpusim
