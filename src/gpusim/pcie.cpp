#include "gpusim/pcie.hpp"

#include "obs/metrics.hpp"

namespace gt::gpusim {

double PcieModel::transfer_us(std::size_t bytes, bool pinned) const {
  static obs::Counter& transfers = obs::metrics().counter("pcie.transfers");
  static obs::Counter& total_bytes = obs::metrics().counter("pcie.bytes");
  static obs::Counter& staged_bytes =
      obs::metrics().counter("pcie.pageable_staged_bytes");
  transfers.add(1);
  total_bytes.add(bytes);
  double t = params_.latency_us +
             static_cast<double>(bytes) / params_.bw_bytes_per_us;
  if (!pinned) {
    staged_bytes.add(bytes);
    t += static_cast<double>(bytes) / params_.staging_copy_bw_bytes_per_us;
  }
  return t;
}

}  // namespace gt::gpusim
