#include "gpusim/pcie.hpp"

// Header-only today; translation unit kept so the library always has an
// archive member for this component.
namespace gt::gpusim {}
