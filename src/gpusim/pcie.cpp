#include "gpusim/pcie.hpp"

#include "gpusim/interconnect.hpp"
#include "obs/metrics.hpp"

namespace gt::gpusim {

double PcieModel::transfer_us(std::size_t bytes, bool pinned) const {
  // A zero-byte transfer never reaches the driver: no DMA setup, no
  // latency, no metrics. Before PR 8 this edge paid the full setup
  // latency and bumped pcie.transfers, so schedulers chunking an empty
  // table would accumulate phantom microseconds.
  if (bytes == 0) return 0.0;
  static obs::Counter& transfers = obs::metrics().counter("pcie.transfers");
  static obs::Counter& total_bytes = obs::metrics().counter("pcie.bytes");
  static obs::Counter& staged_bytes =
      obs::metrics().counter("pcie.pageable_staged_bytes");
  transfers.add(1);
  total_bytes.add(bytes);
  double t = Link(LinkParams{params_.bw_bytes_per_us, params_.latency_us})
                 .transfer_us(bytes);
  if (!pinned) {
    staged_bytes.add(bytes);
    t += static_cast<double>(bytes) / params_.staging_copy_bw_bytes_per_us;
  }
  return t;
}

}  // namespace gt::gpusim
