// GPU simulator configuration.
//
// The paper's testbed is an NVIDIA RTX 3090: 82 SMs @ 1.4 GHz, 24 GB
// GDDR6X (~936 GB/s), 128 KiB combined L1/shared per SM. We do not model
// warps or instruction timing — every claim reproduced here reduces to
// *counted work* (FLOPs, global-memory traffic, per-SM cache fills,
// allocations), which this configuration prices into microseconds with a
// simple linear model. Defaults are chosen so absolute numbers land in a
// plausible range; relative results are insensitive to them.
#pragma once

#include <cstddef>

namespace gt::gpusim {

struct CostParams {
  double flops_per_us = 3.56e5;        // 35.6 TFLOP/s / 100 (dataset scale)
  /// Dense combination (MLP) kernels run near peak throughput — cuBLAS
  /// GEMMs have high arithmetic intensity and coalesced access, unlike the
  /// irregular graph kernels ("MLP computations are mostly dense matrix
  /// transformation, which is already well harmonized with GPU's massive
  /// computing", paper SIV-B). Kernels in the kCombination category are
  /// priced at this rate.
  double dense_flops_per_us = 3.56e6;
  double global_bw_bytes_per_us = 9.36e3;  // 936 GB/s / 100
  double cache_bw_bytes_per_us = 9.36e4;   // on-chip ~10x global
  double launch_overhead_us = 2.0;     // per kernel launch
  double atomic_penalty_us = 2e-2;     // per atomic RMW (contention path)
  double alloc_overhead_us = 4.0;      // per device allocation (cudaMalloc)
};

struct DeviceConfig {
  std::size_t num_sms = 82;
  std::size_t cache_bytes_per_sm = 128 * 1024;      // L1 + shared
  std::size_t memory_capacity_bytes = 768ull << 20; // scaled-down 24 GB
  CostParams cost;
};

}  // namespace gt::gpusim
