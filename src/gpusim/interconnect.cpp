#include "gpusim/interconnect.hpp"

#include <cassert>

namespace gt::gpusim {

const char* to_string(Topology t) {
  switch (t) {
    case Topology::kRing:
      return "ring";
  }
  return "?";
}

InterconnectModel::InterconnectModel(std::size_t devices, LinkParams params,
                                     Topology topology)
    : devices_(devices == 0 ? 1 : devices), link_(params),
      topology_(topology) {}

std::size_t InterconnectModel::link_id(std::size_t from, std::size_t to) const {
  assert(from < devices_ && to < devices_ && "link_id: device out of range");
  assert(devices_ >= 2 && "link_id: single device has no links");
  assert(to == (from + 1) % devices_ && "ring link_id: not a ring neighbor");
  (void)to;
  return from;
}

}  // namespace gt::gpusim
