// A group of N simulated devices behind a modeled interconnect.
//
// DeviceGroup is the multi-device generalization of the single Device's
// kernel profile: execution strategies (frameworks/sharding.hpp) append
// per-device kernel timelines plus priced collectives at layer
// boundaries, and finish() merges everything into one group timeline with
// a discrete-event simulation (gt::EventSim) — one capacity-1 resource
// per device lane, one for the interconnect, kernels chained per lane,
// each collective a barrier that waits for all kernels appended before it
// and blocks all kernels appended after it.
//
// Numerics never run here (DESIGN.md S14 determinism rule #1: canonical
// single-device numerics, modeled decomposition); this class only prices
// and merges timelines, so the makespan is deterministic for a given
// timeline regardless of compute threads or worker count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gpusim/collective.hpp"
#include "gpusim/interconnect.hpp"
#include "gpusim/stats.hpp"

namespace gt::gpusim {

struct DeviceGroupConfig {
  std::size_t devices = 1;
  LinkParams link = {};
  Topology topology = Topology::kRing;
};

/// Group-timeline summary surfaced into RunReport / BENCH rows / gt_top.
struct GroupStats {
  double makespan_us = 0.0;            ///< group timeline end
  std::vector<double> device_busy_us;  ///< kernel time per device lane
  double comm_us = 0.0;                ///< total collective time
  std::size_t comm_bytes = 0;          ///< bytes crossing links
  std::size_t comm_steps = 0;          ///< link pipeline steps
  std::size_t collectives = 0;         ///< collectives priced
};

class DeviceGroup {
 public:
  explicit DeviceGroup(DeviceGroupConfig config = {});

  std::size_t size() const noexcept { return ic_.devices(); }
  const InterconnectModel& interconnect() const noexcept { return ic_; }
  const CollectiveModel& collectives() const noexcept { return coll_; }

  /// Append one attributed kernel to device `d`'s lane (FIFO per lane).
  void add_kernel(std::size_t d, const KernelStats& stats);

  /// Price a collective and insert it as a cross-device barrier after
  /// everything appended so far. No-ops (zero cost, not counted) on a
  /// single-device group.
  CollectiveCost all_reduce(std::string name, std::size_t bytes);
  CollectiveCost all_gather(std::string name,
                            const std::vector<std::size_t>& shard_bytes);

  /// Per-device accumulated kernel stats (name/category left blank).
  const std::vector<KernelStats>& device_totals() const noexcept {
    return totals_;
  }

  /// Run the merged discrete-event timeline. May be called once.
  GroupStats finish();

 private:
  struct Event {
    std::size_t device = 0;   // kernel lane; unused for collectives
    double duration_us = 0.0;
    bool collective = false;
    std::string name;
  };

  void add_collective(std::string name, const CollectiveCost& cost);

  InterconnectModel ic_;
  CollectiveModel coll_;
  std::vector<Event> events_;         // in append order
  std::vector<KernelStats> totals_;   // per device
  GroupStats stats_;                  // comm fields accumulate as priced
};

}  // namespace gt::gpusim
