// Host <-> device interconnect model.
//
// The service-wide tensor scheduler's T subtasks move re-indexed subgraphs
// and gathered embedding tables over PCIe. SALIENT and Prepro-GT stage
// embeddings in page-locked (pinned) host memory so the driver can DMA
// directly; pageable transfers pay an extra staging copy (paper §V-B).
#pragma once

#include <cstddef>

namespace gt::gpusim {

struct PcieParams {
  // Scaled by the same ~1/8 factor as host preprocessing speed relative to
  // dataset scale (DESIGN.md S2): effective PCIe 4.0 x16 ~24 GB/s.
  double bw_bytes_per_us = 3.0e3;
  double staging_copy_bw_bytes_per_us = 1.25e3;  // host memcpy into DMA buffer
  double latency_us = 8.0;                // per-transfer setup cost
};

class PcieModel {
 public:
  explicit PcieModel(PcieParams params = {}) : params_(params) {}

  const PcieParams& params() const noexcept { return params_; }

  /// Time to move `bytes` host->device. Pinned memory skips the staging
  /// copy the driver otherwise performs. Each call records the priced
  /// transfer into the gt::obs metrics (pcie.transfers / pcie.bytes).
  /// Zero-byte transfers are free no-ops and record nothing.
  double transfer_us(std::size_t bytes, bool pinned) const;

 private:
  PcieParams params_;
};

}  // namespace gt::gpusim
