#include "gpusim/cache.hpp"

namespace gt::gpusim {

bool SmCache::access(const CacheKey& key, std::size_t bytes) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Hit: move to front.
    lru_.splice(lru_.begin(), lru_, it->second);
    hit_bytes_ += bytes;
    return true;
  }
  // Miss: evict until the new line fits. A line larger than the whole cache
  // still loads (streamed) but is not retained.
  loaded_bytes_ += bytes;
  if (bytes > capacity_bytes_) return false;
  while (resident_bytes_ + bytes > capacity_bytes_ && !lru_.empty()) {
    const Line& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    map_.erase(victim.key);
    lru_.pop_back();
  }
  lru_.push_front(Line{key, bytes});
  map_[key] = lru_.begin();
  resident_bytes_ += bytes;
  return false;
}

void SmCache::clear() {
  lru_.clear();
  map_.clear();
  resident_bytes_ = 0;
  loaded_bytes_ = 0;
  hit_bytes_ = 0;
}

}  // namespace gt::gpusim
