// Device <-> device interconnect model.
//
// PR 8 generalizes the host-side PcieModel into a link/topology
// abstraction: a Link prices one point-to-point transfer (per-link
// bandwidth + per-transfer setup latency), and an InterconnectModel wires
// N simulated devices together in a topology (currently a unidirectional
// ring, the layout every ring collective in collective.hpp assumes).
//
// Like every other cost in gpusim, link pricing is analytic and
// deterministic: the numbers are scaled by the same ~1/8 factor as the
// rest of the simulator (DESIGN.md S2), so the default link models an
// NVLink-class 200 GB/s peer link at 25e3 bytes/us with a 1.2 us
// per-message setup cost.
#pragma once

#include <cstddef>

namespace gt::gpusim {

struct LinkParams {
  double bw_bytes_per_us = 25.0e3;  // NVLink3-class peer bandwidth / 8
  double latency_us = 1.2;          // per-message setup cost
};

/// One point-to-point link. Pricing-only (no metrics side effects), so
/// collectives can evaluate candidate schedules without polluting the
/// comm.* counters; DeviceGroup records metrics for the schedule it keeps.
class Link {
 public:
  explicit Link(LinkParams params = {}) : params_(params) {}

  const LinkParams& params() const noexcept { return params_; }

  /// Time to move `bytes` across the link. A zero-byte transfer is a
  /// no-op and costs nothing — it never reaches the wire.
  double transfer_us(std::size_t bytes) const noexcept {
    if (bytes == 0) return 0.0;
    return params_.latency_us +
           static_cast<double>(bytes) / params_.bw_bytes_per_us;
  }

 private:
  LinkParams params_;
};

enum class Topology {
  kRing,  // device d sends to (d + 1) % N; N links for N >= 2 devices
};

const char* to_string(Topology t);

/// N devices behind identical links in a fixed topology. Owns the link
/// pricing the CollectiveModel and DeviceGroup use.
class InterconnectModel {
 public:
  explicit InterconnectModel(std::size_t devices, LinkParams params = {},
                             Topology topology = Topology::kRing);

  std::size_t devices() const noexcept { return devices_; }
  Topology topology() const noexcept { return topology_; }
  const Link& link() const noexcept { return link_; }

  /// Ring: one outgoing link per device (0 when the group is a single
  /// device — there is no wire to cross).
  std::size_t num_links() const noexcept {
    return devices_ >= 2 ? devices_ : 0;
  }

  /// Id of the link leaving device `from`. In a ring the only neighbor is
  /// (from + 1) % devices; asserts in debug builds when `to` is not it.
  std::size_t link_id(std::size_t from, std::size_t to) const;

  /// Price one transfer on any (identical) link.
  double transfer_us(std::size_t bytes) const noexcept {
    return link_.transfer_us(bytes);
  }

 private:
  std::size_t devices_;
  Link link_;
  Topology topology_;
};

}  // namespace gt::gpusim
