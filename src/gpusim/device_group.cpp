#include "gpusim/device_group.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/discrete_event.hpp"

namespace gt::gpusim {

DeviceGroup::DeviceGroup(DeviceGroupConfig config)
    : ic_(config.devices, config.link, config.topology),
      coll_(ic_),
      totals_(ic_.devices()) {
  stats_.device_busy_us.assign(ic_.devices(), 0.0);
}

void DeviceGroup::add_kernel(std::size_t d, const KernelStats& stats) {
  assert(d < ic_.devices() && "add_kernel: device out of range");
  events_.push_back({d, stats.latency_us, false, stats.name});
  KernelStats& t = totals_[d];
  t.latency_us += stats.latency_us;
  t.flops += stats.flops;
  t.global_bytes += stats.global_bytes;
  t.cache_loaded_bytes += stats.cache_loaded_bytes;
  t.cache_hit_bytes += stats.cache_hit_bytes;
  t.atomic_ops += stats.atomic_ops;
  t.blocks += stats.blocks;
}

void DeviceGroup::add_collective(std::string name,
                                 const CollectiveCost& cost) {
  if (cost.steps == 0) return;  // single device / empty: nothing crossed
  events_.push_back({0, cost.us, true, std::move(name)});
  stats_.comm_us += cost.us;
  stats_.comm_bytes += cost.bytes_on_wire;
  stats_.comm_steps += cost.steps;
  stats_.collectives += 1;
}

CollectiveCost DeviceGroup::all_reduce(std::string name, std::size_t bytes) {
  CollectiveCost cost = coll_.all_reduce(bytes);
  add_collective(std::move(name), cost);
  return cost;
}

CollectiveCost DeviceGroup::all_gather(
    std::string name, const std::vector<std::size_t>& shard_bytes) {
  CollectiveCost cost = coll_.all_gather(shard_bytes);
  add_collective(std::move(name), cost);
  return cost;
}

GroupStats DeviceGroup::finish() {
  const std::size_t n = ic_.devices();
  EventSim sim;
  std::vector<SimResourceId> lanes(n);
  for (std::size_t d = 0; d < n; ++d)
    lanes[d] = sim.add_resource("dev" + std::to_string(d), 1);
  const SimResourceId wire = sim.add_resource("interconnect", 1);

  constexpr SimTaskId kNone = static_cast<SimTaskId>(-1);
  std::vector<SimTaskId> lane_tail(n, kNone);
  SimTaskId barrier_tail = kNone;
  for (const Event& e : events_) {
    std::vector<SimTaskId> deps;
    if (e.collective) {
      // Barrier: wait for every lane's tail (which already transitively
      // orders after the previous barrier).
      for (std::size_t d = 0; d < n; ++d) {
        const SimTaskId t = lane_tail[d];
        if (t != kNone &&
            std::find(deps.begin(), deps.end(), t) == deps.end())
          deps.push_back(t);
      }
      if (deps.empty() && barrier_tail != kNone)
        deps.push_back(barrier_tail);
      barrier_tail =
          sim.add_task(e.name, e.duration_us, wire, std::move(deps));
      for (std::size_t d = 0; d < n; ++d) lane_tail[d] = barrier_tail;
    } else {
      if (lane_tail[e.device] != kNone) deps.push_back(lane_tail[e.device]);
      lane_tail[e.device] =
          sim.add_task(e.name, e.duration_us, lanes[e.device],
                       std::move(deps));
    }
  }

  SimResult result = sim.run();
  stats_.makespan_us = result.makespan;
  for (std::size_t d = 0; d < n; ++d)
    stats_.device_busy_us[d] = result.resource_busy[lanes[d]];
  return stats_;
}

}  // namespace gt::gpusim
