#include "obs/trace.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace gt::obs {

namespace {

using Clock = std::chrono::steady_clock;

// Tracer epoch; initialized when the tracer singleton first exists.
Clock::time_point process_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

thread_local Tracer* tls_owner = nullptr;
thread_local void* tls_buffer = nullptr;

}  // namespace

Tracer& Tracer::global() {
  // Leaked: instrumented code may run during static destruction.
  static Tracer* t = new Tracer();
  return *t;
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   process_epoch())
      .count();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  if (tls_owner == this && tls_buffer != nullptr)
    return *static_cast<ThreadBuffer*>(tls_buffer);
  std::lock_guard lock(registry_mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffers_.back()->tid = next_tid_++;
  tls_owner = this;
  tls_buffer = buffers_.back().get();
  return *buffers_.back();
}

std::uint32_t Tracer::thread_id() { return local_buffer().tid; }

void Tracer::emit(TraceEvent e) {
  ThreadBuffer& buf = local_buffer();
  if (e.pid == kWallPid && e.tid == 0) e.tid = buf.tid;
  std::lock_guard lock(buf.mu);
  buf.events.push_back(std::move(e));
}

double Tracer::advance_virtual(double dur_us) {
  double cur = virtual_now_us_.load(std::memory_order_relaxed);
  while (!virtual_now_us_.compare_exchange_weak(cur, cur + dur_us,
                                                std::memory_order_relaxed)) {
  }
  return cur;
}

void Tracer::set_sim_thread_name(std::uint32_t tid, std::string name) {
  std::lock_guard lock(registry_mu_);
  for (const auto& [t, n] : sim_thread_names_)
    if (t == tid) return;
  sim_thread_names_.emplace_back(tid, std::move(name));
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  std::lock_guard lock(registry_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard inner(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> all;
  std::lock_guard lock(registry_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard inner(buf->mu);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  return all;
}

void json_escape(std::string_view s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void write_event(std::ostream& os, const TraceEvent& e) {
  std::string name, cat;
  json_escape(e.name, name);
  json_escape(e.cat, cat);
  char num[160];
  std::snprintf(num, sizeof num,
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%" PRIu32 ",\"tid\":%" PRIu32,
                e.ts_us, e.dur_us, e.pid, e.tid);
  os << "{\"name\":\"" << name << "\",\"cat\":\""
     << (cat.empty() ? "default" : cat) << "\",\"ph\":\"X\"," << num;
  if (!e.args_json.empty()) os << ",\"args\":{" << e.args_json << "}";
  os << "}";
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  {
    std::lock_guard lock(registry_mu_);
    for (const auto& [tid, name] : sim_thread_names_) {
      if (!first) os << ",\n";
      first = false;
      std::string escaped;
      json_escape(name, escaped);
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kSimPid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << escaped
         << "\"}}";
    }
  }
  for (const TraceEvent& e : snapshot()) {
    if (!first) os << ",\n";
    first = false;
    write_event(os, e);
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f);
  return static_cast<bool>(f);
}

void Tracer::clear() {
  std::lock_guard lock(registry_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard inner(buf->mu);
    buf->events.clear();
  }
  sim_thread_names_.clear();
  virtual_now_us_.store(0.0, std::memory_order_relaxed);
}

// ---- Span -------------------------------------------------------------------

void Span::begin(Tracer& t, const char* name, const char* cat) {
  tracer_ = &t;
  name_ = name;
  cat_ = cat;
  start_us_ = t.now_us();
}

void Span::end() {
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.ts_us = start_us_;
  e.dur_us = tracer_->now_us() - start_us_;
  e.args_json = std::move(args_);
  tracer_->emit(std::move(e));
  tracer_ = nullptr;
}

void Span::arg(const char* key, std::int64_t v) {
  if (tracer_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  json_escape(key, args_);
  args_ += "\":";
  args_ += std::to_string(v);
}

void Span::arg(const char* key, double v) {
  if (tracer_ == nullptr) return;
  char num[48];
  std::snprintf(num, sizeof num, "%.6g", v);
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  json_escape(key, args_);
  args_ += "\":";
  args_ += num;
}

void Span::arg(const char* key, std::string_view v) {
  if (tracer_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  json_escape(key, args_);
  args_ += "\":\"";
  json_escape(v, args_);
  args_ += '"';
}

}  // namespace gt::obs
