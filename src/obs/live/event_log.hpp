// Structured event log: a JSONL sink for the live serving loop.
//
// Post-hoc traces (obs/trace.hpp) answer "where did the time go"; the
// event log answers "what happened, in what causal order, while the
// service was up". Every event is one JSON object on its own line —
// severity, monotonic timestamp (the gt::log clock, so free-text logs and
// structured events agree), small thread id, and a correlation id — and
// the file is flushed after every line, so a crash loses at most the
// event being written.
//
// Correlation ids thread a batch's whole causal chain through the stack:
// GnnService installs a CorrelationScope (cid = batch_index + 1, 0 = none)
// around every attempt of a batch — the pool-side preparation, the
// execute, each retry — so the fault-injection event, the retry events,
// and the eventual degradation of one batch all carry the same cid and
// the chain is a single grep:
//
//   $ grep '"cid":7' telemetry/events.jsonl
//
// Line schema (schema_version 1, stamped in the telemetry.start event):
//
//   {"ts_ms":12.345,"tid":3,"cid":7,"sev":"warn","type":"fault.inject",
//    "msg":"...","fields":{"site":"gpusim.kernel","batch":6}}
//
// `fields` is optional; values are numbers or strings. Event types in use:
// telemetry.start/stop, log (routed gt::log lines), fault.inject,
// service.retry, service.degraded, service.oom, service.epoch,
// gpusim.oom, watchdog.stall, watchdog.recovered, crash.flush,
// telemetry.snapshot.
//
// With no log armed (every run that never asked for telemetry) emit() is
// one relaxed atomic load — cheap enough to leave call sites unguarded.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace gt::obs::live {

inline constexpr int kEventLogSchemaVersion = 1;

enum class Severity : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };
const char* to_string(Severity sev);

/// Ambient correlation id of the calling thread (0 = none).
std::uint64_t current_correlation() noexcept;

/// RAII: installs `cid` as the thread's correlation id; restores the
/// previous value on destruction (nesting safe).
class CorrelationScope {
 public:
  explicit CorrelationScope(std::uint64_t cid) noexcept;
  ~CorrelationScope();
  CorrelationScope(const CorrelationScope&) = delete;
  CorrelationScope& operator=(const CorrelationScope&) = delete;

 private:
  std::uint64_t saved_;
};

/// One event under construction. Builder-style: severity and type are
/// fixed at construction; message and typed fields chain. Rendering is
/// eager (pre-escaped JSON fragments), so a discarded event on a
/// disarmed log costs only the string appends.
class Event {
 public:
  Event(Severity sev, std::string_view type);

  Event& msg(std::string_view m);
  Event& field(const char* key, std::int64_t v);
  Event& field(const char* key, std::uint64_t v);
  Event& field(const char* key, double v);
  Event& field(const char* key, std::string_view v);

  Severity severity() const noexcept { return sev_; }
  /// Render the full JSONL line (no trailing newline); stamps ts/tid/cid
  /// at call time.
  std::string render() const;

 private:
  Severity sev_;
  std::string type_;
  std::string msg_;
  std::string fields_;  // pre-rendered "\"k\":v,..." members, no braces
};

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// The process-wide event log (leaked singleton, like Tracer/Metrics).
  static EventLog& global();

  /// Arm the log: open (truncate) `path`, write the telemetry.start
  /// header event, and route gt::log lines through the sink. False on IO
  /// failure (the log stays disarmed).
  bool open(const std::string& path);

  /// Write telemetry.stop, flush, close, restore the stderr log path.
  void close();

  bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }

  /// Append one event line (fflushed). No-op unless armed.
  void emit(const Event& e);

  void flush();

  std::uint64_t emitted() const;
  std::string path() const;

 private:
  void write_line(const std::string& line);  // caller holds mu_

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t emitted_ = 0;
};

/// Shorthand: build and emit in one call (no-op when disarmed).
void emit_event(Severity sev, std::string_view type, std::string_view msg);

}  // namespace gt::obs::live
