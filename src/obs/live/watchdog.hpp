// StallWatchdog: detects a serving loop that stopped making progress.
//
// The steady-state loop heartbeats once per completed batch. A small
// monitor thread (the only background thread in the telemetry stack — it
// observes, never mutates, so determinism of the run is untouched) checks
// the wall time since the last heartbeat; past `stall_ms` it flips the
// health state to "stalled", bumps the `watchdog.stalls` counter and
// emits a `watchdog.stall` event into the structured event log. The next
// heartbeat flips it back and emits `watchdog.recovered`, so a hung
// worker, a livelocked retry loop, or a deadlocked queue shows up in
// `gt_top` and in the event log with the stall duration attached.
//
// heartbeat() is wait-free (two relaxed stores) and safe from any thread;
// start()/stop() bracket the monitor thread and are idempotent.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace gt::obs::live {

struct WatchdogOptions {
  std::uint64_t stall_ms = 5000;  // silence threshold before declaring a stall
  std::uint64_t poll_ms = 0;      // monitor wakeup period; 0 = stall_ms / 4
};

class StallWatchdog {
 public:
  explicit StallWatchdog(WatchdogOptions opt);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Launch the monitor thread (no-op when already running).
  void start();

  /// Stop and join the monitor thread (no-op when not running).
  void stop();

  /// Record forward progress. Wait-free; callable from any thread.
  void heartbeat() noexcept;

  bool stalled() const noexcept {
    return stalled_.load(std::memory_order_relaxed);
  }
  std::uint64_t heartbeats() const noexcept {
    return beats_.load(std::memory_order_relaxed);
  }
  std::uint64_t stalls_detected() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }
  const WatchdogOptions& options() const noexcept { return opt_; }

 private:
  void run();

  WatchdogOptions opt_;
  std::atomic<std::int64_t> last_beat_ns_{0};  // steady_clock ns
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<bool> stalled_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread monitor_;
};

}  // namespace gt::obs::live
