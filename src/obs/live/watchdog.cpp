#include "obs/live/watchdog.hpp"

#include <algorithm>
#include <chrono>

#include "obs/live/event_log.hpp"
#include "obs/metrics.hpp"

namespace gt::obs::live {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StallWatchdog::StallWatchdog(WatchdogOptions opt) : opt_(opt) {
  if (opt_.stall_ms == 0) opt_.stall_ms = 1;
  if (opt_.poll_ms == 0)
    opt_.poll_ms = std::max<std::uint64_t>(opt_.stall_ms / 4, 1);
}

StallWatchdog::~StallWatchdog() { stop(); }

void StallWatchdog::start() {
  std::lock_guard lock(mu_);
  if (monitor_.joinable()) return;
  stop_requested_ = false;
  last_beat_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  monitor_ = std::thread([this] { run(); });
}

void StallWatchdog::stop() {
  {
    std::lock_guard lock(mu_);
    if (!monitor_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

void StallWatchdog::heartbeat() noexcept {
  last_beat_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  beats_.fetch_add(1, std::memory_order_relaxed);
  if (stalled_.exchange(false, std::memory_order_relaxed)) {
    if (EventLog::global().armed()) {
      Event ev(Severity::kInfo, "watchdog.recovered");
      ev.msg("progress resumed after stall");
      EventLog::global().emit(ev);
    }
  }
}

void StallWatchdog::run() {
  std::unique_lock lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(opt_.poll_ms));
    if (stop_requested_) break;
    const std::int64_t last = last_beat_ns_.load(std::memory_order_relaxed);
    const std::int64_t silence_ns = steady_now_ns() - last;
    const std::int64_t limit_ns =
        static_cast<std::int64_t>(opt_.stall_ms) * 1'000'000;
    if (silence_ns <= limit_ns) continue;
    // Report each stall episode once; heartbeat() clears the latch.
    if (stalled_.exchange(true, std::memory_order_relaxed)) continue;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    metrics().counter("watchdog.stalls").add();
    if (EventLog::global().armed()) {
      Event ev(Severity::kWarn, "watchdog.stall");
      ev.msg("no progress within stall threshold");
      ev.field("silence_ms", static_cast<double>(silence_ns) / 1e6)
          .field("stall_ms", opt_.stall_ms);
      EventLog::global().emit(ev);
    }
  }
}

}  // namespace gt::obs::live
