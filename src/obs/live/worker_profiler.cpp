#include "obs/live/worker_profiler.hpp"

namespace gt::obs::live {

namespace {

thread_local WorkerProfiler* t_owner = nullptr;
thread_local void* t_slot = nullptr;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kPrepare:  return "prepare";
    case Stage::kExecute:  return "execute";
    case Stage::kSample:   return "sample";
    case Stage::kReindex:  return "reindex";
    case Stage::kLookup:   return "lookup";
    case Stage::kTransfer: return "transfer";
    case Stage::kForward:  return "fwp";
    case Stage::kBackward: return "bwp";
  }
  return "?";
}

WorkerProfiler& WorkerProfiler::global() {
  // Leaked: instrumented code may run during static destruction.
  static WorkerProfiler* p = new WorkerProfiler();
  return *p;
}

void WorkerProfiler::enable(bool on) noexcept {
  if (on) epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  enabled_.store(on, std::memory_order_relaxed);
}

WorkerProfiler::Slot& WorkerProfiler::local_slot() noexcept {
  if (t_owner == this && t_slot != nullptr)
    return *static_cast<Slot*>(t_slot);
  // Slots wrap past kMaxSlots: with more threads than slots, two threads
  // share an accumulator — the totals stay exact, only the per-worker
  // attribution coarsens. 64 slots comfortably cover the worker + compute
  // pools this repo ever creates.
  const std::uint32_t idx =
      next_.fetch_add(1, std::memory_order_relaxed) % kMaxSlots;
  Slot& slot = slots_[idx];
  slot.used.store(true, std::memory_order_release);
  t_owner = this;
  t_slot = &slot;
  return slot;
}

void WorkerProfiler::add(Stage s, std::uint64_t ns) noexcept {
  local_slot().ns[static_cast<std::size_t>(s)].fetch_add(
      ns, std::memory_order_relaxed);
}

std::uint64_t WorkerProfiler::wall_since_enable_ns() const noexcept {
  const std::int64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  if (epoch == 0) return 0;
  const std::int64_t now = steady_now_ns();
  return now > epoch ? static_cast<std::uint64_t>(now - epoch) : 0;
}

std::vector<WorkerProfiler::SlotSnapshot> WorkerProfiler::snapshot() const {
  std::vector<SlotSnapshot> out;
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    const Slot& slot = slots_[i];
    if (!slot.used.load(std::memory_order_acquire)) continue;
    SlotSnapshot s;
    s.slot = static_cast<std::uint32_t>(i);
    for (std::size_t j = 0; j < kNumStages; ++j)
      s.stage_ns[j] = slot.ns[j].load(std::memory_order_relaxed);
    // The phase stages partition a worker's busy time; the S/R/K/T/FWP/BWP
    // stages are nested inside them and would double-count.
    s.busy_ns = s.stage_ns[static_cast<std::size_t>(Stage::kPrepare)] +
                s.stage_ns[static_cast<std::size_t>(Stage::kExecute)];
    out.push_back(s);
  }
  return out;
}

std::array<std::uint64_t, kNumStages> WorkerProfiler::stage_totals() const {
  std::array<std::uint64_t, kNumStages> totals{};
  for (const SlotSnapshot& s : snapshot())
    for (std::size_t j = 0; j < kNumStages; ++j) totals[j] += s.stage_ns[j];
  return totals;
}

std::size_t WorkerProfiler::active_slots() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < kMaxSlots; ++i)
    n += slots_[i].used.load(std::memory_order_acquire);
  return n;
}

void WorkerProfiler::reset() noexcept {
  for (std::size_t i = 0; i < kMaxSlots; ++i)
    for (std::size_t j = 0; j < kNumStages; ++j)
      slots_[i].ns[j].store(0, std::memory_order_relaxed);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

}  // namespace gt::obs::live
