#include "obs/live/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "obs/live/event_log.hpp"
#include "obs/live/watchdog.hpp"
#include "obs/live/worker_profiler.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace gt::obs::live {

// ---- TimeSeriesRing ---------------------------------------------------------

TimeSeriesRing::TimeSeriesRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 2)) {
  ring_.resize(capacity_);
}

void TimeSeriesRing::push(SnapshotSample s) {
  if (size_ < capacity_) {
    ring_[(head_ + size_) % capacity_] = std::move(s);
    ++size_;
    return;
  }
  ring_[head_] = std::move(s);
  head_ = (head_ + 1) % capacity_;
}

const SnapshotSample& TimeSeriesRing::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("TimeSeriesRing::at");
  return ring_[(head_ + i) % capacity_];
}

namespace {

const std::uint64_t* find_counter(const SnapshotSample& s,
                                  std::string_view name) {
  const auto it = std::lower_bound(
      s.counters.begin(), s.counters.end(), name,
      [](const auto& kv, std::string_view n) { return kv.first < n; });
  if (it == s.counters.end() || it->first != name) return nullptr;
  return &it->second;
}

}  // namespace

TimeSeriesRing::Rate TimeSeriesRing::rate(std::string_view counter) const {
  Rate r;
  if (size_ < 2) return r;
  const SnapshotSample& prev = at(size_ - 2);
  const SnapshotSample& cur = at(size_ - 1);
  const std::uint64_t* a = find_counter(prev, counter);
  const std::uint64_t* b = find_counter(cur, counter);
  if (a == nullptr || b == nullptr) return r;
  // Counters are monotonic; a reset() between samples shows as a smaller
  // value, which we clamp to zero delta rather than a negative rate.
  const double delta =
      *b >= *a ? static_cast<double>(*b - *a) : 0.0;
  const double dt_sec = (cur.ts_ms - prev.ts_ms) / 1e3;
  const double dbatch = static_cast<double>(
      cur.batches >= prev.batches ? cur.batches - prev.batches : 0);
  r.per_sec = dt_sec > 0.0 ? delta / dt_sec : 0.0;
  r.per_batch = dbatch > 0.0 ? delta / dbatch : 0.0;
  r.known = true;
  return r;
}

// ---- TelemetrySnapshotter ---------------------------------------------------

TelemetrySnapshotter::TelemetrySnapshotter(MetricsRegistry& registry,
                                           SnapshotterOptions opt)
    : registry_(registry), opt_(std::move(opt)),
      ring_(std::max<std::size_t>(opt_.window, 2)) {
  if (opt_.interval == 0) opt_.interval = 1;
  if (opt_.keep == 0) opt_.keep = 1;
  std::error_code ec;
  std::filesystem::create_directories(opt_.dir, ec);
  if (ec)
    throw std::runtime_error("telemetry: cannot create snapshot dir '" +
                             opt_.dir + "': " + ec.message());
}

SnapshotSample TelemetrySnapshotter::capture() {
  SnapshotSample s;
  s.seq = seq_;
  s.ts_ms = gt::log_uptime_ms();
  s.batches = ticks_;
  s.counters = registry_.counter_values();
  s.gauges = registry_.gauge_values();
  return s;
}

bool TelemetrySnapshotter::tick() {
  ++ticks_;
  if (ticks_ % opt_.interval != 0) return false;
  return emit(capture());
}

bool TelemetrySnapshotter::emit_now() { return emit(capture()); }

bool TelemetrySnapshotter::emit(const SnapshotSample& cur) {
  ring_.push(cur);
  const std::string slot_path =
      opt_.dir + "/snapshot-" + std::to_string(seq_ % opt_.keep) + ".json";
  {
    std::ofstream f(slot_path, std::ios::trunc);
    if (!f) return false;
    write_snapshot(ring_.newest(), f);
    if (!f) return false;
  }
  // latest.json is written whole then renamed so a concurrent reader
  // (gt_top) never parses a torn file.
  const std::string tmp_path = opt_.dir + "/latest.json.tmp";
  {
    std::ofstream f(tmp_path, std::ios::trunc);
    if (!f) return false;
    write_snapshot(ring_.newest(), f);
    if (!f) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, opt_.dir + "/latest.json", ec);
  if (ec) return false;
  ++seq_;
  ++emitted_;
  if (EventLog::global().armed()) {
    Event ev(Severity::kDebug, "telemetry.snapshot");
    ev.field("seq", cur.seq).field("batches", cur.batches);
    EventLog::global().emit(ev);
  }
  return true;
}

namespace {

void write_number(std::ostream& os, double v) {
  char num[48];
  std::snprintf(num, sizeof num, "%.6g", v);
  os << num;
}

void write_key(std::ostream& os, const std::string& name) {
  std::string escaped;
  json_escape(name, escaped);
  os << '"' << escaped << "\":";
}

}  // namespace

void TelemetrySnapshotter::write_snapshot(const SnapshotSample& cur,
                                          std::ostream& os) const {
  os << "{\n  \"schema_version\": " << kSnapshotSchemaVersion
     << ",\n  \"seq\": " << cur.seq << ",\n  \"ts_ms\": ";
  write_number(os, cur.ts_ms);
  os << ",\n  \"batches\": " << cur.batches
     << ",\n  \"interval\": " << opt_.interval;

  os << ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : cur.counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(os, name);
    os << v;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : cur.gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(os, name);
    write_number(os, v);
  }

  os << "\n  },\n  \"rates\": {";
  first = true;
  for (const auto& [name, v] : cur.counters) {
    (void)v;
    const TimeSeriesRing::Rate r = ring_.rate(name);
    if (!r.known) continue;
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(os, name);
    os << "{\"per_sec\":";
    write_number(os, r.per_sec);
    os << ",\"per_batch\":";
    write_number(os, r.per_batch);
    os << "}";
  }

  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const MetricsRegistry::HistogramSummary& h :
       registry_.histogram_summaries()) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(os, h.name);
    os << "{\"count\":" << h.count << ",\"mean\":";
    write_number(os, h.mean);
    os << ",\"min\":";
    write_number(os, h.min);
    os << ",\"max\":";
    write_number(os, h.max);
    os << ",\"p50\":";
    write_number(os, h.p50);
    os << ",\"p95\":";
    write_number(os, h.p95);
    os << ",\"p99\":";
    write_number(os, h.p99);
    os << "}";
  }

  // Stage totals + shares. Shares are over the six fine-grained pipeline
  // stages (S/R/K/T/FWP/BWP) — the Fig 12 decomposition — not the two
  // enclosing phases, which would double-count them.
  const WorkerProfiler& prof = WorkerProfiler::global();
  const auto totals = prof.stage_totals();
  double fine_total_ns = 0.0;
  for (std::size_t j = static_cast<std::size_t>(Stage::kSample);
       j < kNumStages; ++j)
    fine_total_ns += static_cast<double>(totals[j]);
  os << "\n  },\n  \"stages\": {";
  for (std::size_t j = 0; j < kNumStages; ++j) {
    os << (j == 0 ? "\n    " : ",\n    ");
    write_key(os, std::string(to_string(static_cast<Stage>(j))) + "_ms");
    write_number(os, static_cast<double>(totals[j]) / 1e6);
  }
  os << ",\n    \"shares\": {";
  for (std::size_t j = static_cast<std::size_t>(Stage::kSample);
       j < kNumStages; ++j) {
    os << (j == static_cast<std::size_t>(Stage::kSample) ? "" : ", ");
    write_key(os, to_string(static_cast<Stage>(j)));
    write_number(os, fine_total_ns > 0.0
                         ? static_cast<double>(totals[j]) / fine_total_ns
                         : 0.0);
  }
  os << "}";

  // Per-worker utilization and skew, merged from the profiler slots.
  const double wall_ns =
      static_cast<double>(prof.wall_since_enable_ns());
  const auto slots = prof.snapshot();
  double busy_sum = 0.0, busy_max = 0.0;
  os << "\n  },\n  \"workers\": [";
  first = true;
  for (const WorkerProfiler::SlotSnapshot& s : slots) {
    const double busy = static_cast<double>(s.busy_ns);
    busy_sum += busy;
    busy_max = std::max(busy_max, busy);
    os << (first ? "\n    " : ",\n    ");
    first = false;
    os << "{\"slot\":" << s.slot << ",\"busy_ms\":";
    write_number(os, busy / 1e6);
    os << ",\"util\":";
    write_number(os, wall_ns > 0.0 ? busy / wall_ns : 0.0);
    for (std::size_t j = 0; j < kNumStages; ++j) {
      os << ",";
      write_key(os, std::string(to_string(static_cast<Stage>(j))) + "_ms");
      write_number(os, static_cast<double>(s.stage_ns[j]) / 1e6);
    }
    os << "}";
  }
  const double busy_mean =
      slots.empty() ? 0.0 : busy_sum / static_cast<double>(slots.size());
  os << "\n  ],\n  \"worker_skew\": ";
  write_number(os, busy_mean > 0.0 ? busy_max / busy_mean : 0.0);

  os << ",\n  \"health\": {";
  if (watchdog_ != nullptr) {
    os << "\"state\":\""
       << (watchdog_->stalled() ? "stalled" : "ok")
       << "\",\"heartbeats\":" << watchdog_->heartbeats()
       << ",\"stalls\":" << watchdog_->stalls_detected();
  } else {
    os << "\"state\":\"ok\",\"heartbeats\":0,\"stalls\":0";
  }
  os << "}\n}\n";
}

}  // namespace gt::obs::live
