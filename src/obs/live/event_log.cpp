#include "obs/live/event_log.hpp"

#include <cinttypes>

#include "obs/trace.hpp"  // json_escape
#include "util/log.hpp"

namespace gt::obs::live {

namespace {

thread_local std::uint64_t t_correlation = 0;

void append_number(std::string& out, double v) {
  char num[48];
  std::snprintf(num, sizeof num, "%.6g", v);
  out += num;
}

/// gt::log sink: free-text lines become type="log" events so both streams
/// share the clock, thread ids, and correlation ids.
void log_sink_adapter(LogLevel level, std::string_view msg) {
  const Severity sev = level == LogLevel::kDebug  ? Severity::kDebug
                       : level == LogLevel::kInfo ? Severity::kInfo
                                                  : Severity::kWarn;
  EventLog::global().emit(Event(sev, "log").msg(msg));
}

}  // namespace

const char* to_string(Severity sev) {
  switch (sev) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo:  return "info";
    case Severity::kWarn:  return "warn";
    case Severity::kError: return "error";
  }
  return "?";
}

std::uint64_t current_correlation() noexcept { return t_correlation; }

CorrelationScope::CorrelationScope(std::uint64_t cid) noexcept
    : saved_(t_correlation) {
  t_correlation = cid;
}

CorrelationScope::~CorrelationScope() { t_correlation = saved_; }

// ---- Event ------------------------------------------------------------------

Event::Event(Severity sev, std::string_view type)
    : sev_(sev), type_(type) {}

Event& Event::msg(std::string_view m) {
  msg_.clear();
  json_escape(m, msg_);
  return *this;
}

Event& Event::field(const char* key, std::int64_t v) {
  if (!fields_.empty()) fields_ += ',';
  fields_ += '"';
  json_escape(key, fields_);
  fields_ += "\":";
  fields_ += std::to_string(v);
  return *this;
}

Event& Event::field(const char* key, std::uint64_t v) {
  if (!fields_.empty()) fields_ += ',';
  fields_ += '"';
  json_escape(key, fields_);
  fields_ += "\":";
  fields_ += std::to_string(v);
  return *this;
}

Event& Event::field(const char* key, double v) {
  if (!fields_.empty()) fields_ += ',';
  fields_ += '"';
  json_escape(key, fields_);
  fields_ += "\":";
  append_number(fields_, v);
  return *this;
}

Event& Event::field(const char* key, std::string_view v) {
  if (!fields_.empty()) fields_ += ',';
  fields_ += '"';
  json_escape(key, fields_);
  fields_ += "\":\"";
  json_escape(v, fields_);
  fields_ += '"';
  return *this;
}

std::string Event::render() const {
  std::string line;
  line.reserve(96 + msg_.size() + fields_.size());
  char head[96];
  std::snprintf(head, sizeof head,
                "{\"ts_ms\":%.3f,\"tid\":%u,\"cid\":%" PRIu64 ",\"sev\":\"%s\"",
                log_uptime_ms(), log_thread_index(), t_correlation,
                to_string(sev_));
  line += head;
  line += ",\"type\":\"";
  json_escape(type_, line);
  line += '"';
  if (!msg_.empty()) {
    line += ",\"msg\":\"";
    line += msg_;  // pre-escaped
    line += '"';
  }
  if (!fields_.empty()) {
    line += ",\"fields\":{";
    line += fields_;
    line += '}';
  }
  line += '}';
  return line;
}

// ---- EventLog ---------------------------------------------------------------

EventLog& EventLog::global() {
  // Leaked: instrumented code (fault checks, logs) may run during static
  // destruction.
  static EventLog* log = new EventLog();
  return *log;
}

bool EventLog::open(const std::string& path) {
  std::lock_guard lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    armed_.store(false, std::memory_order_release);
    return false;
  }
  path_ = path;
  emitted_ = 0;
  armed_.store(true, std::memory_order_release);
  write_line(Event(Severity::kInfo, "telemetry.start")
                 .field("schema_version",
                        static_cast<std::int64_t>(kEventLogSchemaVersion))
                 .render());
  set_log_sink(&log_sink_adapter);
  return true;
}

void EventLog::close() {
  std::lock_guard lock(mu_);
  if (file_ == nullptr) return;
  // Disarm before the final line: a gt::log call from another thread may
  // race the close, and emit() checks the flag before taking mu_.
  armed_.store(false, std::memory_order_release);
  set_log_sink(nullptr);
  write_line(Event(Severity::kInfo, "telemetry.stop")
                 .field("events", emitted_)
                 .render());
  std::fclose(file_);
  file_ = nullptr;
}

void EventLog::emit(const Event& e) {
  if (!armed()) return;
  const std::string line = e.render();
  std::lock_guard lock(mu_);
  if (file_ == nullptr) return;  // closed between the check and the lock
  write_line(line);
}

void EventLog::write_line(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  // Crash-safety contract: every line is durable in the stdio sense the
  // moment emit() returns; an abort mid-run loses nothing already logged.
  std::fflush(file_);
  ++emitted_;
}

void EventLog::flush() {
  std::lock_guard lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

std::uint64_t EventLog::emitted() const {
  std::lock_guard lock(mu_);
  return emitted_;
}

std::string EventLog::path() const {
  std::lock_guard lock(mu_);
  return path_;
}

void emit_event(Severity sev, std::string_view type, std::string_view msg) {
  EventLog& log = EventLog::global();
  if (!log.armed()) return;
  log.emit(Event(sev, type).msg(msg));
}

}  // namespace gt::obs::live
