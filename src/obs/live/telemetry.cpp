#include "obs/live/telemetry.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/live/event_log.hpp"
#include "obs/live/worker_profiler.hpp"
#include "obs/trace.hpp"

namespace gt::obs::live {

namespace {

// The instance the crash path flushes. One live telemetry stack per
// process is the supported shape (the event log is a singleton anyway).
std::atomic<LiveTelemetry*> g_active{nullptr};

std::terminate_handler g_prev_terminate = nullptr;
std::atomic<bool> g_crash_armed{false};
std::atomic<bool> g_crash_flushing{false};

void telemetry_terminate_handler() {
  // Reentrancy latch: a second terminate (e.g. from inside the flush)
  // falls straight through to the previous handler.
  if (!g_crash_flushing.exchange(true)) {
    LiveTelemetry* t = g_active.load(std::memory_order_acquire);
    if (t != nullptr) t->crash_flush("terminate");
  }
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

bool env_u64(const char* name, std::uint64_t& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return false;
  out = parsed;
  return true;
}

}  // namespace

TelemetryOptions TelemetryOptions::from_env() {
  TelemetryOptions opt;
  if (const char* v = std::getenv("GT_TELEMETRY_OUT"))
    if (*v != '\0') opt.out_dir = v;
  std::uint64_t u = 0;
  if (env_u64("GT_TELEMETRY_INTERVAL", u) && u > 0) opt.interval = u;
  if (env_u64("GT_TELEMETRY_WATCHDOG_MS", u)) opt.watchdog_stall_ms = u;
  return opt;
}

LiveTelemetry::LiveTelemetry(TelemetryOptions opt, MetricsRegistry& registry)
    : opt_(std::move(opt)), registry_(registry) {}

LiveTelemetry::~LiveTelemetry() { stop(); }

void LiveTelemetry::start() {
  if (started_ || !opt_.enabled()) return;
  // Snapshotter first: it creates out_dir, which the event log needs.
  SnapshotterOptions sopt;
  sopt.dir = opt_.out_dir;
  sopt.interval = opt_.interval;
  sopt.keep = opt_.keep;
  sopt.window = opt_.window;
  snapshotter_ = std::make_unique<TelemetrySnapshotter>(registry_, sopt);
  EventLog::global().open(opt_.out_dir + "/events.jsonl");
  WorkerProfiler::global().reset();
  WorkerProfiler::global().enable(true);
  if (opt_.watchdog_stall_ms > 0) {
    watchdog_ = std::make_unique<StallWatchdog>(
        WatchdogOptions{opt_.watchdog_stall_ms, 0});
    snapshotter_->set_watchdog(watchdog_.get());
    watchdog_->start();
  }
  started_ = true;
  g_active.store(this, std::memory_order_release);
}

void LiveTelemetry::stop() {
  if (!started_) return;
  g_active.store(nullptr, std::memory_order_release);
  if (watchdog_) watchdog_->stop();
  if (snapshotter_) snapshotter_->emit_now();
  WorkerProfiler::global().enable(false);
  EventLog::global().close();
  started_ = false;
}

void LiveTelemetry::on_batch() {
  if (!started_) return;
  if (watchdog_) watchdog_->heartbeat();
  if (snapshotter_) snapshotter_->tick();
}

void LiveTelemetry::crash_flush(const char* why) noexcept {
  try {
    if (EventLog::global().armed()) {
      Event ev(Severity::kError, "crash.flush");
      ev.msg(why);
      EventLog::global().emit(ev);
      EventLog::global().flush();
    }
    if (snapshotter_) snapshotter_->emit_now();
    // Partial post-mortem dumps: same formats as the normal-exit
    // artifacts, distinct names so a crash never clobbers a good run's
    // files.
    registry_.write_json_file(opt_.out_dir + "/crash-metrics.json");
    Tracer::global().write_chrome_trace_file(opt_.out_dir +
                                             "/crash-trace.json");
  } catch (...) {
    // Crash path: swallow everything; the previous terminate handler
    // still runs.
  }
}

void arm_crash_flush() {
  if (g_crash_armed.exchange(true)) return;
  g_prev_terminate = std::set_terminate(&telemetry_terminate_handler);
}

}  // namespace gt::obs::live
