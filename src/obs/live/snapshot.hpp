// TelemetrySnapshotter: windowed time-series sampling of the metrics
// registry, emitted as schema-versioned snapshot JSON while the service
// runs.
//
// PRs 1-2 made the obs stack post-hoc: metrics/trace/bench JSON exist
// only after the run ends, which is useless for a long-lived serving
// loop. The snapshotter closes that gap without threads or clocks in the
// hot path: the service calls tick() once per completed batch (a virtual
// tick — deterministic, unlike a timer thread), and every `interval`
// ticks the snapshotter samples every counter and gauge into a bounded
// ring buffer, computes rates against the previous window, and writes one
// snapshot file.
//
// File layout under `dir`:
//   snapshot-<seq % keep>.json   rotating set, bounded disk usage
//   latest.json                  newest snapshot (tmp + rename, so a
//                                reader never sees a torn file)
//
// Snapshot schema (kSnapshotSchemaVersion = 1):
//   { "schema_version":1, "seq":N, "ts_ms":T, "batches":B, "interval":I,
//     "counters":{name:value}, "gauges":{name:value},
//     "rates":{name:{"per_sec":r,"per_batch":r}},      // counter deltas
//     "histograms":{name:{count,mean,min,max,p50,p95,p99}},
//     "stages":{"<stage>_ms":t, "shares":{stage:frac}}, // S/R/K/T/FWP/BWP
//     "workers":[{"slot":i,"busy_ms":t,"util":u,"<stage>_ms":t,...}],
//     "worker_skew":s,                                  // max/mean busy
//     "health":{"state":"ok|stalled","heartbeats":N,"stalls":N} }
//
// Memory is bounded by `window` ring entries x the registry size; the
// sampler never allocates into the registry, never mutates a metric, and
// never touches model or kernel state — telemetry-armed runs are
// bit-identical to telemetry-off runs in every priced and trained value.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace gt::obs::live {

class StallWatchdog;

inline constexpr int kSnapshotSchemaVersion = 1;

/// One sampled window: every counter and gauge at a point in time.
struct SnapshotSample {
  std::uint64_t seq = 0;
  double ts_ms = 0.0;        // gt::log clock, shared with the event log
  std::uint64_t batches = 0; // virtual progress coordinate (ticks seen)
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted
  std::vector<std::pair<std::string, double>> gauges;           // sorted
};

/// Fixed-capacity ring of samples, oldest overwritten first. The rate
/// math lives here so it is unit-testable without a registry.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(std::size_t capacity);

  void push(SnapshotSample s);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }

  /// i = 0 is the oldest retained sample.
  const SnapshotSample& at(std::size_t i) const;
  const SnapshotSample& oldest() const { return at(0); }
  const SnapshotSample& newest() const { return at(size_ - 1); }

  struct Rate {
    double per_sec = 0.0;    // counter delta / wall seconds
    double per_batch = 0.0;  // counter delta / batch ticks
    bool known = false;      // needs >= 2 samples and the name in both
  };

  /// Derivative of `counter` between the two newest samples. A counter
  /// absent from either sample (registered mid-run) is unknown, not zero.
  Rate rate(std::string_view counter) const;

 private:
  std::vector<SnapshotSample> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest sample
  std::size_t size_ = 0;
};

struct SnapshotterOptions {
  std::string dir;             // output directory (created on demand)
  std::uint64_t interval = 1;  // batches between snapshots (>= 1)
  std::size_t keep = 16;       // rotating snapshot file count (>= 1)
  std::size_t window = 64;     // ring capacity (>= 2 for rates)
};

class TelemetrySnapshotter {
 public:
  /// Creates `opt.dir` (and parents) if needed. Throws std::runtime_error
  /// when the directory cannot be created.
  TelemetrySnapshotter(MetricsRegistry& registry, SnapshotterOptions opt);

  /// One virtual tick (a completed batch). Samples + emits a snapshot
  /// file every `interval` ticks; returns true when one was emitted.
  bool tick();

  /// Sample + emit unconditionally (final flush, crash path).
  bool emit_now();

  /// Attach the watchdog whose state the "health" section reports.
  void set_watchdog(const StallWatchdog* wd) noexcept { watchdog_ = wd; }

  std::uint64_t snapshots_emitted() const noexcept { return emitted_; }
  std::uint64_t ticks() const noexcept { return ticks_; }
  const TimeSeriesRing& ring() const noexcept { return ring_; }
  const SnapshotterOptions& options() const noexcept { return opt_; }

  /// Render the snapshot for `cur` (already pushed) to `os` — exposed so
  /// tests can validate the JSON without touching the filesystem.
  void write_snapshot(const SnapshotSample& cur, std::ostream& os) const;

 private:
  SnapshotSample capture();
  bool emit(const SnapshotSample& cur);

  MetricsRegistry& registry_;
  SnapshotterOptions opt_;
  TimeSeriesRing ring_;
  const StallWatchdog* watchdog_ = nullptr;
  std::uint64_t ticks_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace gt::obs::live
