// Per-worker stage profiler: lock-free wall-clock accumulation of where
// each thread's time goes, by pipeline stage.
//
// The paper's service-wide scheduling argument (Fig 12) needs stage-level
// utilization *while the workload runs*: which workers are busy, in which
// of the S/R/K/T/FWP/BWP stages, and how skewed the load is across them.
// Each thread owns one of a fixed set of accumulation slots (assigned on
// first use, never freed); recording a stage duration is two relaxed
// atomic adds on the thread's own slot — no locks, no contention, and no
// effect on any priced or trained value, so telemetry-armed runs stay
// bit-identical to telemetry-off runs.
//
// Slots are merged at snapshot/epoch boundaries: the TelemetrySnapshotter
// reads every active slot, computes per-worker busy time, utilization
// (busy / wall since enable) and skew (max busy / mean busy), and exposes
// the aggregates as gauges plus a per-worker array in the snapshot JSON.
//
// Cost model: when the profiler is disabled (the default) a StageTimer is
// one relaxed atomic load; GT_OBS_DISABLE compiles the GT_LIVE_STAGE
// macro away entirely (same contract as GT_OBS_SCOPE).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace gt::obs::live {

enum class Stage : int {
  kPrepare = 0,  // whole prepare_batch (preprocessing) phase
  kExecute,      // whole execute_prepared (device compute + SGD) phase
  kSample,       // S — neighbor sampling
  kReindex,      // R — per-layer reindexing
  kLookup,       // K — embedding gather
  kTransfer,     // T — host-to-device upload (session open)
  kForward,      // FWP kernel issue
  kBackward,     // BWP kernel issue
};
inline constexpr std::size_t kNumStages = 8;

const char* to_string(Stage s);

class WorkerProfiler {
 public:
  static constexpr std::size_t kMaxSlots = 64;

  WorkerProfiler() = default;
  WorkerProfiler(const WorkerProfiler&) = delete;
  WorkerProfiler& operator=(const WorkerProfiler&) = delete;

  /// The process-wide profiler (leaked singleton).
  static WorkerProfiler& global();

  /// Arm/disarm. Arming stamps the epoch for utilization math; disarming
  /// leaves accumulated values readable.
  void enable(bool on) noexcept;
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Add `ns` of stage time to the calling thread's slot. Callers should
  /// gate on enabled() (StageTimer does).
  void add(Stage s, std::uint64_t ns) noexcept;

  /// Wall nanoseconds since the last enable(true) (0 if never enabled).
  std::uint64_t wall_since_enable_ns() const noexcept;

  struct SlotSnapshot {
    std::uint32_t slot = 0;  // stable per-thread index
    std::array<std::uint64_t, kNumStages> stage_ns{};
    std::uint64_t busy_ns = 0;  // sum of the *phase* stages (prepare+execute)
  };

  /// Merged copy of every slot that recorded anything. Slot order is the
  /// thread-registration order, so repeated snapshots line up.
  std::vector<SlotSnapshot> snapshot() const;

  /// Sum of each stage across all slots.
  std::array<std::uint64_t, kNumStages> stage_totals() const;

  std::size_t active_slots() const;

  /// Zero every slot (registrations survive) and restamp the epoch.
  void reset() noexcept;

 private:
  struct Slot {
    std::array<std::atomic<std::uint64_t>, kNumStages> ns{};
    std::atomic<bool> used{false};
  };

  Slot& local_slot() noexcept;

  std::array<Slot, kMaxSlots> slots_{};
  std::atomic<std::uint32_t> next_{0};
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> epoch_ns_{0};  // steady_clock at enable
};

/// RAII wall-clock stage timer on the current thread's slot. One relaxed
/// atomic load when the profiler is disabled.
class StageTimer {
 public:
  explicit StageTimer(Stage s) noexcept {
    WorkerProfiler& p = WorkerProfiler::global();
    if (!p.enabled()) return;
    profiler_ = &p;
    stage_ = s;
    start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    if (profiler_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    profiler_->add(stage_, static_cast<std::uint64_t>(
                               std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(end - start_)
                                   .count()));
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  WorkerProfiler* profiler_ = nullptr;
  Stage stage_ = Stage::kPrepare;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace gt::obs::live

// Scoped stage-timer macro: compiles to nothing under GT_OBS_DISABLE
// (same zero-cost contract as GT_OBS_SCOPE in obs/trace.hpp).
#define GT_LIVE_CONCAT_INNER_(a, b) a##b
#define GT_LIVE_CONCAT_(a, b) GT_LIVE_CONCAT_INNER_(a, b)
#ifndef GT_OBS_DISABLE
#define GT_LIVE_STAGE(stage)                                 \
  ::gt::obs::live::StageTimer GT_LIVE_CONCAT_(gt_live_stage_, \
                                              __LINE__)(     \
      ::gt::obs::live::Stage::stage)
#else
#define GT_LIVE_STAGE(stage) ((void)0)
#endif
