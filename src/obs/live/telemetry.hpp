// LiveTelemetry: one handle that arms the whole live-observability stack
// for a run — structured event log, telemetry snapshotter, per-worker
// stage profiler, stall watchdog, and the crash-safe flush path.
//
// Output layout under `opt.out_dir`:
//   events.jsonl                 structured event log (event_log.hpp)
//   snapshot-<k>.json            rotating snapshot set (snapshot.hpp)
//   latest.json                  newest snapshot, atomically replaced
//   crash-metrics.json           written only by the crash flush path
//   crash-trace.json             written only by the crash flush path
//
// Lifecycle: construct with options (see TelemetryOptions::from_env for
// the GT_TELEMETRY_* environment fallbacks), start() once before the
// serving loop, call on_batch() per completed batch (heartbeat + virtual
// snapshot tick), stop() after the loop (final snapshot + clean close;
// also run by the destructor). arm_crash_flush() chains a
// std::terminate handler so that an uncaught exception or abort still
// leaves a final snapshot, the flushed event log, and partial
// trace/metrics dumps on disk — the post-mortem equivalent of the
// normal-exit artifacts.
//
// None of this touches model parameters or priced kernel stats: a
// telemetry-armed run is bit-identical to a telemetry-off run in every
// trained and priced value (asserted by test_service_telemetry).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/live/snapshot.hpp"
#include "obs/live/watchdog.hpp"
#include "obs/metrics.hpp"

namespace gt::obs::live {

struct TelemetryOptions {
  std::string out_dir;                 // empty = telemetry disabled
  std::uint64_t interval = 1;          // batches per snapshot
  std::size_t keep = 16;               // rotating snapshot files
  std::size_t window = 64;             // time-series ring capacity
  std::uint64_t watchdog_stall_ms = 0; // 0 = watchdog off

  bool enabled() const noexcept { return !out_dir.empty(); }

  /// Options populated from GT_TELEMETRY_OUT, GT_TELEMETRY_INTERVAL and
  /// GT_TELEMETRY_WATCHDOG_MS (unset or unparsable vars keep defaults).
  /// CLI flags should override on top of this.
  static TelemetryOptions from_env();
};

class LiveTelemetry {
 public:
  explicit LiveTelemetry(TelemetryOptions opt,
                         MetricsRegistry& registry = metrics());
  ~LiveTelemetry();

  LiveTelemetry(const LiveTelemetry&) = delete;
  LiveTelemetry& operator=(const LiveTelemetry&) = delete;

  /// Open the event log, enable the worker profiler, start the watchdog
  /// (when configured) and register this instance for crash flushing.
  /// No-op when options().enabled() is false or already started.
  void start();

  /// Final snapshot, watchdog shutdown, event-log close. Idempotent.
  void stop();

  /// Per-completed-batch hook: watchdog heartbeat + snapshot tick.
  void on_batch();

  /// Best-effort flush for abnormal termination: final snapshot, event
  /// log flush, partial metrics + trace dumps under out_dir. Safe to call
  /// from a terminate handler or an unwind path; never throws.
  void crash_flush(const char* why) noexcept;

  bool started() const noexcept { return started_; }
  const TelemetryOptions& options() const noexcept { return opt_; }
  TelemetrySnapshotter* snapshotter() noexcept { return snapshotter_.get(); }
  StallWatchdog* watchdog() noexcept { return watchdog_.get(); }

 private:
  TelemetryOptions opt_;
  MetricsRegistry& registry_;
  std::unique_ptr<TelemetrySnapshotter> snapshotter_;
  std::unique_ptr<StallWatchdog> watchdog_;
  bool started_ = false;
};

/// Install a chained std::terminate handler that crash-flushes the
/// currently started LiveTelemetry (if any) before delegating to the
/// previous handler. Idempotent; cheap enough to call unconditionally.
void arm_crash_flush();

}  // namespace gt::obs::live
