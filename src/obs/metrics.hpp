// Named runtime metrics: counters, gauges, and fixed-bucket histograms.
//
// The registry is the reproduction's stand-in for a Prometheus endpoint:
// instrumented modules (hash table contention, DKP decisions, gpusim
// kernel pricing, PCIe transfers, the service loop) record into named
// metrics, and one JSON dump exposes everything a run did. Metric objects
// are never deallocated once registered, so call sites may cache
// references (e.g. in function-local statics) without lifetime concerns;
// `reset()` zeroes values in place.
//
// Histograms combine atomic fixed-boundary buckets with a mutex-guarded
// OnlineStats (Welford) accumulator for exact mean/stdev/min/max.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace gt::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  /// `bounds` are ascending upper bucket edges; an implicit +inf bucket is
  /// appended (bucket_counts().size() == bounds.size() + 1).
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  std::uint64_t count() const;
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double stdev() const;
  OnlineStats stats() const;

  /// Quantile estimate from the fixed buckets, `q` in [0, 1]: linear
  /// interpolation inside the bucket holding the q-th observation, with
  /// the exact min/max bounding the open-ended edge buckets. Exact when a
  /// bucket holds uniformly spread values; never off by more than one
  /// bucket width otherwise. 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;

  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  mutable std::mutex mu_;
  OnlineStats stats_;
};

/// Exponential 1-2-5 microsecond boundaries spanning 1us .. 10s — the
/// default for every latency-style histogram.
const std::vector<double>& default_latency_bounds_us();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (leaked singleton).
  static MetricsRegistry& global();

  /// Find-or-create. References stay valid for the process lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Zero every registered metric in place (registrations survive).
  void reset();

  // -- Enumeration (live telemetry) ------------------------------------------
  // Sorted name/value copies of the current state. These are the sampling
  // primitives behind the TelemetrySnapshotter's windowed time series;
  // names come back in map (sorted) order so consecutive samples align.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, double>> gauge_values() const;

  struct HistogramSummary {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0, min = 0.0, max = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  std::vector<HistogramSummary> histogram_summaries() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}. Keys are
  /// emitted in sorted order (the registry maps are ordered) and numbers
  /// formatted deterministically, so two dumps of the same state are
  /// byte-identical and dumps from different runs diff cleanly.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace gt::obs
