// Trace-derived performance analysis: turns the tracer's simulated
// S/R/K/T + FWP/BWP timeline (the paper's Fig 20 picture) into numbers —
// critical-path length, per-stage time shares, preprocessing<->compute
// overlap efficiency, and PCIe idle fraction.
//
// The analysis consumes TraceEvents directly (any vector, typically
// `Tracer::snapshot()`), considering only the simulated timeline
// (pid == kSimPid). Wall-clock host spans measure the reproduction's own
// code, not the modeled system, so they are excluded on purpose.
//
// Definitions (all durations in simulated microseconds):
//  * span_us          — max(ts+dur) - min(ts) over all sim events: the
//                       full timeline extent including inter-batch gaps.
//  * critical_path_us — measure of the union of busy intervals across
//                       every lane: the time at least one resource (cpu,
//                       pcie, gpu) is working. span - critical_path is
//                       whole-system idle time.
//  * stage shares     — per-category busy time (sampling, reindex,
//                       lookup, transfer, fwp, bwp) as a fraction of
//                       total busy time. GPU per-kernel detail events are
//                       skipped: they duplicate the FWP/BWP phase spans.
//  * overlap          — intersection of the preprocessing busy-union
//                       (S/R/K/T) with the GPU busy-union (FWP/BWP);
//                       efficiency normalizes by the shorter of the two,
//                       so 1.0 means the smaller side is fully hidden.
//  * pcie_idle        — 1 - pcie busy / span: the fraction of the
//                       timeline the link sits idle (Fig 20's motivation
//                       for service-wide transfer pipelining).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace gt::obs {

/// One (start, end) busy interval on some lane, in simulated us.
struct Interval {
  double begin = 0.0;
  double end = 0.0;
};

/// Sort + merge overlapping/adjacent intervals in place; returns the
/// merged list. Total measure of the result is `interval_measure`.
std::vector<Interval> merge_intervals(std::vector<Interval> xs);
double interval_measure(const std::vector<Interval>& xs);
/// Measure of the intersection of two *merged* interval lists.
double interval_intersection(const std::vector<Interval>& a,
                             const std::vector<Interval>& b);

/// Preprocessing stage order matches pipeline::TaskType (S, R, K, T).
inline constexpr int kNumPreprocStages = 4;
inline constexpr const char* kPreprocStageNames[kNumPreprocStages] = {
    "sampling", "reindex", "lookup", "transfer"};

struct TraceAnalysis {
  std::size_t sim_event_count = 0;

  double span_us = 0.0;
  double critical_path_us = 0.0;

  /// Busy time per preprocessing stage (indexed like kPreprocStageNames)
  /// plus the two GPU phases.
  double stage_us[kNumPreprocStages] = {0.0, 0.0, 0.0, 0.0};
  double fwp_us = 0.0;
  double bwp_us = 0.0;
  /// stage_us[i] / total busy time (0 when the trace is empty).
  double stage_share[kNumPreprocStages] = {0.0, 0.0, 0.0, 0.0};
  double fwp_share = 0.0;
  double bwp_share = 0.0;

  double preproc_busy_us = 0.0;  ///< union measure of S/R/K/T intervals
  double gpu_busy_us = 0.0;      ///< union measure of FWP/BWP intervals
  double overlap_us = 0.0;       ///< intersection of the two unions
  /// overlap_us / min(preproc_busy_us, gpu_busy_us); 0 when either empty.
  double overlap_efficiency = 0.0;

  double pcie_busy_us = 0.0;
  /// 1 - pcie_busy/span; 0 when the trace is empty.
  double pcie_idle_fraction = 0.0;

  /// Analyze the simulated timeline contained in `events`.
  static TraceAnalysis from_events(const std::vector<TraceEvent>& events);
  /// Shorthand: analyze the global tracer's current buffers.
  static TraceAnalysis from_tracer(const Tracer& tracer);

  /// JSON object (no trailing newline): the "trace_analysis" section of a
  /// bench report. Keys are emitted in a fixed sorted order.
  void write_json(std::ostream& os, int indent = 0) const;
};

}  // namespace gt::obs
