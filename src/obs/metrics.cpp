#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/trace.hpp"

namespace gt::obs {

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("histogram bounds must be ascending");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  stats_.add(x);
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mu_);
  return stats_.count();
}
double Histogram::sum() const {
  std::lock_guard lock(mu_);
  return stats_.sum();
}
double Histogram::mean() const {
  std::lock_guard lock(mu_);
  return stats_.mean();
}
double Histogram::min() const {
  std::lock_guard lock(mu_);
  return stats_.min();
}
double Histogram::max() const {
  std::lock_guard lock(mu_);
  return stats_.max();
}
double Histogram::stdev() const {
  std::lock_guard lock(mu_);
  return stats_.stdev();
}
OnlineStats Histogram::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

double Histogram::quantile(double q) const {
  const OnlineStats s = stats();
  const std::uint64_t total = s.count();
  if (total == 0) return 0.0;  // empty histogram reports 0, never NaN
  // A single observation (or an all-identical stream) has every quantile
  // equal to that exact sample — answer directly instead of relying on
  // bucket interpolation to collapse, which mis-reported p99 for the
  // one-request serving runs whenever the sample sat on a bucket edge.
  if (total == 1 || s.min() == s.max()) return s.min();
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return s.min();
  if (q == 1.0) return s.max();
  const auto counts = bucket_counts();
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      // Interpolate inside this bucket; the exact observed min/max bound
      // the open-ended first and +inf buckets.
      double lo = i == 0 ? s.min() : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : s.max();
      lo = std::max(lo, s.min());
      hi = std::min(hi, s.max());
      if (hi < lo) hi = lo;
      const double frac = (target - cum) / static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return s.max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  std::lock_guard lock(mu_);
  stats_ = OnlineStats{};
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1.0; decade <= 1.0e6; decade *= 10.0)
      for (double m : {1.0, 2.0, 5.0}) b.push_back(decade * m);
    return b;
  }();
  return bounds;
}

// ---- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  // Leaked: call sites cache references across the whole process lifetime.
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, default_latency_bounds_us());
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values()
    const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<MetricsRegistry::HistogramSummary>
MetricsRegistry::histogram_summaries() const {
  std::lock_guard lock(mu_);
  std::vector<HistogramSummary> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSummary s;
    s.name = name;
    const OnlineStats st = h->stats();
    s.count = st.count();
    s.mean = st.mean();
    s.min = st.min();
    s.max = st.max();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

void write_number(std::ostream& os, double v) {
  char num[48];
  std::snprintf(num, sizeof num, "%.6g", v);
  os << num;
}

void write_key(std::ostream& os, const std::string& name) {
  std::string escaped;
  json_escape(name, escaped);
  os << "\"" << escaped << "\":";
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(os, name);
    os << c->value();
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(os, name);
    write_number(os, g->value());
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(os, name);
    const OnlineStats s = h->stats();
    os << "{\"count\":" << s.count() << ",\"sum\":";
    write_number(os, s.sum());
    os << ",\"mean\":";
    write_number(os, s.mean());
    os << ",\"min\":";
    write_number(os, s.min());
    os << ",\"max\":";
    write_number(os, s.max());
    os << ",\"stdev\":";
    write_number(os, s.stdev());
    os << ",\"p50\":";
    write_number(os, h->quantile(0.50));
    os << ",\"p95\":";
    write_number(os, h->quantile(0.95));
    os << ",\"p99\":";
    write_number(os, h->quantile(0.99));
    os << ",\"buckets\":[";
    const auto& bounds = h->bounds();
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"le\":";
      if (i < bounds.size())
        write_number(os, bounds[i]);
      else
        os << "\"inf\"";
      os << ",\"count\":" << counts[i] << "}";
    }
    os << "]}";
  }
  os << "\n  }\n}\n";
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  return static_cast<bool>(f);
}

}  // namespace gt::obs
