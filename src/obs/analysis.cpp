#include "obs/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace gt::obs {

std::vector<Interval> merge_intervals(std::vector<Interval> xs) {
  std::erase_if(xs, [](const Interval& x) { return x.end <= x.begin; });
  std::sort(xs.begin(), xs.end(), [](const Interval& a, const Interval& b) {
    return a.begin < b.begin;
  });
  std::vector<Interval> out;
  for (const Interval& x : xs) {
    if (!out.empty() && x.begin <= out.back().end)
      out.back().end = std::max(out.back().end, x.end);
    else
      out.push_back(x);
  }
  return out;
}

double interval_measure(const std::vector<Interval>& xs) {
  double total = 0.0;
  for (const Interval& x : xs) total += x.end - x.begin;
  return total;
}

double interval_intersection(const std::vector<Interval>& a,
                             const std::vector<Interval>& b) {
  double total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].begin, b[j].begin);
    const double hi = std::min(a[i].end, b[j].end);
    if (hi > lo) total += hi - lo;
    if (a[i].end < b[j].end)
      ++i;
    else
      ++j;
  }
  return total;
}

namespace {

int stage_index(std::string_view cat) {
  for (int i = 0; i < kNumPreprocStages; ++i)
    if (cat == kPreprocStageNames[i]) return i;
  return -1;
}

}  // namespace

TraceAnalysis TraceAnalysis::from_events(
    const std::vector<TraceEvent>& events) {
  TraceAnalysis a;
  std::vector<Interval> all, preproc, gpu, pcie;
  double t_min = 0.0, t_max = 0.0;
  for (const TraceEvent& e : events) {
    if (e.pid != kSimPid) continue;  // wall spans measure host code
    const Interval iv{e.ts_us, e.ts_us + e.dur_us};
    if (a.sim_event_count == 0) {
      t_min = iv.begin;
      t_max = iv.end;
    } else {
      t_min = std::min(t_min, iv.begin);
      t_max = std::max(t_max, iv.end);
    }
    ++a.sim_event_count;
    all.push_back(iv);
    if (e.tid == kSimTidPcie) pcie.push_back(iv);
    if (e.tid == kSimTidGpu) {
      // Per-kernel detail events duplicate the FWP/BWP phase spans on the
      // same lane; stage sums count only the phase spans, busy unions
      // absorb the duplication.
      gpu.push_back(iv);
      if (e.cat == "FWP") a.fwp_us += e.dur_us;
      if (e.cat == "BWP") a.bwp_us += e.dur_us;
      continue;
    }
    const int stage = stage_index(e.cat);
    if (stage >= 0) {
      a.stage_us[stage] += e.dur_us;
      preproc.push_back(iv);
    }
  }
  if (a.sim_event_count == 0) return a;

  a.span_us = t_max - t_min;
  a.critical_path_us = interval_measure(merge_intervals(std::move(all)));

  double busy_total = a.fwp_us + a.bwp_us;
  for (double us : a.stage_us) busy_total += us;
  if (busy_total > 0.0) {
    for (int i = 0; i < kNumPreprocStages; ++i)
      a.stage_share[i] = a.stage_us[i] / busy_total;
    a.fwp_share = a.fwp_us / busy_total;
    a.bwp_share = a.bwp_us / busy_total;
  }

  const auto preproc_union = merge_intervals(std::move(preproc));
  const auto gpu_union = merge_intervals(std::move(gpu));
  a.preproc_busy_us = interval_measure(preproc_union);
  a.gpu_busy_us = interval_measure(gpu_union);
  a.overlap_us = interval_intersection(preproc_union, gpu_union);
  // Phases that merely touch (FWP starts exactly where preprocessing
  // ends) can intersect by a few ulps; report that as zero overlap.
  if (a.overlap_us < 1e-9 * std::max(1.0, a.span_us)) a.overlap_us = 0.0;
  const double shorter = std::min(a.preproc_busy_us, a.gpu_busy_us);
  if (shorter > 0.0) a.overlap_efficiency = a.overlap_us / shorter;

  a.pcie_busy_us = interval_measure(merge_intervals(std::move(pcie)));
  if (a.span_us > 0.0)
    a.pcie_idle_fraction = 1.0 - a.pcie_busy_us / a.span_us;
  return a;
}

TraceAnalysis TraceAnalysis::from_tracer(const Tracer& tracer) {
  return from_events(tracer.snapshot());
}

namespace {

void num(std::ostream& os, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

}  // namespace

void TraceAnalysis::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = pad + "  ", in2 = pad + "    ";
  os << "{\n" << in1 << "\"critical_path_us\": ";
  num(os, critical_path_us);
  os << ",\n" << in1 << "\"overlap\": {\n";
  os << in2 << "\"efficiency\": ";
  num(os, overlap_efficiency);
  os << ",\n" << in2 << "\"gpu_busy_us\": ";
  num(os, gpu_busy_us);
  os << ",\n" << in2 << "\"overlap_us\": ";
  num(os, overlap_us);
  os << ",\n" << in2 << "\"preproc_busy_us\": ";
  num(os, preproc_busy_us);
  os << "\n" << in1 << "},\n";
  os << in1 << "\"pcie\": {\n";
  os << in2 << "\"busy_us\": ";
  num(os, pcie_busy_us);
  os << ",\n" << in2 << "\"idle_fraction\": ";
  num(os, pcie_idle_fraction);
  os << "\n" << in1 << "},\n";
  os << in1 << "\"sim_event_count\": " << sim_event_count << ",\n";
  os << in1 << "\"span_us\": ";
  num(os, span_us);
  // Both stage maps list bwp/fwp alongside the four preprocessing stages,
  // keys in sorted order (bwp, fwp, lookup, reindex, sampling, transfer).
  const std::pair<const char*, double> stage_pairs_us[] = {
      {"bwp", bwp_us},          {"fwp", fwp_us},
      {"lookup", stage_us[2]},  {"reindex", stage_us[1]},
      {"sampling", stage_us[0]}, {"transfer", stage_us[3]}};
  const std::pair<const char*, double> stage_pairs_share[] = {
      {"bwp", bwp_share},          {"fwp", fwp_share},
      {"lookup", stage_share[2]},  {"reindex", stage_share[1]},
      {"sampling", stage_share[0]}, {"transfer", stage_share[3]}};
  auto stage_map = [&](const char* key, const auto& pairs) {
    os << ",\n" << in1 << "\"" << key << "\": {";
    bool first = true;
    for (const auto& [name, v] : pairs) {
      os << (first ? "\n" : ",\n") << in2 << "\"" << name << "\": ";
      first = false;
      num(os, v);
    }
    os << "\n" << in1 << "}";
  };
  stage_map("stage_share", stage_pairs_share);
  stage_map("stage_us", stage_pairs_us);
  os << "\n" << pad << "}";
}

}  // namespace gt::obs
