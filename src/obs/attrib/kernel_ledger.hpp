// KernelLedger: per-run kernel-level perf attribution artifact.
//
// bench_diff can say *that* a run got slower and gt_top shows it live, but
// neither explains *why* below the S/R/K/T/FWP/BWP stage shares. The
// ledger closes that gap: while armed it aggregates every priced
// gpusim::KernelStats a framework reports, keyed by (kernel name,
// launch-shape signature, phase), records per-batch stage totals in a form
// whose terms sum *exactly* to the end-to-end latency, and joins the DKP
// cost model's predictions against measured layer latencies. One
// schema-versioned `kernels.json` per run sits next to the existing
// bench/trace/metrics artifacts; tools/gt_explain diffs two of them.
//
// The per-batch identity the attribution relies on (pipeline/plan.hpp's
// end_to_end_us, rearranged; g = fwp + bwp, m = preproc makespan):
//
//   overlap:     e2e = max(m, g) = sum(stage busy) - parallel + g - hidden
//   serial:      e2e = m + g     = sum(stage busy) - parallel + g - 0
//
// where parallel = sum(stage busy) - m  (preprocessing-parallelism savings)
// and   hidden   = m + g - e2e          (compute hidden under preprocessing).
// Both corrections are recorded per batch, so summed totals keep the
// identity exactly and gt_explain's stage deltas sum to the measured e2e
// delta by construction.
//
// Arming: GT_KERNEL_LEDGER_OUT / ServiceOptions::kernel_ledger_out /
// --kernel-ledger-out. Off (the default), record sites skip all work
// behind one relaxed atomic load, so armed-off runs stay bit-identical —
// and the call sites compile away entirely under GT_OBS_DISABLE.
// Process-wide singleton like Tracer/MetricsRegistry: one ledger per
// process, re-arming resets the accumulation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace gt::obs::attrib {

inline constexpr int kKernelLedgerSchemaVersion = 1;

/// One profile entry, pre-stringified by the recording site (frameworks
/// own the gpusim types; obs deliberately does not link against them).
struct KernelRecord {
  std::string name;
  std::string category;  // gpusim::to_string(KernelCategory)
  std::string phase;     // gpusim::to_string(KernelPhase): fwd/bwd/other
  std::size_t blocks = 0;
  double latency_us = 0.0;
  std::uint64_t flops = 0;
  std::size_t global_bytes = 0;
  /// Device lane of a multi-device (sharded) run; -1 = single device.
  /// Keys a separate kernel class and emits a "device" JSON column, so
  /// single-device artifacts stay byte-identical.
  int device = -1;
};

/// Stage totals of one *reported ok* batch, straight off the RunReport and
/// its PreprocSchedule. stage_busy_us is indexed by pipeline::TaskType
/// order (sampling, reindex, lookup, transfer).
struct BatchTotals {
  double end_to_end_us = 0.0;
  double makespan_us = 0.0;
  double stage_busy_us[4] = {0.0, 0.0, 0.0, 0.0};
  double fwp_us = 0.0;
  double bwp_us = 0.0;
};

/// Launch-shape signature: power-of-two bucket of the block count
/// ("b2^10" = blocks in [512, 1024), "b0" for synthetic charges with no
/// grid). Coarse on purpose — batch-to-batch sampling jitter must not
/// split one logical kernel class into hundreds of singleton keys.
std::string shape_signature(std::size_t blocks);

class KernelLedger {
 public:
  KernelLedger() = default;
  KernelLedger(const KernelLedger&) = delete;
  KernelLedger& operator=(const KernelLedger&) = delete;

  /// The process-wide ledger (leaked singleton, like Tracer/Metrics).
  static KernelLedger& global();

  /// Arm the ledger and remember where write_json_file() should dump.
  /// Resets any previous accumulation.
  void arm(std::string out_path);
  /// Disarm and drop the accumulation (the artifact should be written
  /// first; see GnnService's destructor / bench_util's ObsHook).
  void disarm();
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }
  std::string out_path() const;

  /// Drop all recorded data (armed state and out path survive).
  void clear();

  /// Record one ok batch: stage totals + the device's kernel profile.
  /// No-op while disarmed.
  void record_batch(const BatchTotals& totals,
                    const std::vector<KernelRecord>& kernels);

  /// Join one DKP sample against the model's prediction. `class_key`
  /// identifies the placement case (e.g. "fwd/aggregation-first/L0");
  /// `fitted` marks samples predicted by fitted coefficients — only those
  /// enter the residual distribution. No-op while disarmed.
  void record_prediction(const std::string& class_key, double predicted_us,
                         double measured_us, bool fitted);

  std::size_t batch_count() const;
  std::size_t kernel_class_count() const;

  /// Dump the schema-versioned kernels.json. Keys sorted, fixed float
  /// format — byte-identical for identical accumulations.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;
  /// Write to the path given at arm() time; false when disarmed/IO error.
  bool write_json_file() const;

 private:
  struct KernelClass {
    std::string name, category, phase, shape;
    int device = -1;
    std::size_t blocks_min = 0, blocks_max = 0;
    std::uint64_t launches = 0;
    double total_us = 0.0;
    double flops = 0.0;         // doubles: JSON numbers, huge counts
    double global_bytes = 0.0;
  };
  struct CostClass {
    std::uint64_t samples = 0;
    std::uint64_t fitted_samples = 0;
    double predicted_us = 0.0;
    double measured_us = 0.0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::string out_path_;
  std::size_t batches_ = 0;
  BatchTotals sums_;                   // across batches
  double preproc_parallel_us_ = 0.0;   // sum of per-batch parallel terms
  double overlap_hidden_us_ = 0.0;     // sum of per-batch hidden terms
  std::map<std::string, KernelClass, std::less<>> kernels_;
  std::map<std::string, CostClass, std::less<>> costmodel_;
  std::vector<double> residual_pcts_;  // fitted samples only
};

/// Drift threshold for the live costmodel.* surface: GT_COSTMODEL_DRIFT_PCT
/// (read once), default 25 — roughly double the paper's reported 12.5%
/// prediction error.
double costmodel_drift_threshold_pct();

/// Publish the cost model's residual distribution to live telemetry:
/// costmodel.residual.p50 / costmodel.residual.p95 gauges every call, and
/// — when p95 crosses the drift threshold — a one-shot costmodel.drift
/// event + counter (latched until the residuals recover, so a drifting
/// model logs one event, not one per batch). Works with or without the
/// ledger armed; never touches trained or priced values.
void observe_costmodel_residuals(std::size_t samples, double p50_pct,
                                 double p95_pct);

}  // namespace gt::obs::attrib
