// Differential analysis over two kernel-ledger artifacts.
//
// gt_explain answers "why did this run get slower" by diffing two
// kernels.json files (KernelLedger output). Totals are normalized to
// per-batch before differencing, so a 64-batch baseline compares cleanly
// against a 48-batch current run. The stage-level attribution reuses the
// ledger's exact identity:
//
//   e2e = sampling + reindex + lookup + transfer - preproc_parallel
//         + fwp + bwp - overlap_hidden
//
// so the eight stage deltas sum to the measured end-to-end delta *by
// construction* — no residual bucket, no unexplained remainder. Below the
// stage level, per-kernel-class deltas rank which kernels moved; their sum
// equals delta(fwp) + delta(bwp) up to kernels recorded outside FWP/BWP
// (phase "other" kernels are shown but flagged).
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace gt::obs::attrib {

/// One parsed kernels.json, per-batch-normalized views included.
struct LedgerData {
  std::size_t batches = 0;
  // Raw sums straight from totals{} (microseconds).
  double end_to_end_us = 0.0;
  double makespan_us = 0.0;
  double stage_us[4] = {0.0, 0.0, 0.0, 0.0};  // sampling/reindex/lookup/transfer
  double preproc_parallel_us = 0.0;
  double fwp_us = 0.0;
  double bwp_us = 0.0;
  double overlap_hidden_us = 0.0;

  struct Kernel {
    std::string phase;     // fwd / bwd / other
    std::string category;
    double total_us = 0.0;
    double launches = 0.0;
  };
  std::map<std::string, Kernel, std::less<>> kernels;  // class key -> sums

  double residual_p50_pct = 0.0;
  double residual_p95_pct = 0.0;
  std::size_t residual_samples = 0;

  /// Per-batch normalizer (>= 1 even for an empty artifact, so the
  /// normalized views are always finite).
  double per_batch(double sum_us) const noexcept;

  /// Parse a kernels.json; false + message on IO/parse/schema mismatch.
  static bool load(const std::string& path, LedgerData* out,
                   std::string* error);
};

/// One stage term of the attribution (per-batch microseconds).
struct StageDelta {
  std::string name;
  double base_us = 0.0;
  double cur_us = 0.0;
  double delta_us = 0.0;  // cur - base; negative terms *reduce* e2e
};

/// One kernel class's movement (per-batch microseconds).
struct KernelDelta {
  std::string key;
  std::string phase;
  double base_us = 0.0;
  double cur_us = 0.0;
  double delta_us = 0.0;
};

struct Attribution {
  double base_e2e_us = 0.0;  // per batch
  double cur_e2e_us = 0.0;
  double delta_e2e_us = 0.0;

  /// The eight identity terms, fixed order: sampling, reindex, lookup,
  /// transfer, preproc_parallel (negated), fwp, bwp, overlap_hidden
  /// (negated). sum(delta_us) == delta_e2e_us exactly.
  std::vector<StageDelta> stages;
  /// Sum of stages[i].delta_us — retained for the invariant check.
  double stage_delta_sum_us = 0.0;

  /// Every kernel class present in either run, sorted by |delta| desc.
  std::vector<KernelDelta> kernels;
  /// Sum over fwd+bwd kernel deltas; equals delta(fwp)+delta(bwp).
  double kernel_delta_sum_us = 0.0;

  double base_residual_p95_pct = 0.0;
  double cur_residual_p95_pct = 0.0;
};

/// Diff two loaded ledgers (per-batch normalized).
Attribution attribute(const LedgerData& base, const LedgerData& cur);

/// Human-readable report: header, stage table, top kernel classes,
/// cost-model drift note, and the sums-to-total check line.
void write_text(const Attribution& a, std::ostream& os, std::size_t top_n);

/// Compact top-N kernel attribution (bench_diff appends this under a
/// regression verdict). One line per class.
void write_top_kernels(const Attribution& a, std::ostream& os,
                       std::size_t top_n);

/// Machine-readable form of the full attribution.
void write_json(const Attribution& a, std::ostream& os);

/// Deterministic self-check fixture: copy `base` with its largest kernel
/// class scaled by 1.5x, the extra time added to that class's phase total
/// and to end_to_end (the identity is preserved by construction).
LedgerData perturb_largest_kernel(const LedgerData& base);

/// Self-test on one artifact: identical-pair attribution must be ~0 and
/// the perturbed pair must rank the scaled class first with the stage sum
/// matching the e2e delta within `tol_rel`. Returns true on pass; writes
/// a pass/fail narrative to `os`.
bool run_self_test(const LedgerData& base, std::ostream& os,
                   double tol_rel = 0.01);

/// CLI core for tools/gt_explain. argv-style args (no program name).
/// Exit codes: 0 analysis ok (or self-test pass), 1 self-test failure or
/// violated sum invariant, 2 usage/IO error.
int run_gt_explain(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

}  // namespace gt::obs::attrib
