#include "obs/attrib/explain.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/attrib/kernel_ledger.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace gt::obs::attrib {

namespace {

void write_num(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

void write_str(std::ostream& os, std::string_view s) {
  std::string out;
  json_escape(s, out);
  os << '"' << out << '"';
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string fmt_signed(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%+.3f", v);
  return buf;
}

constexpr const char* kStageKeys[4] = {"sampling_us", "reindex_us",
                                       "lookup_us", "transfer_us"};

}  // namespace

double LedgerData::per_batch(double sum_us) const noexcept {
  return sum_us / static_cast<double>(std::max<std::size_t>(batches, 1));
}

bool LedgerData::load(const std::string& path, LedgerData* out,
                      std::string* error) {
  JsonValue doc;
  std::string parse_err;
  if (!json_parse_file(path, &doc, &parse_err)) {
    if (error) *error = path + ": " + parse_err;
    return false;
  }
  const double ver = doc.number_at("schema_version", -1.0);
  if (static_cast<int>(ver) != kKernelLedgerSchemaVersion) {
    if (error)
      *error = path + ": unsupported kernels.json schema_version " +
               std::to_string(static_cast<int>(ver));
    return false;
  }
  LedgerData d;
  const JsonValue& totals = doc.at("totals");
  if (!totals.is_object()) {
    if (error) *error = path + ": missing totals object";
    return false;
  }
  d.batches = static_cast<std::size_t>(totals.number_at("batches"));
  d.end_to_end_us = totals.number_at("end_to_end_us");
  d.makespan_us = totals.number_at("makespan_us");
  for (int i = 0; i < 4; ++i) d.stage_us[i] = totals.number_at(kStageKeys[i]);
  d.preproc_parallel_us = totals.number_at("preproc_parallel_us");
  d.fwp_us = totals.number_at("fwp_us");
  d.bwp_us = totals.number_at("bwp_us");
  d.overlap_hidden_us = totals.number_at("overlap_hidden_us");

  for (const auto& [key, v] : doc.at("kernels").as_object()) {
    LedgerData::Kernel k;
    k.phase = v.string_at("phase");
    k.category = v.string_at("category");
    k.total_us = v.number_at("total_us");
    k.launches = v.number_at("launches");
    d.kernels.emplace(key, std::move(k));
  }

  const JsonValue& residual = doc.at("costmodel").at("residual");
  d.residual_samples =
      static_cast<std::size_t>(residual.number_at("samples"));
  d.residual_p50_pct = residual.number_at("p50_pct");
  d.residual_p95_pct = residual.number_at("p95_pct");
  *out = std::move(d);
  return true;
}

Attribution attribute(const LedgerData& base, const LedgerData& cur) {
  Attribution a;
  a.base_e2e_us = base.per_batch(base.end_to_end_us);
  a.cur_e2e_us = cur.per_batch(cur.end_to_end_us);
  a.delta_e2e_us = a.cur_e2e_us - a.base_e2e_us;

  // The eight identity terms. preproc_parallel and overlap_hidden enter
  // the identity negated (they are *savings*), so they are stored signed:
  // a positive delta on any row always means "this made e2e slower".
  struct Term {
    const char* name;
    double sign;
    double base;
    double cur;
  };
  const Term terms[8] = {
      {"sampling", 1.0, base.stage_us[0], cur.stage_us[0]},
      {"reindex", 1.0, base.stage_us[1], cur.stage_us[1]},
      {"lookup", 1.0, base.stage_us[2], cur.stage_us[2]},
      {"transfer", 1.0, base.stage_us[3], cur.stage_us[3]},
      {"preproc_parallel", -1.0, base.preproc_parallel_us,
       cur.preproc_parallel_us},
      {"fwp", 1.0, base.fwp_us, cur.fwp_us},
      {"bwp", 1.0, base.bwp_us, cur.bwp_us},
      {"overlap_hidden", -1.0, base.overlap_hidden_us,
       cur.overlap_hidden_us},
  };
  for (const Term& t : terms) {
    StageDelta s;
    s.name = t.name;
    s.base_us = t.sign * base.per_batch(t.base);
    s.cur_us = t.sign * cur.per_batch(t.cur);
    s.delta_us = s.cur_us - s.base_us;
    a.stage_delta_sum_us += s.delta_us;
    a.stages.push_back(std::move(s));
  }

  // Kernel classes: union of both runs' keys, per-batch normalized.
  for (const auto& [key, k] : base.kernels) {
    KernelDelta d;
    d.key = key;
    d.phase = k.phase;
    d.base_us = base.per_batch(k.total_us);
    auto it = cur.kernels.find(key);
    if (it != cur.kernels.end()) d.cur_us = cur.per_batch(it->second.total_us);
    d.delta_us = d.cur_us - d.base_us;
    a.kernels.push_back(std::move(d));
  }
  for (const auto& [key, k] : cur.kernels) {
    if (base.kernels.count(key)) continue;
    KernelDelta d;
    d.key = key;
    d.phase = k.phase;
    d.cur_us = cur.per_batch(k.total_us);
    d.delta_us = d.cur_us;
    a.kernels.push_back(std::move(d));
  }
  std::sort(a.kernels.begin(), a.kernels.end(),
            [](const KernelDelta& x, const KernelDelta& y) {
              if (std::abs(x.delta_us) != std::abs(y.delta_us))
                return std::abs(x.delta_us) > std::abs(y.delta_us);
              return x.key < y.key;  // deterministic tie-break
            });
  for (const KernelDelta& d : a.kernels)
    if (d.phase == "fwd" || d.phase == "bwd") a.kernel_delta_sum_us += d.delta_us;

  a.base_residual_p95_pct = base.residual_p95_pct;
  a.cur_residual_p95_pct = cur.residual_p95_pct;
  return a;
}

void write_top_kernels(const Attribution& a, std::ostream& os,
                       std::size_t top_n) {
  std::size_t shown = 0;
  for (const KernelDelta& k : a.kernels) {
    if (shown >= top_n) break;
    if (k.delta_us == 0.0) continue;
    ++shown;
    os << "  " << shown << ". " << k.key << " [" << k.phase << "] "
       << fmt_signed(k.delta_us) << " us/batch (" << fmt(k.base_us) << " -> "
       << fmt(k.cur_us) << ")\n";
  }
  if (shown == 0) os << "  (no kernel-class movement)\n";
}

void write_text(const Attribution& a, std::ostream& os, std::size_t top_n) {
  os << "gt_explain: end-to-end " << fmt(a.base_e2e_us) << " -> "
     << fmt(a.cur_e2e_us) << " us/batch (" << fmt_signed(a.delta_e2e_us);
  if (a.base_e2e_us > 0.0)
    os << ", " << fmt_signed(100.0 * a.delta_e2e_us / a.base_e2e_us) << "%";
  os << ")\n\n";
  os << "Stage attribution (signed terms; positive delta = slower; the\n"
        "parallelism/overlap savings terms enter negated):\n";
  os << "  stage              base us/b     cur us/b    delta us/b\n";
  for (const StageDelta& s : a.stages) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-16s %12.3f %12.3f %+13.3f\n",
                  s.name.c_str(), s.base_us, s.cur_us, s.delta_us);
    os << line;
  }
  char sum_line[160];
  std::snprintf(sum_line, sizeof(sum_line),
                "  %-16s %12s %12s %+13.3f  (e2e delta %+.3f)\n", "sum", "",
                "", a.stage_delta_sum_us, a.delta_e2e_us);
  os << sum_line;

  os << "\nTop kernel classes by |delta| (fwd+bwd kernel sum "
     << fmt_signed(a.kernel_delta_sum_us) << " us/batch = delta fwp+bwp):\n";
  write_top_kernels(a, os, top_n);

  os << "\nCost-model residual p95: " << fmt(a.base_residual_p95_pct)
     << "% -> " << fmt(a.cur_residual_p95_pct) << "%";
  if (a.cur_residual_p95_pct > a.base_residual_p95_pct &&
      a.cur_residual_p95_pct > costmodel_drift_threshold_pct()) {
    os << "  ** drift: above " << fmt(costmodel_drift_threshold_pct())
       << "% threshold — re-fit or inspect the DKP model **";
  }
  os << "\n";
}

void write_json(const Attribution& a, std::ostream& os) {
  os << "{\n  \"schema_version\": 1,\n";
  os << "  \"end_to_end_us_per_batch\": {\"base\": ";
  write_num(os, a.base_e2e_us);
  os << ", \"current\": ";
  write_num(os, a.cur_e2e_us);
  os << ", \"delta\": ";
  write_num(os, a.delta_e2e_us);
  os << "},\n  \"stage_delta_sum_us\": ";
  write_num(os, a.stage_delta_sum_us);
  os << ",\n  \"kernel_delta_sum_us\": ";
  write_num(os, a.kernel_delta_sum_us);
  os << ",\n  \"stages\": [";
  bool first = true;
  for (const StageDelta& s : a.stages) {
    os << (first ? "\n" : ",\n") << "    {\"name\": ";
    first = false;
    write_str(os, s.name);
    os << ", \"base_us\": ";
    write_num(os, s.base_us);
    os << ", \"current_us\": ";
    write_num(os, s.cur_us);
    os << ", \"delta_us\": ";
    write_num(os, s.delta_us);
    os << "}";
  }
  os << "\n  ],\n  \"kernels\": [";
  first = true;
  for (const KernelDelta& k : a.kernels) {
    os << (first ? "\n" : ",\n") << "    {\"key\": ";
    first = false;
    write_str(os, k.key);
    os << ", \"phase\": ";
    write_str(os, k.phase);
    os << ", \"base_us\": ";
    write_num(os, k.base_us);
    os << ", \"current_us\": ";
    write_num(os, k.cur_us);
    os << ", \"delta_us\": ";
    write_num(os, k.delta_us);
    os << "}";
  }
  os << (first ? "]" : "\n  ]") << ",\n";
  os << "  \"costmodel_residual_p95_pct\": {\"base\": ";
  write_num(os, a.base_residual_p95_pct);
  os << ", \"current\": ";
  write_num(os, a.cur_residual_p95_pct);
  os << "}\n}\n";
}

LedgerData perturb_largest_kernel(const LedgerData& base) {
  LedgerData p = base;
  // Scale the largest fwd/bwd class by 1.5x; the extra time flows into
  // that class's phase total and into end_to_end, so the identity holds
  // on the perturbed artifact by construction.
  auto largest = p.kernels.end();
  for (auto it = p.kernels.begin(); it != p.kernels.end(); ++it) {
    if (it->second.phase != "fwd" && it->second.phase != "bwd") continue;
    if (largest == p.kernels.end() ||
        it->second.total_us > largest->second.total_us)
      largest = it;
  }
  if (largest == p.kernels.end()) return p;
  const double extra = 0.5 * largest->second.total_us;
  largest->second.total_us += extra;
  if (largest->second.phase == "fwd")
    p.fwp_us += extra;
  else
    p.bwp_us += extra;
  p.end_to_end_us += extra;
  return p;
}

bool run_self_test(const LedgerData& base, std::ostream& os,
                   double tol_rel) {
  bool ok = true;
  auto check = [&](bool cond, const std::string& what) {
    os << (cond ? "  PASS " : "  FAIL ") << what << "\n";
    ok = ok && cond;
  };

  os << "gt_explain self-test (" << base.batches << " batches, "
     << base.kernels.size() << " kernel classes)\n";

  // 1. Identical pair: everything must cancel to (numerically) zero.
  const Attribution same = attribute(base, base);
  const double eps = 1e-9 * std::max(1.0, same.base_e2e_us);
  check(std::abs(same.delta_e2e_us) <= eps, "identical pair: e2e delta ~ 0");
  check(std::abs(same.stage_delta_sum_us) <= eps,
        "identical pair: stage sum ~ 0");

  // 2. Identity on the artifact itself: the stored totals must satisfy
  // e2e = sum(stages) - parallel + fwp + bwp - hidden.
  double busy = 0.0;
  for (double s : base.stage_us) busy += s;
  const double identity = busy - base.preproc_parallel_us + base.fwp_us +
                          base.bwp_us - base.overlap_hidden_us;
  check(std::abs(identity - base.end_to_end_us) <=
            tol_rel * std::max(1.0, base.end_to_end_us),
        "artifact totals satisfy the attribution identity");

  // 3. Perturbed pair: the scaled class must rank first and the stage sum
  // must equal the measured e2e delta within tolerance.
  const LedgerData perturbed = perturb_largest_kernel(base);
  if (perturbed.end_to_end_us == base.end_to_end_us) {
    check(false, "fixture has a fwd/bwd kernel class to perturb");
    return ok;
  }
  const Attribution diff = attribute(base, perturbed);
  const double expect =
      perturbed.per_batch(perturbed.end_to_end_us) -
      base.per_batch(base.end_to_end_us);
  check(diff.delta_e2e_us > 0.0, "perturbed pair: regression detected");
  check(std::abs(diff.stage_delta_sum_us - diff.delta_e2e_us) <=
            tol_rel * std::max(std::abs(diff.delta_e2e_us), 1e-9),
        "perturbed pair: stage deltas sum to e2e delta (within 1%)");
  check(std::abs(diff.kernel_delta_sum_us - expect) <=
            tol_rel * std::max(std::abs(expect), 1e-9),
        "perturbed pair: kernel deltas account for the regression");
  check(!diff.kernels.empty() && diff.kernels.front().delta_us > 0.0,
        "perturbed pair: top-ranked class is the injected regression");

  os << (ok ? "self-test PASSED\n" : "self-test FAILED\n");
  return ok;
}

int run_gt_explain(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  const auto usage = [&](std::ostream& os) {
    os << "usage: gt_explain [--top=N] [--json] <baseline-kernels.json> "
          "<current-kernels.json>\n"
          "       gt_explain --self-test <kernels.json>\n"
          "\n"
          "Attributes the end-to-end latency delta between two runs to\n"
          "pipeline stages and kernel classes using KernelLedger artifacts\n"
          "(GT_KERNEL_LEDGER_OUT / --kernel-ledger-out). Exit 0 on a\n"
          "consistent analysis, 1 on self-test failure or a violated\n"
          "sums-to-total invariant, 2 on usage/IO errors.\n";
  };

  bool json = false, self_test = false;
  std::size_t top_n = 10;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      top_n = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 6)));
    } else if (arg == "--help" || arg == "-h") {
      usage(out);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      err << "gt_explain: unknown flag " << arg << "\n";
      usage(err);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (self_test) {
    if (paths.size() != 1) {
      err << "gt_explain: --self-test takes exactly one kernels.json\n";
      usage(err);
      return 2;
    }
    LedgerData base;
    std::string load_err;
    if (!LedgerData::load(paths[0], &base, &load_err)) {
      err << "gt_explain: " << load_err << "\n";
      return 2;
    }
    return run_self_test(base, out) ? 0 : 1;
  }

  if (paths.size() != 2) {
    err << "gt_explain: expected exactly two kernels.json paths\n";
    usage(err);
    return 2;
  }
  LedgerData base, cur;
  std::string load_err;
  if (!LedgerData::load(paths[0], &base, &load_err) ||
      !LedgerData::load(paths[1], &cur, &load_err)) {
    err << "gt_explain: " << load_err << "\n";
    return 2;
  }
  const Attribution a = attribute(base, cur);
  if (json)
    write_json(a, out);
  else
    write_text(a, out, top_n);
  // The invariant is structural; a violation means a malformed or
  // hand-edited artifact, which the caller should not trust.
  if (std::abs(a.stage_delta_sum_us - a.delta_e2e_us) >
      0.01 * std::max(std::abs(a.delta_e2e_us), 1e-9)) {
    err << "gt_explain: stage deltas do not sum to the e2e delta — "
           "artifact totals are inconsistent\n";
    return 1;
  }
  return 0;
}

}  // namespace gt::obs::attrib
