#include "obs/attrib/kernel_ledger.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/live/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gt::obs::attrib {

namespace {

// %.10g: wide enough that re-parsed sums reproduce the invariant checks to
// ~1e-6 relative, still a canonical shortest-ish form so identical
// accumulations serialize byte-identically (house style elsewhere is %.6g;
// the ledger is the one artifact whose numbers get *summed* downstream).
void write_num(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  os << buf;
}

void write_str(std::ostream& os, std::string_view s) {
  std::string out;
  json_escape(s, out);
  os << '"' << out << '"';
}

constexpr const char* kStageNames[4] = {"sampling", "reindex", "lookup",
                                        "transfer"};

}  // namespace

std::string shape_signature(std::size_t blocks) {
  if (blocks == 0) return "b0";
  unsigned k = 0;
  std::size_t edge = 1;  // bucket upper bound 2^k (inclusive-exclusive of 2x)
  while (edge < blocks) {
    edge <<= 1;
    ++k;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "b2^%u", k);
  return buf;
}

KernelLedger& KernelLedger::global() {
  static KernelLedger* ledger = new KernelLedger();  // leaked on purpose
  return *ledger;
}

void KernelLedger::arm(std::string out_path) {
  std::lock_guard<std::mutex> lock(mu_);
  out_path_ = std::move(out_path);
  batches_ = 0;
  sums_ = BatchTotals{};
  preproc_parallel_us_ = 0.0;
  overlap_hidden_us_ = 0.0;
  kernels_.clear();
  costmodel_.clear();
  residual_pcts_.clear();
  armed_.store(true, std::memory_order_release);
}

void KernelLedger::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  out_path_.clear();
  batches_ = 0;
  sums_ = BatchTotals{};
  preproc_parallel_us_ = 0.0;
  overlap_hidden_us_ = 0.0;
  kernels_.clear();
  costmodel_.clear();
  residual_pcts_.clear();
}

std::string KernelLedger::out_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return out_path_;
}

void KernelLedger::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  batches_ = 0;
  sums_ = BatchTotals{};
  preproc_parallel_us_ = 0.0;
  overlap_hidden_us_ = 0.0;
  kernels_.clear();
  costmodel_.clear();
  residual_pcts_.clear();
}

void KernelLedger::record_batch(const BatchTotals& totals,
                                const std::vector<KernelRecord>& kernels) {
  if (!armed()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  sums_.end_to_end_us += totals.end_to_end_us;
  sums_.makespan_us += totals.makespan_us;
  double busy = 0.0;
  for (int i = 0; i < 4; ++i) {
    sums_.stage_busy_us[i] += totals.stage_busy_us[i];
    busy += totals.stage_busy_us[i];
  }
  sums_.fwp_us += totals.fwp_us;
  sums_.bwp_us += totals.bwp_us;
  // The identity's two correction terms (see header): per-batch, then
  // summed — linearity keeps the invariant exact on the totals.
  preproc_parallel_us_ += busy - totals.makespan_us;
  overlap_hidden_us_ += totals.makespan_us + totals.fwp_us + totals.bwp_us -
                        totals.end_to_end_us;

  for (const KernelRecord& k : kernels) {
    const std::string shape = shape_signature(k.blocks);
    std::string key = k.name;
    key += '|';
    key += k.phase;
    key += '|';
    key += shape;
    if (k.device >= 0) {  // one class per device lane in sharded runs
      key += "|dev";
      key += std::to_string(k.device);
    }
    auto [it, inserted] = kernels_.try_emplace(std::move(key));
    KernelClass& cls = it->second;
    if (inserted) {
      cls.name = k.name;
      cls.category = k.category;
      cls.phase = k.phase;
      cls.shape = shape;
      cls.device = k.device;
      cls.blocks_min = cls.blocks_max = k.blocks;
    } else {
      cls.blocks_min = std::min(cls.blocks_min, k.blocks);
      cls.blocks_max = std::max(cls.blocks_max, k.blocks);
    }
    ++cls.launches;
    cls.total_us += k.latency_us;
    cls.flops += static_cast<double>(k.flops);
    cls.global_bytes += static_cast<double>(k.global_bytes);
  }
}

void KernelLedger::record_prediction(const std::string& class_key,
                                     double predicted_us, double measured_us,
                                     bool fitted) {
  if (!armed()) return;
  std::lock_guard<std::mutex> lock(mu_);
  CostClass& cls = costmodel_[class_key];
  ++cls.samples;
  cls.predicted_us += predicted_us;
  cls.measured_us += measured_us;
  if (fitted) {
    ++cls.fitted_samples;
    if (measured_us > 0.0)
      residual_pcts_.push_back(100.0 *
                               std::abs(predicted_us - measured_us) /
                               measured_us);
  }
}

std::size_t KernelLedger::batch_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

std::size_t KernelLedger::kernel_class_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kernels_.size();
}

void KernelLedger::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"schema_version\": " << kKernelLedgerSchemaVersion << ",\n";
  os << "  \"meta\": {\"drift_threshold_pct\": ";
  write_num(os, costmodel_drift_threshold_pct());
  os << "},\n";

  os << "  \"totals\": {\n";
  os << "    \"batches\": " << batches_ << ",\n";
  os << "    \"end_to_end_us\": ";
  write_num(os, sums_.end_to_end_us);
  os << ",\n    \"makespan_us\": ";
  write_num(os, sums_.makespan_us);
  os << ",\n";
  for (int i = 0; i < 4; ++i) {
    os << "    \"" << kStageNames[i] << "_us\": ";
    write_num(os, sums_.stage_busy_us[i]);
    os << ",\n";
  }
  os << "    \"preproc_parallel_us\": ";
  write_num(os, preproc_parallel_us_);
  os << ",\n    \"fwp_us\": ";
  write_num(os, sums_.fwp_us);
  os << ",\n    \"bwp_us\": ";
  write_num(os, sums_.bwp_us);
  os << ",\n    \"overlap_hidden_us\": ";
  write_num(os, overlap_hidden_us_);
  os << "\n  },\n";

  os << "  \"kernels\": {";
  bool first = true;
  for (const auto& [key, cls] : kernels_) {
    os << (first ? "\n" : ",\n") << "    ";
    first = false;
    write_str(os, key);
    os << ": {\"name\": ";
    write_str(os, cls.name);
    os << ", \"category\": ";
    write_str(os, cls.category);
    os << ", \"phase\": ";
    write_str(os, cls.phase);
    os << ", \"shape\": ";
    write_str(os, cls.shape);
    if (cls.device >= 0) os << ", \"device\": " << cls.device;
    os << ", \"blocks_min\": " << cls.blocks_min
       << ", \"blocks_max\": " << cls.blocks_max
       << ", \"launches\": " << cls.launches << ", \"total_us\": ";
    write_num(os, cls.total_us);
    os << ", \"flops\": ";
    write_num(os, cls.flops);
    os << ", \"global_bytes\": ";
    write_num(os, cls.global_bytes);
    os << "}";
  }
  os << (first ? "}" : "\n  }") << ",\n";

  // Residual distribution over the per-sample pcts recorded here (matches
  // DkpCostModel::residual_summary on the same stream).
  double p50 = 0.0, p95 = 0.0, mean = 0.0;
  if (!residual_pcts_.empty()) {
    std::vector<double> errs = residual_pcts_;
    std::sort(errs.begin(), errs.end());
    auto rank = [&](double q) {
      std::size_t k = static_cast<std::size_t>(std::ceil(q * errs.size()));
      if (k > 0) --k;
      return errs[std::min(k, errs.size() - 1)];
    };
    p50 = rank(0.50);
    p95 = rank(0.95);
    for (double e : errs) mean += e;
    mean /= static_cast<double>(errs.size());
  }
  os << "  \"costmodel\": {\n    \"classes\": {";
  first = true;
  for (const auto& [key, cls] : costmodel_) {
    os << (first ? "\n" : ",\n") << "      ";
    first = false;
    write_str(os, key);
    os << ": {\"samples\": " << cls.samples
       << ", \"fitted_samples\": " << cls.fitted_samples
       << ", \"predicted_us\": ";
    write_num(os, cls.predicted_us);
    os << ", \"measured_us\": ";
    write_num(os, cls.measured_us);
    os << "}";
  }
  os << (first ? "}" : "\n    }") << ",\n";
  os << "    \"residual\": {\"samples\": " << residual_pcts_.size()
     << ", \"p50_pct\": ";
  write_num(os, p50);
  os << ", \"p95_pct\": ";
  write_num(os, p95);
  os << ", \"mean_pct\": ";
  write_num(os, mean);
  os << "}\n  }\n}\n";
}

bool KernelLedger::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

bool KernelLedger::write_json_file() const {
  const std::string path = out_path();
  if (path.empty()) return false;
  return write_json_file(path);
}

double costmodel_drift_threshold_pct() {
  static const double threshold = [] {
    if (const char* env = std::getenv("GT_COSTMODEL_DRIFT_PCT")) {
      const double v = std::atof(env);
      if (v > 0.0) return v;
    }
    return 25.0;
  }();
  return threshold;
}

void observe_costmodel_residuals(std::size_t samples, double p50_pct,
                                 double p95_pct) {
  if (samples == 0) return;
  metrics().gauge("costmodel.residual.p50").set(p50_pct);
  metrics().gauge("costmodel.residual.p95").set(p95_pct);
  // Rising-edge latch: one drift event per excursion above the threshold,
  // not one per batch while the model stays drifted.
  static std::atomic<bool> drifted{false};
  const bool over = p95_pct > costmodel_drift_threshold_pct();
  if (over && !drifted.exchange(true, std::memory_order_relaxed)) {
    metrics().counter("costmodel.drift").add(1);
    if (live::EventLog::global().armed()) {
      live::EventLog::global().emit(
          live::Event(live::Severity::kWarn, "costmodel.drift")
              .msg("DKP cost-model residual p95 above drift threshold")
              .field("p50_pct", p50_pct)
              .field("p95_pct", p95_pct)
              .field("threshold_pct", costmodel_drift_threshold_pct())
              .field("samples", static_cast<std::uint64_t>(samples)));
    }
  } else if (!over) {
    drifted.store(false, std::memory_order_relaxed);
  }
}

}  // namespace gt::obs::attrib
