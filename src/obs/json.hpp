// Minimal RFC 8259 JSON value tree + recursive-descent parser.
//
// The obs layer emits JSON (Chrome traces, metrics dumps, bench reports)
// and — since the bench_diff regression gate — must also read its own
// reports back. This parser accepts exactly the JSON grammar and nothing
// else; it exists so the repo keeps its zero-external-dependency rule.
// Documents are small (bench reports are a few KiB), so the tree is a
// plain recursive variant with no arena tricks.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace gt::obs {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps object members sorted, mirroring the writers: re-emitting
/// a parsed document is byte-stable w.r.t. key order.
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double n) : kind_(Kind::kNumber), num_(n) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(JsonArray a)
      : kind_(Kind::kArray), arr_(std::make_shared<JsonArray>(std::move(a))) {}
  JsonValue(JsonObject o)
      : kind_(Kind::kObject),
        obj_(std::make_shared<JsonObject>(std::move(o))) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool(bool fallback = false) const noexcept {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const noexcept {
    return kind_ == Kind::kNumber ? num_ : fallback;
  }
  const std::string& as_string() const noexcept {
    static const std::string empty;
    return kind_ == Kind::kString ? str_ : empty;
  }
  const JsonArray& as_array() const noexcept {
    static const JsonArray empty;
    return kind_ == Kind::kArray && arr_ ? *arr_ : empty;
  }
  const JsonObject& as_object() const noexcept {
    static const JsonObject empty;
    return kind_ == Kind::kObject && obj_ ? *obj_ : empty;
  }

  /// Object member lookup; returns a null value for missing keys or
  /// non-objects, so chained lookups never dereference invalid state.
  const JsonValue& at(std::string_view key) const noexcept;

  /// `at(key).as_number(fallback)` — the common report-reading idiom.
  double number_at(std::string_view key, double fallback = 0.0)
      const noexcept {
    return at(key).as_number(fallback);
  }
  const std::string& string_at(std::string_view key) const noexcept {
    return at(key).as_string();
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // shared_ptr keeps JsonValue copyable while the element type is still
  // incomplete at declaration point.
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parse one complete JSON document. On failure returns null and, when
/// `error` is non-null, stores a byte offset + message description.
bool json_parse(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

/// Convenience: parse or return a null value (errors discarded).
JsonValue json_parse_or_null(std::string_view text);

/// Read and parse a whole file; false on IO or parse failure.
bool json_parse_file(const std::string& path, JsonValue* out,
                     std::string* error = nullptr);

}  // namespace gt::obs
