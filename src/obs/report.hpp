// Benchmark telemetry: structured paper-vs-measured rows plus run
// metadata, dumped as schema-versioned JSON (`BENCH_*.json`).
//
// The 15 figure/table binaries historically printed free-form text, so
// the repo had no machine-readable perf trajectory. BenchReporter is the
// process-wide registry those binaries (via bench_util's `claim()` /
// `header()` hooks) and the service CLI record into; one dump per run
// captures everything needed to regenerate a figure or gate a regression:
//
//   {
//     "figures": { "<figure>": "<description>", ... },
//     "meta": { binary, build_type, git_sha, iterations, threads },
//     "rows": [ { dataset, figure, framework, measured, metric,
//                 paper, unit }, ... ],
//     "schema_version": 1,
//     "trace_analysis": { ... }   // see obs/analysis.hpp
//   }
//
// All keys are emitted in sorted order and rows in recording order, so
// two runs of a deterministic benchmark produce byte-identical files.
//
// The same header declares the reading half (BenchReport::load) and the
// regression gate (diff_reports / run_bench_diff) used by both the
// tools/bench_diff CLI and the tests, so gate semantics live in exactly
// one place.
#pragma once

#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/json.hpp"

namespace gt::obs {

inline constexpr int kBenchReportSchemaVersion = 1;

/// One paper-vs-measured data point. `dataset`/`framework` are optional
/// tags ("" = aggregate row); (figure, metric, dataset, framework)
/// identifies a row across runs for diffing.
struct BenchRow {
  std::string figure;
  std::string metric;
  std::string dataset;
  std::string framework;
  std::string unit = "x";
  double paper = 0.0;
  double measured = 0.0;

  std::string key() const;
};

struct RunMeta {
  std::string binary;
  std::string git_sha;
  std::string build_type;
  int threads = 0;
  int iterations = 1;
};

class BenchReporter {
 public:
  BenchReporter();
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// The process-wide reporter (leaked singleton, like Tracer/Metrics).
  static BenchReporter& global();

  /// Set the current figure context; subsequent rows recorded without an
  /// explicit figure inherit it. bench_util's header() calls this.
  void set_context(std::string figure, std::string description);
  std::string figure() const;

  /// Record one row; empty `row.figure` inherits the current context.
  void add_row(BenchRow row);
  /// Shorthand for the claim() path: context figure, no dataset tag.
  void add_claim(std::string metric, double paper, double measured,
                 std::string unit);

  void set_binary(std::string name);
  void set_iterations(int n);

  RunMeta meta() const;
  std::vector<BenchRow> rows() const;
  std::size_t row_count() const;

  /// Drop rows and figure contexts (meta survives). For tests.
  void clear();

  /// Write the report; `analysis` becomes the "trace_analysis" section.
  void write_json(std::ostream& os, const TraceAnalysis& analysis) const;
  /// Convenience: analyze the global tracer, then write. False on IO error.
  bool write_json_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  RunMeta meta_;
  std::string figure_;
  std::vector<std::pair<std::string, std::string>> figures_;  // + description
  std::vector<BenchRow> rows_;
};

/// Parsed form of a dumped report, for diffing.
struct BenchReport {
  int schema_version = 0;
  RunMeta meta;
  std::vector<BenchRow> rows;
  JsonValue trace_analysis;  // raw section; null when absent

  static bool from_json(const JsonValue& doc, BenchReport* out,
                        std::string* error = nullptr);
  static bool load(const std::string& path, BenchReport* out,
                   std::string* error = nullptr);
};

/// Per-row comparison outcome, ordered as in the baseline file.
struct RowDelta {
  enum class Status { kOk, kImproved, kRegressed, kMissing, kNew };
  Status status = Status::kOk;
  BenchRow baseline;  // zeroed for kNew
  BenchRow current;   // zeroed for kMissing
  /// |measured - paper| / |paper| when the row has a paper value, else the
  /// relative change of `measured` against the baseline run.
  double err_baseline = 0.0;
  double err_current = 0.0;
};

struct DiffResult {
  std::vector<RowDelta> deltas;
  bool regressed = false;  ///< any kRegressed or kMissing row
};

/// Compare two reports row by row.
///
/// A row regresses when its measured value moves *away from the paper
/// value* by more than `threshold` (relative to |paper|), or — for rows
/// without a paper target — when the measured value drifts more than
/// `threshold` relative to the baseline. Rows present in the baseline but
/// absent from the current run count as regressions (lost coverage); new
/// rows are informational.
DiffResult diff_reports(const BenchReport& baseline,
                        const BenchReport& current, double threshold);

/// Knobs behind tools/bench_diff beyond the two report paths.
struct BenchDiffOptions {
  double threshold = 0.05;
  /// Emit one machine-readable JSON document instead of the text table
  /// (schema_version, threshold, verdict, counts, rows; the exit code is
  /// unchanged).
  bool json = false;
  /// On a regression verdict, attribute it: diff the two runs' kernel
  /// ledgers (see obs/attrib) and print the top-N kernel classes by
  /// movement under the FAIL line. 0 disables.
  std::size_t top_kernels = 3;
  /// Explicit kernels.json paths for the attribution; when empty, a
  /// sibling "kernels.json" next to each bench report is tried.
  std::string baseline_kernels;
  std::string current_kernels;
};

/// Full CLI behavior behind tools/bench_diff: load both files, print the
/// delta table (or JSON) to `os`, return the process exit code (0 = no
/// regression, 1 = regression past threshold, 2 = unreadable input or
/// incomplete comparison).
int run_bench_diff(const std::string& baseline_path,
                   const std::string& current_path,
                   const BenchDiffOptions& options, std::ostream& os);

/// Back-compat shim: default options with `threshold`.
int run_bench_diff(const std::string& baseline_path,
                   const std::string& current_path, double threshold,
                   std::ostream& os);

}  // namespace gt::obs
