// Service-wide span tracing with Chrome trace-event export.
//
// Two clocks coexist in this reproduction, and the tracer records both:
//  * wall-clock spans (RAII `Span` guards) measure the host code that
//    actually runs — preprocessing executors, service batches — on
//    per-thread buffers so hot paths never contend on a shared lock;
//  * virtual-clock events place *simulated* work (the discrete-event
//    preprocessing schedule, gpusim kernel latencies) on a shared
//    simulated timeline, so one export shows a batch's S/R/K/T tasks
//    overlapping FWP/BWP exactly like the paper's Fig 20.
//
// The export is Chrome trace-event JSON ("X" complete events plus "M"
// thread-name metadata), loadable in chrome://tracing or Perfetto.
//
// Cost model: when tracing is disabled (the default) a Span construction
// is one relaxed atomic load; defining GT_OBS_DISABLE compiles the
// GT_OBS_SCOPE macros away entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gt::obs {

/// Process lanes in the exported trace: real threads vs simulated time.
inline constexpr std::uint32_t kWallPid = 1;
inline constexpr std::uint32_t kSimPid = 2;

/// Conventional tids on the simulated (kSimPid) timeline. CPU lanes are
/// 0..N; these sit above any plausible core count.
inline constexpr std::uint32_t kSimTidPcie = 90;
inline constexpr std::uint32_t kSimTidGpu = 99;

struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t pid = kWallPid;
  std::uint32_t tid = 0;
  /// Pre-rendered JSON object members ("\"k\":1,\"s\":\"v\""), no braces.
  std::string args_json;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer (leaked singleton: safe from static dtors).
  static Tracer& global();

  void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Wall-clock microseconds since this tracer's construction.
  double now_us() const;

  /// Append an event to the calling thread's buffer. `e.tid == 0` on the
  /// wall pid is replaced with the thread's registered id.
  void emit(TraceEvent e);

  /// Reserve `dur_us` on the simulated timeline; returns the offset where
  /// the reservation starts. Consecutive batches lay out back to back.
  double advance_virtual(double dur_us);

  /// Name a simulated-timeline lane ("cpu0", "pcie", "gpu"). Idempotent.
  void set_sim_thread_name(std::uint32_t tid, std::string name);

  /// Small sequential id of the calling thread (registered on first use).
  std::uint32_t thread_id();

  std::size_t event_count() const;
  /// Merged copy of all per-thread buffers, for tests and exporters.
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}.
  void write_chrome_trace(std::ostream& os) const;
  /// Returns false if the file could not be opened.
  bool write_chrome_trace_file(const std::string& path) const;

  /// Drop all recorded events (buffers stay registered). Virtual clock
  /// resets to zero.
  void clear();

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;  // owner appends; exporters snapshot
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<double> virtual_now_us_{0.0};

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<std::pair<std::uint32_t, std::string>> sim_thread_names_;
  std::uint32_t next_tid_ = 1;
};

/// RAII wall-clock span. Captures the enabled flag at construction; when
/// tracing is off the whole object is one atomic load.
class Span {
 public:
  Span(const char* name, const char* cat) {
    Tracer& t = Tracer::global();
    if (!t.enabled()) return;
    begin(t, name, cat);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { if (tracer_ != nullptr) end(); }

  bool active() const noexcept { return tracer_ != nullptr; }

  /// Attach args (no-ops when inactive).
  void arg(const char* key, std::int64_t v);
  void arg(const char* key, double v);
  void arg(const char* key, std::string_view v);

 private:
  void begin(Tracer& t, const char* name, const char* cat);
  void end();

  Tracer* tracer_ = nullptr;
  double start_us_ = 0.0;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::string args_;
};

/// Stand-in for Span when GT_OBS_DISABLE is defined: named spans keep
/// compiling (`span.arg(...)`) while the optimizer deletes everything.
struct NullSpan {
  constexpr bool active() const noexcept { return false; }
  template <typename T>
  constexpr void arg(const char*, T&&) const noexcept {}
};

/// Append a JSON-escaped copy of `s` (no surrounding quotes) to `out`.
void json_escape(std::string_view s, std::string& out);

}  // namespace gt::obs

// Scoped-span macros: compile to nothing under GT_OBS_DISABLE so a
// latency-critical build can prove zero instrumentation cost.
#define GT_OBS_CONCAT_INNER_(a, b) a##b
#define GT_OBS_CONCAT_(a, b) GT_OBS_CONCAT_INNER_(a, b)
#ifndef GT_OBS_DISABLE
#define GT_OBS_SCOPE(name, cat) \
  ::gt::obs::Span GT_OBS_CONCAT_(gt_obs_span_, __LINE__)(name, cat)
#define GT_OBS_SCOPE_N(var, name, cat) ::gt::obs::Span var(name, cat)
#else
#define GT_OBS_SCOPE(name, cat) ((void)0)
#define GT_OBS_SCOPE_N(var, name, cat) \
  ::gt::obs::NullSpan var;             \
  (void)var
#endif
