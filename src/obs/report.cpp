#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <thread>

#include "obs/attrib/explain.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

#if defined(__GLIBC__)
#include <errno.h>  // program_invocation_short_name
#endif

namespace gt::obs {

namespace {

// Separator that cannot appear in row fields (json_escape would encode it).
constexpr char kKeySep = '\x1f';

std::string default_binary_name() {
#if defined(__GLIBC__)
  if (program_invocation_short_name != nullptr)
    return program_invocation_short_name;
#endif
  return "unknown";
}

std::string default_git_sha() {
  // CI can pin the exact sha at runtime; otherwise use the configure-time
  // value baked in by CMake (stale only until the next reconfigure).
  if (const char* env = std::getenv("GT_GIT_SHA")) return env;
#ifdef GT_GIT_SHA
  return GT_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string default_build_type() {
#ifdef GT_BUILD_TYPE
  return GT_BUILD_TYPE;
#else
  return "unknown";
#endif
}

void write_num(std::ostream& os, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

void write_str(std::ostream& os, std::string_view s) {
  std::string escaped;
  json_escape(s, escaped);
  os << '"' << escaped << '"';
}

}  // namespace

std::string BenchRow::key() const {
  std::string k = figure;
  k += kKeySep;
  k += metric;
  k += kKeySep;
  k += dataset;
  k += kKeySep;
  k += framework;
  return k;
}

// ---- BenchReporter ----------------------------------------------------------

BenchReporter::BenchReporter() {
  meta_.binary = default_binary_name();
  meta_.git_sha = default_git_sha();
  meta_.build_type = default_build_type();
  meta_.threads =
      static_cast<int>(std::thread::hardware_concurrency());
}

BenchReporter& BenchReporter::global() {
  // Leaked: the bench ObsHook dumps from a static destructor.
  static BenchReporter* r = new BenchReporter();
  return *r;
}

void BenchReporter::set_context(std::string figure, std::string description) {
  std::lock_guard lock(mu_);
  figure_ = figure;
  for (auto& [fig, desc] : figures_)
    if (fig == figure) {
      desc = std::move(description);
      return;
    }
  figures_.emplace_back(std::move(figure), std::move(description));
}

std::string BenchReporter::figure() const {
  std::lock_guard lock(mu_);
  return figure_;
}

void BenchReporter::add_row(BenchRow row) {
  std::lock_guard lock(mu_);
  if (row.figure.empty()) row.figure = figure_;
  rows_.push_back(std::move(row));
}

void BenchReporter::add_claim(std::string metric, double paper,
                              double measured, std::string unit) {
  BenchRow row;
  row.metric = std::move(metric);
  row.unit = std::move(unit);
  row.paper = paper;
  row.measured = measured;
  add_row(std::move(row));
}

void BenchReporter::set_binary(std::string name) {
  std::lock_guard lock(mu_);
  meta_.binary = std::move(name);
}

void BenchReporter::set_iterations(int n) {
  std::lock_guard lock(mu_);
  meta_.iterations = n;
}

RunMeta BenchReporter::meta() const {
  std::lock_guard lock(mu_);
  return meta_;
}

std::vector<BenchRow> BenchReporter::rows() const {
  std::lock_guard lock(mu_);
  return rows_;
}

std::size_t BenchReporter::row_count() const {
  std::lock_guard lock(mu_);
  return rows_.size();
}

void BenchReporter::clear() {
  std::lock_guard lock(mu_);
  rows_.clear();
  figures_.clear();
  figure_.clear();
}

void BenchReporter::write_json(std::ostream& os,
                               const TraceAnalysis& analysis) const {
  std::lock_guard lock(mu_);
  // Figures sorted by name for byte-stable output (recording order is a
  // run-time detail; rows keep it because it mirrors the printed tables).
  std::map<std::string, std::string, std::less<>> figs(figures_.begin(),
                                                       figures_.end());
  os << "{\n  \"figures\": {";
  bool first = true;
  for (const auto& [fig, desc] : figs) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_str(os, fig);
    os << ": ";
    write_str(os, desc);
  }
  os << "\n  },\n  \"meta\": {\n    \"binary\": ";
  write_str(os, meta_.binary);
  os << ",\n    \"build_type\": ";
  write_str(os, meta_.build_type);
  os << ",\n    \"git_sha\": ";
  write_str(os, meta_.git_sha);
  os << ",\n    \"iterations\": " << meta_.iterations;
  os << ",\n    \"threads\": " << meta_.threads;
  os << "\n  },\n  \"rows\": [";
  first = true;
  for (const BenchRow& r : rows_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    os << "{\"dataset\": ";
    write_str(os, r.dataset);
    os << ", \"figure\": ";
    write_str(os, r.figure);
    os << ", \"framework\": ";
    write_str(os, r.framework);
    os << ", \"measured\": ";
    write_num(os, r.measured);
    os << ", \"metric\": ";
    write_str(os, r.metric);
    os << ", \"paper\": ";
    write_num(os, r.paper);
    os << ", \"unit\": ";
    write_str(os, r.unit);
    os << "}";
  }
  os << "\n  ],\n  \"schema_version\": " << kBenchReportSchemaVersion;
  os << ",\n  \"trace_analysis\": ";
  analysis.write_json(os, 2);
  os << "\n}\n";
}

bool BenchReporter::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f, TraceAnalysis::from_tracer(Tracer::global()));
  return static_cast<bool>(f);
}

// ---- BenchReport (reader) ---------------------------------------------------

bool BenchReport::from_json(const JsonValue& doc, BenchReport* out,
                            std::string* error) {
  *out = BenchReport{};
  if (!doc.is_object()) {
    if (error != nullptr) *error = "report is not a JSON object";
    return false;
  }
  out->schema_version =
      static_cast<int>(doc.number_at("schema_version", 0.0));
  if (out->schema_version != kBenchReportSchemaVersion) {
    if (error != nullptr)
      *error = "unsupported schema_version " +
               std::to_string(out->schema_version);
    return false;
  }
  const JsonValue& meta = doc.at("meta");
  out->meta.binary = meta.string_at("binary");
  out->meta.git_sha = meta.string_at("git_sha");
  out->meta.build_type = meta.string_at("build_type");
  out->meta.threads = static_cast<int>(meta.number_at("threads"));
  out->meta.iterations = static_cast<int>(meta.number_at("iterations", 1.0));
  for (const JsonValue& r : doc.at("rows").as_array()) {
    BenchRow row;
    row.figure = r.string_at("figure");
    row.metric = r.string_at("metric");
    row.dataset = r.string_at("dataset");
    row.framework = r.string_at("framework");
    row.unit = r.string_at("unit");
    row.paper = r.number_at("paper");
    row.measured = r.number_at("measured");
    out->rows.push_back(std::move(row));
  }
  out->trace_analysis = doc.at("trace_analysis");
  return true;
}

bool BenchReport::load(const std::string& path, BenchReport* out,
                       std::string* error) {
  JsonValue doc;
  if (!json_parse_file(path, &doc, error)) return false;
  return from_json(doc, out, error);
}

// ---- Diff / regression gate -------------------------------------------------

namespace {

constexpr double kEps = 1e-12;

/// Deviation score whose growth defines a regression: distance from the
/// paper target when one exists, otherwise distance from the baseline run.
double rel_error(double measured, double reference) {
  return std::abs(measured - reference) / std::max(std::abs(reference), kEps);
}

}  // namespace

DiffResult diff_reports(const BenchReport& baseline,
                        const BenchReport& current, double threshold) {
  DiffResult out;
  std::map<std::string, const BenchRow*, std::less<>> cur_by_key;
  for (const BenchRow& r : current.rows) cur_by_key[r.key()] = &r;

  std::map<std::string, bool, std::less<>> matched;
  for (const BenchRow& base : baseline.rows) {
    RowDelta d;
    d.baseline = base;
    const auto it = cur_by_key.find(base.key());
    if (it == cur_by_key.end()) {
      d.status = RowDelta::Status::kMissing;
      out.regressed = true;
      out.deltas.push_back(std::move(d));
      continue;
    }
    matched[base.key()] = true;
    d.current = *it->second;
    if (std::abs(base.paper) > kEps) {
      d.err_baseline = rel_error(base.measured, base.paper);
      d.err_current = rel_error(d.current.measured, d.current.paper);
      if (d.err_current > d.err_baseline + threshold)
        d.status = RowDelta::Status::kRegressed;
      else if (d.err_current < d.err_baseline - threshold)
        d.status = RowDelta::Status::kImproved;
    } else {
      // No paper target: any drift past the threshold is suspect because
      // every bench is deterministic by construction.
      d.err_current = rel_error(d.current.measured, base.measured);
      if (d.err_current > threshold) d.status = RowDelta::Status::kRegressed;
    }
    if (d.status == RowDelta::Status::kRegressed) out.regressed = true;
    out.deltas.push_back(std::move(d));
  }
  for (const BenchRow& cur : current.rows) {
    if (matched.contains(cur.key())) continue;
    RowDelta d;
    d.status = RowDelta::Status::kNew;
    d.current = cur;
    out.deltas.push_back(std::move(d));
  }
  return out;
}

namespace {

const char* status_name(RowDelta::Status s) {
  switch (s) {
    case RowDelta::Status::kOk: return "ok";
    case RowDelta::Status::kImproved: return "improved";
    case RowDelta::Status::kRegressed: return "REGRESSED";
    case RowDelta::Status::kMissing: return "MISSING";
    case RowDelta::Status::kNew: return "new";
  }
  return "?";
}

std::string row_label(const BenchRow& r) {
  std::string label = r.figure.empty() ? "?" : r.figure;
  label += " | " + r.metric;
  if (!r.dataset.empty()) label += " [" + r.dataset + "]";
  if (!r.framework.empty()) label += " (" + r.framework + ")";
  return label;
}

void diff_trace_analysis(const BenchReport& baseline,
                         const BenchReport& current, std::ostream& os) {
  if (!baseline.trace_analysis.is_object() ||
      !current.trace_analysis.is_object())
    return;
  const std::pair<const char*, const char*> keys[] = {
      {"critical_path_us", nullptr}, {"span_us", nullptr},
      {"overlap", "efficiency"},     {"pcie", "idle_fraction"}};
  os << "\ntrace analysis (informational, not gated):\n";
  for (const auto& [k1, k2] : keys) {
    const JsonValue& b0 = baseline.trace_analysis.at(k1);
    const JsonValue& c0 = current.trace_analysis.at(k1);
    const double b = k2 == nullptr ? b0.as_number() : b0.number_at(k2);
    const double c = k2 == nullptr ? c0.as_number() : c0.number_at(k2);
    char line[160];
    std::snprintf(line, sizeof line, "  %s%s%s: %.6g -> %.6g\n", k1,
                  k2 == nullptr ? "" : ".", k2 == nullptr ? "" : k2, b, c);
    os << line;
  }
}

/// "dir/report.json" -> "dir/kernels.json": the default artifact layout
/// when a run arms GT_KERNEL_LEDGER_OUT next to GT_BENCH_OUT.
std::string sibling_kernels_path(const std::string& report_path) {
  const std::size_t slash = report_path.find_last_of('/');
  if (slash == std::string::npos) return "kernels.json";
  return report_path.substr(0, slash + 1) + "kernels.json";
}

/// Try to load both runs' kernel ledgers for root-cause attribution.
/// False (with a human-readable reason) when either artifact is absent.
bool load_attribution(const BenchDiffOptions& opt,
                      const std::string& baseline_path,
                      const std::string& current_path,
                      attrib::Attribution* out, std::string* base_kernels,
                      std::string* cur_kernels, std::string* why_not) {
  *base_kernels = opt.baseline_kernels.empty()
                      ? sibling_kernels_path(baseline_path)
                      : opt.baseline_kernels;
  *cur_kernels = opt.current_kernels.empty()
                     ? sibling_kernels_path(current_path)
                     : opt.current_kernels;
  attrib::LedgerData base, cur;
  if (!attrib::LedgerData::load(*base_kernels, &base, why_not)) return false;
  if (!attrib::LedgerData::load(*cur_kernels, &cur, why_not)) return false;
  *out = attrib::attribute(base, cur);
  return true;
}

void write_json_row(std::ostream& os, const RowDelta& d) {
  const BenchRow& named =
      d.status == RowDelta::Status::kNew ? d.current : d.baseline;
  os << "    {\"status\": ";
  write_str(os, status_name(d.status));
  os << ", \"figure\": ";
  write_str(os, named.figure);
  os << ", \"metric\": ";
  write_str(os, named.metric);
  os << ", \"dataset\": ";
  write_str(os, named.dataset);
  os << ", \"framework\": ";
  write_str(os, named.framework);
  os << ", \"unit\": ";
  write_str(os, named.unit);
  os << ", \"paper\": ";
  write_num(os, named.paper);
  os << ", \"measured_baseline\": ";
  write_num(os, d.baseline.measured);
  os << ", \"measured_current\": ";
  write_num(os, d.current.measured);
  os << ", \"err_baseline\": ";
  write_num(os, d.err_baseline);
  os << ", \"err_current\": ";
  write_num(os, d.err_current);
  os << "}";
}

}  // namespace

int run_bench_diff(const std::string& baseline_path,
                   const std::string& current_path,
                   const BenchDiffOptions& opt, std::ostream& os) {
  std::string error;
  BenchReport baseline, current;
  if (!BenchReport::load(baseline_path, &baseline, &error)) {
    os << "bench_diff: " << baseline_path << ": " << error << "\n";
    return 2;
  }
  if (!BenchReport::load(current_path, &current, &error)) {
    os << "bench_diff: " << current_path << ": " << error << "\n";
    return 2;
  }

  const DiffResult diff = diff_reports(baseline, current, opt.threshold);
  std::size_t regressed = 0, missing = 0, improved = 0, fresh = 0;
  for (const RowDelta& d : diff.deltas) {
    regressed += d.status == RowDelta::Status::kRegressed;
    missing += d.status == RowDelta::Status::kMissing;
    improved += d.status == RowDelta::Status::kImproved;
    fresh += d.status == RowDelta::Status::kNew;
  }
  // A baseline row absent from the candidate is not a measured regression
  // — it means the comparison never happened (renamed metric, bench that
  // stopped emitting, truncated report), so the verdict is "incomplete"
  // and the exit code matches the unreadable-input case: CI fails loudly
  // instead of reporting a pass/fail over a partial comparison.
  const int exit_code = missing > 0 ? 2 : (diff.regressed ? 1 : 0);
  const char* verdict =
      missing > 0 ? "incomplete" : (diff.regressed ? "regressed" : "ok");

  // Root-cause attribution for a real regression verdict: diff the two
  // runs' kernel ledgers when both exist.
  attrib::Attribution attribution;
  std::string base_kernels, cur_kernels, attr_why_not;
  const bool have_attribution =
      exit_code == 1 && opt.top_kernels > 0 &&
      load_attribution(opt, baseline_path, current_path, &attribution,
                       &base_kernels, &cur_kernels, &attr_why_not);

  if (opt.json) {
    os << "{\n  \"schema_version\": 1,\n  \"threshold\": ";
    write_num(os, opt.threshold);
    os << ",\n  \"verdict\": ";
    write_str(os, verdict);
    os << ",\n  \"baseline\": {\"path\": ";
    write_str(os, baseline_path);
    os << ", \"git_sha\": ";
    write_str(os, baseline.meta.git_sha);
    os << "},\n  \"current\": {\"path\": ";
    write_str(os, current_path);
    os << ", \"git_sha\": ";
    write_str(os, current.meta.git_sha);
    os << "},\n  \"counts\": {\"compared\": " << diff.deltas.size()
       << ", \"regressed\": " << regressed << ", \"missing\": " << missing
       << ", \"improved\": " << improved << ", \"new\": " << fresh
       << "},\n  \"rows\": [";
    bool first = true;
    for (const RowDelta& d : diff.deltas) {
      os << (first ? "\n" : ",\n");
      first = false;
      write_json_row(os, d);
    }
    os << (first ? "]" : "\n  ]") << ",\n  \"kernel_attribution\": [";
    first = true;
    if (have_attribution) {
      std::size_t shown = 0;
      for (const attrib::KernelDelta& k : attribution.kernels) {
        if (shown >= opt.top_kernels || k.delta_us == 0.0) break;
        ++shown;
        os << (first ? "\n" : ",\n") << "    {\"key\": ";
        first = false;
        write_str(os, k.key);
        os << ", \"phase\": ";
        write_str(os, k.phase);
        os << ", \"delta_us_per_batch\": ";
        write_num(os, k.delta_us);
        os << "}";
      }
    }
    os << (first ? "]" : "\n  ]") << "\n}\n";
    return exit_code;
  }

  os << "bench_diff: " << baseline_path << " (" << baseline.meta.git_sha
     << ") vs " << current_path << " (" << current.meta.git_sha
     << "), threshold " << opt.threshold << "\n\n";

  Table table({"status", "row", "unit", "paper", "measured old", "measured new",
               "err old", "err new"});
  for (const RowDelta& d : diff.deltas) {
    const BenchRow& named =
        d.status == RowDelta::Status::kNew ? d.current : d.baseline;
    table.add_row(
        {status_name(d.status), row_label(named), named.unit,
         Table::fmt(named.paper, 3),
         d.status == RowDelta::Status::kNew ? "-"
                                            : Table::fmt(d.baseline.measured, 3),
         d.status == RowDelta::Status::kMissing
             ? "-"
             : Table::fmt(d.current.measured, 3),
         Table::fmt_pct(d.err_baseline), Table::fmt_pct(d.err_current)});
  }
  os << table.to_string();
  diff_trace_analysis(baseline, current, os);

  os << "\n" << diff.deltas.size() << " rows compared: " << regressed
     << " regressed, " << missing << " missing\n";
  if (missing > 0) {
    for (const RowDelta& d : diff.deltas) {
      if (d.status != RowDelta::Status::kMissing) continue;
      os << "bench_diff: baseline row '" << row_label(d.baseline)
         << "' (key " << d.baseline.key() << ") is missing from "
         << current_path << "\n";
    }
    os << "bench_diff: FAIL (comparison incomplete: " << missing
       << " baseline row" << (missing == 1 ? "" : "s")
       << " missing from candidate)\n";
    return 2;
  }
  if (diff.regressed) {
    os << "bench_diff: FAIL (regression beyond threshold)\n";
    if (have_attribution) {
      os << "\nkernel-level attribution (per-batch, " << base_kernels
         << " vs " << cur_kernels << "):\n";
      attrib::write_top_kernels(attribution, os, opt.top_kernels);
      os << "  (full breakdown: tools/gt_explain " << base_kernels << " "
         << cur_kernels << ")\n";
    } else if (opt.top_kernels > 0) {
      os << "bench_diff: no kernel attribution available (" << attr_why_not
         << "); arm GT_KERNEL_LEDGER_OUT on both runs to root-cause "
            "regressions with tools/gt_explain\n";
    }
    return 1;
  }
  os << "bench_diff: OK\n";
  return 0;
}

int run_bench_diff(const std::string& baseline_path,
                   const std::string& current_path, double threshold,
                   std::ostream& os) {
  BenchDiffOptions opt;
  opt.threshold = threshold;
  return run_bench_diff(baseline_path, current_path, opt, os);
}

}  // namespace gt::obs
