#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gt::obs {

const JsonValue& JsonValue::at(std::string_view key) const noexcept {
  static const JsonValue null_value;
  if (kind_ != Kind::kObject || !obj_) return null_value;
  const auto it = obj_->find(key);
  return it == obj_->end() ? null_value : it->second;
}

namespace {

class Parser {
 public:
  Parser(std::string_view s, std::string* error) : s_(s), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const char* what) {
    if (error_ != nullptr) {
      std::ostringstream os;
      os << "JSON parse error at byte " << pos_ << ": " << what;
      *error_ = os.str();
    }
    return false;
  }

  bool value(JsonValue* out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        std::string s;
        if (!string(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = JsonValue(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = JsonValue();
        return true;
      default: return number(out);
    }
  }

  bool object(JsonValue* out) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (consume('}')) {
      *out = JsonValue(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return fail("expected object key string");
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      obj.insert_or_assign(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) {
        *out = JsonValue(std::move(obj));
        return true;
      }
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue* out) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (consume(']')) {
      *out = JsonValue(std::move(arr));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (consume(']')) {
        *out = JsonValue(std::move(arr));
        return true;
      }
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size()) return fail("truncated \\u escape");
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("invalid hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point; surrogate pairs are not
          // recombined (the writers only escape control characters).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    consume('-');
    if (!digits()) return fail("invalid number");
    if (consume('.') && !digits()) return fail("digits required after '.'");
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) return fail("digits required in exponent");
    }
    const std::string text(s_.substr(start, pos_ - start));
    *out = JsonValue(std::strtod(text.c_str(), nullptr));
    return true;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return fail("invalid literal");
    pos_ += lit.size();
    return true;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view s_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  Parser p(text, error);
  if (p.parse(out)) return true;
  *out = JsonValue();
  return false;
}

JsonValue json_parse_or_null(std::string_view text) {
  JsonValue v;
  json_parse(text, &v);
  return v;
}

bool json_parse_file(const std::string& path, JsonValue* out,
                     std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    *out = JsonValue();
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return json_parse(buf.str(), out, error);
}

}  // namespace gt::obs
