// Preprocessing workload description and host-side cost parameters.
//
// The discrete-event scheduler prices subtasks from *counted work* (edges
// sampled, hash operations, bytes gathered/moved), exactly as DESIGN.md §2
// prescribes: on this box wall-clock parallelism cannot be observed, but
// the schedule shapes (Figs 12/13/14/19/20) are a pure function of these
// counts and the dependency structure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/sampler.hpp"

namespace gt::pipeline {

/// Unit costs for host-side preprocessing work (microseconds). Defaults
/// are calibrated so that the serial end-to-end decomposition reproduces
/// the paper's Fig 12a regime: GNN compute ~15% of end-to-end, sampling
/// dominating light-feature workloads, lookup+transfer dominating
/// heavy-feature ones.
struct HostCostParams {
  double us_per_sampled_edge = 0.9;   // S algorithm part: RNG + adjacency scan
  double us_per_hash_op = 0.36;       // S/R hash insert or lookup
  double us_per_reindex_edge = 0.6;   // R: 2 lookups + format writes
  double us_per_lookup_byte = 6.0e-3; // K: random-access embedding gather
  std::size_t num_cores = 12;         // paper testbed: 12-core Xeon host
  /// Host preprocessing is memory-bound: threads contend for DRAM and the
  /// LLC, so 12 cores deliver ~6 cores' worth of throughput. Applied to
  /// every parallel chunk's duration.
  double parallel_efficiency = 0.5;
  std::size_t chunks_per_task = 12;   // subtask fan-out per hop/type
  std::size_t kt_chunk_rows = 512;    // pipelined K->T chunk granularity
  /// Lock-contention inflation for the *unrelaxed* scheduler. Contended
  /// mutexes cost more than the sum of their critical sections (futex
  /// round-trips, cache-line ping-pong): fused S chunks pay their hash
  /// share times ss_contention_factor (paper Fig 14a: 47.4% of
  /// preprocessing lost between S subtasks), and reindex chunks racing the
  /// sampler for the table slow by sr_contention_factor (paper: 39.0%
  /// lost between S and R).
  double ss_contention_factor = 2.2;
  double sr_contention_factor = 2.5;
};

/// Per-hop sampling volume.
struct HopWork {
  std::uint64_t frontier = 0;      // vertices expanded this hop
  std::uint64_t edges = 0;         // edges sampled
  std::uint64_t hash_inserts = 0;  // insert_or_get calls (edge srcs)
  std::uint64_t new_vertices = 0;  // vertices first discovered this hop
};

/// Everything the planner needs to price one batch's preprocessing.
struct BatchWorkload {
  std::uint32_t num_layers = 0;
  std::uint64_t batch_size = 0;
  std::vector<HopWork> hops;             // [0] = hop 1, ... (L entries)
  std::vector<std::uint64_t> layer_reindex_edges;  // per exec-layer
  std::uint64_t total_vertices = 0;
  std::size_t feature_dim = 0;
  /// Rows served by a GPU-resident embedding cache (PaGraph-style
  /// extension): lookup and transfer cover only the misses.
  std::uint64_t cached_rows = 0;

  std::uint64_t lookup_rows() const noexcept {
    return total_vertices > cached_rows ? total_vertices - cached_rows : 0;
  }
  double miss_fraction() const noexcept {
    return total_vertices == 0
               ? 1.0
               : static_cast<double>(lookup_rows()) /
                     static_cast<double>(total_vertices);
  }
  std::size_t embedding_bytes() const noexcept {
    return lookup_rows() * feature_dim * sizeof(float);
  }
  std::size_t structure_bytes() const noexcept {
    std::size_t b = 0;
    for (std::uint64_t e : layer_reindex_edges)
      b += (2 * e + total_vertices) * sizeof(std::uint32_t);
    return b;
  }
  std::uint64_t total_sampled_edges() const noexcept {
    std::uint64_t e = 0;
    for (const auto& h : hops) e += h.edges;
    return e;
  }
};

/// Derive the workload counts from an actual sampled batch.
BatchWorkload workload_from(const sampling::SampledBatch& batch,
                            std::size_t feature_dim);

}  // namespace gt::pipeline
