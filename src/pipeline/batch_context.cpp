#include "pipeline/batch_context.hpp"

#include "obs/metrics.hpp"

namespace gt::pipeline {

void BatchContext::begin_batch() {
  table_.clear();
  arena_.reset();
  preproc_.clear_for_reuse();
  prefetch_armed_ = false;
  cache_hierarchy_ = nullptr;
  alloc_snapshot_ = arena_.stats().allocations;
  growth_snapshot_ = arena_.stats().growths;
  ++batches_begun_;
  obs::metrics().counter("batch_context.batches").add(1);
}

PreprocExecutor& BatchContext::executor_for(const Csr& graph,
                                            const EmbeddingTable& embeddings,
                                            std::uint32_t fanout,
                                            std::uint32_t num_layers,
                                            std::uint64_t seed,
                                            sampling::ReindexFormats formats) {
  const bool hit = executor_ && exec_graph_ == &graph &&
                   exec_embeddings_ == &embeddings && exec_fanout_ == fanout &&
                   exec_layers_ == num_layers && exec_seed_ == seed &&
                   exec_formats_.coo == formats.coo &&
                   exec_formats_.csr == formats.csr &&
                   exec_formats_.csc == formats.csc;
  if (!hit) {
    executor_ = std::make_unique<PreprocExecutor>(graph, embeddings, fanout,
                                                  num_layers, seed, formats);
    exec_graph_ = &graph;
    exec_embeddings_ = &embeddings;
    exec_fanout_ = fanout;
    exec_layers_ = num_layers;
    exec_seed_ = seed;
    exec_formats_ = formats;
    obs::metrics().counter("batch_context.executor_rebuilds").add(1);
  }
  return *executor_;
}

}  // namespace gt::pipeline
