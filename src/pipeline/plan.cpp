#include "pipeline/plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace gt::pipeline {

const char* to_string(PreprocStrategy s) {
  switch (s) {
    case PreprocStrategy::kSerial:             return "serial";
    case PreprocStrategy::kParallelTasks:      return "parallel-tasks";
    case PreprocStrategy::kServiceWideNoRelax: return "service-wide-norelax";
    case PreprocStrategy::kServiceWide:        return "service-wide";
  }
  return "?";
}

namespace {

struct Tagged {
  SimTaskId id;
  TaskType type;
  double weight;  // work items, for the nodes-processed timeline
};

class PlanBuilder {
 public:
  PlanBuilder(const BatchWorkload& w, const PlanOptions& opt)
      : w_(w), opt_(opt), pcie_model_(opt.pcie) {
    const bool serial = opt.strategy == PreprocStrategy::kSerial;
    cpu_ = sim_.add_resource("cpu", serial ? 1 : opt.cost.num_cores);
    pcie_ = sim_.add_resource("pcie", 1);
    hash_group_ = sim_.add_serial_group();
  }

  PreprocSchedule build() {
    switch (opt_.strategy) {
      case PreprocStrategy::kSerial:
        build_serial();
        break;
      case PreprocStrategy::kParallelTasks:
        build_parallel_tasks();
        break;
      case PreprocStrategy::kServiceWideNoRelax:
        build_service_wide(/*relaxed=*/false);
        break;
      case PreprocStrategy::kServiceWide:
        build_service_wide(/*relaxed=*/true);
        break;
    }
    return finish();
  }

 private:
  // -- Cost helpers -----------------------------------------------------------
  double sample_us(std::uint64_t edges) const {
    return static_cast<double>(edges) * opt_.cost.us_per_sampled_edge;
  }
  /// Per-chunk duration of work split across parallel chunks, inflated by
  /// the host's memory-bound parallel efficiency.
  double chunked(double total_us, std::size_t chunks) const {
    return total_us / (static_cast<double>(chunks) *
                       opt_.cost.parallel_efficiency);
  }
  double hash_us(std::uint64_t ops) const {
    return static_cast<double>(ops) * opt_.cost.us_per_hash_op;
  }
  double reindex_us(std::uint64_t edges) const {
    return static_cast<double>(edges) * opt_.cost.us_per_reindex_edge;
  }
  double lookup_us(std::uint64_t rows) const {
    return static_cast<double>(rows * w_.feature_dim * sizeof(float)) *
           opt_.cost.us_per_lookup_byte;
  }
  double transfer_us(std::size_t bytes) const {
    return pcie_model_.transfer_us(bytes, opt_.pinned_memory);
  }

  SimTaskId add(std::string name, TaskType type, double dur,
                SimResourceId res, std::vector<SimTaskId> deps,
                double weight, SimGroupId group = kNoGroup) {
    const SimTaskId id =
        sim_.add_task(std::move(name), dur, res, std::move(deps), group);
    tagged_.push_back(Tagged{id, type, weight});
    return id;
  }

  // -- Strategies -------------------------------------------------------------

  void build_serial() {
    // One chain on one core: batch insert, all hops, reindex per layer,
    // lookup, then transfers.
    SimTaskId prev = add("S.batch-insert", TaskType::kSample,
                         hash_us(w_.batch_size), cpu_, {},
                         static_cast<double>(w_.batch_size));
    for (std::size_t h = 0; h < w_.hops.size(); ++h) {
      prev = add("S.hop" + std::to_string(h + 1), TaskType::kSample,
                 sample_us(w_.hops[h].edges) +
                     hash_us(w_.hops[h].hash_inserts),
                 cpu_, {prev}, static_cast<double>(w_.hops[h].new_vertices));
    }
    for (std::size_t l = 0; l < w_.layer_reindex_edges.size(); ++l) {
      prev = add("R.layer" + std::to_string(l), TaskType::kReindex,
                 reindex_us(w_.layer_reindex_edges[l]), cpu_, {prev},
                 static_cast<double>(w_.layer_reindex_edges[l]));
    }
    prev = add("K.all", TaskType::kLookup, lookup_us(w_.lookup_rows()), cpu_,
               {prev}, static_cast<double>(w_.lookup_rows()));
    prev = add("T.emb", TaskType::kTransfer, transfer_us(w_.embedding_bytes()),
               pcie_, {prev}, static_cast<double>(w_.lookup_rows()));
    add("T.struct", TaskType::kTransfer, transfer_us(w_.structure_bytes()),
        pcie_, {prev}, 1.0);
  }

  void build_parallel_tasks() {
    // Each type fans out over the cores, with a barrier between types.
    const std::size_t c = opt_.cost.num_cores;
    SimTaskId batch_ins =
        add("S.batch-insert", TaskType::kSample, hash_us(w_.batch_size),
            cpu_, {}, static_cast<double>(w_.batch_size));
    std::vector<SimTaskId> prev_hop{batch_ins};
    for (std::size_t h = 0; h < w_.hops.size(); ++h) {
      std::vector<SimTaskId> chunks;
      // The hash-update portion of every chunk serializes on the table
      // lock: each thread pays its algorithm share plus the full lock
      // queue (classic contended-lock behaviour).
      const double dur = chunked(sample_us(w_.hops[h].edges), c) +
                         hash_us(w_.hops[h].hash_inserts);
      for (std::size_t i = 0; i < c; ++i) {
        chunks.push_back(add(
            "S.hop" + std::to_string(h + 1) + "." + std::to_string(i),
            TaskType::kSample, dur, cpu_, prev_hop,
            static_cast<double>(w_.hops[h].new_vertices) / c));
      }
      prev_hop = std::move(chunks);
    }
    // R barrier-follows S.
    std::vector<SimTaskId> r_tasks;
    for (std::size_t l = 0; l < w_.layer_reindex_edges.size(); ++l) {
      for (std::size_t i = 0; i < c; ++i) {
        r_tasks.push_back(add(
            "R.layer" + std::to_string(l) + "." + std::to_string(i),
            TaskType::kReindex,
            chunked(reindex_us(w_.layer_reindex_edges[l]), c),
            cpu_, prev_hop,
            static_cast<double>(w_.layer_reindex_edges[l]) / c));
      }
    }
    // K barrier-follows R.
    std::vector<SimTaskId> k_tasks;
    for (std::size_t i = 0; i < c; ++i) {
      k_tasks.push_back(add("K." + std::to_string(i), TaskType::kLookup,
                            chunked(lookup_us(w_.lookup_rows()), c),
                            cpu_, r_tasks,
                            static_cast<double>(w_.lookup_rows()) / c));
    }
    if (opt_.pipelined_kt) {
      // SALIENT: each lookup share streams out as soon as it is gathered.
      for (std::size_t i = 0; i < c; ++i) {
        add("T.emb." + std::to_string(i), TaskType::kTransfer,
            transfer_us(w_.embedding_bytes() / c), pcie_,
            {k_tasks[i]}, static_cast<double>(w_.lookup_rows()) / c);
      }
      add("T.struct", TaskType::kTransfer,
          transfer_us(w_.structure_bytes()), pcie_, r_tasks, 1.0);
    } else {
      SimTaskId t_emb =
          add("T.emb", TaskType::kTransfer, transfer_us(w_.embedding_bytes()),
              pcie_, k_tasks, static_cast<double>(w_.total_vertices));
      add("T.struct", TaskType::kTransfer, transfer_us(w_.structure_bytes()),
          pcie_, {t_emb}, 1.0);
    }
  }

  void build_service_wide(bool relaxed) {
    const std::size_t chunks = std::max<std::size_t>(
        1, std::min(opt_.cost.chunks_per_task, opt_.cost.num_cores));

    // Hop 0: insert the batch (a hash update).
    std::vector<std::vector<SimTaskId>> hop_done(w_.hops.size() + 1);
    hop_done[0].push_back(
        relaxed ? add("S.batch-insert", TaskType::kSample,
                      hash_us(w_.batch_size), cpu_, {},
                      static_cast<double>(w_.batch_size), hash_group_)
                : add("S.batch-insert", TaskType::kSample,
                      hash_us(w_.batch_size), cpu_, {},
                      static_cast<double>(w_.batch_size)));

    // Sampling hops: A chunks (parallel) feeding H updates.
    for (std::size_t h = 0; h < w_.hops.size(); ++h) {
      const double a_chunk_us =
          chunked(sample_us(w_.hops[h].edges), chunks);
      const double h_total_us = hash_us(w_.hops[h].hash_inserts);
      for (std::size_t i = 0; i < chunks; ++i) {
        const std::string tag =
            ".hop" + std::to_string(h + 1) + "." + std::to_string(i);
        const double weight =
            static_cast<double>(w_.hops[h].new_vertices) / chunks;
        if (relaxed) {
          // A runs lock-free; its H part is serialized on the hash group
          // (uncontended by construction).
          SimTaskId a = add("S.A" + tag, TaskType::kSample, a_chunk_us, cpu_,
                            hop_done[h], 0.0);
          hop_done[h + 1].push_back(
              add("S.H" + tag, TaskType::kSample,
                  h_total_us / static_cast<double>(chunks), cpu_, {a},
                  weight, hash_group_));
        } else {
          // Fused A+H: every chunk queues behind the full lock traffic,
          // inflated by the thrashing cost of a contended lock.
          hop_done[h + 1].push_back(
              add("S.AH" + tag, TaskType::kSample,
                  a_chunk_us +
                      h_total_us * opt_.cost.ss_contention_factor,
                  cpu_, hop_done[h], weight));
        }
      }
    }

    // Allocation barrier: transfer buffer sizes are known only once the
    // last hop's table updates finish (paper Fig 13).
    SimTaskId barrier = sim_.add_task("T.alloc-barrier", 0.0, kNoResource,
                                      hop_done[w_.hops.size()]);

    // Reindexing: chunked per (exec-layer, hop), each runnable as soon as
    // that hop's table entries exist.
    const std::uint32_t L = w_.num_layers;
    std::vector<std::vector<SimTaskId>> layer_parts(L);
    for (std::uint32_t l = 0; l < L; ++l) {
      for (std::uint32_t h = 0; h < L - l; ++h) {
        double dur = chunked(reindex_us(w_.hops[h].edges), chunks);
        if (!relaxed) dur *= opt_.cost.sr_contention_factor;
        for (std::size_t i = 0; i < chunks; ++i) {
          layer_parts[l].push_back(add(
              "R.layer" + std::to_string(l) + ".hop" +
                  std::to_string(h + 1) + "." + std::to_string(i),
              TaskType::kReindex, dur, cpu_, hop_done[h + 1],
              static_cast<double>(w_.hops[h].edges) / chunks));
        }
      }
    }

    // Lookup: chunks per hop segment (vertices discovered in that hop),
    // each runnable right after the hop's updates.
    std::vector<std::pair<SimTaskId, double>> k_chunks;  // (task, bytes)
    auto add_segment = [&](std::uint64_t rows, std::size_t hop_idx,
                           const char* name) {
      if (rows == 0) return;
      // Chunk so a big segment fans out over at least 2x the cores.
      const std::uint64_t by_cores =
          (rows + 2 * opt_.cost.num_cores - 1) / (2 * opt_.cost.num_cores);
      const std::uint64_t per_chunk = std::max<std::uint64_t>(
          1, std::min<std::uint64_t>(opt_.cost.kt_chunk_rows, by_cores));
      for (std::uint64_t begin = 0; begin < rows; begin += per_chunk) {
        const std::uint64_t n = std::min(per_chunk, rows - begin);
        // Lookup scans the embedding table by original VID and never
        // touches the shared hash table: no contention either way.
        const double dur = lookup_us(n) / opt_.cost.parallel_efficiency;
        SimTaskId k = add(std::string("K.") + name + "." +
                              std::to_string(begin / per_chunk),
                          TaskType::kLookup, dur, cpu_, hop_done[hop_idx],
                          static_cast<double>(n));
        k_chunks.emplace_back(
            k, static_cast<double>(n * w_.feature_dim * sizeof(float)));
      }
    };
    // With an embedding cache, each segment only gathers its miss share
    // (hits are uniformly approximated across hops).
    const double miss = w_.miss_fraction();
    add_segment(static_cast<std::uint64_t>(w_.batch_size * miss), 0, "batch");
    for (std::size_t h = 0; h < w_.hops.size(); ++h)
      add_segment(
          static_cast<std::uint64_t>(w_.hops[h].new_vertices * miss), h + 1,
          ("hop" + std::to_string(h + 1)).c_str());

    // Transfers: embedding chunks pipeline behind their lookups (and the
    // allocation barrier); structures follow their layer's reindex parts.
    if (opt_.pipelined_kt) {
      // Coalesce consecutive lookup chunks into pinned staging buffers of
      // >= 256 KiB before ringing the DMA doorbell — fine-grained lookups,
      // coarse-grained transfers.
      std::vector<SimTaskId> group_deps{barrier};
      double group_bytes = 0.0;
      auto flush_group = [&] {
        if (group_bytes <= 0.0) return;
        add("T.emb-chunk", TaskType::kTransfer,
            transfer_us(static_cast<std::size_t>(group_bytes)), pcie_,
            group_deps, group_bytes / 1024.0);
        group_deps.assign({barrier});
        group_bytes = 0.0;
      };
      for (const auto& [k, bytes] : k_chunks) {
        group_deps.push_back(k);
        group_bytes += bytes;
        if (group_bytes >= 256.0 * 1024.0) flush_group();
      }
      flush_group();
    } else {
      std::vector<SimTaskId> deps{barrier};
      for (const auto& [k, bytes] : k_chunks) deps.push_back(k);
      add("T.emb", TaskType::kTransfer, transfer_us(w_.embedding_bytes()),
          pcie_, deps, static_cast<double>(w_.total_vertices));
    }
    for (std::uint32_t l = 0; l < L; ++l) {
      std::vector<SimTaskId> deps = layer_parts[l];
      deps.push_back(barrier);
      const std::size_t bytes =
          (2 * w_.layer_reindex_edges[l] + w_.total_vertices) *
          sizeof(std::uint32_t);
      add("T.struct.layer" + std::to_string(l), TaskType::kTransfer,
          transfer_us(bytes), pcie_, deps, 1.0);
    }
  }

  PreprocSchedule finish() {
    PreprocSchedule sched;
    sched.sim = sim_.run();
    sched.makespan_us = sched.sim.makespan;

    double total_weight[4] = {0, 0, 0, 0};
    for (const auto& t : tagged_)
      total_weight[static_cast<int>(t.type)] += t.weight;

    // Busy time, last finish, and the cumulative-completion timeline.
    std::vector<std::pair<double, double>> events[4];  // (finish, weight)
    for (const auto& t : tagged_) {
      const auto& task = sched.sim.tasks[t.id];
      const int type = static_cast<int>(t.type);
      sched.type_busy_us[type] += task.finish - task.start;
      sched.type_finish_us[type] =
          std::max(sched.type_finish_us[type], task.finish);
      events[type].emplace_back(task.finish, t.weight);
    }
    for (int type = 0; type < 4; ++type) {
      std::sort(events[type].begin(), events[type].end());
      double done = 0.0;
      for (const auto& [finish, weight] : events[type]) {
        done += weight;
        sched.timeline[type].push_back(TimelinePoint{
            finish, total_weight[type] > 0 ? done / total_weight[type] : 1.0});
      }
    }
    return sched;
  }

  const BatchWorkload& w_;
  const PlanOptions& opt_;
  gpusim::PcieModel pcie_model_;
  EventSim sim_;
  SimResourceId cpu_ = 0;
  SimResourceId pcie_ = 0;
  SimGroupId hash_group_ = 0;
  std::vector<Tagged> tagged_;
};

}  // namespace

PreprocSchedule plan_preprocessing(const BatchWorkload& workload,
                                   const PlanOptions& options) {
  if (workload.num_layers == 0 ||
      workload.hops.size() != workload.num_layers ||
      workload.layer_reindex_edges.size() != workload.num_layers)
    throw std::invalid_argument("plan_preprocessing: malformed workload");
  PlanBuilder builder(workload, options);
  return builder.build();
}

double end_to_end_us(const PreprocSchedule& schedule, double gpu_compute_us,
                     bool overlap_compute) {
  // In steady state, frameworks that overlap preprocessing with FWP/BWP
  // hide the shorter of the two behind the longer.
  if (overlap_compute)
    return std::max(schedule.makespan_us, gpu_compute_us);
  return schedule.makespan_us + gpu_compute_us;
}

}  // namespace gt::pipeline
