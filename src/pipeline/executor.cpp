#include "pipeline/executor.hpp"

#include <future>
#include <stdexcept>

namespace gt::pipeline {

using sampling::HopEdges;
using sampling::LayerGraphHost;
using sampling::SampledBatch;
using sampling::VidHashTable;

PreprocExecutor::PreprocExecutor(const Csr& graph,
                                 const EmbeddingTable& embeddings,
                                 std::uint32_t fanout,
                                 std::uint32_t num_layers, std::uint64_t seed,
                                 sampling::ReindexFormats formats)
    : graph_(graph),
      sampler_(graph, fanout, seed),
      lookup_(embeddings),
      num_layers_(num_layers),
      formats_(formats) {
  if (num_layers == 0) throw std::invalid_argument("need >= 1 layer");
}

PreprocResult PreprocExecutor::run_serial(
    std::span<const Vid> batch_vids) const {
  PreprocResult result;
  VidHashTable table;
  result.batch = sampler_.sample(batch_vids, num_layers_, table);
  for (std::uint32_t l = 0; l < num_layers_; ++l)
    result.layers.push_back(
        sampling::reindex_layer(result.batch, table, l, formats_));
  result.embeddings = lookup_.gather_all(result.batch.vid_order);
  result.hash_acquisitions = table.lock_acquisitions();
  result.hash_contended = table.contended_acquisitions();
  return result;
}

PreprocResult PreprocExecutor::run_parallel(std::span<const Vid> batch_vids,
                                            ThreadPool& pool,
                                            std::size_t chunks) const {
  if (chunks == 0) chunks = 1;
  PreprocResult result;
  VidHashTable table;

  SampledBatch& sb = result.batch;
  sb.num_layers = num_layers_;
  sb.batch.assign(batch_vids.begin(), batch_vids.end());

  // Hop 0: batch insert (a serialized hash update).
  for (Vid v : batch_vids) {
    bool is_new = false;
    table.insert_or_get(v, &is_new);
    if (!is_new)
      throw std::invalid_argument("run_parallel: duplicate batch vertex");
  }
  sb.set_sizes.push_back(table.size());

  std::vector<Vid> frontier(batch_vids.begin(), batch_vids.end());
  for (std::uint32_t h = 1; h <= num_layers_; ++h) {
    // A part: chunks of the frontier expand concurrently (per-vertex RNG
    // keeps the result partition-invariant).
    const std::size_t n = frontier.size();
    const std::size_t per_chunk = (n + chunks - 1) / chunks;
    std::vector<std::future<HopEdges>> parts;
    for (std::size_t begin = 0; begin < n; begin += per_chunk) {
      const std::size_t end = std::min(begin + per_chunk, n);
      parts.push_back(pool.submit([this, &frontier, begin, end, h] {
        return sampler_.choose_neighbors(
            std::span(frontier).subspan(begin, end - begin), h);
      }));
    }
    // H part: serialized, in chunk order -> deterministic VID assignment.
    HopEdges edges;
    for (auto& part : parts) {
      HopEdges chunk = part.get();
      sampling::NeighborSampler::insert_vertices(table, chunk);
      edges.src.insert(edges.src.end(), chunk.src.begin(), chunk.src.end());
      edges.dst.insert(edges.dst.end(), chunk.dst.begin(), chunk.dst.end());
    }
    const Vid prev_size = sb.set_sizes.back();
    sb.set_sizes.push_back(table.size());
    sb.hops.push_back(std::move(edges));
    if (h < num_layers_) {
      const auto order = table.insertion_order();
      frontier.assign(order.begin() + prev_size,
                      order.begin() + table.size());
    }
  }
  sb.vid_order = table.insertion_order();

  // R: layers reindex concurrently (read-only table traffic).
  std::vector<std::future<LayerGraphHost>> layer_futures;
  for (std::uint32_t l = 0; l < num_layers_; ++l) {
    layer_futures.push_back(pool.submit([this, &sb, &table, l] {
      return sampling::reindex_layer(sb, table, l, formats_);
    }));
  }

  // K: disjoint row ranges of the gathered table fill concurrently.
  result.embeddings = Matrix(sb.vid_order.size(), lookup_.table().dim());
  const std::size_t rows = sb.vid_order.size();
  const std::size_t rows_per_chunk = (rows + chunks - 1) / chunks;
  std::vector<std::future<void>> k_futures;
  for (std::size_t begin = 0; begin < rows; begin += rows_per_chunk) {
    const std::size_t end = std::min(begin + rows_per_chunk, rows);
    k_futures.push_back(pool.submit([this, &sb, &result, begin, end] {
      lookup_.gather_chunk(sb.vid_order, begin, end, result.embeddings);
    }));
  }

  for (auto& f : layer_futures) result.layers.push_back(f.get());
  for (auto& f : k_futures) f.get();
  result.hash_acquisitions = table.lock_acquisitions();
  result.hash_contended = table.contended_acquisitions();
  return result;
}

}  // namespace gt::pipeline
