#include "pipeline/executor.hpp"

#include <stdexcept>

#include "fault/fault.hpp"
#include "obs/live/worker_profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gt::pipeline {

using sampling::HopEdges;
using sampling::LayerGraphHost;
using sampling::SampledBatch;
using sampling::VidHashTable;

namespace {

/// Hash-table accounting shared by both executors: the legacy
/// PreprocResult fields and the obs registry report the same counts (a
/// regression test keeps the Fig 14 numbers trustworthy).
void record_preproc_metrics(const PreprocResult& result) {
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("preproc.batches").add(1);
  m.counter("preproc.hash_acquisitions").add(result.hash_acquisitions);
  m.counter("preproc.hash_contended").add(result.hash_contended);
  m.counter("preproc.sampled_vertices").add(result.batch.total_vertices());
}

}  // namespace

PreprocExecutor::PreprocExecutor(const Csr& graph,
                                 const EmbeddingTable& embeddings,
                                 std::uint32_t fanout,
                                 std::uint32_t num_layers, std::uint64_t seed,
                                 sampling::ReindexFormats formats)
    : graph_(graph),
      sampler_(graph, fanout, seed),
      lookup_(embeddings),
      num_layers_(num_layers),
      formats_(formats) {
  if (num_layers == 0) throw std::invalid_argument("need >= 1 layer");
}

PreprocResult PreprocExecutor::run_serial(
    std::span<const Vid> batch_vids) const {
  PreprocResult result;
  VidHashTable table;
  PreprocScratch scratch;
  run_serial_into(batch_vids, table, result, scratch);
  return result;
}

void PreprocExecutor::run_serial_into(std::span<const Vid> batch_vids,
                                      VidHashTable& table, PreprocResult& out,
                                      PreprocScratch& scratch) const {
  GT_OBS_SCOPE_N(span, "preproc.run_serial", "preproc");
  span.arg("batch_size", static_cast<std::int64_t>(batch_vids.size()));
  out.clear_for_reuse();
  scratch.layer_coo.resize(num_layers_);
  out.layers.resize(num_layers_);
  {
    GT_OBS_SCOPE("S.sample", "sampling");
    GT_LIVE_STAGE(kSample);
    sampler_.sample_into(batch_vids, num_layers_, table, out.batch);
  }
  for (std::uint32_t l = 0; l < num_layers_; ++l) {
    fault::check(fault::Site::kPreprocReindex, l);
    GT_OBS_SCOPE_N(r_span, "R.layer", "reindex");
    r_span.arg("layer", static_cast<std::int64_t>(l));
    GT_LIVE_STAGE(kReindex);
    sampling::reindex_layer_into(out.batch, table, l, formats_, out.layers[l],
                                 scratch.layer_coo[l]);
  }
  {
    GT_OBS_SCOPE("K.lookup", "lookup");
    GT_LIVE_STAGE(kLookup);
    out.embeddings.resize(out.batch.vid_order.size(), lookup_.table().dim());
    lookup_.gather_chunk(out.batch.vid_order, 0, out.batch.vid_order.size(),
                         out.embeddings);
  }
  out.hash_acquisitions = table.lock_acquisitions();
  out.hash_contended = table.contended_acquisitions();
  record_preproc_metrics(out);
}

PreprocResult PreprocExecutor::run_parallel(std::span<const Vid> batch_vids,
                                            ThreadPool& pool,
                                            std::size_t chunks) const {
  PreprocResult result;
  VidHashTable table;
  PreprocScratch scratch;
  run_parallel_into(batch_vids, pool, chunks, table, result, scratch);
  return result;
}

void PreprocExecutor::run_parallel_into(std::span<const Vid> batch_vids,
                                        ThreadPool& pool, std::size_t chunks,
                                        VidHashTable& table,
                                        PreprocResult& out,
                                        PreprocScratch& scratch) const {
  if (chunks == 0) chunks = 1;
  fault::check(fault::Site::kPreprocSample);
  GT_OBS_SCOPE_N(span, "preproc.run_parallel", "preproc");
  span.arg("batch_size", static_cast<std::int64_t>(batch_vids.size()));
  span.arg("chunks", static_cast<std::int64_t>(chunks));
  out.clear_for_reuse();
  scratch.layer_coo.resize(num_layers_);
  scratch.chunk_edges.resize(chunks);
  out.layers.resize(num_layers_);

  SampledBatch& sb = out.batch;
  sb.num_layers = num_layers_;
  sb.batch.assign(batch_vids.begin(), batch_vids.end());
  sb.set_sizes.clear();
  sb.hops.resize(num_layers_);

  // Hop 0: batch insert (a serialized hash update).
  for (Vid v : batch_vids) {
    bool is_new = false;
    table.insert_or_get(v, &is_new);
    if (!is_new)
      throw std::invalid_argument("run_parallel: duplicate batch vertex");
  }
  sb.set_sizes.push_back(table.size());

  std::vector<Vid> frontier(batch_vids.begin(), batch_vids.end());
  for (std::uint32_t h = 1; h <= num_layers_; ++h) {
    // A part: chunks of the frontier expand concurrently (per-vertex RNG
    // keeps the result partition-invariant). Slots are pre-cleared because
    // parallel_for may run fewer chunks than requested.
    for (HopEdges& ce : scratch.chunk_edges) {
      ce.src.clear();
      ce.dst.clear();
    }
    pool.parallel_for(
        0, frontier.size(), chunks,
        [this, &frontier, &scratch, h](std::size_t c, std::size_t lo,
                                       std::size_t hi) {
          GT_OBS_SCOPE_N(a_span, "S.A", "sampling");
          a_span.arg("hop", static_cast<std::int64_t>(h));
          a_span.arg("vertices", static_cast<std::int64_t>(hi - lo));
          GT_LIVE_STAGE(kSample);
          sampler_.choose_neighbors_into(
              std::span(frontier).subspan(lo, hi - lo), h,
              scratch.chunk_edges[c]);
        });
    // H part: serialized, in chunk order -> deterministic VID assignment.
    HopEdges& edges = sb.hops[h - 1];
    edges.src.clear();
    edges.dst.clear();
    for (const HopEdges& chunk : scratch.chunk_edges) {
      if (chunk.src.empty()) continue;
      GT_OBS_SCOPE_N(h_span, "S.H", "sampling");
      h_span.arg("hop", static_cast<std::int64_t>(h));
      GT_LIVE_STAGE(kSample);
      sampling::NeighborSampler::insert_vertices(table, chunk);
      edges.src.insert(edges.src.end(), chunk.src.begin(), chunk.src.end());
      edges.dst.insert(edges.dst.end(), chunk.dst.begin(), chunk.dst.end());
    }
    const Vid prev_size = sb.set_sizes.back();
    sb.set_sizes.push_back(table.size());
    if (h < num_layers_) {
      const auto order = table.insertion_order();
      frontier.assign(order.begin() + prev_size,
                      order.begin() + table.size());
    }
  }
  table.insertion_order_into(sb.vid_order);

  // R: layers reindex concurrently (read-only table traffic). One chunk
  // per layer keeps each layer's scratch private. Fault checks run on the
  // calling thread (the pool workers carry no fault scope).
  for (std::uint32_t l = 0; l < num_layers_; ++l)
    fault::check(fault::Site::kPreprocReindex, l);
  pool.parallel_for(0, num_layers_, num_layers_,
                    [this, &sb, &table, &out, &scratch](
                        std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t l = lo; l < hi; ++l) {
                        GT_OBS_SCOPE_N(r_span, "R.layer", "reindex");
                        r_span.arg("layer", static_cast<std::int64_t>(l));
                        GT_LIVE_STAGE(kReindex);
                        sampling::reindex_layer_into(
                            sb, table, static_cast<std::uint32_t>(l),
                            formats_, out.layers[l], scratch.layer_coo[l]);
                      }
                    });

  // K: disjoint row ranges of the gathered table fill concurrently.
  out.embeddings.resize(sb.vid_order.size(), lookup_.table().dim());
  pool.parallel_for(0, sb.vid_order.size(), chunks,
                    [this, &sb, &out](std::size_t, std::size_t lo,
                                      std::size_t hi) {
                      GT_OBS_SCOPE_N(k_span, "K.chunk", "lookup");
                      k_span.arg("rows", static_cast<std::int64_t>(hi - lo));
                      GT_LIVE_STAGE(kLookup);
                      lookup_.gather_chunk(sb.vid_order, lo, hi,
                                           out.embeddings);
                    });

  out.hash_acquisitions = table.lock_acquisitions();
  out.hash_contended = table.contended_acquisitions();
  record_preproc_metrics(out);
}

}  // namespace gt::pipeline
