#include "pipeline/executor.hpp"

#include <future>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gt::pipeline {

using sampling::HopEdges;
using sampling::LayerGraphHost;
using sampling::SampledBatch;
using sampling::VidHashTable;

namespace {

/// Hash-table accounting shared by both executors: the legacy
/// PreprocResult fields and the obs registry report the same counts (a
/// regression test keeps the Fig 14 numbers trustworthy).
void record_preproc_metrics(const PreprocResult& result) {
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("preproc.batches").add(1);
  m.counter("preproc.hash_acquisitions").add(result.hash_acquisitions);
  m.counter("preproc.hash_contended").add(result.hash_contended);
  m.counter("preproc.sampled_vertices").add(result.batch.total_vertices());
}

}  // namespace

PreprocExecutor::PreprocExecutor(const Csr& graph,
                                 const EmbeddingTable& embeddings,
                                 std::uint32_t fanout,
                                 std::uint32_t num_layers, std::uint64_t seed,
                                 sampling::ReindexFormats formats)
    : graph_(graph),
      sampler_(graph, fanout, seed),
      lookup_(embeddings),
      num_layers_(num_layers),
      formats_(formats) {
  if (num_layers == 0) throw std::invalid_argument("need >= 1 layer");
}

PreprocResult PreprocExecutor::run_serial(
    std::span<const Vid> batch_vids) const {
  GT_OBS_SCOPE_N(span, "preproc.run_serial", "preproc");
  span.arg("batch_size", static_cast<std::int64_t>(batch_vids.size()));
  PreprocResult result;
  VidHashTable table;
  {
    GT_OBS_SCOPE("S.sample", "sampling");
    result.batch = sampler_.sample(batch_vids, num_layers_, table);
  }
  for (std::uint32_t l = 0; l < num_layers_; ++l) {
    GT_OBS_SCOPE_N(r_span, "R.layer", "reindex");
    r_span.arg("layer", static_cast<std::int64_t>(l));
    result.layers.push_back(
        sampling::reindex_layer(result.batch, table, l, formats_));
  }
  {
    GT_OBS_SCOPE("K.lookup", "lookup");
    result.embeddings = lookup_.gather_all(result.batch.vid_order);
  }
  result.hash_acquisitions = table.lock_acquisitions();
  result.hash_contended = table.contended_acquisitions();
  record_preproc_metrics(result);
  return result;
}

PreprocResult PreprocExecutor::run_parallel(std::span<const Vid> batch_vids,
                                            ThreadPool& pool,
                                            std::size_t chunks) const {
  if (chunks == 0) chunks = 1;
  GT_OBS_SCOPE_N(span, "preproc.run_parallel", "preproc");
  span.arg("batch_size", static_cast<std::int64_t>(batch_vids.size()));
  span.arg("chunks", static_cast<std::int64_t>(chunks));
  PreprocResult result;
  VidHashTable table;

  SampledBatch& sb = result.batch;
  sb.num_layers = num_layers_;
  sb.batch.assign(batch_vids.begin(), batch_vids.end());

  // Hop 0: batch insert (a serialized hash update).
  for (Vid v : batch_vids) {
    bool is_new = false;
    table.insert_or_get(v, &is_new);
    if (!is_new)
      throw std::invalid_argument("run_parallel: duplicate batch vertex");
  }
  sb.set_sizes.push_back(table.size());

  std::vector<Vid> frontier(batch_vids.begin(), batch_vids.end());
  for (std::uint32_t h = 1; h <= num_layers_; ++h) {
    // A part: chunks of the frontier expand concurrently (per-vertex RNG
    // keeps the result partition-invariant).
    const std::size_t n = frontier.size();
    const std::size_t per_chunk = (n + chunks - 1) / chunks;
    std::vector<std::future<HopEdges>> parts;
    for (std::size_t begin = 0; begin < n; begin += per_chunk) {
      const std::size_t end = std::min(begin + per_chunk, n);
      parts.push_back(pool.submit([this, &frontier, begin, end, h] {
        GT_OBS_SCOPE_N(a_span, "S.A", "sampling");
        a_span.arg("hop", static_cast<std::int64_t>(h));
        a_span.arg("vertices", static_cast<std::int64_t>(end - begin));
        return sampler_.choose_neighbors(
            std::span(frontier).subspan(begin, end - begin), h);
      }));
    }
    // H part: serialized, in chunk order -> deterministic VID assignment.
    HopEdges edges;
    for (auto& part : parts) {
      HopEdges chunk = part.get();
      GT_OBS_SCOPE_N(h_span, "S.H", "sampling");
      h_span.arg("hop", static_cast<std::int64_t>(h));
      sampling::NeighborSampler::insert_vertices(table, chunk);
      edges.src.insert(edges.src.end(), chunk.src.begin(), chunk.src.end());
      edges.dst.insert(edges.dst.end(), chunk.dst.begin(), chunk.dst.end());
    }
    const Vid prev_size = sb.set_sizes.back();
    sb.set_sizes.push_back(table.size());
    sb.hops.push_back(std::move(edges));
    if (h < num_layers_) {
      const auto order = table.insertion_order();
      frontier.assign(order.begin() + prev_size,
                      order.begin() + table.size());
    }
  }
  sb.vid_order = table.insertion_order();

  // R: layers reindex concurrently (read-only table traffic).
  std::vector<std::future<LayerGraphHost>> layer_futures;
  for (std::uint32_t l = 0; l < num_layers_; ++l) {
    layer_futures.push_back(pool.submit([this, &sb, &table, l] {
      GT_OBS_SCOPE_N(r_span, "R.layer", "reindex");
      r_span.arg("layer", static_cast<std::int64_t>(l));
      return sampling::reindex_layer(sb, table, l, formats_);
    }));
  }

  // K: disjoint row ranges of the gathered table fill concurrently.
  result.embeddings = Matrix(sb.vid_order.size(), lookup_.table().dim());
  const std::size_t rows = sb.vid_order.size();
  const std::size_t rows_per_chunk = (rows + chunks - 1) / chunks;
  std::vector<std::future<void>> k_futures;
  for (std::size_t begin = 0; begin < rows; begin += rows_per_chunk) {
    const std::size_t end = std::min(begin + rows_per_chunk, rows);
    k_futures.push_back(pool.submit([this, &sb, &result, begin, end] {
      GT_OBS_SCOPE_N(k_span, "K.chunk", "lookup");
      k_span.arg("rows", static_cast<std::int64_t>(end - begin));
      lookup_.gather_chunk(sb.vid_order, begin, end, result.embeddings);
    }));
  }

  for (auto& f : layer_futures) result.layers.push_back(f.get());
  for (auto& f : k_futures) f.get();
  result.hash_acquisitions = table.lock_acquisitions();
  result.hash_contended = table.contended_acquisitions();
  record_preproc_metrics(result);
  return result;
}

}  // namespace gt::pipeline
