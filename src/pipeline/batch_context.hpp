// Reusable per-batch execution context (gt::BatchContext).
//
// One context owns every host-side buffer a batch needs: the bump-pointer
// tensor arena (activations, gradients, downloads), the vertex hash table,
// the preprocessing result + scratch, the priced workload/schedule, and
// the small label/batch-vid vectors. The steady-state service loop keeps N
// contexts alive and calls begin_batch() before each batch: the arena
// rewinds and the hash table clears, but every backing allocation
// survives — after warm-up a batch performs zero arena growth and zero
// new heap Matrix allocations (a regression test enforces this).
//
// Ownership rules (DESIGN.md "Batch contexts"):
//  * Views handed out by the arena are valid until the next begin_batch()
//    on the same context; nothing that outlives the batch may hold one.
//  * Distinct contexts are fully independent — prepare_batch may run
//    concurrently on different contexts. A single context must never be
//    touched by two threads at once.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pipeline/executor.hpp"
#include "pipeline/plan.hpp"
#include "pipeline/workload.hpp"
#include "sampling/hash_table.hpp"
#include "tensor/arena.hpp"

namespace gt::sampling {
class CacheHierarchy;
}

namespace gt::pipeline {

class BatchContext {
 public:
  BatchContext() = default;
  BatchContext(const BatchContext&) = delete;
  BatchContext& operator=(const BatchContext&) = delete;

  /// Rewind for a fresh batch: the arena resets, the hash table clears,
  /// the result counters zero. All capacity is kept, and the per-batch
  /// arena baselines (allocations/growths) are snapshotted.
  void begin_batch();

  Arena& arena() noexcept { return arena_; }
  const Arena& arena() const noexcept { return arena_; }
  sampling::VidHashTable& table() noexcept { return table_; }
  PreprocResult& preproc() noexcept { return preproc_; }
  const PreprocResult& preproc() const noexcept { return preproc_; }
  PreprocScratch& scratch() noexcept { return scratch_; }
  BatchWorkload& workload() noexcept { return workload_; }
  const BatchWorkload& workload() const noexcept { return workload_; }
  PreprocSchedule& schedule() noexcept { return schedule_; }
  const PreprocSchedule& schedule() const noexcept { return schedule_; }
  std::vector<Vid>& batch_vids() noexcept { return batch_vids_; }
  std::vector<std::uint32_t>& labels() noexcept { return labels_; }

  std::uint64_t batches_begun() const noexcept { return batches_begun_; }

  /// Arena allocations made since the last begin_batch(). Batch-intrinsic:
  /// identical no matter which context (or how many workers) ran the
  /// batch, so it is safe to compare across serial/concurrent runs.
  std::uint64_t arena_allocations_this_batch() const noexcept {
    return arena_.stats().allocations - alloc_snapshot_;
  }
  /// Arena block growths since the last begin_batch(). Zero once the
  /// context is warm; context-local (depends on which batches this
  /// context has seen before).
  std::uint64_t arena_growths_this_batch() const noexcept {
    return arena_.stats().growths - growth_snapshot_;
  }

  /// Dataset-lifetime cache hierarchy the executing framework attached for
  /// this batch (non-owning; may be null). Lets observers and the prefetch
  /// hook below reach the tiers without widening framework signatures.
  void set_cache_hierarchy(sampling::CacheHierarchy* hierarchy) noexcept {
    cache_hierarchy_ = hierarchy;
  }
  sampling::CacheHierarchy* cache_hierarchy() const noexcept {
    return cache_hierarchy_;
  }

  /// Sampler-lookahead hook: prepare_batch arms the prefetcher once the
  /// batch's vid_order is final, marking those rows warmable while the
  /// previous batch executes. Cleared by begin_batch(); the batch index
  /// is carried so a context reused for a different batch can't leak an
  /// armed hint across batches.
  void arm_cache_prefetch(std::uint64_t batch_index) noexcept {
    prefetch_armed_ = true;
    prefetch_batch_ = batch_index;
  }
  bool cache_prefetch_armed(std::uint64_t batch_index) const noexcept {
    return prefetch_armed_ && prefetch_batch_ == batch_index;
  }

  /// Cached preprocessing executor, rebuilt only when the keyed
  /// configuration (graph, embeddings, fanout, layers, seed, formats)
  /// changes, so steady-state batches reuse the sampler/lookup setup.
  PreprocExecutor& executor_for(const Csr& graph,
                                const EmbeddingTable& embeddings,
                                std::uint32_t fanout,
                                std::uint32_t num_layers, std::uint64_t seed,
                                sampling::ReindexFormats formats);

 private:
  Arena arena_;
  sampling::VidHashTable table_;
  PreprocResult preproc_;
  PreprocScratch scratch_;
  BatchWorkload workload_;
  PreprocSchedule schedule_;
  std::vector<Vid> batch_vids_;
  std::vector<std::uint32_t> labels_;

  std::unique_ptr<PreprocExecutor> executor_;
  const void* exec_graph_ = nullptr;
  const void* exec_embeddings_ = nullptr;
  std::uint32_t exec_fanout_ = 0;
  std::uint32_t exec_layers_ = 0;
  std::uint64_t exec_seed_ = 0;
  sampling::ReindexFormats exec_formats_{};

  sampling::CacheHierarchy* cache_hierarchy_ = nullptr;
  bool prefetch_armed_ = false;
  std::uint64_t prefetch_batch_ = 0;

  std::uint64_t batches_begun_ = 0;
  std::uint64_t alloc_snapshot_ = 0;
  std::uint64_t growth_snapshot_ = 0;
};

}  // namespace gt::pipeline

namespace gt {
using pipeline::BatchContext;  // service-level name
}
