#include "pipeline/workload.hpp"

namespace gt::pipeline {

BatchWorkload workload_from(const sampling::SampledBatch& batch,
                            std::size_t feature_dim) {
  BatchWorkload w;
  w.num_layers = batch.num_layers;
  w.batch_size = batch.batch.size();
  for (std::uint32_t h = 0; h < batch.num_layers; ++h) {
    HopWork hop;
    hop.frontier = h == 0
                       ? batch.set_sizes[0]
                       : batch.set_sizes[h] - batch.set_sizes[h - 1];
    hop.edges = batch.hops[h].num_edges();
    hop.hash_inserts = batch.hops[h].num_edges();  // one insert_or_get per src
    hop.new_vertices = batch.set_sizes[h + 1] - batch.set_sizes[h];
    w.hops.push_back(hop);
  }
  for (std::uint32_t l = 0; l < batch.num_layers; ++l)
    w.layer_reindex_edges.push_back(batch.layer_edges(l));
  w.total_vertices = batch.total_vertices();
  w.feature_dim = feature_dim;
  return w;
}

}  // namespace gt::pipeline
