// Real (data-producing) preprocessing executors.
//
// The discrete-event planner prices schedules; these executors actually
// run sampling, reindexing, and embedding lookup — serially or across a
// thread pool structured like the service-wide tensor scheduler (parallel
// algorithm chunks, hash updates serialized in deterministic order). The
// parallel path must produce bit-identical results to the serial one;
// tests enforce it. Real hash-table contention counters are reported for
// the Fig 14 measurements.
//
// Both executors come in two forms: the owning run_serial/run_parallel
// (fresh hash table and result per call) and the context-backed
// run_serial_into/run_parallel_into, which fill a caller-held
// PreprocResult + VidHashTable + PreprocScratch so the steady-state batch
// loop reuses every buffer (gt::BatchContext owns that trio).
#pragma once

#include <cstdint>
#include <span>

#include "datasets/embedding.hpp"
#include "graph/csr.hpp"
#include "sampling/lookup.hpp"
#include "sampling/reindex.hpp"
#include "sampling/sampler.hpp"
#include "tensor/matrix.hpp"
#include "util/thread_pool.hpp"

namespace gt::pipeline {

struct PreprocResult {
  sampling::SampledBatch batch;
  std::vector<sampling::LayerGraphHost> layers;  // per exec-layer
  Matrix embeddings;                             // layer-0 input table
  std::uint64_t hash_acquisitions = 0;
  std::uint64_t hash_contended = 0;

  /// Reset counters for a fresh batch; every vector keeps its capacity
  /// (the fillers overwrite the data in place).
  void clear_for_reuse() noexcept {
    hash_acquisitions = 0;
    hash_contended = 0;
  }
};

/// Reusable working memory the executors need besides the result itself.
struct PreprocScratch {
  std::vector<Coo> layer_coo;                 // per-layer reindex staging
  std::vector<sampling::HopEdges> chunk_edges;  // per-A-chunk expansion
};

class PreprocExecutor {
 public:
  PreprocExecutor(const Csr& graph, const EmbeddingTable& embeddings,
                  std::uint32_t fanout, std::uint32_t num_layers,
                  std::uint64_t seed, sampling::ReindexFormats formats);

  const sampling::NeighborSampler& sampler() const noexcept {
    return sampler_;
  }
  std::uint32_t num_layers() const noexcept { return num_layers_; }
  const sampling::ReindexFormats& formats() const noexcept {
    return formats_;
  }

  /// Single-threaded: S hops, then R per layer, then K.
  PreprocResult run_serial(std::span<const Vid> batch_vids) const;

  /// Service-wide structured: A chunks fan out over the pool, H updates
  /// apply serially in chunk order (deterministic VIDs), R layers and K
  /// chunks run concurrently afterwards.
  PreprocResult run_parallel(std::span<const Vid> batch_vids,
                             ThreadPool& pool,
                             std::size_t chunks = 8) const;

  /// Context-backed run_serial: identical output, zero steady-state
  /// allocation. `table` must be clear()ed by the caller.
  void run_serial_into(std::span<const Vid> batch_vids, sampling::VidHashTable& table,
                       PreprocResult& out, PreprocScratch& scratch) const;

  /// Context-backed run_parallel; same determinism contract as
  /// run_parallel (bit-identical to serial).
  void run_parallel_into(std::span<const Vid> batch_vids, ThreadPool& pool,
                         std::size_t chunks, sampling::VidHashTable& table,
                         PreprocResult& out, PreprocScratch& scratch) const;

 private:
  const Csr& graph_;
  sampling::NeighborSampler sampler_;
  sampling::EmbeddingLookup lookup_;
  std::uint32_t num_layers_;
  sampling::ReindexFormats formats_;
};

}  // namespace gt::pipeline
