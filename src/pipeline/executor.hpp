// Real (data-producing) preprocessing executors.
//
// The discrete-event planner prices schedules; these executors actually
// run sampling, reindexing, and embedding lookup — serially or across a
// thread pool structured like the service-wide tensor scheduler (parallel
// algorithm chunks, hash updates serialized in deterministic order). The
// parallel path must produce bit-identical results to the serial one;
// tests enforce it. Real hash-table contention counters are reported for
// the Fig 14 measurements.
#pragma once

#include <cstdint>
#include <span>

#include "datasets/embedding.hpp"
#include "graph/csr.hpp"
#include "sampling/lookup.hpp"
#include "sampling/reindex.hpp"
#include "sampling/sampler.hpp"
#include "tensor/matrix.hpp"
#include "util/thread_pool.hpp"

namespace gt::pipeline {

struct PreprocResult {
  sampling::SampledBatch batch;
  std::vector<sampling::LayerGraphHost> layers;  // per exec-layer
  Matrix embeddings;                             // layer-0 input table
  std::uint64_t hash_acquisitions = 0;
  std::uint64_t hash_contended = 0;
};

class PreprocExecutor {
 public:
  PreprocExecutor(const Csr& graph, const EmbeddingTable& embeddings,
                  std::uint32_t fanout, std::uint32_t num_layers,
                  std::uint64_t seed, sampling::ReindexFormats formats);

  const sampling::NeighborSampler& sampler() const noexcept {
    return sampler_;
  }

  /// Single-threaded: S hops, then R per layer, then K.
  PreprocResult run_serial(std::span<const Vid> batch_vids) const;

  /// Service-wide structured: A chunks fan out over the pool, H updates
  /// apply serially in chunk order (deterministic VIDs), R layers and K
  /// chunks run concurrently afterwards.
  PreprocResult run_parallel(std::span<const Vid> batch_vids,
                             ThreadPool& pool,
                             std::size_t chunks = 8) const;

 private:
  const Csr& graph_;
  sampling::NeighborSampler sampler_;
  sampling::EmbeddingLookup lookup_;
  std::uint32_t num_layers_;
  sampling::ReindexFormats formats_;
};

}  // namespace gt::pipeline
