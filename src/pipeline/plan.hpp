// Preprocessing schedule construction (paper §V-B, Figs 12-14).
//
// Four strategies are modelled:
//  * kSerial            — single-threaded S -> R -> K -> T chain (stock PyG).
//  * kParallelTasks     — each task type fans out over all cores, but task
//                         types are barrier-separated (multi-threaded PyG /
//                         DGL / SALIENT preprocessing).
//  * kServiceWideNoRelax— the per-layer/per-type subtask pipeline of the
//                         service-wide tensor scheduler, *without* the
//                         contention relaxing: sampling chunks fuse their
//                         hash updates (lock serializes them) and reindex
//                         chunks race the sampler for the table.
//  * kServiceWide       — the full scheduler: algorithm (A) and hash (H)
//                         parts split, H serialized on its own, reindex
//                         ordered after the hash updates it reads, K->T
//                         chunks pipelined through pinned memory behind the
//                         allocation barrier (sizes known after the last
//                         sampling hop).
#pragma once

#include <string>
#include <vector>

#include "gpusim/pcie.hpp"
#include "pipeline/workload.hpp"
#include "util/discrete_event.hpp"

namespace gt::pipeline {

enum class PreprocStrategy {
  kSerial,
  kParallelTasks,
  kServiceWideNoRelax,
  kServiceWide,
};

const char* to_string(PreprocStrategy s);

/// Task-type attribution of simulated time, for Fig 12/20-style reports.
enum class TaskType { kSample, kReindex, kLookup, kTransfer };

struct PlanOptions {
  PreprocStrategy strategy = PreprocStrategy::kServiceWide;
  bool pinned_memory = false;     // SALIENT / Prepro-GT transfer path
  bool pipelined_kt = false;      // transfer each lookup chunk when ready
  HostCostParams cost;
  gpusim::PcieParams pcie;
};

struct TimelinePoint {
  double time_us = 0.0;
  double fraction = 0.0;  // of that task type's work items completed
};

struct PreprocSchedule {
  double makespan_us = 0.0;
  double type_busy_us[4] = {0, 0, 0, 0};      // indexed by TaskType
  double type_finish_us[4] = {0, 0, 0, 0};    // last finish per type
  std::vector<TimelinePoint> timeline[4];     // Fig 20 series per type
  SimResult sim;                               // full task-level detail
};

/// Build and run the schedule for one batch's preprocessing.
PreprocSchedule plan_preprocessing(const BatchWorkload& workload,
                                   const PlanOptions& options);

/// Steady-state end-to-end batch latency: preprocessing combined with GPU
/// compute (FWP+BWP). Frameworks that overlap preprocessing with training
/// hide the shorter of the two (common DL-framework practice, §V-B).
double end_to_end_us(const PreprocSchedule& schedule, double gpu_compute_us,
                     bool overlap_compute);

}  // namespace gt::pipeline
