// Synthetic graph generators standing in for the paper's OGB / GraphSAINT /
// SNAP datasets (DESIGN.md §2). Each family reproduces the degree-shape that
// matters for the evaluation: heavy-tailed social/web graphs, near-uniform
// road networks, and bipartite-flavoured commerce graphs.
#pragma once

#include <cstdint>

#include "graph/coo.hpp"
#include "util/rng.hpp"

namespace gt {

/// Heavy-tailed directed graph (social networks, web, citations).
/// Vertex weights w_v ~ v^-alpha (Zipf); both endpoints of each edge are
/// drawn from the weight distribution (Chung-Lu flavour). alpha in (0, 1]
/// controls skew: larger alpha -> heavier tail.
Coo generate_power_law(Vid num_vertices, Eid num_edges, double alpha,
                       std::uint64_t seed);

/// Commerce / interaction graph: a small "item" partition with Zipf
/// popularity receives edges from a large "user" partition; edges go in
/// both directions so dst degrees stay heavy-tailed.
Coo generate_bipartite(Vid num_users, Vid num_items, Eid num_edges,
                       double alpha, std::uint64_t seed);

/// Road-network-like graph: 2D grid, each vertex linked to a subset of its
/// 4 neighbours (directed both ways), yielding a tight, low-variance degree
/// distribution around 2-4.
Coo generate_road(Vid num_vertices, double edge_keep_prob,
                  std::uint64_t seed);

}  // namespace gt
