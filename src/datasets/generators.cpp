#include "datasets/generators.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"

namespace gt {

namespace {

/// Walker alias table for O(1) sampling from a discrete distribution.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    prob_.resize(n);
    alias_.resize(n);
    double total = 0.0;
    for (double w : weights) total += w;
    std::vector<double> scaled(n);
    std::vector<std::size_t> small, large;
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
      (scaled[i] < 1.0 ? small : large).push_back(i);
    }
    while (!small.empty() && !large.empty()) {
      const std::size_t s = small.back();
      small.pop_back();
      const std::size_t l = large.back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = scaled[l] + scaled[s] - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (std::size_t i : large) prob_[i] = 1.0;
    for (std::size_t i : small) prob_[i] = 1.0;
  }

  std::size_t sample(Xoshiro256& rng) const {
    const std::size_t i = rng.uniform(prob_.size());
    return rng.uniform_real() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
};

std::vector<double> zipf_weights(std::size_t n, double alpha) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
  return w;
}

}  // namespace

Coo generate_power_law(Vid num_vertices, Eid num_edges, double alpha,
                       std::uint64_t seed) {
  if (num_vertices < 2) throw std::invalid_argument("need >= 2 vertices");
  Xoshiro256 rng(seed);
  AliasTable table(zipf_weights(num_vertices, alpha));
  GraphBuilder builder(num_vertices);
  // Vertex identity is shuffled through a fixed permutation so high-degree
  // hubs are spread over the VID space (like real renumbered datasets).
  std::vector<Vid> perm(num_vertices);
  for (Vid v = 0; v < num_vertices; ++v) perm[v] = v;
  for (Vid v = num_vertices - 1; v > 0; --v) {
    const Vid j = static_cast<Vid>(rng.uniform(v + 1));
    std::swap(perm[v], perm[j]);
  }
  for (Eid e = 0; e < num_edges; ++e) {
    Vid s = perm[table.sample(rng)];
    Vid d = perm[table.sample(rng)];
    if (s == d) d = perm[(static_cast<std::size_t>(d) + 1) % num_vertices];
    builder.add_edge(s, d);
  }
  return builder.build_coo();
}

Coo generate_bipartite(Vid num_users, Vid num_items, Eid num_edges,
                       double alpha, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  AliasTable items(zipf_weights(num_items, alpha));
  const Vid n = num_users + num_items;
  GraphBuilder builder(n);
  for (Eid e = 0; e < num_edges / 2; ++e) {
    const Vid user = static_cast<Vid>(rng.uniform(num_users));
    const Vid item = num_users + static_cast<Vid>(items.sample(rng));
    builder.add_undirected(user, item);
  }
  return builder.build_coo();
}

Coo generate_road(Vid num_vertices, double edge_keep_prob,
                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const Vid side = static_cast<Vid>(std::sqrt(static_cast<double>(num_vertices)));
  if (side < 2) throw std::invalid_argument("road graph too small");
  const Vid n = side * side;
  GraphBuilder builder(n);
  for (Vid r = 0; r < side; ++r) {
    for (Vid c = 0; c < side; ++c) {
      const Vid v = r * side + c;
      if (c + 1 < side && rng.uniform_real() < edge_keep_prob)
        builder.add_undirected(v, v + 1);
      if (r + 1 < side && rng.uniform_real() < edge_keep_prob)
        builder.add_undirected(v, v + side);
    }
  }
  return builder.build_coo();
}

}  // namespace gt
