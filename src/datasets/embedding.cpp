#include "datasets/embedding.hpp"

#include <stdexcept>

namespace gt {

namespace {
inline std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

EmbeddingTable::EmbeddingTable(std::size_t num_vertices, std::size_t dim,
                               std::uint64_t seed)
    : num_vertices_(num_vertices), dim_(dim), seed_(seed) {
  if (dim == 0) throw std::invalid_argument("embedding dim must be > 0");
}

float EmbeddingTable::value(Vid vid, std::size_t col) const noexcept {
  const std::uint64_t h =
      mix(seed_ ^ (static_cast<std::uint64_t>(vid) << 24) ^ col);
  // Top 24 bits -> [-1, 1).
  return static_cast<float>(h >> 40) * (2.0f / 16777216.0f) - 1.0f;
}

Matrix EmbeddingTable::gather(std::span<const Vid> vids) const {
  Matrix out(vids.size(), dim_);
  for (std::size_t r = 0; r < vids.size(); ++r) gather_row(vids[r], out.row(r));
  return out;
}

void EmbeddingTable::gather_row(Vid vid, std::span<float> out) const {
  if (vid >= num_vertices_)
    throw std::out_of_range("EmbeddingTable::gather_row: vid out of range");
  for (std::size_t c = 0; c < dim_; ++c) out[c] = value(vid, c);
}

std::uint32_t synthetic_label(Vid vid, std::uint32_t num_classes,
                              std::uint64_t seed) {
  return static_cast<std::uint32_t>(
      mix(seed ^ 0x6c62272e07bb0142ull ^ vid) % num_classes);
}

}  // namespace gt
