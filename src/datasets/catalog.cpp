#include "datasets/catalog.hpp"

#include <stdexcept>

#include "datasets/generators.hpp"
#include "graph/convert.hpp"

namespace gt {

namespace {

DatasetSpec spec(std::string name, GraphFamily family, Vid v, Eid e,
                 double alpha, std::uint32_t feat, std::uint32_t out,
                 bool heavy, std::uint32_t fanout, PaperStats paper) {
  DatasetSpec s;
  s.name = std::move(name);
  s.family = family;
  s.num_vertices = v;
  s.num_edges = e;
  s.alpha = alpha;
  s.feature_dim = feat;
  s.output_dim = out;
  s.heavy_features = heavy;
  s.fanout = fanout;
  s.paper = paper;
  return s;
}

std::vector<DatasetSpec> build_catalog() {
  std::vector<DatasetSpec> c;
  // -- Light-feature graphs (paper feature dims 100..602, scaled /8) --------
  c.push_back(spec("products", GraphFamily::kPowerLaw, 50'000, 620'000, 0.90,
                   13, 47, false, 10,
                   PaperStats{2'000'000, 124'000'000, 100, 2.2, 47}));
  c.push_back(spec("citation2", GraphFamily::kPowerLaw, 60'000, 610'000, 0.85,
                   16, 2, false, 8,
                   PaperStats{3'000'000, 61'000'000, 128, 1.8, 2}));
  c.push_back(spec("papers", GraphFamily::kPowerLaw, 110'000, 1'000'000, 0.85,
                   16, 172, false, 6,
                   PaperStats{111'000'000, 2'000'000'000, 128, 1.3, 172}));
  c.push_back(spec("amazon", GraphFamily::kBipartite, 40'000, 660'000, 0.95,
                   25, 2, false, 12,
                   PaperStats{2'000'000, 264'000'000, 200, 2.8, 2}));
  c.push_back(spec("reddit2", GraphFamily::kPowerLaw, 23'000, 460'000, 0.90,
                   75, 41, false, 16,
                   PaperStats{233'000, 23'000'000, 602, 4.9, 41}));
  // -- Heavy-feature graphs (paper feature dim 4353, scaled /8 = 544) -------
  c.push_back(spec("gowalla", GraphFamily::kBipartite, 20'000, 200'000, 0.95,
                   544, 2, true, 12,
                   PaperStats{197'000, 2'000'000, 4353, 3.4, 2}));
  c.push_back(spec("google", GraphFamily::kPowerLaw, 46'000, 250'000, 0.90,
                   544, 2, true, 12,
                   PaperStats{916'000, 5'000'000, 4353, 3.3, 2}));
  c.push_back(spec("roadnet-ca", GraphFamily::kRoad, 50'000, 150'000, 0.0,
                   544, 2, true, 6,
                   PaperStats{2'000'000, 6'000'000, 4353, 3.3, 2}));
  c.push_back(spec("wiki-talk", GraphFamily::kPowerLaw, 40'000, 100'000, 0.95,
                   544, 2, true, 8,
                   PaperStats{2'000'000, 5'000'000, 4353, 2.1, 2}));
  // livejournal keeps the largest sampled subgraph among the heavy graphs
  // (paper: 393K sampled edges, the most of any heavy workload, which is
  // what drives the DL-approach NGCF out-of-memory failure).
  c.push_back(spec("livejournal", GraphFamily::kPowerLaw, 50'000, 960'000, 0.90,
                   544, 2, true, 14,
                   PaperStats{5'000'000, 96'000'000, 4353, 1.7, 2}));
  // social: the cache-ablation workload (DESIGN.md §15). Maximally skewed
  // Zipf tail so repeated sampling keeps landing on the same hub vertices —
  // the regime where the embedding cache hierarchy pays off — with heavy
  // features so the avoided K/T volume is a visible share of the batch.
  // Contrast with roadnet-ca (uniform degrees, alpha 0) where a
  // degree-pinned tier has no hubs to exploit.
  c.push_back(spec("social", GraphFamily::kPowerLaw, 30'000, 400'000, 0.98,
                   544, 2, true, 12,
                   PaperStats{3'000'000, 48'000'000, 4353, 2.5, 2}));
  return c;
}

}  // namespace

const std::vector<DatasetSpec>& catalog() {
  static const std::vector<DatasetSpec> c = build_catalog();
  return c;
}

const DatasetSpec& find_spec(std::string_view name) {
  for (const auto& s : catalog())
    if (s.name == name) return s;
  throw std::out_of_range("unknown dataset: " + std::string(name));
}

Dataset generate(const DatasetSpec& spec, std::uint64_t seed) {
  Coo coo;
  const std::uint64_t graph_seed = derive_seed(seed, 1);
  switch (spec.family) {
    case GraphFamily::kPowerLaw:
      coo = generate_power_law(spec.num_vertices, spec.num_edges, spec.alpha,
                               graph_seed);
      break;
    case GraphFamily::kBipartite: {
      // 90% of vertices are "users", 10% "items".
      const Vid items = spec.num_vertices / 10;
      coo = generate_bipartite(spec.num_vertices - items, items,
                               spec.num_edges, spec.alpha, graph_seed);
      break;
    }
    case GraphFamily::kRoad:
      coo = generate_road(spec.num_vertices, 0.92, graph_seed);
      break;
  }
  Csr csr = coo_to_csr(coo);
  EmbeddingTable emb(coo.num_vertices, spec.feature_dim, derive_seed(seed, 2));
  return Dataset{spec, std::move(coo), std::move(csr), std::move(emb)};
}

Dataset generate(std::string_view name, std::uint64_t seed) {
  return generate(find_spec(name), seed);
}

}  // namespace gt
