// The ten-workload catalog of the paper's Table II, scaled to laptop size.
//
// Vertex/edge counts are scaled ~1/40 .. 1/2000 (largest graphs scaled the
// most) and feature dims by 1/8, preserving the properties the evaluation
// hinges on: the light/heavy feature split, degree-distribution shapes, the
// edges-per-vertex ratio of sampled subgraphs, and the feature/hidden
// dimensionality ratios that drive dynamic kernel placement.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "datasets/embedding.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace gt {

enum class GraphFamily { kPowerLaw, kBipartite, kRoad };

/// Reference values copied from the paper's Table II (full-scale), reported
/// alongside our scaled measurements by bench_table2_datasets.
struct PaperStats {
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint32_t feature_dim = 0;
  double sampled_edges_per_vertex = 0.0;
  std::uint32_t output_dim = 0;
};

struct DatasetSpec {
  std::string name;
  GraphFamily family = GraphFamily::kPowerLaw;
  Vid num_vertices = 0;      // scaled
  Eid num_edges = 0;         // scaled (approximate for kRoad)
  double alpha = 0.7;        // Zipf skew for kPowerLaw / kBipartite
  std::uint32_t feature_dim = 0;  // scaled
  std::uint32_t hidden_dim = 8;   // paper: 64, scaled /8 with features
  std::uint32_t output_dim = 2;
  bool heavy_features = false;
  std::uint32_t fanout = 2;       // neighbor-sampling fan-out per layer
  std::uint32_t num_layers = 2;
  std::uint32_t batch_size = 300; // dst vertices per batch (paper §VI)
  PaperStats paper;
};

/// A fully generated workload: graph in both COO (edge-centric source of
/// truth) and dst-indexed CSR (what sampling traverses), plus features.
struct Dataset {
  DatasetSpec spec;
  Coo coo;
  Csr csr;
  EmbeddingTable embeddings;
};

/// All ten Table II workloads, in paper order (light features first).
const std::vector<DatasetSpec>& catalog();

/// Lookup by name; throws std::out_of_range on unknown name.
const DatasetSpec& find_spec(std::string_view name);

/// Deterministically generate a workload from its spec.
Dataset generate(const DatasetSpec& spec, std::uint64_t seed = 42);

/// Convenience: generate by catalog name.
Dataset generate(std::string_view name, std::uint64_t seed = 42);

/// The two representative workloads used for deep-dive figures
/// (products = light, wiki-talk = heavy).
inline constexpr std::string_view kRepresentativeLight = "products";
inline constexpr std::string_view kRepresentativeHeavy = "wiki-talk";

}  // namespace gt
