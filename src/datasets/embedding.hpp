// Virtual embedding table.
//
// Several paper datasets carry no real features ("we create the embeddings
// whose dimensionality is the same as what the industry uses", §VI); all of
// them are synthetic here. Rather than materializing V x F floats (the
// heavy-feature tables would be hundreds of MB), values are a deterministic
// hash of (vid, column): any gather of the same rows yields identical data,
// storage is O(1), and the table's *logical* size still drives every
// normalization metric (memory bloat, cache bloat are reported relative to
// table bytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "tensor/matrix.hpp"

namespace gt {

class EmbeddingTable {
 public:
  EmbeddingTable(std::size_t num_vertices, std::size_t dim,
                 std::uint64_t seed);

  std::size_t num_vertices() const noexcept { return num_vertices_; }
  std::size_t dim() const noexcept { return dim_; }

  /// Logical size of the full table if materialized.
  std::size_t table_bytes() const noexcept {
    return num_vertices_ * dim_ * sizeof(float);
  }

  /// Deterministic feature value in [-1, 1).
  float value(Vid vid, std::size_t col) const noexcept;

  /// Gather the rows for `vids` (in order) into a dense matrix — the
  /// embedding-lookup (K) primitive.
  Matrix gather(std::span<const Vid> vids) const;

  /// Write one row into `out` (size dim). Used by chunked pipelined lookup.
  void gather_row(Vid vid, std::span<float> out) const;

 private:
  std::size_t num_vertices_;
  std::size_t dim_;
  std::uint64_t seed_;
};

/// Deterministic class label in [0, num_classes) for supervised examples.
std::uint32_t synthetic_label(Vid vid, std::uint32_t num_classes,
                              std::uint64_t seed);

}  // namespace gt
