#include "kernels/common.hpp"

#include <numeric>
#include <stdexcept>

namespace gt::kernels {

const char* to_string(AggMode m) {
  switch (m) {
    case AggMode::kSum:  return "sum";
    case AggMode::kMean: return "mean";
    case AggMode::kMax:  return "max";
  }
  return "?";
}

const char* to_string(EdgeWeightMode m) {
  switch (m) {
    case EdgeWeightMode::kNone:        return "none";
    case EdgeWeightMode::kDot:         return "dot";
    case EdgeWeightMode::kElemProduct: return "elem-product";
  }
  return "?";
}

DeviceCsr upload_csr(gpusim::Device& dev, const Csr& csr, Vid n_dst) {
  DeviceCsr g;
  g.n_dst = n_dst;
  g.n_vertices = csr.num_vertices;
  g.n_edges = csr.num_edges();
  g.row_ptr = dev.alloc_u32(static_cast<std::size_t>(n_dst) + 1, "csr.row_ptr");
  g.col_idx = dev.alloc_u32(csr.num_edges(), "csr.col_idx");
  auto rp = dev.u32(g.row_ptr);
  for (Vid v = 0; v <= n_dst; ++v)
    rp[v] = static_cast<std::uint32_t>(csr.row_ptr[v]);
  auto ci = dev.u32(g.col_idx);
  for (Eid e = 0; e < csr.num_edges(); ++e)
    ci[e] = csr.col_idx[e];
  dev.charge_alloc_overhead("upload_csr", 2);
  return g;
}

DeviceCsc upload_csc(gpusim::Device& dev, const Csr& csr, Vid n_dst) {
  // Build the CSC (src-indexed) view of the same edges, remembering each
  // edge's CSR index so backward kernels can reuse forward edge weights.
  const Vid n_vertices = csr.num_vertices;
  std::vector<std::uint32_t> col_ptr(static_cast<std::size_t>(n_vertices) + 2,
                                     0);
  for (Vid s : csr.col_idx) ++col_ptr[s + 1];
  for (std::size_t i = 1; i < col_ptr.size(); ++i)
    col_ptr[i] += col_ptr[i - 1];
  std::vector<std::uint32_t> row_idx(csr.num_edges());
  std::vector<std::uint32_t> edge_id(csr.num_edges());
  std::vector<std::uint32_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
  for (Vid d = 0; d < n_dst; ++d) {
    for (Eid e = csr.row_ptr[d]; e < csr.row_ptr[d + 1]; ++e) {
      const Vid s = csr.col_idx[e];
      row_idx[cursor[s]] = d;
      edge_id[cursor[s]] = static_cast<std::uint32_t>(e);
      ++cursor[s];
    }
  }

  DeviceCsc g;
  g.n_dst = n_dst;
  g.n_vertices = n_vertices;
  g.n_edges = csr.num_edges();
  g.col_ptr =
      dev.alloc_u32(static_cast<std::size_t>(n_vertices) + 1, "csc.col_ptr");
  g.row_idx = dev.alloc_u32(csr.num_edges(), "csc.row_idx");
  g.edge_id = dev.alloc_u32(csr.num_edges(), "csc.edge_id");
  std::copy_n(col_ptr.begin(), n_vertices + 1, dev.u32(g.col_ptr).begin());
  std::copy(row_idx.begin(), row_idx.end(), dev.u32(g.row_idx).begin());
  std::copy(edge_id.begin(), edge_id.end(), dev.u32(g.edge_id).begin());
  dev.charge_alloc_overhead("upload_csc", 3);
  return g;
}

DeviceCoo upload_coo(gpusim::Device& dev, const Coo& coo, Vid n_dst) {
  DeviceCoo g;
  g.n_dst = n_dst;
  g.n_vertices = coo.num_vertices;
  g.n_edges = coo.num_edges();
  g.src = dev.alloc_u32(coo.num_edges(), "coo.src");
  g.dst = dev.alloc_u32(coo.num_edges(), "coo.dst");
  std::copy(coo.src.begin(), coo.src.end(), dev.u32(g.src).begin());
  std::copy(coo.dst.begin(), coo.dst.end(), dev.u32(g.dst).begin());
  dev.charge_alloc_overhead("upload_coo", 2);
  return g;
}

void free_graph(gpusim::Device& dev, const DeviceCsr& g) {
  dev.free(g.row_ptr);
  dev.free(g.col_idx);
  if (g.edge_id != gpusim::kInvalidBuffer) dev.free(g.edge_id);
}

void free_graph(gpusim::Device& dev, const DeviceCsc& g) {
  dev.free(g.col_ptr);
  dev.free(g.row_idx);
  dev.free(g.edge_id);
}

void free_graph(gpusim::Device& dev, const DeviceCoo& g) {
  dev.free(g.src);
  dev.free(g.dst);
}

gpusim::BufferId upload_matrix(gpusim::Device& dev, ConstMatrixView m,
                               std::string name) {
  auto id = dev.alloc_f32(m.rows(), m.cols(), std::move(name));
  auto dst = dev.f32(id);
  std::copy(m.data().begin(), m.data().end(), dst.begin());
  dev.charge_alloc_overhead("upload_matrix", 1);
  return id;
}

Matrix download_matrix(const gpusim::Device& dev, gpusim::BufferId id) {
  Matrix m(dev.rows(id), dev.cols(id));
  download_matrix_into(dev, id, m);
  return m;
}

void download_matrix_into(const gpusim::Device& dev, gpusim::BufferId id,
                          MatrixView out) {
  auto src = dev.f32(id);
  if (out.rows() != dev.rows(id) || out.cols() != dev.cols(id))
    throw std::invalid_argument("download_matrix_into: shape mismatch");
  std::copy(src.begin(), src.end(), out.data().begin());
}

MatrixView download_matrix(const gpusim::Device& dev, gpusim::BufferId id,
                           Arena& arena) {
  MatrixView out = arena.alloc(dev.rows(id), dev.cols(id));
  download_matrix_into(dev, id, out);
  return out;
}

}  // namespace gt::kernels
