// Shared GNN kernel semantics and device graph handles.
//
// All three execution approaches (NAPA, Graph-approach, DL-approach)
// implement the *same* math so they are interchangeable and testable
// against the CPU reference in kernels/reference.hpp:
//
//   edge weighting  g : per-edge weight from (src, dst) embeddings
//     kNone        w_e = 1                       (GCN)
//     kDot         w_e = <x_src, x_dst>          (NGCF-style similarity;
//                                                 the SDDMM of Fig 5b)
//     kElemProduct w_e = x_src (.) x_dst         (vector weight; DL-op style)
//   weighted source h : h_e = w_e * x_src  (scalar or elementwise)
//   aggregation     f : sum / mean / max over in-edges of each dst
//   combination       : Y = act(X W + b), act in {identity, ReLU}
//
// Layer tensor convention (paper Fig 4): the subgraph of a layer has
// n_vertices input rows; its destinations occupy the dense id prefix
// [0, n_dst). Its output has n_dst rows.
#pragma once

#include <cmath>
#include <cstdint>

#include "gpusim/device.hpp"
#include "graph/coo.hpp"
#include "graph/csc.hpp"
#include "graph/csr.hpp"
#include "tensor/arena.hpp"
#include "tensor/matrix.hpp"
#include "tensor/view.hpp"

namespace gt::kernels {

enum class AggMode : std::uint8_t { kSum, kMean, kMax };
enum class EdgeWeightMode : std::uint8_t { kNone, kDot, kElemProduct };

const char* to_string(AggMode m);
const char* to_string(EdgeWeightMode m);

/// True iff h(x)W == h(xW), i.e. dynamic kernel placement may hoist the
/// combination above the weighting+aggregation. Scalar weights commute
/// with the linear transform; elementwise vector weights do not.
inline bool dkp_compatible(EdgeWeightMode g) {
  return g != EdgeWeightMode::kElemProduct;
}

/// Scaling of the dot-product similarity weight: w_e = <x_s, x_d> / sqrt(F)
/// (standard scaled-dot-product normalization). Without it the similarity
/// magnitude grows with the feature dimension and NGCF training diverges
/// on heavy-feature graphs.
inline float dot_weight_scale(std::size_t feature_dim) {
  return 1.0f / std::sqrt(static_cast<float>(feature_dim));
}

// ---- Device-resident graph structures --------------------------------------

struct DeviceCsr {
  gpusim::BufferId row_ptr = gpusim::kInvalidBuffer;  // n_dst + 1 entries
  gpusim::BufferId col_idx = gpusim::kInvalidBuffer;  // E src ids
  /// Optional: for CSRs produced by on-device COO->CSR translation
  /// (Graph-approach), edge_id[k] is the original COO edge index of the
  /// k-th CSR entry, so SpMM can address SDDMM weights that were computed
  /// in COO order. kInvalidBuffer for natively-CSR graphs (NAPA).
  gpusim::BufferId edge_id = gpusim::kInvalidBuffer;
  Vid n_dst = 0;
  Vid n_vertices = 0;  // input table rows (src id space)
  Eid n_edges = 0;
};

struct DeviceCsc {
  gpusim::BufferId col_ptr = gpusim::kInvalidBuffer;  // n_vertices + 1
  gpusim::BufferId row_idx = gpusim::kInvalidBuffer;  // E dst ids
  /// edge_id[k]: the CSR edge index of the k-th CSC entry, so backward
  /// passes can reuse forward edge weights without re-deriving them.
  gpusim::BufferId edge_id = gpusim::kInvalidBuffer;
  Vid n_dst = 0;
  Vid n_vertices = 0;
  Eid n_edges = 0;
};

struct DeviceCoo {
  gpusim::BufferId src = gpusim::kInvalidBuffer;
  gpusim::BufferId dst = gpusim::kInvalidBuffer;
  Vid n_dst = 0;
  Vid n_vertices = 0;
  Eid n_edges = 0;
};

/// Upload host formats into device buffers (allocation overhead charged).
DeviceCsr upload_csr(gpusim::Device& dev, const Csr& csr, Vid n_dst);
DeviceCsc upload_csc(gpusim::Device& dev, const Csr& csr, Vid n_dst);
DeviceCoo upload_coo(gpusim::Device& dev, const Coo& coo, Vid n_dst);

void free_graph(gpusim::Device& dev, const DeviceCsr& g);
void free_graph(gpusim::Device& dev, const DeviceCsc& g);
void free_graph(gpusim::Device& dev, const DeviceCoo& g);

/// Upload a host matrix (owning or view) as a device f32 buffer.
gpusim::BufferId upload_matrix(gpusim::Device& dev, ConstMatrixView m,
                               std::string name);
/// Download into a fresh owning matrix (cold path / tests).
Matrix download_matrix(const gpusim::Device& dev, gpusim::BufferId id);
/// Download into an existing view of matching shape (batch hot path).
void download_matrix_into(const gpusim::Device& dev, gpusim::BufferId id,
                          MatrixView out);
/// Download into a view carved from `arena`.
MatrixView download_matrix(const gpusim::Device& dev, gpusim::BufferId id,
                           Arena& arena);

/// Bytes of one embedding row of `buf`.
inline std::size_t row_bytes(const gpusim::Device& dev, gpusim::BufferId buf) {
  return dev.cols(buf) * sizeof(float);
}

}  // namespace gt::kernels
