// Graph-approach kernels (DGL / FeatGraph / G3 style, paper §III).
//
// The graph arrives in COO; SpMM needs per-dst source lists, so the
// framework pays a GPU-side COO->CSR format translation before forward
// aggregation (and COO->CSC before backward). Both SpMM and SDDMM are
// *edge-wise* scheduled: one thread block per edge, threads over features.
// Edges sharing a destination land on different SMs, so the destination's
// embedding (SDDMM) or accumulator row (SpMM) is cached redundantly in each
// of them — the paper's cache bloat — and concurrent accumulation needs
// atomics.
#pragma once

#include "kernels/common.hpp"

namespace gt::kernels::graphsim {

/// GPU-side COO -> CSR translation (paper Fig 5c top): sorts the edge list
/// by dst and derives the pointer array. Charged as a format-translation
/// kernel plus the temporary sort buffers' allocations. The result carries
/// edge_id back-references into COO order.
DeviceCsr translate_to_csr(gpusim::Device& dev, const DeviceCoo& coo);

/// GPU-side COO -> CSC translation (needed before backward).
DeviceCsc translate_to_csc(gpusim::Device& dev, const DeviceCoo& coo);

/// SDDMM edge weighting over COO: one block per edge. Weights come back in
/// COO edge order ([E,1] for kDot, [E,F] for kElemProduct).
gpusim::BufferId sddmm_edgewise(gpusim::Device& dev, const DeviceCoo& coo,
                                gpusim::BufferId x, EdgeWeightMode gmode);

/// SpMM aggregation over the translated CSR, edge-wise scheduled with
/// atomic accumulation into the per-dst output row. `weights` are in COO
/// order and addressed through csr.edge_id (pass kInvalidBuffer for kNone).
gpusim::BufferId spmm_edgewise(gpusim::Device& dev, const DeviceCsr& csr,
                               gpusim::BufferId x, gpusim::BufferId weights,
                               AggMode f, EdgeWeightMode gmode);

/// Full backward of (weighting + aggregation) in one edge-wise pass over
/// COO: computes both source- and destination-side gradient terms with
/// atomics (edge-centric traversal, §II-A). `csr` supplies per-dst degrees
/// for mean. kMax unsupported.
gpusim::BufferId backward_edgewise(gpusim::Device& dev, const DeviceCoo& coo,
                                   const DeviceCsr& csr, gpusim::BufferId x,
                                   gpusim::BufferId weights,
                                   gpusim::BufferId da, AggMode f,
                                   EdgeWeightMode gmode);

}  // namespace gt::kernels::graphsim
