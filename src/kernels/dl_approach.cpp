#include "kernels/dl_approach.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace gt::kernels::dl {

using gpusim::BlockCtx;
using gpusim::BlockSafety;
using gpusim::BufferId;
using gpusim::Device;
using gpusim::KernelCategory;

BufferId gather_rows(Device& dev, BufferId x, BufferId ids,
                     const char* name) {
  const std::size_t n = dev.rows(ids);
  const std::size_t feat = dev.cols(x);
  const BufferId out = dev.alloc_f32(n, feat, name);
  dev.charge_alloc_overhead(name);

  auto xv = dev.f32(x);
  auto ov = dev.f32(out);
  auto iv = dev.u32(ids);
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("dl.Gather", KernelCategory::kSparse2Dense, n,
                 [&](BlockCtx& ctx) {
    const std::size_t k = ctx.block_id();
    ctx.global_read(sizeof(std::uint32_t));
    const std::uint32_t v = iv[k];
    ctx.load(x, v, fb);
    std::copy_n(&xv[static_cast<std::size_t>(v) * feat], feat, &ov[k * feat]);
    ctx.store(out, static_cast<std::uint32_t>(k), fb);
  }, BlockSafety::kParallel);
  return out;
}

BufferId expand_dst_ids(Device& dev, const DeviceCsr& csr) {
  const BufferId out = dev.alloc_u32(csr.n_edges, "dl.dst_ids");
  dev.charge_alloc_overhead("dl.dst_ids");
  auto rp = dev.u32(csr.row_ptr);
  auto ov = dev.u32(out);
  for (Vid d = 0; d < csr.n_dst; ++d)
    for (std::uint32_t k = rp[d]; k < rp[d + 1]; ++k) ov[k] = d;
  dev.charge_kernel("dl.ExpandDst", KernelCategory::kSparse2Dense, 0,
                    (csr.n_edges + csr.n_dst) * sizeof(std::uint32_t));
  return out;
}

BufferId edge_weight_dense(Device& dev, BufferId dense_src,
                           BufferId dense_dst, EdgeWeightMode gmode) {
  if (gmode == EdgeWeightMode::kNone)
    throw std::invalid_argument("edge_weight_dense: needs a weight mode");
  const std::size_t n = dev.rows(dense_src);
  const std::size_t feat = dev.cols(dense_src);
  const std::size_t wcols = gmode == EdgeWeightMode::kDot ? 1 : feat;
  const BufferId out = dev.alloc_f32(n, wcols, "dl.weights");
  dev.charge_alloc_overhead("dl.weights");

  auto sv = dev.f32(dense_src);
  auto dv = dev.f32(dense_dst);
  auto ov = dev.f32(out);
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("dl.EdgeWeight", KernelCategory::kEdgeWeight, n,
                 [&](BlockCtx& ctx) {
    const std::size_t k = ctx.block_id();
    ctx.load(dense_src, static_cast<std::uint32_t>(k), fb);
    ctx.load(dense_dst, static_cast<std::uint32_t>(k), fb);
    const float* s = &sv[k * feat];
    const float* d = &dv[k * feat];
    if (gmode == EdgeWeightMode::kDot) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < feat; ++c) acc += s[c] * d[c];
      ov[k] = acc * dot_weight_scale(feat);
      ctx.flops(2 * feat);
      ctx.store(out, static_cast<std::uint32_t>(k), sizeof(float));
    } else {
      for (std::size_t c = 0; c < feat; ++c) ov[k * feat + c] = s[c] * d[c];
      ctx.flops(feat);
      ctx.store(out, static_cast<std::uint32_t>(k), fb);
    }
  }, BlockSafety::kParallel);
  return out;
}

BufferId apply_weights_dense(Device& dev, BufferId dense_src,
                             BufferId weights, EdgeWeightMode gmode) {
  const std::size_t n = dev.rows(dense_src);
  const std::size_t feat = dev.cols(dense_src);
  const std::size_t wcols = dev.cols(weights);
  const BufferId out = dev.alloc_f32(n, feat, "dl.weighted");
  dev.charge_alloc_overhead("dl.weighted");

  auto sv = dev.f32(dense_src);
  auto wv = dev.f32(weights);
  auto ov = dev.f32(out);
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("dl.ApplyWeights", KernelCategory::kEdgeWeight, n,
                 [&](BlockCtx& ctx) {
    const std::size_t k = ctx.block_id();
    ctx.load(dense_src, static_cast<std::uint32_t>(k), fb);
    ctx.load(weights, static_cast<std::uint32_t>(k), wcols * sizeof(float));
    for (std::size_t c = 0; c < feat; ++c) {
      const float w = gmode == EdgeWeightMode::kDot ? wv[k * wcols]
                                                    : wv[k * wcols + c];
      ov[k * feat + c] = sv[k * feat + c] * w;
    }
    ctx.flops(feat);
    ctx.store(out, static_cast<std::uint32_t>(k), fb);
  }, BlockSafety::kParallel);
  return out;
}

BufferId scatter_aggregate(Device& dev, const DeviceCsr& csr,
                           BufferId dense_rows, AggMode f) {
  const std::size_t feat = dev.cols(dense_rows);
  const BufferId out = dev.alloc_f32(csr.n_dst, feat, "dl.aggr");
  dev.charge_alloc_overhead("dl.aggr");

  auto rv = dev.f32(dense_rows);
  auto ov = dev.f32(out);
  auto rp = dev.u32(csr.row_ptr);
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("dl.ScatterAggregate", KernelCategory::kAggregation,
                 csr.n_dst, [&](BlockCtx& ctx) {
    const std::uint32_t d = static_cast<std::uint32_t>(ctx.block_id());
    ctx.global_read(2 * sizeof(std::uint32_t));
    const std::uint32_t begin = rp[d], end = rp[d + 1];
    float* od = &ov[static_cast<std::size_t>(d) * feat];
    bool first = true;
    for (std::uint32_t k = begin; k < end; ++k) {
      ctx.load(dense_rows, k, fb);
      const float* row = &rv[static_cast<std::size_t>(k) * feat];
      for (std::size_t c = 0; c < feat; ++c) {
        if (f == AggMode::kMax) {
          od[c] = first ? row[c] : std::max(od[c], row[c]);
        } else {
          od[c] += row[c];
        }
      }
      first = false;
      ctx.flops(feat);
    }
    if (f == AggMode::kMean && end > begin) {
      const float inv = 1.0f / static_cast<float>(end - begin);
      for (std::size_t c = 0; c < feat; ++c) od[c] *= inv;
      ctx.flops(feat);
    }
    ctx.store(out, d, fb);
  }, BlockSafety::kParallel);
  return out;
}

BufferId forward_aggregate(Device& dev, const DeviceCsr& csr, BufferId x,
                           AggMode f, EdgeWeightMode gmode,
                           BufferId* weights_out) {
  *weights_out = gpusim::kInvalidBuffer;
  const BufferId dense_src = gather_rows(dev, x, csr.col_idx, "dl.dense_src");
  BufferId to_reduce = dense_src;
  BufferId weighted = gpusim::kInvalidBuffer;
  if (gmode != EdgeWeightMode::kNone) {
    const BufferId dst_ids = expand_dst_ids(dev, csr);
    const BufferId dense_dst = gather_rows(dev, x, dst_ids, "dl.dense_dst");
    *weights_out = edge_weight_dense(dev, dense_src, dense_dst, gmode);
    weighted = apply_weights_dense(dev, dense_src, *weights_out, gmode);
    to_reduce = weighted;
    dev.free(dense_dst);
    dev.free(dst_ids);
  }
  const BufferId out = scatter_aggregate(dev, csr, to_reduce, f);
  if (weighted != gpusim::kInvalidBuffer) dev.free(weighted);
  dev.free(dense_src);
  return out;
}

BufferId backward_aggregate(Device& dev, const DeviceCsr& csr, BufferId x,
                            BufferId weights, BufferId da, AggMode f,
                            EdgeWeightMode gmode) {
  if (f == AggMode::kMax)
    throw std::invalid_argument("backward_aggregate: max unsupported");
  const std::size_t feat = dev.cols(x);
  const BufferId dx = dev.alloc_f32(csr.n_vertices, feat, "dl.dx");
  dev.charge_alloc_overhead("dl.dx");

  // Dense gradient temporary (memory bloat again): dDense[k] = coeff*dA[d].
  const BufferId ddense = dev.alloc_f32(csr.n_edges, feat, "dl.ddense");
  dev.charge_alloc_overhead("dl.ddense");

  auto dav = dev.f32(da);
  auto ddv = dev.f32(ddense);
  auto rp = dev.u32(csr.row_ptr);
  auto ci = dev.u32(csr.col_idx);
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("dl.GatherGrad", KernelCategory::kSparse2Dense, csr.n_dst,
                 [&](BlockCtx& ctx) {
    const std::uint32_t d = static_cast<std::uint32_t>(ctx.block_id());
    ctx.global_read(2 * sizeof(std::uint32_t));
    const std::uint32_t begin = rp[d], end = rp[d + 1];
    if (begin == end) return;
    const float coeff =
        f == AggMode::kMean ? 1.0f / static_cast<float>(end - begin) : 1.0f;
    ctx.load(da, d, fb);
    const float* dad = &dav[static_cast<std::size_t>(d) * feat];
    for (std::uint32_t k = begin; k < end; ++k) {
      for (std::size_t c = 0; c < feat; ++c)
        ddv[static_cast<std::size_t>(k) * feat + c] = coeff * dad[c];
      ctx.store(ddense, k, fb);
      ctx.flops(feat);
    }
  }, BlockSafety::kParallel);

  auto xv = dev.f32(x);
  auto dxv = dev.f32(dx);
  std::span<const float> wv;
  std::size_t wcols = 0;
  if (gmode != EdgeWeightMode::kNone) {
    wv = dev.f32(weights);
    wcols = dev.cols(weights);
  }
  std::vector<std::uint32_t> dst_of(csr.n_edges);
  for (Vid d = 0; d < csr.n_dst; ++d)
    for (std::uint32_t k = rp[d]; k < rp[d + 1]; ++k) dst_of[k] = d;

  dev.run_kernel("dl.ScatterAddGrad", KernelCategory::kSparse2Dense,
                 csr.n_edges, [&](BlockCtx& ctx) {
    const std::size_t k = ctx.block_id();
    ctx.global_read(2 * sizeof(std::uint32_t));
    const std::uint32_t s = ci[k];
    const std::uint32_t d = dst_of[k];
    ctx.load(ddense, static_cast<std::uint32_t>(k), fb);
    ctx.load(dx, s, fb);
    ctx.atomic(feat);
    const float* dh = &ddv[k * feat];
    float* dxs = &dxv[static_cast<std::size_t>(s) * feat];
    switch (gmode) {
      case EdgeWeightMode::kNone:
        for (std::size_t c = 0; c < feat; ++c) dxs[c] += dh[c];
        ctx.flops(feat);
        break;
      case EdgeWeightMode::kDot: {
        ctx.load(x, s, fb);
        ctx.load(x, d, fb);
        ctx.load(weights, static_cast<std::uint32_t>(k), sizeof(float));
        ctx.load(dx, d, fb);
        ctx.atomic(feat);
        const float* xs = &xv[static_cast<std::size_t>(s) * feat];
        const float* xd = &xv[static_cast<std::size_t>(d) * feat];
        float* dxd = &dxv[static_cast<std::size_t>(d) * feat];
        const float we = wv[k * wcols];
        float dwe = 0.0f;
        for (std::size_t c = 0; c < feat; ++c) dwe += dh[c] * xs[c];
        dwe *= dot_weight_scale(feat);
        for (std::size_t c = 0; c < feat; ++c) {
          dxs[c] += we * dh[c] + dwe * xd[c];
          dxd[c] += dwe * xs[c];
        }
        ctx.flops(6 * feat);
        ctx.store(dx, d, fb);
        break;
      }
      case EdgeWeightMode::kElemProduct: {
        ctx.load(x, s, fb);
        ctx.load(x, d, fb);
        ctx.load(weights, static_cast<std::uint32_t>(k), fb);
        ctx.load(dx, d, fb);
        ctx.atomic(feat);
        const float* xs = &xv[static_cast<std::size_t>(s) * feat];
        const float* xd = &xv[static_cast<std::size_t>(d) * feat];
        float* dxd = &dxv[static_cast<std::size_t>(d) * feat];
        for (std::size_t c = 0; c < feat; ++c) {
          const float dwe = dh[c] * xs[c];
          dxs[c] += wv[k * wcols + c] * dh[c] + dwe * xd[c];
          dxd[c] += dwe * xs[c];
        }
        ctx.flops(6 * feat);
        ctx.store(dx, d, fb);
        break;
      }
    }
    ctx.store(dx, s, fb);
    // Edge blocks collide on dx[s] and dx[d] (read-modify-write of whole
    // rows): stays BlockSafety::kSerial so gradients remain bit-stable.
  });

  dev.free(ddense);
  return dx;
}

BufferId aggregate_neighbor_groups(Device& dev, const DeviceCsr& csr,
                                   BufferId x, AggMode f,
                                   std::size_t group_size) {
  if (group_size == 0)
    throw std::invalid_argument("group_size must be > 0");
  const std::size_t feat = dev.cols(x);
  const BufferId out = dev.alloc_f32(csr.n_dst, feat, "advisor.aggr");
  dev.charge_alloc_overhead("advisor.aggr");

  auto xv = dev.f32(x);
  auto ov = dev.f32(out);
  auto rp = dev.u32(csr.row_ptr);
  auto ci = dev.u32(csr.col_idx);
  const std::size_t fb = feat * sizeof(float);

  // Precompute the group list: (dst, first-edge, last-edge).
  struct Group {
    std::uint32_t d, begin, end;
  };
  std::vector<Group> groups;
  std::vector<std::uint32_t> groups_of_dst(csr.n_dst, 0);
  for (Vid d = 0; d < csr.n_dst; ++d) {
    for (std::uint32_t k = rp[d]; k < rp[d + 1];
         k += static_cast<std::uint32_t>(group_size)) {
      groups.push_back(Group{
          d, k,
          std::min(k + static_cast<std::uint32_t>(group_size), rp[d + 1])});
      ++groups_of_dst[d];
    }
  }
  if (f == AggMode::kMax)
    throw std::invalid_argument(
        "aggregate_neighbor_groups: atomic max unsupported");

  dev.run_kernel("advisor.GroupAggregate", KernelCategory::kAggregation,
                 groups.size(), [&](BlockCtx& ctx) {
    const Group& g = groups[ctx.block_id()];
    ctx.global_read(3 * sizeof(std::uint32_t));
    std::vector<float> acc(feat, 0.0f);
    for (std::uint32_t k = g.begin; k < g.end; ++k) {
      ctx.global_read(sizeof(std::uint32_t));
      const std::uint32_t s = ci[k];
      ctx.load(x, s, fb);
      const float* xs = &xv[static_cast<std::size_t>(s) * feat];
      for (std::size_t c = 0; c < feat; ++c) acc[c] += xs[c];
      ctx.flops(feat);
    }
    // Multiple groups of one dst run on different SMs: each loads the
    // output row and atomically merges its partial sum (GNNAdvisor's
    // synchronization overhead).
    ctx.load(out, g.d, fb);
    if (groups_of_dst[g.d] > 1) ctx.atomic(feat);
    float* od = &ov[static_cast<std::size_t>(g.d) * feat];
    for (std::size_t c = 0; c < feat; ++c) od[c] += acc[c];
    ctx.flops(feat);
    ctx.store(out, g.d, fb);
    // Groups of one dst merge into the same output row, so the kernel is
    // left BlockSafety::kSerial (the simulated atomics price the cost).
  });

  if (f == AggMode::kMean) {
    dev.run_kernel("advisor.Normalize", KernelCategory::kAggregation,
                   csr.n_dst, [&](BlockCtx& ctx) {
      const std::uint32_t d = static_cast<std::uint32_t>(ctx.block_id());
      ctx.global_read(2 * sizeof(std::uint32_t));
      const std::uint32_t deg = rp[d + 1] - rp[d];
      if (deg == 0) return;
      ctx.load(out, d, fb);
      float* od = &ov[static_cast<std::size_t>(d) * feat];
      const float inv = 1.0f / static_cast<float>(deg);
      for (std::size_t c = 0; c < feat; ++c) od[c] *= inv;
      ctx.flops(feat);
      ctx.store(out, d, fb);
    }, BlockSafety::kParallel);
  }
  return out;
}

}  // namespace gt::kernels::dl
