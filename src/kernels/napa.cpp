#include "kernels/napa.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace gt::kernels::napa {

using gpusim::BlockCtx;
using gpusim::BlockSafety;
using gpusim::BufferId;
using gpusim::Device;
using gpusim::KernelCategory;

// Every NAPA kernel is vertex-centric: block b owns output row b (or the
// edge range of destination b), so writes are disjoint and the kernels are
// declared BlockSafety::kParallel throughout.

gpusim::BufferId neighbor_apply(Device& dev, const DeviceCsr& g, BufferId x,
                                EdgeWeightMode gmode) {
  if (gmode == EdgeWeightMode::kNone)
    throw std::invalid_argument("NeighborApply requires an edge weight mode");
  const std::size_t feat = dev.cols(x);
  const std::size_t wcols = gmode == EdgeWeightMode::kDot ? 1 : feat;
  const BufferId out = dev.alloc_f32(g.n_edges, wcols, "napa.weights");
  dev.charge_alloc_overhead("napa.weights");

  auto xv = dev.f32(x);
  auto ov = dev.f32(out);
  auto rp = dev.u32(g.row_ptr);
  auto ci = dev.u32(g.col_idx);
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("napa.NeighborApply", KernelCategory::kEdgeWeight, g.n_dst,
                 [&](BlockCtx& ctx) {
    const std::uint32_t d = static_cast<std::uint32_t>(ctx.block_id());
    ctx.global_read(2 * sizeof(std::uint32_t));  // row_ptr[d], row_ptr[d+1]
    // Destination embedding is loaded once and reused for every edge.
    ctx.load(x, d, fb);
    const float* xd = &xv[static_cast<std::size_t>(d) * feat];
    for (std::uint32_t e = rp[d]; e < rp[d + 1]; ++e) {
      const std::uint32_t s = ci[e];
      ctx.global_read(sizeof(std::uint32_t));  // col_idx[e]
      ctx.load(x, s, fb);
      const float* xs = &xv[static_cast<std::size_t>(s) * feat];
      float* we = &ov[static_cast<std::size_t>(e) * wcols];
      if (gmode == EdgeWeightMode::kDot) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < feat; ++c) acc += xs[c] * xd[c];
        we[0] = acc * dot_weight_scale(feat);
        ctx.flops(2 * feat);
        ctx.store(out, e, sizeof(float));
      } else {
        for (std::size_t c = 0; c < feat; ++c) we[c] = xs[c] * xd[c];
        ctx.flops(feat);
        ctx.store(out, e, fb);
      }
    }
  }, BlockSafety::kParallel);
  return out;
}

gpusim::BufferId pull(Device& dev, const DeviceCsr& g, BufferId x,
                      BufferId weights, AggMode f, EdgeWeightMode gmode) {
  if ((gmode == EdgeWeightMode::kNone) !=
      (weights == gpusim::kInvalidBuffer))
    throw std::invalid_argument("pull: weights iff weighted mode");
  const std::size_t feat = dev.cols(x);
  const BufferId out = dev.alloc_f32(g.n_dst, feat, "napa.aggr");
  dev.charge_alloc_overhead("napa.aggr");

  auto xv = dev.f32(x);
  auto ov = dev.f32(out);
  auto rp = dev.u32(g.row_ptr);
  auto ci = dev.u32(g.col_idx);
  std::span<const float> wv;
  std::size_t wcols = 0;
  if (gmode != EdgeWeightMode::kNone) {
    wv = dev.f32(weights);
    wcols = dev.cols(weights);
  }
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("napa.Pull", KernelCategory::kAggregation, g.n_dst,
                 [&](BlockCtx& ctx) {
    const std::uint32_t d = static_cast<std::uint32_t>(ctx.block_id());
    ctx.global_read(2 * sizeof(std::uint32_t));
    float* od = &ov[static_cast<std::size_t>(d) * feat];
    const std::uint32_t begin = rp[d], end = rp[d + 1];
    bool first = true;
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::uint32_t s = ci[e];
      ctx.global_read(sizeof(std::uint32_t));
      ctx.load(x, s, fb);
      if (gmode != EdgeWeightMode::kNone)
        ctx.load(weights, e, wcols * sizeof(float));
      const float* xs = &xv[static_cast<std::size_t>(s) * feat];
      for (std::size_t c = 0; c < feat; ++c) {
        float h = xs[c];
        if (gmode == EdgeWeightMode::kDot)
          h *= wv[static_cast<std::size_t>(e) * wcols];
        else if (gmode == EdgeWeightMode::kElemProduct)
          h *= wv[static_cast<std::size_t>(e) * wcols + c];
        if (f == AggMode::kMax) {
          od[c] = first ? h : std::max(od[c], h);
        } else {
          od[c] += h;
        }
      }
      first = false;
      ctx.flops((gmode == EdgeWeightMode::kNone ? 1 : 2) * feat);
    }
    if (f == AggMode::kMean && end > begin) {
      const float inv = 1.0f / static_cast<float>(end - begin);
      for (std::size_t c = 0; c < feat; ++c) od[c] *= inv;
      ctx.flops(feat);
    }
    // The accumulator lived in registers; one store materializes the row.
    ctx.store(out, d, fb);
  }, BlockSafety::kParallel);
  return out;
}

gpusim::BufferId apply_dense(Device& dev, BufferId x, BufferId w, BufferId b,
                             bool relu, BufferId* pre_act) {
  const std::size_t rows = dev.rows(x);
  const std::size_t feat = dev.cols(x);
  const std::size_t hidden = dev.cols(w);
  if (dev.rows(w) != feat)
    throw std::invalid_argument("apply_dense: W shape mismatch");
  const BufferId out = dev.alloc_f32(rows, hidden, "apply.out");
  dev.charge_alloc_overhead("apply.out");
  BufferId pre = gpusim::kInvalidBuffer;
  if (pre_act != nullptr) {
    pre = dev.alloc_f32(rows, hidden, "apply.pre_act");
    dev.charge_alloc_overhead("apply.pre_act");
    *pre_act = pre;
  }

  auto xv = dev.f32(x);
  auto wv = dev.f32(w);
  auto bv = dev.f32(b);
  auto ov = dev.f32(out);
  std::span<float> pv;
  if (pre != gpusim::kInvalidBuffer) pv = dev.f32(pre);
  const std::size_t hb = hidden * sizeof(float);

  dev.run_kernel("Apply.MatMul", KernelCategory::kCombination, rows,
                 [&](BlockCtx& ctx) {
    const std::uint32_t r = static_cast<std::uint32_t>(ctx.block_id());
    ctx.load(x, r, feat * sizeof(float));
    const float* xr = &xv[static_cast<std::size_t>(r) * feat];
    float* orow = &ov[static_cast<std::size_t>(r) * hidden];
    // Weight-matrix rows stream through the SM cache; blocks sharing an SM
    // reuse them.
    for (std::size_t k = 0; k < feat; ++k) {
      ctx.load(w, static_cast<std::uint32_t>(k), hb);
      const float xk = xr[k];
      const float* wrow = &wv[k * hidden];
      for (std::size_t c = 0; c < hidden; ++c) orow[c] += xk * wrow[c];
    }
    ctx.load(b, 0, hb);
    for (std::size_t c = 0; c < hidden; ++c) {
      orow[c] += bv[c];
      if (pre != gpusim::kInvalidBuffer)
        pv[static_cast<std::size_t>(r) * hidden + c] = orow[c];
      if (relu && orow[c] < 0.0f) orow[c] = 0.0f;
    }
    ctx.flops(2ull * feat * hidden + 2ull * hidden);
    if (pre != gpusim::kInvalidBuffer) ctx.store(pre, r, hb);
    ctx.store(out, r, hb);
  }, BlockSafety::kParallel);
  return out;
}

DenseGrads apply_dense_backward(Device& dev, BufferId x, BufferId w,
                                BufferId pre_act, BufferId dy, bool relu,
                                bool want_dx) {
  const std::size_t rows = dev.rows(x);
  const std::size_t feat = dev.cols(x);
  const std::size_t hidden = dev.cols(w);
  DenseGrads grads;
  const BufferId dz = dev.alloc_f32(rows, hidden, "apply.dz");
  grads.dw = dev.alloc_f32(feat, hidden, "apply.dw");
  grads.db = dev.alloc_f32(1, hidden, "apply.db");
  dev.charge_alloc_overhead("apply.backward", 3);

  auto dyv = dev.f32(dy);
  auto dzv = dev.f32(dz);
  const std::size_t hb = hidden * sizeof(float);

  // dZ = act'(pre) (.) dY.
  if (relu) {
    auto pv = dev.f32(pre_act);
    dev.run_kernel("Apply.ReluGrad", KernelCategory::kCombination, rows,
                   [&](BlockCtx& ctx) {
      const std::uint32_t r = static_cast<std::uint32_t>(ctx.block_id());
      ctx.load(dy, r, hb);
      ctx.load(pre_act, r, hb);
      for (std::size_t c = 0; c < hidden; ++c) {
        const std::size_t i = static_cast<std::size_t>(r) * hidden + c;
        dzv[i] = pv[i] > 0.0f ? dyv[i] : 0.0f;
      }
      ctx.flops(hidden);
      ctx.store(dz, r, hb);
    }, BlockSafety::kParallel);
  } else {
    std::copy(dyv.begin(), dyv.end(), dzv.begin());
    dev.charge_kernel("Apply.IdentityGrad", KernelCategory::kCombination, 0,
                      2 * rows * hb);
  }

  // dX = dZ W^T (skipped for first-layer backward: only dW/db needed).
  if (want_dx) {
    grads.dx = dev.alloc_f32(rows, feat, "apply.dx");
    dev.charge_alloc_overhead("apply.dx", 1);
    auto wv = dev.f32(w);
    auto dxv = dev.f32(grads.dx);
    dev.run_kernel("Apply.MatMulGradX", KernelCategory::kCombination, rows,
                   [&](BlockCtx& ctx) {
      const std::uint32_t r = static_cast<std::uint32_t>(ctx.block_id());
      ctx.load(dz, r, hb);
      const float* dzr = &dzv[static_cast<std::size_t>(r) * hidden];
      float* dxr = &dxv[static_cast<std::size_t>(r) * feat];
      for (std::size_t k = 0; k < feat; ++k) {
        ctx.load(w, static_cast<std::uint32_t>(k), hb);
        const float* wrow = &wv[k * hidden];
        float acc = 0.0f;
        for (std::size_t c = 0; c < hidden; ++c) acc += dzr[c] * wrow[c];
        dxr[k] = acc;
      }
      ctx.flops(2ull * feat * hidden);
      ctx.store(grads.dx, r, feat * sizeof(float));
    }, BlockSafety::kParallel);
  }

  // dW = X^T dZ and db = colsum(dZ): bandwidth-dominated reductions.
  auto xv = dev.f32(x);
  auto dwv = dev.f32(grads.dw);
  auto dbv = dev.f32(grads.db);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = &xv[r * feat];
    const float* dzr = &dzv[r * hidden];
    for (std::size_t k = 0; k < feat; ++k) {
      const float xk = xr[k];
      float* dwrow = &dwv[k * hidden];
      for (std::size_t c = 0; c < hidden; ++c) dwrow[c] += xk * dzr[c];
    }
    for (std::size_t c = 0; c < hidden; ++c) dbv[c] += dzr[c];
  }
  dev.charge_kernel("Apply.MatMulGradW", KernelCategory::kCombination,
                    2ull * rows * feat * hidden + rows * hidden,
                    rows * (feat + hidden) * sizeof(float) +
                        feat * hidden * sizeof(float));
  dev.free(dz);
  return grads;
}

gpusim::BufferId apply_matmul(Device& dev, BufferId x, BufferId w) {
  const std::size_t rows = dev.rows(x);
  const std::size_t feat = dev.cols(x);
  const std::size_t hidden = dev.cols(w);
  if (dev.rows(w) != feat)
    throw std::invalid_argument("apply_matmul: W shape mismatch");
  const BufferId out = dev.alloc_f32(rows, hidden, "matmul.out");
  dev.charge_alloc_overhead("matmul.out");

  auto xv = dev.f32(x);
  auto wv = dev.f32(w);
  auto ov = dev.f32(out);
  const std::size_t hb = hidden * sizeof(float);

  dev.run_kernel("Apply.MatMul", KernelCategory::kCombination, rows,
                 [&](BlockCtx& ctx) {
    const std::uint32_t r = static_cast<std::uint32_t>(ctx.block_id());
    ctx.load(x, r, feat * sizeof(float));
    const float* xr = &xv[static_cast<std::size_t>(r) * feat];
    float* orow = &ov[static_cast<std::size_t>(r) * hidden];
    for (std::size_t k = 0; k < feat; ++k) {
      ctx.load(w, static_cast<std::uint32_t>(k), hb);
      const float xk = xr[k];
      const float* wrow = &wv[k * hidden];
      for (std::size_t c = 0; c < hidden; ++c) orow[c] += xk * wrow[c];
    }
    ctx.flops(2ull * feat * hidden);
    ctx.store(out, r, hb);
  }, BlockSafety::kParallel);
  return out;
}

MatmulGrads apply_matmul_backward(Device& dev, BufferId x, BufferId w,
                                  BufferId dy, bool want_dx) {
  const std::size_t rows = dev.rows(x);
  const std::size_t feat = dev.cols(x);
  const std::size_t hidden = dev.cols(w);
  MatmulGrads grads;
  grads.dw = dev.alloc_f32(feat, hidden, "matmul.dw");
  dev.charge_alloc_overhead("matmul.backward", 1);

  auto wv = dev.f32(w);
  auto dyv = dev.f32(dy);
  const std::size_t hb = hidden * sizeof(float);

  if (want_dx) {
    grads.dx = dev.alloc_f32(rows, feat, "matmul.dx");
    dev.charge_alloc_overhead("matmul.dx", 1);
    auto dxv = dev.f32(grads.dx);
    dev.run_kernel("Apply.MatMulGradX", KernelCategory::kCombination, rows,
                   [&](BlockCtx& ctx) {
      const std::uint32_t r = static_cast<std::uint32_t>(ctx.block_id());
      ctx.load(dy, r, hb);
      const float* dyr = &dyv[static_cast<std::size_t>(r) * hidden];
      float* dxr = &dxv[static_cast<std::size_t>(r) * feat];
      for (std::size_t k = 0; k < feat; ++k) {
        ctx.load(w, static_cast<std::uint32_t>(k), hb);
        const float* wrow = &wv[k * hidden];
        float acc = 0.0f;
        for (std::size_t c = 0; c < hidden; ++c) acc += dyr[c] * wrow[c];
        dxr[k] = acc;
      }
      ctx.flops(2ull * feat * hidden);
      ctx.store(grads.dx, r, feat * sizeof(float));
    }, BlockSafety::kParallel);
  }

  auto xv = dev.f32(x);
  auto dwv = dev.f32(grads.dw);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = &xv[r * feat];
    const float* dyr = &dyv[r * hidden];
    for (std::size_t k = 0; k < feat; ++k) {
      const float xk = xr[k];
      float* dwrow = &dwv[k * hidden];
      for (std::size_t c = 0; c < hidden; ++c) dwrow[c] += xk * dyr[c];
    }
  }
  dev.charge_kernel("Apply.MatMulGradW", KernelCategory::kCombination,
                    2ull * rows * feat * hidden,
                    rows * (feat + hidden) * sizeof(float) +
                        feat * hidden * sizeof(float));
  return grads;
}

gpusim::BufferId apply_bias_act(Device& dev, BufferId x, BufferId b,
                                bool relu, BufferId* pre_act) {
  const std::size_t rows = dev.rows(x);
  const std::size_t hidden = dev.cols(x);
  if (dev.cols(b) != hidden)
    throw std::invalid_argument("apply_bias_act: bias shape mismatch");
  const BufferId out = dev.alloc_f32(rows, hidden, "bias_act.out");
  dev.charge_alloc_overhead("bias_act.out");
  BufferId pre = gpusim::kInvalidBuffer;
  if (pre_act != nullptr) {
    pre = dev.alloc_f32(rows, hidden, "bias_act.pre");
    dev.charge_alloc_overhead("bias_act.pre");
    *pre_act = pre;
  }

  auto xv = dev.f32(x);
  auto bv = dev.f32(b);
  auto ov = dev.f32(out);
  std::span<float> pv;
  if (pre != gpusim::kInvalidBuffer) pv = dev.f32(pre);
  const std::size_t hb = hidden * sizeof(float);

  dev.run_kernel("Apply.BiasAct", KernelCategory::kCombination, rows,
                 [&](BlockCtx& ctx) {
    const std::uint32_t r = static_cast<std::uint32_t>(ctx.block_id());
    ctx.load(x, r, hb);
    ctx.load(b, 0, hb);
    for (std::size_t c = 0; c < hidden; ++c) {
      const std::size_t i = static_cast<std::size_t>(r) * hidden + c;
      float v = xv[i] + bv[c];
      if (pre != gpusim::kInvalidBuffer) pv[i] = v;
      if (relu && v < 0.0f) v = 0.0f;
      ov[i] = v;
    }
    ctx.flops(2 * hidden);
    if (pre != gpusim::kInvalidBuffer) ctx.store(pre, r, hb);
    ctx.store(out, r, hb);
  }, BlockSafety::kParallel);
  return out;
}

BiasActGrads apply_bias_act_backward(Device& dev, BufferId pre_act,
                                     BufferId dy, bool relu) {
  const std::size_t rows = dev.rows(dy);
  const std::size_t hidden = dev.cols(dy);
  BiasActGrads grads;
  grads.dx = dev.alloc_f32(rows, hidden, "bias_act.dx");
  grads.db = dev.alloc_f32(1, hidden, "bias_act.db");
  dev.charge_alloc_overhead("bias_act.backward", 2);

  auto dyv = dev.f32(dy);
  auto dxv = dev.f32(grads.dx);
  auto dbv = dev.f32(grads.db);
  std::span<const float> pv;
  if (relu) pv = dev.f32(pre_act);
  const std::size_t hb = hidden * sizeof(float);

  dev.run_kernel("Apply.BiasActGrad", KernelCategory::kCombination, rows,
                 [&](BlockCtx& ctx) {
    const std::uint32_t r = static_cast<std::uint32_t>(ctx.block_id());
    ctx.load(dy, r, hb);
    if (relu) ctx.load(pre_act, r, hb);
    for (std::size_t c = 0; c < hidden; ++c) {
      const std::size_t i = static_cast<std::size_t>(r) * hidden + c;
      dxv[i] = (!relu || pv[i] > 0.0f) ? dyv[i] : 0.0f;
    }
    ctx.flops(hidden);
    ctx.store(grads.dx, r, hb);
  }, BlockSafety::kParallel);
  // db reduction: bandwidth-dominated.
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < hidden; ++c)
      dbv[c] += dxv[r * hidden + c];
  dev.charge_kernel("Apply.BiasGrad", KernelCategory::kCombination,
                    rows * hidden, rows * hb + hb);
  return grads;
}

gpusim::BufferId pull_backward_h(Device& dev, const DeviceCsr& csr,
                                 const DeviceCsc& csc, BufferId weights,
                                 BufferId da, AggMode f) {
  if (f == AggMode::kMax)
    throw std::invalid_argument("pull_backward_h: max unsupported");
  const std::size_t hidden = dev.cols(da);
  const BufferId dt = dev.alloc_f32(csc.n_vertices, hidden, "napa.dt");
  dev.charge_alloc_overhead("napa.dt");

  auto dav = dev.f32(da);
  auto dtv = dev.f32(dt);
  auto cp = dev.u32(csc.col_ptr);
  auto ri = dev.u32(csc.row_idx);
  auto ei = dev.u32(csc.edge_id);
  auto rp = dev.u32(csr.row_ptr);
  std::span<const float> wv;
  if (weights != gpusim::kInvalidBuffer) wv = dev.f32(weights);
  const std::size_t hb = hidden * sizeof(float);

  dev.run_kernel("napa.PullBackwardH", KernelCategory::kAggregation,
                 csc.n_vertices, [&](BlockCtx& ctx) {
    const std::uint32_t s = static_cast<std::uint32_t>(ctx.block_id());
    ctx.global_read(2 * sizeof(std::uint32_t));
    float* dts = &dtv[static_cast<std::size_t>(s) * hidden];
    bool touched = false;
    for (std::uint32_t k = cp[s]; k < cp[s + 1]; ++k) {
      const std::uint32_t d = ri[k];
      ctx.global_read(4 * sizeof(std::uint32_t));
      ctx.load(da, d, hb);
      const float coeff = f == AggMode::kMean
                              ? 1.0f / static_cast<float>(rp[d + 1] - rp[d])
                              : 1.0f;
      float scalew = coeff;
      if (!wv.empty()) {
        ctx.load(weights, ei[k], sizeof(float));
        scalew *= wv[ei[k]];
      }
      const float* dad = &dav[static_cast<std::size_t>(d) * hidden];
      for (std::size_t c = 0; c < hidden; ++c) dts[c] += scalew * dad[c];
      ctx.flops(2 * hidden);
      touched = true;
    }
    if (touched) ctx.store(dt, s, hb);
  }, BlockSafety::kParallel);
  return dt;
}

void edge_weight_backward_cf(Device& dev, const DeviceCsr& csr,
                             const DeviceCsc& csc, BufferId x, BufferId t,
                             BufferId da, BufferId dx, AggMode f) {
  if (f == AggMode::kMax)
    throw std::invalid_argument("edge_weight_backward_cf: max unsupported");
  const std::size_t feat = dev.cols(x);
  const std::size_t hidden = dev.cols(da);
  auto xv = dev.f32(x);
  auto tv = dev.f32(t);
  auto dav = dev.f32(da);
  auto dxv = dev.f32(dx);
  auto rp = dev.u32(csr.row_ptr);
  auto ci = dev.u32(csr.col_idx);
  auto cp = dev.u32(csc.col_ptr);
  auto ri = dev.u32(csc.row_idx);
  const std::size_t fb = feat * sizeof(float);
  const std::size_t hb = hidden * sizeof(float);

  auto dwe_of = [&](std::uint32_t s, std::uint32_t d) {
    const float coeff = f == AggMode::kMean
                            ? 1.0f / static_cast<float>(rp[d + 1] - rp[d])
                            : 1.0f;
    const float* dad = &dav[static_cast<std::size_t>(d) * hidden];
    const float* ts = &tv[static_cast<std::size_t>(s) * hidden];
    float dwe = 0.0f;
    for (std::size_t c = 0; c < hidden; ++c) dwe += dad[c] * ts[c];
    // Weights were computed in the original F-wide space: dw/dx carries
    // that space's scale.
    return coeff * dwe * dot_weight_scale(feat);
  };

  // CSC pass: src-side terms dX[s] += dw_e * x[d].
  dev.run_kernel("napa.EdgeWeightBackwardCF.src", KernelCategory::kEdgeWeight,
                 csc.n_vertices, [&](BlockCtx& ctx) {
    const std::uint32_t s = static_cast<std::uint32_t>(ctx.block_id());
    ctx.global_read(2 * sizeof(std::uint32_t));
    if (cp[s] == cp[s + 1]) return;
    ctx.load(t, s, hb);
    ctx.load(dx, s, fb);
    float* dxs = &dxv[static_cast<std::size_t>(s) * feat];
    for (std::uint32_t k = cp[s]; k < cp[s + 1]; ++k) {
      const std::uint32_t d = ri[k];
      ctx.global_read(3 * sizeof(std::uint32_t));
      ctx.load(da, d, hb);
      ctx.load(x, d, fb);
      const float dwe = dwe_of(s, d);
      const float* xd = &xv[static_cast<std::size_t>(d) * feat];
      for (std::size_t c = 0; c < feat; ++c) dxs[c] += dwe * xd[c];
      ctx.flops(2 * hidden + 2 * feat);
    }
    ctx.store(dx, s, fb);
  }, BlockSafety::kParallel);

  // CSR pass: dst-side terms dX[d] += dw_e * x[s].
  dev.run_kernel("napa.EdgeWeightBackwardCF.dst", KernelCategory::kEdgeWeight,
                 csr.n_dst, [&](BlockCtx& ctx) {
    const std::uint32_t d = static_cast<std::uint32_t>(ctx.block_id());
    ctx.global_read(2 * sizeof(std::uint32_t));
    if (rp[d] == rp[d + 1]) return;
    ctx.load(da, d, hb);
    ctx.load(dx, d, fb);
    float* dxd = &dxv[static_cast<std::size_t>(d) * feat];
    for (std::uint32_t e = rp[d]; e < rp[d + 1]; ++e) {
      const std::uint32_t s = ci[e];
      ctx.global_read(sizeof(std::uint32_t));
      ctx.load(t, s, hb);
      ctx.load(x, s, fb);
      const float dwe = dwe_of(s, d);
      const float* xs = &xv[static_cast<std::size_t>(s) * feat];
      for (std::size_t c = 0; c < feat; ++c) dxd[c] += dwe * xs[c];
      ctx.flops(2 * hidden + 2 * feat);
    }
    ctx.store(dx, d, fb);
  }, BlockSafety::kParallel);
}

gpusim::BufferId pull_backward(Device& dev, const DeviceCsr& csr,
                               const DeviceCsc& csc, BufferId x,
                               BufferId weights, BufferId da, AggMode f,
                               EdgeWeightMode gmode) {
  if (f == AggMode::kMax)
    throw std::invalid_argument("pull_backward: max unsupported");
  const std::size_t feat = dev.cols(x);
  const BufferId dx = dev.alloc_f32(csc.n_vertices, feat, "napa.dx");
  dev.charge_alloc_overhead("napa.dx");

  auto xv = dev.f32(x);
  auto dav = dev.f32(da);
  auto dxv = dev.f32(dx);
  auto cp = dev.u32(csc.col_ptr);
  auto ri = dev.u32(csc.row_idx);
  auto ei = dev.u32(csc.edge_id);
  auto rp = dev.u32(csr.row_ptr);
  std::span<const float> wv;
  std::size_t wcols = 0;
  if (gmode != EdgeWeightMode::kNone) {
    wv = dev.f32(weights);
    wcols = dev.cols(weights);
  }
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("napa.PullBackward", KernelCategory::kAggregation,
                 csc.n_vertices, [&](BlockCtx& ctx) {
    const std::uint32_t s = static_cast<std::uint32_t>(ctx.block_id());
    ctx.global_read(2 * sizeof(std::uint32_t));
    float* dxs = &dxv[static_cast<std::size_t>(s) * feat];
    const float* xs = &xv[static_cast<std::size_t>(s) * feat];
    bool touched = false;
    if (gmode != EdgeWeightMode::kNone) ctx.load(x, s, fb);
    for (std::uint32_t k = cp[s]; k < cp[s + 1]; ++k) {
      const std::uint32_t d = ri[k];
      const std::uint32_t e = ei[k];
      ctx.global_read(2 * sizeof(std::uint32_t) +
                      2 * sizeof(std::uint32_t));  // row_idx, edge_id, deg
      ctx.load(da, d, fb);
      const float* dad = &dav[static_cast<std::size_t>(d) * feat];
      const float coeff = f == AggMode::kMean
                              ? 1.0f / static_cast<float>(rp[d + 1] - rp[d])
                              : 1.0f;
      switch (gmode) {
        case EdgeWeightMode::kNone:
          for (std::size_t c = 0; c < feat; ++c) dxs[c] += coeff * dad[c];
          ctx.flops(2 * feat);
          break;
        case EdgeWeightMode::kDot: {
          ctx.load(weights, e, sizeof(float));
          ctx.load(x, d, fb);
          const float we = wv[static_cast<std::size_t>(e) * wcols];
          const float* xd = &xv[static_cast<std::size_t>(d) * feat];
          float dwe = 0.0f;
          for (std::size_t c = 0; c < feat; ++c)
            dwe += coeff * dad[c] * xs[c];
          dwe *= dot_weight_scale(feat);
          for (std::size_t c = 0; c < feat; ++c)
            dxs[c] += coeff * we * dad[c] + dwe * xd[c];
          ctx.flops(6 * feat);
          break;
        }
        case EdgeWeightMode::kElemProduct: {
          ctx.load(weights, e, fb);
          ctx.load(x, d, fb);
          const float* we = &wv[static_cast<std::size_t>(e) * wcols];
          const float* xd = &xv[static_cast<std::size_t>(d) * feat];
          for (std::size_t c = 0; c < feat; ++c) {
            const float dh = coeff * dad[c];
            dxs[c] += we[c] * dh + dh * xs[c] * xd[c];
          }
          ctx.flops(6 * feat);
          break;
        }
      }
      touched = true;
    }
    if (touched) ctx.store(dx, s, fb);
  }, BlockSafety::kParallel);
  return dx;
}

void neighbor_apply_backward(Device& dev, const DeviceCsr& g, BufferId x,
                             BufferId da, BufferId dx, AggMode f,
                             EdgeWeightMode gmode) {
  if (gmode == EdgeWeightMode::kNone)
    throw std::invalid_argument(
        "neighbor_apply_backward: no dst terms for unweighted edges");
  if (f == AggMode::kMax)
    throw std::invalid_argument("neighbor_apply_backward: max unsupported");
  const std::size_t feat = dev.cols(x);
  auto xv = dev.f32(x);
  auto dav = dev.f32(da);
  auto dxv = dev.f32(dx);
  auto rp = dev.u32(g.row_ptr);
  auto ci = dev.u32(g.col_idx);
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("napa.NeighborApplyBackward", KernelCategory::kEdgeWeight,
                 g.n_dst, [&](BlockCtx& ctx) {
    const std::uint32_t d = static_cast<std::uint32_t>(ctx.block_id());
    ctx.global_read(2 * sizeof(std::uint32_t));
    const std::uint32_t begin = rp[d], end = rp[d + 1];
    if (begin == end) return;
    const float coeff =
        f == AggMode::kMean ? 1.0f / static_cast<float>(end - begin) : 1.0f;
    ctx.load(da, d, fb);
    const float* dad = &dav[static_cast<std::size_t>(d) * feat];
    float* dxd = &dxv[static_cast<std::size_t>(d) * feat];
    ctx.load(dx, d, fb);  // read-modify-write of the dst gradient row
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::uint32_t s = ci[e];
      ctx.global_read(sizeof(std::uint32_t));
      ctx.load(x, s, fb);
      const float* xs = &xv[static_cast<std::size_t>(s) * feat];
      if (gmode == EdgeWeightMode::kDot) {
        float dwe = 0.0f;
        for (std::size_t c = 0; c < feat; ++c) dwe += coeff * dad[c] * xs[c];
        dwe *= dot_weight_scale(feat);
        for (std::size_t c = 0; c < feat; ++c) dxd[c] += dwe * xs[c];
        ctx.flops(4 * feat);
      } else {
        for (std::size_t c = 0; c < feat; ++c)
          dxd[c] += coeff * dad[c] * xs[c] * xs[c];
        ctx.flops(4 * feat);
      }
    }
    ctx.store(dx, d, fb);
  }, BlockSafety::kParallel);
}

}  // namespace gt::kernels::napa
