#include "kernels/reference.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace gt::kernels::ref {

namespace {

/// Core of edge_weights: fills `w` (already sized) for kDot/kElemProduct.
void edge_weights_core(const Csr& csr, ConstMatrixView x, Vid n_dst,
                       EdgeWeightMode g, MatrixView w) {
  const std::size_t f = x.cols();
  for (Vid d = 0; d < n_dst; ++d) {
    const auto xd = x.row(d);
    for (Eid e = csr.row_ptr[d]; e < csr.row_ptr[d + 1]; ++e) {
      const auto xs = x.row(csr.col_idx[e]);
      if (g == EdgeWeightMode::kDot) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < f; ++c) acc += xs[c] * xd[c];
        w.at(e, 0) = acc * dot_weight_scale(f);
      } else {
        for (std::size_t c = 0; c < f; ++c) w.at(e, c) = xs[c] * xd[c];
      }
    }
  }
}

/// Core of aggregate: accumulates into zero-filled `out`.
void aggregate_core(const Csr& csr, ConstMatrixView x, ConstMatrixView weights,
                    Vid n_dst, AggMode f, EdgeWeightMode g, MatrixView out) {
  const std::size_t feat = x.cols();
  for (Vid d = 0; d < n_dst; ++d) {
    auto od = out.row(d);
    const Eid begin = csr.row_ptr[d], end = csr.row_ptr[d + 1];
    if (f == AggMode::kMax) {
      bool first = true;
      for (Eid e = begin; e < end; ++e) {
        const auto xs = x.row(csr.col_idx[e]);
        for (std::size_t c = 0; c < feat; ++c) {
          float h = xs[c];
          if (g == EdgeWeightMode::kDot) h *= weights.at(e, 0);
          if (g == EdgeWeightMode::kElemProduct) h *= weights.at(e, c);
          od[c] = first ? h : std::max(od[c], h);
        }
        first = false;
      }
      continue;
    }
    for (Eid e = begin; e < end; ++e) {
      const auto xs = x.row(csr.col_idx[e]);
      for (std::size_t c = 0; c < feat; ++c) {
        float h = xs[c];
        if (g == EdgeWeightMode::kDot) h *= weights.at(e, 0);
        if (g == EdgeWeightMode::kElemProduct) h *= weights.at(e, c);
        od[c] += h;
      }
    }
    if (f == AggMode::kMean && end > begin) {
      const float inv = 1.0f / static_cast<float>(end - begin);
      for (std::size_t c = 0; c < feat; ++c) od[c] *= inv;
    }
  }
}

/// Core of backward_layer's aggregation+weighting part: accumulates into
/// zero-filled `dx`.
void backward_agg_core(const Csr& csr, ConstMatrixView x, Vid n_dst, AggMode f,
                       EdgeWeightMode g, ConstMatrixView da,
                       ConstMatrixView cache_weights, MatrixView dx) {
  const std::size_t feat = x.cols();
  for (Vid d = 0; d < n_dst; ++d) {
    const Eid begin = csr.row_ptr[d], end = csr.row_ptr[d + 1];
    if (begin == end) continue;
    const float coeff =
        f == AggMode::kMean ? 1.0f / static_cast<float>(end - begin) : 1.0f;
    const auto dad = da.row(d);
    const auto xd = x.row(d);
    for (Eid e = begin; e < end; ++e) {
      const Vid s = csr.col_idx[e];
      const auto xs = x.row(s);
      auto dxs = dx.row(s);
      switch (g) {
        case EdgeWeightMode::kNone:
          for (std::size_t c = 0; c < feat; ++c) dxs[c] += coeff * dad[c];
          break;
        case EdgeWeightMode::kDot: {
          const float we = cache_weights.at(e, 0);
          // dL/dw_e = <coeff * da_d, x_s>; w_e = <x_s, x_d>.
          float dwe = 0.0f;
          for (std::size_t c = 0; c < feat; ++c)
            dwe += coeff * dad[c] * xs[c];
          dwe *= dot_weight_scale(feat);  // dw/dx carries the same scale
          auto dxd = dx.row(d);
          for (std::size_t c = 0; c < feat; ++c) {
            dxs[c] += coeff * we * dad[c] + dwe * xd[c];
            dxd[c] += dwe * xs[c];
          }
          break;
        }
        case EdgeWeightMode::kElemProduct: {
          auto dxd = dx.row(d);
          for (std::size_t c = 0; c < feat; ++c) {
            const float dh = coeff * dad[c];
            const float dwe = dh * xs[c];  // dL/dw_e[c]
            dxs[c] += cache_weights.at(e, c) * dh + dwe * xd[c];
            dxd[c] += dwe * xs[c];
          }
          break;
        }
      }
    }
  }
}

}  // namespace

Matrix edge_weights(const Csr& csr, const Matrix& x, Vid n_dst,
                    EdgeWeightMode g) {
  if (g == EdgeWeightMode::kNone) return {};
  Matrix w(csr.num_edges(), g == EdgeWeightMode::kDot ? 1 : x.cols());
  edge_weights_core(csr, x, n_dst, g, w);
  return w;
}

MatrixView edge_weights(Arena& arena, const Csr& csr, ConstMatrixView x,
                        Vid n_dst, EdgeWeightMode g) {
  if (g == EdgeWeightMode::kNone) return {};
  MatrixView w = arena.alloc(csr.num_edges(),
                             g == EdgeWeightMode::kDot ? 1 : x.cols());
  edge_weights_core(csr, x, n_dst, g, w);
  return w;
}

Matrix aggregate(const Csr& csr, const Matrix& x, const Matrix& weights,
                 Vid n_dst, AggMode f, EdgeWeightMode g) {
  Matrix out(n_dst, x.cols());
  aggregate_core(csr, x, weights, n_dst, f, g, out);
  return out;
}

MatrixView aggregate(Arena& arena, const Csr& csr, ConstMatrixView x,
                     ConstMatrixView weights, Vid n_dst, AggMode f,
                     EdgeWeightMode g) {
  MatrixView out = arena.alloc(n_dst, x.cols());
  aggregate_core(csr, x, weights, n_dst, f, g, out);
  return out;
}

Matrix combine(const Matrix& x, const Matrix& w, const Matrix& b, bool relu_act,
               Matrix* pre_act) {
  Matrix z = add_bias(matmul(x, w), b);
  if (pre_act != nullptr) *pre_act = z;
  return relu_act ? relu(z) : z;
}

MatrixView combine(Arena& arena, ConstMatrixView x, ConstMatrixView w,
                   ConstMatrixView b, bool relu_act, MatrixView* pre_act) {
  MatrixView z = arena.alloc(x.rows(), w.cols());
  matmul_into(x, w, z);
  add_bias_into(ConstMatrixView(z), b, z);  // in place: elementwise-safe
  if (pre_act != nullptr) *pre_act = z;
  if (!relu_act) return z;
  MatrixView y = arena.alloc(z.rows(), z.cols());
  relu_into(ConstMatrixView(z), y);
  return y;
}

Matrix forward_layer(const Csr& csr, const Matrix& x, const Matrix& w,
                     const Matrix& b, Vid n_dst, AggMode f, EdgeWeightMode g,
                     bool relu_act, LayerCache* cache) {
  Matrix weights = edge_weights(csr, x, n_dst, g);
  Matrix aggr = aggregate(csr, x, weights, n_dst, f, g);
  Matrix pre;
  Matrix y = combine(aggr, w, b, relu_act, &pre);
  if (cache != nullptr) {
    cache->weights = std::move(weights);
    cache->aggr = std::move(aggr);
    cache->pre_act = std::move(pre);
  }
  return y;
}

MatrixView forward_layer(Arena& arena, const Csr& csr, ConstMatrixView x,
                         ConstMatrixView w, ConstMatrixView b, Vid n_dst,
                         AggMode f, EdgeWeightMode g, bool relu_act,
                         LayerCacheView* cache) {
  MatrixView weights = edge_weights(arena, csr, x, n_dst, g);
  MatrixView aggr = aggregate(arena, csr, x, weights, n_dst, f, g);
  MatrixView pre;
  MatrixView y = combine(arena, aggr, w, b, relu_act, &pre);
  if (cache != nullptr) {
    cache->weights = weights;
    cache->aggr = aggr;
    cache->pre_act = pre;
  }
  return y;
}

Matrix forward_layer_combination_first(const Csr& csr, const Matrix& x,
                                       const Matrix& w, const Matrix& b,
                                       Vid n_dst, AggMode f, EdgeWeightMode g,
                                       bool relu_act) {
  if (!dkp_compatible(g))
    throw std::invalid_argument(
        "combination-first order requires scalar (or no) edge weights");
  // Weights are computed in the *original* feature space, then the
  // transform is hoisted: aggregate(xW) with those weights. Scalar weights
  // commute with the linear map, so this equals the aggregation-first
  // result up to float re-association.
  Matrix weights = edge_weights(csr, x, n_dst, g);
  Matrix transformed = matmul(x, w);
  Matrix aggr = aggregate(csr, transformed, weights, n_dst, f, g);
  Matrix z = add_bias(aggr, b);
  return relu_act ? relu(z) : z;
}

MatrixView forward_layer_combination_first(Arena& arena, const Csr& csr,
                                           ConstMatrixView x,
                                           ConstMatrixView w,
                                           ConstMatrixView b, Vid n_dst,
                                           AggMode f, EdgeWeightMode g,
                                           bool relu_act) {
  if (!dkp_compatible(g))
    throw std::invalid_argument(
        "combination-first order requires scalar (or no) edge weights");
  MatrixView weights = edge_weights(arena, csr, x, n_dst, g);
  MatrixView transformed = arena.alloc(x.rows(), w.cols());
  matmul_into(x, w, transformed);
  MatrixView aggr =
      aggregate(arena, csr, transformed, weights, n_dst, f, g);
  MatrixView z = arena.alloc(aggr.rows(), aggr.cols());
  add_bias_into(ConstMatrixView(aggr), b, z);
  if (!relu_act) return z;
  MatrixView y = arena.alloc(z.rows(), z.cols());
  relu_into(ConstMatrixView(z), y);
  return y;
}

LayerGrads backward_layer(const Csr& csr, const Matrix& x, const Matrix& w,
                          Vid n_dst, AggMode f, EdgeWeightMode g,
                          bool relu_act, const Matrix& dy,
                          const LayerCache& cache) {
  if (f == AggMode::kMax)
    throw std::invalid_argument("backward for max aggregation not supported");
  // Combination backward.
  Matrix dz = relu_act ? relu_backward(dy, cache.pre_act) : dy;
  LayerGrads grads;
  grads.dw = matmul_at_b(cache.aggr, dz);
  grads.db = col_sum(dz);
  Matrix da = matmul_a_bt(dz, w);  // [n_dst, F]

  // Aggregation + weighting backward.
  grads.dx = Matrix::zeros(x.rows(), x.cols());
  backward_agg_core(csr, x, n_dst, f, g, da, cache.weights, grads.dx);
  return grads;
}

LayerGradsView backward_layer(Arena& arena, const Csr& csr, ConstMatrixView x,
                              ConstMatrixView w, Vid n_dst, AggMode f,
                              EdgeWeightMode g, bool relu_act,
                              ConstMatrixView dy,
                              ConstMatrixView cache_weights,
                              ConstMatrixView cache_aggr,
                              ConstMatrixView cache_pre_act) {
  if (f == AggMode::kMax)
    throw std::invalid_argument("backward for max aggregation not supported");
  // Combination backward.
  ConstMatrixView dz = dy;
  if (relu_act) {
    MatrixView masked = arena.alloc(dy.rows(), dy.cols());
    relu_backward_into(dy, cache_pre_act, masked);
    dz = masked;
  }
  LayerGradsView grads;
  grads.dw = arena.alloc(cache_aggr.cols(), dz.cols());
  matmul_at_b_into(cache_aggr, dz, grads.dw);
  grads.db = arena.alloc(1, dz.cols());
  col_sum_into(dz, grads.db);
  MatrixView da = arena.alloc(dz.rows(), w.rows());  // [n_dst, F]
  matmul_a_bt_into(dz, w, da);

  // Aggregation + weighting backward.
  grads.dx = arena.alloc(x.rows(), x.cols());
  backward_agg_core(csr, x, n_dst, f, g, da, cache_weights, grads.dx);
  return grads;
}

}  // namespace gt::kernels::ref
