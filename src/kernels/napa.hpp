// NAPA: the NeighborApply-Pull-and-Apply programming model (paper §IV-B).
//
// Pure vertex-centric (destination-centric), feature-wise scheduled GNN
// kernels over CSR subgraphs:
//  * NeighborApply — edge weighting g. One thread block per dst vertex; the
//    dst embedding is loaded once into that block's SM and reused for every
//    incident edge (no cache bloat), weights are written per edge.
//  * Pull — aggregation f with weighted sources h. One block per dst;
//    accumulation happens in registers and the output row is stored once.
//  * Apply — the combination MLP (dense). The paper delegates this to
//    TensorFlow primitives; here apply_dense is the equivalent kernel, and
//    the baselines share it (dense math is identical across frameworks).
//
// Backward kernels traverse CSC (prepared by preprocessing, never translated
// on-device): pull_backward produces source-side gradients,
// neighbor_apply_backward adds the destination-side edge-weight terms.
#pragma once

#include "kernels/common.hpp"

namespace gt::kernels::napa {

/// Edge weights in CSR edge order: [E,1] (kDot) or [E,F] (kElemProduct).
/// Must not be called with kNone.
gpusim::BufferId neighbor_apply(gpusim::Device& dev, const DeviceCsr& g,
                                gpusim::BufferId x, EdgeWeightMode gmode);

/// Aggregation: [n_dst, F]. `weights` is kInvalidBuffer iff gmode == kNone.
gpusim::BufferId pull(gpusim::Device& dev, const DeviceCsr& g,
                      gpusim::BufferId x, gpusim::BufferId weights,
                      AggMode f, EdgeWeightMode gmode);

/// Combination: act(x W + b) -> [rows(x), cols(w)]. If `pre_act` is
/// non-null, *pre_act receives a buffer holding x W + b (for ReLU backward).
gpusim::BufferId apply_dense(gpusim::Device& dev, gpusim::BufferId x,
                             gpusim::BufferId w, gpusim::BufferId b,
                             bool relu, gpusim::BufferId* pre_act = nullptr);

struct DenseGrads {
  gpusim::BufferId dx = gpusim::kInvalidBuffer;
  gpusim::BufferId dw = gpusim::kInvalidBuffer;
  gpusim::BufferId db = gpusim::kInvalidBuffer;
};

// ---- Unfused combination pieces (combination-first execution order) --------
// When dynamic kernel placement hoists the MatMul above Pull, the bias and
// activation stay *after* the aggregation, so the fused apply_dense cannot
// be used; these kernels split it.

/// y = x W (no bias, no activation).
gpusim::BufferId apply_matmul(gpusim::Device& dev, gpusim::BufferId x,
                              gpusim::BufferId w);

/// Backward of apply_matmul: dx = dy W^T, dw = x^T dy.
struct MatmulGrads {
  gpusim::BufferId dx = gpusim::kInvalidBuffer;
  gpusim::BufferId dw = gpusim::kInvalidBuffer;
};
MatmulGrads apply_matmul_backward(gpusim::Device& dev, gpusim::BufferId x,
                                  gpusim::BufferId w, gpusim::BufferId dy,
                                  bool want_dx = true);

/// y = act(x + b); *pre_act receives x + b when non-null.
gpusim::BufferId apply_bias_act(gpusim::Device& dev, gpusim::BufferId x,
                                gpusim::BufferId b, bool relu,
                                gpusim::BufferId* pre_act = nullptr);

/// Backward of apply_bias_act: dx = act'(pre) (.) dy, db = colsum(dx).
struct BiasActGrads {
  gpusim::BufferId dx = gpusim::kInvalidBuffer;
  gpusim::BufferId db = gpusim::kInvalidBuffer;
};
BiasActGrads apply_bias_act_backward(gpusim::Device& dev,
                                     gpusim::BufferId pre_act,
                                     gpusim::BufferId dy, bool relu);

/// h'/f'-only Pull backward in the *transformed* (hidden) space, used by
/// combination-first backward with scalar weights: dT[s] = sum over edges
/// (s->d) of coeff * w_e * dA[d]. `weights` is the [E,1] buffer computed by
/// NeighborApply in the original feature space.
gpusim::BufferId pull_backward_h(gpusim::Device& dev, const DeviceCsr& csr,
                                 const DeviceCsc& csc,
                                 gpusim::BufferId weights, gpusim::BufferId da,
                                 AggMode f);

/// g' terms of the combination-first order (scalar weights only): with
/// T = x W, dw_e = <coeff * dA[d], T[s]>, contributing dw_e * x[d] to dX[s]
/// (CSC pass) and dw_e * x[s] to dX[d] (CSR pass). Accumulates into dx.
void edge_weight_backward_cf(gpusim::Device& dev, const DeviceCsr& csr,
                             const DeviceCsc& csc, gpusim::BufferId x,
                             gpusim::BufferId t, gpusim::BufferId da,
                             gpusim::BufferId dx, AggMode f);

/// Backward through apply_dense. `x` is the combination input (aggregation
/// output), `pre_act` the cached x W + b (ignored when !relu).
/// `want_dx=false` skips the dX = dZ W^T kernel (returned dx is invalid):
/// the first GNN layer's backward only needs parameter gradients.
DenseGrads apply_dense_backward(gpusim::Device& dev, gpusim::BufferId x,
                                gpusim::BufferId w, gpusim::BufferId pre_act,
                                gpusim::BufferId dy, bool relu,
                                bool want_dx = true);

/// Source-side gradients of Pull (h' and f', and for weighted modes the
/// g'-via-src term): dX [n_vertices, F]. Traverses CSC; `csr` provides the
/// per-dst degrees mean aggregation divides by. kMax unsupported (throws).
gpusim::BufferId pull_backward(gpusim::Device& dev, const DeviceCsr& csr,
                               const DeviceCsc& csc, gpusim::BufferId x,
                               gpusim::BufferId weights, gpusim::BufferId da,
                               AggMode f, EdgeWeightMode gmode);

/// Destination-side gradient terms of NeighborApply (g' w.r.t. the dst
/// embedding), accumulated *into* dx. Must not be called with kNone.
void neighbor_apply_backward(gpusim::Device& dev, const DeviceCsr& g,
                             gpusim::BufferId x, gpusim::BufferId da,
                             gpusim::BufferId dx, AggMode f,
                             EdgeWeightMode gmode);

}  // namespace gt::kernels::napa
