// DL-approach kernels (PyG / NeuGraph / FlexGraph style, paper §III).
//
// GNN steps are lowered onto dense DL primitives, which first requires a
// sparse-to-dense conversion: per-edge gathers materialize [E, F] matrices
// of source (and, for edge weighting, destination) embeddings. Rows of the
// embedding table referenced by several edges are replicated — the paper's
// GPU *memory bloat* (Fig 6a) — before scatter_sum/scatter_mean reduce them
// per destination. The backward pass materializes the same dense
// temporaries again and scatter-adds into the gradient table with atomics.
//
// GNNAdvisor's aggregation variant is also here: it skips the dense
// detour for aggregation (neighbor groups over CSR) but pays atomic
// synchronization when several SMs update one destination, and it has no
// edge-weighting mechanism, falling back to these DL ops (paper §VI-A).
#pragma once

#include "kernels/common.hpp"

namespace gt::kernels::dl {

/// Sparse-to-dense gather: out[k] = x[ids[k]] for every row index in the
/// u32 buffer `ids`. The returned [|ids|, F] dense matrix is the memory
/// bloat the DL-approach pays per step.
gpusim::BufferId gather_rows(gpusim::Device& dev, gpusim::BufferId x,
                             gpusim::BufferId ids, const char* name);

/// Expand per-dst pointers into a per-edge dst id buffer (edge k -> its
/// dst), i.e. the index DL scatter ops consume.
gpusim::BufferId expand_dst_ids(gpusim::Device& dev, const DeviceCsr& csr);

/// Edge weighting with dense DL ops over gathered [E, F] matrices:
/// returns weights in CSR edge order ([E,1] kDot / [E,F] kElemProduct).
gpusim::BufferId edge_weight_dense(gpusim::Device& dev,
                                   gpusim::BufferId dense_src,
                                   gpusim::BufferId dense_dst,
                                   EdgeWeightMode gmode);

/// h over dense matrices: weighted[k] = w[k] * dense_src[k].
gpusim::BufferId apply_weights_dense(gpusim::Device& dev,
                                     gpusim::BufferId dense_src,
                                     gpusim::BufferId weights,
                                     EdgeWeightMode gmode);

/// scatter_sum / scatter_mean / scatter_max: reduce dense edge rows into
/// per-dst rows using the CSR segment boundaries.
gpusim::BufferId scatter_aggregate(gpusim::Device& dev, const DeviceCsr& csr,
                                   gpusim::BufferId dense_rows, AggMode f);

/// Convenience wrapper: the full DL-approach forward aggregation pipeline
/// (gathers -> optional weighting -> scatter). Returns the aggregation
/// output and, via out-params, the weights buffer (caller frees; invalid
/// for kNone).
gpusim::BufferId forward_aggregate(gpusim::Device& dev, const DeviceCsr& csr,
                                   gpusim::BufferId x, AggMode f,
                                   EdgeWeightMode gmode,
                                   gpusim::BufferId* weights_out);

/// Backward of the DL pipeline: dense temporaries again, then an atomic
/// scatter-add into dX by source (and dst for weighted modes). kMax
/// unsupported.
gpusim::BufferId backward_aggregate(gpusim::Device& dev, const DeviceCsr& csr,
                                    gpusim::BufferId x,
                                    gpusim::BufferId weights,
                                    gpusim::BufferId da, AggMode f,
                                    EdgeWeightMode gmode);

/// GNNAdvisor-style aggregation: neighbor lists are split into groups of
/// `group_size`, one block per group; groups of the same dst run on
/// different SMs and atomically combine into the output row. Unweighted
/// only (GNNAdvisor has no edge-weighting mechanism).
gpusim::BufferId aggregate_neighbor_groups(gpusim::Device& dev,
                                           const DeviceCsr& csr,
                                           gpusim::BufferId x, AggMode f,
                                           std::size_t group_size);

}  // namespace gt::kernels::dl
