// Serial CPU reference for one GNN layer (forward and backward).
//
// This is the correctness oracle: every device kernel family (NAPA,
// Graph-approach, DL-approach, GNNAdvisor-style) must reproduce these
// numerics bit-for-bit up to float re-association. The DKP equivalence
// (combination-first == aggregation-first for scalar edge weights) is also
// validated against this implementation.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "kernels/common.hpp"
#include "tensor/matrix.hpp"

namespace gt::kernels::ref {

/// Edge weights in CSR edge order. Shape: [E,1] for kDot, [E,F] for
/// kElemProduct, empty matrix for kNone.
Matrix edge_weights(const Csr& csr, const Matrix& x, Vid n_dst,
                    EdgeWeightMode g);

/// Aggregate weighted source embeddings per dst: [n_dst, F].
/// `weights` must come from edge_weights (ignored for kNone).
Matrix aggregate(const Csr& csr, const Matrix& x, const Matrix& weights,
                 Vid n_dst, AggMode f, EdgeWeightMode g);

/// Combination: act(x W + b). `pre_act` (optional) receives x W + b.
Matrix combine(const Matrix& x, const Matrix& w, const Matrix& b, bool relu,
               Matrix* pre_act = nullptr);

/// Everything the backward pass needs from forward.
struct LayerCache {
  Matrix weights;  // edge weights (may be empty)
  Matrix aggr;     // aggregation output [n_dst, F]
  Matrix pre_act;  // A W + b (for the ReLU mask)
};

/// Full layer, aggregation-first: Y = act(aggregate(x) W + b).
Matrix forward_layer(const Csr& csr, const Matrix& x, const Matrix& w,
                     const Matrix& b, Vid n_dst, AggMode f, EdgeWeightMode g,
                     bool relu, LayerCache* cache = nullptr);

/// Full layer, combination-first (the DKP-rewritten order):
/// Y = act(aggregate(x W, weights(x)) + b). Requires dkp_compatible(g).
Matrix forward_layer_combination_first(const Csr& csr, const Matrix& x,
                                       const Matrix& w, const Matrix& b,
                                       Vid n_dst, AggMode f, EdgeWeightMode g,
                                       bool relu);

struct LayerGrads {
  Matrix dx;  // [n_vertices, F]
  Matrix dw;  // same shape as W
  Matrix db;  // 1 x H
};

/// Backward through the aggregation-first layer. kMax is unsupported
/// (throws): training models here use sum/mean, as the paper's GCN/NGCF do.
LayerGrads backward_layer(const Csr& csr, const Matrix& x, const Matrix& w,
                          Vid n_dst, AggMode f, EdgeWeightMode g, bool relu,
                          const Matrix& dy, const LayerCache& cache);

}  // namespace gt::kernels::ref
