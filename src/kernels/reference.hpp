// Serial CPU reference for one GNN layer (forward and backward).
//
// This is the correctness oracle: every device kernel family (NAPA,
// Graph-approach, DL-approach, GNNAdvisor-style) must reproduce these
// numerics bit-for-bit up to float re-association. The DKP equivalence
// (combination-first == aggregation-first for scalar edge weights) is also
// validated against this implementation.
//
// Every primitive exists in two forms: the owning one (fresh Matrix per
// call — tests and cold paths) and an arena form writing activations into
// gt::Arena views, which the steady-state service loop uses so repeated
// batches allocate nothing. Both compute bit-identical values.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "kernels/common.hpp"
#include "tensor/arena.hpp"
#include "tensor/matrix.hpp"
#include "tensor/view.hpp"

namespace gt::kernels::ref {

/// Edge weights in CSR edge order. Shape: [E,1] for kDot, [E,F] for
/// kElemProduct, empty matrix for kNone.
Matrix edge_weights(const Csr& csr, const Matrix& x, Vid n_dst,
                    EdgeWeightMode g);
MatrixView edge_weights(Arena& arena, const Csr& csr, ConstMatrixView x,
                        Vid n_dst, EdgeWeightMode g);

/// Aggregate weighted source embeddings per dst: [n_dst, F].
/// `weights` must come from edge_weights (ignored for kNone).
Matrix aggregate(const Csr& csr, const Matrix& x, const Matrix& weights,
                 Vid n_dst, AggMode f, EdgeWeightMode g);
MatrixView aggregate(Arena& arena, const Csr& csr, ConstMatrixView x,
                     ConstMatrixView weights, Vid n_dst, AggMode f,
                     EdgeWeightMode g);

/// Combination: act(x W + b). `pre_act` (optional) receives x W + b.
Matrix combine(const Matrix& x, const Matrix& w, const Matrix& b, bool relu,
               Matrix* pre_act = nullptr);
MatrixView combine(Arena& arena, ConstMatrixView x, ConstMatrixView w,
                   ConstMatrixView b, bool relu,
                   MatrixView* pre_act = nullptr);

/// Everything the backward pass needs from forward.
struct LayerCache {
  Matrix weights;  // edge weights (may be empty)
  Matrix aggr;     // aggregation output [n_dst, F]
  Matrix pre_act;  // A W + b (for the ReLU mask)
};

/// Arena-backed LayerCache: views live until the owning arena resets.
struct LayerCacheView {
  MatrixView weights;
  MatrixView aggr;
  MatrixView pre_act;
};

/// Full layer, aggregation-first: Y = act(aggregate(x) W + b).
Matrix forward_layer(const Csr& csr, const Matrix& x, const Matrix& w,
                     const Matrix& b, Vid n_dst, AggMode f, EdgeWeightMode g,
                     bool relu, LayerCache* cache = nullptr);
MatrixView forward_layer(Arena& arena, const Csr& csr, ConstMatrixView x,
                         ConstMatrixView w, ConstMatrixView b, Vid n_dst,
                         AggMode f, EdgeWeightMode g, bool relu,
                         LayerCacheView* cache = nullptr);

/// Full layer, combination-first (the DKP-rewritten order):
/// Y = act(aggregate(x W, weights(x)) + b). Requires dkp_compatible(g).
Matrix forward_layer_combination_first(const Csr& csr, const Matrix& x,
                                       const Matrix& w, const Matrix& b,
                                       Vid n_dst, AggMode f, EdgeWeightMode g,
                                       bool relu);
MatrixView forward_layer_combination_first(Arena& arena, const Csr& csr,
                                           ConstMatrixView x,
                                           ConstMatrixView w,
                                           ConstMatrixView b, Vid n_dst,
                                           AggMode f, EdgeWeightMode g,
                                           bool relu);

struct LayerGrads {
  Matrix dx;  // [n_vertices, F]
  Matrix dw;  // same shape as W
  Matrix db;  // 1 x H
};

struct LayerGradsView {
  MatrixView dx;
  MatrixView dw;
  MatrixView db;
};

/// Backward through the aggregation-first layer. kMax is unsupported
/// (throws): training models here use sum/mean, as the paper's GCN/NGCF do.
LayerGrads backward_layer(const Csr& csr, const Matrix& x, const Matrix& w,
                          Vid n_dst, AggMode f, EdgeWeightMode g, bool relu,
                          const Matrix& dy, const LayerCache& cache);
LayerGradsView backward_layer(Arena& arena, const Csr& csr, ConstMatrixView x,
                              ConstMatrixView w, Vid n_dst, AggMode f,
                              EdgeWeightMode g, bool relu, ConstMatrixView dy,
                              ConstMatrixView cache_weights,
                              ConstMatrixView cache_aggr,
                              ConstMatrixView cache_pre_act);

}  // namespace gt::kernels::ref
