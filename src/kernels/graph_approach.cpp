#include "kernels/graph_approach.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace gt::kernels::graphsim {

using gpusim::BlockCtx;
using gpusim::BlockSafety;
using gpusim::BufferId;
using gpusim::Device;
using gpusim::KernelCategory;

namespace {

/// Work/traffic charge for a device-side edge sort + pointer derivation.
void charge_translation(Device& dev, const char* name, Eid n_edges,
                        Vid n_vertices) {
  const double log_e =
      n_edges > 1 ? std::ceil(std::log2(static_cast<double>(n_edges))) : 1.0;
  const std::uint64_t sort_flops =
      static_cast<std::uint64_t>(2.0 * static_cast<double>(n_edges) * log_e);
  // A device radix sort makes ~4 bandwidth-bound passes over the
  // (src, dst, edge-id) triples, plus one scan deriving the pointers.
  const std::size_t traffic =
      static_cast<std::size_t>((3.0 * sizeof(std::uint32_t)) *
                               static_cast<double>(n_edges) * 5.0) +
      static_cast<std::size_t>(n_vertices + 1) * sizeof(std::uint32_t);
  // Device sorts (thrust-style) launch ~10 internal kernels with host
  // synchronization and scratch cudaMallocs between passes; that fixed
  // cost does not shrink with the dataset scale.
  constexpr double kSortFixedOverheadUs = 60.0;
  dev.charge_kernel(name, KernelCategory::kFormatTranslate, sort_flops,
                    traffic, kSortFixedOverheadUs);
}

}  // namespace

DeviceCsr translate_to_csr(Device& dev, const DeviceCoo& coo) {
  auto src = dev.u32(coo.src);
  auto dst = dev.u32(coo.dst);

  // The extra sort buffer the paper calls out (allocated, used, freed).
  const BufferId scratch =
      dev.alloc_u32(2 * coo.n_edges, "translate.scratch");
  dev.charge_alloc_overhead("translate.scratch");

  DeviceCsr csr;
  csr.n_dst = coo.n_dst;
  csr.n_vertices = coo.n_vertices;
  csr.n_edges = coo.n_edges;
  csr.row_ptr =
      dev.alloc_u32(static_cast<std::size_t>(coo.n_dst) + 1, "csr.row_ptr");
  csr.col_idx = dev.alloc_u32(coo.n_edges, "csr.col_idx");
  csr.edge_id = dev.alloc_u32(coo.n_edges, "csr.edge_id");
  dev.charge_alloc_overhead("translate.csr", 3);

  auto rp = dev.u32(csr.row_ptr);
  auto ci = dev.u32(csr.col_idx);
  auto ei = dev.u32(csr.edge_id);
  std::vector<std::uint32_t> count(static_cast<std::size_t>(coo.n_dst) + 1, 0);
  for (Eid e = 0; e < coo.n_edges; ++e) ++count[dst[e] + 1];
  for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  std::copy(count.begin(), count.end(), rp.begin());
  std::vector<std::uint32_t> cursor(count.begin(), count.end() - 1);
  for (Eid e = 0; e < coo.n_edges; ++e) {
    const std::uint32_t k = cursor[dst[e]]++;
    ci[k] = src[e];
    ei[k] = static_cast<std::uint32_t>(e);
  }

  charge_translation(dev, "graphsim.coo_to_csr", coo.n_edges, coo.n_dst);
  dev.free(scratch);
  return csr;
}

DeviceCsc translate_to_csc(Device& dev, const DeviceCoo& coo) {
  auto src = dev.u32(coo.src);
  auto dst = dev.u32(coo.dst);

  const BufferId scratch =
      dev.alloc_u32(2 * coo.n_edges, "translate.scratch");
  dev.charge_alloc_overhead("translate.scratch");

  DeviceCsc csc;
  csc.n_dst = coo.n_dst;
  csc.n_vertices = coo.n_vertices;
  csc.n_edges = coo.n_edges;
  csc.col_ptr = dev.alloc_u32(static_cast<std::size_t>(coo.n_vertices) + 1,
                              "csc.col_ptr");
  csc.row_idx = dev.alloc_u32(coo.n_edges, "csc.row_idx");
  csc.edge_id = dev.alloc_u32(coo.n_edges, "csc.edge_id");
  dev.charge_alloc_overhead("translate.csc", 3);

  auto cp = dev.u32(csc.col_ptr);
  auto ri = dev.u32(csc.row_idx);
  auto ei = dev.u32(csc.edge_id);
  std::vector<std::uint32_t> count(
      static_cast<std::size_t>(coo.n_vertices) + 1, 0);
  for (Eid e = 0; e < coo.n_edges; ++e) ++count[src[e] + 1];
  for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  std::copy(count.begin(), count.end(), cp.begin());
  std::vector<std::uint32_t> cursor(count.begin(), count.end() - 1);
  for (Eid e = 0; e < coo.n_edges; ++e) {
    const std::uint32_t k = cursor[src[e]]++;
    ri[k] = dst[e];
    ei[k] = static_cast<std::uint32_t>(e);
  }

  charge_translation(dev, "graphsim.coo_to_csc", coo.n_edges, coo.n_vertices);
  dev.free(scratch);
  return csc;
}

BufferId sddmm_edgewise(Device& dev, const DeviceCoo& coo, BufferId x,
                        EdgeWeightMode gmode) {
  if (gmode == EdgeWeightMode::kNone)
    throw std::invalid_argument("sddmm requires an edge weight mode");
  const std::size_t feat = dev.cols(x);
  const std::size_t wcols = gmode == EdgeWeightMode::kDot ? 1 : feat;
  const BufferId out = dev.alloc_f32(coo.n_edges, wcols, "sddmm.weights");
  dev.charge_alloc_overhead("sddmm.weights");

  auto xv = dev.f32(x);
  auto ov = dev.f32(out);
  auto src = dev.u32(coo.src);
  auto dst = dev.u32(coo.dst);
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("graphsim.SDDMM", KernelCategory::kEdgeWeight, coo.n_edges,
                 [&](BlockCtx& ctx) {
    const std::size_t e = ctx.block_id();
    ctx.global_read(2 * sizeof(std::uint32_t));  // src[e], dst[e]
    const std::uint32_t s = src[e], d = dst[e];
    // Edge-wise scheduling: the dst row is re-cached on every SM that
    // happens to process one of its edges — the cache-bloat mechanism.
    ctx.load(x, s, fb);
    ctx.load(x, d, fb);
    const float* xs = &xv[static_cast<std::size_t>(s) * feat];
    const float* xd = &xv[static_cast<std::size_t>(d) * feat];
    float* we = &ov[e * wcols];
    if (gmode == EdgeWeightMode::kDot) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < feat; ++c) acc += xs[c] * xd[c];
      we[0] = acc * dot_weight_scale(feat);
      ctx.flops(2 * feat);
      ctx.store(out, static_cast<std::uint32_t>(e), sizeof(float));
    } else {
      for (std::size_t c = 0; c < feat; ++c) we[c] = xs[c] * xd[c];
      ctx.flops(feat);
      ctx.store(out, static_cast<std::uint32_t>(e), fb);
    }
  }, BlockSafety::kParallel);
  return out;
}

BufferId spmm_edgewise(Device& dev, const DeviceCsr& csr, BufferId x,
                       BufferId weights, AggMode f, EdgeWeightMode gmode) {
  if ((gmode == EdgeWeightMode::kNone) !=
      (weights == gpusim::kInvalidBuffer))
    throw std::invalid_argument("spmm: weights iff weighted mode");
  if (f == AggMode::kMax && gmode != EdgeWeightMode::kNone)
    throw std::invalid_argument("spmm: atomic max with weights unsupported");
  const std::size_t feat = dev.cols(x);
  const BufferId out = dev.alloc_f32(csr.n_dst, feat, "spmm.out");
  dev.charge_alloc_overhead("spmm.out");

  auto xv = dev.f32(x);
  auto ov = dev.f32(out);
  auto rp = dev.u32(csr.row_ptr);
  auto ci = dev.u32(csr.col_idx);
  std::span<const std::uint32_t> ei;
  if (csr.edge_id != gpusim::kInvalidBuffer) ei = dev.u32(csr.edge_id);
  std::span<const float> wv;
  std::size_t wcols = 0;
  if (gmode != EdgeWeightMode::kNone) {
    wv = dev.f32(weights);
    wcols = dev.cols(weights);
  }
  // Expand dst per CSR entry (what the real kernel reads from its COO copy).
  std::vector<std::uint32_t> dst_of(csr.n_edges);
  for (Vid d = 0; d < csr.n_dst; ++d)
    for (std::uint32_t k = rp[d]; k < rp[d + 1]; ++k) dst_of[k] = d;
  const std::size_t fb = feat * sizeof(float);

  std::vector<bool> seeded(csr.n_dst, false);
  dev.run_kernel("graphsim.SpMM", KernelCategory::kAggregation, csr.n_edges,
                 [&](BlockCtx& ctx) {
    const std::size_t k = ctx.block_id();
    ctx.global_read(3 * sizeof(std::uint32_t));  // col_idx, dst, edge_id
    const std::uint32_t s = ci[k];
    const std::uint32_t d = dst_of[k];
    ctx.load(x, s, fb);
    // Accumulator row cached per SM: multiple SMs processing edges of the
    // same dst each keep their own copy (cache bloat) and contend through
    // atomics.
    ctx.load(out, d, fb);
    ctx.atomic(feat);
    const float* xs = &xv[static_cast<std::size_t>(s) * feat];
    float* od = &ov[static_cast<std::size_t>(d) * feat];
    const std::uint32_t e =
        ei.empty() ? static_cast<std::uint32_t>(k) : ei[k];
    for (std::size_t c = 0; c < feat; ++c) {
      float h = xs[c];
      if (gmode == EdgeWeightMode::kDot)
        h *= wv[static_cast<std::size_t>(e) * wcols];
      else if (gmode == EdgeWeightMode::kElemProduct)
        h *= wv[static_cast<std::size_t>(e) * wcols + c];
      if (f == AggMode::kMax) {
        od[c] = seeded[d] ? std::max(od[c], h) : h;
      } else {
        od[c] += h;
      }
    }
    seeded[d] = true;
    ctx.flops((gmode == EdgeWeightMode::kNone ? 1 : 2) * feat);
    ctx.store(out, d, fb);
    // Edge blocks of one dst collide on `od` and on the shared `seeded`
    // flags: stays BlockSafety::kSerial (the contention is what the
    // simulated atomics price).
  });

  if (f == AggMode::kMean) {
    dev.run_kernel("graphsim.SpMM.normalize", KernelCategory::kAggregation,
                   csr.n_dst, [&](BlockCtx& ctx) {
      const std::uint32_t d = static_cast<std::uint32_t>(ctx.block_id());
      ctx.global_read(2 * sizeof(std::uint32_t));
      const std::uint32_t deg = rp[d + 1] - rp[d];
      if (deg == 0) return;
      ctx.load(out, d, fb);
      float* od = &ov[static_cast<std::size_t>(d) * feat];
      const float inv = 1.0f / static_cast<float>(deg);
      for (std::size_t c = 0; c < feat; ++c) od[c] *= inv;
      ctx.flops(feat);
      ctx.store(out, d, fb);
    }, BlockSafety::kParallel);
  }
  return out;
}

BufferId backward_edgewise(Device& dev, const DeviceCoo& coo,
                           const DeviceCsr& csr, BufferId x, BufferId weights,
                           BufferId da, AggMode f, EdgeWeightMode gmode) {
  if (f == AggMode::kMax)
    throw std::invalid_argument("backward_edgewise: max unsupported");
  const std::size_t feat = dev.cols(x);
  const BufferId dx = dev.alloc_f32(coo.n_vertices, feat, "graphsim.dx");
  dev.charge_alloc_overhead("graphsim.dx");

  auto xv = dev.f32(x);
  auto dav = dev.f32(da);
  auto dxv = dev.f32(dx);
  auto src = dev.u32(coo.src);
  auto dst = dev.u32(coo.dst);
  auto rp = dev.u32(csr.row_ptr);
  std::span<const float> wv;
  std::size_t wcols = 0;
  if (gmode != EdgeWeightMode::kNone) {
    wv = dev.f32(weights);
    wcols = dev.cols(weights);
  }
  const std::size_t fb = feat * sizeof(float);

  dev.run_kernel("graphsim.Backward", KernelCategory::kAggregation,
                 coo.n_edges, [&](BlockCtx& ctx) {
    const std::size_t e = ctx.block_id();
    ctx.global_read(2 * sizeof(std::uint32_t));
    const std::uint32_t s = src[e], d = dst[e];
    ctx.global_read(2 * sizeof(std::uint32_t));  // degree lookup
    const float coeff =
        f == AggMode::kMean ? 1.0f / static_cast<float>(rp[d + 1] - rp[d])
                            : 1.0f;
    ctx.load(da, d, fb);
    ctx.load(dx, s, fb);
    ctx.atomic(feat);
    const float* dad = &dav[static_cast<std::size_t>(d) * feat];
    const float* xs = &xv[static_cast<std::size_t>(s) * feat];
    float* dxs = &dxv[static_cast<std::size_t>(s) * feat];
    switch (gmode) {
      case EdgeWeightMode::kNone:
        for (std::size_t c = 0; c < feat; ++c) dxs[c] += coeff * dad[c];
        ctx.flops(2 * feat);
        break;
      case EdgeWeightMode::kDot: {
        ctx.load(x, s, fb);
        ctx.load(x, d, fb);
        ctx.load(weights, static_cast<std::uint32_t>(e), sizeof(float));
        ctx.load(dx, d, fb);
        ctx.atomic(feat);
        const float* xd = &xv[static_cast<std::size_t>(d) * feat];
        float* dxd = &dxv[static_cast<std::size_t>(d) * feat];
        const float we = wv[e * wcols];
        float dwe = 0.0f;
        for (std::size_t c = 0; c < feat; ++c) dwe += coeff * dad[c] * xs[c];
        dwe *= dot_weight_scale(feat);
        for (std::size_t c = 0; c < feat; ++c) {
          dxs[c] += coeff * we * dad[c] + dwe * xd[c];
          dxd[c] += dwe * xs[c];
        }
        ctx.flops(8 * feat);
        break;
      }
      case EdgeWeightMode::kElemProduct: {
        ctx.load(x, s, fb);
        ctx.load(x, d, fb);
        ctx.load(weights, static_cast<std::uint32_t>(e), fb);
        ctx.load(dx, d, fb);
        ctx.atomic(feat);
        const float* xd = &xv[static_cast<std::size_t>(d) * feat];
        float* dxd = &dxv[static_cast<std::size_t>(d) * feat];
        for (std::size_t c = 0; c < feat; ++c) {
          const float dh = coeff * dad[c];
          const float dwe = dh * xs[c];
          dxs[c] += wv[e * wcols + c] * dh + dwe * xd[c];
          dxd[c] += dwe * xs[c];
        }
        ctx.flops(8 * feat);
        break;
      }
    }
    ctx.store(dx, s, fb);
    if (gmode != EdgeWeightMode::kNone)
      ctx.store(dx, d, fb);
    // Edge blocks collide on dx[s]/dx[d]: stays BlockSafety::kSerial.
  });
  return dx;
}

}  // namespace gt::kernels::graphsim
