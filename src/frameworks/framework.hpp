// Framework interface: one training batch, end to end, fully instrumented.
//
// Every evaluated system (Base-GT / Dynamic-GT / Prepro-GT and the PyG /
// DGL / GNNAdvisor / SALIENT baselines) implements run_batch: preprocess
// (sample, reindex, lookup, transfer), execute FWP + loss + BWP on the
// simulated GPU, apply SGD, and report the Nsight-style kernel profile,
// memory statistics, and the preprocessing schedule. Benchmarks reproduce
// the paper's tables and figures from these reports alone.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "datasets/catalog.hpp"
#include "gpusim/stats.hpp"
#include "models/config.hpp"
#include "models/params.hpp"
#include "pipeline/batch_context.hpp"
#include "pipeline/plan.hpp"
#include "sampling/cache_hierarchy.hpp"

namespace gt::frameworks {

/// How a multi-device run decomposes a batch (DESIGN.md §14). Numerics
/// always execute the canonical single-device path; a strategy controls
/// the *modeled* decomposition — which device each kernel's work is
/// attributed to and which collectives are priced at layer boundaries.
enum class ShardStrategy {
  kNone,            // single device
  kRange,           // dst-vertex range partitioning + halo all-gather
  kTensorParallel,  // NeutronTP-style feature-dim slices + all-reduce
};

const char* to_string(ShardStrategy s);
/// Parse "range" / "tp"; throws std::invalid_argument otherwise.
ShardStrategy parse_shard_strategy(const std::string& name);

struct ShardOptions {
  std::size_t devices = 1;
  ShardStrategy strategy = ShardStrategy::kNone;
};

/// Kernel placement directive for a batch (Fig 15's error bars come from
/// running baselines explicitly in both orders).
enum class OrderPolicy {
  kAggregationFirst,  // the default static placement everywhere
  kCombinationFirst,  // explicit user reordering (GCN-style models only)
  kDynamic,           // Cost-DKP decides per layer (GraphTensor only)
};

struct BatchSpec {
  std::size_t batch_size = 300;   // paper §VI: 300 dst vertices per batch
  std::uint64_t batch_index = 0;  // selects the batch deterministically
  std::uint64_t seed = 42;
  OrderPolicy order = OrderPolicy::kAggregationFirst;
  float learning_rate = 0.01f;
  /// FWP only (no loss/BWP/SGD): the paper's inference service. Dynamic
  /// kernel placement decides per the forward-only cost model, where the
  /// combination-first benefit is largest (no first-layer backward skip to
  /// credit the conventional order).
  bool inference = false;
};

struct RunReport {
  std::string framework;
  std::string model;
  std::string dataset;
  bool oom = false;           // GPU out-of-memory (run aborted)
  std::string oom_what;

  // -- Degraded serving (gt::fault) -----------------------------------------
  // A batch whose prepare/execute kept throwing past the service's retry
  // budget is recorded here instead of aborting the epoch (the OOM path
  // above, generalized). `retries` counts recovery attempts consumed by
  // the batch (0 on the happy path) and `backoff_ticks` the virtual
  // (clock-free) backoff the service waited before those attempts.
  bool failed = false;
  std::string failed_reason;
  std::uint32_t retries = 0;
  std::uint64_t backoff_ticks = 0;

  /// True when the batch produced a real training/inference result.
  bool ok() const noexcept { return !oom && !failed; }

  // -- GPU side (kernel profile, Nsight-equivalent) -------------------------
  /// Kernel launches over the batch's device — exactly the gpusim.kernel
  /// fault-occurrence domain: a gt::fault `layer=` coordinate in
  /// [0, kernel_launches) lands on that launch. Synthetic charges (sorts,
  /// alloc overhead) appear in the profile but are not launch sites.
  std::uint64_t kernel_launches = 0;
  double kernel_total_us = 0.0;
  double fwp_us = 0.0;  // forward-pass share of kernel_total_us
  double bwp_us = 0.0;  // loss + backward share (0 for inference)
  std::array<double, 7> kernel_category_us{};  // by gpusim::KernelCategory
  std::uint64_t flops = 0;
  std::array<std::uint64_t, 7> kernel_category_flops{};
  std::size_t global_bytes = 0;
  std::size_t cache_loaded_bytes = 0;
  std::uint64_t atomic_ops = 0;
  std::size_t peak_memory_bytes = 0;
  std::size_t input_table_bytes = 0;  // normalizer for bloat metrics

  // -- Host side -------------------------------------------------------------
  pipeline::PreprocSchedule schedule;
  double preproc_makespan_us = 0.0;
  double end_to_end_us = 0.0;

  // Real (steady_clock) host time spent running this batch, as opposed to
  // the *simulated* times above. Varies run to run with machine load and
  // the compute-engine thread count; equivalence checks must ignore it.
  double host_prepare_us = 0.0;  // prepare_batch wall-clock
  double host_execute_us = 0.0;  // execute_prepared wall-clock

  // -- Batch context (arena) -------------------------------------------------
  // Per-batch values (peak/allocations) are batch-intrinsic and identical
  // no matter which worker context ran the batch; capacity/growths are
  // context-local warm-up properties (they depend on what the context ran
  // before) and must not be compared across worker counts.
  std::size_t arena_peak_bytes = 0;        // floats this batch carved
  std::uint64_t arena_allocations = 0;     // arena allocs this batch
  std::size_t arena_capacity_bytes = 0;    // context arena capacity
  std::uint64_t arena_growths = 0;         // block growths this batch

  // -- Multi-device (modeled decomposition; defaults = single device) -------
  // Filled only when the backend was configured with devices > 1, so
  // single-device reports stay bit-identical to pre-refactor runs.
  std::size_t devices = 1;
  ShardStrategy shard = ShardStrategy::kNone;
  double group_makespan_us = 0.0;  ///< merged group timeline end
  double comm_us = 0.0;            ///< collective time on the interconnect
  std::size_t comm_bytes = 0;      ///< bytes crossing links
  std::size_t comm_steps = 0;      ///< link pipeline steps
  std::size_t collectives = 0;     ///< collectives priced this batch
  /// Attributed per-device kernel totals and lane busy time (empty for
  /// devices == 1). Deterministic across compute-thread/worker counts.
  std::vector<gpusim::KernelStats> device_stats;
  std::vector<double> device_busy_us;

  // -- Training --------------------------------------------------------------
  float loss = 0.0f;
  std::array<std::uint32_t, 8> layer_comb_first_fwd{};  // DKP decisions
  std::array<std::uint32_t, 8> layer_comb_first_bwd{};

  double kernel_us(gpusim::KernelCategory c) const {
    return kernel_category_us[static_cast<std::size_t>(c)];
  }
  /// FLOPs executed by the irregular graph kernels (everything except the
  /// dense combination GEMMs).
  std::uint64_t graph_kernel_flops() const {
    return flops - kernel_category_flops[static_cast<std::size_t>(
                       gpusim::KernelCategory::kCombination)];
  }
};

class Framework {
 public:
  virtual ~Framework() = default;
  virtual std::string name() const = 0;

  /// Opt the backend into modeled multi-device execution. Returns false
  /// when the backend cannot shard (the serial-only baselines); asking for
  /// a single device resets to the default and always succeeds.
  virtual bool configure_sharding(const ShardOptions& options) {
    return options.devices <= 1;
  }

  /// Opt the backend into the embedding cache hierarchy (DESIGN.md §15).
  /// Returns false when the backend has no cache path; a zero budget
  /// disables the hierarchy and always succeeds.
  virtual bool configure_cache(const sampling::CacheConfig& config) {
    return config.budget_bytes == 0;
  }

  /// Phase 1 — parameter-independent preprocessing (sample, reindex,
  /// lookup, schedule pricing) into `ctx`'s reusable storage. Safe to run
  /// concurrently for different batches on *distinct* contexts; never
  /// touches model parameters or framework state.
  virtual void prepare_batch(const Dataset& data,
                             const models::GnnModelConfig& model,
                             const BatchSpec& spec,
                             pipeline::BatchContext& ctx) = 0;

  /// Phase 2 — device compute, loss, backward, and SGD from a prepared
  /// context. Mutates `params` and framework state (cost model, caches):
  /// callers must invoke it serially, in batch order, for determinism.
  /// Must not throw on GPU OOM — reports it.
  virtual RunReport execute_prepared(const Dataset& data,
                                     const models::GnnModelConfig& model,
                                     models::ModelParams& params,
                                     const BatchSpec& spec,
                                     pipeline::BatchContext& ctx) = 0;

  /// Train one batch end to end in `ctx`: begin_batch + prepare + execute.
  RunReport run_batch(const Dataset& data, const models::GnnModelConfig& model,
                      models::ModelParams& params, const BatchSpec& spec,
                      pipeline::BatchContext& ctx);

  /// Compatibility form: same, in a lazily created framework-owned
  /// scratch context (so repeated calls still reuse buffers).
  RunReport run_batch(const Dataset& data, const models::GnnModelConfig& model,
                      models::ModelParams& params, const BatchSpec& spec);

 private:
  std::unique_ptr<pipeline::BatchContext> scratch_ctx_;
};

/// Factory. Known names: "PyG", "PyG-MT", "DGL", "GNNAdvisor", "SALIENT",
/// "Base-GT", "Dynamic-GT", "Prepro-GT". Throws std::out_of_range otherwise.
std::unique_ptr<Framework> make_framework(const std::string& name);

/// All framework names in evaluation order.
const std::vector<std::string>& framework_names();

}  // namespace gt::frameworks
