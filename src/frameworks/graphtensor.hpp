// The three GraphTensor variants of the evaluation (§VI):
//  * Base-GT    — NAPA kernels, static aggregation-first placement,
//                 type-parallel (barriered) preprocessing.
//  * Dynamic-GT — Base-GT + the kernel orchestrator: the model DFG is
//                 rewritten with Cost-DKP nodes; during the first batches
//                 both placements are measured, the Table-I cost model is
//                 least-squares fitted, and afterwards each layer runs in
//                 the predicted-cheaper order.
//  * Prepro-GT  — Dynamic-GT + the service-wide tensor scheduler (pipelined
//                 per-layer subtasks, contention relaxing, pinned-memory
//                 chunked K->T transfers).
#pragma once

#include "dfg/cost_model.hpp"
#include "frameworks/framework.hpp"

namespace gt::frameworks {

class GraphTensorFramework : public Framework {
 public:
  enum class Variant { kBase, kDynamic, kPrepro };

  /// `embedding_cache_bytes` > 0 enables the PaGraph-style GPU-resident
  /// cache of the highest-out-degree vertices' embeddings (extension, see
  /// sampling/embedding_cache.hpp): per-batch lookup and transfer then
  /// cover only cache misses.
  explicit GraphTensorFramework(Variant variant,
                                std::size_t embedding_cache_bytes = 0)
      : variant_(variant), cache_bytes_(embedding_cache_bytes) {}

  std::string name() const override;

  /// Modeled multi-device execution (DESIGN.md §14): numerics stay on the
  /// canonical single-device path; devices > 1 attributes the priced
  /// profile across a DeviceGroup per the strategy and prices its
  /// collectives. Requires a concrete strategy when devices > 1.
  bool configure_sharding(const ShardOptions& options) override {
    if (options.devices <= 1) {
      shard_ = ShardOptions{};
      return true;
    }
    if (options.strategy == ShardStrategy::kNone) return false;
    shard_ = options;
    return true;
  }

  const ShardOptions& shard_options() const noexcept { return shard_; }

  void prepare_batch(const Dataset& data, const models::GnnModelConfig& model,
                     const BatchSpec& spec,
                     pipeline::BatchContext& ctx) override;

  RunReport execute_prepared(const Dataset& data,
                             const models::GnnModelConfig& model,
                             models::ModelParams& params,
                             const BatchSpec& spec,
                             pipeline::BatchContext& ctx) override;

  /// Expose the orchestrator's cost model (Table I benchmarks read the fit
  /// error and coefficients).
  const dfg::DkpCostModel& cost_model() const noexcept { return cost_model_; }

  /// Batches used to collect both-placement measurements before fitting.
  static constexpr std::uint64_t kFitAfterBatches = 4;

  /// Cache hit rate observed by the last cache-enabled batch.
  double last_cache_hit_rate() const noexcept { return last_hit_rate_; }

 private:
  pipeline::PlanOptions plan_options() const;

  Variant variant_;
  std::size_t cache_bytes_ = 0;
  double last_hit_rate_ = 0.0;
  dfg::DkpCostModel cost_model_;
  std::uint64_t batches_seen_ = 0;
  ShardOptions shard_;
};

}  // namespace gt::frameworks
