// The three GraphTensor variants of the evaluation (§VI):
//  * Base-GT    — NAPA kernels, static aggregation-first placement,
//                 type-parallel (barriered) preprocessing.
//  * Dynamic-GT — Base-GT + the kernel orchestrator: the model DFG is
//                 rewritten with Cost-DKP nodes; during the first batches
//                 both placements are measured, the Table-I cost model is
//                 least-squares fitted, and afterwards each layer runs in
//                 the predicted-cheaper order.
//  * Prepro-GT  — Dynamic-GT + the service-wide tensor scheduler (pipelined
//                 per-layer subtasks, contention relaxing, pinned-memory
//                 chunked K->T transfers).
#pragma once

#include "dfg/cost_model.hpp"
#include "frameworks/framework.hpp"

namespace gt::frameworks {

class GraphTensorFramework : public Framework {
 public:
  enum class Variant { kBase, kDynamic, kPrepro };

  /// `embedding_cache_bytes` > 0 enables the degree-pinned static tier of
  /// the embedding cache hierarchy (the legacy PaGraph-style policy, see
  /// sampling/cache_hierarchy.hpp): per-batch lookup and transfer then
  /// cover only cache misses. configure_cache() selects richer policies.
  explicit GraphTensorFramework(Variant variant,
                                std::size_t embedding_cache_bytes = 0)
      : variant_(variant) {
    cache_cfg_.budget_bytes = embedding_cache_bytes;
    cache_cfg_.policy = sampling::CachePolicy::kStatic;
  }

  std::string name() const override;

  /// Modeled multi-device execution (DESIGN.md §14): numerics stay on the
  /// canonical single-device path; devices > 1 attributes the priced
  /// profile across a DeviceGroup per the strategy and prices its
  /// collectives. Requires a concrete strategy when devices > 1.
  bool configure_sharding(const ShardOptions& options) override {
    if (options.devices <= 1) {
      shard_ = ShardOptions{};
      return true;
    }
    if (options.strategy == ShardStrategy::kNone) return false;
    shard_ = options;
    return true;
  }

  const ShardOptions& shard_options() const noexcept { return shard_; }

  /// Embedding cache hierarchy (DESIGN.md §15): a dataset-lifetime
  /// static + dynamic tier stack that re-prices the K/T stages without
  /// touching numerics. Replaces any earlier cache configuration; the
  /// hierarchy itself is built lazily on the first cached batch.
  bool configure_cache(const sampling::CacheConfig& config) override {
    cache_cfg_ = config;
    hierarchy_.reset();
    hier_graph_ = nullptr;
    hier_table_ = nullptr;
    return true;
  }

  const sampling::CacheConfig& cache_config() const noexcept {
    return cache_cfg_;
  }
  /// Committed per-tier counters (zeros until a cached batch commits).
  sampling::CacheStats cache_stats() const noexcept {
    return hierarchy_ ? hierarchy_->stats() : sampling::CacheStats{};
  }

  void prepare_batch(const Dataset& data, const models::GnnModelConfig& model,
                     const BatchSpec& spec,
                     pipeline::BatchContext& ctx) override;

  RunReport execute_prepared(const Dataset& data,
                             const models::GnnModelConfig& model,
                             models::ModelParams& params,
                             const BatchSpec& spec,
                             pipeline::BatchContext& ctx) override;

  /// Expose the orchestrator's cost model (Table I benchmarks read the fit
  /// error and coefficients).
  const dfg::DkpCostModel& cost_model() const noexcept { return cost_model_; }

  /// Batches used to collect both-placement measurements before fitting.
  static constexpr std::uint64_t kFitAfterBatches = 4;

  /// Cache hit rate observed by the last cache-enabled batch.
  double last_cache_hit_rate() const noexcept { return last_hit_rate_; }

 private:
  pipeline::PlanOptions plan_options() const;
  /// Dataset-lifetime hierarchy, keyed on the graph/table identities like
  /// BatchContext::executor_for — rebuilt only when the dataset (or the
  /// cache configuration, via configure_cache) changes.
  sampling::CacheHierarchy& ensure_hierarchy(const Dataset& data);

  Variant variant_;
  sampling::CacheConfig cache_cfg_;
  std::unique_ptr<sampling::CacheHierarchy> hierarchy_;
  const void* hier_graph_ = nullptr;
  const void* hier_table_ = nullptr;
  double last_hit_rate_ = 0.0;
  dfg::DkpCostModel cost_model_;
  std::uint64_t batches_seen_ = 0;
  ShardOptions shard_;
};

}  // namespace gt::frameworks
