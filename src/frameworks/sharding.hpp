// Sharded execution strategies over the modeled DeviceGroup (DESIGN.md §14).
//
// Numerics always run the canonical single-device path; a ShardPlan
// decides how that run's priced kernel profile is *attributed* across N
// simulated devices and which collectives are priced at layer boundaries:
//
//  * Range sharding — the graph-partition baseline: device d owns the
//    contiguous dst-vertex range [d*n_dst/N, (d+1)*n_dst/N) of every
//    layer. Forward layers start with a halo-exchange all-gather of the
//    boundary embeddings each owner must send (counted from the real
//    reindexed layer CSR); backward layers end with an all-reduce of the
//    weight gradient every partition contributed to.
//
//  * Tensor parallelism — NeutronTP-style: device d owns a contiguous
//    slice of each layer's input-feature dimension, so aggregation
//    needs no communication at all; each layer boundary costs one
//    all-reduce of the partial layer output forward, and an all-gather of
//    the column-sharded input gradient backward. Weight-gradient rows are
//    disjoint per device, which is why the SGD commit can stage per-device
//    row slices and stay bit-identical (common.hpp's SgdStage).
//
// Attribution is deterministic and sum-preserving: integer counters
// (flops, bytes, blocks) are split by cumulative proportional rounding
// (split_proportional below), and latency is repriced per device as
// launch overhead plus the device's fraction of the post-overhead time —
// every device pays its own launch. Because the canonical profile is
// bit-identical across compute-thread counts (the PR 4 contract), the
// per-device stats are too.
#pragma once

#include <cstdint>
#include <vector>

#include "frameworks/framework.hpp"
#include "gpusim/device_group.hpp"
#include "pipeline/executor.hpp"

namespace gt::frameworks::detail {

/// Index range [lo, hi) of the canonical device profile covering one
/// layer pass. Captured by the framework around each exec.forward /
/// exec.backward call; profile entries outside every slice (loss head,
/// synthetic charges) are attributed by the plan's default weights.
struct LayerSlice {
  std::uint32_t layer = 0;
  bool backward = false;
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// Everything shard_execution() needs, derived once per batch from the
/// preprocessed layer structures and the model dimensions.
struct ShardPlan {
  ShardOptions options;
  std::uint32_t num_layers = 0;

  // Attribution weights, one entry per device.
  std::vector<std::vector<std::uint64_t>> dst_rows;   // [L] range: dst rows
  std::vector<std::vector<std::uint64_t>> feat_cols;  // [L] tp: in-dim cols
  std::vector<std::uint64_t> default_weights;         // non-layer kernels

  // Collective payloads.
  std::vector<std::vector<std::size_t>> halo_shard_bytes;  // [L] range fwd
  std::vector<std::size_t> grad_reduce_bytes;              // [L] range bwd
  std::vector<std::size_t> tp_fwd_allreduce_bytes;         // [L] tp fwd
  std::vector<std::vector<std::size_t>> tp_bwd_gather_bytes;  // [L] tp bwd

  // TP SGD commit: per-layer dw row boundaries ([L] x devices+1 over
  // in_dim) — each device owns a disjoint row slice of the gradient.
  std::vector<std::vector<std::size_t>> sgd_row_boundaries;

  const std::vector<std::uint64_t>& layer_weights(std::uint32_t layer) const {
    return options.strategy == ShardStrategy::kTensorParallel
               ? feat_cols[layer]
               : dst_rows[layer];
  }
};

ShardPlan build_shard_plan(const pipeline::PreprocResult& pre,
                           const models::ModelParams& params,
                           std::uint32_t num_layers,
                           const ShardOptions& options);

/// Split `x` across weights by cumulative proportional rounding:
/// out[d] = floor(x * cum[d+1] / total) - floor(x * cum[d] / total).
/// Sum-preserving (the shares always add back to x) and deterministic.
/// All-zero weights split as all-zero shares except x lands on device 0.
std::vector<std::uint64_t> split_proportional(
    std::uint64_t x, const std::vector<std::uint64_t>& weights);

/// One batch's embedding-cache outcome volumes (DESIGN.md §15), attributed
/// across devices with the same sum-preserving proportional split as every
/// other integer counter so per-device cache accounting stays exact.
struct CacheBatchVolumes {
  std::uint64_t static_hits = 0;
  std::uint64_t dynamic_hits = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// The attributed multi-device view of one executed batch.
struct ShardedExecution {
  ShardOptions options;
  gpusim::GroupStats group;
  std::vector<gpusim::KernelStats> device_totals;  // per device
  std::vector<gpusim::CollectiveCost> priced;      // nonzero collectives

  /// Per-device attributed profile entries, for the kernel ledger's
  /// device column (profile order, devices with zero share skipped).
  struct DeviceKernel {
    std::size_t device = 0;
    gpusim::KernelStats stats;
  };
  std::vector<DeviceKernel> kernels;

  /// Per-device cache volumes (empty when the batch ran uncached). Each
  /// field sums back exactly to the batch totals.
  std::vector<CacheBatchVolumes> device_cache;
};

/// Attribute the canonical profile across the plan's devices, price the
/// strategy's collectives at the captured layer boundaries, and run the
/// merged group timeline. `launch_overhead_us` is the device cost
/// parameter every per-device kernel re-pays. `cache`, when non-null,
/// carries the batch's embedding-cache volumes to attribute per device.
ShardedExecution shard_execution(
    const std::vector<gpusim::KernelStats>& profile,
    std::vector<LayerSlice> slices, const ShardPlan& plan,
    double launch_overhead_us, const CacheBatchVolumes* cache = nullptr);

}  // namespace gt::frameworks::detail
