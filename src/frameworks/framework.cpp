#include "frameworks/framework.hpp"

#include <chrono>
#include <stdexcept>

#include "frameworks/baselines.hpp"
#include "frameworks/graphtensor.hpp"
#include "obs/live/worker_profiler.hpp"

namespace gt::frameworks {

namespace {
double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}
}  // namespace

const char* to_string(ShardStrategy s) {
  switch (s) {
    case ShardStrategy::kNone:           return "none";
    case ShardStrategy::kRange:          return "range";
    case ShardStrategy::kTensorParallel: return "tp";
  }
  return "?";
}

ShardStrategy parse_shard_strategy(const std::string& name) {
  if (name == "none") return ShardStrategy::kNone;
  if (name == "range") return ShardStrategy::kRange;
  if (name == "tp") return ShardStrategy::kTensorParallel;
  throw std::invalid_argument("unknown shard strategy '" + name +
                              "' (expected range or tp)");
}

RunReport Framework::run_batch(const Dataset& data,
                               const models::GnnModelConfig& model,
                               models::ModelParams& params,
                               const BatchSpec& spec,
                               pipeline::BatchContext& ctx) {
  ctx.begin_batch();
  const auto t0 = std::chrono::steady_clock::now();
  {
    GT_LIVE_STAGE(kPrepare);
    prepare_batch(data, model, spec, ctx);
  }
  const double prepare_us = elapsed_us(t0);
  const auto t1 = std::chrono::steady_clock::now();
  GT_LIVE_STAGE(kExecute);
  RunReport report = execute_prepared(data, model, params, spec, ctx);
  report.host_execute_us = elapsed_us(t1);
  report.host_prepare_us = prepare_us;
  return report;
}

RunReport Framework::run_batch(const Dataset& data,
                               const models::GnnModelConfig& model,
                               models::ModelParams& params,
                               const BatchSpec& spec) {
  if (!scratch_ctx_)
    scratch_ctx_ = std::make_unique<pipeline::BatchContext>();
  return run_batch(data, model, params, spec, *scratch_ctx_);
}

std::unique_ptr<Framework> make_framework(const std::string& name) {
  if (name == "PyG")
    return std::make_unique<BaselineFramework>("PyG", pyg_options());
  if (name == "PyG-MT")
    return std::make_unique<BaselineFramework>("PyG-MT", pyg_mt_options());
  if (name == "DGL")
    return std::make_unique<BaselineFramework>("DGL", dgl_options());
  if (name == "GNNAdvisor")
    return std::make_unique<BaselineFramework>("GNNAdvisor",
                                               gnnadvisor_options());
  if (name == "SALIENT")
    return std::make_unique<BaselineFramework>("SALIENT", salient_options());
  if (name == "Base-GT")
    return std::make_unique<GraphTensorFramework>(
        GraphTensorFramework::Variant::kBase);
  if (name == "Dynamic-GT")
    return std::make_unique<GraphTensorFramework>(
        GraphTensorFramework::Variant::kDynamic);
  if (name == "Prepro-GT")
    return std::make_unique<GraphTensorFramework>(
        GraphTensorFramework::Variant::kPrepro);
  throw std::out_of_range("unknown framework: " + name);
}

const std::vector<std::string>& framework_names() {
  static const std::vector<std::string> names = {
      "PyG",     "PyG-MT",  "DGL",        "GNNAdvisor",
      "SALIENT", "Base-GT", "Dynamic-GT", "Prepro-GT"};
  return names;
}

}  // namespace gt::frameworks
