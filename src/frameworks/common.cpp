#include "frameworks/common.hpp"

#include "datasets/embedding.hpp"
#include "tensor/ops.hpp"

namespace gt::frameworks::detail {

gpusim::DeviceConfig eval_device_config() {
  gpusim::DeviceConfig cfg;
  // 24 GB scaled by the dataset scale factor (~1/128): big enough for every
  // NAPA / Graph-approach workload, small enough that the DL-approach's
  // densified NGCF tensors on livejournal (the largest sampled subgraph x
  // the widest features) do not fit — reproducing the paper's OOM.
  cfg.memory_capacity_bytes = 96ull << 20;
  return cfg;
}

PreprocOutcome preprocess(const Dataset& data, const BatchSpec& spec,
                          std::uint32_t num_layers,
                          const sampling::ReindexFormats& formats,
                          const pipeline::PlanOptions& plan) {
  PreprocOutcome out;
  pipeline::PreprocExecutor exec(data.csr, data.embeddings, data.spec.fanout,
                                 num_layers, spec.seed, formats);
  const std::vector<Vid> batch =
      exec.sampler().pick_batch(spec.batch_size, spec.batch_index);
  out.data = exec.run_serial(batch);
  out.workload = pipeline::workload_from(out.data.batch,
                                         data.spec.feature_dim);
  out.schedule = pipeline::plan_preprocessing(out.workload, plan);
  return out;
}

std::unique_ptr<DeviceSession> open_session(
    const PreprocOutcome& pre, const models::ModelParams& params,
    const sampling::ReindexFormats& formats, bool upload_input) {
  auto session = std::make_unique<DeviceSession>(eval_device_config());
  gpusim::Device& dev = session->dev;

  if (upload_input) {
    session->input =
        kernels::upload_matrix(dev, pre.data.embeddings, "input-table");
  }
  session->input_table_bytes = pre.data.embeddings.bytes();

  for (const auto& layer : pre.data.layers) {
    if (formats.csr)
      session->csr.push_back(
          kernels::upload_csr(dev, layer.csr, layer.n_dst));
    if (formats.csc)
      session->csc.push_back(
          kernels::upload_csc(dev, layer.csr, layer.n_dst));
    if (formats.coo)
      session->coo.push_back(
          kernels::upload_coo(dev, layer.coo, layer.n_dst));
  }
  for (std::uint32_t l = 0; l < params.num_layers(); ++l) {
    session->w.push_back(
        kernels::upload_matrix(dev, params.w(l), "w" + std::to_string(l)));
    session->b.push_back(
        kernels::upload_matrix(dev, params.b(l), "b" + std::to_string(l)));
  }
  dev.clear_profile();  // kernel profile measures FWP/BWP only
  return session;
}

float loss_head(gpusim::Device& dev, gpusim::BufferId logits,
                const pipeline::PreprocResult& data,
                std::uint32_t num_classes, std::uint64_t seed,
                gpusim::BufferId* dlogits) {
  Matrix host_logits = kernels::download_matrix(dev, logits);
  std::vector<std::uint32_t> labels;
  labels.reserve(host_logits.rows());
  for (std::size_t i = 0; i < host_logits.rows(); ++i)
    labels.push_back(
        synthetic_label(data.batch.vid_order[i], num_classes, seed));
  Matrix grad;
  const float loss = softmax_cross_entropy(host_logits, labels, &grad);
  *dlogits = kernels::upload_matrix(dev, grad, "dlogits");
  return loss;
}

void apply_sgd(gpusim::Device& dev, models::ModelParams& params,
               std::uint32_t layer, gpusim::BufferId dw, gpusim::BufferId db,
               float lr) {
  params.sgd_update(layer, kernels::download_matrix(dev, dw),
                    kernels::download_matrix(dev, db), lr);
}

void finalize_report(RunReport& report, const gpusim::Device& dev,
                     const PreprocOutcome& pre, bool overlap_compute) {
  for (const auto& k : dev.profile()) {
    report.kernel_total_us += k.latency_us;
    report.kernel_category_us[static_cast<std::size_t>(k.category)] +=
        k.latency_us;
    report.kernel_category_flops[static_cast<std::size_t>(k.category)] +=
        k.flops;
    report.flops += k.flops;
    report.global_bytes += k.global_bytes;
    report.cache_loaded_bytes += k.cache_loaded_bytes;
    report.atomic_ops += k.atomic_ops;
  }
  report.peak_memory_bytes = dev.memory_stats().peak_bytes;
  report.schedule = pre.schedule;
  report.preproc_makespan_us = pre.schedule.makespan_us;
  report.end_to_end_us = pipeline::end_to_end_us(
      pre.schedule, report.kernel_total_us, overlap_compute);
}

}  // namespace gt::frameworks::detail
