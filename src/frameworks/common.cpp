#include "frameworks/common.hpp"

#include <algorithm>

#include "datasets/embedding.hpp"
#include "fault/fault.hpp"
#include "obs/attrib/kernel_ledger.hpp"
#include "obs/live/worker_profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace gt::frameworks::detail {

namespace {

const char* sim_category_of(const std::string& task_name) {
  if (task_name.empty()) return "preproc";
  switch (task_name[0]) {
    case 'S': return "sampling";
    case 'R': return "reindex";
    case 'K': return "lookup";
    case 'T': return "transfer";
    default:  return "preproc";
  }
}

/// Lay one batch's discrete-event schedule plus its GPU kernel profile on
/// the tracer's simulated timeline (pid kSimPid) — the Fig 20 view. The
/// sim does not record which core unit ran a task, so CPU tasks are
/// packed greedily into lanes: same makespan, readable rendering.
void emit_sim_timeline(const RunReport& report, const gpusim::Device& dev,
                       const pipeline::PreprocSchedule& schedule) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) return;

  const double gpu_us = report.kernel_total_us;
  const double batch_span = schedule.makespan_us + gpu_us;
  // Small gap so consecutive batches stay visually distinct.
  const double base = tracer.advance_virtual(batch_span + 0.05 * batch_span);

  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < schedule.sim.tasks.size(); ++i) {
    const SimTaskResult& t = schedule.sim.tasks[i];
    if (t.resource == kNoResource || t.finish <= t.start) continue;
    order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return schedule.sim.tasks[a].start < schedule.sim.tasks[b].start;
  });

  std::vector<double> cpu_lane_free;  // lane index -> earliest free time
  for (std::size_t i : order) {
    const SimTaskResult& t = schedule.sim.tasks[i];
    obs::TraceEvent e;
    e.name = t.name;
    e.cat = sim_category_of(t.name);
    e.pid = obs::kSimPid;
    e.ts_us = base + t.start;
    e.dur_us = t.finish - t.start;
    if (e.cat == std::string_view("transfer")) {
      e.tid = obs::kSimTidPcie;
    } else {
      std::size_t lane = 0;
      while (lane < cpu_lane_free.size() &&
             cpu_lane_free[lane] > t.start + 1e-9)
        ++lane;
      if (lane == cpu_lane_free.size()) cpu_lane_free.push_back(0.0);
      cpu_lane_free[lane] = t.finish;
      e.tid = static_cast<std::uint32_t>(lane);
      tracer.set_sim_thread_name(e.tid,
                                 "cpu" + std::to_string(lane));
    }
    tracer.emit(std::move(e));
  }
  tracer.set_sim_thread_name(obs::kSimTidPcie, "pcie");
  tracer.set_sim_thread_name(obs::kSimTidGpu, "gpu");

  // GPU compute follows this batch's preprocessing (steady-state overlap
  // would slide it under the *next* batch's S/R/K/T).
  const double gpu0 = base + schedule.makespan_us;
  auto phase = [&](const char* name, double ts, double dur) {
    if (dur <= 0.0) return;
    obs::TraceEvent e;
    e.name = name;
    e.cat = name;
    e.pid = obs::kSimPid;
    e.tid = obs::kSimTidGpu;
    e.ts_us = ts;
    e.dur_us = dur;
    tracer.emit(std::move(e));
  };
  phase("FWP", gpu0, report.fwp_us);
  phase("BWP", gpu0 + report.fwp_us, report.bwp_us);
  // Per-kernel detail, nested under the phase spans.
  double t = gpu0;
  for (const auto& k : dev.profile()) {
    obs::TraceEvent e;
    e.name = k.name;
    e.cat = gpusim::to_string(k.category);
    e.pid = obs::kSimPid;
    e.tid = obs::kSimTidGpu;
    e.ts_us = t;
    e.dur_us = k.latency_us;
    e.args_json = "\"flops\":" + std::to_string(k.flops) +
                  ",\"global_bytes\":" + std::to_string(k.global_bytes);
    tracer.emit(std::move(e));
    t += k.latency_us;
  }
}

}  // namespace

gpusim::DeviceConfig eval_device_config() {
  gpusim::DeviceConfig cfg;
  // 24 GB scaled by the dataset scale factor (~1/128): big enough for every
  // NAPA / Graph-approach workload, small enough that the DL-approach's
  // densified NGCF tensors on livejournal (the largest sampled subgraph x
  // the widest features) do not fit — reproducing the paper's OOM.
  cfg.memory_capacity_bytes = 96ull << 20;
  return cfg;
}

void preprocess_into(const Dataset& data, const BatchSpec& spec,
                     std::uint32_t num_layers,
                     const sampling::ReindexFormats& formats,
                     const pipeline::PlanOptions& plan,
                     pipeline::BatchContext& ctx) {
  pipeline::PreprocExecutor& exec = ctx.executor_for(
      data.csr, data.embeddings, data.spec.fanout, num_layers, spec.seed,
      formats);
  ctx.batch_vids() = exec.sampler().pick_batch(spec.batch_size,
                                               spec.batch_index);
  exec.run_serial_into(ctx.batch_vids(), ctx.table(), ctx.preproc(),
                       ctx.scratch());
  ctx.workload() = pipeline::workload_from(ctx.preproc().batch,
                                           data.spec.feature_dim);
  ctx.schedule() = pipeline::plan_preprocessing(ctx.workload(), plan);
}

void record_oom(RunReport& report, const gpusim::GpuOomError& e,
                const pipeline::BatchContext& ctx) {
  report.oom = true;
  report.oom_what = e.what();
  report.schedule = ctx.schedule();
  report.preproc_makespan_us = ctx.schedule().makespan_us;
  obs::metrics().counter("frameworks.oom_batches").add(1);
}

std::unique_ptr<DeviceSession> open_session(
    const pipeline::PreprocResult& pre, const models::ModelParams& params,
    const sampling::ReindexFormats& formats, bool upload_input) {
  fault::check(fault::Site::kTransfer);
  GT_LIVE_STAGE(kTransfer);
  auto session = std::make_unique<DeviceSession>(eval_device_config());
  gpusim::Device& dev = session->dev;

  if (upload_input) {
    session->input =
        kernels::upload_matrix(dev, pre.embeddings, "input-table");
  }
  session->input_table_bytes = pre.embeddings.bytes();

  for (const auto& layer : pre.layers) {
    if (formats.csr)
      session->csr.push_back(
          kernels::upload_csr(dev, layer.csr, layer.n_dst));
    if (formats.csc)
      session->csc.push_back(
          kernels::upload_csc(dev, layer.csr, layer.n_dst));
    if (formats.coo)
      session->coo.push_back(
          kernels::upload_coo(dev, layer.coo, layer.n_dst));
  }
  for (std::uint32_t l = 0; l < params.num_layers(); ++l) {
    session->w.push_back(
        kernels::upload_matrix(dev, params.w(l), "w" + std::to_string(l)));
    session->b.push_back(
        kernels::upload_matrix(dev, params.b(l), "b" + std::to_string(l)));
  }
  dev.clear_profile();  // kernel profile measures FWP/BWP only
  return session;
}

float loss_head(gpusim::Device& dev, gpusim::BufferId logits,
                const pipeline::PreprocResult& data,
                std::uint32_t num_classes, std::uint64_t seed,
                gpusim::BufferId* dlogits, pipeline::BatchContext* ctx) {
  if (ctx) {
    // Hot path: logits, labels, and the gradient live in the context, so
    // the loss head allocates nothing once the context is warm.
    MatrixView host_logits = kernels::download_matrix(dev, logits,
                                                      ctx->arena());
    std::vector<std::uint32_t>& labels = ctx->labels();
    labels.clear();
    labels.reserve(host_logits.rows());
    for (std::size_t i = 0; i < host_logits.rows(); ++i)
      labels.push_back(
          synthetic_label(data.batch.vid_order[i], num_classes, seed));
    MatrixView grad =
        ctx->arena().alloc(host_logits.rows(), host_logits.cols());
    const float loss = softmax_cross_entropy_into(host_logits, labels, grad);
    *dlogits = kernels::upload_matrix(dev, grad, "dlogits");
    return loss;
  }
  Matrix host_logits = kernels::download_matrix(dev, logits);
  std::vector<std::uint32_t> labels;
  labels.reserve(host_logits.rows());
  for (std::size_t i = 0; i < host_logits.rows(); ++i)
    labels.push_back(
        synthetic_label(data.batch.vid_order[i], num_classes, seed));
  Matrix grad;
  const float loss = softmax_cross_entropy(host_logits, labels, &grad);
  *dlogits = kernels::upload_matrix(dev, grad, "dlogits");
  return loss;
}

void SgdStage::stage(gpusim::Device& dev, std::uint32_t layer,
                     gpusim::BufferId dw, gpusim::BufferId db,
                     pipeline::BatchContext& ctx) {
  pending_.push_back({layer, kernels::download_matrix(dev, dw, ctx.arena()),
                      kernels::download_matrix(dev, db, ctx.arena())});
}

void SgdStage::commit() {
  for (const Pending& p : pending_) {
    const std::vector<std::size_t>* b =
        row_slices_ && p.layer < row_slices_->size()
            ? &(*row_slices_)[p.layer]
            : nullptr;
    if (b && b->size() >= 2 && b->back() == p.dw.rows()) {
      // Tensor-parallel commit: each device owns a disjoint row slice of
      // dw, applied in device order. Elementwise-independent, hence
      // bit-identical to the full-matrix branch below.
      for (std::size_t d = 0; d + 1 < b->size(); ++d) {
        const std::size_t lo = (*b)[d];
        const std::size_t hi = (*b)[d + 1];
        if (hi == lo) continue;
        params_->sgd_update_rows(
            p.layer, lo,
            ConstMatrixView(p.dw.data().data() + lo * p.dw.cols(), hi - lo,
                            p.dw.cols()),
            lr_);
      }
      params_->sgd_update_bias(p.layer, p.db, lr_);
    } else {
      params_->sgd_update(p.layer, p.dw, p.db, lr_);
    }
  }
  pending_.clear();
}

void finalize_report(RunReport& report, const gpusim::Device& dev,
                     const pipeline::PreprocSchedule& schedule,
                     bool overlap_compute,
                     const pipeline::BatchContext* ctx,
                     const ShardedExecution* shard) {
  std::size_t cache_hit_bytes = 0;
  report.kernel_launches = dev.kernel_launch_count();
  for (const auto& k : dev.profile()) {
    report.kernel_total_us += k.latency_us;
    report.kernel_category_us[static_cast<std::size_t>(k.category)] +=
        k.latency_us;
    report.kernel_category_flops[static_cast<std::size_t>(k.category)] +=
        k.flops;
    report.flops += k.flops;
    report.global_bytes += k.global_bytes;
    report.cache_loaded_bytes += k.cache_loaded_bytes;
    report.atomic_ops += k.atomic_ops;
    cache_hit_bytes += k.cache_hit_bytes;
  }
  // Callers mark the FWP/BWP boundary as they run; a framework that did
  // not gets the whole profile attributed to the forward pass.
  if (report.fwp_us == 0.0 && report.bwp_us == 0.0)
    report.fwp_us = report.kernel_total_us;
  report.peak_memory_bytes = dev.memory_stats().peak_bytes;
  report.schedule = schedule;
  report.preproc_makespan_us = schedule.makespan_us;
  report.end_to_end_us = pipeline::end_to_end_us(
      schedule, report.kernel_total_us, overlap_compute);

  obs::MetricsRegistry& m = obs::metrics();
  if (shard && shard->options.devices > 1) {
    report.devices = shard->options.devices;
    report.shard = shard->options.strategy;
    report.group_makespan_us = shard->group.makespan_us;
    report.comm_us = shard->group.comm_us;
    report.comm_bytes = shard->group.comm_bytes;
    report.comm_steps = shard->group.comm_steps;
    report.collectives = shard->group.collectives;
    report.device_stats = shard->device_totals;
    report.device_busy_us = shard->group.device_busy_us;
    // The group timeline replaces the serial kernel time in the overlap:
    // preprocessing hides under the *merged* device/interconnect makespan.
    report.end_to_end_us = pipeline::end_to_end_us(
        schedule, report.group_makespan_us, overlap_compute);
    m.counter("comm.collectives").add(report.collectives);
    m.counter("comm.bytes").add(report.comm_bytes);
    m.counter("comm.steps").add(report.comm_steps);
    m.gauge("comm.us").set(report.comm_us);
    m.gauge("gpusim.devices").set(static_cast<double>(report.devices));
    m.gauge("gpusim.group.makespan_us").set(report.group_makespan_us);
    for (std::size_t d = 0; d < report.device_busy_us.size(); ++d) {
      const std::string prefix = "gpusim.device." + std::to_string(d);
      m.gauge(prefix + ".busy_us").set(report.device_busy_us[d]);
      m.gauge(prefix + ".share")
          .set(report.group_makespan_us > 0.0
                   ? report.device_busy_us[d] / report.group_makespan_us
                   : 0.0);
    }
    // Per-device embedding-cache attribution (sum-preserving split of the
    // batch's hit/miss/eviction volumes, DESIGN.md §15).
    for (std::size_t d = 0; d < shard->device_cache.size(); ++d) {
      const std::string prefix = "cache.device." + std::to_string(d);
      const CacheBatchVolumes& cv = shard->device_cache[d];
      m.counter(prefix + ".static_hits").add(cv.static_hits);
      m.counter(prefix + ".dynamic_hits").add(cv.dynamic_hits);
      m.counter(prefix + ".prefetch_hits").add(cv.prefetch_hits);
      m.counter(prefix + ".misses").add(cv.misses);
      m.counter(prefix + ".evictions").add(cv.evictions);
    }
  }
  m.counter("frameworks.batches").add(1);
  m.histogram("frameworks.e2e_us").observe(report.end_to_end_us);
  m.histogram("frameworks.preproc_us").observe(report.preproc_makespan_us);
  m.histogram("frameworks.kernel_us").observe(report.kernel_total_us);
  const std::size_t cache_total = cache_hit_bytes + report.cache_loaded_bytes;
  if (cache_total > 0)
    m.gauge("gpusim.sm_cache_hit_rate")
        .set(static_cast<double>(cache_hit_bytes) /
             static_cast<double>(cache_total));
#ifndef GT_OBS_DISABLE
  // Kernel-level attribution ledger: one record per reported batch, built
  // from the same profile and schedule the report itself is priced from —
  // the ledger's totals identity is exact because it shares every source
  // number with end_to_end_us above. Armed-off runs skip at the atomic.
  if (obs::attrib::KernelLedger::global().armed()) {
    obs::attrib::BatchTotals totals;
    totals.end_to_end_us = report.end_to_end_us;
    totals.makespan_us = schedule.makespan_us;
    for (int t = 0; t < 4; ++t)
      totals.stage_busy_us[t] = schedule.type_busy_us[t];
    totals.fwp_us = report.fwp_us;
    totals.bwp_us = report.bwp_us;
    std::vector<obs::attrib::KernelRecord> records;
    auto to_record = [](const gpusim::KernelStats& k, int device) {
      obs::attrib::KernelRecord r;
      r.name = k.name;
      r.category = gpusim::to_string(k.category);
      r.phase = gpusim::to_string(k.phase);
      r.blocks = k.blocks;
      r.latency_us = k.latency_us;
      r.flops = k.flops;
      r.global_bytes = k.global_bytes;
      r.device = device;
      return r;
    };
    if (shard && shard->options.devices > 1) {
      // Sharded batches record the attributed per-device profile (device
      // column set) instead of the canonical one, so the artifact shows
      // where each lane's time went.
      records.reserve(shard->kernels.size());
      for (const auto& dk : shard->kernels)
        records.push_back(to_record(dk.stats, static_cast<int>(dk.device)));
    } else {
      records.reserve(dev.profile().size());
      for (const auto& k : dev.profile())
        records.push_back(to_record(k, -1));
    }
    obs::attrib::KernelLedger::global().record_batch(totals, records);
  }
#endif
  if (ctx) {
    const Arena::Stats& a = ctx->arena().stats();
    report.arena_peak_bytes = a.used_bytes;  // monotone within a batch
    report.arena_allocations = ctx->arena_allocations_this_batch();
    report.arena_capacity_bytes = a.capacity_bytes;
    report.arena_growths = ctx->arena_growths_this_batch();
    m.gauge("batch_context.arena_peak_bytes")
        .set(static_cast<double>(a.peak_bytes));
    m.gauge("batch_context.arena_capacity_bytes")
        .set(static_cast<double>(a.capacity_bytes));
    m.counter("batch_context.arena_allocations")
        .add(report.arena_allocations);
    m.counter("batch_context.arena_growths").add(report.arena_growths);
  }
  emit_sim_timeline(report, dev, schedule);
}

}  // namespace gt::frameworks::detail
