#include "frameworks/sharding.hpp"

#include <algorithm>
#include <cassert>

namespace gt::frameworks::detail {
namespace {

/// Contiguous range boundaries: element i of n split across N devices
/// belongs to the device whose [b[d], b[d+1]) contains i.
std::vector<std::size_t> range_boundaries(std::size_t n,
                                          std::size_t devices) {
  std::vector<std::size_t> b(devices + 1);
  for (std::size_t d = 0; d <= devices; ++d)
    b[d] = static_cast<std::size_t>(
        static_cast<unsigned __int128>(n) * d / devices);
  return b;
}

std::size_t owner_of(const std::vector<std::size_t>& boundaries,
                     std::size_t v) {
  const auto it = std::upper_bound(boundaries.begin(), boundaries.end(), v);
  const std::size_t d = static_cast<std::size_t>(it - boundaries.begin());
  return d > 0 ? d - 1 : 0;
}

}  // namespace

std::vector<std::uint64_t> split_proportional(
    std::uint64_t x, const std::vector<std::uint64_t>& weights) {
  std::vector<std::uint64_t> out(weights.size(), 0);
  if (weights.empty()) return out;
  unsigned __int128 total = 0;
  for (std::uint64_t w : weights) total += w;
  if (total == 0) {  // degenerate domain: keep the work (and the sum)
    out[0] = x;
    return out;
  }
  unsigned __int128 cum = 0;
  std::uint64_t prev = 0;
  for (std::size_t d = 0; d < weights.size(); ++d) {
    cum += weights[d];
    const std::uint64_t upto = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(x) * cum / total);
    out[d] = upto - prev;
    prev = upto;
  }
  return out;
}

ShardPlan build_shard_plan(const pipeline::PreprocResult& pre,
                           const models::ModelParams& params,
                           std::uint32_t num_layers,
                           const ShardOptions& options) {
  const std::size_t n = options.devices;
  assert(n >= 1 && "build_shard_plan: at least one device");
  ShardPlan plan;
  plan.options = options;
  plan.num_layers = num_layers;
  plan.dst_rows.resize(num_layers);
  plan.feat_cols.resize(num_layers);
  plan.halo_shard_bytes.resize(num_layers);
  plan.grad_reduce_bytes.resize(num_layers);
  plan.tp_fwd_allreduce_bytes.resize(num_layers);
  plan.tp_bwd_gather_bytes.resize(num_layers);
  plan.sgd_row_boundaries.resize(num_layers);

  std::vector<unsigned char> needed;  // reused across layers
  for (std::uint32_t l = 0; l < num_layers; ++l) {
    const sampling::LayerGraphHost& lg = pre.layers[l];
    const std::size_t n_dst = lg.n_dst;
    const std::size_t n_src = lg.n_vertices;
    const std::size_t in_dim = params.in_dim(l);
    const std::size_t out_dim = params.out_dim(l);

    const std::vector<std::size_t> db = range_boundaries(n_dst, n);
    plan.dst_rows[l].resize(n);
    for (std::size_t d = 0; d < n; ++d) plan.dst_rows[l][d] = db[d + 1] - db[d];

    const std::vector<std::size_t> fb = range_boundaries(in_dim, n);
    plan.feat_cols[l].resize(n);
    for (std::size_t d = 0; d < n; ++d) plan.feat_cols[l][d] = fb[d + 1] - fb[d];
    plan.sgd_row_boundaries[l] = fb;

    plan.grad_reduce_bytes[l] = (in_dim * out_dim + out_dim) * sizeof(float);
    plan.tp_fwd_allreduce_bytes[l] = n_dst * out_dim * sizeof(float);
    plan.tp_bwd_gather_bytes[l].resize(n);
    for (std::size_t d = 0; d < n; ++d)
      plan.tp_bwd_gather_bytes[l][d] =
          n_src * plan.feat_cols[l][d] * sizeof(float);

    // Halo volume from the real layer structure: source rows device o owns
    // that at least one other partition's dst range references. Priced as
    // the per-owner shard of the layer's boundary all-gather.
    plan.halo_shard_bytes[l].assign(n, 0);
    if (options.strategy == ShardStrategy::kRange && n >= 2 && n_src > 0) {
      const std::vector<std::size_t> sb = range_boundaries(n_src, n);
      needed.assign(n_src, 0);
      for (std::size_t d = 0; d < n; ++d) {
        for (std::size_t dst = db[d]; dst < db[d + 1]; ++dst) {
          for (Vid v : lg.csr.neighbors(static_cast<Vid>(dst))) {
            if (v < sb[d] || v >= sb[d + 1]) needed[v] = 1;
          }
        }
      }
      for (std::size_t o = 0; o < n; ++o) {
        std::size_t rows = 0;
        for (std::size_t v = sb[o]; v < sb[o + 1]; ++v) rows += needed[v];
        plan.halo_shard_bytes[l][o] = rows * in_dim * sizeof(float);
      }
    }
  }

  if (options.strategy == ShardStrategy::kTensorParallel) {
    // Feature slices replicate non-layer work evenly across devices.
    plan.default_weights.assign(n, 1);
  } else if (num_layers > 0) {
    // Loss head & synthetic charges scale with the batch's dst rows.
    plan.default_weights = plan.dst_rows[num_layers - 1];
  } else {
    plan.default_weights.assign(n, 1);
  }
  return plan;
}

ShardedExecution shard_execution(
    const std::vector<gpusim::KernelStats>& profile,
    std::vector<LayerSlice> slices, const ShardPlan& plan,
    double launch_overhead_us, const CacheBatchVolumes* cache) {
  const std::size_t n = plan.options.devices;
  ShardedExecution out;
  out.options = plan.options;
  if (cache != nullptr) {
    // Cache outcomes are attributed like every other integer counter: by
    // the plan's default weights (the batch's dst-row ownership), with
    // cumulative rounding so each field sums back to the batch total.
    const auto s_hits = split_proportional(cache->static_hits,
                                           plan.default_weights);
    const auto d_hits = split_proportional(cache->dynamic_hits,
                                           plan.default_weights);
    const auto p_hits = split_proportional(cache->prefetch_hits,
                                           plan.default_weights);
    const auto misses = split_proportional(cache->misses,
                                           plan.default_weights);
    const auto evicts = split_proportional(cache->evictions,
                                           plan.default_weights);
    out.device_cache.resize(n);
    for (std::size_t d = 0; d < n; ++d) {
      out.device_cache[d].static_hits = s_hits[d];
      out.device_cache[d].dynamic_hits = d_hits[d];
      out.device_cache[d].prefetch_hits = p_hits[d];
      out.device_cache[d].misses = misses[d];
      out.device_cache[d].evictions = evicts[d];
    }
  }
  gpusim::DeviceGroup group({.devices = n});
  const bool tp = plan.options.strategy == ShardStrategy::kTensorParallel;

  std::sort(slices.begin(), slices.end(),
            [](const LayerSlice& a, const LayerSlice& b) {
              return a.lo < b.lo;
            });

  auto attribute = [&](std::size_t lo, std::size_t hi,
                       const std::vector<std::uint64_t>& w) {
    unsigned __int128 total = 0;
    for (std::uint64_t wd : w) total += wd;
    for (std::size_t i = lo; i < hi && i < profile.size(); ++i) {
      const gpusim::KernelStats& k = profile[i];
      const auto flops = split_proportional(k.flops, w);
      const auto bytes = split_proportional(k.global_bytes, w);
      const auto loaded = split_proportional(k.cache_loaded_bytes, w);
      const auto hits = split_proportional(k.cache_hit_bytes, w);
      const auto atomics = split_proportional(k.atomic_ops, w);
      const auto blocks = split_proportional(k.blocks, w);
      const double base = k.latency_us > launch_overhead_us
                              ? k.latency_us - launch_overhead_us
                              : 0.0;
      for (std::size_t d = 0; d < n; ++d) {
        const bool runs = total == 0 ? d == 0 : w[d] > 0;
        if (!runs) continue;  // no rows/columns -> no launch on this lane
        const double frac =
            total == 0 ? 1.0
                       : static_cast<double>(w[d]) /
                             static_cast<double>(static_cast<std::uint64_t>(
                                 total));
        gpusim::KernelStats ks;
        ks.name = k.name;
        ks.category = k.category;
        ks.phase = k.phase;
        ks.latency_us = launch_overhead_us + base * frac;
        ks.flops = flops[d];
        ks.global_bytes = bytes[d];
        ks.cache_loaded_bytes = loaded[d];
        ks.cache_hit_bytes = hits[d];
        ks.atomic_ops = atomics[d];
        ks.blocks = blocks[d];
        group.add_kernel(d, ks);
        out.kernels.push_back({d, std::move(ks)});
      }
    }
  };

  auto price = [&](const gpusim::CollectiveCost& cost) {
    if (cost.steps > 0) out.priced.push_back(cost);
  };

  std::size_t next = 0;
  for (const LayerSlice& s : slices) {
    attribute(next, s.lo, plan.default_weights);
    const std::string tag = ".L" + std::to_string(s.layer);
    if (!s.backward) {
      if (!tp)  // gather boundary embeddings before the partition computes
        price(group.all_gather("halo" + tag, plan.halo_shard_bytes[s.layer]));
      attribute(s.lo, s.hi, plan.layer_weights(s.layer));
      if (tp)  // partial layer outputs -> one all-reduce per boundary
        price(group.all_reduce("tp.fwd" + tag,
                               plan.tp_fwd_allreduce_bytes[s.layer]));
    } else {
      attribute(s.lo, s.hi, plan.layer_weights(s.layer));
      if (tp) {
        if (s.layer > 0)  // column-sharded dX feeds the next boundary
          price(group.all_gather("tp.dx" + tag,
                                 plan.tp_bwd_gather_bytes[s.layer]));
      } else {  // every partition contributed to the full weight gradient
        price(group.all_reduce("grad" + tag,
                               plan.grad_reduce_bytes[s.layer]));
      }
    }
    next = std::max(next, s.hi);
  }
  attribute(next, profile.size(), plan.default_weights);

  out.group = group.finish();
  out.device_totals = group.device_totals();
  return out;
}

}  // namespace gt::frameworks::detail
