// Baseline frameworks of the evaluation (§III, §VI):
//  * PyG        — DL-approach compute (sparse2dense gathers + scatter ops),
//                 single-threaded preprocessing, no compute overlap.
//  * PyG-MT     — same compute, preprocessing fanned out over a thread pool
//                 (the paper's modified PyG for Fig 19).
//  * DGL        — Graph-approach compute: COO input, GPU-side COO->CSR
//                 translation before SpMM (and COO->CSC before backward),
//                 edge-wise scheduling with atomics; multi-threaded
//                 preprocessing overlapped with GPU compute.
//  * GNNAdvisor — neighbor-group aggregation with atomic merges; no edge
//                 weighting mechanism (falls back to DL ops); no
//                 preprocessing pipeline.
//  * SALIENT    — PyG-style compute with pinned-memory, chunk-pipelined
//                 transfers overlapped with compute.
//
// All baselines execute aggregation-first by default; the explicit
// combination-first order is honored only for unweighted models (their
// user-level code cannot hoist a transform past vector edge weights).
#pragma once

#include "frameworks/framework.hpp"
#include "pipeline/plan.hpp"

namespace gt::frameworks {

struct BaselineOptions {
  enum class Compute { kDl, kGraph, kAdvisor };
  Compute compute = Compute::kDl;
  pipeline::PreprocStrategy strategy = pipeline::PreprocStrategy::kSerial;
  bool pinned_memory = false;
  bool pipelined_kt = false;
  bool overlap_compute = false;
  std::size_t advisor_group_size = 4;
};

class BaselineFramework : public Framework {
 public:
  BaselineFramework(std::string name, BaselineOptions options)
      : name_(std::move(name)), options_(options) {}

  std::string name() const override { return name_; }

  void prepare_batch(const Dataset& data, const models::GnnModelConfig& model,
                     const BatchSpec& spec,
                     pipeline::BatchContext& ctx) override;

  RunReport execute_prepared(const Dataset& data,
                             const models::GnnModelConfig& model,
                             models::ModelParams& params,
                             const BatchSpec& spec,
                             pipeline::BatchContext& ctx) override;

 private:
  sampling::ReindexFormats reindex_formats() const;
  pipeline::PlanOptions plan_options() const;

  std::string name_;
  BaselineOptions options_;
};

BaselineOptions pyg_options();
BaselineOptions pyg_mt_options();
BaselineOptions dgl_options();
BaselineOptions gnnadvisor_options();
BaselineOptions salient_options();

}  // namespace gt::frameworks
