#include "frameworks/graphtensor.hpp"

#include "dfg/executor.hpp"
#include "dfg/graph.hpp"
#include "frameworks/common.hpp"
#include "frameworks/sharding.hpp"
#include "obs/attrib/kernel_ledger.hpp"
#include "obs/live/worker_profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/cache_hierarchy.hpp"
#include "sampling/transfer.hpp"

namespace gt::frameworks {

using dfg::KernelOrder;
using dfg::LayerDims;

std::string GraphTensorFramework::name() const {
  switch (variant_) {
    case Variant::kBase:    return "Base-GT";
    case Variant::kDynamic: return "Dynamic-GT";
    case Variant::kPrepro:  return "Prepro-GT";
  }
  return "?";
}

pipeline::PlanOptions GraphTensorFramework::plan_options() const {
  pipeline::PlanOptions plan;
  if (variant_ == Variant::kPrepro) {
    plan.strategy = pipeline::PreprocStrategy::kServiceWide;
    plan.pinned_memory = true;
    plan.pipelined_kt = true;
  } else {
    plan.strategy = pipeline::PreprocStrategy::kParallelTasks;
  }
  return plan;
}

namespace {
constexpr sampling::ReindexFormats kGtFormats{.coo = false, .csr = true,
                                              .csc = true};
}  // namespace

void GraphTensorFramework::prepare_batch(const Dataset& data,
                                         const models::GnnModelConfig& model,
                                         const BatchSpec& spec,
                                         pipeline::BatchContext& ctx) {
  GT_OBS_SCOPE_N(prep_span, "frameworks.prepare_batch", "frameworks");
  prep_span.arg("framework", name());
  prep_span.arg("batch", static_cast<std::int64_t>(spec.batch_index));
  detail::preprocess_into(data, spec, model.num_layers, kGtFormats,
                          plan_options(), ctx);
  // Sampler lookahead: the batch's vid_order is final here, so its rows
  // are warmable while the previous batch executes. The hint is a pure
  // function of the batch (not of worker overlap), keeping prefetch
  // pricing bit-identical across worker counts.
  if (cache_cfg_.prefetch && cache_cfg_.budget_bytes > 0)
    ctx.arm_cache_prefetch(spec.batch_index);
}

sampling::CacheHierarchy& GraphTensorFramework::ensure_hierarchy(
    const Dataset& data) {
  const bool hit = hierarchy_ && hier_graph_ == &data.csr &&
                   hier_table_ == &data.embeddings;
  if (!hit) {
    sampling::CacheConfig cfg = cache_cfg_;
    cfg.pcie = plan_options().pcie;
    hierarchy_ = std::make_unique<sampling::CacheHierarchy>(
        data.csr, data.embeddings, cfg);
    hier_graph_ = &data.csr;
    hier_table_ = &data.embeddings;
    obs::metrics().counter("cache.hierarchy_builds").add(1);
  }
  return *hierarchy_;
}

RunReport GraphTensorFramework::execute_prepared(
    const Dataset& data, const models::GnnModelConfig& model,
    models::ModelParams& params, const BatchSpec& spec,
    pipeline::BatchContext& ctx) {
  GT_OBS_SCOPE_N(batch_span, "frameworks.run_batch", "frameworks");
  RunReport report;
  report.framework = name();
  report.model = model.name;
  report.dataset = data.spec.name;
  batch_span.arg("framework", report.framework);
  batch_span.arg("batch", static_cast<std::int64_t>(spec.batch_index));

  const std::uint32_t L = model.num_layers;
  const sampling::ReindexFormats formats = kGtFormats;
  const pipeline::PlanOptions plan = plan_options();

  pipeline::PreprocResult& pre = ctx.preproc();
  report.input_table_bytes = pre.embeddings.bytes();
  const bool use_cache = cache_cfg_.budget_bytes > 0;
  // A cache-disabled run must not report a stale rate from an earlier
  // cache-enabled run on the same framework instance.
  if (!use_cache) last_hit_rate_ = 0.0;

  const bool dkp_active = variant_ != Variant::kBase &&
                          kernels::dkp_compatible(model.g);
  dfg::DfgGraph graph = dfg::build_gnn_dfg(L, model.edge_weighted());
  if (dkp_active) graph.rewrite_dkp();

  // Cost-model samples and SGD updates are buffered and committed only
  // when the batch reaches a reported outcome (success or OOM). An
  // exception unwinding out of this function — an injected fault the
  // service will retry — must leave the framework state AND the model
  // parameters untouched, or the retried batch would diverge from a
  // fault-free run.
  detail::SgdStage sgd(params, spec.learning_rate);

  // Multi-device execution is a modeled decomposition of the canonical
  // run (DESIGN.md §14): the plan is derived from the real preprocessed
  // layer structures up front; layer slices of the profile are captured
  // around each exec call; the post-pass attributes, prices collectives,
  // and merges the group timeline. Numerics below are untouched — except
  // the tensor-parallel SGD commit, which applies the same gradient as
  // disjoint per-device row slices (bit-identical by independence).
  const bool sharded = shard_.devices > 1;
  detail::ShardPlan shard_plan;
  std::vector<detail::LayerSlice> slices;
  if (sharded) {
    shard_plan = detail::build_shard_plan(pre, params, L, shard_);
    if (shard_.strategy == ShardStrategy::kTensorParallel)
      sgd.set_device_row_slices(&shard_plan.sgd_row_boundaries);
  }

  struct PendingSample {
    LayerDims dims;
    dfg::PlacementCase pc;
    double us;
    std::uint32_t layer;
  };
  std::vector<PendingSample> pending;
  auto commit_samples = [&] {
#ifndef GT_OBS_DISABLE
    // Ledger join: pair each committed sample with the model's prediction
    // *for the coefficients that were live when the batch ran* (captured
    // before record() extends the sample set; fit() only runs afterwards).
    // predict() is const — arming the ledger cannot perturb training.
    const bool ledger_on = obs::attrib::KernelLedger::global().armed();
    const bool was_fitted = cost_model_.fitted();
#endif
    for (const PendingSample& s : pending) {
#ifndef GT_OBS_DISABLE
      if (ledger_on) {
        std::string key = s.pc.backward ? "bwd/" : "fwd/";
        key += dfg::to_string(s.pc.order);
        key += "/L";
        key += std::to_string(s.layer);
        obs::attrib::KernelLedger::global().record_prediction(
            key, cost_model_.predict(s.dims, s.pc), s.us, was_fitted);
      }
#endif
      cost_model_.record(s.dims, s.pc, s.us);
    }
    pending.clear();
    ++batches_seen_;
#ifndef GT_OBS_DISABLE
    // Live model-health surface (gauges + drift event); independent of
    // the ledger so chaos/serving runs see drift without any artifact.
    if (cost_model_.fitted()) {
      const dfg::ResidualSummary rs = cost_model_.residual_summary();
      obs::attrib::observe_costmodel_residuals(rs.samples, rs.p50_pct,
                                               rs.p95_pct);
    }
#endif
  };

  // Cache hierarchy state is transactional like the SGD/cost-model stages
  // above: lookup() classifies against the current tiers without mutating
  // them, and commit_cache (below) applies the staged admissions only
  // once the batch reaches a reported outcome.
  sampling::CacheHierarchy::Lookup cache_look;
  sampling::PinnedRingBuffer::Overlap ring_ov;
  bool cache_active = false;
  auto commit_cache = [&] {
    if (!cache_active) return;
    sampling::CacheHierarchy& hier = *hierarchy_;
    const std::uint64_t evictions_before = hier.stats().evictions;
    hier.commit(cache_look, report.fwp_us + report.bwp_us);
    last_hit_rate_ = cache_look.hit_rate();
    obs::MetricsRegistry& m = obs::metrics();
    // Legacy totals (gt_top's cache line) plus the per-tier breakdown.
    m.gauge("embedding_cache.hit_rate").set(last_hit_rate_);
    m.counter("embedding_cache.hits").add(cache_look.cached_rows());
    m.counter("embedding_cache.misses").add(cache_look.misses);
    m.counter("cache.static.hits").add(cache_look.static_rows.size());
    m.counter("cache.dynamic.hits").add(cache_look.dynamic_hits);
    m.counter("cache.prefetch.hits").add(cache_look.prefetch_hits);
    m.counter("cache.misses").add(cache_look.misses);
    m.counter("cache.evictions")
        .add(hier.stats().evictions - evictions_before);
    m.counter("cache.prefetch.rows").add(cache_look.prefetched);
    m.counter("cache.ring.chunks").add(ring_ov.chunks);
    m.counter("cache.ring.bytes").add(ring_ov.bytes);
    m.gauge("cache.ring.critical_us").set(ring_ov.critical_us);
    m.gauge("cache.ring.overlap_us").set(ring_ov.overlapped_us());
    m.gauge("cache.dynamic.occupancy")
        .set(static_cast<double>(hier.dynamic_size_rows()));
  };

  try {
    auto session = detail::open_session(pre, params, formats,
                                        /*upload_input=*/!use_cache);
    gpusim::Device& dev = session->dev;

    if (use_cache) {
      // Embedding cache hierarchy (DESIGN.md §15): the static tier is
      // device-resident for the dataset's lifetime; dynamic and prefetch
      // hits are re-priced out of the critical K/T path; only true misses
      // keep their full lookup + transfer cost in the schedule.
      sampling::CacheHierarchy& hier = ensure_hierarchy(data);
      ctx.set_cache_hierarchy(&hier);
      cache_look = hier.lookup(pre.batch.vid_order, spec.batch_index,
                               ctx.cache_prefetch_armed(spec.batch_index));
      cache_active = true;
      ctx.workload().cached_rows = cache_look.cached_rows();
      ctx.schedule() = pipeline::plan_preprocessing(ctx.workload(), plan);

      // Every non-static row (dynamic/prefetch hits included, so numerics
      // stay bit-identical to an uncached gather) streams through the
      // pinned ring buffer: chunked K gathers overlapping chunked T
      // uploads, priced through the same PCIe model as the schedule.
      MatrixView gathered = ctx.arena().alloc(cache_look.gather_vids.size(),
                                              data.spec.feature_dim);
      sampling::Transfer staging(dev, gpusim::PcieModel(plan.pcie),
                                 /*pinned=*/true);
      ring_ov = hier.ring().gather_through(data.embeddings,
                                           cache_look.gather_vids, gathered,
                                           staging,
                                           plan.cost.us_per_lookup_byte);
      gpusim::BufferId gather_buf = gpusim::kInvalidBuffer;
      if (!cache_look.gather_vids.empty())
        gather_buf = kernels::upload_matrix(dev, gathered, "cache.gathered");
      const gpusim::BufferId static_buf = hier.bind_static(dev);
      session->input = hier.assemble(dev, static_buf, cache_look, gather_buf,
                                     pre.batch.vid_order.size());
      if (gather_buf != gpusim::kInvalidBuffer) dev.free(gather_buf);
      if (static_buf != gpusim::kInvalidBuffer) dev.free(static_buf);
      dev.clear_profile();  // staging/assembly is not FWP/BWP work
    }

    dfg::LayerExecutor exec(dev, model.f, model.g);

    std::vector<dfg::LayerDeviceGraph> lg(L);
    for (std::uint32_t l = 0; l < L; ++l)
      lg[l] = dfg::LayerDeviceGraph{session->csr[l], session->csc[l]};

    auto dims_of = [&](std::uint32_t l) {
      return LayerDims{pre.batch.layer_vertices(l), pre.batch.layer_dst(l),
                       pre.batch.layer_edges(l), params.in_dim(l),
                       params.out_dim(l)};
    };

    // Placement decision per layer (one decision covers FWP + BWP; the
    // backward pass reuses the forward's cached tensors).
    std::vector<KernelOrder> orders(L, KernelOrder::kAggregationFirst);
    for (std::uint32_t l = 0; l < L; ++l) {
      if (spec.order == OrderPolicy::kCombinationFirst &&
          kernels::dkp_compatible(model.g)) {
        orders[l] = KernelOrder::kCombinationFirst;
      } else if (spec.order == OrderPolicy::kDynamic && dkp_active &&
                 graph.has_dkp(l)) {
        if (cost_model_.fitted()) {
          orders[l] = spec.inference
                          ? cost_model_.decide(dims_of(l), false, false,
                                               model.edge_weighted())
                          : cost_model_.decide_training(
                                dims_of(l), l == 0, model.edge_weighted());
        } else if (spec.inference) {
          orders[l] = cost_model_.decide(dims_of(l), false, false,
                                         model.edge_weighted());
        } else {
          // Exploration phase: alternate placements across batches so the
          // least-squares fit sees both.
          orders[l] = (spec.batch_index + l) % 2 == 0
                          ? KernelOrder::kAggregationFirst
                          : KernelOrder::kCombinationFirst;
        }
      }
      if (orders[l] == KernelOrder::kCombinationFirst)
        report.layer_comb_first_fwd[l] = report.layer_comb_first_bwd[l] = 1;
      obs::metrics()
          .counter(orders[l] == KernelOrder::kCombinationFirst
                       ? "dkp.decisions.comb_first"
                       : "dkp.decisions.agg_first")
          .add(1);
    }

    // ---- FWP ----------------------------------------------------------------
    std::vector<dfg::LayerForward> fwds;
    gpusim::BufferId x = session->input;
    dev.set_phase(gpusim::KernelPhase::kForward);
    {
      GT_LIVE_STAGE(kForward);
      for (std::uint32_t l = 0; l < L; ++l) {
        const double before = dev.profile_latency_us();
        const std::size_t slice_lo = dev.profile().size();
        fwds.push_back(exec.forward(
            lg[l], x, dfg::LayerParams{session->w[l], session->b[l]},
            model.relu_at(l), orders[l]));
        if (sharded)
          slices.push_back({l, /*backward=*/false, slice_lo,
                            dev.profile().size()});
        if (dkp_active)
          pending.push_back(
              {dims_of(l),
               dfg::PlacementCase{orders[l], /*backward=*/false,
                                  /*first_layer=*/l == 0,
                                  model.edge_weighted()},
               dev.profile_latency_us() - before, l});
        x = fwds.back().out;
      }
    }

    report.fwp_us = dev.profile_latency_us();

    // Shared report tail: when sharded, attribute the complete profile,
    // price the strategy's collectives (also fed to the cost model's
    // collective term — reporting only, never placement decisions), and
    // merge the group timeline before the report is finalized.
    auto finalize = [&] {
      detail::ShardedExecution sx;
      const detail::ShardedExecution* sp = nullptr;
      if (sharded) {
        detail::CacheBatchVolumes cache_vol;
        const detail::CacheBatchVolumes* cp = nullptr;
        if (cache_active) {
          cache_vol.static_hits = cache_look.static_rows.size();
          cache_vol.dynamic_hits = cache_look.dynamic_hits;
          cache_vol.prefetch_hits = cache_look.prefetch_hits;
          cache_vol.misses = cache_look.misses;
          cache_vol.evictions = cache_look.expected_evictions;
          cp = &cache_vol;
        }
        sx = detail::shard_execution(dev.profile(), slices, shard_plan,
                                     dev.config().cost.launch_overhead_us,
                                     cp);
        for (const gpusim::CollectiveCost& cc : sx.priced)
          cost_model_.record_collective(cc.steps, cc.bytes_on_wire, cc.us);
        sp = &sx;
      }
      detail::finalize_report(report, dev, ctx.schedule(),
                              /*overlap_compute=*/true, &ctx, sp);
    };

    if (spec.inference) {
      finalize();
      commit_cache();
      commit_samples();
      return report;
    }

    // Loss + backward both land past the fwp_us boundary, so they carry
    // the backward phase tag — matching bwp_us = total - fwp_us below.
    dev.set_phase(gpusim::KernelPhase::kBackward);

    // ---- Loss ----------------------------------------------------------------
    gpusim::BufferId dy = gpusim::kInvalidBuffer;
    report.loss = detail::loss_head(dev, x, pre, model.output_dim, spec.seed,
                                    &dy, &ctx);

    // ---- BWP ----------------------------------------------------------------
    {
      GT_LIVE_STAGE(kBackward);
      for (std::uint32_t li = L; li-- > 0;) {
        const gpusim::BufferId x_in =
            li == 0 ? session->input : fwds[li - 1].out;
        const double before = dev.profile_latency_us();
        const std::size_t slice_lo = dev.profile().size();
        dfg::LayerBackward grads = exec.backward(
            lg[li], x_in, dfg::LayerParams{session->w[li], session->b[li]},
            model.relu_at(li), fwds[li], dy, /*want_dx=*/li > 0);
        if (sharded)
          slices.push_back({li, /*backward=*/true, slice_lo,
                            dev.profile().size()});
        if (dkp_active)
          pending.push_back(
              {dims_of(li),
               dfg::PlacementCase{orders[li], /*backward=*/true,
                                  /*first_layer=*/li == 0,
                                  model.edge_weighted()},
               dev.profile_latency_us() - before, li});
        sgd.stage(dev, li, grads.dw, grads.db, ctx);
        dev.free(grads.dw);
        dev.free(grads.db);
        dev.free(dy);
        dy = grads.dx;  // invalid at li == 0 (skipped), loop ends anyway
        exec.release_cache(fwds[li]);
      }
    }

    report.bwp_us = dev.profile_latency_us() - report.fwp_us;
    finalize();
  } catch (const gpusim::GpuOomError& e) {
    detail::record_oom(report, e, ctx);
  }

  // Reported outcome (success or OOM): commit what the batch earned. The
  // OOM commit applies exactly the layers whose backward completed before
  // the allocator gave out — the same updates an eager apply performed.
  sgd.commit();
  commit_cache();
  commit_samples();
  if (dkp_active && !cost_model_.fitted() &&
      batches_seen_ >= kFitAfterBatches) {
    cost_model_.fit();
  }
  if (sharded && !cost_model_.collective_fitted() &&
      batches_seen_ >= kFitAfterBatches) {
    cost_model_.fit_collective();
  }
  return report;
}

}  // namespace gt::frameworks
