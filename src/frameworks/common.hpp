// Shared machinery for framework implementations: preprocessing + schedule,
// device session setup (uploads), the loss head, and SGD application.
#pragma once

#include "frameworks/framework.hpp"
#include "frameworks/sharding.hpp"
#include "gpusim/device.hpp"
#include "kernels/common.hpp"
#include "pipeline/executor.hpp"

namespace gt::frameworks::detail {

/// Device configuration used for every evaluation run: the scaled-down
/// RTX 3090 (DESIGN.md §2). Capacity is scaled with the datasets so that
/// the paper's livejournal/NGCF DL-approach out-of-memory reproduces.
gpusim::DeviceConfig eval_device_config();

/// Phase-1 shared helper: pick the batch deterministically, run the
/// context-backed serial preprocessing, derive the workload, and price the
/// schedule — all into `ctx`'s reusable storage (identical output to the
/// old by-value preprocess()).
void preprocess_into(const Dataset& data, const BatchSpec& spec,
                     std::uint32_t num_layers,
                     const sampling::ReindexFormats& formats,
                     const pipeline::PlanOptions& plan,
                     pipeline::BatchContext& ctx);

/// Uploaded device state for one batch.
struct DeviceSession {
  gpusim::Device dev;
  gpusim::BufferId input = gpusim::kInvalidBuffer;  // layer-0 feature table
  std::vector<kernels::DeviceCsr> csr;              // per exec-layer
  std::vector<kernels::DeviceCsc> csc;
  std::vector<kernels::DeviceCoo> coo;
  std::vector<gpusim::BufferId> w;
  std::vector<gpusim::BufferId> b;
  std::size_t input_table_bytes = 0;

  explicit DeviceSession(gpusim::DeviceConfig cfg) : dev(std::move(cfg)) {}
};

/// Upload embeddings, structures, and parameters. Throws GpuOomError if the
/// batch does not fit. The device profile is cleared afterwards so the
/// kernel profile covers FWP/BWP only (Nsight-style measurement, §VI).
/// `upload_input == false` skips uploading the layer-0 feature table
/// (the caller assembles it, e.g. from an embedding cache).
std::unique_ptr<DeviceSession> open_session(
    const pipeline::PreprocResult& pre, const models::ModelParams& params,
    const sampling::ReindexFormats& formats, bool upload_input = true);

/// Softmax cross-entropy head over the batch's logits; labels are the
/// deterministic synthetic labels of the original dst vertices. Returns the
/// loss and uploads dL/dlogits as a device buffer. With `ctx`, the logits
/// download, the label vector, and the gradient all live in the context
/// (arena views / reused scratch — no heap Matrix); without, fresh owning
/// matrices are used. Both paths are bit-identical.
float loss_head(gpusim::Device& dev, gpusim::BufferId logits,
                const pipeline::PreprocResult& data, std::uint32_t num_classes,
                std::uint64_t seed, gpusim::BufferId* dlogits,
                pipeline::BatchContext* ctx = nullptr);

/// Buffers a batch's per-layer SGD updates so nothing touches the model
/// parameters until the batch reaches a reported outcome (success or OOM,
/// matching the kernel work that actually ran). An exception unwinding out
/// of execute_prepared mid-backward — e.g. a transient injected fault the
/// service will retry — discards the stage, so the retried batch starts
/// from exactly the parameters a fault-free run would see (the fault.hpp
/// determinism contract); a batch that degrades past the retry budget
/// likewise contributes nothing. The downloads are arena views, valid
/// until the context's next begin_batch — well past commit().
class SgdStage {
 public:
  SgdStage(models::ModelParams& params, float lr)
      : params_(&params), lr_(lr) {}

  /// Download `layer`'s dw/db into `ctx`'s arena and hold them.
  void stage(gpusim::Device& dev, std::uint32_t layer, gpusim::BufferId dw,
             gpusim::BufferId db, pipeline::BatchContext& ctx);

  /// Tensor-parallel commit mode: each layer's dw is applied as the
  /// per-device disjoint row slices `boundaries[layer]` describes
  /// ([devices+1] ascending offsets over dw's rows), in device order,
  /// inside the same transactional commit. Element updates are
  /// independent, so the result is bit-identical to the full-matrix
  /// update. `boundaries` must outlive commit(); nullptr resets.
  void set_device_row_slices(
      const std::vector<std::vector<std::size_t>>* boundaries) {
    row_slices_ = boundaries;
  }

  /// Apply every staged update in stage order and clear the stage.
  void commit();

 private:
  struct Pending {
    std::uint32_t layer;
    ConstMatrixView dw, db;
  };
  models::ModelParams* params_;
  float lr_;
  std::vector<Pending> pending_;
  const std::vector<std::vector<std::size_t>>* row_slices_ = nullptr;
};

/// Shared tail of the frameworks' GpuOomError handling: mark the report
/// OOM, keep the priced preprocessing schedule (the host-side work really
/// happened), and bump the OOM counter. The batch is *reported*, never
/// rethrown — the service's degradation accounting builds on this.
void record_oom(RunReport& report, const gpusim::GpuOomError& e,
                const pipeline::BatchContext& ctx);

/// Fill the RunReport's GPU-side fields from the device profile and
/// combine preprocessing + compute into the end-to-end latency. With
/// `ctx`, the report's arena counters are filled from the context. With
/// `shard` (a devices > 1 run's attributed execution), the multi-device
/// report fields are filled, comm.* metrics and per-device gauges are
/// emitted, the kernel ledger records per-device rows, and the end-to-end
/// latency overlaps the *group* makespan instead of the serial kernel
/// time — everything the single-device report derives stays untouched.
void finalize_report(RunReport& report, const gpusim::Device& dev,
                     const pipeline::PreprocSchedule& schedule,
                     bool overlap_compute,
                     const pipeline::BatchContext* ctx = nullptr,
                     const ShardedExecution* shard = nullptr);

}  // namespace gt::frameworks::detail
