#include "frameworks/baselines.hpp"

#include "frameworks/common.hpp"
#include "obs/live/worker_profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "kernels/dl_approach.hpp"
#include "kernels/graph_approach.hpp"
#include "kernels/napa.hpp"

namespace gt::frameworks {

using gpusim::BufferId;
using gpusim::kInvalidBuffer;
using kernels::AggMode;
using kernels::EdgeWeightMode;
namespace dl = kernels::dl;
namespace graphsim = kernels::graphsim;
namespace napa = kernels::napa;

BaselineOptions pyg_options() {
  BaselineOptions o;
  o.compute = BaselineOptions::Compute::kDl;
  o.strategy = pipeline::PreprocStrategy::kSerial;
  return o;
}

BaselineOptions pyg_mt_options() {
  BaselineOptions o = pyg_options();
  o.strategy = pipeline::PreprocStrategy::kParallelTasks;
  return o;
}

BaselineOptions dgl_options() {
  BaselineOptions o;
  o.compute = BaselineOptions::Compute::kGraph;
  o.strategy = pipeline::PreprocStrategy::kParallelTasks;
  o.overlap_compute = true;
  return o;
}

BaselineOptions gnnadvisor_options() {
  BaselineOptions o;
  o.compute = BaselineOptions::Compute::kAdvisor;
  o.strategy = pipeline::PreprocStrategy::kSerial;
  return o;
}

BaselineOptions salient_options() {
  BaselineOptions o;
  o.compute = BaselineOptions::Compute::kDl;
  o.strategy = pipeline::PreprocStrategy::kParallelTasks;
  o.pinned_memory = true;
  o.pipelined_kt = true;
  o.overlap_compute = true;
  return o;
}

namespace {

/// Per-layer forward artifacts a baseline retains for its backward pass.
struct LayerCache {
  BufferId weights = kInvalidBuffer;
  BufferId aggr = kInvalidBuffer;
  BufferId transformed = kInvalidBuffer;  // combination-first only
  BufferId pre_act = kInvalidBuffer;
  BufferId out = kInvalidBuffer;
  kernels::DeviceCsr translated_csr;  // DGL: device-built CSR of this layer
  bool has_translated = false;
  bool comb_first = false;
};

struct LayerIo {
  gpusim::Device& dev;
  const models::GnnModelConfig& model;
  const BaselineOptions& opt;
};

LayerCache forward_dl(LayerIo io, const kernels::DeviceCsr& csr, BufferId x,
                      BufferId w, BufferId b, bool relu, bool comb_first,
                      bool advisor) {
  LayerCache cache;
  cache.comb_first = comb_first;
  const AggMode f = io.model.f;
  const EdgeWeightMode g = io.model.g;
  if (!comb_first) {
    if (advisor && g == EdgeWeightMode::kNone) {
      cache.aggr = dl::aggregate_neighbor_groups(io.dev, csr, x, f,
                                                 io.opt.advisor_group_size);
    } else {
      cache.aggr = dl::forward_aggregate(io.dev, csr, x, f, g, &cache.weights);
    }
    cache.out = napa::apply_dense(io.dev, cache.aggr, w, b, relu,
                                  &cache.pre_act);
    return cache;
  }
  // Combination-first (unweighted models only).
  cache.transformed = napa::apply_matmul(io.dev, x, w);
  if (advisor) {
    cache.aggr = dl::aggregate_neighbor_groups(io.dev, csr, cache.transformed,
                                               f, io.opt.advisor_group_size);
  } else {
    BufferId unused = kInvalidBuffer;
    cache.aggr = dl::forward_aggregate(io.dev, csr, cache.transformed, f,
                                       EdgeWeightMode::kNone, &unused);
  }
  cache.out = napa::apply_bias_act(io.dev, cache.aggr, b, relu,
                                   &cache.pre_act);
  return cache;
}

napa::DenseGrads backward_dl(LayerIo io, const kernels::DeviceCsr& csr,
                             BufferId x, BufferId w, const LayerCache& cache,
                             BufferId dy, bool relu, bool want_dx) {
  const AggMode f = io.model.f;
  const EdgeWeightMode g = io.model.g;
  napa::DenseGrads grads;
  if (!cache.comb_first) {
    napa::DenseGrads dense = napa::apply_dense_backward(
        io.dev, cache.aggr, w, cache.pre_act, dy, relu, want_dx);
    grads.dw = dense.dw;
    grads.db = dense.db;
    if (want_dx) {
      grads.dx = dl::backward_aggregate(io.dev, csr, x, cache.weights,
                                        dense.dx, f, g);
      io.dev.free(dense.dx);
    }
    return grads;
  }
  // Combination-first backward: bias/act, scatter-back in hidden space,
  // then the matmul backward. dW needs dT, so the graph traversal cannot
  // be skipped even for the first layer.
  napa::BiasActGrads bias =
      napa::apply_bias_act_backward(io.dev, cache.pre_act, dy, relu);
  grads.db = bias.db;
  BufferId dt = dl::backward_aggregate(io.dev, csr, cache.transformed,
                                       kInvalidBuffer, bias.dx, f,
                                       EdgeWeightMode::kNone);
  napa::MatmulGrads mm =
      napa::apply_matmul_backward(io.dev, x, w, dt, want_dx);
  grads.dw = mm.dw;
  grads.dx = mm.dx;
  io.dev.free(dt);
  io.dev.free(bias.dx);
  return grads;
}

LayerCache forward_graph(LayerIo io, const kernels::DeviceCoo& coo,
                         BufferId x, BufferId w, BufferId b, bool relu,
                         bool comb_first) {
  LayerCache cache;
  cache.comb_first = comb_first;
  const AggMode f = io.model.f;
  const EdgeWeightMode g = io.model.g;
  if (g != EdgeWeightMode::kNone)
    cache.weights = graphsim::sddmm_edgewise(io.dev, coo, x, g);
  if (comb_first) cache.transformed = napa::apply_matmul(io.dev, x, w);
  // SpMM needs per-dst source lists: pay the COO -> CSR translation.
  cache.translated_csr = graphsim::translate_to_csr(io.dev, coo);
  cache.has_translated = true;
  cache.aggr = graphsim::spmm_edgewise(
      io.dev, cache.translated_csr,
      comb_first ? cache.transformed : x, cache.weights, f, g);
  if (comb_first) {
    cache.out = napa::apply_bias_act(io.dev, cache.aggr, b, relu,
                                     &cache.pre_act);
  } else {
    cache.out = napa::apply_dense(io.dev, cache.aggr, w, b, relu,
                                  &cache.pre_act);
  }
  return cache;
}

napa::DenseGrads backward_graph(LayerIo io, const kernels::DeviceCoo& coo,
                                BufferId x, BufferId w,
                                const LayerCache& cache, BufferId dy,
                                bool relu, bool want_dx) {
  const AggMode f = io.model.f;
  const EdgeWeightMode g = io.model.g;
  napa::DenseGrads grads;
  if (!cache.comb_first) {
    napa::DenseGrads dense = napa::apply_dense_backward(
        io.dev, cache.aggr, w, cache.pre_act, dy, relu, want_dx);
    grads.dw = dense.dw;
    grads.db = dense.db;
    if (want_dx) {
      // Backward traverses dst -> src: the framework materializes the
      // reverse format first (paper: COO -> CSC translation in BWP).
      kernels::DeviceCsc csc = graphsim::translate_to_csc(io.dev, coo);
      grads.dx = graphsim::backward_edgewise(
          io.dev, coo, cache.translated_csr, x, cache.weights, dense.dx, f, g);
      kernels::free_graph(io.dev, csc);
      io.dev.free(dense.dx);
    }
    return grads;
  }
  napa::BiasActGrads bias =
      napa::apply_bias_act_backward(io.dev, cache.pre_act, dy, relu);
  grads.db = bias.db;
  kernels::DeviceCsc csc = graphsim::translate_to_csc(io.dev, coo);
  BufferId dt = graphsim::backward_edgewise(io.dev, coo, cache.translated_csr,
                                            cache.transformed, kInvalidBuffer,
                                            bias.dx, f,
                                            EdgeWeightMode::kNone);
  kernels::free_graph(io.dev, csc);
  napa::MatmulGrads mm =
      napa::apply_matmul_backward(io.dev, x, w, dt, want_dx);
  grads.dw = mm.dw;
  grads.dx = mm.dx;
  io.dev.free(dt);
  io.dev.free(bias.dx);
  return grads;
}

void release_cache(gpusim::Device& dev, LayerCache& cache) {
  if (cache.weights != kInvalidBuffer) dev.free(cache.weights);
  if (cache.aggr != kInvalidBuffer) dev.free(cache.aggr);
  if (cache.transformed != kInvalidBuffer) dev.free(cache.transformed);
  if (cache.pre_act != kInvalidBuffer) dev.free(cache.pre_act);
  if (cache.has_translated) kernels::free_graph(dev, cache.translated_csr);
}

}  // namespace

sampling::ReindexFormats BaselineFramework::reindex_formats() const {
  sampling::ReindexFormats formats;
  if (options_.compute == BaselineOptions::Compute::kGraph) {
    formats.coo = true;  // DGL ships COO and translates on device
  } else {
    formats.csr = true;
  }
  return formats;
}

pipeline::PlanOptions BaselineFramework::plan_options() const {
  pipeline::PlanOptions plan;
  plan.strategy = options_.strategy;
  plan.pinned_memory = options_.pinned_memory;
  plan.pipelined_kt = options_.pipelined_kt;
  return plan;
}

void BaselineFramework::prepare_batch(const Dataset& data,
                                      const models::GnnModelConfig& model,
                                      const BatchSpec& spec,
                                      pipeline::BatchContext& ctx) {
  GT_OBS_SCOPE_N(prep_span, "frameworks.prepare_batch", "frameworks");
  prep_span.arg("framework", name_);
  prep_span.arg("batch", static_cast<std::int64_t>(spec.batch_index));
  detail::preprocess_into(data, spec, model.num_layers, reindex_formats(),
                          plan_options(), ctx);
}

RunReport BaselineFramework::execute_prepared(
    const Dataset& data, const models::GnnModelConfig& model,
    models::ModelParams& params, const BatchSpec& spec,
    pipeline::BatchContext& ctx) {
  GT_OBS_SCOPE_N(batch_span, "frameworks.run_batch", "frameworks");
  RunReport report;
  report.framework = name_;
  report.model = model.name;
  report.dataset = data.spec.name;
  batch_span.arg("framework", report.framework);
  batch_span.arg("batch", static_cast<std::int64_t>(spec.batch_index));

  const std::uint32_t L = model.num_layers;
  const bool graph_compute =
      options_.compute == BaselineOptions::Compute::kGraph;
  const sampling::ReindexFormats formats = reindex_formats();

  pipeline::PreprocResult& pre = ctx.preproc();
  report.input_table_bytes = pre.embeddings.bytes();

  // Explicit combination-first programming exists only for unweighted
  // models in the baselines' user code.
  const bool comb_first = spec.order == OrderPolicy::kCombinationFirst &&
                          model.g == EdgeWeightMode::kNone;

  // SGD updates are staged and committed only when the batch reaches a
  // reported outcome; a faulted attempt the service retries must leave
  // the parameters untouched (see detail::SgdStage).
  detail::SgdStage sgd(params, spec.learning_rate);
  try {
    auto session = detail::open_session(pre, params, formats);
    gpusim::Device& dev = session->dev;
    LayerIo io{dev, model, options_};

    std::vector<LayerCache> caches;
    BufferId x = session->input;
    dev.set_phase(gpusim::KernelPhase::kForward);
    {
      GT_LIVE_STAGE(kForward);
      for (std::uint32_t l = 0; l < L; ++l) {
        const bool relu = model.relu_at(l);
        LayerCache cache =
            graph_compute
                ? forward_graph(io, session->coo[l], x, session->w[l],
                                session->b[l], relu, comb_first)
                : forward_dl(io, session->csr[l], x, session->w[l],
                             session->b[l], relu, comb_first,
                             options_.compute ==
                                 BaselineOptions::Compute::kAdvisor);
        if (comb_first)
          report.layer_comb_first_fwd[l] = report.layer_comb_first_bwd[l] = 1;
        x = cache.out;
        caches.push_back(cache);
      }
    }

    report.fwp_us = dev.profile_latency_us();

    if (spec.inference) {
      detail::finalize_report(report, dev, ctx.schedule(),
                              options_.overlap_compute, &ctx);
      return report;
    }

    // Loss + backward land past the fwp_us boundary and carry the
    // backward phase tag, matching bwp_us = total - fwp_us below.
    dev.set_phase(gpusim::KernelPhase::kBackward);
    gpusim::BufferId dy = kInvalidBuffer;
    report.loss = detail::loss_head(dev, x, pre, model.output_dim, spec.seed,
                                    &dy, &ctx);

    {
      GT_LIVE_STAGE(kBackward);
      for (std::uint32_t li = L; li-- > 0;) {
        const BufferId x_in = li == 0 ? session->input : caches[li - 1].out;
        const bool relu = model.relu_at(li);
        const bool want_dx = li > 0;
        napa::DenseGrads grads =
            graph_compute
                ? backward_graph(io, session->coo[li], x_in, session->w[li],
                                 caches[li], dy, relu, want_dx)
                : backward_dl(io, session->csr[li], x_in, session->w[li],
                              caches[li], dy, relu, want_dx);
        sgd.stage(dev, li, grads.dw, grads.db, ctx);
        dev.free(grads.dw);
        dev.free(grads.db);
        dev.free(dy);
        dy = grads.dx;
        release_cache(dev, caches[li]);
      }
    }

    report.bwp_us = dev.profile_latency_us() - report.fwp_us;
    detail::finalize_report(report, dev, ctx.schedule(),
                            options_.overlap_compute, &ctx);
  } catch (const gpusim::GpuOomError& e) {
    detail::record_oom(report, e, ctx);
  }
  sgd.commit();  // reported outcome: success, or OOM with partial backward
  return report;
}

}  // namespace gt::frameworks
