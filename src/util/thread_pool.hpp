// Fixed-size worker pool used by the service-wide tensor scheduler to run
// preprocessing subtasks concurrently (the paper's host-side S/R/K/T threads).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/flops.hpp"

namespace gt {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Split [begin, end) into at most `chunks` contiguous ranges and run
  /// `fn(chunk_index, chunk_begin, chunk_end)` on the pool, blocking until
  /// every chunk finishes. Chunk boundaries are a pure function of
  /// (begin, end, chunks) — identical to the hand-rolled fan-out loops this
  /// replaces — so chunked algorithms stay deterministic. The first
  /// exception thrown by any chunk is rethrown on the calling thread after
  /// all chunks complete.
  ///
  /// FLOPs counted by a chunk land in the *worker's* thread-local
  /// FlopCounter; each chunk's delta is captured and the sum is merged into
  /// the calling thread's counter at join, so callers observe the exact
  /// serial count (Fig 18 reporting stays right under parallel matmul).
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t chunks,
                    F&& fn) {
    if (end <= begin) return;
    const std::size_t n = end - begin;
    chunks = std::max<std::size_t>(1, std::min(chunks, n));
    const std::size_t per = (n + chunks - 1) / chunks;
    std::atomic<std::uint64_t> worker_flops{0};
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * per;
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + per);
      futures.push_back(submit([&fn, &worker_flops, c, lo, hi] {
        const std::uint64_t before = FlopCounter::instance().count();
        fn(c, lo, hi);
        worker_flops.fetch_add(FlopCounter::instance().count() - before,
                               std::memory_order_relaxed);
      }));
    }
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    FlopCounter::instance().add(
        worker_flops.load(std::memory_order_relaxed));
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace gt
