// Fixed-size worker pool used by the service-wide tensor scheduler to run
// preprocessing subtasks concurrently (the paper's host-side S/R/K/T threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gt {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace gt
