// Deterministic pseudo-random number generation for every stochastic
// component in GraphTensor (graph generators, neighbor sampling, parameter
// init). All randomness flows through explicit 64-bit seeds so that every
// experiment in EXPERIMENTS.md is bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace gt {

/// SplitMix64: used to expand one user seed into independent stream seeds.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Fast, 256-bit state, passes BigCrush.
/// Satisfies UniformRandomBitGenerator so it composes with <random> if needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Unbiased uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform_real() noexcept;

  /// Uniform float in [lo, hi).
  float uniform_float(float lo, float hi) noexcept;

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream position is call-count deterministic).
  double normal() noexcept;

  /// Jump the stream forward by 2^128 steps: yields a statistically
  /// independent substream sharing the same seed lineage.
  void jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// k distinct values sampled uniformly from [0, n) without replacement.
/// Uses Floyd's algorithm: O(k) expected time, order of output is the
/// insertion order of Floyd's loop (deterministic for a given rng state).
std::vector<std::uint64_t> sample_without_replacement(Xoshiro256& rng,
                                                      std::uint64_t n,
                                                      std::uint64_t k);

/// Derive the i-th independent stream seed from a root seed.
inline std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  SplitMix64 sm(root ^ (0xa0761d6478bd642full * (stream + 1)));
  return sm.next();
}

}  // namespace gt
