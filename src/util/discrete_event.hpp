// Discrete-event scheduling engine.
//
// Reported preprocessing latencies in this reproduction come from a
// deterministic list-scheduling simulation over the host's resources (C CPU
// cores, one PCIe link, one GPU) rather than wall-clock time: the evaluation
// machine may have a single core, while the paper's claims are about the
// *schedule shape* produced by the service-wide tensor scheduler. Each
// subtask carries an analytically derived duration (from counted work, see
// pipeline/cost_params.hpp); the engine computes start/finish times and the
// makespan under dependency, capacity, and mutual-exclusion constraints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace gt {

using SimTaskId = std::uint32_t;
using SimResourceId = std::uint32_t;
using SimGroupId = std::uint32_t;

inline constexpr SimResourceId kNoResource =
    std::numeric_limits<SimResourceId>::max();
inline constexpr SimGroupId kNoGroup = std::numeric_limits<SimGroupId>::max();

struct SimTaskResult {
  std::string name;
  double start = 0.0;
  double finish = 0.0;
  SimResourceId resource = kNoResource;
};

struct SimResult {
  double makespan = 0.0;
  std::vector<SimTaskResult> tasks;      // indexed by SimTaskId
  std::vector<double> resource_busy;     // total busy unit-time per resource

  double start_of(SimTaskId id) const { return tasks[id].start; }
  double finish_of(SimTaskId id) const { return tasks[id].finish; }
};

/// Non-preemptive list scheduler. Deterministic: ties are broken by task
/// priority (lower value first), then insertion order.
class EventSim {
 public:
  /// A resource with `capacity` identical units (e.g. CPU cores).
  SimResourceId add_resource(std::string name, std::size_t capacity);

  /// A mutual-exclusion group: at most one member task runs at a time,
  /// on top of any resource constraint. Models the serialized hash-table
  /// update sections (H subtasks) of the contention-relaxed scheduler.
  SimGroupId add_serial_group();

  /// Add a task. `duration` >= 0 (simulated milliseconds by convention).
  /// `resource == kNoResource` means the task only orders its dependents
  /// (a barrier). `deps` must all be previously added task ids.
  SimTaskId add_task(std::string name, double duration,
                     SimResourceId resource = kNoResource,
                     std::vector<SimTaskId> deps = {},
                     SimGroupId group = kNoGroup, int priority = 0);

  std::size_t task_count() const noexcept { return tasks_.size(); }

  /// Run the simulation from time 0. May be called once per engine.
  SimResult run();

 private:
  struct Task {
    std::string name;
    double duration = 0.0;
    SimResourceId resource = kNoResource;
    std::vector<SimTaskId> deps;
    SimGroupId group = kNoGroup;
    int priority = 0;
  };
  std::vector<Task> tasks_;
  std::vector<std::string> resource_names_;
  std::vector<std::size_t> resource_capacity_;
  std::size_t group_count_ = 0;
};

}  // namespace gt
