// Console table printer: every bench binary reports its figure/table as
// aligned rows so EXPERIMENTS.md entries can be pasted straight from stdout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gt {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; cells beyond the header count are dropped, missing
  /// cells render empty.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_ratio(double v);      // "1.53x"
  static std::string fmt_pct(double v);        // "42.1%"
  static std::string fmt_bytes(std::size_t b); // "1.2MiB"
  static std::string fmt_count(std::size_t n); // "1.2M"

  std::string to_string() const;
  void print() const;  // to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gt
