#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gt {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stdev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<double> empirical_cdf(const std::vector<double>& values,
                                  const std::vector<double>& at) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(at.size());
  for (double x : at) {
    auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    out.push_back(sorted.empty()
                      ? 0.0
                      : static_cast<double>(it - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return out;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

std::vector<std::pair<double, std::size_t>> histogram(
    const std::vector<double>& values, std::size_t bins) {
  std::vector<std::pair<double, std::size_t>> out;
  if (values.empty() || bins == 0) return out;
  const double max_v = *std::max_element(values.begin(), values.end());
  const double width = max_v > 0 ? max_v / static_cast<double>(bins) : 1.0;
  out.resize(bins, {0.0, 0});
  for (std::size_t b = 0; b < bins; ++b)
    out[b].first = width * static_cast<double>(b + 1);
  for (double v : values) {
    std::size_t b = width > 0 ? static_cast<std::size_t>(v / width) : 0;
    if (b >= bins) b = bins - 1;
    ++out[b].second;
  }
  return out;
}

}  // namespace gt
