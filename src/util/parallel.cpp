#include "util/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace gt {

namespace {

thread_local bool t_on_compute_worker = false;

std::size_t default_threads() {
  if (const char* env = std::getenv("GT_COMPUTE_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 16);
}

struct Engine {
  std::mutex mu;
  std::size_t threads = default_threads();
  std::unique_ptr<ThreadPool> pool;  // lazy; absent while threads == 1
};

Engine& engine() {
  static Engine* e = new Engine();  // leaked: workers may outlive main's statics
  return *e;
}

}  // namespace

std::size_t compute_threads() {
  Engine& e = engine();
  std::lock_guard lock(e.mu);
  return e.threads;
}

void set_compute_threads(std::size_t n) {
  Engine& e = engine();
  std::lock_guard lock(e.mu);
  const std::size_t want = n == 0 ? default_threads() : n;
  if (want == e.threads && (want == 1 || e.pool != nullptr)) return;
  e.threads = want;
  e.pool.reset();  // next compute_pool() call respawns at the new size
}

ThreadPool* compute_pool() {
  Engine& e = engine();
  std::lock_guard lock(e.mu);
  if (e.threads <= 1) return nullptr;
  if (!e.pool) e.pool = std::make_unique<ThreadPool>(e.threads);
  return e.pool.get();
}

bool on_compute_worker() { return t_on_compute_worker; }

namespace detail {
ComputeWorkerScope::ComputeWorkerScope() { t_on_compute_worker = true; }
ComputeWorkerScope::~ComputeWorkerScope() { t_on_compute_worker = false; }
}  // namespace detail

}  // namespace gt
