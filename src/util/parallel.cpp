#include "util/parallel.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "util/log.hpp"

namespace gt {

namespace {

thread_local bool t_on_compute_worker = false;

std::size_t default_threads() {
  if (const char* env = std::getenv("GT_COMPUTE_THREADS")) {
    bool valid = false;
    const std::size_t v = parse_thread_count(env, &valid);
    if (valid) return v;
    log_warn("parallel: ignoring invalid GT_COMPUTE_THREADS='", env,
             "' (want an integer in [1, ", kMaxComputeThreads,
             "]); using the hardware default");
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 16);
}

struct Engine {
  std::mutex mu;
  std::size_t threads = default_threads();
  std::unique_ptr<ThreadPool> pool;  // lazy; absent while threads == 1
};

Engine& engine() {
  static Engine* e = new Engine();  // leaked: workers may outlive main's statics
  return *e;
}

}  // namespace

std::size_t parse_thread_count(const char* text, bool* valid) {
  *valid = false;
  if (text == nullptr) return 0;
  // The old parser took strtol's best effort, so "8x" silently became 8
  // and "abc" became a rejected 0 with no diagnostic. Require a fully
  // consumed non-negative decimal (surrounding whitespace allowed).
  const char* p = text;
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(p, &end, 10);
  if (end == p) return 0;
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') return 0;
  if (v < 1) return 0;
  *valid = true;
  return std::min<std::size_t>(static_cast<std::size_t>(v),
                               kMaxComputeThreads);
}

std::size_t compute_threads() {
  Engine& e = engine();
  std::lock_guard lock(e.mu);
  return e.threads;
}

void set_compute_threads(std::size_t n) {
  Engine& e = engine();
  std::lock_guard lock(e.mu);
  const std::size_t want = n == 0 ? default_threads() : n;
  if (want == e.threads && (want == 1 || e.pool != nullptr)) return;
  e.threads = want;
  e.pool.reset();  // next compute_pool() call respawns at the new size
}

ThreadPool* compute_pool() {
  Engine& e = engine();
  std::lock_guard lock(e.mu);
  if (e.threads <= 1) return nullptr;
  if (!e.pool) e.pool = std::make_unique<ThreadPool>(e.threads);
  return e.pool.get();
}

bool on_compute_worker() { return t_on_compute_worker; }

namespace detail {
ComputeWorkerScope::ComputeWorkerScope() { t_on_compute_worker = true; }
ComputeWorkerScope::~ComputeWorkerScope() { t_on_compute_worker = false; }
}  // namespace detail

}  // namespace gt
