#include "util/discrete_event.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

namespace gt {

SimResourceId EventSim::add_resource(std::string name, std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("resource capacity must be > 0");
  resource_names_.push_back(std::move(name));
  resource_capacity_.push_back(capacity);
  return static_cast<SimResourceId>(resource_names_.size() - 1);
}

SimGroupId EventSim::add_serial_group() {
  return static_cast<SimGroupId>(group_count_++);
}

SimTaskId EventSim::add_task(std::string name, double duration,
                             SimResourceId resource,
                             std::vector<SimTaskId> deps, SimGroupId group,
                             int priority) {
  if (duration < 0.0) throw std::invalid_argument("negative task duration");
  if (resource != kNoResource && resource >= resource_names_.size())
    throw std::out_of_range("unknown resource");
  if (group != kNoGroup && group >= group_count_)
    throw std::out_of_range("unknown serial group");
  for (SimTaskId d : deps)
    if (d >= tasks_.size()) throw std::out_of_range("dependency on future task");
  tasks_.push_back(Task{std::move(name), duration, resource, std::move(deps),
                        group, priority});
  return static_cast<SimTaskId>(tasks_.size() - 1);
}

SimResult EventSim::run() {
  const std::size_t n = tasks_.size();
  SimResult result;
  result.tasks.resize(n);
  result.resource_busy.assign(resource_names_.size(), 0.0);

  std::vector<std::size_t> pending_deps(n, 0);
  std::vector<std::vector<SimTaskId>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending_deps[i] = tasks_[i].deps.size();
    for (SimTaskId d : tasks_[i].deps)
      dependents[d].push_back(static_cast<SimTaskId>(i));
  }

  // Ready queue ordered by (priority, id) for determinism.
  auto cmp = [this](SimTaskId a, SimTaskId b) {
    if (tasks_[a].priority != tasks_[b].priority)
      return tasks_[a].priority > tasks_[b].priority;  // min-heap on priority
    return a > b;
  };
  std::priority_queue<SimTaskId, std::vector<SimTaskId>, decltype(cmp)> ready(
      cmp);
  for (std::size_t i = 0; i < n; ++i)
    if (pending_deps[i] == 0) ready.push(static_cast<SimTaskId>(i));

  std::vector<std::size_t> in_use(resource_names_.size(), 0);
  std::vector<bool> group_busy(group_count_, false);

  struct Completion {
    double time;
    SimTaskId task;
    bool operator>(const Completion& o) const {
      return time != o.time ? time > o.time : task > o.task;
    }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      running;

  double now = 0.0;
  std::size_t finished = 0;
  std::vector<SimTaskId> deferred;  // ready but blocked on resource/group

  auto try_start = [&](SimTaskId id) -> bool {
    const Task& t = tasks_[id];
    if (t.resource != kNoResource &&
        in_use[t.resource] >= resource_capacity_[t.resource])
      return false;
    if (t.group != kNoGroup && group_busy[t.group]) return false;
    if (t.resource != kNoResource) {
      ++in_use[t.resource];
      result.resource_busy[t.resource] += t.duration;
    }
    if (t.group != kNoGroup) group_busy[t.group] = true;
    result.tasks[id].name = t.name;
    result.tasks[id].resource = t.resource;
    result.tasks[id].start = now;
    result.tasks[id].finish = now + t.duration;
    running.push(Completion{now + t.duration, id});
    return true;
  };

  while (finished < n) {
    // Start everything startable at `now`.
    std::vector<SimTaskId> still_blocked;
    // Merge deferred tasks back into consideration, preserving priority order:
    for (SimTaskId id : deferred) ready.push(id);
    deferred.clear();
    while (!ready.empty()) {
      SimTaskId id = ready.top();
      ready.pop();
      if (!try_start(id)) still_blocked.push_back(id);
    }
    deferred = std::move(still_blocked);

    if (running.empty()) {
      if (finished < n)
        throw std::logic_error(
            "EventSim deadlock: cyclic dependencies or unsatisfiable "
            "resource demand");
      break;
    }

    // Advance to the next completion; release everything finishing then.
    now = running.top().time;
    while (!running.empty() && running.top().time == now) {
      SimTaskId id = running.top().task;
      running.pop();
      const Task& t = tasks_[id];
      if (t.resource != kNoResource) --in_use[t.resource];
      if (t.group != kNoGroup) group_busy[t.group] = false;
      ++finished;
      for (SimTaskId dep : dependents[id])
        if (--pending_deps[dep] == 0) ready.push(dep);
    }
  }

  result.makespan = now;
  return result;
}

}  // namespace gt
