#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <unordered_set>

namespace gt {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform_real() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float Xoshiro256::uniform_float(float lo, float hi) noexcept {
  return lo + static_cast<float>(uniform_real()) * (hi - lo);
}

double Xoshiro256::normal() noexcept {
  // Box-Muller; discard the second variate to keep stream position a pure
  // function of the call count.
  double u1 = uniform_real();
  double u2 = uniform_real();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t j : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (j & (1ull << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

std::vector<std::uint64_t> sample_without_replacement(Xoshiro256& rng,
                                                      std::uint64_t n,
                                                      std::uint64_t k) {
  if (k >= n) {
    std::vector<std::uint64_t> all(n);
    for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm.
  std::unordered_set<std::uint64_t> chosen;
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    std::uint64_t t = rng.uniform(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace gt
