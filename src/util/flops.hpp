// Thread-local floating-point-operation counter.
//
// Every dense tensor op adds its arithmetic work here so benchmarks
// (Fig 18) can report FLOPs without instrumenting call sites. The counter
// is strictly thread-local; code that fans work out across threads is
// responsible for merging the workers' deltas back into the spawning
// thread's counter (ThreadPool::parallel_for does this automatically), so
// a caller always observes the exact serial count no matter how many
// compute threads ran.
#pragma once

#include <cstdint>

namespace gt {

class FlopCounter {
 public:
  static FlopCounter& instance() {
    thread_local FlopCounter counter;
    return counter;
  }
  void add(std::uint64_t flops) noexcept { count_ += flops; }
  std::uint64_t count() const noexcept { return count_; }
  void reset() noexcept { count_ = 0; }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace gt
