// Minimal leveled logging. Off by default so bench output stays clean;
// set GT_LOG=debug|info|warn in the environment to enable.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace gt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

LogLevel log_threshold();

namespace detail {
void log_emit(LogLevel level, std::string_view msg);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  detail::log_emit(level, os.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}

}  // namespace gt
