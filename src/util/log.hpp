// Minimal leveled logging. Off by default so bench output stays clean;
// set GT_LOG=debug|info|warn in the environment to enable.
//
// When a structured sink is installed (set_log_sink — the live event log
// arms one), formatted lines are routed there instead of stderr, so
// free-text logs and JSONL events share one timeline instead of
// interleaving on two.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace gt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

LogLevel log_threshold();

/// Monotonic milliseconds on the logging clock (shared with the structured
/// event log so both sinks stamp events identically).
double log_uptime_ms();

/// Small sequential id of the calling thread (00, 01, ...) — readable,
/// unlike the platform's opaque std::thread::id.
unsigned log_thread_index();

/// Structured log sink: receives every emitted line instead of stderr.
/// Install with set_log_sink; null restores the stderr path. The sink is
/// called without the "[gt:LEVEL +ms tNN]" prefix — it is expected to
/// record its own timestamp/thread fields (via log_uptime_ms /
/// log_thread_index, so the clocks agree).
using LogSink = void (*)(LogLevel level, std::string_view msg);
void set_log_sink(LogSink sink) noexcept;
LogSink log_sink() noexcept;

namespace detail {
void log_emit(LogLevel level, std::string_view msg);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  detail::log_emit(level, os.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}

}  // namespace gt
