#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace gt {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_ratio(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", v);
  return buf;
}

std::string Table::fmt_pct(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
  return buf;
}

std::string Table::fmt_bytes(std::size_t b) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(b);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  return buf;
}

std::string Table::fmt_count(std::size_t n) {
  const char* units[] = {"", "K", "M", "G"};
  double v = static_cast<double>(n);
  int u = 0;
  while (v >= 1000.0 && u < 3) {
    v /= 1000.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%zu", n);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  }
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

}  // namespace gt
