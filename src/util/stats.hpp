// Small statistics helpers used across evaluation harnesses: streaming
// mean/stdev, percentiles, CDFs (Fig 8), and geometric means (the paper's
// cross-workload averages are reported as means of per-workload ratios).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gt {

/// Welford online accumulator: numerically stable mean/variance.
class OnlineStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Population variance (paper reports stdev of degree over all vertices).
  double variance() const noexcept;
  double stdev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation; `q` in [0, 1]. Sorts a copy.
double percentile(std::vector<double> values, double q);

/// Empirical CDF sampled at the given x points: returns P(X <= x).
std::vector<double> empirical_cdf(const std::vector<double>& values,
                                  const std::vector<double>& at);

/// Geometric mean of strictly positive values; 0 if input empty.
double geomean(const std::vector<double>& values);

/// Arithmetic mean; 0 if empty.
double mean(const std::vector<double>& values);

/// Histogram over [0, max_value] in `bins` equal-width buckets.
std::vector<std::pair<double, std::size_t>> histogram(
    const std::vector<double>& values, std::size_t bins);

}  // namespace gt
