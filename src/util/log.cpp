#include "util/log.hpp"

#include <cstdlib>
#include <string>

namespace gt {

LogLevel log_threshold() {
  static const LogLevel level = [] {
    const char* env = std::getenv("GT_LOG");
    if (env == nullptr) return LogLevel::kOff;
    const std::string v(env);
    if (v == "debug") return LogLevel::kDebug;
    if (v == "info") return LogLevel::kInfo;
    if (v == "warn") return LogLevel::kWarn;
    return LogLevel::kOff;
  }();
  return level;
}

namespace detail {
void log_emit(LogLevel level, std::string_view msg) {
  static std::mutex mu;
  const char* tag = level == LogLevel::kDebug  ? "DEBUG"
                    : level == LogLevel::kInfo ? "INFO "
                                               : "WARN ";
  std::lock_guard lock(mu);
  std::clog << "[gt:" << tag << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace gt
