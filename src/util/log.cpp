#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace gt {

LogLevel log_threshold() {
  // Function-local static: the GT_LOG environment variable is read once
  // per process, not per log call.
  static const LogLevel level = [] {
    const char* env = std::getenv("GT_LOG");
    if (env == nullptr) return LogLevel::kOff;
    const std::string v(env);
    if (v == "debug") return LogLevel::kDebug;
    if (v == "info") return LogLevel::kInfo;
    if (v == "warn") return LogLevel::kWarn;
    return LogLevel::kOff;
  }();
  return level;
}

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<LogSink> g_sink{nullptr};

}  // namespace

double log_uptime_ms() {
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

unsigned log_thread_index() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1);
  return id;
}

void set_log_sink(LogSink sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}

LogSink log_sink() noexcept {
  return g_sink.load(std::memory_order_acquire);
}

namespace detail {

void log_emit(LogLevel level, std::string_view msg) {
  if (const LogSink sink = log_sink()) {
    sink(level, msg);
    return;
  }
  static std::mutex mu;
  const char* tag = level == LogLevel::kDebug  ? "DEBUG"
                    : level == LogLevel::kInfo ? "INFO "
                                               : "WARN ";
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[gt:%s +%.3fms t%02u] ", tag,
                log_uptime_ms(), log_thread_index());
  std::lock_guard lock(mu);
  std::clog << prefix << msg << '\n';
}

}  // namespace detail

}  // namespace gt
