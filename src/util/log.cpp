#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace gt {

LogLevel log_threshold() {
  // Function-local static: the GT_LOG environment variable is read once
  // per process, not per log call.
  static const LogLevel level = [] {
    const char* env = std::getenv("GT_LOG");
    if (env == nullptr) return LogLevel::kOff;
    const std::string v(env);
    if (v == "debug") return LogLevel::kDebug;
    if (v == "info") return LogLevel::kInfo;
    if (v == "warn") return LogLevel::kWarn;
    return LogLevel::kOff;
  }();
  return level;
}

namespace detail {

namespace {

using Clock = std::chrono::steady_clock;

/// Monotonic milliseconds since the first log call.
double uptime_ms() {
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Small sequential thread id (00, 01, ...) — readable, unlike the
/// platform's opaque std::thread::id.
unsigned thread_index() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1);
  return id;
}

}  // namespace

void log_emit(LogLevel level, std::string_view msg) {
  static std::mutex mu;
  const char* tag = level == LogLevel::kDebug  ? "DEBUG"
                    : level == LogLevel::kInfo ? "INFO "
                                               : "WARN ";
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[gt:%s +%.3fms t%02u] ", tag,
                uptime_ms(), thread_index());
  std::lock_guard lock(mu);
  std::clog << prefix << msg << '\n';
}

}  // namespace detail

}  // namespace gt
