// Process-wide compute engine: one shared ThreadPool used by the simulated
// device's kernel engine (per-SM block execution) and the dense tensor ops
// (row-tile parallel matmuls).
//
// Determinism contract: everything dispatched through this engine must
// produce bit-identical results for any thread count, including 1. The
// device engine guarantees this by sharding blocks by their SM (per-SM
// simulator state is independent and blocks of one SM run in block order on
// one thread); the tensor ops guarantee it by making each output row's
// accumulation order independent of the chunk boundaries. Anything that
// cannot meet the contract must not use the engine (declare the kernel
// BlockSafety::kSerial instead).
//
// Re-entrancy: work running *on* a compute worker never fans out again —
// nested parallel sections run inline on the worker. This makes the engine
// deadlock-free by construction (a worker never blocks on the pool it
// occupies) without needing work stealing.
#pragma once

#include <cstddef>

#include "util/thread_pool.hpp"

namespace gt {

/// Hard ceiling applied to environment-supplied thread counts; a typo'd
/// GT_COMPUTE_THREADS=999 must not fork-bomb the host.
inline constexpr std::size_t kMaxComputeThreads = 64;

/// Parse a thread-count string (GT_COMPUTE_THREADS): a fully consumed
/// positive decimal, surrounding whitespace allowed, clamped to
/// [1, kMaxComputeThreads]. On success sets *valid = true and returns the
/// count; on any reject (null, empty, trailing garbage, zero, negative)
/// sets *valid = false and returns 0.
std::size_t parse_thread_count(const char* text, bool* valid);

/// Number of compute threads the engine is configured for (>= 1).
/// Initialized lazily from GT_COMPUTE_THREADS (validated via
/// parse_thread_count, invalid values warn and fall through), else from
/// hardware_concurrency clamped to [1, 16].
std::size_t compute_threads();

/// Reconfigure the engine. n == 0 restores the environment/hardware
/// default. The pool is (re)created lazily on the next parallel section;
/// with n == 1 no pool exists and everything runs inline. Not thread-safe
/// against concurrently running parallel sections — call between batches.
void set_compute_threads(std::size_t n);

/// The shared pool, or nullptr when compute_threads() == 1. Workers are
/// spawned on first use.
ThreadPool* compute_pool();

/// True on a compute-pool worker thread (nested sections must run inline).
bool on_compute_worker();

namespace detail {
/// RAII marker for worker-side execution; used by the engine internals.
class ComputeWorkerScope {
 public:
  ComputeWorkerScope();
  ~ComputeWorkerScope();
  ComputeWorkerScope(const ComputeWorkerScope&) = delete;
  ComputeWorkerScope& operator=(const ComputeWorkerScope&) = delete;
};
}  // namespace detail

/// Deterministic parallel-for over [begin, end): splits into
/// compute_threads() ceil-division chunks on the shared pool and blocks
/// until done. fn(lo, hi) must be chunk-invariant (see the contract above).
/// Runs inline when the engine is serial, the range is empty, or the caller
/// is already a compute worker. Worker-thread FlopCounter deltas are merged
/// into the calling thread's counter at join (ThreadPool::parallel_for).
template <typename F>
void compute_parallel_for(std::size_t begin, std::size_t end, F&& fn) {
  if (end <= begin) return;
  ThreadPool* pool = compute_pool();
  if (pool == nullptr || on_compute_worker() || end - begin == 1) {
    fn(begin, end);
    return;
  }
  pool->parallel_for(begin, end, compute_threads(),
                     [&fn](std::size_t, std::size_t lo, std::size_t hi) {
                       detail::ComputeWorkerScope scope;
                       fn(lo, hi);
                     });
}

}  // namespace gt
