// Command-line GNN training service: pick any catalog dataset, model, and
// framework backend and watch the per-batch reports — the "adopt this
// library" entry point.
//
//   $ ./examples/service_cli [dataset] [model] [framework] [batches]
//   $ ./examples/service_cli wiki-talk NGCF Prepro-GT 12
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/graphtensor.hpp"
#include "util/table.hpp"

namespace {

gt::models::GnnModelConfig model_by_name(const std::string& name,
                                         const gt::DatasetSpec& spec) {
  if (name == "GCN")
    return gt::models::gcn(spec.hidden_dim, spec.output_dim);
  if (name == "NGCF")
    return gt::models::ngcf(spec.hidden_dim, spec.output_dim);
  if (name == "GraphSAGE")
    return gt::models::graphsage_sum(spec.hidden_dim, spec.output_dim);
  if (name == "GAT")
    return gt::models::gat_like(spec.hidden_dim, spec.output_dim);
  std::fprintf(stderr, "unknown model '%s' (GCN|NGCF|GraphSAGE|GAT)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "products";
  const std::string model_name = argc > 2 ? argv[2] : "GCN";
  const std::string framework = argc > 3 ? argv[3] : "Prepro-GT";
  const int batches = argc > 4 ? std::atoi(argv[4]) : 8;

  gt::Dataset data = gt::generate(dataset_name, 42);
  gt::models::GnnModelConfig model = model_by_name(model_name, data.spec);

  gt::ServiceOptions options;
  options.framework = framework;
  options.learning_rate = 0.1f;
  gt::GnnService service(std::move(data), model, options);

  std::printf("training %s on %s via %s (%d batches of %zu)\n\n",
              model_name.c_str(), dataset_name.c_str(), framework.c_str(),
              batches, options.batch_size);

  gt::Table table({"batch", "loss", "kernel us", "preproc us", "e2e us",
                   "peak mem", "placement L0"});
  for (int b = 0; b < batches; ++b) {
    gt::frameworks::RunReport r = service.train_batch();
    if (r.oom) {
      table.add_row({std::to_string(b), "OOM: " + r.oom_what});
      break;
    }
    table.add_row({std::to_string(b), gt::Table::fmt(r.loss, 4),
                   gt::Table::fmt(r.kernel_total_us, 1),
                   gt::Table::fmt(r.preproc_makespan_us, 1),
                   gt::Table::fmt(r.end_to_end_us, 1),
                   gt::Table::fmt_bytes(r.peak_memory_bytes),
                   r.layer_comb_first_fwd[0] ? "comb-first" : "agg-first"});
  }
  table.print();
  std::printf("\nheld-out accuracy: %.1f%% (chance %.1f%%)\n",
              100.0 * service.evaluate(2), 100.0 / model.output_dim);
  return 0;
}
