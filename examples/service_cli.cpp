// Command-line GNN training service: pick any catalog dataset, model, and
// framework backend and watch the per-batch reports — the "adopt this
// library" entry point.
//
//   $ ./examples/service_cli [dataset] [model] [framework] [batches]
//   $ ./examples/service_cli wiki-talk NGCF Prepro-GT 12
//
// Concurrent serving:
//   --workers=N  (or --workers N) drains the batch queue with N worker
//                contexts: preprocessing of up to N batches overlaps on a
//                thread pool while training executes strictly in batch
//                order. Reports are bit-identical to --workers=1.
//   --compute-threads=N (GT_COMPUTE_THREADS) host threads for the compute
//                engine: simulated-device kernels run their per-SM block
//                sequences on N pool workers and the dense tensor ops
//                parallelize over row tiles. Reports (simulated times,
//                losses, gradients) are bit-identical for every N — only
//                host wall-clock changes.
//   --batches=M  explicit batch count (wins over the positional form).
//
// Modeled multi-device execution (DESIGN.md §14):
//   --devices=N  decompose each batch across N simulated devices behind a
//                modeled ring interconnect. Trained parameters and losses
//                stay bit-identical to --devices=1; the timeline becomes a
//                per-device makespan merge and the report gains comm.*
//                collective costs. Requires a GraphTensor backend.
//   --shard=S    decomposition strategy: "range" (destination-vertex range
//                sharding with halo all-gathers) or "tp" (NeutronTP-style
//                tensor parallelism over the feature dimension, one
//                all-reduce per layer boundary). Only valid together with
//                --devices > 1; defaults to range.
//
// Embedding cache hierarchy (DESIGN.md §15):
//   --cache-budget=B   device bytes for the embedding cache (suffixes
//                K/M/G, e.g. --cache-budget=8M). 0 (default) = no cache.
//                Re-prices the K/T preprocessing stages only: trained
//                parameters and losses are bit-identical to a cache-off
//                run for every policy. Requires a GraphTensor backend.
//   --cache-policy=P   static (degree-pinned hub vertices, the default),
//                lru / lfu (fully dynamic, batch-index virtual-time
//                eviction), or tiered (budget split static + LRU).
//   --prefetch   sampler-lookahead warm-up of the dynamic tier: the
//                prepared next batch's vid_order is fetched under the
//                current batch's compute window and priced as overlapped
//                transfer. Needs a dynamic tier (lru/lfu/tiered).
//
// Online request serving (DESIGN.md §16):
//   --serve      switch from epoch training to the online serving front
//                end: a seeded open-loop arrival process feeds a bounded
//                request queue, SLO-aware admission sheds predicted
//                deadline misses at the door, and the dynamic batcher
//                coalesces admitted requests into forward-only batches on
//                the same worker-context ring. Prints the outcome table
//                plus p50/p95/p99 request latency, goodput, and shed rate.
//   --arrival=A  poisson (default) | bursty | diurnal arrival process.
//   --rate=R     mean arrival rate in requests per virtual second (>0).
//   --slo-ticks=T  deadline in virtual ticks (1 tick = 1 simulated us);
//                0 (default) disables shedding.
//   --queue-depth=N  bounded request-queue capacity (default 64).
//   --requests=N     arrivals to generate (default 64).
//   --max-batch=N    requests coalesced per serving batch (default 8).
//   --max-wait-ticks=T  oldest-request wait that forces a batch closed
//                (default 2000).
//   --verts-per-request=N  dst vertices each request asks for (default 32).
//   All serving flags require --serve; the replayed decision stream is
//   bit-identical across --workers values, including under --fault-spec.
//
// Fault injection / chaos serving (DESIGN.md §11):
//   --fault-spec=SPEC (GT_FAULT_SPEC) arms a gt::fault schedule, e.g.
//                --fault-spec="gpusim.alloc@batch=3;preproc.sample@batch=7"
//                Transient faults are retried with virtual backoff; a
//                batch past the retry budget shows as "degraded" in the
//                table and the epoch keeps going.
//   --max-retries=N retry budget per batch (default 3).
//   Chaos example:
//     ./examples/service_cli products GCN Prepro-GT 8 --workers=4 \
//         --fault-spec="preproc.sample@batch=2;gpusim.kernel@batch=5:always"
//
// Observability flags (anywhere on the command line); each flag also
// honors its GT_* environment-variable equivalent, for parity with the
// bench binaries' env-driven hook (the flag wins when both are set):
//   --trace-out=trace.json     (GT_TRACE_OUT) Chrome trace-event JSON of
//                              the run: the simulated S/R/K/T + FWP/BWP
//                              batch timeline (load in chrome://tracing
//                              or Perfetto) plus wall-clock host spans.
//   --metrics-out=metrics.json (GT_METRICS_OUT) Dump of the gt::obs
//                              metrics registry (hash contention, DKP
//                              decisions, kernel-category timings, PCIe
//                              bytes, per-epoch loss, ...).
//   --bench-out=bench.json     (GT_BENCH_OUT) Structured bench report:
//                              per-run latency/loss rows plus the
//                              trace-derived critical-path / stage-share /
//                              overlap analysis (see obs/report.hpp).
//   --kernel-ledger-out=kernels.json (GT_KERNEL_LEDGER_OUT) Kernel-level
//                              attribution ledger (DESIGN.md §13):
//                              per-kernel-class latency sums, exact
//                              stage-identity totals, and the DKP
//                              cost-model prediction join. Feed two of
//                              these to tools/gt_explain to attribute an
//                              end-to-end latency delta.
//
// Live telemetry (DESIGN.md §12); tail with tools/gt_top:
//   --telemetry-out=DIR        (GT_TELEMETRY_OUT) arm the live stack:
//                              rotating snapshot-<k>.json + latest.json
//                              time-series snapshots, events.jsonl
//                              structured event log (severity, monotonic
//                              ts, thread id, correlation id — one cid per
//                              batch ties fault.inject -> service.retry ->
//                              service.degraded together), per-worker
//                              stage profiler, crash-safe flush.
//   --telemetry-interval=N     (GT_TELEMETRY_INTERVAL) batches between
//                              snapshots (default 1).
//   --watchdog-stall-ms=M      (GT_TELEMETRY_WATCHDOG_MS) declare a stall
//                              after M ms without batch progress
//                              (watchdog.stall/.recovered events; 0 = off).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/graphtensor.hpp"
#include "obs/metrics.hpp"
#include "sampling/cache_hierarchy.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

gt::models::GnnModelConfig model_by_name(const std::string& name,
                                         const gt::DatasetSpec& spec) {
  if (name == "GCN")
    return gt::models::gcn(spec.hidden_dim, spec.output_dim);
  if (name == "NGCF")
    return gt::models::ngcf(spec.hidden_dim, spec.output_dim);
  if (name == "GraphSAGE")
    return gt::models::graphsage_sum(spec.hidden_dim, spec.output_dim);
  if (name == "GAT")
    return gt::models::gat_like(spec.hidden_dim, spec.output_dim);
  std::fprintf(stderr, "unknown model '%s' (GCN|NGCF|GraphSAGE|GAT)\n",
               name.c_str());
  std::exit(2);
}

/// Flag value, falling back to the GT_* environment equivalent.
std::string out_path(const std::string& flag_value, const char* env_name) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv(env_name)) return env;
  return {};
}

/// Parse a byte count with an optional K/M/G suffix ("8M", "512k", "1G").
/// Returns false on anything else (including negatives).
bool parse_byte_size(const std::string& text, std::size_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0.0) return false;
  double scale = 1.0;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': scale = 1024.0; break;
      case 'm': case 'M': scale = 1024.0 * 1024.0; break;
      case 'g': case 'G': scale = 1024.0 * 1024.0 * 1024.0; break;
      default: return false;
    }
    ++end;
    if (*end == 'B' || *end == 'b') ++end;
    if (*end != '\0') return false;
  }
  *out = static_cast<std::size_t>(value * scale);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_flag, metrics_flag, bench_flag, ledger_flag;
  std::string fault_spec;  // empty = GT_FAULT_SPEC / no faults
  std::string telemetry_flag;  // empty = GT_TELEMETRY_OUT / telemetry off
  std::vector<std::string> positional;
  int workers = 1;
  int devices = 1;
  std::string shard_flag;  // empty = flag absent; validated below
  std::string cache_budget_flag;  // empty = cache off
  std::string cache_policy_flag;  // empty = static (validated below)
  bool cache_prefetch = false;
  int compute_threads = 0;  // 0 = GT_COMPUTE_THREADS / hardware default
  int batches_flag = -1;
  int max_retries = -1;  // -1 = ServiceOptions default
  int telemetry_interval = -1;   // -1 = GT_TELEMETRY_INTERVAL / default 1
  long watchdog_stall_ms = -1;   // -1 = GT_TELEMETRY_WATCHDOG_MS / off
  bool serve_mode = false;
  std::string arrival_flag;      // empty = poisson
  std::string rate_flag;         // empty = ArrivalConfig default
  long slo_ticks = -1;           // -1 = flag absent (no shedding)
  long queue_depth = -1;         // -1 = flag absent (default 64)
  long serve_requests = -1;      // -1 = flag absent (default 64)
  long max_batch = -1;           // -1 = flag absent (default 8)
  long max_wait_ticks = -1;      // -1 = flag absent (default 2000)
  long verts_per_request = -1;   // -1 = flag absent (default 32)
  // Serving flags seen on the command line, for the --serve requirement
  // check: any of them without --serve is a typo'd invocation.
  std::vector<std::string> serving_flags_seen;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_flag = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_flag = arg.substr(14);
    } else if (arg.rfind("--bench-out=", 0) == 0) {
      bench_flag = arg.substr(12);
    } else if (arg.rfind("--kernel-ledger-out=", 0) == 0) {
      ledger_flag = arg.substr(20);
    } else if (arg == "--kernel-ledger-out" && i + 1 < argc) {
      ledger_flag = argv[++i];
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::atoi(arg.c_str() + 10);
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg.rfind("--devices=", 0) == 0) {
      devices = std::atoi(arg.c_str() + 10);
    } else if (arg == "--devices" && i + 1 < argc) {
      devices = std::atoi(argv[++i]);
    } else if (arg.rfind("--shard=", 0) == 0) {
      shard_flag = arg.substr(8);
    } else if (arg == "--shard" && i + 1 < argc) {
      shard_flag = argv[++i];
    } else if (arg.rfind("--cache-budget=", 0) == 0) {
      cache_budget_flag = arg.substr(15);
    } else if (arg == "--cache-budget" && i + 1 < argc) {
      cache_budget_flag = argv[++i];
    } else if (arg.rfind("--cache-policy=", 0) == 0) {
      cache_policy_flag = arg.substr(15);
    } else if (arg == "--cache-policy" && i + 1 < argc) {
      cache_policy_flag = argv[++i];
    } else if (arg == "--prefetch") {
      cache_prefetch = true;
    } else if (arg.rfind("--compute-threads=", 0) == 0) {
      compute_threads = std::atoi(arg.c_str() + 18);
    } else if (arg == "--compute-threads" && i + 1 < argc) {
      compute_threads = std::atoi(argv[++i]);
    } else if (arg.rfind("--batches=", 0) == 0) {
      batches_flag = std::atoi(arg.c_str() + 10);
    } else if (arg == "--batches" && i + 1 < argc) {
      batches_flag = std::atoi(argv[++i]);
    } else if (arg.rfind("--fault-spec=", 0) == 0) {
      fault_spec = arg.substr(13);
    } else if (arg == "--fault-spec" && i + 1 < argc) {
      fault_spec = argv[++i];
    } else if (arg.rfind("--max-retries=", 0) == 0) {
      max_retries = std::atoi(arg.c_str() + 14);
    } else if (arg == "--max-retries" && i + 1 < argc) {
      max_retries = std::atoi(argv[++i]);
    } else if (arg.rfind("--telemetry-out=", 0) == 0) {
      telemetry_flag = arg.substr(16);
    } else if (arg == "--telemetry-out" && i + 1 < argc) {
      telemetry_flag = argv[++i];
    } else if (arg.rfind("--telemetry-interval=", 0) == 0) {
      telemetry_interval = std::atoi(arg.c_str() + 21);
    } else if (arg == "--telemetry-interval" && i + 1 < argc) {
      telemetry_interval = std::atoi(argv[++i]);
    } else if (arg.rfind("--watchdog-stall-ms=", 0) == 0) {
      watchdog_stall_ms = std::atol(arg.c_str() + 20);
    } else if (arg == "--watchdog-stall-ms" && i + 1 < argc) {
      watchdog_stall_ms = std::atol(argv[++i]);
    } else if (arg == "--serve") {
      serve_mode = true;
    } else if (arg.rfind("--arrival=", 0) == 0) {
      arrival_flag = arg.substr(10);
      serving_flags_seen.push_back("--arrival");
    } else if (arg == "--arrival" && i + 1 < argc) {
      arrival_flag = argv[++i];
      serving_flags_seen.push_back("--arrival");
    } else if (arg.rfind("--rate=", 0) == 0) {
      rate_flag = arg.substr(7);
      serving_flags_seen.push_back("--rate");
    } else if (arg == "--rate" && i + 1 < argc) {
      rate_flag = argv[++i];
      serving_flags_seen.push_back("--rate");
    } else if (arg.rfind("--slo-ticks=", 0) == 0) {
      slo_ticks = std::atol(arg.c_str() + 12);
      serving_flags_seen.push_back("--slo-ticks");
    } else if (arg == "--slo-ticks" && i + 1 < argc) {
      slo_ticks = std::atol(argv[++i]);
      serving_flags_seen.push_back("--slo-ticks");
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      queue_depth = std::atol(arg.c_str() + 14);
      serving_flags_seen.push_back("--queue-depth");
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      queue_depth = std::atol(argv[++i]);
      serving_flags_seen.push_back("--queue-depth");
    } else if (arg.rfind("--requests=", 0) == 0) {
      serve_requests = std::atol(arg.c_str() + 11);
      serving_flags_seen.push_back("--requests");
    } else if (arg == "--requests" && i + 1 < argc) {
      serve_requests = std::atol(argv[++i]);
      serving_flags_seen.push_back("--requests");
    } else if (arg.rfind("--max-batch=", 0) == 0) {
      max_batch = std::atol(arg.c_str() + 12);
      serving_flags_seen.push_back("--max-batch");
    } else if (arg == "--max-batch" && i + 1 < argc) {
      max_batch = std::atol(argv[++i]);
      serving_flags_seen.push_back("--max-batch");
    } else if (arg.rfind("--max-wait-ticks=", 0) == 0) {
      max_wait_ticks = std::atol(arg.c_str() + 17);
      serving_flags_seen.push_back("--max-wait-ticks");
    } else if (arg == "--max-wait-ticks" && i + 1 < argc) {
      max_wait_ticks = std::atol(argv[++i]);
      serving_flags_seen.push_back("--max-wait-ticks");
    } else if (arg.rfind("--verts-per-request=", 0) == 0) {
      verts_per_request = std::atol(arg.c_str() + 20);
      serving_flags_seen.push_back("--verts-per-request");
    } else if (arg == "--verts-per-request" && i + 1 < argc) {
      verts_per_request = std::atol(argv[++i]);
      serving_flags_seen.push_back("--verts-per-request");
    } else {
      positional.push_back(arg);
    }
  }
  if (workers < 1) workers = 1;
  // Contradictory-flag validation, before any expensive setup: a --shard
  // with nothing to shard across is almost certainly a typo'd invocation,
  // so fail loudly instead of silently training single-device.
  if (devices < 1) {
    std::fprintf(stderr, "--devices=%d: device count must be >= 1\n",
                 devices);
    return 2;
  }
  if (!shard_flag.empty() && devices <= 1) {
    std::fprintf(stderr,
                 "--shard=%s requires --devices > 1 (sharding a single "
                 "device is a no-op; pass --devices=N to enable it)\n",
                 shard_flag.c_str());
    return 2;
  }
  gt::frameworks::ShardStrategy shard = gt::frameworks::ShardStrategy::kNone;
  if (!shard_flag.empty()) {
    try {
      shard = gt::frameworks::parse_shard_strategy(shard_flag);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "--shard=%s: %s\n", shard_flag.c_str(), e.what());
      return 2;
    }
  }
  std::size_t cache_budget = 0;
  if (!cache_budget_flag.empty() &&
      !parse_byte_size(cache_budget_flag, &cache_budget)) {
    std::fprintf(stderr,
                 "--cache-budget=%s: expected a byte count with an optional "
                 "K/M/G suffix (e.g. --cache-budget=8M)\n",
                 cache_budget_flag.c_str());
    return 2;
  }
  // Same typo-protection as --shard: a policy or prefetch request with no
  // byte budget would silently train uncached, so reject it up front.
  if ((!cache_policy_flag.empty() || cache_prefetch) && cache_budget == 0) {
    std::fprintf(stderr,
                 "%s requires a positive --cache-budget (the embedding "
                 "cache is off without a byte budget)\n",
                 !cache_policy_flag.empty() ? "--cache-policy" : "--prefetch");
    return 2;
  }
  gt::sampling::CachePolicy cache_policy = gt::sampling::CachePolicy::kStatic;
  if (!cache_policy_flag.empty()) {
    try {
      cache_policy = gt::sampling::parse_cache_policy(cache_policy_flag);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "--cache-policy=%s: %s\n",
                   cache_policy_flag.c_str(), e.what());
      return 2;
    }
  }
  // Serving-flag validation, all fail-fast before any dataset generation.
  if (!serve_mode && !serving_flags_seen.empty()) {
    std::fprintf(stderr,
                 "%s requires --serve (online serving flags do nothing in "
                 "training mode)\n",
                 serving_flags_seen.front().c_str());
    return 2;
  }
  gt::serving::ServeConfig serve_config;
  if (serve_mode) {
    if (!arrival_flag.empty()) {
      try {
        serve_config.arrival.kind =
            gt::serving::parse_arrival_kind(arrival_flag);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--arrival=%s: %s\n", arrival_flag.c_str(),
                     e.what());
        return 2;
      }
    }
    if (!rate_flag.empty()) {
      char* end = nullptr;
      const double rate = std::strtod(rate_flag.c_str(), &end);
      if (end == rate_flag.c_str() || *end != '\0' || rate <= 0.0) {
        std::fprintf(stderr,
                     "--rate=%s: expected a positive arrival rate in "
                     "requests per virtual second\n",
                     rate_flag.c_str());
        return 2;
      }
      serve_config.arrival.rate_rps = rate;
    }
    if (slo_ticks < -1) {
      std::fprintf(stderr, "--slo-ticks=%ld: must be >= 0\n", slo_ticks);
      return 2;
    }
    if (slo_ticks > 0)
      serve_config.slo_ticks = static_cast<gt::serving::Tick>(slo_ticks);
    if (queue_depth == 0 || queue_depth < -1) {
      std::fprintf(stderr, "--queue-depth=%ld: capacity must be >= 1\n",
                   queue_depth);
      return 2;
    }
    if (queue_depth > 0)
      serve_config.queue_depth = static_cast<std::size_t>(queue_depth);
    if (serve_requests == 0 || serve_requests < -1) {
      std::fprintf(stderr, "--requests=%ld: must be >= 1\n", serve_requests);
      return 2;
    }
    if (serve_requests > 0)
      serve_config.requests = static_cast<std::size_t>(serve_requests);
    if (max_batch == 0 || max_batch < -1) {
      std::fprintf(stderr, "--max-batch=%ld: must be >= 1\n", max_batch);
      return 2;
    }
    if (max_batch > 0)
      serve_config.batch.max_batch_requests =
          static_cast<std::size_t>(max_batch);
    if (max_wait_ticks < -1) {
      std::fprintf(stderr, "--max-wait-ticks=%ld: must be >= 0\n",
                   max_wait_ticks);
      return 2;
    }
    if (max_wait_ticks >= 0)
      serve_config.batch.max_wait_ticks =
          static_cast<gt::serving::Tick>(max_wait_ticks);
    if (verts_per_request == 0 || verts_per_request < -1 ||
        verts_per_request > 0xffff) {
      std::fprintf(stderr,
                   "--verts-per-request=%ld: must be in [1, 65535]\n",
                   verts_per_request);
      return 2;
    }
    if (verts_per_request > 0)
      serve_config.vertices_per_request =
          static_cast<std::uint32_t>(verts_per_request);
    serve_config.arrival.seed = 42;  // matches the dataset seed below
  }
  const std::string trace_out = out_path(trace_flag, "GT_TRACE_OUT");
  const std::string metrics_out = out_path(metrics_flag, "GT_METRICS_OUT");
  const std::string bench_out = out_path(bench_flag, "GT_BENCH_OUT");
  const std::string dataset_name =
      positional.size() > 0 ? positional[0] : "products";
  const std::string model_name =
      positional.size() > 1 ? positional[1] : "GCN";
  const std::string framework =
      positional.size() > 2 ? positional[2] : "Prepro-GT";
  const int batches =
      batches_flag >= 0
          ? batches_flag
          : (positional.size() > 3 ? std::atoi(positional[3].c_str()) : 8);

  // The bench report embeds trace-derived analysis, so it needs spans too.
  if (!trace_out.empty() || !bench_out.empty())
    gt::obs::Tracer::global().enable(true);

  gt::Dataset data = gt::generate(dataset_name, 42);
  gt::models::GnnModelConfig model = model_by_name(model_name, data.spec);

  gt::ServiceOptions options;
  options.framework = framework;
  options.learning_rate = 0.1f;
  options.workers = static_cast<std::size_t>(workers);
  options.devices = static_cast<std::size_t>(devices);
  options.shard = shard;  // kNone defaults to range inside the service
  options.cache_budget_bytes = cache_budget;
  options.cache_policy = cache_policy;
  options.cache_prefetch = cache_prefetch;
  if (compute_threads > 0)
    options.compute_threads = static_cast<std::size_t>(compute_threads);
  options.fault_spec = fault_spec;  // empty falls back to GT_FAULT_SPEC
  if (max_retries >= 0)
    options.max_retries = static_cast<std::uint32_t>(max_retries);
  // Flags override the GT_TELEMETRY_* environment (same precedence as the
  // other observability outputs).
  options.telemetry = gt::obs::live::TelemetryOptions::from_env();
  if (!telemetry_flag.empty()) options.telemetry.out_dir = telemetry_flag;
  if (telemetry_interval > 0)
    options.telemetry.interval =
        static_cast<std::uint64_t>(telemetry_interval);
  if (watchdog_stall_ms >= 0)
    options.telemetry.watchdog_stall_ms =
        static_cast<std::uint64_t>(watchdog_stall_ms);
  // The service arms the ledger itself and writes kernels.json when it is
  // destroyed (flag wins over GT_KERNEL_LEDGER_OUT, like the other outs).
  options.kernel_ledger_out = out_path(ledger_flag, "GT_KERNEL_LEDGER_OUT");
  std::unique_ptr<gt::GnnService> service_ptr;
  try {
    service_ptr = std::make_unique<gt::GnnService>(std::move(data), model,
                                                   options);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  gt::GnnService& service = *service_ptr;

  if (serve_mode) {
    std::printf(
        "serving %s on %s via %s: %zu requests, %s arrivals @ %.1f rps, "
        "slo %llu ticks, queue %zu, batch <= %zu, %d worker%s\n\n",
        model_name.c_str(), dataset_name.c_str(), framework.c_str(),
        serve_config.requests,
        gt::serving::to_string(serve_config.arrival.kind),
        serve_config.arrival.rate_rps,
        static_cast<unsigned long long>(serve_config.slo_ticks),
        serve_config.queue_depth, serve_config.batch.max_batch_requests,
        workers, workers == 1 ? "" : "s");
    gt::serving::ServeReport rep;
    try {
      rep = service.serve(serve_config);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    gt::Table table({"outcome", "requests", "share"});
    const auto share = [&](std::uint64_t n) {
      return rep.arrived == 0
                 ? std::string("-")
                 : gt::Table::fmt(100.0 * static_cast<double>(n) /
                                      static_cast<double>(rep.arrived),
                                  1) + "%";
    };
    table.add_row({"completed", std::to_string(rep.completed),
                   share(rep.completed)});
    table.add_row({"shed (slo)", std::to_string(rep.shed_slo),
                   share(rep.shed_slo)});
    table.add_row({"shed (queue full)", std::to_string(rep.shed_queue_full),
                   share(rep.shed_queue_full)});
    table.add_row({"degraded", std::to_string(rep.degraded),
                   share(rep.degraded)});
    table.print();
    std::printf(
        "\nrequest latency p50/p95/p99: %.0f / %.0f / %.0f ticks\n"
        "goodput: %.1f rps (%llu of %llu requests within SLO)\n"
        "shed rate: %.1f%%  |  %llu batches, mean fill %.2f, span %llu "
        "ticks\n",
        rep.p50_latency_ticks, rep.p95_latency_ticks, rep.p99_latency_ticks,
        rep.goodput_rps,
        static_cast<unsigned long long>(rep.goodput_requests),
        static_cast<unsigned long long>(rep.arrived),
        100.0 * rep.shed_rate(),
        static_cast<unsigned long long>(rep.batches), rep.mean_batch_fill,
        static_cast<unsigned long long>(rep.span_ticks));
    if (service.telemetry() != nullptr)
      std::printf("telemetry in %s (snapshots + events.jsonl; tail with "
                  "tools/gt_top)\n",
                  service.telemetry()->options().out_dir.c_str());
    if (!trace_out.empty()) {
      if (gt::obs::Tracer::global().write_chrome_trace_file(trace_out))
        std::printf("trace written to %s\n", trace_out.c_str());
      else
        std::fprintf(stderr, "failed to write trace to %s\n",
                     trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      if (gt::obs::metrics().write_json_file(metrics_out))
        std::printf("metrics written to %s\n", metrics_out.c_str());
      else
        std::fprintf(stderr, "failed to write metrics to %s\n",
                     metrics_out.c_str());
    }
    if (!bench_out.empty()) {
      gt::obs::BenchReporter& rep_out = gt::obs::BenchReporter::global();
      rep_out.set_binary("service_cli");
      rep_out.set_iterations(static_cast<int>(rep.batches));
      rep_out.set_context("service_cli --serve",
                          model_name + " on " + dataset_name + " via " +
                              framework + ", " +
                              gt::serving::to_string(
                                  serve_config.arrival.kind) +
                              " arrivals");
      gt::obs::BenchRow row;
      row.dataset = dataset_name;
      row.framework = framework;
      row.metric = "p50 request latency";
      row.unit = "ticks";
      row.measured = rep.p50_latency_ticks;
      rep_out.add_row(row);
      row.metric = "p95 request latency";
      row.measured = rep.p95_latency_ticks;
      rep_out.add_row(row);
      row.metric = "p99 request latency";
      row.measured = rep.p99_latency_ticks;
      rep_out.add_row(row);
      row.metric = "goodput";
      row.unit = "rps";
      row.measured = rep.goodput_rps;
      rep_out.add_row(row);
      row.metric = "shed rate";
      row.unit = "fraction";
      row.measured = rep.shed_rate();
      rep_out.add_row(row);
      row.metric = "requests completed";
      row.unit = "count";
      row.measured = static_cast<double>(rep.completed);
      rep_out.add_row(row);
      row.metric = "requests shed";
      row.measured = static_cast<double>(rep.shed());
      rep_out.add_row(row);
      row.metric = "requests degraded";
      row.measured = static_cast<double>(rep.degraded);
      rep_out.add_row(row);
      row.metric = "serving batches";
      row.measured = static_cast<double>(rep.batches);
      rep_out.add_row(row);
      row.metric = "mean batch fill";
      row.unit = "fraction";
      row.measured = rep.mean_batch_fill;
      rep_out.add_row(row);
      if (rep_out.write_json_file(bench_out))
        std::printf("bench report written to %s\n", bench_out.c_str());
      else
        std::fprintf(stderr, "failed to write bench report to %s\n",
                     bench_out.c_str());
    }
    return 0;
  }

  std::printf("training %s on %s via %s (%d batches of %zu, %d worker%s)\n",
              model_name.c_str(), dataset_name.c_str(), framework.c_str(),
              batches, options.batch_size, workers, workers == 1 ? "" : "s");
  if (devices > 1)
    std::printf("modeled multi-device: %d devices, %s sharding\n", devices,
                gt::frameworks::to_string(
                    shard == gt::frameworks::ShardStrategy::kNone
                        ? gt::frameworks::ShardStrategy::kRange
                        : shard));
  if (cache_budget > 0)
    std::printf("embedding cache: %zu bytes, %s policy%s\n", cache_budget,
                gt::sampling::to_string(cache_policy),
                cache_prefetch ? ", prefetch on" : "");
  std::printf("\n");

  gt::Table table({"batch", "loss", "kernel us", "preproc us", "e2e us",
                   "peak mem", "arena peak", "placement L0"});
  std::vector<double> e2e_us, losses, arena_peaks, arena_allocs;
  std::vector<double> host_prep_us, host_exec_us;
  std::vector<double> group_makespans, comm_us;
  double comm_bytes = 0.0, comm_steps = 0.0, collectives = 0.0;
  const std::vector<gt::frameworks::RunReport> reports =
      service.train_batches(static_cast<std::size_t>(batches));
  std::size_t degraded_batches = 0;
  std::uint64_t recovery_retries = 0;
  for (std::size_t b = 0; b < reports.size(); ++b) {
    const gt::frameworks::RunReport& r = reports[b];
    recovery_retries += r.retries;
    if (r.failed) {
      ++degraded_batches;
      table.add_row({std::to_string(b), "degraded: " + r.failed_reason});
      continue;  // the service already moved on; so does the table
    }
    if (r.oom) {
      table.add_row({std::to_string(b), "OOM: " + r.oom_what});
      break;
    }
    e2e_us.push_back(r.end_to_end_us);
    losses.push_back(r.loss);
    arena_peaks.push_back(static_cast<double>(r.arena_peak_bytes));
    arena_allocs.push_back(static_cast<double>(r.arena_allocations));
    host_prep_us.push_back(r.host_prepare_us);
    host_exec_us.push_back(r.host_execute_us);
    if (r.devices > 1) {
      group_makespans.push_back(r.group_makespan_us);
      comm_us.push_back(r.comm_us);
      comm_bytes += static_cast<double>(r.comm_bytes);
      comm_steps += static_cast<double>(r.comm_steps);
      collectives += static_cast<double>(r.collectives);
    }
    table.add_row({std::to_string(b), gt::Table::fmt(r.loss, 4),
                   gt::Table::fmt(r.kernel_total_us, 1),
                   gt::Table::fmt(r.preproc_makespan_us, 1),
                   gt::Table::fmt(r.end_to_end_us, 1),
                   gt::Table::fmt_bytes(r.peak_memory_bytes),
                   gt::Table::fmt_bytes(r.arena_peak_bytes),
                   r.layer_comb_first_fwd[0] ? "comb-first" : "agg-first"});
  }
  table.print();
  const double accuracy = service.evaluate(2);
  std::printf("\nheld-out accuracy: %.1f%% (chance %.1f%%)\n",
              100.0 * accuracy, 100.0 / model.output_dim);

  if (service.telemetry() != nullptr)
    std::printf("telemetry in %s (snapshots + events.jsonl; tail with "
                "tools/gt_top)\n",
                service.telemetry()->options().out_dir.c_str());

  if (!trace_out.empty()) {
    if (gt::obs::Tracer::global().write_chrome_trace_file(trace_out))
      std::printf("trace written to %s (load in chrome://tracing)\n",
                  trace_out.c_str());
    else
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    if (gt::obs::metrics().write_json_file(metrics_out))
      std::printf("metrics written to %s\n", metrics_out.c_str());
    else
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_out.c_str());
  }
  if (!bench_out.empty()) {
    gt::obs::BenchReporter& rep = gt::obs::BenchReporter::global();
    rep.set_binary("service_cli");
    rep.set_iterations(batches);
    rep.set_context("service_cli",
                    model_name + " on " + dataset_name + " via " + framework);
    {
      gt::obs::BenchRow row;
      row.metric = "mean batch e2e";
      row.dataset = dataset_name;
      row.framework = framework;
      row.unit = "us";
      row.measured = gt::mean(e2e_us);
      rep.add_row(row);
      row.metric = "final batch loss";
      row.unit = "loss";
      row.measured = losses.empty() ? 0.0 : losses.back();
      rep.add_row(row);
      row.metric = "held-out accuracy";
      row.unit = "fraction";
      row.measured = accuracy;
      rep.add_row(row);
      row.metric = "arena peak";
      row.unit = "bytes";
      row.measured = arena_peaks.empty()
                         ? 0.0
                         : *std::max_element(arena_peaks.begin(),
                                             arena_peaks.end());
      rep.add_row(row);
      row.metric = "arena allocations per batch";
      row.unit = "count";
      row.measured = gt::mean(arena_allocs);
      rep.add_row(row);
      // Real host time (steady_clock), not simulated: varies with machine
      // load and --compute-threads, unlike every row above.
      row.metric = "mean host prepare wall";
      row.unit = "us";
      row.measured = gt::mean(host_prep_us);
      rep.add_row(row);
      row.metric = "mean host execute wall";
      row.unit = "us";
      row.measured = gt::mean(host_exec_us);
      rep.add_row(row);
      row.metric = "degraded batches";
      row.unit = "count";
      row.measured = static_cast<double>(degraded_batches);
      rep.add_row(row);
      row.metric = "recovery retries";
      row.unit = "count";
      row.measured = static_cast<double>(recovery_retries);
      rep.add_row(row);
      if (!group_makespans.empty()) {
        // Multi-device rows: the modeled group timeline and the collective
        // traffic it absorbed (DESIGN.md §14).
        row.metric = "devices";
        row.unit = "count";
        row.measured = static_cast<double>(devices);
        rep.add_row(row);
        row.metric = "mean group makespan";
        row.unit = "us";
        row.measured = gt::mean(group_makespans);
        rep.add_row(row);
        row.metric = "mean collective comm";
        row.unit = "us";
        row.measured = gt::mean(comm_us);
        rep.add_row(row);
        row.metric = "collective wire bytes";
        row.unit = "bytes";
        row.measured = comm_bytes;
        rep.add_row(row);
        row.metric = "collective steps";
        row.unit = "count";
        row.measured = comm_steps;
        rep.add_row(row);
        row.metric = "collectives priced";
        row.unit = "count";
        row.measured = collectives;
        rep.add_row(row);
      }
      if (cache_budget > 0) {
        // Embedding cache rows (DESIGN.md §15), read back from the
        // committed per-tier counters in the metrics registry.
        gt::obs::MetricsRegistry& m = gt::obs::metrics();
        const auto count = [&m](const char* name) {
          return static_cast<double>(m.counter(name).value());
        };
        row.metric = "cache hit rate";
        row.unit = "fraction";
        row.measured = m.gauge("embedding_cache.hit_rate").value();
        rep.add_row(row);
        row.metric = "cache static hits";
        row.unit = "count";
        row.measured = count("cache.static.hits");
        rep.add_row(row);
        row.metric = "cache dynamic hits";
        row.unit = "count";
        row.measured = count("cache.dynamic.hits");
        rep.add_row(row);
        row.metric = "cache prefetch hits";
        row.unit = "count";
        row.measured = count("cache.prefetch.hits");
        rep.add_row(row);
        row.metric = "cache misses";
        row.unit = "count";
        row.measured = count("cache.misses");
        rep.add_row(row);
        row.metric = "cache evictions";
        row.unit = "count";
        row.measured = count("cache.evictions");
        rep.add_row(row);
        row.metric = "cache ring chunks";
        row.unit = "count";
        row.measured = count("cache.ring.chunks");
        rep.add_row(row);
      }
    }
    if (rep.write_json_file(bench_out))
      std::printf("bench report written to %s\n", bench_out.c_str());
    else
      std::fprintf(stderr, "failed to write bench report to %s\n",
                   bench_out.c_str());
  }
  return 0;
}
