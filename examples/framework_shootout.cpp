// Framework shootout: run one identical training batch through every
// framework backend on a heavy-feature workload and compare the Nsight-
// style kernel profile and end-to-end latency — a one-screen miniature of
// the paper's Figs 15 and 19.
//
//   $ ./examples/framework_shootout [dataset]
#include <cstdio>
#include <string>

#include "core/graphtensor.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "wiki-talk";
  gt::Dataset data = gt::generate(dataset_name, /*seed=*/42);
  gt::models::GnnModelConfig model =
      gt::models::ngcf(data.spec.hidden_dim, data.spec.output_dim);

  gt::Table table({"framework", "loss", "kernel us", "translate us",
                   "s2dense us", "preproc us", "end-to-end us", "peak mem"});
  for (const auto& name : gt::frameworks::framework_names()) {
    gt::models::ModelParams params(model, data.spec.feature_dim, 7);
    auto fw = gt::frameworks::make_framework(name);
    gt::frameworks::BatchSpec spec;
    spec.batch_size = 150;
    spec.order = name == "Dynamic-GT" || name == "Prepro-GT"
                     ? gt::frameworks::OrderPolicy::kDynamic
                     : gt::frameworks::OrderPolicy::kAggregationFirst;
    gt::frameworks::RunReport r = fw->run_batch(data, model, params, spec);
    if (r.oom) {
      table.add_row({name, "OOM", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    using gt::gpusim::KernelCategory;
    table.add_row(
        {name, gt::Table::fmt(r.loss, 4), gt::Table::fmt(r.kernel_total_us, 1),
         gt::Table::fmt(r.kernel_us(KernelCategory::kFormatTranslate), 1),
         gt::Table::fmt(r.kernel_us(KernelCategory::kSparse2Dense), 1),
         gt::Table::fmt(r.preproc_makespan_us, 1),
         gt::Table::fmt(r.end_to_end_us, 1),
         gt::Table::fmt_bytes(r.peak_memory_bytes)});
  }
  std::printf("one %s training batch (NGCF, %u-dim features):\n\n",
              dataset_name.c_str(), data.spec.feature_dim);
  table.print();
  std::printf(
      "\nSame loss across rows = same math; the columns differ because the\n"
      "approaches schedule it differently (translate = Graph-approach,\n"
      "s2dense = DL-approach, neither = NAPA).\n");
  return 0;
}
