// Recommendation-system scenario (the paper's NGCF motivation): train
// neural graph collaborative filtering on a bipartite commerce graph
// (scaled gowalla) and inspect how dynamic kernel placement behaves on a
// heavy-feature, similarity-weighted model.
//
//   $ ./examples/recommendation
#include <cstdio>

#include "core/graphtensor.hpp"
#include "frameworks/graphtensor.hpp"

int main() {
  gt::Dataset data = gt::generate("gowalla", /*seed=*/42);
  std::printf(
      "gowalla (user-item interactions): %u vertices, %llu edges, "
      "%u-dim features (heavy)\n",
      data.coo.num_vertices,
      static_cast<unsigned long long>(data.coo.num_edges()),
      data.spec.feature_dim);

  // NGCF: similarity edge weights (SDDMM dot products) applied to a mean
  // aggregation — exactly the mode configuration of paper Algorithm 10.
  gt::models::GnnModelConfig ngcf =
      gt::NapaProgram("NGCF")
          .aggregate(gt::kernels::AggMode::kMean)
          .edge_weight(gt::kernels::EdgeWeightMode::kDot)
          .layers(2)
          .hidden(data.spec.hidden_dim)
          .classes(2)  // interact / not-interact propensity head
          .build();

  gt::frameworks::GraphTensorFramework framework(
      gt::frameworks::GraphTensorFramework::Variant::kDynamic);
  gt::models::ModelParams params(ngcf, data.spec.feature_dim, 7);

  gt::frameworks::BatchSpec spec;
  spec.batch_size = 128;
  spec.order = gt::frameworks::OrderPolicy::kDynamic;
  spec.learning_rate = 0.05f;

  std::printf("\n%-6s %-9s %-12s %-12s %s\n", "batch", "loss", "kernels(us)",
              "e2e(us)", "placement per layer (fwd)");
  for (std::uint64_t b = 0; b < 8; ++b) {
    spec.batch_index = b;
    gt::frameworks::RunReport r =
        framework.run_batch(data, ngcf, params, spec);
    std::printf("%-6llu %-9.4f %-12.1f %-12.1f L0=%s L1=%s%s\n",
                static_cast<unsigned long long>(b), r.loss,
                r.kernel_total_us, r.end_to_end_us,
                r.layer_comb_first_fwd[0] ? "comb-first" : "agg-first",
                r.layer_comb_first_fwd[1] ? "comb-first" : "agg-first",
                framework.cost_model().fitted() ? "  [cost model fitted]"
                                                : "  [exploring]");
  }
  std::printf(
      "\nDKP cost model: %zu samples, mean relative error %.1f%% "
      "(paper reports 12.5%%)\n",
      framework.cost_model().sample_count(),
      100.0 * framework.cost_model().mean_relative_error());
  return 0;
}
