// Quickstart: assemble a GNN with the NAPA program builder, train it with
// GraphTensor's full pipeline (Dynamic kernel placement + service-wide
// tensor scheduling), and evaluate.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/graphtensor.hpp"

int main() {
  // 1. Pick a workload from the Table II catalog (scaled ogbn-products).
  gt::Dataset data = gt::generate("products", /*seed=*/42);
  std::printf("dataset %s: %u vertices, %llu edges, %u-dim features\n",
              data.spec.name.c_str(), data.coo.num_vertices,
              static_cast<unsigned long long>(data.coo.num_edges()),
              data.spec.feature_dim);

  // 2. Describe the model by configuring the NAPA primitive modes
  //    (paper Algorithm 10): GCN = mean aggregation, no edge weighting.
  gt::models::GnnModelConfig model =
      gt::NapaProgram("GCN")
          .aggregate(gt::kernels::AggMode::kMean)
          .edge_weight(gt::kernels::EdgeWeightMode::kNone)
          .layers(2)
          .hidden(data.spec.hidden_dim)
          .classes(data.spec.output_dim)
          .build();

  // 3. Train with the full GraphTensor stack.
  gt::ServiceOptions options;
  options.framework = "Prepro-GT";
  options.learning_rate = 0.1f;
  gt::GnnService service(std::move(data), model, options);

  std::printf("\ntraining on %s:\n", service.framework_name().c_str());
  for (int epoch = 0; epoch < 3; ++epoch) {
    gt::EpochStats stats = service.train_epoch(8);
    std::printf(
        "  epoch %d: loss %.4f -> %.4f | batch end-to-end %.1f us "
        "(GPU kernels %.1f us)\n",
        epoch, stats.first_loss, stats.last_loss, stats.mean_end_to_end_us,
        stats.mean_kernel_us);
  }

  // 4. Evaluate on held-out batches.
  std::printf("\nheld-out accuracy: %.1f%% (%u classes, chance %.1f%%)\n",
              100.0 * service.evaluate(4), model.output_dim,
              100.0 / model.output_dim);
  return 0;
}
