// Node-classification scenario: 2-layer GCN on a citation graph (scaled
// ogbn-citation2), trained until held-out accuracy clears chance. Shows the
// library used as a plain GNN trainer, with the framework backend selected
// at runtime.
//
//   $ ./examples/node_classification [framework]
#include <cstdio>
#include <string>

#include "core/graphtensor.hpp"

int main(int argc, char** argv) {
  const std::string backend = argc > 1 ? argv[1] : "Dynamic-GT";

  gt::ServiceOptions options;
  options.framework = backend;
  options.batch_size = 128;
  options.learning_rate = 0.3f;

  gt::GnnService service(gt::generate("citation2", /*seed=*/42),
                         gt::models::gcn(/*hidden=*/8, /*out=*/2), options);

  std::printf("node classification on citation2 via %s\n", backend.c_str());
  std::printf("initial held-out accuracy: %.1f%%\n",
              100.0 * service.evaluate(2));

  for (int round = 1; round <= 3; ++round) {
    gt::EpochStats stats = service.train_epoch(10);
    std::printf("round %d: mean loss %.4f, accuracy %.1f%%\n", round,
                stats.mean_loss, 100.0 * service.evaluate(2));
  }

  const double final_acc = service.evaluate(4);
  std::printf("final accuracy: %.1f%% (chance 50.0%%) -> %s\n",
              100.0 * final_acc,
              final_acc > 0.5 ? "learned signal" : "no better than chance");
  return final_acc > 0.5 ? 0 : 1;
}
