#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gt {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Cdf, MonotoneAndBounded) {
  std::vector<double> values{1, 2, 2, 3, 10};
  std::vector<double> at{0, 1, 2, 5, 10, 20};
  auto cdf = empirical_cdf(values, at);
  ASSERT_EQ(cdf.size(), at.size());
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.2);
  EXPECT_DOUBLE_EQ(cdf[2], 0.6);
  EXPECT_DOUBLE_EQ(cdf[3], 0.8);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
  EXPECT_DOUBLE_EQ(cdf[5], 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(Geomean, Known) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Mean, Known) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Histogram, CountsSumToN) {
  std::vector<double> v{0.1, 0.5, 0.9, 1.5, 2.5, 2.9};
  auto h = histogram(v, 3);
  ASSERT_EQ(h.size(), 3u);
  std::size_t total = 0;
  for (const auto& [edge, count] : h) total += count;
  EXPECT_EQ(total, v.size());
  // Max value lands in the last bucket.
  EXPECT_GE(h.back().second, 1u);
}

}  // namespace
}  // namespace gt
