#include "util/discrete_event.hpp"

#include <gtest/gtest.h>

namespace gt {
namespace {

TEST(EventSim, SerialChain) {
  EventSim sim;
  auto cpu = sim.add_resource("cpu", 1);
  auto a = sim.add_task("a", 10.0, cpu);
  auto b = sim.add_task("b", 5.0, cpu, {a});
  auto c = sim.add_task("c", 2.0, cpu, {b});
  auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.makespan, 17.0);
  EXPECT_DOUBLE_EQ(r.start_of(a), 0.0);
  EXPECT_DOUBLE_EQ(r.start_of(b), 10.0);
  EXPECT_DOUBLE_EQ(r.start_of(c), 15.0);
}

TEST(EventSim, ParallelWithCapacity) {
  EventSim sim;
  auto cpu = sim.add_resource("cpu", 2);
  for (int i = 0; i < 4; ++i) sim.add_task("t", 10.0, cpu);
  auto r = sim.run();
  // 4 tasks, 2 at a time: 2 waves of 10.
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);
}

TEST(EventSim, IndependentResourcesOverlap) {
  EventSim sim;
  auto cpu = sim.add_resource("cpu", 1);
  auto pcie = sim.add_resource("pcie", 1);
  sim.add_task("compute", 10.0, cpu);
  sim.add_task("copy", 8.0, pcie);
  auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(EventSim, SerialGroupExcludesOverlap) {
  EventSim sim;
  auto cpu = sim.add_resource("cpu", 4);
  auto grp = sim.add_serial_group();
  for (int i = 0; i < 3; ++i) sim.add_task("h", 5.0, cpu, {}, grp);
  auto r = sim.run();
  // Plenty of cores, but the group serializes.
  EXPECT_DOUBLE_EQ(r.makespan, 15.0);
}

TEST(EventSim, BarrierTaskHasNoResource) {
  EventSim sim;
  auto cpu = sim.add_resource("cpu", 2);
  auto a = sim.add_task("a", 4.0, cpu);
  auto b = sim.add_task("b", 6.0, cpu);
  auto barrier = sim.add_task("barrier", 0.0, kNoResource, {a, b});
  auto c = sim.add_task("c", 1.0, cpu, {barrier});
  auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.start_of(c), 6.0);
  EXPECT_DOUBLE_EQ(r.makespan, 7.0);
}

TEST(EventSim, PriorityBreaksTies) {
  EventSim sim;
  auto cpu = sim.add_resource("cpu", 1);
  auto low = sim.add_task("low", 5.0, cpu, {}, kNoGroup, 10);
  auto high = sim.add_task("high", 5.0, cpu, {}, kNoGroup, 0);
  auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.start_of(high), 0.0);
  EXPECT_DOUBLE_EQ(r.start_of(low), 5.0);
}

TEST(EventSim, ResourceBusyAccounting) {
  EventSim sim;
  auto cpu = sim.add_resource("cpu", 2);
  sim.add_task("a", 3.0, cpu);
  sim.add_task("b", 4.0, cpu);
  auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.resource_busy[cpu], 7.0);
}

TEST(EventSim, RejectsBadInput) {
  EventSim sim;
  EXPECT_THROW(sim.add_resource("x", 0), std::invalid_argument);
  auto cpu = sim.add_resource("cpu", 1);
  EXPECT_THROW(sim.add_task("t", -1.0, cpu), std::invalid_argument);
  EXPECT_THROW(sim.add_task("t", 1.0, 99), std::out_of_range);
  EXPECT_THROW(sim.add_task("t", 1.0, cpu, {5}), std::out_of_range);
}

TEST(EventSim, DiamondDependency) {
  EventSim sim;
  auto cpu = sim.add_resource("cpu", 4);
  auto a = sim.add_task("a", 2.0, cpu);
  auto b = sim.add_task("b", 3.0, cpu, {a});
  auto c = sim.add_task("c", 5.0, cpu, {a});
  auto d = sim.add_task("d", 1.0, cpu, {b, c});
  auto r = sim.run();
  EXPECT_DOUBLE_EQ(r.start_of(d), 7.0);
  EXPECT_DOUBLE_EQ(r.makespan, 8.0);
}

TEST(EventSim, ManyTasksDeterministic) {
  auto build = [] {
    EventSim sim;
    auto cpu = sim.add_resource("cpu", 3);
    std::vector<SimTaskId> prev;
    for (int layer = 0; layer < 5; ++layer) {
      std::vector<SimTaskId> cur;
      for (int i = 0; i < 7; ++i)
        cur.push_back(sim.add_task("t", 1.0 + i, cpu, prev));
      prev = cur;
    }
    return sim.run().makespan;
  };
  EXPECT_DOUBLE_EQ(build(), build());
}

}  // namespace
}  // namespace gt
