#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include "util/flops.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

namespace gt {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::vector<std::future<long>> parts;
  const std::size_t chunk = 1000;
  for (std::size_t start = 0; start < data.size(); start += chunk) {
    parts.push_back(pool.submit([&data, start, chunk] {
      long s = 0;
      for (std::size_t i = start; i < start + chunk; ++i) s += data[i];
      return s;
    }));
  }
  long total = 0;
  for (auto& p : parts) total += p.get();
  EXPECT_EQ(total, 10000L * 10001L / 2L);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), 7,
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                    });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForChunkBoundariesAreDeterministic) {
  // The boundaries must be the pure ceil-division split the hand-rolled
  // fan-out loops used, so chunked algorithms keep bit-identical results.
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::array<std::size_t, 3>> seen;
  pool.parallel_for(10, 55, 4,
                    [&](std::size_t c, std::size_t lo, std::size_t hi) {
                      std::lock_guard lock(mu);
                      seen.push_back({c, lo, hi});
                    });
  std::sort(seen.begin(), seen.end());
  const std::vector<std::array<std::size_t, 3>> expected{
      {0, 10, 22}, {1, 22, 34}, {2, 34, 46}, {3, 46, 55}};
  EXPECT_EQ(seen, expected);
}

TEST(ThreadPool, ParallelForEmptyRangeRunsNothing) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, 4,
                    [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(7, 3, 4,
                    [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForClampsChunksToRangeSize) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::array<std::size_t, 3>> seen;
  pool.parallel_for(0, 3, 16,
                    [&](std::size_t c, std::size_t lo, std::size_t hi) {
                      std::lock_guard lock(mu);
                      seen.push_back({c, lo, hi});
                    });
  std::sort(seen.begin(), seen.end());
  const std::vector<std::array<std::size_t, 3>> expected{
      {0, 0, 1}, {1, 1, 2}, {2, 2, 3}};
  EXPECT_EQ(seen, expected);
}

TEST(ThreadPool, ParallelForMergesWorkerFlopCounters) {
  // FlopCounter is thread-local; parallel_for must fold each chunk's delta
  // back into the calling thread's counter at join so callers observe the
  // exact serial count regardless of where chunks ran.
  ThreadPool pool(4);
  FlopCounter::instance().reset();
  FlopCounter::instance().add(5);  // pre-existing count must be preserved
  pool.parallel_for(0, 1000, 8,
                    [](std::size_t, std::size_t lo, std::size_t hi) {
                      FlopCounter::instance().add(2 * (hi - lo));
                    });
  EXPECT_EQ(FlopCounter::instance().count(), 5u + 2u * 1000u);
  FlopCounter::instance().reset();
}

TEST(ThreadPool, ParallelForRethrowsFirstChunkFailure) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(0, 8, 4,
                        [&](std::size_t c, std::size_t, std::size_t) {
                          if (c == 1) throw std::runtime_error("chunk boom");
                          ++completed;
                        }),
      std::runtime_error);
  // All other chunks still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 3);
}

}  // namespace
}  // namespace gt
