#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gt {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::vector<std::future<long>> parts;
  const std::size_t chunk = 1000;
  for (std::size_t start = 0; start < data.size(); start += chunk) {
    parts.push_back(pool.submit([&data, start, chunk] {
      long s = 0;
      for (std::size_t i = start; i < start + chunk; ++i) s += data[i];
      return s;
    }));
  }
  long total = 0;
  for (auto& p : parts) total += p.get();
  EXPECT_EQ(total, 10000L * 10001L / 2L);
}

}  // namespace
}  // namespace gt
