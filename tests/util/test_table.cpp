#include "util/table.hpp"

#include <gtest/gtest.h>

namespace gt {
namespace {

TEST(Table, FormatsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.to_string().find("| x |   |   |"), std::string::npos);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_ratio(1.5), "1.50x");
  EXPECT_EQ(Table::fmt_pct(0.421), "42.1%");
  EXPECT_EQ(Table::fmt_bytes(1536), "1.5KiB");
  EXPECT_EQ(Table::fmt_bytes(3 * 1024 * 1024), "3.0MiB");
  EXPECT_EQ(Table::fmt_count(950), "950");
  EXPECT_EQ(Table::fmt_count(1'200'000), "1.2M");
}

}  // namespace
}  // namespace gt
