#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace gt {
namespace {

TEST(Rng, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRealInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyZeroMeanUnitVar) {
  Xoshiro256 rng(99);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, JumpProducesIndependentStream) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Xoshiro256 rng(3);
  for (std::uint64_t n : {10ull, 100ull, 1000ull}) {
    auto sample = sample_without_replacement(rng, n, n / 2);
    std::unordered_set<std::uint64_t> set(sample.begin(), sample.end());
    EXPECT_EQ(set.size(), sample.size());
    EXPECT_EQ(sample.size(), n / 2);
    for (auto v : sample) EXPECT_LT(v, n);
  }
}

TEST(Rng, SampleWithoutReplacementReturnsAllWhenKGeqN) {
  Xoshiro256 rng(3);
  auto sample = sample_without_replacement(rng, 5, 9);
  EXPECT_EQ(sample.size(), 5u);
  std::unordered_set<std::uint64_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 5u);
}

TEST(Rng, DeriveSeedDistinctStreams) {
  std::unordered_set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) seeds.insert(derive_seed(42, i));
  EXPECT_EQ(seeds.size(), 100u);
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, MeanNearHalfBound) {
  const std::uint64_t bound = GetParam();
  Xoshiro256 rng(bound);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.uniform(bound));
  const double expected = static_cast<double>(bound - 1) / 2.0;
  EXPECT_NEAR(sum / n, expected, 0.05 * static_cast<double>(bound) + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 10, 100, 12345));

}  // namespace
}  // namespace gt
