#include "util/parallel.hpp"

#include <gtest/gtest.h>

namespace gt {
namespace {

std::size_t parse(const char* text, bool* valid) {
  *valid = false;
  return parse_thread_count(text, valid);
}

TEST(ParseThreadCount, AcceptsPlainIntegers) {
  bool valid = false;
  EXPECT_EQ(parse("8", &valid), 8u);
  EXPECT_TRUE(valid);
  EXPECT_EQ(parse("1", &valid), 1u);
  EXPECT_TRUE(valid);
  EXPECT_EQ(parse("64", &valid), 64u);
  EXPECT_TRUE(valid);
}

TEST(ParseThreadCount, AcceptsSurroundingWhitespace) {
  bool valid = false;
  EXPECT_EQ(parse("  8", &valid), 8u);
  EXPECT_TRUE(valid);
  EXPECT_EQ(parse("8  ", &valid), 8u);
  EXPECT_TRUE(valid);
  EXPECT_EQ(parse("\t12\n", &valid), 12u);
  EXPECT_TRUE(valid);
}

TEST(ParseThreadCount, RejectsPartiallyConsumedInput) {
  // The old strtol-based parser silently accepted "8x" as 8.
  bool valid = true;
  EXPECT_EQ(parse("8x", &valid), 0u);
  EXPECT_FALSE(valid);
  parse("4 threads", &valid);
  EXPECT_FALSE(valid);
  parse("1.5", &valid);
  EXPECT_FALSE(valid);
}

TEST(ParseThreadCount, RejectsNonNumbersAndNonPositives) {
  bool valid = true;
  parse("abc", &valid);
  EXPECT_FALSE(valid);
  parse("0", &valid);
  EXPECT_FALSE(valid);
  parse("-3", &valid);
  EXPECT_FALSE(valid);
  parse("", &valid);
  EXPECT_FALSE(valid);
  parse("   ", &valid);
  EXPECT_FALSE(valid);
  parse(nullptr, &valid);
  EXPECT_FALSE(valid);
}

TEST(ParseThreadCount, ClampsOversizedValuesToTheCeiling) {
  bool valid = false;
  EXPECT_EQ(parse("999", &valid), kMaxComputeThreads);
  EXPECT_TRUE(valid);
  EXPECT_EQ(parse("65", &valid), kMaxComputeThreads);
  EXPECT_TRUE(valid);
}

}  // namespace
}  // namespace gt
