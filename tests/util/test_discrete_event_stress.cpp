// Randomized property tests for the discrete-event list scheduler: on
// arbitrary DAGs the computed schedule must respect dependencies, resource
// capacities, serial groups, and the classic lower bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/discrete_event.hpp"
#include "util/rng.hpp"

namespace gt {
namespace {

struct RandomDag {
  EventSim sim;
  SimResourceId cpu;
  SimGroupId group;
  std::vector<SimTaskId> ids;
  std::vector<double> durations;
  std::vector<std::vector<SimTaskId>> deps;
  std::vector<bool> in_group;
  std::size_t capacity;
};

RandomDag make_dag(std::uint64_t seed, std::size_t n, std::size_t capacity) {
  Xoshiro256 rng(seed);
  RandomDag dag;
  dag.capacity = capacity;
  dag.cpu = dag.sim.add_resource("cpu", capacity);
  dag.group = dag.sim.add_serial_group();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<SimTaskId> deps;
    for (std::size_t j = 0; j < i; ++j)
      if (rng.uniform(10) == 0) deps.push_back(dag.ids[j]);
    const double dur = 1.0 + static_cast<double>(rng.uniform(20));
    const bool grouped = rng.uniform(5) == 0;
    dag.ids.push_back(dag.sim.add_task(
        "t" + std::to_string(i), dur, dag.cpu, deps,
        grouped ? dag.group : kNoGroup));
    dag.durations.push_back(dur);
    dag.deps.push_back(std::move(deps));
    dag.in_group.push_back(grouped);
  }
  return dag;
}

class EventSimStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventSimStress, ScheduleIsFeasibleAndBounded) {
  RandomDag dag = make_dag(GetParam(), 120, 3);
  SimResult r = dag.sim.run();

  double total_work = 0.0;
  for (std::size_t i = 0; i < dag.ids.size(); ++i) {
    const auto& task = r.tasks[dag.ids[i]];
    // Duration honored.
    EXPECT_NEAR(task.finish - task.start, dag.durations[i], 1e-9);
    // Dependencies honored.
    for (SimTaskId d : dag.deps[i])
      EXPECT_GE(task.start + 1e-9, r.tasks[d].finish);
    total_work += dag.durations[i];
  }

  // Resource capacity never exceeded: sweep start/finish events.
  std::vector<std::pair<double, int>> events;
  for (SimTaskId id : dag.ids) {
    events.emplace_back(r.tasks[id].start, +1);
    events.emplace_back(r.tasks[id].finish, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // finishes release before starts
            });
  int running = 0;
  for (const auto& [t, delta] : events) {
    running += delta;
    EXPECT_LE(running, static_cast<int>(dag.capacity));
    EXPECT_GE(running, 0);
  }

  // Serial group members never overlap.
  std::vector<std::pair<double, double>> grouped;
  for (std::size_t i = 0; i < dag.ids.size(); ++i)
    if (dag.in_group[i])
      grouped.emplace_back(r.tasks[dag.ids[i]].start,
                           r.tasks[dag.ids[i]].finish);
  std::sort(grouped.begin(), grouped.end());
  for (std::size_t i = 1; i < grouped.size(); ++i)
    EXPECT_GE(grouped[i].first + 1e-9, grouped[i - 1].second);

  // Lower bounds: work conservation and the critical path.
  EXPECT_GE(r.makespan + 1e-9, total_work / static_cast<double>(dag.capacity));
  std::vector<double> earliest_finish(dag.ids.size(), 0.0);
  double critical = 0.0;
  for (std::size_t i = 0; i < dag.ids.size(); ++i) {
    double ready = 0.0;
    for (SimTaskId d : dag.deps[i])
      ready = std::max(ready, earliest_finish[d]);
    earliest_finish[i] = ready + dag.durations[i];
    critical = std::max(critical, earliest_finish[i]);
  }
  EXPECT_GE(r.makespan + 1e-9, critical);

  // Upper bound (Graham's list-scheduling bound is loose; the trivial
  // serialized bound must always hold).
  EXPECT_LE(r.makespan, total_work + 1e-9);

  // Determinism.
  RandomDag dag2 = make_dag(GetParam(), 120, 3);
  EXPECT_DOUBLE_EQ(dag2.sim.run().makespan, r.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventSimStress,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gt
