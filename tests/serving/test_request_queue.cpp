// RequestQueue lifecycle (pipeline_base-style state machine) and bounded
// FIFO semantics: overflow is a shed signal, not an error, and teardown
// must leave the queue stopped and empty.
#include "serving/request_queue.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace gt::serving {
namespace {

Request req(std::uint64_t id, Tick at) {
  Request r;
  r.id = id;
  r.arrival_tick = at;
  return r;
}

TEST(RequestQueue, LifecycleHappyPath) {
  RequestQueue q(4);
  EXPECT_EQ(q.state(), Lifecycle::kInitial);
  EXPECT_FALSE(q.started());
  q.start();
  EXPECT_EQ(q.state(), Lifecycle::kStarted);
  EXPECT_TRUE(q.started());
  EXPECT_TRUE(q.running());
  q.drain();
  EXPECT_EQ(q.state(), Lifecycle::kStopped);
  EXPECT_TRUE(q.stopped());
  EXPECT_FALSE(q.running());
}

TEST(RequestQueue, PushRequiresStarted) {
  RequestQueue q(4);
  EXPECT_THROW(q.push(req(0, 0)), std::logic_error);
  q.start();
  EXPECT_TRUE(q.push(req(0, 0)));
  q.drain();
  EXPECT_THROW(q.push(req(1, 1)), std::logic_error);
}

TEST(RequestQueue, CannotRestartOrDrainFromInitial) {
  RequestQueue q(4);
  EXPECT_THROW(q.drain(), std::logic_error);  // never started
  q.start();
  EXPECT_THROW(q.start(), std::logic_error);  // double start
  q.drain();
  EXPECT_THROW(q.start(), std::logic_error);  // restart after stop
}

TEST(RequestQueue, DrainReturnsRemainingInArrivalOrderAndIsIdempotent) {
  RequestQueue q(4);
  q.start();
  q.push(req(7, 10));
  q.push(req(8, 20));
  q.push(req(9, 30));
  (void)q.pop();  // 7 boards a batch
  const auto remaining = q.drain();
  ASSERT_EQ(remaining.size(), 2u);
  EXPECT_EQ(remaining[0].id, 8u);
  EXPECT_EQ(remaining[1].id, 9u);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.drain().empty());  // second drain: stopped, no-op
}

TEST(RequestQueue, OverflowShedsWithoutThrowing) {
  RequestQueue q(2);
  q.start();
  EXPECT_TRUE(q.push(req(0, 0)));
  EXPECT_TRUE(q.push(req(1, 1)));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(req(2, 2)));  // shed, queue unchanged
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front().id, 0u);
}

TEST(RequestQueue, FifoOrderAndPeakTracking) {
  RequestQueue q(8);
  q.start();
  for (std::uint64_t i = 0; i < 5; ++i) q.push(req(i, i * 10));
  EXPECT_EQ(q.peak_size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(q.pop().id, i);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peak_size(), 5u);  // peak survives the drawdown
}

TEST(RequestQueue, ZeroCapacityShedsEverything) {
  RequestQueue q(0);
  q.start();
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(req(0, 0)));
}

}  // namespace
}  // namespace gt::serving
