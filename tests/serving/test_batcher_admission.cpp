// DynamicBatcher close policy + SLO admission predicate + ServePlanner:
// every decision here is pure arithmetic over virtual ticks, so the tests
// pin exact values, not ranges.
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "serving/admission.hpp"
#include "serving/batcher.hpp"
#include "serving/planner.hpp"

namespace gt::serving {
namespace {

Request req(std::uint64_t id, Tick at) {
  Request r;
  r.id = id;
  r.arrival_tick = at;
  return r;
}

TEST(DynamicBatcher, CloseTickPolicy) {
  BatchPolicy policy;
  policy.max_batch_requests = 3;
  policy.max_wait_ticks = 100;
  DynamicBatcher b(policy);
  RequestQueue q(8);
  q.start();
  q.push(req(0, 10));

  // Waiting on more arrivals: close at oldest + max_wait, or when the
  // server lane frees — whichever is later.
  EXPECT_EQ(b.close_tick(q, /*server_free=*/5, /*more=*/true), 110u);
  EXPECT_EQ(b.close_tick(q, /*server_free=*/500, /*more=*/true), 500u);
  // Arrival stream exhausted: flush as soon as the lane frees.
  EXPECT_EQ(b.close_tick(q, /*server_free=*/5, /*more=*/false), 5u);
  // Size-triggered: a full head batch goes as soon as the lane frees.
  q.push(req(1, 20));
  q.push(req(2, 30));
  EXPECT_EQ(b.close_tick(q, /*server_free=*/5, /*more=*/true), 5u);
}

TEST(DynamicBatcher, TakeCapsAtMaxBatchInArrivalOrder) {
  BatchPolicy policy;
  policy.max_batch_requests = 2;
  DynamicBatcher b(policy);
  RequestQueue q(8);
  q.start();
  for (std::uint64_t i = 0; i < 5; ++i) q.push(req(i, i));
  std::vector<Request> out;
  b.take(q, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 0u);
  EXPECT_EQ(out[1].id, 1u);
  EXPECT_EQ(q.size(), 3u);
}

TEST(Admission, PredictedLatencyCountsWholeBatchesAhead) {
  AdmissionController a(/*slo_ticks=*/1'000, /*max_batch_requests=*/4);
  a.set_estimate(100);
  // Empty queue, free lane: the request rides the next batch.
  EXPECT_EQ(a.predicted_latency(/*now=*/0, /*server_free=*/0, 0), 100u);
  // A full batch queued ahead: two batch services before completion.
  EXPECT_EQ(a.predicted_latency(0, 0, 4), 200u);
  EXPECT_EQ(a.predicted_latency(0, 0, 8), 300u);
  // Busy lane adds the wait until it frees.
  EXPECT_EQ(a.predicted_latency(/*now=*/50, /*server_free=*/80, 0), 130u);
  // A lane already free adds nothing.
  EXPECT_EQ(a.predicted_latency(/*now=*/90, /*server_free=*/80, 0), 100u);
}

TEST(Admission, PredicateShedsPastTheDeadline) {
  AdmissionController a(/*slo_ticks=*/250, /*max_batch_requests=*/4);
  a.set_estimate(100);
  EXPECT_TRUE(a.admit(0, 0, 0));    // 100 <= 250
  EXPECT_TRUE(a.admit(0, 0, 4));    // 200 <= 250
  EXPECT_FALSE(a.admit(0, 0, 8));   // 300 > 250
  EXPECT_FALSE(a.admit(0, 260, 0)); // lane busy past the whole deadline
}

TEST(Admission, ZeroSloDisablesShedding) {
  AdmissionController a(/*slo_ticks=*/0, /*max_batch_requests=*/1);
  a.set_estimate(1'000'000);
  EXPECT_TRUE(a.admit(0, 1'000'000'000, 1'000));
}

ServeConfig planner_config() {
  ServeConfig cfg;
  cfg.arrival.kind = ArrivalKind::kPoisson;
  cfg.arrival.rate_rps = 10'000.0;  // mean gap 100 ticks
  cfg.arrival.seed = 7;
  cfg.requests = 40;
  cfg.queue_depth = 64;
  cfg.batch.max_batch_requests = 4;
  cfg.batch.max_wait_ticks = 300;
  return cfg;
}

TEST(ServePlanner, PlanReplaysBitIdentically) {
  const ServeConfig cfg = planner_config();
  ServePlanner a(cfg, /*est_batch_ticks=*/500);
  ServePlanner b(cfg, /*est_batch_ticks=*/500);
  while (true) {
    const auto ba = a.next();
    const auto bb = b.next();
    ASSERT_EQ(ba.has_value(), bb.has_value());
    if (!ba) break;
    EXPECT_EQ(ba->ordinal, bb->ordinal);
    EXPECT_EQ(ba->form_tick, bb->form_tick);
    EXPECT_EQ(ba->request_ids, bb->request_ids);
    EXPECT_EQ(ba->total_vertices, bb->total_vertices);
  }
  a.finish();
  b.finish();
  EXPECT_EQ(a.records(), b.records());
}

TEST(ServePlanner, EveryArrivalGetsExactlyOneOutcome) {
  ServeConfig cfg = planner_config();
  cfg.slo_ticks = 900;
  ServePlanner p(cfg, /*est_batch_ticks=*/400);
  std::uint64_t boarded = 0;
  while (const auto b = p.next()) {
    EXPECT_GE(b->request_ids.size(), 1u);
    EXPECT_LE(b->request_ids.size(), cfg.batch.max_batch_requests);
    boarded += b->request_ids.size();
  }
  p.finish();
  EXPECT_EQ(p.arrived(), cfg.requests);
  EXPECT_EQ(p.admitted() + p.shed_slo() + p.shed_queue_full(), p.arrived());
  EXPECT_EQ(boarded, p.admitted());
  EXPECT_EQ(p.queue_state(), Lifecycle::kStopped);
  // Shed records are final; boarded requests carry their batch ordinal.
  for (const RequestRecord& r : p.records()) {
    if (r.outcome == Outcome::kShedSlo || r.outcome == Outcome::kShedQueueFull)
      EXPECT_EQ(r.batch, RequestRecord::kNoBatch);
    else
      EXPECT_NE(r.batch, RequestRecord::kNoBatch);
  }
}

TEST(ServePlanner, TinySloShedsEverything) {
  ServeConfig cfg = planner_config();
  cfg.slo_ticks = 10;  // below one batch estimate: nothing can make it
  ServePlanner p(cfg, /*est_batch_ticks=*/500);
  EXPECT_FALSE(p.next().has_value());
  p.finish();
  EXPECT_EQ(p.shed_slo(), cfg.requests);
  EXPECT_EQ(p.admitted(), 0u);
}

TEST(ServePlanner, BoundedQueueShedsOverflowWhenBatchesCannotClose) {
  ServeConfig cfg = planner_config();
  cfg.slo_ticks = 0;          // admission never sheds
  cfg.queue_depth = 2;        // but the queue is tiny
  cfg.batch.max_batch_requests = 100;  // and nothing closes a batch early
  cfg.batch.max_wait_ticks = 100'000'000;
  ServePlanner p(cfg, /*est_batch_ticks=*/1);
  const auto b = p.next();  // flush once arrivals are exhausted
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->request_ids.size(), 2u);
  EXPECT_FALSE(p.next().has_value());
  p.finish();
  EXPECT_EQ(p.admitted(), 2u);
  EXPECT_EQ(p.shed_queue_full(), cfg.requests - 2);
}

TEST(ServePlanner, MaxWaitClosesPartialBatches) {
  ServeConfig cfg = planner_config();
  cfg.arrival.rate_rps = 1'000.0;  // mean gap 1000 ticks
  cfg.batch.max_batch_requests = 8;
  cfg.batch.max_wait_ticks = 10;   // far below the mean gap
  ServePlanner p(cfg, /*est_batch_ticks=*/5);
  std::size_t batches = 0;
  while (const auto b = p.next()) {
    ++batches;
    EXPECT_LT(b->request_ids.size(), 8u);  // deadline fires before fill
  }
  p.finish();
  EXPECT_GE(batches, cfg.requests / 2);
}

TEST(ServePlanner, ShutdownDrainsQueuedRequestsAsShedShutdown) {
  ServeConfig cfg = planner_config();
  ServePlanner p(cfg, /*est_batch_ticks=*/500);
  ASSERT_TRUE(p.next().has_value());  // plan one batch, then abandon
  p.shutdown();
  EXPECT_EQ(p.queue_state(), Lifecycle::kStopped);
  std::uint64_t drained = 0;
  for (const RequestRecord& r : p.records())
    if (r.batch == RequestRecord::kNoBatch &&
        r.outcome == Outcome::kShedShutdown)
      ++drained;
  EXPECT_EQ(p.shed_shutdown(), drained - (cfg.requests - p.arrived()));
  p.shutdown();  // idempotent
}

TEST(ServePlanner, RejectsUnusableConfig) {
  ServeConfig cfg = planner_config();
  cfg.batch.max_batch_requests = 0;
  EXPECT_THROW(ServePlanner(cfg, 1), std::invalid_argument);
  cfg = planner_config();
  cfg.vertices_per_request = 0;
  EXPECT_THROW(ServePlanner(cfg, 1), std::invalid_argument);
}

}  // namespace
}  // namespace gt::serving
