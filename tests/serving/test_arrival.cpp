// TrafficGenerator: the open-loop arrival schedules must be seeded,
// strictly increasing, prefix-stable, and bit-identical across replays —
// every serving determinism guarantee starts here.
#include "serving/arrival.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace gt::serving {
namespace {

TEST(Arrival, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_arrival_kind("poisson"), ArrivalKind::kPoisson);
  EXPECT_EQ(parse_arrival_kind("bursty"), ArrivalKind::kBursty);
  EXPECT_EQ(parse_arrival_kind("diurnal"), ArrivalKind::kDiurnal);
  EXPECT_STREQ(to_string(ArrivalKind::kPoisson), "poisson");
  EXPECT_STREQ(to_string(ArrivalKind::kBursty), "bursty");
  EXPECT_STREQ(to_string(ArrivalKind::kDiurnal), "diurnal");
  EXPECT_THROW(parse_arrival_kind("uniform"), std::invalid_argument);
}

TEST(Arrival, RejectsUnusableConfigs) {
  ArrivalConfig bad;
  bad.rate_rps = 0.0;
  EXPECT_THROW(TrafficGenerator{bad}, std::invalid_argument);
  bad = {};
  bad.rate_rps = -10.0;
  EXPECT_THROW(TrafficGenerator{bad}, std::invalid_argument);
  bad = {};
  bad.kind = ArrivalKind::kBursty;
  bad.burst_factor = 0.5;
  EXPECT_THROW(TrafficGenerator{bad}, std::invalid_argument);
  bad = {};
  bad.kind = ArrivalKind::kDiurnal;
  bad.diurnal_depth = 1.0;  // thinning needs depth < 1
  EXPECT_THROW(TrafficGenerator{bad}, std::invalid_argument);
}

TEST(Arrival, ReplaysBitIdentically) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate_rps = 5'000.0;
    cfg.seed = 1234;
    const auto a = TrafficGenerator(cfg).generate(256);
    const auto b = TrafficGenerator(cfg).generate(256);
    EXPECT_EQ(a, b) << to_string(kind);
  }
}

TEST(Arrival, SeedChangesTheSchedule) {
  ArrivalConfig cfg;
  cfg.rate_rps = 5'000.0;
  cfg.seed = 1;
  const auto a = TrafficGenerator(cfg).generate(64);
  cfg.seed = 2;
  const auto b = TrafficGenerator(cfg).generate(64);
  EXPECT_NE(a, b);
}

TEST(Arrival, StrictlyIncreasingTicks) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate_rps = 50'000.0;  // high rate stresses the >= 1 tick gap floor
    const auto ticks = TrafficGenerator(cfg).generate(512);
    ASSERT_EQ(ticks.size(), 512u);
    for (std::size_t i = 1; i < ticks.size(); ++i)
      ASSERT_LT(ticks[i - 1], ticks[i]) << to_string(kind) << " @ " << i;
  }
}

// generate(n) must be a prefix of generate(m > n): the planner can size
// a run without perturbing the part of the schedule it already decided.
TEST(Arrival, PrefixStability) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate_rps = 2'000.0;
    const auto small = TrafficGenerator(cfg).generate(50);
    auto big = TrafficGenerator(cfg).generate(200);
    big.resize(50);
    EXPECT_EQ(small, big) << to_string(kind);
  }
}

TEST(Arrival, PoissonMeanRateIsRoughlyRight) {
  ArrivalConfig cfg;
  cfg.rate_rps = 10'000.0;  // mean gap 100 ticks
  const auto ticks = TrafficGenerator(cfg).generate(4'000);
  const double mean_gap =
      static_cast<double>(ticks.back() - ticks.front()) /
      static_cast<double>(ticks.size() - 1);
  EXPECT_GT(mean_gap, 80.0);
  EXPECT_LT(mean_gap, 120.0);
}

// The bursty process alternates dense and sparse phases: at equal mean
// rate its gap variance must dominate the Poisson baseline.
TEST(Arrival, BurstyIsBurstierThanPoisson) {
  ArrivalConfig cfg;
  cfg.rate_rps = 10'000.0;
  const auto poisson = TrafficGenerator(cfg).generate(2'000);
  cfg.kind = ArrivalKind::kBursty;
  cfg.burst_factor = 8.0;
  // Short phases so 2000 samples actually alternate burst/lull many times
  // (the defaults would keep the whole sample inside the first burst).
  cfg.burst_ticks = 1'000;
  cfg.lull_ticks = 4'000;
  const auto bursty = TrafficGenerator(cfg).generate(2'000);
  const auto gap_var = [](const std::vector<Tick>& t) {
    double mean = 0.0;
    for (std::size_t i = 1; i < t.size(); ++i)
      mean += static_cast<double>(t[i] - t[i - 1]);
    mean /= static_cast<double>(t.size() - 1);
    double var = 0.0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      const double d = static_cast<double>(t[i] - t[i - 1]) - mean;
      var += d * d;
    }
    return var / static_cast<double>(t.size() - 1);
  };
  EXPECT_GT(gap_var(bursty), 2.0 * gap_var(poisson));
}

}  // namespace
}  // namespace gt::serving
