#include "datasets/catalog.hpp"

#include <gtest/gtest.h>

namespace gt {
namespace {

TEST(Catalog, HasPaperWorkloadsInOrderPlusSocial) {
  const auto& c = catalog();
  ASSERT_EQ(c.size(), 11u);
  EXPECT_EQ(c[0].name, "products");
  EXPECT_EQ(c[4].name, "reddit2");
  EXPECT_EQ(c[5].name, "gowalla");
  EXPECT_EQ(c[9].name, "livejournal");
  // Appended after the ten paper workloads: the cache-ablation graph.
  EXPECT_EQ(c[10].name, "social");
  EXPECT_TRUE(c[10].heavy_features);
  EXPECT_GT(c[10].alpha, find_spec("livejournal").alpha);
}

TEST(Catalog, LightHeavySplitMatchesPaper) {
  for (const auto& s : catalog()) {
    if (s.heavy_features) {
      EXPECT_EQ(s.feature_dim, 544u) << s.name;  // 4353 / 8
    } else {
      EXPECT_LT(s.feature_dim, 100u) << s.name;
      EXPECT_GE(s.paper.feature_dim, 100u) << s.name;
    }
    EXPECT_EQ(s.batch_size, 300u) << s.name;  // paper §VI
    EXPECT_EQ(s.num_layers, 2u) << s.name;
  }
}

TEST(Catalog, FindSpecByName) {
  EXPECT_EQ(find_spec("wiki-talk").heavy_features, true);
  EXPECT_EQ(find_spec("products").paper.vertices, 2'000'000u);
  EXPECT_THROW(find_spec("nope"), std::out_of_range);
}

TEST(Catalog, GenerateProducesConsistentDataset) {
  Dataset d = generate("products", 42);
  EXPECT_TRUE(d.coo.valid());
  EXPECT_TRUE(d.csr.valid());
  EXPECT_EQ(d.csr.num_edges(), d.coo.num_edges());
  EXPECT_EQ(d.embeddings.num_vertices(), d.coo.num_vertices);
  EXPECT_EQ(d.embeddings.dim(), d.spec.feature_dim);
}

TEST(Catalog, GenerateIsDeterministic) {
  Dataset a = generate("gowalla", 7);
  Dataset b = generate("gowalla", 7);
  EXPECT_EQ(a.coo, b.coo);
  EXPECT_EQ(a.embeddings.value(3, 2), b.embeddings.value(3, 2));
}

TEST(Catalog, SeedsChangeGraph) {
  EXPECT_NE(generate("gowalla", 7).coo, generate("gowalla", 8).coo);
}

TEST(Catalog, RepresentativeWorkloadsExist) {
  EXPECT_FALSE(find_spec(kRepresentativeLight).heavy_features);
  EXPECT_TRUE(find_spec(kRepresentativeHeavy).heavy_features);
}

class CatalogEveryDataset
    : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogEveryDataset, GeneratesValidGraph) {
  Dataset d = generate(GetParam(), 1);
  EXPECT_TRUE(d.coo.valid());
  EXPECT_TRUE(d.csr.valid());
  EXPECT_GT(d.coo.num_edges(), 0u);
  EXPECT_GT(d.coo.num_vertices, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    All, CatalogEveryDataset,
    ::testing::Values("products", "citation2", "papers", "amazon", "reddit2",
                      "gowalla", "google", "roadnet-ca", "wiki-talk",
                      "livejournal", "social"));

}  // namespace
}  // namespace gt
