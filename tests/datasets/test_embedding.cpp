#include "datasets/embedding.hpp"

#include <gtest/gtest.h>

namespace gt {
namespace {

TEST(EmbeddingTable, Deterministic) {
  EmbeddingTable a(100, 8, 42), b(100, 8, 42);
  for (Vid v = 0; v < 100; v += 7)
    for (std::size_t c = 0; c < 8; ++c) EXPECT_EQ(a.value(v, c), b.value(v, c));
}

TEST(EmbeddingTable, SeedChangesValues) {
  EmbeddingTable a(100, 8, 42), b(100, 8, 43);
  int same = 0;
  for (Vid v = 0; v < 100; ++v)
    for (std::size_t c = 0; c < 8; ++c)
      if (a.value(v, c) == b.value(v, c)) ++same;
  EXPECT_LT(same, 5);
}

TEST(EmbeddingTable, ValuesInRange) {
  EmbeddingTable t(1000, 16, 7);
  for (Vid v = 0; v < 1000; v += 13) {
    for (std::size_t c = 0; c < 16; ++c) {
      EXPECT_GE(t.value(v, c), -1.0f);
      EXPECT_LT(t.value(v, c), 1.0f);
    }
  }
}

TEST(EmbeddingTable, GatherMatchesValue) {
  EmbeddingTable t(50, 4, 3);
  std::vector<Vid> vids{5, 0, 49, 5};
  Matrix m = t.gather(vids);
  ASSERT_EQ(m.rows(), 4u);
  ASSERT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < vids.size(); ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_EQ(m.at(r, c), t.value(vids[r], c));
  // Duplicate vids gather identical rows.
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m.at(0, c), m.at(3, c));
}

TEST(EmbeddingTable, GatherRowOutOfRangeThrows) {
  EmbeddingTable t(10, 4, 3);
  std::vector<float> row(4);
  EXPECT_THROW(t.gather_row(10, row), std::out_of_range);
}

TEST(EmbeddingTable, TableBytes) {
  EmbeddingTable t(100, 8, 1);
  EXPECT_EQ(t.table_bytes(), 100 * 8 * sizeof(float));
}

TEST(SyntheticLabel, InRangeAndDeterministic) {
  for (Vid v = 0; v < 500; ++v) {
    auto l = synthetic_label(v, 7, 11);
    EXPECT_LT(l, 7u);
    EXPECT_EQ(l, synthetic_label(v, 7, 11));
  }
}

TEST(SyntheticLabel, CoversAllClasses) {
  std::vector<int> seen(5, 0);
  for (Vid v = 0; v < 1000; ++v) ++seen[synthetic_label(v, 5, 3)];
  for (int count : seen) EXPECT_GT(count, 100);
}

}  // namespace
}  // namespace gt
