#include "datasets/generators.hpp"

#include <gtest/gtest.h>

#include "graph/degree.hpp"

namespace gt {
namespace {

TEST(Generators, PowerLawShape) {
  Coo g = generate_power_law(1000, 10000, 0.7, 1);
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.num_edges(), 10000u);
  EXPECT_EQ(g.num_vertices, 1000u);
  // Heavy tail: max in-degree far above mean.
  auto s = summarize_degrees(in_degrees(g), false);
  EXPECT_GT(s.max, 5.0 * s.mean);
  EXPECT_GT(s.stdev, s.mean);
}

TEST(Generators, PowerLawDeterministic) {
  EXPECT_EQ(generate_power_law(500, 2000, 0.7, 9),
            generate_power_law(500, 2000, 0.7, 9));
}

TEST(Generators, PowerLawNoSelfLoops) {
  Coo g = generate_power_law(200, 3000, 0.8, 2);
  for (Eid e = 0; e < g.num_edges(); ++e) EXPECT_NE(g.src[e], g.dst[e]);
}

TEST(Generators, BipartiteRespectsPartitions) {
  const Vid users = 900, items = 100;
  Coo g = generate_bipartite(users, items, 5000, 0.7, 3);
  EXPECT_TRUE(g.valid());
  // Every edge crosses the partition.
  for (Eid e = 0; e < g.num_edges(); ++e) {
    const bool src_is_user = g.src[e] < users;
    const bool dst_is_user = g.dst[e] < users;
    EXPECT_NE(src_is_user, dst_is_user);
  }
}

TEST(Generators, RoadLowDegreeVariance) {
  Coo g = generate_road(10000, 0.92, 4);
  EXPECT_TRUE(g.valid());
  auto s = summarize_degrees(in_degrees(g), false);
  EXPECT_GT(s.mean, 2.0);
  EXPECT_LT(s.mean, 4.5);
  EXPECT_LT(s.stdev, 1.5);
  EXPECT_LE(s.max, 4.0);
}

TEST(Generators, RoadIsSymmetric) {
  Coo g = generate_road(400, 1.0, 5);
  // With keep prob 1, every edge has its reverse.
  std::set<std::pair<Vid, Vid>> edges;
  for (Eid e = 0; e < g.num_edges(); ++e) edges.insert({g.src[e], g.dst[e]});
  for (const auto& [s, d] : edges)
    EXPECT_TRUE(edges.count({d, s})) << s << "->" << d;
}

TEST(Generators, RejectsDegenerateInput) {
  EXPECT_THROW(generate_power_law(1, 10, 0.7, 1), std::invalid_argument);
  EXPECT_THROW(generate_road(1, 0.9, 1), std::invalid_argument);
}

class PowerLawSkew : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawSkew, HigherAlphaMoreSkew) {
  Coo g = generate_power_law(2000, 20000, GetParam(), 6);
  auto s = summarize_degrees(in_degrees(g), false);
  // Skew grows with alpha; just check heavy tail exists for all alphas.
  EXPECT_GT(s.max, 3.0 * s.mean);
}

INSTANTIATE_TEST_SUITE_P(Alphas, PowerLawSkew,
                         ::testing::Values(0.55, 0.65, 0.75, 0.85));

}  // namespace
}  // namespace gt
