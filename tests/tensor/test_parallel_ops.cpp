// Determinism of the tiled/parallel dense kernels: the matmul family must
// return bit-identical floats for every compute-thread count and for every
// tiling, because each output element's accumulation order is fixed
// (ascending k) regardless of how row tiles are chunked across workers.
#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/flops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gt {
namespace {

/// Restore the environment/hardware thread default when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { set_compute_threads(0); }
};

Matrix rnd(std::size_t r, std::size_t c, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return Matrix::uniform(r, c, rng);
}

bool bit_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

// Shapes big enough to cross the parallel-dispatch FLOP threshold (2mkn >
// 2^18), with ragged dimensions so tile/chunk boundaries don't divide
// evenly.
constexpr std::size_t kM = 129, kK = 65, kN = 67;

TEST(ParallelOps, MatmulBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const Matrix a = rnd(kM, kK, 1), b = rnd(kK, kN, 2);
  set_compute_threads(1);
  const Matrix serial = matmul(a, b);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    set_compute_threads(threads);
    EXPECT_TRUE(bit_equal(matmul(a, b), serial)) << threads << " threads";
  }
}

TEST(ParallelOps, TransposedVariantsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const Matrix a = rnd(kK, kM, 3), b = rnd(kK, kN, 4);  // at_b: [k,m]x[k,n]
  const Matrix c = rnd(kM, kK, 5), d = rnd(kN, kK, 6);  // a_bt: [m,k]x[n,k]
  set_compute_threads(1);
  const Matrix at_b = matmul_at_b(a, b);
  const Matrix a_bt = matmul_a_bt(c, d);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    set_compute_threads(threads);
    EXPECT_TRUE(bit_equal(matmul_at_b(a, b), at_b)) << threads << " threads";
    EXPECT_TRUE(bit_equal(matmul_a_bt(c, d), a_bt)) << threads << " threads";
  }
}

TEST(ParallelOps, TiledMatmulBitIdenticalAcrossTilings) {
  // Cache-block and register-tile sizes change the loop nest, not the
  // per-element accumulation order, so every tiling gives the same bits.
  ThreadGuard guard;
  set_compute_threads(8);
  const Matrix a = rnd(kM, kK, 7), b = rnd(kK, kN, 8);
  Matrix ref(kM, kN);
  matmul_into_tiled(a, b, ref, MatmulTiling{});
  for (const std::size_t row_tile : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t block : {std::size_t{16}, std::size_t{256}}) {
      MatmulTiling tiling;
      tiling.row_tile = row_tile;
      tiling.k_block = block;
      tiling.n_block = block;
      Matrix out(kM, kN);
      matmul_into_tiled(a, b, out, tiling);
      EXPECT_TRUE(bit_equal(out, ref))
          << "row_tile " << row_tile << ", block " << block;
    }
  }
}

TEST(ParallelOps, SmallMatmulStaysBelowParallelThreshold) {
  // Tiny products run inline (the pool would cost more than the math);
  // the result must still match the multi-thread configuration bit-wise.
  ThreadGuard guard;
  const Matrix a = rnd(5, 7, 9), b = rnd(7, 3, 10);
  set_compute_threads(1);
  const Matrix serial = matmul(a, b);
  set_compute_threads(8);
  EXPECT_TRUE(bit_equal(matmul(a, b), serial));
}

TEST(ParallelOps, FlopCounterExactUnderParallelExecution) {
  // Worker-thread FlopCounter deltas merge back into the calling thread at
  // parallel_for join, so the caller observes the exact serial count.
  ThreadGuard guard;
  const Matrix a = rnd(kM, kK, 11), b = rnd(kK, kN, 12);
  const std::uint64_t expected = 2ull * kM * kK * kN;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    set_compute_threads(threads);
    Matrix out(kM, kN);
    FlopCounter::instance().reset();
    matmul_into(a, b, out);
    EXPECT_EQ(FlopCounter::instance().count(), expected)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace gt
