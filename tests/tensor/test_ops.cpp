#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace gt {
namespace {

Matrix rnd(std::size_t r, std::size_t c, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return Matrix::uniform(r, c, rng);
}

TEST(Ops, MatmulKnown) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(Ops, TransposedVariantsAgreeWithExplicitTranspose) {
  Matrix a = rnd(5, 7, 1), b = rnd(5, 9, 2);
  EXPECT_TRUE(allclose(matmul_at_b(a, b), matmul(transpose(a), b), 1e-4f));
  Matrix c = rnd(4, 7, 3), d = rnd(6, 7, 4);
  EXPECT_TRUE(allclose(matmul_a_bt(c, d), matmul(c, transpose(d)), 1e-4f));
}

TEST(Ops, MatmulAssociativity) {
  // (AB)C == A(BC): the algebraic identity dynamic kernel placement uses.
  Matrix a = rnd(4, 5, 5), b = rnd(5, 6, 6), c = rnd(6, 3, 7);
  EXPECT_TRUE(allclose(matmul(matmul(a, b), c), matmul(a, matmul(b, c)),
                       1e-3f));
}

TEST(Ops, AddBias) {
  Matrix a(2, 3, 1.0f);
  Matrix bias(1, 3);
  bias.at(0, 0) = 1;
  bias.at(0, 1) = 2;
  bias.at(0, 2) = 3;
  Matrix out = add_bias(a, bias);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2);
  EXPECT_FLOAT_EQ(out.at(1, 2), 4);
}

TEST(Ops, ElementwiseOps) {
  Matrix a(1, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = -2;
  a.at(0, 2) = 3;
  Matrix b(1, 3, 2.0f);
  EXPECT_FLOAT_EQ(add(a, b).at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(sub(a, b).at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(hadamard(a, b).at(0, 1), -4.0f);
  EXPECT_FLOAT_EQ(scale(a, -1.0f).at(0, 0), -1.0f);
}

TEST(Ops, ReluAndBackward) {
  Matrix x(1, 4);
  x.at(0, 0) = -1;
  x.at(0, 1) = 0;
  x.at(0, 2) = 2;
  x.at(0, 3) = -3;
  Matrix y = relu(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2);
  Matrix g(1, 4, 1.0f);
  Matrix gx = relu_backward(g, x);
  EXPECT_FLOAT_EQ(gx.at(0, 0), 0);
  EXPECT_FLOAT_EQ(gx.at(0, 2), 1);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Matrix a = rnd(6, 10, 8);
  Matrix p = softmax_rows(a);
  for (std::size_t r = 0; r < p.rows(); ++r) {
    float sum = 0;
    for (std::size_t c = 0; c < p.cols(); ++c) {
      sum += p.at(r, c);
      EXPECT_GT(p.at(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxCrossEntropyGradientMatchesNumerical) {
  Matrix logits = rnd(3, 4, 9);
  std::vector<std::uint32_t> labels{1, 0, 3};
  Matrix grad;
  softmax_cross_entropy(logits, labels, &grad);
  const float eps = 1e-3f;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      Matrix lp = logits, lm = logits;
      lp.at(r, c) += eps;
      lm.at(r, c) -= eps;
      const float numeric = (softmax_cross_entropy(lp, labels) -
                             softmax_cross_entropy(lm, labels)) /
                            (2 * eps);
      EXPECT_NEAR(grad.at(r, c), numeric, 5e-3f);
    }
  }
}

TEST(Ops, ColSum) {
  Matrix a(3, 2, 1.0f);
  a.at(2, 1) = 4.0f;
  Matrix s = col_sum(a);
  EXPECT_FLOAT_EQ(s.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s.at(0, 1), 6.0f);
}

TEST(Ops, FlopCounterTracksMatmul) {
  auto& fc = FlopCounter::instance();
  fc.reset();
  matmul(Matrix(3, 4), Matrix(4, 5));
  EXPECT_EQ(fc.count(), 2ull * 3 * 4 * 5);
}

TEST(Ops, FroNorm) {
  Matrix a(1, 2);
  a.at(0, 0) = 3;
  a.at(0, 1) = 4;
  EXPECT_FLOAT_EQ(fro_norm(a), 5.0f);
}

}  // namespace
}  // namespace gt
