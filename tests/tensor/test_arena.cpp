#include "tensor/arena.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/view.hpp"

namespace gt {
namespace {

TEST(Arena, AllocReturnsZeroedViewOfRequestedShape) {
  Arena arena;
  MatrixView v = arena.alloc(3, 5);
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 5u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c) EXPECT_EQ(v.at(r, c), 0.0f);
}

TEST(Arena, TracksUsedAndHighWaterMark) {
  Arena arena;
  arena.alloc(2, 8);  // 16 floats
  EXPECT_EQ(arena.stats().used_bytes, 16 * sizeof(float));
  arena.alloc(1, 4);  // 4 floats
  EXPECT_EQ(arena.stats().used_bytes, 20 * sizeof(float));
  EXPECT_EQ(arena.stats().peak_bytes, 20 * sizeof(float));
  EXPECT_EQ(arena.stats().allocations, 2u);

  arena.reset();
  EXPECT_EQ(arena.stats().used_bytes, 0u);
  // The high-water mark survives reset — it is the sizing signal.
  EXPECT_EQ(arena.stats().peak_bytes, 20 * sizeof(float));
  EXPECT_EQ(arena.stats().resets, 1u);

  arena.alloc(8, 8);  // 64 floats > previous peak of 20
  EXPECT_EQ(arena.stats().peak_bytes, 64 * sizeof(float));
}

TEST(Arena, ResetRetainsCapacityAndSteadyStateNeverGrows) {
  Arena arena;
  auto one_batch = [&] {
    arena.alloc(30, 16);
    arena.alloc(30, 16);
    arena.alloc(1, 16);
  };
  one_batch();
  const std::size_t capacity = arena.stats().capacity_bytes;
  const std::uint64_t growths = arena.stats().growths;
  EXPECT_GT(capacity, 0u);
  for (int batch = 0; batch < 10; ++batch) {
    arena.reset();
    one_batch();
  }
  EXPECT_EQ(arena.stats().capacity_bytes, capacity);
  EXPECT_EQ(arena.stats().growths, growths);
}

TEST(Arena, ReusedMemoryComesBackZeroed) {
  Arena arena;
  MatrixView v = arena.alloc(4, 4);
  v.fill(7.5f);
  arena.reset();
  MatrixView w = arena.alloc(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(w.at(r, c), 0.0f);
}

TEST(Arena, GrowthNeverInvalidatesHandedOutViews) {
  Arena arena;
  // First allocation lands in the initial block.
  MatrixView first = arena.alloc(4, 4);
  first.fill(3.0f);
  const float* first_data = first.data().data();
  // Far larger than any existing block: forces a fresh-block growth.
  const std::size_t huge = (std::size_t{1} << 20);
  std::span<float> big = arena.alloc_floats(huge);
  EXPECT_EQ(big.size(), huge);
  EXPECT_GE(arena.stats().growths, 2u);
  // The old view still points at intact storage.
  EXPECT_EQ(first.data().data(), first_data);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(first.at(r, c), 3.0f);
}

TEST(Arena, OversizedRequestGetsTwoXSlackBlock) {
  Arena arena;
  const std::size_t n = (std::size_t{1} << 17);  // > kMinBlockFloats
  arena.alloc_floats(n);
  // Block is sized 2x the request, so an immediate same-size request after
  // reset plus one more fits without another growth.
  const std::uint64_t growths = arena.stats().growths;
  arena.reset();
  arena.alloc_floats(n);
  arena.alloc_floats(n / 2);
  EXPECT_EQ(arena.stats().growths, growths);
}

TEST(Arena, AllocFloatsCountsAllocations) {
  Arena arena;
  arena.alloc_floats(10);
  arena.alloc(2, 2);
  EXPECT_EQ(arena.stats().allocations, 2u);
}

TEST(Arena, EmptyAllocationIsHarmless) {
  Arena arena;
  MatrixView v = arena.alloc(0, 8);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(arena.stats().used_bytes, 0u);
}

TEST(MatrixContract, HeapAllocationCounterAdvancesOnGrowthOnly) {
  const std::uint64_t before = Matrix::heap_allocations();
  Matrix m(8, 8);
  EXPECT_GT(Matrix::heap_allocations(), before);
  const std::uint64_t after_ctor = Matrix::heap_allocations();
  m.resize(4, 4);  // shrink: reuses capacity
  m.resize(8, 8);  // back to original: still within capacity
  EXPECT_EQ(Matrix::heap_allocations(), after_ctor);
  m.resize(64, 64);  // genuine growth
  EXPECT_GT(Matrix::heap_allocations(), after_ctor);
}

// Satellite contract test: Matrix::at bounds-checks via assert in debug
// builds. In NDEBUG builds the check compiles out, so the death test only
// runs when asserts are live.
TEST(MatrixDeathTest, AtOutOfBoundsDiesInDebugBuilds) {
#ifdef NDEBUG
  GTEST_SKIP() << "assertions compiled out under NDEBUG";
#else
  Matrix m(2, 3);
  EXPECT_DEATH((void)m.at(2, 0), "out of bounds");
  EXPECT_DEATH((void)m.at(0, 3), "out of bounds");
  const MatrixView v{m};
  EXPECT_DEATH((void)v.at(5, 0), "out of bounds");
#endif
}

}  // namespace
}  // namespace gt
