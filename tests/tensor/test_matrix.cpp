#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gt {
namespace {

TEST(Matrix, ShapeAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m.bytes(), 24u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 7.0f);
}

TEST(Matrix, RowSpanViewsUnderlyingData) {
  Matrix m(2, 2);
  m.row(1)[0] = 3.0f;
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.0f);
}

TEST(Matrix, FillAndZeros) {
  Matrix m = Matrix::zeros(3, 3);
  for (float v : m.data()) EXPECT_FLOAT_EQ(v, 0.0f);
  m.fill(2.0f);
  for (float v : m.data()) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Matrix, GlorotBounded) {
  Xoshiro256 rng(1);
  Matrix m = Matrix::glorot(10, 20, rng);
  const float limit = std::sqrt(6.0f / 30.0f);
  for (float v : m.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LT(v, limit);
  }
}

TEST(Matrix, UniformDeterministic) {
  Xoshiro256 a(5), b(5);
  EXPECT_EQ(Matrix::uniform(4, 4, a), Matrix::uniform(4, 4, b));
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
  b.at(1, 1) = 1.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  EXPECT_TRUE(allclose(a, b, 0.6f));
  EXPECT_FALSE(allclose(a, b, 0.4f));
}

TEST(Matrix, ShapeMismatchIsInfinitelyFar) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_FALSE(allclose(a, b));
}

}  // namespace
}  // namespace gt
