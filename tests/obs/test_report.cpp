#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "json_checker.hpp"
#include "obs/json.hpp"

namespace gt::obs {
namespace {

BenchReporter& fresh_global() {
  BenchReporter& r = BenchReporter::global();
  r.clear();
  return r;
}

BenchRow row(const std::string& metric, const std::string& dataset,
             const std::string& framework, double paper, double measured,
             const std::string& unit = "x") {
  BenchRow r;
  r.metric = metric;
  r.dataset = dataset;
  r.framework = framework;
  r.unit = unit;
  r.paper = paper;
  r.measured = measured;
  return r;
}

TEST(JsonParser, AcceptsValuesAndReportsErrors) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(R"({"a":[1,2.5,-3e2],"b":"x\"y","c":null})", &v,
                         &err))
      << err;
  EXPECT_TRUE(v.is_object());
  ASSERT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[2].as_number(), -300.0);
  EXPECT_EQ(v.string_at("b"), "x\"y");
  EXPECT_TRUE(v.at("c").is_null());
  EXPECT_TRUE(v.at("missing").is_null());

  EXPECT_FALSE(json_parse("{\"a\":}", &v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(json_parse("[1,2] trailing", &v, &err));
}

TEST(BenchReporter, RowsInheritContextFigure) {
  BenchReporter& r = fresh_global();
  r.set_context("Fig X", "a test figure");
  r.add_row(row("speedup", "products", "Dynamic-GT", 2.0, 1.9));
  r.add_claim("overall speedup", 3.0, 2.8, "x");
  auto rows = r.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].figure, "Fig X");
  EXPECT_EQ(rows[1].figure, "Fig X");
  EXPECT_EQ(rows[1].metric, "overall speedup");
  // The key identifies a row across runs.
  EXPECT_NE(rows[0].key(), rows[1].key());
  r.clear();
  EXPECT_EQ(r.row_count(), 0u);
}

TEST(BenchReporter, JsonRoundTripPreservesRowsAndMeta) {
  BenchReporter& r = fresh_global();
  r.set_binary("unit_test");
  r.set_iterations(3);
  r.set_context("Fig Y", "round-trip \"figure\"");
  r.add_row(row("latency", "wiki-talk", "PyG-MT", 100.0, 97.5, "us"));
  r.add_row(row("cache x", "products", "", 0.0, 1.25));

  std::ostringstream os;
  r.write_json(os, TraceAnalysis{});
  const std::string json = os.str();
  r.clear();
  EXPECT_TRUE(testing::JsonChecker(json).valid()) << json;

  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(json, &doc, &err)) << err;
  EXPECT_DOUBLE_EQ(doc.number_at("schema_version"),
                   kBenchReportSchemaVersion);
  EXPECT_EQ(doc.at("figures").string_at("Fig Y"), "round-trip \"figure\"");

  BenchReport parsed;
  ASSERT_TRUE(BenchReport::from_json(doc, &parsed, &err)) << err;
  EXPECT_EQ(parsed.schema_version, kBenchReportSchemaVersion);
  EXPECT_EQ(parsed.meta.binary, "unit_test");
  EXPECT_EQ(parsed.meta.iterations, 3);
  ASSERT_EQ(parsed.rows.size(), 2u);
  EXPECT_EQ(parsed.rows[0].figure, "Fig Y");
  EXPECT_EQ(parsed.rows[0].metric, "latency");
  EXPECT_EQ(parsed.rows[0].unit, "us");
  EXPECT_DOUBLE_EQ(parsed.rows[0].paper, 100.0);
  EXPECT_DOUBLE_EQ(parsed.rows[0].measured, 97.5);
  EXPECT_EQ(parsed.rows[1].framework, "");
  EXPECT_DOUBLE_EQ(parsed.rows[1].measured, 1.25);
  EXPECT_TRUE(parsed.trace_analysis.is_object());
}

TEST(BenchReporter, WriteIsByteStable) {
  BenchReporter& r = fresh_global();
  r.set_context("Fig Z", "stability");
  r.add_row(row("m", "d", "", 1.0, 1.5));
  std::ostringstream a, b;
  r.write_json(a, TraceAnalysis{});
  r.write_json(b, TraceAnalysis{});
  r.clear();
  EXPECT_EQ(a.str(), b.str());
}

TEST(BenchReport, RejectsWrongSchemaVersion) {
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(R"({"schema_version":999,"rows":[]})", &doc, &err));
  BenchReport parsed;
  EXPECT_FALSE(BenchReport::from_json(doc, &parsed, &err));
  EXPECT_NE(err.find("schema"), std::string::npos) << err;
}

}  // namespace
}  // namespace gt::obs
