// KernelLedger + gt_explain attribution engine: aggregation, the exact
// sums-to-total identity, artifact round-trip, differential analysis, the
// CLI shim, and the live cost-model drift surface.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/attrib/explain.hpp"
#include "obs/attrib/kernel_ledger.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace gt::obs::attrib {
namespace {

/// One synthetic "batch" whose totals satisfy the attribution identity
/// under overlap: busy = 200, makespan = 120 (parallel saves 80),
/// fwp+bwp = 70 fully hidden under preprocessing -> e2e = 120.
BatchTotals overlap_batch() {
  BatchTotals t;
  t.stage_busy_us[0] = 100.0;  // sampling
  t.stage_busy_us[1] = 50.0;   // reindex
  t.stage_busy_us[2] = 30.0;   // lookup
  t.stage_busy_us[3] = 20.0;   // transfer
  t.makespan_us = 120.0;
  t.fwp_us = 40.0;
  t.bwp_us = 30.0;
  t.end_to_end_us = 120.0;  // max(makespan, gpu)
  return t;
}

std::vector<KernelRecord> overlap_kernels() {
  return {
      {"Pull.CsrSpmm", "aggregation", "fwd", 300, 25.0, 1000, 4096},
      {"Apply.MatMul", "combination", "fwd", 300, 15.0, 2000, 2048},
      {"Pull.CsrSpmmGrad", "aggregation", "bwd", 1024, 30.0, 1500, 8192},
  };
}

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "gt_attrib_" + tag + ".json";
}

class LedgerTest : public ::testing::Test {
 public:
  void TearDown() override {
    KernelLedger::global().disarm();
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::string arm(const char* tag) {
    const std::string path = temp_path(tag);
    cleanup_.push_back(path);
    KernelLedger::global().arm(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST(ShapeSignature, PowerOfTwoBuckets) {
  EXPECT_EQ(shape_signature(0), "b0");
  EXPECT_EQ(shape_signature(1), "b2^0");
  EXPECT_EQ(shape_signature(2), "b2^1");
  EXPECT_EQ(shape_signature(3), "b2^2");
  EXPECT_EQ(shape_signature(4), "b2^2");
  EXPECT_EQ(shape_signature(1024), "b2^10");
  EXPECT_EQ(shape_signature(1025), "b2^11");
}

TEST_F(LedgerTest, DisarmedRecordingIsANoOp) {
  KernelLedger& ledger = KernelLedger::global();
  ASSERT_FALSE(ledger.armed());
  ledger.record_batch(overlap_batch(), overlap_kernels());
  ledger.record_prediction("fwd/aggregation-first/L0", 10.0, 12.0, true);
  EXPECT_EQ(ledger.batch_count(), 0u);
  EXPECT_EQ(ledger.kernel_class_count(), 0u);
  EXPECT_FALSE(ledger.write_json_file());  // no out path while disarmed
}

TEST_F(LedgerTest, AggregatesKernelClassesAndKeepsIdentity) {
  arm("agg");
  KernelLedger& ledger = KernelLedger::global();
  ledger.record_batch(overlap_batch(), overlap_kernels());
  ledger.record_batch(overlap_batch(), overlap_kernels());
  EXPECT_EQ(ledger.batch_count(), 2u);
  EXPECT_EQ(ledger.kernel_class_count(), 3u);  // same classes both batches

  std::ostringstream os;
  ledger.write_json(os);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(os.str(), &doc, &err)) << err;
  EXPECT_EQ(doc.number_at("schema_version"), kKernelLedgerSchemaVersion);

  const JsonValue& totals = doc.at("totals");
  EXPECT_EQ(totals.number_at("batches"), 2.0);
  EXPECT_DOUBLE_EQ(totals.number_at("end_to_end_us"), 240.0);
  EXPECT_DOUBLE_EQ(totals.number_at("sampling_us"), 200.0);
  EXPECT_DOUBLE_EQ(totals.number_at("preproc_parallel_us"), 160.0);
  EXPECT_DOUBLE_EQ(totals.number_at("overlap_hidden_us"), 140.0);
  // The identity: e2e = sum(stages) - parallel + fwp + bwp - hidden.
  const double identity =
      totals.number_at("sampling_us") + totals.number_at("reindex_us") +
      totals.number_at("lookup_us") + totals.number_at("transfer_us") -
      totals.number_at("preproc_parallel_us") + totals.number_at("fwp_us") +
      totals.number_at("bwp_us") - totals.number_at("overlap_hidden_us");
  EXPECT_NEAR(identity, totals.number_at("end_to_end_us"), 1e-9);

  const JsonValue& classes = doc.at("kernels");
  const JsonValue& spmm = classes.at("Pull.CsrSpmm|fwd|b2^9");
  ASSERT_TRUE(spmm.is_object());
  EXPECT_EQ(spmm.number_at("launches"), 2.0);
  EXPECT_DOUBLE_EQ(spmm.number_at("total_us"), 50.0);
  EXPECT_EQ(spmm.string_at("category"), "aggregation");
  EXPECT_EQ(classes.at("Pull.CsrSpmmGrad|bwd|b2^10").string_at("phase"),
            "bwd");
}

TEST_F(LedgerTest, OutputIsByteStable) {
  arm("stable");
  KernelLedger& ledger = KernelLedger::global();
  ledger.record_batch(overlap_batch(), overlap_kernels());
  ledger.record_prediction("fwd/aggregation-first/L0", 9.5, 10.0, true);
  std::ostringstream a, b;
  ledger.write_json(a);
  ledger.write_json(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(a.str().empty());
}

TEST_F(LedgerTest, PredictionJoinSeparatesFittedResiduals) {
  arm("join");
  KernelLedger& ledger = KernelLedger::global();
  // Pre-fit samples join the class sums but not the residual stream.
  ledger.record_prediction("fwd/aggregation-first/L0", 8.0, 10.0, false);
  ledger.record_prediction("fwd/aggregation-first/L0", 9.0, 10.0, true);
  ledger.record_prediction("fwd/aggregation-first/L0", 12.0, 10.0, true);

  std::ostringstream os;
  ledger.write_json(os);
  JsonValue doc;
  ASSERT_TRUE(json_parse(os.str(), &doc, nullptr));
  const JsonValue& cls =
      doc.at("costmodel").at("classes").at("fwd/aggregation-first/L0");
  EXPECT_EQ(cls.number_at("samples"), 3.0);
  EXPECT_EQ(cls.number_at("fitted_samples"), 2.0);
  EXPECT_DOUBLE_EQ(cls.number_at("predicted_us"), 29.0);
  EXPECT_DOUBLE_EQ(cls.number_at("measured_us"), 30.0);
  const JsonValue& residual = doc.at("costmodel").at("residual");
  EXPECT_EQ(residual.number_at("samples"), 2.0);
  // Fitted rel errors: 10% and 20% -> p50 = 10, p95 = 20, mean = 15.
  EXPECT_NEAR(residual.number_at("p50_pct"), 10.0, 1e-9);
  EXPECT_NEAR(residual.number_at("p95_pct"), 20.0, 1e-9);
  EXPECT_NEAR(residual.number_at("mean_pct"), 15.0, 1e-9);
}

TEST_F(LedgerTest, RearmingResetsTheAccumulation) {
  arm("first");
  KernelLedger::global().record_batch(overlap_batch(), overlap_kernels());
  EXPECT_EQ(KernelLedger::global().batch_count(), 1u);
  arm("second");
  EXPECT_EQ(KernelLedger::global().batch_count(), 0u);
  EXPECT_EQ(KernelLedger::global().kernel_class_count(), 0u);
}

// --- LedgerData / attribute ---------------------------------------------------

/// Write a ledger with `n` batches to a temp file and load it back.
LedgerData round_trip(LedgerTest& t, const char* tag, int n,
                      double fwd_scale = 1.0) {
  const std::string path = t.arm(tag);
  for (int i = 0; i < n; ++i) {
    BatchTotals b = overlap_batch();
    auto kernels = overlap_kernels();
    for (auto& k : kernels)
      if (k.phase == "fwd") k.latency_us *= fwd_scale;
    const double extra = 40.0 * (fwd_scale - 1.0);
    b.fwp_us += extra;  // keep per-phase sums exact...
    b.end_to_end_us = std::max(b.makespan_us, b.fwp_us + b.bwp_us);
    // ...and the identity: hidden = m + g - e2e (computed by the ledger).
    KernelLedger::global().record_batch(b, kernels);
  }
  EXPECT_TRUE(KernelLedger::global().write_json_file());
  KernelLedger::global().disarm();
  LedgerData data;
  std::string err;
  EXPECT_TRUE(LedgerData::load(path, &data, &err)) << err;
  return data;
}

TEST_F(LedgerTest, IdenticalRunsAttributeToZero) {
  const LedgerData base = round_trip(*this, "ident", 4);
  ASSERT_EQ(base.batches, 4u);
  const Attribution a = attribute(base, base);
  EXPECT_NEAR(a.delta_e2e_us, 0.0, 1e-9);
  EXPECT_NEAR(a.stage_delta_sum_us, 0.0, 1e-9);
  for (const StageDelta& s : a.stages) EXPECT_NEAR(s.delta_us, 0.0, 1e-9);
}

TEST_F(LedgerTest, AttributionSumsToMeasuredDeltaAndRanksCulprit) {
  // Baseline: gpu (70) hidden under makespan (120). Current: fwd kernels
  // 4x slower -> gpu = 190 dominates -> e2e 120 -> 190. Different batch
  // counts exercise the per-batch normalization.
  const LedgerData base = round_trip(*this, "b", 4);
  const LedgerData cur = round_trip(*this, "c", 2, /*fwd_scale=*/4.0);
  const Attribution a = attribute(base, cur);
  EXPECT_NEAR(a.base_e2e_us, 120.0, 1e-9);
  EXPECT_NEAR(a.cur_e2e_us, 190.0, 1e-9);
  EXPECT_NEAR(a.delta_e2e_us, 70.0, 1e-9);
  // The invariant the whole tool stands on: stage terms sum to the delta.
  EXPECT_NEAR(a.stage_delta_sum_us, a.delta_e2e_us, 1e-9);
  // Kernel deltas cover delta(fwp) + delta(bwp) = 120 - 0.
  EXPECT_NEAR(a.kernel_delta_sum_us, 120.0, 1e-9);
  // Largest mover first: Pull.CsrSpmm grew 25 -> 100.
  ASSERT_FALSE(a.kernels.empty());
  EXPECT_EQ(a.kernels.front().key, "Pull.CsrSpmm|fwd|b2^9");
  EXPECT_NEAR(a.kernels.front().delta_us, 75.0, 1e-9);

  // Text + JSON writers render without dying and carry the verdict.
  std::ostringstream text;
  write_text(a, text, 3);
  EXPECT_NE(text.str().find("Pull.CsrSpmm|fwd|b2^9"), std::string::npos);
  std::ostringstream js;
  write_json(a, js);
  JsonValue doc;
  ASSERT_TRUE(json_parse(js.str(), &doc, nullptr));
  EXPECT_NEAR(doc.at("end_to_end_us_per_batch").number_at("delta"), 70.0,
              1e-6);
}

TEST_F(LedgerTest, SelfTestPassesOnAConsistentArtifact) {
  const LedgerData base = round_trip(*this, "selftest", 3);
  std::ostringstream os;
  EXPECT_TRUE(run_self_test(base, os));
  EXPECT_NE(os.str().find("self-test PASSED"), std::string::npos);
  EXPECT_EQ(os.str().find("FAIL"), std::string::npos) << os.str();
}

TEST_F(LedgerTest, SelfTestRejectsInconsistentTotals) {
  LedgerData base = round_trip(*this, "broken", 3);
  base.fwp_us += 500.0;  // break the identity without touching e2e
  std::ostringstream os;
  EXPECT_FALSE(run_self_test(base, os));
  EXPECT_NE(os.str().find("self-test FAILED"), std::string::npos);
}

TEST_F(LedgerTest, GtExplainCliEndToEnd) {
  round_trip(*this, "cli_base", 4);
  round_trip(*this, "cli_cur", 2, /*fwd_scale=*/4.0);
  const std::string base_path = temp_path("cli_base");
  const std::string cur_path = temp_path("cli_cur");

  std::ostringstream out, err;
  EXPECT_EQ(run_gt_explain({base_path, cur_path}, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("Pull.CsrSpmm"), std::string::npos);

  out.str("");
  EXPECT_EQ(run_gt_explain({"--json", base_path, cur_path}, out, err), 0);
  JsonValue doc;
  ASSERT_TRUE(json_parse(out.str(), &doc, nullptr)) << out.str();
  EXPECT_FALSE(doc.at("kernels").as_array().empty());

  out.str("");
  EXPECT_EQ(run_gt_explain({"--self-test", base_path}, out, err), 0)
      << out.str();

  // Usage errors: wrong arity, unknown flag, unreadable file.
  EXPECT_EQ(run_gt_explain({base_path}, out, err), 2);
  EXPECT_EQ(run_gt_explain({"--nope", base_path, cur_path}, out, err), 2);
  EXPECT_EQ(run_gt_explain({"/nonexistent/a.json", cur_path}, out, err), 2);
}

// --- Live drift surface -------------------------------------------------------

TEST(CostModelDrift, GaugesAndRisingEdgeLatch) {
  metrics().gauge("costmodel.residual.p50").set(0.0);
  metrics().gauge("costmodel.residual.p95").set(0.0);
  const double threshold = costmodel_drift_threshold_pct();
  ASSERT_GT(threshold, 0.0);
  const std::uint64_t before = metrics().counter("costmodel.drift").value();

  // Below threshold: gauges move, no drift.
  observe_costmodel_residuals(10, 5.0, threshold * 0.5);
  EXPECT_DOUBLE_EQ(metrics().gauge("costmodel.residual.p50").value(), 5.0);
  EXPECT_DOUBLE_EQ(metrics().gauge("costmodel.residual.p95").value(),
                   threshold * 0.5);
  EXPECT_EQ(metrics().counter("costmodel.drift").value(), before);

  // Crossing: exactly one drift increment, latched while it stays high.
  observe_costmodel_residuals(10, 20.0, threshold * 2.0);
  observe_costmodel_residuals(10, 20.0, threshold * 3.0);
  EXPECT_EQ(metrics().counter("costmodel.drift").value(), before + 1);

  // Recovery resets the latch; the next excursion counts again.
  observe_costmodel_residuals(10, 5.0, threshold * 0.5);
  observe_costmodel_residuals(10, 20.0, threshold * 2.0);
  EXPECT_EQ(metrics().counter("costmodel.drift").value(), before + 2);

  // Zero samples: nothing changes.
  metrics().gauge("costmodel.residual.p95").set(1.0);
  observe_costmodel_residuals(0, 99.0, 99.0);
  EXPECT_DOUBLE_EQ(metrics().gauge("costmodel.residual.p95").value(), 1.0);
}

}  // namespace
}  // namespace gt::obs::attrib
