#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace gt::obs {
namespace {

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetOverwrites) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsAndExactStats) {
  Histogram h({1.0, 2.0, 5.0});
  for (double x : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  EXPECT_DOUBLE_EQ(h.mean(), 21.2);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Upper bucket edges are inclusive (x <= bound), like Prometheus `le`.
  const std::vector<std::uint64_t> expected = {2, 1, 1, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_counts(), std::vector<std::uint64_t>(4, 0));
}

TEST(Histogram, StdevMatchesClosedForm) {
  Histogram h({10.0});
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.observe(x);
  EXPECT_NEAR(h.stdev(), 2.0, 1e-12);  // population stdev: sqrt(32/8)
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i % 40));
  // Uniform-ish data: the bucket-estimated quantiles should land near the
  // exact ones, and must be monotone and clamped to [min, max].
  const double p50 = h.quantile(0.5);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_NEAR(p50, 20.0, 5.0);
  EXPECT_DOUBLE_EQ(h.p50(), h.quantile(0.5));
  EXPECT_DOUBLE_EQ(h.p95(), h.quantile(0.95));
  EXPECT_DOUBLE_EQ(h.p99(), h.quantile(0.99));
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  Histogram one({1.0});
  one.observe(0.25);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 0.25);

  // Everything in the open-ended top bucket: estimates clamp to the exact
  // observed [min, max] rather than extrapolating to infinity.
  Histogram top({1.0});
  top.observe(50.0);
  top.observe(150.0);
  EXPECT_GE(top.quantile(0.99), 50.0);
  EXPECT_LE(top.quantile(0.99), 150.0);
}

TEST(Histogram, AllEqualObservationsCollapseQuantiles) {
  Histogram h({1.0, 2.0, 5.0});
  for (int i = 0; i < 10; ++i) h.observe(3.0);
  // Every quantile of a constant sample is that constant: the estimate
  // must clamp to the exact [min, max] instead of smearing across the
  // (2, 5] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(h.stdev(), 0.0);
}

TEST(Histogram, NegativeValuesLandInFirstBucket) {
  Histogram h({0.0, 10.0});
  h.observe(-5.0);
  h.observe(-1.0);
  h.observe(4.0);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  const std::vector<std::uint64_t> expected = {2, 1, 0};
  EXPECT_EQ(h.bucket_counts(), expected);
  // Quantiles stay within the exact observed range even though the first
  // bucket's lower edge is open-ended.
  EXPECT_GE(h.quantile(0.01), -5.0);
  EXPECT_LE(h.quantile(0.99), 4.0);
}

TEST(Histogram, QuantilesMonotoneAcrossSparseBuckets) {
  // A bucket gap (nothing in (1, 100]) must not produce a non-monotone
  // estimate sequence.
  Histogram h({1.0, 100.0, 1000.0});
  for (int i = 0; i < 50; ++i) h.observe(0.5);
  for (int i = 0; i < 50; ++i) h.observe(500.0);
  double prev = h.quantile(0.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 500.0);
}

TEST(MetricsRegistry, SameNameReturnsSameObject) {
  MetricsRegistry r;
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  // Distinct kinds may share a name without clashing.
  Gauge& g = r.gauge("x");
  g.set(1.0);
  EXPECT_EQ(a.value(), 7u);
  // Explicit bounds are only applied on first creation.
  Histogram& h1 = r.histogram("lat", {1.0, 2.0});
  Histogram& h2 = r.histogram("lat");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.bounds().size(), 2u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry r;
  constexpr int kThreads = 8, kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&r] {
      Counter& c = r.counter("contended");
      Histogram& h = r.histogram("contended_h", {0.5});
      for (int i = 0; i < kAddsPerThread; ++i) {
        c.add(1);
        h.observe(1.0);
      }
    });
  for (auto& w : workers) w.join();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kAddsPerThread;
  EXPECT_EQ(r.counter("contended").value(), total);
  EXPECT_EQ(r.histogram("contended_h").count(), total);
  EXPECT_EQ(r.histogram("contended_h").bucket_counts().back(), total);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry r;
  Counter& c = r.counter("c");
  Gauge& g = r.gauge("g");
  Histogram& h = r.histogram("h");
  c.add(3);
  g.set(9.0);
  h.observe(2.5);
  r.reset();
  // Same objects, zeroed in place — cached references stay valid.
  EXPECT_EQ(&r.counter("c"), &c);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistry, JsonDumpContainsEverything) {
  MetricsRegistry r;
  r.counter("hash.acquisitions").add(12);
  r.gauge("cache.hit_rate").set(0.75);
  r.histogram("kernel_us", {1.0, 10.0}).observe(3.0);
  std::ostringstream os;
  r.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"hash.acquisitions\":12"), std::string::npos);
  EXPECT_NE(json.find("\"cache.hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel_us\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
  // Braces/brackets balance (the dedicated validity test lives in
  // test_tracer.cpp's JsonChecker; this is a cheap sanity pass).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(MetricsRegistry, JsonDumpHasSortedKeysAndIsByteStable) {
  MetricsRegistry r;
  r.counter("zeta").add(1);
  r.counter("alpha").add(2);
  r.gauge("mid").set(0.5);
  r.histogram("lat_us", {1.0, 10.0}).observe(4.0);
  std::ostringstream a, b;
  r.write_json(a);
  r.write_json(b);
  EXPECT_EQ(a.str(), b.str());  // byte-stable across dumps
  // std::map registries iterate in key order, so "alpha" precedes "zeta".
  EXPECT_LT(a.str().find("\"alpha\""), a.str().find("\"zeta\""));
  // The histogram summary now carries the estimated percentiles.
  EXPECT_NE(a.str().find("\"p50\""), std::string::npos);
  EXPECT_NE(a.str().find("\"p95\""), std::string::npos);
  EXPECT_NE(a.str().find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, GlobalIsAStableSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &metrics());
}

TEST(DefaultLatencyBounds, AscendingAndSpanning) {
  const auto& b = default_latency_bounds_us();
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_GE(b.back(), 1e6);
}

}  // namespace
}  // namespace gt::obs
