// Regression lock: the obs metrics registry must report the same hash
// traffic as the legacy PreprocResult fields, so the Fig 14 contention
// numbers stay trustworthy whichever surface a consumer reads.
#include <gtest/gtest.h>

#include "datasets/catalog.hpp"
#include "obs/metrics.hpp"
#include "pipeline/executor.hpp"

namespace gt::pipeline {
namespace {

struct Env {
  Dataset data = generate("products", 11);
  sampling::ReindexFormats formats{.coo = false, .csr = true, .csc = false};
  PreprocExecutor exec{data.csr, data.embeddings, data.spec.fanout, 2, 99,
                       formats};
};

struct CounterDeltas {
  std::uint64_t batches, acquisitions, contended, sampled;

  static CounterDeltas snapshot() {
    obs::MetricsRegistry& m = obs::metrics();
    return {m.counter("preproc.batches").value(),
            m.counter("preproc.hash_acquisitions").value(),
            m.counter("preproc.hash_contended").value(),
            m.counter("preproc.sampled_vertices").value()};
  }
  CounterDeltas since(const CounterDeltas& base) const {
    return {batches - base.batches, acquisitions - base.acquisitions,
            contended - base.contended, sampled - base.sampled};
  }
};

TEST(PreprocMetrics, ParallelRegistryMatchesResultFields) {
  Env env;
  ThreadPool pool(4);
  auto batch = env.exec.sampler().pick_batch(80, 0);
  const CounterDeltas before = CounterDeltas::snapshot();
  PreprocResult r = env.exec.run_parallel(batch, pool, 5);
  const CounterDeltas d = CounterDeltas::snapshot().since(before);
  EXPECT_EQ(d.batches, 1u);
  EXPECT_EQ(d.acquisitions, r.hash_acquisitions);
  EXPECT_EQ(d.contended, r.hash_contended);
  EXPECT_EQ(d.sampled, r.batch.total_vertices());
}

TEST(PreprocMetrics, SerialRegistryMatchesResultFields) {
  Env env;
  auto batch = env.exec.sampler().pick_batch(60, 1);
  const CounterDeltas before = CounterDeltas::snapshot();
  PreprocResult r = env.exec.run_serial(batch);
  const CounterDeltas d = CounterDeltas::snapshot().since(before);
  EXPECT_EQ(d.batches, 1u);
  EXPECT_EQ(d.acquisitions, r.hash_acquisitions);
  EXPECT_EQ(d.contended, r.hash_contended);
  EXPECT_EQ(d.sampled, r.batch.total_vertices());
}

TEST(PreprocMetrics, CountersAccumulateAcrossBatches) {
  Env env;
  ThreadPool pool(3);
  const CounterDeltas before = CounterDeltas::snapshot();
  std::uint64_t want_acquisitions = 0;
  for (std::uint64_t b = 0; b < 3; ++b) {
    auto batch = env.exec.sampler().pick_batch(40, b);
    want_acquisitions += env.exec.run_parallel(batch, pool, 4)
                             .hash_acquisitions;
  }
  const CounterDeltas d = CounterDeltas::snapshot().since(before);
  EXPECT_EQ(d.batches, 3u);
  EXPECT_EQ(d.acquisitions, want_acquisitions);
}

}  // namespace
}  // namespace gt::pipeline
