#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/attrib/kernel_ledger.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace gt::obs {
namespace {

BenchRow make_row(const std::string& metric, double paper, double measured) {
  BenchRow r;
  r.figure = "Fig T";
  r.metric = metric;
  r.dataset = "products";
  r.paper = paper;
  r.measured = measured;
  return r;
}

BenchReport make_report(std::vector<BenchRow> rows) {
  BenchReport rep;
  rep.schema_version = kBenchReportSchemaVersion;
  rep.meta.binary = "unit_test";
  rep.rows = std::move(rows);
  return rep;
}

TEST(DiffReports, IdenticalReportsAreClean) {
  auto rep = make_report({make_row("a", 2.0, 1.9), make_row("b", 0.0, 5.0)});
  const DiffResult d = diff_reports(rep, rep, 0.05);
  EXPECT_FALSE(d.regressed);
  ASSERT_EQ(d.deltas.size(), 2u);
  for (const auto& delta : d.deltas)
    EXPECT_EQ(delta.status, RowDelta::Status::kOk);
}

TEST(DiffReports, MovingAwayFromPaperTargetRegresses) {
  // Paper target 2.0: baseline measured 1.9 (5% off), current 1.7 (15%
  // off) — deviation grew by 10% of the target, past a 5% threshold.
  auto base = make_report({make_row("a", 2.0, 1.9)});
  auto cur = make_report({make_row("a", 2.0, 1.7)});
  const DiffResult d = diff_reports(base, cur, 0.05);
  EXPECT_TRUE(d.regressed);
  ASSERT_EQ(d.deltas.size(), 1u);
  EXPECT_EQ(d.deltas[0].status, RowDelta::Status::kRegressed);
  EXPECT_NEAR(d.deltas[0].err_baseline, 0.05, 1e-9);
  EXPECT_NEAR(d.deltas[0].err_current, 0.15, 1e-9);
}

TEST(DiffReports, MovingTowardPaperTargetImproves) {
  auto base = make_report({make_row("a", 2.0, 1.6)});
  auto cur = make_report({make_row("a", 2.0, 1.95)});
  const DiffResult d = diff_reports(base, cur, 0.05);
  EXPECT_FALSE(d.regressed);
  EXPECT_EQ(d.deltas[0].status, RowDelta::Status::kImproved);
}

TEST(DiffReports, PaperlessRowGatesOnDriftFromBaseline) {
  auto base = make_report({make_row("a", 0.0, 100.0)});
  EXPECT_FALSE(
      diff_reports(base, make_report({make_row("a", 0.0, 104.0)}), 0.05)
          .regressed);  // 4% drift, under threshold
  EXPECT_TRUE(
      diff_reports(base, make_report({make_row("a", 0.0, 106.0)}), 0.05)
          .regressed);  // 6% drift
}

TEST(DiffReports, MissingRowRegressesNewRowDoesNot) {
  auto base = make_report({make_row("a", 1.0, 1.0), make_row("b", 1.0, 1.0)});
  auto cur = make_report({make_row("a", 1.0, 1.0), make_row("c", 1.0, 1.0)});
  const DiffResult d = diff_reports(base, cur, 0.05);
  EXPECT_TRUE(d.regressed);
  ASSERT_EQ(d.deltas.size(), 3u);  // a (ok), b (missing), c (new)
  EXPECT_EQ(d.deltas[0].status, RowDelta::Status::kOk);
  EXPECT_EQ(d.deltas[1].status, RowDelta::Status::kMissing);
  EXPECT_EQ(d.deltas[2].status, RowDelta::Status::kNew);
}

// run_bench_diff: full CLI behavior including file IO and exit codes.
class BenchDiffCli : public ::testing::Test {
 protected:
  std::string write_report(const char* tag, const BenchReporter& r) {
    std::string path = ::testing::TempDir() + "gt_bench_diff_" + tag +
                       ".json";
    std::ofstream os(path);
    r.write_json(os, TraceAnalysis{});
    os << "\n";
    return path;
  }
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::vector<std::string> cleanup_;
};

TEST_F(BenchDiffCli, ExitCodesForCleanRegressedAndUnreadable) {
  BenchReporter& r = BenchReporter::global();
  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.9));
  const std::string base = write_report("base", r);
  cleanup_.push_back(base);

  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.9));
  const std::string same = write_report("same", r);
  cleanup_.push_back(same);

  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.0));
  const std::string bad = write_report("bad", r);
  cleanup_.push_back(bad);
  r.clear();

  std::ostringstream out;
  EXPECT_EQ(run_bench_diff(base, same, 0.05, out), 0);
  EXPECT_NE(out.str().find("OK"), std::string::npos);

  out.str("");
  EXPECT_EQ(run_bench_diff(base, bad, 0.05, out), 1);
  EXPECT_NE(out.str().find("regress"), std::string::npos);

  out.str("");
  EXPECT_EQ(run_bench_diff(base, "/nonexistent/nope.json", 0.05, out), 2);
}

TEST_F(BenchDiffCli, MissingBaselineRowIsIncompleteNotRegressed) {
  BenchReporter& r = BenchReporter::global();
  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.9));
  r.add_row(make_row("b", 3.0, 2.9));
  const std::string base = write_report("missing_base", r);
  cleanup_.push_back(base);

  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.9));  // row "b" vanished from the candidate
  const std::string cur = write_report("missing_cur", r);
  cleanup_.push_back(cur);
  r.clear();

  // A comparison that never happened must not masquerade as a measured
  // regression (1) or a clean pass (0): it exits 2 with a per-row
  // diagnostic naming the vanished baseline row.
  std::ostringstream out;
  EXPECT_EQ(run_bench_diff(base, cur, 0.05, out), 2);
  EXPECT_NE(out.str().find("is missing from"), std::string::npos);
  EXPECT_NE(out.str().find(cur), std::string::npos);
  EXPECT_NE(out.str().find("comparison incomplete"), std::string::npos);

  // The missing check outranks any regression verdict: a candidate that
  // both regresses and lost a row still reports incomplete.
  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.0));  // regressed AND "b" missing
  const std::string worse = write_report("missing_worse", r);
  cleanup_.push_back(worse);
  r.clear();
  out.str("");
  EXPECT_EQ(run_bench_diff(base, worse, 0.05, out), 2);
}

// --- --json + kernel attribution ---------------------------------------------

/// Write a one-batch kernels.json whose single fwd class costs
/// 40*scale us; scale > 1 models a kernel-level slowdown.
std::string write_kernels(const char* tag, double scale) {
  const std::string path =
      ::testing::TempDir() + "gt_bench_diff_kernels_" + tag + ".json";
  attrib::KernelLedger& ledger = attrib::KernelLedger::global();
  ledger.arm(path);
  attrib::BatchTotals t;
  t.stage_busy_us[0] = 100.0;
  t.stage_busy_us[1] = 50.0;
  t.stage_busy_us[2] = 30.0;
  t.stage_busy_us[3] = 20.0;
  t.makespan_us = 120.0;
  t.fwp_us = 40.0 * scale;
  t.bwp_us = 30.0;
  t.end_to_end_us = std::max(t.makespan_us, t.fwp_us + t.bwp_us);
  const std::vector<attrib::KernelRecord> kernels = {
      {"Pull.CsrSpmm", "aggregation", "fwd", 300, 40.0 * scale, 1000, 4096},
      {"Loss.Softmax", "softmax", "bwd", 300, 30.0, 500, 2048},
  };
  ledger.record_batch(t, kernels);
  EXPECT_TRUE(ledger.write_json_file());
  ledger.disarm();
  return path;
}

TEST_F(BenchDiffCli, JsonOutputCarriesVerdictRowsAndExitCodes) {
  BenchReporter& r = BenchReporter::global();
  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.9));
  const std::string base = write_report("json_base", r);
  cleanup_.push_back(base);

  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.0));
  const std::string bad = write_report("json_bad", r);
  cleanup_.push_back(bad);
  r.clear();

  BenchDiffOptions opt;
  opt.json = true;

  // Clean pair: exit 0, verdict "ok", one comparable row, no attribution.
  std::ostringstream out;
  EXPECT_EQ(run_bench_diff(base, base, opt, out), 0);
  JsonValue doc;
  std::string err;
  ASSERT_TRUE(json_parse(out.str(), &doc, &err)) << err << "\n" << out.str();
  EXPECT_EQ(doc.string_at("verdict"), "ok");
  EXPECT_EQ(doc.at("rows").as_array().size(), 1u);
  EXPECT_TRUE(doc.at("kernel_attribution").as_array().empty());

  // Regressed pair: exit 1, verdict "regressed", same document shape.
  out.str("");
  EXPECT_EQ(run_bench_diff(base, bad, opt, out), 1);
  ASSERT_TRUE(json_parse(out.str(), &doc, &err)) << err << "\n" << out.str();
  EXPECT_EQ(doc.string_at("verdict"), "regressed");
  ASSERT_EQ(doc.at("rows").as_array().size(), 1u);
  EXPECT_EQ(doc.at("rows").as_array()[0].string_at("status"), "REGRESSED");

  // Unreadable input: exit 2 (no JSON document contract on that path).
  out.str("");
  EXPECT_EQ(run_bench_diff(base, "/nonexistent/nope.json", opt, out), 2);
}

TEST_F(BenchDiffCli, RegressionWithLedgersPrintsTopKernelAttribution) {
  BenchReporter& r = BenchReporter::global();
  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.9));
  const std::string base = write_report("attr_base", r);
  cleanup_.push_back(base);

  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.0));
  const std::string bad = write_report("attr_bad", r);
  cleanup_.push_back(bad);
  r.clear();

  BenchDiffOptions opt;
  opt.baseline_kernels = write_kernels("attr_base", 1.0);
  opt.current_kernels = write_kernels("attr_cur", 2.0);
  cleanup_.push_back(opt.baseline_kernels);
  cleanup_.push_back(opt.current_kernels);

  // Text verdict: FAIL line plus the ranked culprit and the gt_explain
  // pointer for the full breakdown.
  std::ostringstream out;
  EXPECT_EQ(run_bench_diff(base, bad, opt, out), 1);
  EXPECT_NE(out.str().find("kernel-level attribution"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("Pull.CsrSpmm|fwd|b2^9"), std::string::npos);
  EXPECT_NE(out.str().find("gt_explain"), std::string::npos);

  // JSON carries the same ranked classes under "kernel_attribution".
  opt.json = true;
  out.str("");
  EXPECT_EQ(run_bench_diff(base, bad, opt, out), 1);
  JsonValue doc;
  ASSERT_TRUE(json_parse(out.str(), &doc, nullptr)) << out.str();
  const JsonArray& attr = doc.at("kernel_attribution").as_array();
  ASSERT_FALSE(attr.empty());
  EXPECT_EQ(attr[0].string_at("key"), "Pull.CsrSpmm|fwd|b2^9");
  EXPECT_NEAR(attr[0].number_at("delta_us_per_batch"), 40.0, 1e-6);

  // --top=0 disables the attribution entirely.
  opt.json = false;
  opt.top_kernels = 0;
  out.str("");
  EXPECT_EQ(run_bench_diff(base, bad, opt, out), 1);
  EXPECT_EQ(out.str().find("kernel-level attribution"), std::string::npos);
}

TEST_F(BenchDiffCli, RegressionWithoutLedgersExplainsWhatIsMissing) {
  BenchReporter& r = BenchReporter::global();
  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.9));
  const std::string base = write_report("noledger_base", r);
  cleanup_.push_back(base);

  r.clear();
  r.set_context("Fig T", "cli test");
  r.add_row(make_row("a", 2.0, 1.0));
  const std::string bad = write_report("noledger_bad", r);
  cleanup_.push_back(bad);
  r.clear();

  std::ostringstream out;
  EXPECT_EQ(run_bench_diff(base, bad, BenchDiffOptions{}, out), 1);
  EXPECT_NE(out.str().find("no kernel attribution available"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("GT_KERNEL_LEDGER_OUT"), std::string::npos);
}

}  // namespace
}  // namespace gt::obs
