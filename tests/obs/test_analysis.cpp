#include "obs/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "json_checker.hpp"

namespace gt::obs {
namespace {

TEST(Intervals, MergeCollapsesOverlapAndTouching) {
  auto merged = merge_intervals(
      {{5.0, 7.0}, {0.0, 2.0}, {1.0, 3.0}, {3.0, 4.0}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 4.0);  // [0,2]+[1,3]+[3,4] chain
  EXPECT_DOUBLE_EQ(merged[1].begin, 5.0);
  EXPECT_DOUBLE_EQ(merged[1].end, 7.0);
  EXPECT_DOUBLE_EQ(interval_measure(merged), 6.0);
}

TEST(Intervals, IntersectionOfMergedLists) {
  auto a = merge_intervals({{0.0, 10.0}, {20.0, 30.0}});
  auto b = merge_intervals({{5.0, 25.0}});
  EXPECT_DOUBLE_EQ(interval_intersection(a, b), 10.0);  // [5,10] + [20,25]
  EXPECT_DOUBLE_EQ(interval_intersection(a, {}), 0.0);
}

// The synthetic timeline used below (all on the simulated pid):
//   cpu tid 10 : sampling [0,10)   reindex [10,15)
//   cpu tid 11 : lookup   [5,15)
//   pcie       : transfer [15,25)
//   gpu        : FWP [20,30)  kernel-detail [20,25)  BWP [40,50)
// plus one wall-clock span that must be ignored.
TraceEvent event(const char* name, const char* cat, double ts, double dur,
                 std::uint32_t pid, std::uint32_t tid) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_us = ts;
  e.dur_us = dur;
  e.pid = pid;
  e.tid = tid;
  return e;
}

std::vector<TraceEvent> synthetic_events() {
  return {
      event("S", "sampling", 0.0, 10.0, kSimPid, 10),
      event("R", "reindex", 10.0, 5.0, kSimPid, 10),
      event("K", "lookup", 5.0, 10.0, kSimPid, 11),
      event("T", "transfer", 15.0, 10.0, kSimPid, kSimTidPcie),
      event("FWP", "FWP", 20.0, 10.0, kSimPid, kSimTidGpu),
      // Per-kernel detail duplicates part of the FWP phase; it must not be
      // double-counted in the stage sums.
      event("agg", "kernel", 20.0, 5.0, kSimPid, kSimTidGpu),
      event("BWP", "BWP", 40.0, 10.0, kSimPid, kSimTidGpu),
      event("host", "sampling", 0.0, 999.0, kWallPid, 1),
  };
}

TEST(TraceAnalysis, EmptyTraceYieldsZeros) {
  const TraceAnalysis a = TraceAnalysis::from_events({});
  EXPECT_EQ(a.sim_event_count, 0u);
  EXPECT_DOUBLE_EQ(a.span_us, 0.0);
  EXPECT_DOUBLE_EQ(a.critical_path_us, 0.0);
  EXPECT_DOUBLE_EQ(a.overlap_efficiency, 0.0);
  EXPECT_DOUBLE_EQ(a.pcie_idle_fraction, 0.0);
}

TEST(TraceAnalysis, SyntheticTimelineNumbers) {
  const TraceAnalysis a = TraceAnalysis::from_events(synthetic_events());
  EXPECT_EQ(a.sim_event_count, 7u);  // wall-clock span excluded
  EXPECT_DOUBLE_EQ(a.span_us, 50.0);
  // Busy union: cpu [0,15] + pcie [15,25] + gpu [20,30]+[40,50]
  //   = [0,30] + [40,50] -> 40us; the [30,40] gap is whole-system idle.
  EXPECT_DOUBLE_EQ(a.critical_path_us, 40.0);

  EXPECT_DOUBLE_EQ(a.stage_us[0], 10.0);  // sampling
  EXPECT_DOUBLE_EQ(a.stage_us[1], 5.0);   // reindex
  EXPECT_DOUBLE_EQ(a.stage_us[2], 10.0);  // lookup
  EXPECT_DOUBLE_EQ(a.stage_us[3], 10.0);  // transfer
  EXPECT_DOUBLE_EQ(a.fwp_us, 10.0);       // kernel detail not double-counted
  EXPECT_DOUBLE_EQ(a.bwp_us, 10.0);
  const double busy = 55.0;
  EXPECT_DOUBLE_EQ(a.stage_share[0], 10.0 / busy);
  EXPECT_DOUBLE_EQ(a.stage_share[3], 10.0 / busy);
  EXPECT_DOUBLE_EQ(a.fwp_share, 10.0 / busy);

  // Preproc union [0,25] (25us) vs gpu union [20,30]+[40,50] (20us):
  // they overlap on [20,25], and efficiency normalizes by the shorter.
  EXPECT_DOUBLE_EQ(a.preproc_busy_us, 25.0);
  EXPECT_DOUBLE_EQ(a.gpu_busy_us, 20.0);
  EXPECT_DOUBLE_EQ(a.overlap_us, 5.0);
  EXPECT_DOUBLE_EQ(a.overlap_efficiency, 0.25);

  EXPECT_DOUBLE_EQ(a.pcie_busy_us, 10.0);
  EXPECT_DOUBLE_EQ(a.pcie_idle_fraction, 1.0 - 10.0 / 50.0);
}

// Degenerate timelines must stay finite and defined — every derived
// fraction divides by a span/busy/min that can legitimately be zero.
TEST(TraceAnalysis, SingleSpanTimeline) {
  const TraceAnalysis a =
      TraceAnalysis::from_events({event("S", "sampling", 5.0, 10.0,
                                        kSimPid, 10)});
  EXPECT_EQ(a.sim_event_count, 1u);
  EXPECT_DOUBLE_EQ(a.span_us, 10.0);
  EXPECT_DOUBLE_EQ(a.critical_path_us, 10.0);
  EXPECT_DOUBLE_EQ(a.stage_us[0], 10.0);
  EXPECT_DOUBLE_EQ(a.stage_share[0], 1.0);  // the only busy time there is
  // No GPU side at all: overlap must be defined zero, not 0/0.
  EXPECT_DOUBLE_EQ(a.gpu_busy_us, 0.0);
  EXPECT_DOUBLE_EQ(a.overlap_efficiency, 0.0);
  EXPECT_DOUBLE_EQ(a.pcie_idle_fraction, 1.0);  // link never used
}

TEST(TraceAnalysis, ZeroDurationSpansProduceNoNans) {
  // All spans instantaneous at the same timestamp: span, busy, and every
  // denominator collapse to zero.
  const std::vector<TraceEvent> events = {
      event("S", "sampling", 7.0, 0.0, kSimPid, 10),
      event("T", "transfer", 7.0, 0.0, kSimPid, kSimTidPcie),
      event("FWP", "FWP", 7.0, 0.0, kSimPid, kSimTidGpu),
  };
  const TraceAnalysis a = TraceAnalysis::from_events(events);
  EXPECT_EQ(a.sim_event_count, 3u);
  EXPECT_DOUBLE_EQ(a.span_us, 0.0);
  EXPECT_DOUBLE_EQ(a.critical_path_us, 0.0);
  for (int i = 0; i < kNumPreprocStages; ++i) {
    EXPECT_DOUBLE_EQ(a.stage_us[i], 0.0);
    EXPECT_DOUBLE_EQ(a.stage_share[i], 0.0);  // defined zero, not 0/0
  }
  EXPECT_DOUBLE_EQ(a.fwp_share, 0.0);
  EXPECT_DOUBLE_EQ(a.overlap_efficiency, 0.0);
  EXPECT_DOUBLE_EQ(a.pcie_idle_fraction, 0.0);

  // The serialized form must carry real numbers, never "nan"/"inf".
  std::ostringstream os;
  a.write_json(os);
  EXPECT_TRUE(testing::JsonChecker(os.str()).valid()) << os.str();
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
  EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(TraceAnalysis, ZeroDurationMixedWithRealSpans) {
  // A zero-width marker inside a real busy window must not disturb the
  // union measures or shares.
  const std::vector<TraceEvent> events = {
      event("S", "sampling", 0.0, 10.0, kSimPid, 10),
      event("mark", "sampling", 4.0, 0.0, kSimPid, 10),
      event("FWP", "FWP", 5.0, 5.0, kSimPid, kSimTidGpu),
  };
  const TraceAnalysis a = TraceAnalysis::from_events(events);
  EXPECT_DOUBLE_EQ(a.span_us, 10.0);
  EXPECT_DOUBLE_EQ(a.critical_path_us, 10.0);
  EXPECT_DOUBLE_EQ(a.stage_us[0], 10.0);
  EXPECT_DOUBLE_EQ(a.preproc_busy_us, 10.0);
  EXPECT_DOUBLE_EQ(a.gpu_busy_us, 5.0);
  EXPECT_DOUBLE_EQ(a.overlap_us, 5.0);
  EXPECT_DOUBLE_EQ(a.overlap_efficiency, 1.0);  // GPU side fully hidden
}

TEST(TraceAnalysis, WriteJsonIsValidAndCarriesTheNumbers) {
  const TraceAnalysis a = TraceAnalysis::from_events(synthetic_events());
  std::ostringstream os;
  a.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(testing::JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"critical_path_us\""), std::string::npos);
  EXPECT_NE(json.find("\"stage_share\""), std::string::npos);
  EXPECT_NE(json.find("\"overlap\""), std::string::npos);
  EXPECT_NE(json.find("\"pcie\""), std::string::npos);
  // Keys are sorted: critical_path before overlap before pcie before span.
  EXPECT_LT(json.find("\"critical_path_us\""), json.find("\"overlap\""));
  EXPECT_LT(json.find("\"overlap\""), json.find("\"pcie\""));
  EXPECT_LT(json.find("\"pcie\""), json.find("\"span_us\""));
}

TEST(TraceAnalysis, FromTracerSeesEmittedSimEvents) {
  Tracer& t = Tracer::global();
  t.clear();
  t.enable(true);
  for (auto& e : synthetic_events())
    if (e.pid == kSimPid) t.emit(std::move(e));
  const TraceAnalysis a = TraceAnalysis::from_tracer(t);
  t.enable(false);
  t.clear();
  EXPECT_EQ(a.sim_event_count, 7u);
  EXPECT_DOUBLE_EQ(a.critical_path_us, 40.0);
}

}  // namespace
}  // namespace gt::obs
