#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.hpp"

namespace gt::obs {
namespace {

using testing::JsonChecker;

// Each TEST uses the global tracer; reset it to a known state first.
struct TracerEnv {
  TracerEnv() {
    Tracer::global().clear();
    Tracer::global().enable(true);
  }
  ~TracerEnv() {
    Tracer::global().enable(false);
    Tracer::global().clear();
  }
};

TEST(Tracer, DisabledRecordsNothing) {
  Tracer::global().clear();
  Tracer::global().enable(false);
  {
    GT_OBS_SCOPE("should.not.appear", "test");
    Span s("also.not", "test");
    s.arg("k", std::int64_t{1});
    EXPECT_FALSE(s.active());
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST(Tracer, SpanNestingEmitsContainedIntervals) {
  TracerEnv env;
  {
    GT_OBS_SCOPE_N(outer, "outer", "test");
    {
      GT_OBS_SCOPE_N(inner, "inner", "test");
      EXPECT_TRUE(inner.active());
    }
  }
  auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  auto find = [&](const char* name) {
    return *std::find_if(events.begin(), events.end(),
                         [&](const TraceEvent& e) { return e.name == name; });
  };
  const TraceEvent outer = find("outer"), inner = find("inner");
  EXPECT_EQ(outer.pid, kWallPid);
  EXPECT_EQ(outer.tid, inner.tid);  // same thread
  // Inner interval is contained in the outer one.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST(Tracer, SpanArgsAreRenderedAsJsonMembers) {
  TracerEnv env;
  {
    Span s("with.args", "test");
    s.arg("n", std::int64_t{42});
    s.arg("ratio", 0.5);
    s.arg("label", std::string_view("he\"llo"));
  }
  auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::string wrapped = "{" + events[0].args_json + "}";
  EXPECT_TRUE(JsonChecker(wrapped).valid()) << wrapped;
  EXPECT_NE(wrapped.find("\"n\":42"), std::string::npos);
  EXPECT_NE(wrapped.find("\"label\":\"he\\\"llo\""), std::string::npos);
}

TEST(Tracer, MergesEventsAcrossThreads) {
  TracerEnv env;
  constexpr int kThreads = 4, kSpansPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i)
        GT_OBS_SCOPE("worker.span", "test");
    });
  for (auto& w : workers) w.join();
  auto events = Tracer::global().snapshot();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  std::vector<std::uint32_t> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(Tracer, VirtualClockLaysBatchesBackToBack) {
  TracerEnv env;
  Tracer& t = Tracer::global();
  const double a = t.advance_virtual(100.0);
  const double b = t.advance_virtual(50.0);
  const double c = t.advance_virtual(25.0);
  EXPECT_DOUBLE_EQ(b, a + 100.0);
  EXPECT_DOUBLE_EQ(c, b + 50.0);
}

TEST(Tracer, ChromeExportIsValidJson) {
  TracerEnv env;
  Tracer& t = Tracer::global();
  t.set_sim_thread_name(kSimTidGpu, "gpu");
  {
    Span s("wall.span", "test");
    s.arg("bytes", std::int64_t{1024});
  }
  t.emit({.name = "K.kernel",
          .cat = "kernel",
          .ts_us = 10.0,
          .dur_us = 5.0,
          .pid = kSimPid,
          .tid = kSimTidGpu,
          .args_json = "\"flops\":123"});
  std::ostringstream os;
  t.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"wall.span\""), std::string::npos);
  EXPECT_NE(json.find("\"K.kernel\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);  // "M" metadata
}

TEST(Tracer, ClearDropsEventsAndResetsVirtualClock) {
  TracerEnv env;
  Tracer& t = Tracer::global();
  { GT_OBS_SCOPE("ephemeral", "test"); }
  t.advance_virtual(77.0);
  EXPECT_GT(t.event_count(), 0u);
  t.clear();
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_DOUBLE_EQ(t.advance_virtual(1.0), 0.0);
}

}  // namespace
}  // namespace gt::obs
