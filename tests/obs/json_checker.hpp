// Minimal recursive-descent JSON checker: accepts exactly the grammar of
// RFC 8259 values and nothing else. Enough to prove an exporter emits
// loadable JSON without pulling in a parser dependency. Shared by the
// tracer, metrics, and bench-report tests.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace gt::obs::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool string() {
    if (!consume('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_++])))
              return false;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    consume('-');
    if (!digits()) return false;
    if (consume('.') && !digits()) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace gt::obs::testing
